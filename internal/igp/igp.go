// Package igp models the IGP convergence process whose slowness
// motivates the paper: after a failure, adjacent routers detect it,
// originate LSAs that flood through the live topology, and every
// router reruns SPF and installs new routes. Until a router converges
// it keeps forwarding with stale tables — the window RTR covers.
//
// The model follows the classic decomposition (Francois et al.,
// "Achieving sub-second IGP convergence in large IP networks"):
// detection + per-hop flooding + SPF schedule + computation, with the
// paper's 1.7 ms propagation per hop.
package igp

import (
	"time"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
)

// Timers are the IGP parameters that govern convergence speed.
type Timers struct {
	// Detection is the time for a router to declare an adjacent
	// element dead (hello timers or BFD).
	Detection time.Duration
	// FloodPerHop is the per-hop LSA flooding delay: propagation plus
	// LSA processing/pacing at each router.
	FloodPerHop time.Duration
	// SPFDelay is the SPF schedule/throttle delay between receiving a
	// new LSA and starting the computation.
	SPFDelay time.Duration
	// SPFCompute is the SPF computation plus FIB update time.
	SPFCompute time.Duration
}

// ClassicTimers models a conservatively configured IGP: seconds-scale
// convergence (the regime the paper's introduction describes, where a
// 10-second outage on an OC-192 drops ~12M packets).
func ClassicTimers() Timers {
	return Timers{
		Detection:   1 * time.Second,        // default hello-based detection
		FloodPerHop: 12 * time.Millisecond,  // pacing + propagation
		SPFDelay:    5 * time.Second,        // conservative SPF hold
		SPFCompute:  200 * time.Millisecond, // SPF + FIB update
	}
}

// TunedTimers models an aggressively tuned IGP (sub-second
// convergence; the paper notes such tuning risks route flapping).
func TunedTimers() Timers {
	return Timers{
		Detection:   50 * time.Millisecond, // BFD
		FloodPerHop: 4 * time.Millisecond,
		SPFDelay:    100 * time.Millisecond,
		SPFCompute:  50 * time.Millisecond,
	}
}

// Convergence is the per-router convergence timeline for one failure.
type Convergence struct {
	// RouterTime[v] is when router v has installed post-failure
	// routes; zero for failed routers and for routers that receive no
	// LSA (no live detector reaches them — they keep stale tables,
	// which in their partition never matters).
	RouterTime []time.Duration
	// Detectors are the live routers adjacent to the failure that
	// originated LSAs.
	Detectors []graph.NodeID
	// Total is the time by which every reachable router has converged.
	Total time.Duration
}

// Converge simulates the IGP convergence of topo under the failure sc.
func Converge(sc *failure.Scenario, t Timers) *Convergence {
	g := sc.Topo.G
	n := g.NumNodes()
	lv := routing.NewLocalView(sc.Topo, sc)

	c := &Convergence{RouterTime: make([]time.Duration, n)}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if sc.NodeDown(id) {
			continue
		}
		if len(lv.UnreachableLinks(id)) > 0 {
			c.Detectors = append(c.Detectors, id)
		}
	}
	if len(c.Detectors) == 0 {
		return c
	}

	// Multi-source BFS over the live subgraph: hop distance from the
	// nearest... no — every router needs ALL detectors' LSAs, so the
	// governing arrival is the FARTHEST reachable detector.
	last := make([]int, n) // farthest reachable detector, in hops; -1 unreached
	for i := range last {
		last[i] = -1
	}
	for _, det := range c.Detectors {
		dist := bfsHops(g, sc, det)
		for v := 0; v < n; v++ {
			if dist[v] >= 0 && dist[v] > last[v] {
				last[v] = dist[v]
			}
		}
	}
	for v := 0; v < n; v++ {
		if sc.NodeDown(graph.NodeID(v)) || last[v] < 0 {
			continue
		}
		tm := t.Detection + time.Duration(last[v])*t.FloodPerHop + t.SPFDelay + t.SPFCompute
		c.RouterTime[v] = tm
		if tm > c.Total {
			c.Total = tm
		}
	}
	return c
}

// bfsHops returns live-subgraph hop distances from src (-1 when
// unreachable).
func bfsHops(g *graph.Graph, sc *failure.Scenario, src graph.NodeID) []int {
	n := g.NumNodes()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if sc.NodeDown(src) {
		return dist
	}
	dist[src] = 0
	queue := []graph.NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(v) {
			w := h.Neighbor
			if dist[w] >= 0 || sc.LinkDown(h.Link) || sc.NodeDown(w) {
				continue
			}
			dist[w] = dist[v] + 1
			queue = append(queue, w)
		}
	}
	return dist
}
