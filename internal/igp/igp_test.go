package igp

import (
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
)

func TestConvergePaperExample(t *testing.T) {
	topo := topology.PaperExample()
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	timers := TunedTimers()
	c := Converge(sc, timers)

	// Detectors are exactly the live routers with an unreachable
	// neighbor: v5, v9, v14, v11 (around v10) and v6, v4 (cut links).
	want := map[graph.NodeID]bool{
		topology.PaperNode(4):  true,
		topology.PaperNode(5):  true,
		topology.PaperNode(6):  true,
		topology.PaperNode(9):  true,
		topology.PaperNode(11): true,
		topology.PaperNode(14): true,
	}
	if len(c.Detectors) != len(want) {
		t.Fatalf("detectors = %v, want %d of them", c.Detectors, len(want))
	}
	for _, d := range c.Detectors {
		if !want[d] {
			t.Errorf("unexpected detector v%d", d+1)
		}
	}

	// Every live router converges, after detection+SPF at minimum.
	minTime := timers.Detection + timers.SPFDelay + timers.SPFCompute
	for v := 0; v < topo.G.NumNodes(); v++ {
		id := graph.NodeID(v)
		if sc.NodeDown(id) {
			if c.RouterTime[v] != 0 {
				t.Errorf("failed router v%d has a convergence time", v+1)
			}
			continue
		}
		if c.RouterTime[v] < minTime {
			t.Errorf("router v%d converged in %v, below the floor %v", v+1, c.RouterTime[v], minTime)
		}
	}
	if c.Total < minTime {
		t.Errorf("total convergence %v below floor", c.Total)
	}
	// A detector itself converges fastest among same-distance peers;
	// total is bounded by floor + diameter*floodPerHop.
	maxTime := minTime + time.Duration(topo.G.NumNodes())*timers.FloodPerHop
	if c.Total > maxTime {
		t.Errorf("total convergence %v exceeds bound %v", c.Total, maxTime)
	}
}

func TestConvergeNoFailure(t *testing.T) {
	topo := topology.PaperExample()
	sc := failure.NewScenario(topo) // nothing failed
	c := Converge(sc, TunedTimers())
	if len(c.Detectors) != 0 || c.Total != 0 {
		t.Errorf("no failure must mean no convergence activity: %+v", c)
	}
}

func TestConvergeClassicSlowerThanTuned(t *testing.T) {
	topo := topology.GenerateAS("AS209", 1)
	// Aim the failure at the first router so it definitely hits.
	sc := failure.NewScenario(topo, geom.Disk{Center: topo.Coords[0], Radius: 150})
	if !sc.HasFailures() {
		t.Fatal("the disk around a router must fail something")
	}
	classic := Converge(sc, ClassicTimers())
	tuned := Converge(sc, TunedTimers())
	if classic.Total <= tuned.Total {
		t.Errorf("classic (%v) must converge slower than tuned (%v)", classic.Total, tuned.Total)
	}
	if classic.Total < 5*time.Second {
		t.Errorf("classic convergence %v implausibly fast", classic.Total)
	}
	if tuned.Total > 2*time.Second {
		t.Errorf("tuned convergence %v implausibly slow", tuned.Total)
	}
}

func TestConvergeMonotoneWithDistance(t *testing.T) {
	// A router farther (in hops) from every detector converges no
	// earlier than one of its neighbors on the path toward the
	// detectors.
	topo := topology.PaperExample()
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	c := Converge(sc, TunedTimers())
	// v18 (far corner) must converge no earlier than v16 (its neighbor
	// closer to the failure).
	if c.RouterTime[topology.PaperNode(18)] < c.RouterTime[topology.PaperNode(16)] {
		t.Errorf("v18 (%v) converged before v16 (%v)",
			c.RouterTime[topology.PaperNode(18)], c.RouterTime[topology.PaperNode(16)])
	}
}

func TestConvergePartition(t *testing.T) {
	// Cut a leaf off entirely: the leaf receives no LSA and keeps
	// stale tables (RouterTime 0), and the rest still converges.
	topo := topology.GenerateAS("AS7018", 3)
	// Find a leaf and fail its only link.
	var leaf graph.NodeID
	found := false
	for v := 0; v < topo.G.NumNodes() && !found; v++ {
		if topo.G.Degree(graph.NodeID(v)) == 1 {
			leaf = graph.NodeID(v)
			found = true
		}
	}
	if !found {
		t.Skip("no leaf in this topology")
	}
	sc := failure.SingleLink(topo, topo.G.Adj(leaf)[0].Link)
	c := Converge(sc, TunedTimers())
	if c.RouterTime[leaf] != 0 {
		// The leaf IS a detector of its own link failure, so it
		// actually converges by itself: detection + SPF.
		tm := TunedTimers()
		if c.RouterTime[leaf] != tm.Detection+tm.SPFDelay+tm.SPFCompute {
			t.Errorf("cut-off leaf should converge on its own detection, got %v", c.RouterTime[leaf])
		}
	}
	if c.Total == 0 {
		t.Error("the main partition must converge")
	}
}
