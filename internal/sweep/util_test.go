package sweep

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// utilSpec is a pure congestion workload: no case or Fig. 11 shards,
// two schemes on the shared AS1239 world, small enough for unit tests
// but checked end to end by the utilization oracle.
func utilSpec() Spec {
	return Spec{
		BaseSeed:      7,
		Topologies:    []string{"AS1239"},
		UtilSchemes:   []string{"rtr", "rtr-spread"},
		UtilPairs:     80,
		UtilScenarios: 3,
		Check:         true,
	}
}

func utilsJSON(t *testing.T, res *RunResult) string {
	t.Helper()
	us, err := res.Utils()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(us, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestUtilShardPlan(t *testing.T) {
	plan := utilSpec().Shards()
	want := []string{"util/AS1239/rtr", "util/AS1239/rtr-spread"}
	if len(plan) != len(want) {
		t.Fatalf("got %d shards, want %d", len(plan), len(want))
	}
	for i, sh := range plan {
		if sh.Key != want[i] || sh.Kind != KindUtil || sh.Scheme == "" {
			t.Errorf("shard %d = %+v, want key %s", i, sh, want[i])
		}
	}
	// Distinct schemes draw distinct RNG streams on the same topology.
	if plan[0].Seed(7) == plan[1].Seed(7) {
		t.Error("rtr and rtr-spread shards share a seed")
	}
}

func TestUtilSweepDeterministicAcrossWorkers(t *testing.T) {
	worlds := as1239(t)
	var want string
	for _, workers := range []int{1, 2} {
		e := &Engine{Spec: utilSpec(), Worlds: worlds, Workers: workers}
		res, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete() {
			t.Fatalf("workers=%d: run incomplete", workers)
		}
		got := utilsJSON(t, res)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d produced different utilization output", workers)
		}
	}
	// Sanity on the measurement itself: the pre column sits at the
	// calibrated heavy-load point (the oracle enforces this too, via
	// Spec.Check above, but assert it visibly here).
	if !strings.Contains(want, "\"peak\": 0.9") {
		t.Errorf("pre-failure peak not at heavy-load target:\n%s", want)
	}
}

// TestUtilSweepResume: congestion shards checkpoint and resume like
// case shards — an interrupted run finished by a second process merges
// to the same bytes as an uninterrupted one.
func TestUtilSweepResume(t *testing.T) {
	worlds := as1239(t)
	spec := utilSpec()
	full, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := utilsJSON(t, full)

	dir := t.TempDir()
	first, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 1, Dir: dir, MaxShards: 1}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !first.Interrupted || first.Executed != 1 {
		t.Fatalf("interrupted run: executed=%d interrupted=%v", first.Executed, first.Interrupted)
	}
	if _, err := first.Utils(); err == nil {
		t.Fatal("merging an incomplete util run must fail")
	}
	second, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 2, Dir: dir, Resume: true}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.Loaded != 1 || !second.Complete() {
		t.Fatalf("resumed run: loaded=%d complete=%v", second.Loaded, second.Complete())
	}
	if got := utilsJSON(t, second); got != want {
		t.Fatal("interrupt+resume produced different utilization output than an uninterrupted run")
	}
}

// TestUtilSweepUnknownSchemeFailsFast: a bad scheme name is rejected
// in Run before any shard executes, naming the registry's options.
func TestUtilSweepUnknownSchemeFailsFast(t *testing.T) {
	worlds := as1239(t)
	spec := utilSpec()
	spec.UtilSchemes = []string{"ospf"}
	_, err := (&Engine{Spec: spec, Worlds: worlds}).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("err = %v, want unknown-scheme failure", err)
	}
}

// TestUtilKnobsFingerprinted: every knob that changes congestion
// results changes the checkpoint fingerprint, and a spec without them
// fingerprints identically to one predating the fields.
func TestUtilKnobsFingerprinted(t *testing.T) {
	base := utilSpec()
	for name, mut := range map[string]func(*Spec){
		"schemes":   func(s *Spec) { s.UtilSchemes = []string{"rtr"} },
		"pairs":     func(s *Spec) { s.UtilPairs = 81 },
		"scenarios": func(s *Spec) { s.UtilScenarios = 4 },
	} {
		s := base
		mut(&s)
		if Fingerprint(s) == Fingerprint(base) {
			t.Errorf("%s change did not alter the fingerprint", name)
		}
	}
	plain := base
	plain.UtilSchemes = nil
	plain.UtilPairs = 0
	plain.UtilScenarios = 0
	if strings.Contains(string(mustJSON(t, plain)), "util_") {
		t.Error("zero util knobs leak into the canonical spec JSON")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
