package sweep

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// CheckpointVersion guards the on-disk layout. Bump it whenever the
// shard seed derivation (internal/seed), the shard keying, or the
// ShardResult encoding changes incompatibly: a version mismatch must
// refuse to resume rather than silently merge foreign results.
const CheckpointVersion = 1

const (
	manifestName = "manifest.json"
	resultsName  = "results.jsonl"
)

// ShardResult is the recorded output of one shard — exactly one JSONL
// line in the checkpoint. Case shards carry the per-case records;
// Fig. 11 shards carry failed-path counts. Results loaded from a
// checkpoint and results computed fresh are represented identically,
// which is what makes resumed aggregates bit-identical.
type ShardResult struct {
	Key      string  `json:"key"`
	Kind     Kind    `json:"kind"`
	Topology string  `json:"topology"`
	Block    int     `json:"block"`
	Radius   float64 `json:"radius,omitempty"`

	Rec []sim.CaseRecord `json:"rec,omitempty"`
	Irr []sim.CaseRecord `json:"irr,omitempty"`

	Failed        int `json:"failed,omitempty"`
	Irrecoverable int `json:"irrecoverable,omitempty"`

	// Scheme and Util carry a congestion shard's measurement (KindUtil).
	Scheme string          `json:"scheme,omitempty"`
	Util   *traffic.Result `json:"util,omitempty"`

	ElapsedNs int64 `json:"elapsed_ns"`
}

// Manifest describes a checkpoint directory. It is rewritten
// atomically after every shard so an interrupted run leaves an
// accurate completion count behind.
type Manifest struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	TotalShards int    `json:"total_shards"`
	// Completed is advisory, for humans inspecting a checkpoint: a
	// crash between the results append and the manifest rewrite leaves
	// it stale. Resume never trusts it — openCheckpoint recounts the
	// cleanly parsed results.jsonl lines and repairs the stored value.
	Completed int  `json:"completed"`
	Spec      Spec `json:"spec"`
}

// Fingerprint hashes the spec's canonical JSON; two sweeps merge only
// if they would produce the same shards with the same seeds.
func Fingerprint(s Spec) string {
	data, err := json.Marshal(s)
	if err != nil {
		panic("sweep: spec not serializable: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// checkpointWriter appends shard results to results.jsonl and keeps
// manifest.json current. Safe for concurrent use.
type checkpointWriter struct {
	mu       sync.Mutex
	dir      string
	f        *os.File
	manifest Manifest
}

// openCheckpoint prepares dir for a run. With resume set it validates
// the existing manifest against the spec and loads every cleanly
// recorded shard result (a torn tail line from a kill is skipped, so
// that shard simply reruns); otherwise it truncates any previous
// state. It returns the writer and the loaded results by shard key.
func openCheckpoint(dir string, spec Spec, total int, resume bool) (*checkpointWriter, map[string]*ShardResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	fp := Fingerprint(spec)
	loaded := map[string]*ShardResult{}
	if resume {
		m, err := readManifest(dir)
		switch {
		case os.IsNotExist(err):
			// Nothing to resume; fall through to a fresh run.
		case err != nil:
			return nil, nil, fmt.Errorf("sweep: reading %s: %w", manifestName, err)
		case m.Version != CheckpointVersion:
			return nil, nil, fmt.Errorf("sweep: checkpoint version %d in %s, this binary writes %d",
				m.Version, dir, CheckpointVersion)
		case m.Fingerprint != fp:
			return nil, nil, fmt.Errorf("sweep: checkpoint in %s was written for a different workload (fingerprint %.12s, want %.12s); rerun without -resume or point -state elsewhere",
				dir, m.Fingerprint, fp)
		default:
			if loaded, err = loadResults(filepath.Join(dir, resultsName)); err != nil {
				return nil, nil, err
			}
			// m.Completed is deliberately not consulted: a torn tail or
			// a crash between the results append and the manifest
			// rewrite leaves the stored count out of sync with what
			// actually parses. The recount of cleanly decoded lines is
			// authoritative; the manifest rewrite below repairs it.
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(filepath.Join(dir, resultsName), flags, 0o644)
	if err != nil {
		return nil, nil, err
	}
	c := &checkpointWriter{
		dir: dir,
		f:   f,
		manifest: Manifest{
			Version:     CheckpointVersion,
			Fingerprint: fp,
			TotalShards: total,
			Completed:   len(loaded),
			Spec:        spec,
		},
	}
	if err := c.writeManifest(); err != nil {
		f.Close()
		return nil, nil, err
	}
	return c, loaded, nil
}

// append records one completed shard: the JSONL line is written and
// synced before the manifest's completion count advances, so a crash
// between the two at worst undercounts (and the line itself, if torn,
// is skipped on load).
func (c *checkpointWriter) append(r *ShardResult) error {
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.manifest.Completed++
	return c.writeManifest()
}

// writeManifest replaces manifest.json atomically (temp file +
// rename); callers hold c.mu or have exclusive access.
func (c *checkpointWriter) writeManifest() error {
	data, err := json.MarshalIndent(c.manifest, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(c.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(c.dir, manifestName))
}

func (c *checkpointWriter) close() error {
	return c.f.Close()
}

func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("sweep: corrupt %s: %w", manifestName, err)
	}
	return &m, nil
}

// loadResults parses a results file, keeping the last cleanly encoded
// record per shard key. Unparseable lines — typically one torn tail
// from an interrupted write — are skipped, not fatal.
func loadResults(path string) (map[string]*ShardResult, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]*ShardResult{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]*ShardResult{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r ShardResult
		if err := json.Unmarshal(line, &r); err != nil || r.Key == "" {
			continue
		}
		out[r.Key] = &r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
