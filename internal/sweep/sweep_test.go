package sweep

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// The AS1239 world (Table II's smallest: 52 nodes, 84 links) is built
// once and shared; worlds are read-only during runs.
var (
	worldOnce sync.Once
	testWorld *sim.World
	worldErr  error
)

func as1239(t *testing.T) map[string]*sim.World {
	t.Helper()
	worldOnce.Do(func() {
		testWorld, worldErr = sim.NewWorld("AS1239", 7)
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return map[string]*sim.World{"AS1239": testWorld}
}

// testSpec is small enough for unit tests but exercises every shard
// shape: uneven final case blocks and multi-block Fig. 11 radii.
func testSpec() Spec {
	return Spec{
		BaseSeed:      7,
		Topologies:    []string{"AS1239"},
		Recoverable:   20,
		Irrecoverable: 10,
		BlockCases:    8,
		Fig11Radii:    []float64{100, 200},
		Fig11Areas:    30,
		BlockAreas:    20,
	}
}

// merged reduces a run to the bytes that define every downstream
// output: the concatenated case records and the Fig. 11 curves.
func merged(t *testing.T, res *RunResult, worlds map[string]*sim.World) string {
	t.Helper()
	ds, err := res.Datasets(worlds)
	if err != nil {
		t.Fatal(err)
	}
	f11, err := res.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	type flat struct {
		Rec, Irr []sim.CaseRecord
	}
	doc := struct {
		Data  map[string]flat
		Fig11 map[string][]sim.Fig11Point
	}{Data: map[string]flat{}, Fig11: f11}
	for as, d := range ds {
		doc.Data[as] = flat{Rec: d.Rec, Irr: d.Irr}
	}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestShardPlan(t *testing.T) {
	spec := testSpec()
	plan := spec.Shards()
	// Cases: 20 rec / 10 irr in blocks of 8 -> blocks (8,8), (8,2),
	// (4,0). Fig11: 30 areas in blocks of 20 -> 2 blocks per radius.
	wantKeys := []string{
		"cases/AS1239/0000", "cases/AS1239/0001", "cases/AS1239/0002",
		"fig11/AS1239/r100/0000", "fig11/AS1239/r100/0001",
		"fig11/AS1239/r200/0000", "fig11/AS1239/r200/0001",
	}
	if len(plan) != len(wantKeys) {
		t.Fatalf("plan has %d shards, want %d", len(plan), len(wantKeys))
	}
	var rec, irr, areas int
	seeds := map[int64]string{}
	for i, sh := range plan {
		if sh.Key != wantKeys[i] {
			t.Errorf("shard %d key = %q, want %q", i, sh.Key, wantKeys[i])
		}
		rec, irr, areas = rec+sh.Rec, irr+sh.Irr, areas+sh.Areas
		s := sh.Seed(spec.BaseSeed)
		if prev, dup := seeds[s]; dup {
			t.Errorf("shards %s and %s share seed %d", prev, sh.Key, s)
		}
		seeds[s] = sh.Key
	}
	if rec != 20 || irr != 10 || areas != 60 {
		t.Errorf("plan totals rec=%d irr=%d areas=%d, want 20/10/60", rec, irr, areas)
	}
}

func TestShardSeedIndependentOfBlockSizing(t *testing.T) {
	// The seed depends only on shard identity, not on how the spec
	// sliced the workload — resizing blocks must not perturb the seed
	// of a shard that keeps its key.
	a := Shard{Kind: KindCases, Topology: "AS7018", Block: 3, Rec: 500, Irr: 500}
	b := Shard{Kind: KindCases, Topology: "AS7018", Block: 3, Rec: 8, Irr: 2}
	if a.Seed(42) != b.Seed(42) {
		t.Error("shard seed must not depend on block sizing")
	}
	if a.Seed(42) == a.Seed(43) {
		t.Error("shard seed must depend on the base seed")
	}
}

// TestRunDeterministicAcrossWorkers is the tentpole property: the
// merged output is bit-identical for any worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	worlds := as1239(t)
	var want string
	for _, workers := range []int{1, 4, 16} {
		e := &Engine{Spec: testSpec(), Worlds: worlds, Workers: workers}
		res, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete() || res.Interrupted {
			t.Fatalf("workers=%d: run incomplete (%d/%d)", workers, len(res.Results), len(res.Plan))
		}
		got := merged(t, res, worlds)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d produced different merged output", workers)
		}
	}
}

// TestSampledSweepDeterministicAcrossWorkers: the scale-mode
// destination-sampled enumeration draws from the shard RNG, so its
// merged output must also be bit-identical for any worker count.
func TestSampledSweepDeterministicAcrossWorkers(t *testing.T) {
	worlds := as1239(t)
	spec := testSpec()
	spec.Fig11Radii = nil
	spec.DstSample = 12
	var want string
	for _, workers := range []int{1, 4} {
		e := &Engine{Spec: spec, Worlds: worlds, Workers: workers}
		res, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete() {
			t.Fatalf("workers=%d: run incomplete", workers)
		}
		got := merged(t, res, worlds)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d: sampled sweep produced different merged output", workers)
		}
	}
}

// TestInterruptResumeMatchesUninterrupted: a run stopped after 3
// shards and resumed with a different worker count merges to exactly
// the bytes of an uninterrupted run.
func TestInterruptResumeMatchesUninterrupted(t *testing.T) {
	worlds := as1239(t)
	spec := testSpec()

	full, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := merged(t, full, worlds)

	dir := t.TempDir()
	first, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 1, Dir: dir, MaxShards: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !first.Interrupted || first.Executed != 2 || first.Complete() {
		t.Fatalf("interrupted run: executed=%d interrupted=%v complete=%v",
			first.Executed, first.Interrupted, first.Complete())
	}
	if _, err := first.Datasets(worlds); err == nil {
		t.Fatal("merging an incomplete run must fail")
	}

	second, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 4, Dir: dir, Resume: true}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.Loaded != 2 || second.Executed != len(second.Plan)-2 || !second.Complete() {
		t.Fatalf("resumed run: loaded=%d executed=%d complete=%v",
			second.Loaded, second.Executed, second.Complete())
	}
	if got := merged(t, second, worlds); got != want {
		t.Fatal("interrupt+resume produced different merged output than an uninterrupted run")
	}

	// Resuming a finished sweep recomputes nothing.
	third, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 4, Dir: dir, Resume: true}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if third.Executed != 0 || third.Loaded != len(third.Plan) {
		t.Fatalf("resume of complete sweep: loaded=%d executed=%d", third.Loaded, third.Executed)
	}
	if got := merged(t, third, worlds); got != want {
		t.Fatal("checkpoint-only merge differs from fresh merge")
	}
}

// TestTornTailTolerated: a results file whose final line was cut mid
// write (kill -9) loses exactly that shard; resume reruns it and the
// merge is unchanged.
func TestTornTailTolerated(t *testing.T) {
	worlds := as1239(t)
	spec := testSpec()
	dir := t.TempDir()

	full, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 2, Dir: dir}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := merged(t, full, worlds)

	path := filepath.Join(dir, "results.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 2, Dir: dir, Resume: true}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded != len(res.Plan)-1 || res.Executed != 1 {
		t.Fatalf("after torn tail: loaded=%d executed=%d, want %d/1", res.Loaded, res.Executed, len(res.Plan)-1)
	}
	if got := merged(t, res, worlds); got != want {
		t.Fatal("torn-tail resume produced different merged output")
	}
}

// TestResumeIgnoresCorruptManifestCount: the manifest's completed
// count is advisory — resume recounts the cleanly parsed results.jsonl
// lines, so a corrupted (or crash-stale) count neither skips shards
// nor reruns recorded ones, and the merge stays bit-identical. The
// rewritten manifest carries the repaired count.
func TestResumeIgnoresCorruptManifestCount(t *testing.T) {
	worlds := as1239(t)
	spec := testSpec()

	full, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := merged(t, full, worlds)

	for _, bogus := range []int{0, 9999} {
		dir := t.TempDir()
		first, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 1, Dir: dir, MaxShards: 3}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if first.Executed != 3 {
			t.Fatalf("interrupted run executed %d shards, want 3", first.Executed)
		}

		m, err := readManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		m.Completed = bogus
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, manifestName), data, 0o644); err != nil {
			t.Fatal(err)
		}

		res, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 4, Dir: dir, Resume: true}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Loaded != 3 || res.Executed != len(res.Plan)-3 || !res.Complete() {
			t.Fatalf("completed=%d: resume loaded=%d executed=%d complete=%v",
				bogus, res.Loaded, res.Executed, res.Complete())
		}
		if got := merged(t, res, worlds); got != want {
			t.Fatalf("completed=%d: resume after manifest corruption changed the merged output", bogus)
		}
		if m, err = readManifest(dir); err != nil {
			t.Fatal(err)
		}
		if m.Completed != len(res.Plan) {
			t.Fatalf("completed=%d: manifest not repaired, holds %d want %d", bogus, m.Completed, len(res.Plan))
		}
	}
}

// TestResumeRefusesForeignCheckpoint: a checkpoint written for a
// different workload must be rejected, not silently merged.
func TestResumeRefusesForeignCheckpoint(t *testing.T) {
	worlds := as1239(t)
	dir := t.TempDir()
	spec := testSpec()
	spec.Fig11Radii = nil // keep the guard-rail fixture cheap
	if _, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 2, Dir: dir, MaxShards: 1}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Recoverable++
	_, err := (&Engine{Spec: other, Worlds: worlds, Workers: 2, Dir: dir, Resume: true}).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "different workload") {
		t.Fatalf("resume against foreign checkpoint: err = %v", err)
	}
}

// TestFreshRunTruncatesStaleState: without -resume, a reused state
// dir must not leak old shards into the new run.
func TestFreshRunTruncatesStaleState(t *testing.T) {
	worlds := as1239(t)
	dir := t.TempDir()
	spec := testSpec()
	spec.Fig11Radii = nil
	if _, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 1, Dir: dir}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 1, Dir: dir}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Loaded != 0 || res.Executed != len(res.Plan) {
		t.Fatalf("fresh run over stale dir: loaded=%d executed=%d", res.Loaded, res.Executed)
	}
	loaded, err := loadResults(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(res.Plan) {
		t.Fatalf("results file holds %d shards, want %d", len(loaded), len(res.Plan))
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := testSpec()
	mutations := map[string]func(*Spec){
		"seed":       func(s *Spec) { s.BaseSeed++ },
		"topologies": func(s *Spec) { s.Topologies = append(s.Topologies, "AS3967") },
		"rec":        func(s *Spec) { s.Recoverable++ },
		"block":      func(s *Spec) { s.BlockCases++ },
		"radii":      func(s *Spec) { s.Fig11Radii = []float64{100} },
		"areas":      func(s *Spec) { s.Fig11Areas++ },
		"dst_sample": func(s *Spec) { s.DstSample = 25 },
	}
	fp := Fingerprint(base)
	if fp != Fingerprint(testSpec()) {
		t.Fatal("fingerprint not stable across identical specs")
	}
	for name, mutate := range mutations {
		s := testSpec()
		mutate(&s)
		if Fingerprint(s) == fp {
			t.Errorf("mutation %q does not change the fingerprint", name)
		}
	}
}

func TestManifestTracksCompletion(t *testing.T) {
	worlds := as1239(t)
	dir := t.TempDir()
	spec := testSpec()
	if _, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 2, Dir: dir}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := len(spec.Shards())
	if m.Version != CheckpointVersion || m.Completed != want || m.TotalShards != want {
		t.Fatalf("manifest = %+v, want version %d, %d/%d shards", m, CheckpointVersion, want, want)
	}
	if m.Fingerprint != Fingerprint(spec) {
		t.Error("manifest fingerprint mismatch")
	}
}

// TestCheckedSweepMatchesUnchecked: Spec.Check validates, it must not
// perturb results — the checked run's merged output is bit-identical
// to the unchecked run's, and Check stays out of the checkpoint
// fingerprint so checked and unchecked runs share checkpoints.
func TestCheckedSweepMatchesUnchecked(t *testing.T) {
	worlds := as1239(t)
	spec := testSpec()
	plain, err := (&Engine{Spec: spec, Worlds: worlds, Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := merged(t, plain, worlds)

	checked := spec
	checked.Check = true
	res, err := (&Engine{Spec: checked, Worlds: worlds, Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatalf("checked sweep failed an invariant: %v", err)
	}
	if got := merged(t, res, worlds); got != want {
		t.Error("Check changed the sweep output")
	}
	if Fingerprint(checked) != Fingerprint(spec) {
		t.Error("Check leaked into the checkpoint fingerprint")
	}
}
