package sweep

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestDefaultFailureSpecIsDefaultPath pins the backward-compatibility
// contract of the Failure field: an unset spec produces byte-identical
// merged output to an explicit "disk" spec (the same generator), and
// its canonical JSON — hence its checkpoint fingerprint — contains no
// failure key at all, so checkpoints from before the field existed
// still load.
func TestDefaultFailureSpecIsDefaultPath(t *testing.T) {
	worlds := as1239(t)

	unset := testSpec()
	explicit := testSpec()
	explicit.Failure = "disk"

	var outs []string
	for _, spec := range []Spec{unset, explicit} {
		e := &Engine{Spec: spec, Worlds: worlds, Workers: 4}
		res, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete() {
			t.Fatal("run incomplete")
		}
		outs = append(outs, merged(t, res, worlds))
	}
	if outs[0] != outs[1] {
		t.Fatal("explicit \"disk\" produced different output than the unset default")
	}

	b, err := json.Marshal(unset)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "failure") {
		t.Fatalf("unset Failure leaks into the canonical JSON: %s", b)
	}
	if Fingerprint(unset) == Fingerprint(explicit) {
		t.Fatal("an explicit generator spec must change the fingerprint (different checkpoints)")
	}
}

// TestFailureSpecFingerprinted: different generators never share a
// checkpoint fingerprint.
func TestFailureSpecFingerprinted(t *testing.T) {
	seen := map[string]string{}
	for _, spec := range []string{"", "disk", "disks", "disks:k=3", "cut", "srlg", "cascade", "transient", "link"} {
		s := testSpec()
		s.Failure = spec
		fp := Fingerprint(s)
		if prev, dup := seen[fp]; dup {
			t.Errorf("specs %q and %q share fingerprint %s", prev, spec, fp)
		}
		seen[fp] = spec
	}
}

// TestFailureSpecFailFast: an invalid generator spec aborts Run before
// any shard executes, and a Fig. 11 sweep refuses generators that
// cannot pin a radius.
func TestFailureSpecFailFast(t *testing.T) {
	worlds := as1239(t)

	bad := testSpec()
	bad.Failure = "frisbee:oops"
	if _, err := (&Engine{Spec: bad, Worlds: worlds}).Run(context.Background()); err == nil {
		t.Fatal("invalid failure spec must abort the run")
	}

	noRadius := testSpec() // testSpec has Fig11 shards
	noRadius.Failure = "link"
	_, err := (&Engine{Spec: noRadius, Worlds: worlds}).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "radius") {
		t.Fatalf("fig11 with a radius-free generator must fail fast, got %v", err)
	}

	// The same generator without Fig. 11 shards is fine.
	casesOnly := testSpec()
	casesOnly.Failure = "link"
	casesOnly.Fig11Radii, casesOnly.Fig11Areas = nil, 0
	res, err := (&Engine{Spec: casesOnly, Worlds: worlds}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatal("cases-only link sweep incomplete")
	}
}

// TestGeneratorSweepDeterministicAcrossWorkers extends the core
// determinism property to non-default generators, checked sweeps
// included: merged output is a pure function of the spec.
func TestGeneratorSweepDeterministicAcrossWorkers(t *testing.T) {
	worlds := as1239(t)
	for _, gen := range []string{"disks:k=2,disjoint", "cut", "cascade:steps=2"} {
		gen := gen
		t.Run(gen, func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 8} {
				spec := testSpec()
				spec.Failure = gen
				spec.Check = true
				e := &Engine{Spec: spec, Worlds: worlds, Workers: workers}
				res, err := e.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if !res.Complete() {
					t.Fatal("run incomplete")
				}
				got := merged(t, res, worlds)
				if want == "" {
					want = got
				} else if got != want {
					t.Fatalf("workers=%d produced different merged output", workers)
				}
			}
		})
	}
}
