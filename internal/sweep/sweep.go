// Package sweep turns the paper's evaluation — an embarrassingly
// parallel sweep over (topology × experiment × test case) — into a
// sharded, checkpointed, deterministically seeded engine.
//
// A run is decomposed into shards: fixed-size blocks of test cases per
// topology (Tables III/IV, Figs. 7-10/12-13) and fixed-size blocks of
// failure areas per (topology, radius) pair (Fig. 11). Every shard
// derives its RNG from a stable hash of (baseSeed, shardKey) via
// internal/seed, so a shard's results depend only on its identity —
// not on which worker ran it, in what order, or in which process.
// Aggregates are assembled by concatenating shard results in plan
// order, which makes them bit-identical for any worker count and
// across interrupt/resume boundaries; internal/sweep's tests and the
// CLI-level tests of cmd/rtrsim assert exactly that.
//
// Shards stream to a JSONL results file as they complete, alongside a
// manifest that fingerprints the workload; a resumed run loads the
// results file, skips every shard with a cleanly recorded line
// (a torn tail line from a kill simply reruns that shard), and merges
// recorded and fresh results identically.
package sweep

import (
	"fmt"
	"strconv"

	"repro/internal/seed"
)

// Kind labels what a shard computes.
type Kind string

const (
	// KindCases is one block of recoverable+irrecoverable test cases
	// on one topology, run through all three protocols.
	KindCases Kind = "cases"
	// KindFig11 is one block of random failure areas at one radius on
	// one topology, counting failed and irrecoverable routing paths.
	KindFig11 Kind = "fig11"
	// KindUtil is one (topology, scheme) congestion measurement: a
	// gravity-model traffic matrix replayed under failure draws with
	// per-link utilization accounting before/after recovery.
	KindUtil Kind = "util"
)

// Default congestion-shard sizing.
const (
	DefaultUtilPairs     = 2000
	DefaultUtilScenarios = 5
)

// Default shard granularities. Blocks must be big enough to amortize
// per-shard setup and small enough that a checkpoint loses little
// work: at paper scale (10,000+10,000 cases) the defaults give 20
// case shards per topology.
const (
	DefaultBlockCases = 500
	DefaultBlockAreas = 50
)

// Spec describes a sweep workload. It is the unit of checkpoint
// compatibility: its canonical JSON is fingerprinted into the
// manifest, and a resume against a different Spec is refused.
type Spec struct {
	// BaseSeed feeds both topology synthesis (used directly, as
	// elsewhere in the repo) and every shard RNG (via seed.Derive).
	BaseSeed int64 `json:"base_seed"`
	// Topologies lists Table II topology names, in output order.
	Topologies []string `json:"topologies"`
	// Recoverable and Irrecoverable are per-topology case targets.
	Recoverable   int `json:"recoverable"`
	Irrecoverable int `json:"irrecoverable"`
	// BlockCases caps the recoverable and irrecoverable cases per
	// shard (DefaultBlockCases when 0).
	BlockCases int `json:"block_cases,omitempty"`

	// Fig11Radii enables Fig. 11 shards when non-empty.
	Fig11Radii []float64 `json:"fig11_radii,omitempty"`
	// Fig11Areas is the number of failure areas per radius.
	Fig11Areas int `json:"fig11_areas,omitempty"`
	// BlockAreas caps the areas per Fig. 11 shard (DefaultBlockAreas
	// when 0).
	BlockAreas int `json:"block_areas,omitempty"`

	// DstSample, when > 0, routes case shards through the scale-mode
	// enumerator (sim.CollectBothSampledG): initiators come from the
	// failure's adjacency and only DstSample destinations per scenario
	// are examined, keeping shard cost independent of n^2 on 10^5-node
	// graphs. The sample is drawn from the shard RNG, so results stay
	// a pure function of shard identity — bit-identical merges for any
	// worker count — but they differ from the full enumeration, so the
	// knob is part of the checkpoint fingerprint (omitempty: absent
	// means full enumeration and existing fingerprints are unchanged).
	DstSample int `json:"dst_sample,omitempty"`

	// Failure is the failure-generator spec (failure.ParseSpec
	// grammar) every shard draws scenarios from; empty means the
	// paper's single-disk model, which keeps the fingerprint — and
	// therefore every existing checkpoint — unchanged. A different
	// generator produces different scenarios, so the spec is part of
	// the checkpoint fingerprint (omitempty: only when set). The spec
	// is validated fail-fast in Engine.Run before any shard runs.
	// Fig. 11 shards additionally require the generator to support
	// radius pinning (failure.FixedRadius).
	Failure string `json:"failure,omitempty"`

	// UtilSchemes enables congestion shards when non-empty: one shard
	// per (topology, scheme name), each synthesizing a gravity-model
	// traffic matrix of UtilPairs demands, calibrating capacity to the
	// heavy-load operating point, and replaying the matrix under
	// UtilScenarios failure draws with the named recovery scheme.
	// Scheme names resolve against the recovery-scheme registry
	// (internal/scheme), fail-fast in Engine.Run. All three knobs
	// change results, so they are fingerprinted (omitempty: absent
	// keeps every existing checkpoint fingerprint unchanged).
	UtilSchemes   []string `json:"util_schemes,omitempty"`
	UtilPairs     int      `json:"util_pairs,omitempty"`
	UtilScenarios int      `json:"util_scenarios,omitempty"`

	// Check runs the invariant oracle (internal/invariant) over every
	// case a shard generates and fails the whole sweep on the first
	// violation, carrying a minimized repro string. Only case shards
	// are checked: Fig. 11 shards count failed paths and produce no
	// per-case protocol outputs to validate. Check changes no results
	// and is deliberately excluded from the checkpoint fingerprint —
	// a checked resume of an unchecked run (and vice versa) is valid.
	Check bool `json:"-"`

	// Phase2 names the phase-2 route engine the worlds were built with
	// (spt.ParseEngine spellings; empty means the default). Engines are
	// proven output-identical (the goal engines reproduce the canonical
	// route bit for bit), so Phase2, like Check, changes no results and
	// is deliberately excluded from the checkpoint fingerprint: a
	// checkpoint written under one engine resumes cleanly under another.
	// Engine.Run validates that the supplied worlds match.
	Phase2 string `json:"-"`
}

func (s Spec) blockCases() int {
	if s.BlockCases > 0 {
		return s.BlockCases
	}
	return DefaultBlockCases
}

func (s Spec) blockAreas() int {
	if s.BlockAreas > 0 {
		return s.BlockAreas
	}
	return DefaultBlockAreas
}

func (s Spec) utilPairs() int {
	if s.UtilPairs > 0 {
		return s.UtilPairs
	}
	return DefaultUtilPairs
}

func (s Spec) utilScenarios() int {
	if s.UtilScenarios > 0 {
		return s.UtilScenarios
	}
	return DefaultUtilScenarios
}

// Shard is one deterministic unit of work. Its Key is stable across
// runs and is what the checkpoint records.
type Shard struct {
	Key      string `json:"key"`
	Kind     Kind   `json:"kind"`
	Topology string `json:"topology"`
	Block    int    `json:"block"`
	// Rec and Irr are this shard's case targets (KindCases).
	Rec int `json:"rec,omitempty"`
	Irr int `json:"irr,omitempty"`
	// Radius and Areas size a Fig. 11 shard (KindFig11).
	Radius float64 `json:"radius,omitempty"`
	Areas  int     `json:"areas,omitempty"`
	// Scheme names the recovery scheme a congestion shard replays
	// (KindUtil).
	Scheme string `json:"scheme,omitempty"`
}

// Seed derives the shard's RNG seed from the sweep's base seed. Two
// shards never share a stream, and the derivation does not depend on
// the spec's shard sizing — but resizing blocks changes how many
// cases each stream contributes, so block sizes are still part of the
// checkpoint fingerprint.
func (sh Shard) Seed(base int64) int64 {
	switch sh.Kind {
	case KindFig11:
		return seed.Derive(base, string(sh.Kind), sh.Topology,
			strconv.FormatFloat(sh.Radius, 'g', -1, 64), strconv.Itoa(sh.Block))
	case KindUtil:
		return seed.Derive(base, string(sh.Kind), sh.Topology, sh.Scheme, strconv.Itoa(sh.Block))
	default:
		return seed.Derive(base, string(sh.Kind), sh.Topology, strconv.Itoa(sh.Block))
	}
}

// Shards enumerates the sweep's shards in plan order: all case shards
// in topology order, then all Fig. 11 shards in (topology, radius)
// order. Plan order is the merge order, and therefore the order that
// defines the aggregate output.
func (s Spec) Shards() []Shard {
	var out []Shard
	bc := s.blockCases()
	for _, as := range s.Topologies {
		rec, irr := s.Recoverable, s.Irrecoverable
		for b := 0; rec > 0 || irr > 0; b++ {
			sh := Shard{
				Key:      fmt.Sprintf("cases/%s/%04d", as, b),
				Kind:     KindCases,
				Topology: as,
				Block:    b,
				Rec:      min(bc, rec),
				Irr:      min(bc, irr),
			}
			rec -= sh.Rec
			irr -= sh.Irr
			out = append(out, sh)
		}
	}
	if len(s.Fig11Radii) > 0 && s.Fig11Areas > 0 {
		ba := s.blockAreas()
		for _, as := range s.Topologies {
			for _, r := range s.Fig11Radii {
				areas := s.Fig11Areas
				for b := 0; areas > 0; b++ {
					n := min(ba, areas)
					areas -= n
					out = append(out, Shard{
						Key: fmt.Sprintf("fig11/%s/r%s/%04d", as,
							strconv.FormatFloat(r, 'g', -1, 64), b),
						Kind:     KindFig11,
						Topology: as,
						Block:    b,
						Radius:   r,
						Areas:    n,
					})
				}
			}
		}
	}
	for _, as := range s.Topologies {
		for _, sm := range s.UtilSchemes {
			out = append(out, Shard{
				Key:      fmt.Sprintf("util/%s/%s", as, sm),
				Kind:     KindUtil,
				Topology: as,
				Scheme:   sm,
			})
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
