package sweep

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failure"
	"repro/internal/invariant"
	"repro/internal/par"
	"repro/internal/perf"
	"repro/internal/routing"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/spt"
	"repro/internal/traffic"
)

// Engine executes a sweep Spec over a worker pool, checkpointing as it
// goes. The zero Dir disables checkpointing (everything stays in
// memory); Resume and interruption tolerance need a Dir.
type Engine struct {
	Spec Spec
	// Worlds maps every topology named in the spec to its built world.
	// Worlds must be constructed from the spec's BaseSeed by the
	// caller; the engine only derives per-shard RNGs.
	Worlds map[string]*sim.World
	// Workers is the shard-level parallelism (1 when <= 0). Shards run
	// their cases serially inside, so total parallelism == Workers.
	Workers int
	// Dir is the checkpoint directory (results.jsonl + manifest.json).
	Dir string
	// Resume loads previously recorded shards from Dir and skips them.
	Resume bool
	// MaxShards, when > 0, stops the run after that many shards have
	// been executed in this process (loaded shards don't count). It
	// exists to exercise the interrupt path deterministically in tests
	// and smoke targets; a SIGINT-cancelled context behaves the same
	// way at an arbitrary point.
	MaxShards int
	// Progress, when set with ProgressEvery > 0, receives a one-line
	// status every ProgressEvery.
	Progress      io.Writer
	ProgressEvery time.Duration
	// Recorder, when set, receives per-shard timings.
	Recorder *perf.Recorder

	// gen is the parsed Spec.Failure generator, resolved fail-fast at
	// the top of Run before any shard executes.
	gen failure.Generator
}

// RunResult is the outcome of Engine.Run: every known shard result
// (loaded + executed) keyed for merging, plus interruption state.
type RunResult struct {
	Spec Spec
	// Plan is the full shard plan; merges follow its order.
	Plan    []Shard
	Results map[string]*ShardResult
	// Loaded counts shards recovered from the checkpoint; Executed
	// counts shards computed by this run.
	Loaded   int
	Executed int
	// Interrupted reports that the run stopped (context cancellation
	// or MaxShards) before completing the plan.
	Interrupted bool
}

// Complete reports whether every planned shard has a result.
func (r *RunResult) Complete() bool { return len(r.Results) == len(r.Plan) }

// Run executes all shards not already checkpointed. Cancelling ctx
// stops the engine from starting new shards; in-flight shards finish
// and are checkpointed, so every shard is either fully recorded or
// untouched — the invariant resume depends on.
func (e *Engine) Run(ctx context.Context) (*RunResult, error) {
	eng, err := spt.ParseEngine(e.Spec.Phase2)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	e.gen, err = failure.ParseSpecOrDefault(e.Spec.Failure)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	plan := e.Spec.Shards()
	if len(e.Spec.Fig11Radii) > 0 && e.Spec.Fig11Areas > 0 {
		if _, ok := e.gen.(failure.FixedRadius); !ok {
			return nil, fmt.Errorf("sweep: generator %q cannot pin a radius; Fig. 11 sweeps need a failure.FixedRadius model",
				e.gen.Name())
		}
	}
	for _, sh := range plan {
		w := e.Worlds[sh.Topology]
		if w == nil {
			return nil, fmt.Errorf("sweep: no world for topology %q", sh.Topology)
		}
		if w.Phase2 != eng {
			return nil, fmt.Errorf("sweep: world %q built with phase-2 engine %s, spec wants %s",
				sh.Topology, w.Phase2, eng)
		}
		// Congestion shards resolve their scheme fail-fast, and the
		// scheme's Prepare hook vets the world (e.g. mrc on a scale-mode
		// world) before any shard spends compute.
		if sh.Kind == KindUtil {
			s, err := scheme.Get(sh.Scheme)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			if err := s.Prepare(w); err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
		}
	}
	res := &RunResult{
		Spec:    e.Spec,
		Plan:    plan,
		Results: make(map[string]*ShardResult, len(plan)),
	}

	var ckpt *checkpointWriter
	if e.Dir != "" {
		var loaded map[string]*ShardResult
		var err error
		ckpt, loaded, err = openCheckpoint(e.Dir, e.Spec, len(plan), e.Resume)
		if err != nil {
			return nil, err
		}
		defer ckpt.close()
		for k, v := range loaded {
			res.Results[k] = v
		}
		res.Loaded = len(loaded)
	}

	var pending []Shard
	for _, sh := range plan {
		if _, ok := res.Results[sh.Key]; !ok {
			pending = append(pending, sh)
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.Workers
	if workers <= 0 {
		workers = 1
	}

	var executed atomic.Int64
	if e.Progress != nil && e.ProgressEvery > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(e.ProgressEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					fmt.Fprintf(e.Progress, "sweep: %d/%d shards done (%d resumed)\n",
						res.Loaded+int(executed.Load()), len(plan), res.Loaded)
				}
			}
		}()
	}

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	par.ForContext(runCtx, len(pending), workers, func(i int) {
		sh := pending[i]
		start := time.Now()
		sr, err := e.runShard(sh)
		if err != nil {
			fail(fmt.Errorf("shard %s: %w", sh.Key, err))
			return
		}
		elapsed := time.Since(start)
		sr.ElapsedNs = elapsed.Nanoseconds()
		if e.Recorder != nil {
			e.Recorder.Observe("sweep-shard-"+string(sh.Kind), sh.Topology, elapsed, len(sr.Rec)+len(sr.Irr))
		}
		if ckpt != nil {
			if err := ckpt.append(sr); err != nil {
				fail(err)
				return
			}
		}
		mu.Lock()
		res.Results[sh.Key] = sr
		mu.Unlock()
		if n := executed.Add(1); e.MaxShards > 0 && int(n) >= e.MaxShards {
			cancel()
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	res.Executed = int(executed.Load())
	res.Interrupted = res.Executed < len(pending)
	return res, nil
}

// runShard computes one shard from scratch. All randomness comes from
// the shard's derived seed, so the result is a pure function of
// (spec, shard identity) — independent of workers, order, process.
// With Spec.Check set, every generated case additionally passes
// through the invariant oracle; the first violation aborts the shard
// (and, via Run's fail-fast, the sweep) with a repro-carrying error.
func (e *Engine) runShard(sh Shard) (*ShardResult, error) {
	w := e.Worlds[sh.Topology]
	rng := rand.New(rand.NewSource(sh.Seed(e.Spec.BaseSeed)))
	sr := &ShardResult{
		Key:      sh.Key,
		Kind:     sh.Kind,
		Topology: sh.Topology,
		Block:    sh.Block,
		Radius:   sh.Radius,
	}
	switch sh.Kind {
	case KindUtil:
		util, err := e.runUtilShard(sh, w, rng)
		if err != nil {
			return nil, err
		}
		sr.Scheme = sh.Scheme
		sr.Util = util
	case KindFig11:
		// Fig. 11 shards only count failed paths — no per-case
		// protocol output exists for Check to validate. The radius
		// pin goes through the generator (validated as FixedRadius in
		// Run); the default disk model draws bit-identically to the
		// legacy RandomArea(rng, r, r) path.
		pinned := e.gen.(failure.FixedRadius).WithRadius(sh.Radius)
		for i := 0; i < sh.Areas; i++ {
			sc := pinned.Generate(w.Topo, rng)
			f, ir := sim.CountFailedPaths(w, sc)
			sr.Failed += f
			sr.Irrecoverable += ir
		}
	default:
		var rec, irr []*sim.Case
		if ds := e.Spec.DstSample; ds > 0 {
			rec, irr = sim.CollectBothSampledG(w, e.gen, rng, sh.Rec, sh.Irr, ds)
		} else {
			rec, irr = sim.CollectBothG(w, e.gen, rng, sh.Rec, sh.Irr)
		}
		if e.Spec.Check {
			// The checking profile follows the generator: invariants
			// that assume a single connected failure perimeter are
			// gated off for multi-perimeter models (their breakdown is
			// classified by invariant.ClassifyPerimeter instead).
			k := invariant.New(w).WithProfile(invariant.ProfileFor(e.gen))
			if err := k.CheckCases(rec); err != nil {
				return nil, err
			}
			if err := k.CheckCases(irr); err != nil {
				return nil, err
			}
		}
		// Cases run serially inside a shard: the engine owns the
		// parallelism, and the per-case order defines the record order.
		sr.Rec = sim.Records(sim.RunAllN(w, rec, 1))
		sr.Irr = sim.Records(sim.RunAllN(w, irr, 1))
	}
	return sr, nil
}

// runUtilShard measures one (topology, scheme) congestion shard: a
// gravity matrix synthesized from the shard RNG, capacity calibrated
// to the heavy-load operating point on clean tables, then the matrix
// replayed under the spec's failure draws with the named scheme
// carrying recovery traffic. Post columns aggregate by max across
// scenarios; with Spec.Check set, the result passes the utilization
// oracle before the shard is recorded.
func (e *Engine) runUtilShard(sh Shard, w *sim.World, rng *rand.Rand) (*traffic.Result, error) {
	s, err := scheme.Get(sh.Scheme)
	if err != nil {
		return nil, err
	}
	m := traffic.Gravity(w.Topo, e.Spec.utilPairs(), rng)
	base := traffic.Baseline(w, m)
	capacity := traffic.CalibrateCapacity(base, traffic.HeavyLoadTarget)
	res := &traffic.Result{
		Topology: sh.Topology,
		Scheme:   sh.Scheme,
		Pairs:    len(m.Demands),
		Capacity: capacity,
		Pre:      traffic.Summarize(base, capacity, nil, w.Topo.G),
	}
	run := func(c *sim.Case) (bool, []routing.Walk, error) {
		r, err := s.Run(w, c, nil)
		if err != nil {
			return false, nil, err
		}
		return r.Delivered, r.Walks, nil
	}
	for i := 0; i < e.Spec.utilScenarios(); i++ {
		sc := e.gen.Generate(w.Topo, rng)
		load, fl, err := traffic.RunUnder(w, sc, m, run)
		if err != nil {
			return nil, err
		}
		res.Merge(traffic.Summarize(load, capacity, sc, w.Topo.G), fl)
	}
	if e.Spec.Check {
		if vs := invariant.CheckUtil(*res, traffic.HeavyLoadTarget); len(vs) > 0 {
			return nil, vs[0]
		}
	}
	return res, nil
}
