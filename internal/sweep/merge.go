package sweep

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// Datasets assembles the per-topology datasets from a completed run
// by concatenating case-shard records in plan order. Because every
// shard's records are a pure function of its identity, the merged
// dataset is identical however the shards were scheduled — and
// identical whether a shard's records were computed in this process
// or loaded from a checkpoint.
func (r *RunResult) Datasets(worlds map[string]*sim.World) (map[string]*sim.Dataset, error) {
	out := map[string]*sim.Dataset{}
	for _, sh := range r.Plan {
		if sh.Kind != KindCases {
			continue
		}
		sr, ok := r.Results[sh.Key]
		if !ok {
			return nil, fmt.Errorf("sweep: incomplete run: shard %s has no result", sh.Key)
		}
		d := out[sh.Topology]
		if d == nil {
			w := worlds[sh.Topology]
			if w == nil {
				return nil, fmt.Errorf("sweep: no world for topology %q", sh.Topology)
			}
			d = &sim.Dataset{World: w}
			out[sh.Topology] = d
		}
		d.Rec = append(d.Rec, sr.Rec...)
		d.Irr = append(d.Irr, sr.Irr...)
	}
	return out, nil
}

// Fig11 assembles the per-topology Fig. 11 curves by summing each
// (topology, radius) pair's failed-path counts across its shards in
// plan order, then deriving the irrecoverable percentage once per
// radius — so the curve is exact regardless of how areas were split
// into blocks.
func (r *RunResult) Fig11() (map[string][]sim.Fig11Point, error) {
	type counts struct{ failed, irr int }
	acc := map[string]map[float64]*counts{}
	for _, sh := range r.Plan {
		if sh.Kind != KindFig11 {
			continue
		}
		sr, ok := r.Results[sh.Key]
		if !ok {
			return nil, fmt.Errorf("sweep: incomplete run: shard %s has no result", sh.Key)
		}
		byRadius := acc[sh.Topology]
		if byRadius == nil {
			byRadius = map[float64]*counts{}
			acc[sh.Topology] = byRadius
		}
		c := byRadius[sh.Radius]
		if c == nil {
			c = &counts{}
			byRadius[sh.Radius] = c
		}
		c.failed += sr.Failed
		c.irr += sr.Irrecoverable
	}
	out := map[string][]sim.Fig11Point{}
	for as, byRadius := range acc {
		points := make([]sim.Fig11Point, 0, len(r.Spec.Fig11Radii))
		for _, radius := range r.Spec.Fig11Radii {
			c := byRadius[radius]
			if c == nil {
				continue
			}
			points = append(points, sim.NewFig11Point(radius, c.failed, c.irr))
		}
		out[as] = points
	}
	return out, nil
}

// Utils collects the congestion measurements in plan order — one per
// (topology, scheme) — so tables and CSVs print rows in the same order
// regardless of scheduling.
func (r *RunResult) Utils() ([]*traffic.Result, error) {
	var out []*traffic.Result
	for _, sh := range r.Plan {
		if sh.Kind != KindUtil {
			continue
		}
		sr, ok := r.Results[sh.Key]
		if !ok {
			return nil, fmt.Errorf("sweep: incomplete run: shard %s has no result", sh.Key)
		}
		if sr.Util == nil {
			return nil, fmt.Errorf("sweep: shard %s recorded no utilization result", sh.Key)
		}
		out = append(out, sr.Util)
	}
	return out, nil
}
