package routing

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/spt"
	"repro/internal/topology"
)

// Tables are the converged link-state routing tables of an entire
// domain: for every destination, each router's next hop along the
// shortest path (the paper's topologies route on hop count; the
// implementation honors whatever link costs the graph carries).
//
// Tables represent the PRE-FAILURE state: during IGP convergence
// routers keep forwarding with these tables, which is exactly the
// window RTR operates in.
//
// Tables come in two construction modes. The eager constructors build
// every destination's reverse tree up front (right for sweeps over
// Rocketfuel-scale maps, where all destinations get touched anyway).
// The lazy constructors defer each destination's tree until first use:
// on a 10^5-node graph the full table is ~10^5 trees x ~10^5 entries
// (tens of GB), while a serving workload touches a handful of
// destinations — lazy tables bound memory by destinations actually
// queried. Both modes produce bit-identical trees; laziness is purely
// a materialization strategy, and every accessor works on either.
type Tables struct {
	topo  *topology.Topology
	under graph.Denied // the failure overlay the tables converged on
	byDst []*spt.Tree  // reverse tree per destination; nil slots lazy

	// Lazy mode (lazyOnce non-nil): tree(dst) materializes byDst[dst]
	// on first use — from seed's tree via the delete-only incremental
	// recompute when seed is set, via a cold build otherwise.
	lazyOnce []sync.Once
	seed     *Tables      // tables to warm-start from, or nil
	delta    graph.Denied // failures new relative to seed.under
}

// ComputeTables computes converged routing tables for topo.
func ComputeTables(topo *topology.Topology) *Tables {
	return ComputeTablesUnder(topo, graph.Nothing)
}

// ComputeTablesUnder computes the routing tables the domain converges
// to once every router has learned the failures in d — i.e. the
// post-convergence state on the surviving topology.
func ComputeTablesUnder(topo *topology.Topology, d graph.Denied) *Tables {
	n := topo.G.NumNodes()
	t := &Tables{topo: topo, under: d, byDst: make([]*spt.Tree, n)}
	// One reverse tree per destination, fully independent: fan out
	// across CPUs (scratch state comes from the spt workspace pool).
	par.For(n, 0, func(dst int) {
		t.byDst[dst] = spt.ComputeReverse(topo.G, graph.NodeID(dst), d)
	})
	return t
}

// ComputeTablesLazy returns tables over topo under d whose per-
// destination trees are built on first use (safe for concurrent use).
// Results are bit-identical to ComputeTablesUnder; memory is bounded
// by the number of distinct destinations queried.
func ComputeTablesLazy(topo *topology.Topology, d graph.Denied) *Tables {
	n := topo.G.NumNodes()
	return &Tables{
		topo: topo, under: d,
		byDst:    make([]*spt.Tree, n),
		lazyOnce: make([]sync.Once, n),
	}
}

// Lazy reports whether t materializes destination trees on demand.
func (t *Tables) Lazy() bool { return t.lazyOnce != nil }

// tree returns dst's reverse tree, materializing it first in lazy
// mode. Concurrent callers block on the same sync.Once, so each tree
// is built exactly once.
func (t *Tables) tree(dst graph.NodeID) *spt.Tree {
	if t.lazyOnce == nil {
		return t.byDst[dst]
	}
	t.lazyOnce[dst].Do(func() {
		if t.seed != nil {
			t.byDst[dst] = spt.Recompute(t.topo.G, t.seed.tree(dst), t.seed.under, t.delta)
		} else {
			t.byDst[dst] = spt.ComputeReverse(t.topo.G, dst, t.under)
		}
	})
	return t.byDst[dst]
}

// RecomputeTablesUnder computes the converged tables under the
// combined failures of pre's overlay and d, seeding every
// destination's reverse tree from pre and applying the delete-only
// incremental update instead of a cold Dijkstra per destination. d
// must only remove elements relative to pre's overlay (the
// convergence case: routers learn of failures, never of repairs). The
// result is bit-identical to ComputeTablesUnder on the combined
// overlay; only the subtrees hanging off failed elements are rebuilt.
//
// With a nil pre, or pre built for a different topology, it falls
// back to the cold build.
func RecomputeTablesUnder(topo *topology.Topology, pre *Tables, d graph.Denied) *Tables {
	if pre == nil || pre.topo != topo {
		return ComputeTablesUnder(topo, d)
	}
	under := d
	if pre.under != graph.Nothing {
		under = graph.Union{X: pre.under, Y: d}
	}
	n := topo.G.NumNodes()
	if pre.Lazy() {
		// A lazy pre means the caller is bounding memory by queried
		// destinations; the recomputed tables inherit that, deferring
		// each destination's incremental update until first use (and
		// materializing the seed tree it updates from on demand).
		return &Tables{
			topo: topo, under: under,
			byDst:    make([]*spt.Tree, n),
			lazyOnce: make([]sync.Once, n),
			seed:     pre,
			delta:    d,
		}
	}
	t := &Tables{topo: topo, under: under, byDst: make([]*spt.Tree, n)}
	par.For(n, 0, func(dst int) {
		t.byDst[dst] = spt.Recompute(topo.G, pre.tree(graph.NodeID(dst)), pre.under, d)
	})
	return t
}

// Topology returns the topology the tables were computed for.
func (t *Tables) Topology() *topology.Topology { return t.topo }

// Under returns the failure overlay the tables were computed under
// (graph.Nothing for pre-failure tables).
func (t *Tables) Under() graph.Denied { return t.under }

// NextHop returns v's default next hop and outgoing link toward dst.
// ok is false when v is the destination itself or dst is unreachable
// in the converged (pre-failure) topology.
func (t *Tables) NextHop(v, dst graph.NodeID) (nh graph.NodeID, link graph.LinkID, ok bool) {
	tree := t.tree(dst)
	p, ok := tree.NextHop(v)
	if !ok {
		return 0, 0, false
	}
	return p, graph.LinkID(tree.ParentLink[v]), true
}

// Dist returns the converged path cost from v to dst.
func (t *Tables) Dist(v, dst graph.NodeID) (float64, bool) {
	return t.tree(dst).CostTo(v)
}

// Hops returns the number of links on the converged path from v to dst.
func (t *Tables) Hops(v, dst graph.NodeID) (int, bool) {
	return t.tree(dst).Hops(v)
}

// PathNodes returns the converged routing path from v to dst, v first.
func (t *Tables) PathNodes(v, dst graph.NodeID) ([]graph.NodeID, bool) {
	return t.tree(dst).PathNodes(v)
}

// PathLinks returns the links of the converged routing path from v to
// dst in travel order.
func (t *Tables) PathLinks(v, dst graph.NodeID) ([]graph.LinkID, bool) {
	return t.tree(dst).PathLinks(v)
}

// DestTree returns the reverse shortest-path tree for dst. The tree is
// shared; callers must not modify it.
func (t *Tables) DestTree(dst graph.NodeID) *spt.Tree { return t.tree(dst) }

// PathFails reports whether the converged routing path from src to dst
// contains a failed node or link under d (the paper's definition of a
// failed routing path). The source itself is not checked; a path from
// a failed source is meaningless and handled by the caller.
func (t *Tables) PathFails(src, dst graph.NodeID, d graph.Denied) (bool, error) {
	nodes, ok := t.PathNodes(src, dst)
	if !ok {
		return false, fmt.Errorf("routing: no converged path %d -> %d", src, dst)
	}
	links, _ := t.PathLinks(src, dst)
	for _, v := range nodes[1:] {
		if d.NodeDown(v) {
			return true, nil
		}
	}
	for _, l := range links {
		if d.LinkDown(l) {
			return true, nil
		}
	}
	return false, nil
}
