// Package routing provides the packet and forwarding substrate shared
// by RTR and the baselines: the recovery packet header with its binary
// wire codec (the paper's mode / rec_init / failed_link / cross_link
// fields plus the source route), link-state routing tables, the
// restricted per-node failure view, and hop/delay accounting.
package routing

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
)

// Mode is the forwarding mode carried in the packet header.
type Mode uint8

const (
	// ModeDefault marks a packet forwarded by the default link-state
	// routing protocol (header mode 0 in the paper).
	ModeDefault Mode = iota
	// ModeCollect marks a packet forwarded by RTR's first phase
	// (header mode 1 in the paper).
	ModeCollect
	// ModeSource marks a packet forwarded along a source route (RTR's
	// second phase, and FCP's source-routing variant).
	ModeSource
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDefault:
		return "default"
	case ModeCollect:
		return "collect"
	case ModeSource:
		return "source"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Header is the recovery header carried by packets during IGP
// convergence. Link and node IDs occupy 16 bits on the wire, exactly
// as the paper specifies.
type Header struct {
	Mode    Mode
	RecInit graph.NodeID
	// FailedLinks is the failed_link field: IDs of failed links
	// recorded by routers adjacent to the failure area.
	FailedLinks []graph.LinkID
	// CrossLinks is the cross_link field: links whose crossers are
	// excluded from next-hop selection (Constraints 1 and 2).
	CrossLinks []graph.LinkID
	// SourceRoute is the remaining source route (node IDs), used in
	// ModeSource. SourceIdx points at the next node to visit.
	SourceRoute []graph.NodeID
	SourceIdx   int
}

// HasFailedLink reports whether id is already recorded in failed_link.
func (h *Header) HasFailedLink(id graph.LinkID) bool {
	for _, f := range h.FailedLinks {
		if f == id {
			return true
		}
	}
	return false
}

// RecordFailedLink appends id to failed_link unless already present.
// It reports whether the header changed.
func (h *Header) RecordFailedLink(id graph.LinkID) bool {
	if h.HasFailedLink(id) {
		return false
	}
	h.FailedLinks = append(h.FailedLinks, id)
	return true
}

// HasCrossLink reports whether id is already recorded in cross_link.
func (h *Header) HasCrossLink(id graph.LinkID) bool {
	for _, c := range h.CrossLinks {
		if c == id {
			return true
		}
	}
	return false
}

// RecordCrossLink appends id to cross_link unless already present.
// It reports whether the header changed.
func (h *Header) RecordCrossLink(id graph.LinkID) bool {
	if h.HasCrossLink(id) {
		return false
	}
	h.CrossLinks = append(h.CrossLinks, id)
	return true
}

// RecordingBytes is the number of bytes the header spends on recording
// recovery information — the paper's transmission-overhead metric.
// Each recorded link ID and each source-route entry is 16 bits.
func (h *Header) RecordingBytes() int {
	return 2 * (len(h.FailedLinks) + len(h.CrossLinks) + len(h.SourceRoute))
}

// EncodedSize is the exact number of bytes AppendBinary emits.
func (h *Header) EncodedSize() int {
	return 1 + 2 + 2 + 2*len(h.FailedLinks) + 2 + 2*len(h.CrossLinks) + 2 + 2 + 2*len(h.SourceRoute)
}

// Wire format (big endian):
//
//	mode     uint8
//	rec_init uint16
//	nFailed  uint16, then nFailed x uint16
//	nCross   uint16, then nCross x uint16
//	nRoute   uint16, srcIdx uint16, then nRoute x uint16

// ErrIDOverflow is returned when an in-memory 32-bit node or link ID
// does not fit the paper's 16-bit wire fields. Topologies past the
// 65535-ID ceiling can be simulated but their headers cannot be
// serialized in the paper's format.
var ErrIDOverflow = errors.New("routing: ID exceeds 16-bit wire field")

// AppendBinary appends the wire encoding of h to b.
func (h *Header) AppendBinary(b []byte) ([]byte, error) {
	if len(h.FailedLinks) > 0xFFFF || len(h.CrossLinks) > 0xFFFF || len(h.SourceRoute) > 0xFFFF {
		return nil, errors.New("routing: header field too long to encode")
	}
	if h.SourceIdx < 0 || h.SourceIdx > len(h.SourceRoute) {
		return nil, fmt.Errorf("routing: source index %d out of range [0,%d]", h.SourceIdx, len(h.SourceRoute))
	}
	if h.RecInit > 0xFFFF {
		return nil, fmt.Errorf("%w: rec_init node %d", ErrIDOverflow, h.RecInit)
	}
	b = append(b, byte(h.Mode))
	b = binary.BigEndian.AppendUint16(b, uint16(h.RecInit))
	b = binary.BigEndian.AppendUint16(b, uint16(len(h.FailedLinks)))
	for _, id := range h.FailedLinks {
		if id > 0xFFFF {
			return nil, fmt.Errorf("%w: failed_link %d", ErrIDOverflow, id)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(id))
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(h.CrossLinks)))
	for _, id := range h.CrossLinks {
		if id > 0xFFFF {
			return nil, fmt.Errorf("%w: cross_link %d", ErrIDOverflow, id)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(id))
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(h.SourceRoute)))
	b = binary.BigEndian.AppendUint16(b, uint16(h.SourceIdx))
	for _, id := range h.SourceRoute {
		if id > 0xFFFF {
			return nil, fmt.Errorf("%w: source-route node %d", ErrIDOverflow, id)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(id))
	}
	return b, nil
}

// ErrShortHeader is returned when a header buffer is truncated.
var ErrShortHeader = errors.New("routing: short header")

// DecodeHeader parses a header from b and returns it together with the
// number of bytes consumed.
func DecodeHeader(b []byte) (Header, int, error) {
	var h Header
	off := 0
	u8 := func() (byte, error) {
		if off+1 > len(b) {
			return 0, ErrShortHeader
		}
		v := b[off]
		off++
		return v, nil
	}
	u16 := func() (uint16, error) {
		if off+2 > len(b) {
			return 0, ErrShortHeader
		}
		v := binary.BigEndian.Uint16(b[off:])
		off += 2
		return v, nil
	}

	m, err := u8()
	if err != nil {
		return h, 0, err
	}
	if m > uint8(ModeSource) {
		return h, 0, fmt.Errorf("routing: invalid mode %d", m)
	}
	h.Mode = Mode(m)
	ri, err := u16()
	if err != nil {
		return h, 0, err
	}
	h.RecInit = graph.NodeID(ri)

	nf, err := u16()
	if err != nil {
		return h, 0, err
	}
	if nf > 0 {
		h.FailedLinks = make([]graph.LinkID, nf)
		for i := range h.FailedLinks {
			v, err := u16()
			if err != nil {
				return h, 0, err
			}
			h.FailedLinks[i] = graph.LinkID(v)
		}
	}

	nc, err := u16()
	if err != nil {
		return h, 0, err
	}
	if nc > 0 {
		h.CrossLinks = make([]graph.LinkID, nc)
		for i := range h.CrossLinks {
			v, err := u16()
			if err != nil {
				return h, 0, err
			}
			h.CrossLinks[i] = graph.LinkID(v)
		}
	}

	nr, err := u16()
	if err != nil {
		return h, 0, err
	}
	si, err := u16()
	if err != nil {
		return h, 0, err
	}
	if int(si) > int(nr) {
		return h, 0, fmt.Errorf("routing: source index %d beyond route length %d", si, nr)
	}
	h.SourceIdx = int(si)
	if nr > 0 {
		h.SourceRoute = make([]graph.NodeID, nr)
		for i := range h.SourceRoute {
			v, err := u16()
			if err != nil {
				return h, 0, err
			}
			h.SourceRoute[i] = graph.NodeID(v)
		}
	}
	return h, off, nil
}

// Clone returns a deep copy of the header.
func (h *Header) Clone() Header {
	c := *h
	c.FailedLinks = append([]graph.LinkID(nil), h.FailedLinks...)
	c.CrossLinks = append([]graph.LinkID(nil), h.CrossLinks...)
	c.SourceRoute = append([]graph.NodeID(nil), h.SourceRoute...)
	return c
}

// Delay model, exactly as in the paper's evaluation: 100 microseconds
// through a router plus 1.7 milliseconds of propagation per link.
const (
	RouterDelay = 100 * time.Microsecond
	PropDelay   = 1700 * time.Microsecond
	// HopDelay is the total per-hop delay.
	HopDelay = RouterDelay + PropDelay
	// PacketBaseBytes is the assumed payload size when accounting
	// wasted transmission (the paper assumes 1000-byte packets plus
	// the recovery header).
	PacketBaseBytes = 1000
)
