package routing

import (
	"repro/internal/graph"
	"repro/internal/topology"
)

// LocalView is the only window protocol code (RTR, FCP) has onto a
// failure: for any node, which of its neighbors are unreachable. It
// deliberately cannot say whether the neighbor or the link failed, nor
// anything about non-adjacent failures — matching the paper's failure
// model during the pre-convergence window.
type LocalView struct {
	topo *topology.Topology
	gt   graph.Denied // ground truth; never exposed directly
}

// NewLocalView wraps ground truth d into per-node observations on topo.
func NewLocalView(topo *topology.Topology, d graph.Denied) *LocalView {
	return &LocalView{topo: topo, gt: d}
}

// Topology returns the (pre-failure) topology every router knows.
func (lv *LocalView) Topology() *topology.Topology { return lv.topo }

// NodeAlive reports whether node v itself is alive. A failed router
// cannot run any protocol; the harness only invokes protocol code on
// live nodes, and protocol code may sanity-check with this.
func (lv *LocalView) NodeAlive(v graph.NodeID) bool { return !lv.gt.NodeDown(v) }

// NeighborUnreachable reports whether, observed from node v, the
// neighbor across link id is unreachable (link failed or neighbor
// failed — v cannot tell which).
func (lv *LocalView) NeighborUnreachable(v graph.NodeID, id graph.LinkID) bool {
	l := lv.topo.G.Link(id)
	return lv.gt.LinkDown(id) || lv.gt.NodeDown(l.Other(v))
}

// UnreachableLinks returns the links of v whose far ends are
// unreachable, in adjacency order.
func (lv *LocalView) UnreachableLinks(v graph.NodeID) []graph.LinkID {
	var out []graph.LinkID
	for _, h := range lv.topo.G.Adj(v) {
		if lv.NeighborUnreachable(v, h.Link) {
			out = append(out, h.Link)
		}
	}
	return out
}

// LiveNeighbors returns the halfedges of v leading to reachable
// neighbors, in adjacency order.
func (lv *LocalView) LiveNeighbors(v graph.NodeID) []graph.Halfedge {
	var out []graph.Halfedge
	for _, h := range lv.topo.G.Adj(v) {
		if !lv.NeighborUnreachable(v, h.Link) {
			out = append(out, h)
		}
	}
	return out
}
