package routing

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/graph"
)

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeDefault: "default",
		ModeCollect: "collect",
		ModeSource:  "source",
		Mode(9):     "mode(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func TestRecordFailedLink(t *testing.T) {
	var h Header
	if !h.RecordFailedLink(3) {
		t.Error("first record must report change")
	}
	if h.RecordFailedLink(3) {
		t.Error("duplicate record must report no change")
	}
	if !h.RecordFailedLink(5) {
		t.Error("second distinct record must report change")
	}
	if !h.HasFailedLink(3) || !h.HasFailedLink(5) || h.HasFailedLink(4) {
		t.Errorf("failed_link content wrong: %v", h.FailedLinks)
	}
	if len(h.FailedLinks) != 2 {
		t.Errorf("failed_link length = %d, want 2", len(h.FailedLinks))
	}
}

func TestRecordCrossLink(t *testing.T) {
	var h Header
	if !h.RecordCrossLink(7) {
		t.Error("first record must report change")
	}
	if h.RecordCrossLink(7) {
		t.Error("duplicate record must report no change")
	}
	if !h.HasCrossLink(7) || h.HasCrossLink(8) {
		t.Errorf("cross_link content wrong: %v", h.CrossLinks)
	}
}

func TestRecordingBytes(t *testing.T) {
	h := Header{
		FailedLinks: []graph.LinkID{1, 2, 3},
		CrossLinks:  []graph.LinkID{4},
		SourceRoute: []graph.NodeID{5, 6},
	}
	// 16 bits per recorded ID: (3 + 1 + 2) * 2 bytes.
	if got := h.RecordingBytes(); got != 12 {
		t.Errorf("RecordingBytes = %d, want 12", got)
	}
	var empty Header
	if got := empty.RecordingBytes(); got != 0 {
		t.Errorf("empty RecordingBytes = %d, want 0", got)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Mode:        ModeCollect,
		RecInit:     42,
		FailedLinks: []graph.LinkID{10, 20, 30},
		CrossLinks:  []graph.LinkID{5},
		SourceRoute: []graph.NodeID{1, 2, 3, 4},
		SourceIdx:   2,
	}
	b, err := h.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != h.EncodedSize() {
		t.Errorf("encoded %d bytes, EncodedSize says %d", len(b), h.EncodedSize())
	}
	got, n, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Errorf("decoded %d bytes of %d", n, len(b))
	}
	if !reflect.DeepEqual(got, h) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestHeaderRoundTripEmpty(t *testing.T) {
	var h Header
	b, err := h.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ModeDefault || len(got.FailedLinks) != 0 || len(got.CrossLinks) != 0 || len(got.SourceRoute) != 0 {
		t.Errorf("empty header round trip = %+v", got)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func() bool {
		h := Header{
			Mode:    Mode(rng.Intn(3)),
			RecInit: graph.NodeID(rng.Intn(1 << 16)),
		}
		for i := 0; i < rng.Intn(10); i++ {
			h.FailedLinks = append(h.FailedLinks, graph.LinkID(rng.Intn(1<<16)))
		}
		for i := 0; i < rng.Intn(5); i++ {
			h.CrossLinks = append(h.CrossLinks, graph.LinkID(rng.Intn(1<<16)))
		}
		for i := 0; i < rng.Intn(12); i++ {
			h.SourceRoute = append(h.SourceRoute, graph.NodeID(rng.Intn(1<<16)))
		}
		if len(h.SourceRoute) > 0 {
			h.SourceIdx = rng.Intn(len(h.SourceRoute) + 1)
		}
		b, err := h.AppendBinary(nil)
		if err != nil {
			return false
		}
		got, n, err := DecodeHeader(b)
		if err != nil || n != len(b) {
			return false
		}
		return reflect.DeepEqual(normalize(got), normalize(h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// normalize maps nil and empty slices to a canonical form for
// comparison.
func normalize(h Header) Header {
	if len(h.FailedLinks) == 0 {
		h.FailedLinks = nil
	}
	if len(h.CrossLinks) == 0 {
		h.CrossLinks = nil
	}
	if len(h.SourceRoute) == 0 {
		h.SourceRoute = nil
	}
	return h
}

func TestDecodeHeaderErrors(t *testing.T) {
	h := Header{Mode: ModeCollect, FailedLinks: []graph.LinkID{1, 2}}
	b, err := h.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly.
	for i := 0; i < len(b); i++ {
		if _, _, err := DecodeHeader(b[:i]); err == nil {
			t.Errorf("truncated header of %d bytes decoded without error", i)
		}
	}
	// Invalid mode.
	bad := append([]byte(nil), b...)
	bad[0] = 99
	if _, _, err := DecodeHeader(bad); err == nil {
		t.Error("invalid mode must fail")
	}
}

func TestDecodeHeaderBadSourceIdx(t *testing.T) {
	h := Header{SourceRoute: []graph.NodeID{1}, SourceIdx: 1}
	b, err := h.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt srcIdx beyond route length: it sits after nRoute.
	// Layout: mode(1) recInit(2) nF(2) nC(2) nRoute(2) srcIdx(2)...
	b[9+0] = 0xFF
	b[9+1] = 0xFF
	if _, _, err := DecodeHeader(b); err == nil {
		t.Error("source index beyond route must fail")
	}
}

func TestAppendBinarySourceIdxValidation(t *testing.T) {
	h := Header{SourceRoute: []graph.NodeID{1, 2}, SourceIdx: 3}
	if _, err := h.AppendBinary(nil); err == nil {
		t.Error("out-of-range SourceIdx must fail to encode")
	}
	h.SourceIdx = -1
	if _, err := h.AppendBinary(nil); err == nil {
		t.Error("negative SourceIdx must fail to encode")
	}
}

func TestAppendBinaryIDOverflow(t *testing.T) {
	// In-memory IDs are 32-bit but the paper's wire format is 16-bit;
	// encoding a header whose IDs exceed the wire ceiling must fail
	// with ErrIDOverflow rather than truncate silently.
	cases := []Header{
		{RecInit: 0x10000},
		{FailedLinks: []graph.LinkID{0x10000}},
		{CrossLinks: []graph.LinkID{0x1FFFF}},
		{SourceRoute: []graph.NodeID{0x20000}},
	}
	for i, h := range cases {
		if _, err := h.AppendBinary(nil); !errors.Is(err, ErrIDOverflow) {
			t.Errorf("case %d: err = %v, want ErrIDOverflow", i, err)
		}
	}
	// At exactly the ceiling the encode must still round-trip.
	h := Header{RecInit: 0xFFFF, FailedLinks: []graph.LinkID{0xFFFF}}
	b, err := h.AppendBinary(nil)
	if err != nil {
		t.Fatalf("ceiling encode: %v", err)
	}
	got, _, err := DecodeHeader(b)
	if err != nil {
		t.Fatalf("ceiling decode: %v", err)
	}
	if got.RecInit != 0xFFFF || got.FailedLinks[0] != 0xFFFF {
		t.Errorf("ceiling round-trip = %+v", got)
	}
}

func TestHeaderClone(t *testing.T) {
	h := Header{
		Mode:        ModeCollect,
		FailedLinks: []graph.LinkID{1},
		CrossLinks:  []graph.LinkID{2},
		SourceRoute: []graph.NodeID{3},
	}
	c := h.Clone()
	c.FailedLinks[0] = 99
	c.CrossLinks[0] = 99
	c.SourceRoute[0] = 99
	if h.FailedLinks[0] == 99 || h.CrossLinks[0] == 99 || h.SourceRoute[0] == 99 {
		t.Error("Clone must deep-copy slices")
	}
}

func TestDelayModel(t *testing.T) {
	if HopDelay != 1800*time.Microsecond {
		t.Errorf("HopDelay = %v, want 1.8ms (paper's Section IV-B)", HopDelay)
	}
	if RouterDelay != 100*time.Microsecond || PropDelay != 1700*time.Microsecond {
		t.Error("delay components must match the paper")
	}
}
