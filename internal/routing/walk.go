package routing

import (
	"fmt"
	"time"

	"repro/internal/graph"
)

// HopRecord is one link traversal of a simulated packet.
type HopRecord struct {
	From, To graph.NodeID
	Link     graph.LinkID
	// HeaderBytes is the header's recording-byte count while the
	// packet is in flight on this hop (the transmission-overhead
	// metric of the paper's Fig. 10).
	HeaderBytes int
}

// Walk is the hop-by-hop trajectory of a simulated packet.
type Walk struct {
	Records []HopRecord
}

// Append adds a hop to the walk.
func (w *Walk) Append(r HopRecord) { w.Records = append(w.Records, r) }

// Reserve pre-sizes the record slice for a walk expected to reach n
// hops, so repeated Appends don't regrow it.
func (w *Walk) Reserve(n int) {
	if cap(w.Records)-len(w.Records) < n {
		grown := make([]HopRecord, len(w.Records), len(w.Records)+n)
		copy(grown, w.Records)
		w.Records = grown
	}
}

// Hops returns the number of link traversals.
func (w *Walk) Hops() int { return len(w.Records) }

// Duration returns the wall-clock duration of the walk under the
// paper's 1.8 ms/hop delay model.
func (w *Walk) Duration() time.Duration {
	return time.Duration(len(w.Records)) * HopDelay
}

// Nodes returns the visited node sequence, starting node first.
func (w *Walk) Nodes() []graph.NodeID {
	if len(w.Records) == 0 {
		return nil
	}
	out := make([]graph.NodeID, 0, len(w.Records)+1)
	out = append(out, w.Records[0].From)
	for _, r := range w.Records {
		out = append(out, r.To)
	}
	return out
}

// DefaultOutcome classifies what happens to a packet forwarded with
// the converged (pre-failure) tables under a failure.
type DefaultOutcome uint8

const (
	// DefaultDelivered: the converged path is failure-free.
	DefaultDelivered DefaultOutcome = iota + 1
	// DefaultSourceDown: the source itself failed; nothing to do.
	DefaultSourceDown
	// DefaultBlocked: a node on the path found its next hop
	// unreachable — that node is the recovery initiator.
	DefaultBlocked
	// DefaultNoRoute: the converged tables have no route at all
	// (possible only for disconnected pre-failure topologies).
	DefaultNoRoute
)

// String implements fmt.Stringer.
func (o DefaultOutcome) String() string {
	switch o {
	case DefaultDelivered:
		return "delivered"
	case DefaultSourceDown:
		return "source-down"
	case DefaultBlocked:
		return "blocked"
	case DefaultNoRoute:
		return "no-route"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// TraceDefault forwards a packet from src toward dst using the
// converged tables, each node checking only its own next hop's
// reachability (the per-node view lv), and reports where it gets
// blocked. On DefaultBlocked, initiator is the recovery initiator (the
// first node on the path whose next hop is unreachable) and hops is the
// number of links traversed from src to reach it.
func TraceDefault(t *Tables, lv *LocalView, src, dst graph.NodeID) (outcome DefaultOutcome, initiator graph.NodeID, hops int) {
	if !lv.NodeAlive(src) {
		return DefaultSourceDown, 0, 0
	}
	v := src
	for v != dst {
		nh, link, ok := t.NextHop(v, dst)
		if !ok {
			return DefaultNoRoute, 0, hops
		}
		if lv.NeighborUnreachable(v, link) {
			return DefaultBlocked, v, hops
		}
		v = nh
		hops++
	}
	return DefaultDelivered, 0, hops
}
