package routing

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestDecodeHeaderRandomBytes hammers the wire decoder with random
// buffers: it must never panic, and whatever it accepts must re-encode
// to the same bytes it consumed (decode/encode idempotence).
func TestDecodeHeaderRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		h, used, err := DecodeHeader(buf)
		if err != nil {
			continue
		}
		re, err := h.AppendBinary(nil)
		if err != nil {
			t.Fatalf("decoded header failed to re-encode: %+v: %v", h, err)
		}
		if len(re) != used {
			t.Fatalf("re-encoded %d bytes, decoder consumed %d (header %+v)", len(re), used, h)
		}
		for j := range re {
			if re[j] != buf[j] {
				t.Fatalf("byte %d differs after round trip: %x vs %x", j, re[j], buf[j])
			}
		}
	}
}

// TestDecodeHeaderMutatedValid flips bytes of valid encodings: the
// decoder must stay panic-free and either reject or produce a header
// that re-encodes consistently.
func TestDecodeHeaderMutatedValid(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	base := Header{
		Mode:        ModeCollect,
		RecInit:     9,
		FailedLinks: randLinkIDs(rng, 6),
		CrossLinks:  randLinkIDs(rng, 2),
	}
	enc, err := base.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		buf := append([]byte(nil), enc...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			buf[rng.Intn(len(buf))] = byte(rng.Intn(256))
		}
		h, used, err := DecodeHeader(buf)
		if err != nil {
			continue
		}
		re, err := h.AppendBinary(nil)
		if err != nil || len(re) != used {
			t.Fatalf("inconsistent accept of mutated header: %+v (err %v)", h, err)
		}
	}
}

func randLinkIDs(rng *rand.Rand, n int) []graph.LinkID {
	out := make([]graph.LinkID, n)
	for i := range out {
		out[i] = graph.LinkID(rng.Intn(1 << 16))
	}
	return out
}
