package routing

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzDecodeHeader is the native-fuzzing twin of
// TestDecodeHeaderRandomBytes: on arbitrary bytes the wire decoder
// must never panic, and any header it accepts must re-encode to
// exactly the bytes it consumed. Run with
//
//	go test -fuzz FuzzDecodeHeader ./internal/routing
func FuzzDecodeHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	for _, h := range []Header{
		{Mode: ModeCollect, RecInit: 9},
		{
			Mode:        ModeCollect,
			RecInit:     3,
			FailedLinks: []graph.LinkID{1, 5, 9},
			CrossLinks:  []graph.LinkID{2},
		},
	} {
		enc, err := h.AppendBinary(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		h, used, err := DecodeHeader(buf)
		if err != nil {
			return
		}
		if used > len(buf) {
			t.Fatalf("decoder claims %d bytes of a %d-byte buffer", used, len(buf))
		}
		re, err := h.AppendBinary(nil)
		if err != nil {
			t.Fatalf("decoded header failed to re-encode: %+v: %v", h, err)
		}
		if !bytes.Equal(re, buf[:used]) {
			t.Fatalf("round trip differs: decoded %x, re-encoded %x", buf[:used], re)
		}
	})
}
