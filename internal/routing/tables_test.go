package routing

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/spt"
	"repro/internal/topology"
)

func paperSetup(t *testing.T) (*topology.Topology, *Tables, *failure.Scenario) {
	t.Helper()
	topo := topology.PaperExample()
	return topo, ComputeTables(topo), failure.NewScenario(topo, topology.PaperFailureArea())
}

func TestConvergedRoutingPathOfTheNarrative(t *testing.T) {
	topo, tables, _ := paperSetup(t)
	// "the routing path from v7 to v17 is v7 v6 v11 v15 v17".
	nodes, ok := tables.PathNodes(topology.PaperNode(7), topology.PaperNode(17))
	if !ok {
		t.Fatal("no converged path v7 -> v17")
	}
	want := []int{7, 6, 11, 15, 17}
	if len(nodes) != len(want) {
		t.Fatalf("path = %v, want v%v", nodes, want)
	}
	for i, k := range want {
		if nodes[i] != topology.PaperNode(k) {
			t.Fatalf("path[%d] = %d, want v%d (path %v)", i, nodes[i], k, nodes)
		}
	}
	if h, _ := tables.Hops(topology.PaperNode(7), topology.PaperNode(17)); h != 4 {
		t.Errorf("hops = %d, want 4", h)
	}
	_ = topo
}

func TestNextHopAndDist(t *testing.T) {
	_, tables, _ := paperSetup(t)
	v6, v17 := topology.PaperNode(6), topology.PaperNode(17)
	nh, link, ok := tables.NextHop(v6, v17)
	if !ok || nh != topology.PaperNode(11) {
		t.Fatalf("NextHop(v6, v17) = v%d, want v11", nh+1)
	}
	l := tables.Topology().G.Link(link)
	if !l.HasEndpoint(v6) || !l.HasEndpoint(nh) {
		t.Error("returned link does not connect v6 to its next hop")
	}
	if d, ok := tables.Dist(v6, v17); !ok || d != 3 {
		t.Errorf("Dist(v6, v17) = %v, want 3", d)
	}
	// Destination itself has no next hop.
	if _, _, ok := tables.NextHop(v17, v17); ok {
		t.Error("destination must have no next hop")
	}
}

func TestPathFails(t *testing.T) {
	_, tables, sc := paperSetup(t)
	v7, v17 := topology.PaperNode(7), topology.PaperNode(17)
	failed, err := tables.PathFails(v7, v17, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("the narrative path v7->v17 fails at e6-11")
	}
	// v1 -> v2 is far from the failure area.
	failed, err = tables.PathFails(topology.PaperNode(1), topology.PaperNode(2), sc)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Error("v1 -> v2 must be unaffected")
	}
}

func TestTraceDefaultBlocked(t *testing.T) {
	topo, tables, sc := paperSetup(t)
	lv := NewLocalView(topo, sc)
	// From v7 toward v17: blocked at v6 after one hop.
	out, init, hops := TraceDefault(tables, lv, topology.PaperNode(7), topology.PaperNode(17))
	if out != DefaultBlocked {
		t.Fatalf("outcome = %v, want blocked", out)
	}
	if init != topology.PaperNode(6) {
		t.Errorf("initiator = v%d, want v6", init+1)
	}
	if hops != 1 {
		t.Errorf("hops to initiator = %d, want 1", hops)
	}
}

func TestTraceDefaultDelivered(t *testing.T) {
	topo, tables, sc := paperSetup(t)
	lv := NewLocalView(topo, sc)
	out, _, hops := TraceDefault(tables, lv, topology.PaperNode(1), topology.PaperNode(2))
	if out != DefaultDelivered {
		t.Fatalf("outcome = %v, want delivered", out)
	}
	if hops != 1 {
		t.Errorf("hops = %d, want 1", hops)
	}
	// Self-delivery.
	out, _, hops = TraceDefault(tables, lv, topology.PaperNode(1), topology.PaperNode(1))
	if out != DefaultDelivered || hops != 0 {
		t.Errorf("self delivery = %v/%d hops", out, hops)
	}
}

func TestTraceDefaultSourceDown(t *testing.T) {
	topo, tables, sc := paperSetup(t)
	lv := NewLocalView(topo, sc)
	out, _, _ := TraceDefault(tables, lv, topology.PaperNode(10), topology.PaperNode(1))
	if out != DefaultSourceDown {
		t.Errorf("outcome = %v, want source-down", out)
	}
}

func TestTraceDefaultInitiatorDetectsNodeFailureToo(t *testing.T) {
	// Toward v10 (the failed node): its tree neighbors see it as
	// unreachable and become initiators.
	topo, tables, sc := paperSetup(t)
	lv := NewLocalView(topo, sc)
	out, init, _ := TraceDefault(tables, lv, topology.PaperNode(9), topology.PaperNode(10))
	if out != DefaultBlocked {
		t.Fatalf("outcome = %v, want blocked", out)
	}
	if init != topology.PaperNode(9) {
		t.Errorf("initiator = v%d, want v9 (adjacent to failed v10)", init+1)
	}
}

func TestOutcomeString(t *testing.T) {
	for _, o := range []DefaultOutcome{DefaultDelivered, DefaultSourceDown, DefaultBlocked, DefaultNoRoute, DefaultOutcome(77)} {
		if o.String() == "" {
			t.Error("outcome strings must be non-empty")
		}
	}
}

func TestLocalViewObservations(t *testing.T) {
	topo, _, sc := paperSetup(t)
	lv := NewLocalView(topo, sc)

	if !lv.NodeAlive(topology.PaperNode(6)) {
		t.Error("v6 is alive")
	}
	if lv.NodeAlive(topology.PaperNode(10)) {
		t.Error("v10 is down")
	}

	// v6 sees exactly one unreachable neighbor: across e6-11.
	un := lv.UnreachableLinks(topology.PaperNode(6))
	if len(un) != 1 || un[0] != topology.PaperLink(topo, 6, 11) {
		t.Errorf("v6 unreachable links = %v, want [e6-11]", un)
	}
	// v11 sees three unreachable neighbors: v10 (down), v6 and v4
	// (links across the area) — exactly the Fig. 1 narrative.
	un = lv.UnreachableLinks(topology.PaperNode(11))
	want := map[graph.LinkID]bool{
		topology.PaperLink(topo, 10, 11): true,
		topology.PaperLink(topo, 6, 11):  true,
		topology.PaperLink(topo, 4, 11):  true,
	}
	if len(un) != 3 {
		t.Fatalf("v11 unreachable links = %v, want 3", un)
	}
	for _, id := range un {
		if !want[id] {
			t.Errorf("unexpected unreachable link %v at v11", topo.G.Link(id))
		}
	}

	// Live neighbors of v11: v12, v15, v16.
	live := lv.LiveNeighbors(topology.PaperNode(11))
	if len(live) != 3 {
		t.Fatalf("v11 live neighbors = %d, want 3", len(live))
	}
	for _, h := range live {
		switch h.Neighbor {
		case topology.PaperNode(12), topology.PaperNode(15), topology.PaperNode(16):
		default:
			t.Errorf("unexpected live neighbor v%d", h.Neighbor+1)
		}
	}

	// NeighborUnreachable is per-endpoint: from v5, v10 is unreachable.
	if !lv.NeighborUnreachable(topology.PaperNode(5), topology.PaperLink(topo, 5, 10)) {
		t.Error("v10 must be unreachable from v5")
	}
	if lv.NeighborUnreachable(topology.PaperNode(5), topology.PaperLink(topo, 5, 12)) {
		t.Error("v12 must be reachable from v5")
	}
}

// requireTablesIdentical asserts two table sets carry bit-identical
// per-destination trees: same Dist, Parent, and ParentLink arrays.
func requireTablesIdentical(t *testing.T, as, label string, got, want *Tables) {
	t.Helper()
	n := want.topo.G.NumNodes()
	for dst := 0; dst < n; dst++ {
		g, w := got.tree(graph.NodeID(dst)), want.tree(graph.NodeID(dst))
		if g.Kind != w.Kind || g.Root != w.Root {
			t.Fatalf("%s %s: tree %d identity mismatch", as, label, dst)
		}
		for v := 0; v < n; v++ {
			if g.Dist[v] != w.Dist[v] || g.Parent[v] != w.Parent[v] || g.ParentLink[v] != w.ParentLink[v] {
				t.Fatalf("%s %s: dst %d node %d: got (dist %v, parent %d, link %d), want (%v, %d, %d)",
					as, label, dst, v,
					g.Dist[v], g.Parent[v], g.ParentLink[v],
					w.Dist[v], w.Parent[v], w.ParentLink[v])
			}
		}
	}
}

// TestRecomputeTablesMatchesColdProperty is the tables-layer version of
// the spt differential test: on every bundled topology, incremental
// table recomputation under random failure scenarios must be
// bit-identical to the cold build — including when chained, where the
// second recompute starts from already-failed tables.
func TestRecomputeTablesMatchesColdProperty(t *testing.T) {
	for _, as := range topology.ASNames() {
		as := as
		t.Run(as, func(t *testing.T) {
			t.Parallel()
			topo := topology.GenerateAS(as, 1)
			clean := ComputeTables(topo)
			rng := rand.New(rand.NewSource(int64(len(as)) + 42))
			scenarios := 0
			for scenarios < 3 {
				sc := failure.RandomScenario(topo, rng)
				if !sc.HasFailures() {
					continue
				}
				scenarios++
				inc := RecomputeTablesUnder(topo, clean, sc)
				cold := ComputeTablesUnder(topo, sc)
				requireTablesIdentical(t, as, "single", inc, cold)

				// Chain a second, disjointly drawn scenario on top: the
				// recompute now seeds from tables that already carry a
				// failure overlay.
				sc2 := failure.RandomScenario(topo, rng)
				if !sc2.HasFailures() {
					continue
				}
				inc2 := RecomputeTablesUnder(topo, inc, sc2)
				cold2 := ComputeTablesUnder(topo, graph.Union{X: sc, Y: sc2})
				requireTablesIdentical(t, as, "chained", inc2, cold2)
			}
		})
	}
}

// TestRecomputeTablesFallsBackCold covers the guard rails: a nil or
// foreign pre must silently degrade to the cold build.
func TestRecomputeTablesFallsBackCold(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 1)
	other := topology.GenerateAS("AS209", 1)
	otherTables := ComputeTables(other)
	rng := rand.New(rand.NewSource(5))
	sc := failure.RandomScenario(topo, rng)
	for !sc.HasFailures() {
		sc = failure.RandomScenario(topo, rng)
	}
	cold := ComputeTablesUnder(topo, sc)
	requireTablesIdentical(t, "AS1239", "nil-pre", RecomputeTablesUnder(topo, nil, sc), cold)
	requireTablesIdentical(t, "AS1239", "foreign-pre", RecomputeTablesUnder(topo, otherTables, sc), cold)
}

// TestTablesUnder pins the overlay bookkeeping RecomputeTablesUnder
// relies on (and MRC's warm-start guard checks).
func TestTablesUnder(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 1)
	clean := ComputeTables(topo)
	if clean.Under() != graph.Nothing {
		t.Fatal("pre-failure tables must report the Nothing overlay")
	}
	rng := rand.New(rand.NewSource(5))
	sc := failure.RandomScenario(topo, rng)
	for !sc.HasFailures() {
		sc = failure.RandomScenario(topo, rng)
	}
	inc := RecomputeTablesUnder(topo, clean, sc)
	if inc.Under() != graph.Denied(sc) {
		t.Fatal("recomputed tables from clean pre must report the scenario itself")
	}
	var _ *spt.Tree = inc.DestTree(0) // DestTree stays usable on recomputed tables
}

// TestLazyTablesMatchEager: lazily materialized tables must be
// bit-identical to the eager build — cold, recomputed from an eager
// pre, recomputed from a lazy pre, and chained lazy-on-lazy.
func TestLazyTablesMatchEager(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 1)
	rng := rand.New(rand.NewSource(7))
	sc := failure.RandomScenario(topo, rng)
	for !sc.HasFailures() {
		sc = failure.RandomScenario(topo, rng)
	}

	lazyClean := ComputeTablesLazy(topo, graph.Nothing)
	if !lazyClean.Lazy() {
		t.Fatal("ComputeTablesLazy must report Lazy")
	}
	eagerClean := ComputeTables(topo)
	requireTablesIdentical(t, "AS1239", "lazy-clean", lazyClean, eagerClean)

	lazyPost := RecomputeTablesUnder(topo, lazyClean, sc)
	if !lazyPost.Lazy() {
		t.Fatal("recompute from a lazy pre must stay lazy")
	}
	eagerPost := ComputeTablesUnder(topo, sc)
	requireTablesIdentical(t, "AS1239", "lazy-post", lazyPost, eagerPost)

	sc2 := failure.RandomScenario(topo, rng)
	for !sc2.HasFailures() {
		sc2 = failure.RandomScenario(topo, rng)
	}
	lazyChained := RecomputeTablesUnder(topo, lazyPost, sc2)
	eagerChained := ComputeTablesUnder(topo, graph.Union{X: sc, Y: sc2})
	requireTablesIdentical(t, "AS1239", "lazy-chained", lazyChained, eagerChained)
}

// TestLazyTablesConcurrent hammers one lazy table set from many
// goroutines; materialization must be race-free and every answer must
// match the eager build. Run under -race this is the real check.
func TestLazyTablesConcurrent(t *testing.T) {
	topo := topology.GenerateAS("AS701", 1)
	lazy := ComputeTablesLazy(topo, graph.Nothing)
	eager := ComputeTables(topo)
	n := topo.G.NumNodes()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				v := graph.NodeID(rng.Intn(n))
				dst := graph.NodeID(rng.Intn(n))
				gd, gok := lazy.Dist(v, dst)
				wd, wok := eager.Dist(v, dst)
				if gd != wd || gok != wok {
					t.Errorf("Dist(%d,%d) = (%v,%v), want (%v,%v)", v, dst, gd, gok, wd, wok)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLazyTablesBounded: a lazy table set must only materialize the
// destinations that were actually queried.
func TestLazyTablesBounded(t *testing.T) {
	topo := topology.GenerateAS("AS7018", 1)
	lazy := ComputeTablesLazy(topo, graph.Nothing)
	lazy.Dist(3, 9)
	lazy.Dist(4, 9)
	lazy.NextHop(1, 12)
	built := 0
	for _, tr := range lazy.byDst {
		if tr != nil {
			built++
		}
	}
	if built != 2 {
		t.Fatalf("built %d trees, want 2 (dsts 9 and 12)", built)
	}
}

func TestWalkAccounting(t *testing.T) {
	var w Walk
	if w.Hops() != 0 || w.Duration() != 0 || w.Nodes() != nil {
		t.Error("empty walk must be zero-valued")
	}
	w.Append(HopRecord{From: 0, To: 1, Link: 0, HeaderBytes: 4})
	w.Append(HopRecord{From: 1, To: 2, Link: 1, HeaderBytes: 8})
	if w.Hops() != 2 {
		t.Errorf("Hops = %d, want 2", w.Hops())
	}
	if w.Duration() != 2*HopDelay {
		t.Errorf("Duration = %v, want %v", w.Duration(), 2*HopDelay)
	}
	nodes := w.Nodes()
	if len(nodes) != 3 || nodes[0] != 0 || nodes[2] != 2 {
		t.Errorf("Nodes = %v", nodes)
	}
	if w.Duration() != time.Duration(w.Hops())*1800*time.Microsecond {
		t.Error("duration model must be 1.8 ms per hop")
	}
}
