package routing

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/topology"
)

// TestRecomputeMatchesColdAtScale is the large-graph version of
// TestRecomputeTablesMatchesColdProperty: on a 20k-node hierarchical
// synthesis, the delete-only incremental recompute must stay
// bit-identical to the cold build. Comparing every destination tree
// would cost 20k reverse Dijkstras per side, so both sides are built
// lazily and compared at a seeded destination sample — each compared
// tree is still checked node by node.
func TestRecomputeMatchesColdAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes a 20k-node graph")
	}
	const nodes = 20000
	p := topology.GenParams{Name: "scale20k", Nodes: nodes, Links: 3 * nodes, Tiers: true}
	rng := rand.New(rand.NewSource(20))
	topo, err := topology.Generate(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	clean := ComputeTablesLazy(topo, graph.Nothing)

	for round := 0; round < 2; round++ {
		sc := failure.RandomScenario(topo, rng)
		for !sc.HasFailures() {
			sc = failure.RandomScenario(topo, rng)
		}
		inc := RecomputeTablesUnder(topo, clean, sc)
		if !inc.Lazy() {
			t.Fatal("recompute from a lazy pre must stay lazy")
		}
		cold := ComputeTablesLazy(topo, sc)

		// 8 sampled destinations plus a failed link's endpoints — the
		// trees the failure actually disturbed.
		dsts := map[graph.NodeID]bool{}
		for len(dsts) < 8 {
			dsts[graph.NodeID(rng.Intn(nodes))] = true
		}
		if fl := sc.FailedLinks(); len(fl) > 0 {
			l := topo.G.Link(fl[0])
			dsts[l.A] = true
			dsts[l.B] = true
		}
		for dst := range dsts {
			g, w := inc.tree(dst), cold.tree(dst)
			for v := 0; v < nodes; v++ {
				if g.Dist[v] != w.Dist[v] || g.Parent[v] != w.Parent[v] || g.ParentLink[v] != w.ParentLink[v] {
					t.Fatalf("round %d dst %d node %d: incremental (dist %v, parent %d, link %d) != cold (%v, %d, %d)",
						round, dst, v,
						g.Dist[v], g.Parent[v], g.ParentLink[v],
						w.Dist[v], w.Parent[v], w.ParentLink[v])
				}
			}
		}
	}
}
