package routing

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/topology"
)

// TestCascadeChainedRecompute drives the delete-only incremental
// recomputation down a cascading failure schedule: each step of a
// cascade strictly grows the failure set, so chaining
// RecomputeTablesUnder from step to step is valid and must stay
// bit-identical to a cold build at every step. This is the convergence
// sequence an operator would actually route through during a
// multi-stage disaster.
func TestCascadeChainedRecompute(t *testing.T) {
	for _, as := range []string{"AS1239", "AS7018"} {
		as := as
		t.Run(as, func(t *testing.T) {
			t.Parallel()
			topo := topology.GenerateAS(as, 1)
			gen := failure.CascadeGen{Steps: 4, Min: 100, Max: 250}
			rng := rand.New(rand.NewSource(int64(len(as)) + 91))
			for trial := 0; trial < 3; trial++ {
				sc := gen.Generate(topo, rng)
				tables := ComputeTables(topo)
				for step := 0; step < sc.Steps(); step++ {
					cur := sc.At(step)
					tables = RecomputeTablesUnder(topo, tables, cur)
					cold := ComputeTablesUnder(topo, cur)
					requireTablesIdentical(t, as, "cascade-step", tables, cold)
				}
			}
		})
	}
}

// TestTransientRecomputeFromClean: transient schedules repair, so
// chaining past the peak is not delete-only — but every step is
// delete-only relative to the clean tables, and the recompute must
// match the cold build from that seed.
func TestTransientRecomputeFromClean(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 1)
	clean := ComputeTables(topo)
	gen := failure.TransientGen{Steps: 3, Min: 100, Max: 250}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		sc := gen.Generate(topo, rng)
		for step := 0; step < sc.Steps(); step++ {
			cur := sc.At(step)
			inc := RecomputeTablesUnder(topo, clean, cur)
			cold := ComputeTablesUnder(topo, cur)
			requireTablesIdentical(t, "AS1239", "transient-step", inc, cold)
		}
		if sc.At(sc.Steps() - 1).HasFailures() {
			t.Fatal("transient schedule must end all-up")
		}
	}
}
