package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	cases := []struct {
		x, want float64
	}{
		{0, 0},
		{1, 0.2},
		{1.5, 0.2},
		{2, 0.6},
		{3, 0.8},
		{9.99, 0.8},
		{10, 1},
		{11, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if (&CDF{}).At(5) != 0 {
		t.Error("empty CDF must evaluate to 0")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 2, 4})
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Q(0) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Errorf("Q(1) = %v, want 5", got)
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Errorf("Q(0.5) = %v, want 3", got)
	}
}

func TestCDFQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("quantile of empty CDF must panic")
		}
	}()
	(&CDF{}).Quantile(0.5)
}

func TestCDFQuantileRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range q must panic")
		}
	}()
	NewCDF([]float64{1}).Quantile(1.5)
}

func TestCDFAddAndStats(t *testing.T) {
	var c CDF
	for _, x := range []float64{4, 2, 8, 6} {
		c.Add(x)
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if c.Min() != 2 || c.Max() != 8 {
		t.Errorf("min/max = %v/%v", c.Min(), c.Max())
	}
	if c.Mean() != 5 {
		t.Errorf("mean = %v, want 5", c.Mean())
	}
	s := c.Summarize()
	if s.N != 4 || s.Min != 2 || s.Max != 8 || s.Mean != 5 {
		t.Errorf("summary = %+v", s)
	}
	if (&CDF{}).Summarize() != (Summary{}) {
		t.Error("empty summary must be zero")
	}
	if (&CDF{}).Mean() != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 1, 2, 3})
	pts := c.Points()
	want := [][2]float64{{1, 0.5}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("points[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		n := 1 + rng.Intn(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 10
		}
		c := NewCDF(samples)
		// CDF must be monotone and agree with a direct count.
		xs := append([]float64(nil), samples...)
		sort.Float64s(xs)
		prev := 0.0
		for _, x := range xs {
			v := c.At(x)
			if v < prev {
				return false
			}
			count := 0
			for _, s := range samples {
				if s <= x {
					count++
				}
			}
			if math.Abs(v-float64(count)/float64(n)) > 1e-12 {
				return false
			}
			prev = v
		}
		return c.At(math.Inf(1)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRate(t *testing.T) {
	var r Rate
	if r.Fraction() != 0 || r.Percent() != 0 {
		t.Error("empty rate must be 0")
	}
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	if r.Hits != 2 || r.Total != 3 {
		t.Errorf("rate = %+v", r)
	}
	if math.Abs(r.Fraction()-2.0/3.0) > 1e-12 {
		t.Errorf("fraction = %v", r.Fraction())
	}
	if r.String() == "" {
		t.Error("string must be non-empty")
	}
}
