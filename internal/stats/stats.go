// Package stats provides the small statistical toolkit the experiment
// harness uses to emit the paper's figures: empirical CDFs, quantiles,
// and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
// The zero value is an empty distribution; add samples with Add.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF builds a CDF from the given samples.
func NewCDF(samples []float64) *CDF {
	c := &CDF{samples: append([]float64(nil), samples...)}
	c.sort()
	return c
}

// Add appends a sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns the fraction of samples <= x (the CDF evaluated at x).
// An empty distribution returns 0.
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	idx := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples.
// It panics on an empty distribution or out-of-range q.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		panic("stats: quantile of empty distribution")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	c.sort()
	if q == 1 {
		return c.samples[len(c.samples)-1]
	}
	idx := int(q * float64(len(c.samples)))
	if idx >= len(c.samples) {
		idx = len(c.samples) - 1
	}
	return c.samples[idx]
}

// Min returns the smallest sample; it panics on an empty distribution.
func (c *CDF) Min() float64 {
	c.sort()
	return c.samples[0]
}

// Max returns the largest sample; it panics on an empty distribution.
func (c *CDF) Max() float64 {
	c.sort()
	return c.samples[len(c.samples)-1]
}

// Mean returns the sample mean (0 for an empty distribution).
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range c.samples {
		s += x
	}
	return s / float64(len(c.samples))
}

// Points returns (x, F(x)) pairs suitable for plotting the CDF as a
// step series, evaluated at every distinct sample value.
func (c *CDF) Points() [][2]float64 {
	c.sort()
	var out [][2]float64
	n := float64(len(c.samples))
	for i := 0; i < len(c.samples); i++ {
		if i+1 < len(c.samples) && c.samples[i+1] == c.samples[i] {
			continue // emit the last duplicate only
		}
		out = append(out, [2]float64{c.samples[i], float64(i+1) / n})
	}
	return out
}

// Summary bundles the headline statistics of a sample set.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	P50  float64
	P90  float64
	P99  float64
}

// Summarize computes a Summary of the CDF's samples. An empty
// distribution yields a zero Summary.
func (c *CDF) Summarize() Summary {
	if len(c.samples) == 0 {
		return Summary{}
	}
	return Summary{
		N:    c.N(),
		Mean: c.Mean(),
		Min:  c.Min(),
		Max:  c.Max(),
		P50:  c.Quantile(0.50),
		P90:  c.Quantile(0.90),
		P99:  c.Quantile(0.99),
	}
}

// Rate is a success counter with a readable percentage.
type Rate struct {
	Hits, Total int
}

// Observe records one outcome.
func (r *Rate) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Fraction returns Hits/Total (0 when empty).
func (r Rate) Fraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Percent returns the rate in percent.
func (r Rate) Percent() float64 { return 100 * r.Fraction() }

// String implements fmt.Stringer.
func (r Rate) String() string {
	return fmt.Sprintf("%.1f%% (%d/%d)", r.Percent(), r.Hits, r.Total)
}
