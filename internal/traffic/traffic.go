// Package traffic grades recovery schemes on the production metric
// the paper leaves out: post-recovery link load. It synthesizes a
// gravity-model traffic matrix from the topology's geometric
// coordinates, routes it over the converged tables to calibrate a
// uniform link capacity at heavy offered load, and then replays the
// matrix under a failure — packets follow pre-failure forwarding until
// they reach a recovery initiator, whose scheme-specific recovery
// trajectory carries the flow the rest of the way. The per-link loads
// before and after recovery summarize to peak/percentile utilization,
// and the offered = delivered + dropped conservation mirrors the loss
// model's accounting (the invariant oracle checks it).
package traffic

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// HeavyLoadTarget is the clean-topology peak utilization the capacity
// calibration aims at: the heavy-offered-load operating point the
// congestion experiments run under.
const HeavyLoadTarget = 0.9

// Demand is one (src, dst) flow at a steady offered rate.
type Demand struct {
	Src, Dst graph.NodeID
	Rate     float64
}

// Matrix is a sampled traffic matrix.
type Matrix struct {
	Demands []Demand
	// Total is the summed offered rate.
	Total float64
}

// Gravity samples a gravity-model traffic matrix from the topology's
// geometry: pair (s, d) is offered rate proportional to
// deg(s)·deg(d) / (d0 + dist(s, d))², where dist is the Euclidean
// distance between the nodes' coordinates and d0 — the mean link
// length — keeps nearby pairs from diverging. Degree is the standard
// gravity mass proxy for a router's attraction (well-connected hubs
// source and sink more traffic); the quadratic distance deterrence is
// the classical form. pairs distinct (s, d) pairs are drawn from rng,
// so the matrix is a pure function of (topology, seed, pairs).
func Gravity(topo *topology.Topology, pairs int, rng *rand.Rand) *Matrix {
	g := topo.G
	n := g.NumNodes()
	d0 := meanLinkLength(topo)
	m := &Matrix{Demands: make([]Demand, 0, pairs)}
	seen := make(map[[2]graph.NodeID]bool, pairs)
	for len(m.Demands) < pairs {
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))
		if s == d || seen[[2]graph.NodeID{s, d}] {
			continue
		}
		seen[[2]graph.NodeID{s, d}] = true
		dist := topo.Coord(s).Dist(topo.Coord(d))
		den := (d0 + dist) * (d0 + dist)
		rate := float64(g.Degree(s)) * float64(g.Degree(d)) / den
		m.Demands = append(m.Demands, Demand{Src: s, Dst: d, Rate: rate})
		m.Total += rate
	}
	return m
}

func meanLinkLength(topo *topology.Topology) float64 {
	g := topo.G
	if g.NumLinks() == 0 {
		return 1
	}
	sum := 0.0
	for id := 0; id < g.NumLinks(); id++ {
		sum += topo.LinkSegment(graph.LinkID(id)).Length()
	}
	return sum / float64(g.NumLinks())
}

// Baseline routes every demand over the clean converged tables and
// returns the per-link load vector (indexed by LinkID). This is the
// pre-failure state the capacity calibration and the "before" column
// read.
func Baseline(w *sim.World, m *Matrix) []float64 {
	load := make([]float64, w.Topo.G.NumLinks())
	n := w.Topo.G.NumNodes()
	for _, d := range m.Demands {
		v := d.Src
		for hops := 0; v != d.Dst && hops < n; hops++ {
			nh, link, ok := w.Tables.NextHop(v, d.Dst)
			if !ok {
				break
			}
			load[link] += d.Rate
			v = nh
		}
	}
	return load
}

// CalibrateCapacity returns the uniform link capacity that puts the
// clean-topology peak utilization at target — the "heavy offered
// load" operating point (0.9 in the experiments). Zero peak load
// yields capacity 1 so utilization stays defined.
func CalibrateCapacity(load []float64, target float64) float64 {
	peak := 0.0
	for _, l := range load {
		if l > peak {
			peak = l
		}
	}
	if peak == 0 || target <= 0 {
		return 1
	}
	return peak / target
}

// Runner executes one recovery case for the scheme under test and
// reports delivery plus the data-plane walks to charge. It adapts
// scheme.Run without making this package depend on the registry.
type Runner func(c *sim.Case) (delivered bool, walks []routing.Walk, err error)

// Flow accounting totals. Conservation (Offered = Delivered + Dropped)
// is an invariant the oracle checks.
type Flows struct {
	Offered   float64 `json:"offered"`
	Delivered float64 `json:"delivered"`
	Dropped   float64 `json:"dropped"`
}

// RunUnder replays the matrix under a failure scenario: each demand's
// packets follow pre-failure forwarding until a node's next hop is
// unreachable; that node becomes the recovery initiator and the
// scheme's recovery trajectory (run) carries the flow onward. The
// returned load vector covers pre-failure hops up to the initiator
// plus every hop of the scheme's data-plane walks. Demands sourced
// inside the failure are not offered (the source is dead); demands
// that reach no initiator and no destination (converged next hop
// missing) are dropped where they stall.
func RunUnder(w *sim.World, sc *failure.Scenario, m *Matrix, run Runner) ([]float64, Flows, error) {
	lv := routing.NewLocalView(w.Topo, sc)
	load := make([]float64, w.Topo.G.NumLinks())
	var fl Flows
	n := w.Topo.G.NumNodes()
	for _, d := range m.Demands {
		if sc.NodeDown(d.Src) {
			continue
		}
		fl.Offered += d.Rate
		v := d.Src
		delivered := false
		for hops := 0; hops < n; hops++ {
			if v == d.Dst {
				delivered = true
				break
			}
			nh, link, ok := w.Tables.NextHop(v, d.Dst)
			if !ok {
				break
			}
			if lv.NeighborUnreachable(v, link) {
				c := &sim.Case{
					Scenario:  sc,
					LV:        lv,
					Initiator: v,
					Dst:       d.Dst,
					NextHop:   nh,
					Trigger:   link,
				}
				var walks []routing.Walk
				var err error
				delivered, walks, err = run(c)
				if err != nil {
					return nil, Flows{}, fmt.Errorf("traffic: recovery at %d for %d->%d: %w", v, d.Src, d.Dst, err)
				}
				for _, wk := range walks {
					for _, rec := range wk.Records {
						load[rec.Link] += d.Rate
					}
				}
				break
			}
			load[link] += d.Rate
			v = nh
		}
		if delivered {
			fl.Delivered += d.Rate
		} else {
			fl.Dropped += d.Rate
		}
	}
	return load, fl, nil
}

// Util summarizes a load vector against a uniform capacity.
type Util struct {
	// Peak is the maximum link utilization; P99 and P50 are load
	// percentiles across links; Mean averages over all links.
	Peak float64 `json:"peak"`
	P99  float64 `json:"p99"`
	P50  float64 `json:"p50"`
	Mean float64 `json:"mean"`
}

// Summarize reduces a per-link load vector to utilization statistics
// under a uniform capacity. Links inside the failure (sc non-nil and
// the link failed) carry no traffic by construction and are excluded
// so a dead link's zero doesn't dilute the percentiles.
func Summarize(load []float64, capacity float64, sc *failure.Scenario, g *graph.Graph) Util {
	if capacity <= 0 {
		capacity = 1
	}
	utils := make([]float64, 0, len(load))
	for id, l := range load {
		if sc != nil && linkFailed(sc, g, graph.LinkID(id)) {
			continue
		}
		utils = append(utils, l/capacity)
	}
	var u Util
	if len(utils) == 0 {
		return u
	}
	sort.Float64s(utils)
	sum := 0.0
	for _, x := range utils {
		sum += x
	}
	u.Peak = utils[len(utils)-1]
	u.P99 = utils[(len(utils)-1)*99/100]
	u.P50 = utils[(len(utils)-1)/2]
	u.Mean = sum / float64(len(utils))
	return u
}

func linkFailed(sc *failure.Scenario, g *graph.Graph, id graph.LinkID) bool {
	l := g.Link(id)
	return sc.NodeDown(l.A) || sc.NodeDown(l.B) || linkDown(sc, id)
}

func linkDown(sc *failure.Scenario, id graph.LinkID) bool {
	for _, f := range sc.FailedLinks() {
		if f == id {
			return true
		}
	}
	return false
}

// Result is one (topology, scheme) utilization measurement: the
// before/after utilization columns plus the conservation totals,
// aggregated over however many scenarios the caller replayed (Pre is
// scenario-independent; Post aggregates by max so the peak column
// reports the worst case observed).
type Result struct {
	Topology string `json:"topology"`
	Scheme   string `json:"scheme"`
	// Pairs is the matrix size; Scenarios the failure draws replayed.
	Pairs     int `json:"pairs"`
	Scenarios int `json:"scenarios"`
	// Capacity is the calibrated uniform link capacity.
	Capacity float64 `json:"capacity"`
	Pre      Util    `json:"pre"`
	Post     Util    `json:"post"`
	Flows    Flows   `json:"flows"`
}

// Merge folds one scenario's post-recovery measurement into the
// aggregate: utilization columns take the elementwise max (worst case
// across scenarios), flow totals accumulate.
func (r *Result) Merge(post Util, fl Flows) {
	r.Scenarios++
	if post.Peak > r.Post.Peak {
		r.Post.Peak = post.Peak
	}
	if post.P99 > r.Post.P99 {
		r.Post.P99 = post.P99
	}
	if post.P50 > r.Post.P50 {
		r.Post.P50 = post.P50
	}
	if post.Mean > r.Post.Mean {
		r.Post.Mean = post.Mean
	}
	r.Flows.Offered += fl.Offered
	r.Flows.Delivered += fl.Delivered
	r.Flows.Dropped += fl.Dropped
}
