package traffic_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/failure"
	"repro/internal/routing"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func testWorld(t *testing.T) *sim.World {
	t.Helper()
	w, err := sim.NewWorld("AS1239", 7)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runnerFor(t *testing.T, w *sim.World, name string) traffic.Runner {
	t.Helper()
	s, err := scheme.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return func(c *sim.Case) (bool, []routing.Walk, error) {
		r, err := s.Run(w, c, nil)
		if err != nil {
			return false, nil, err
		}
		return r.Delivered, r.Walks, nil
	}
}

func TestGravityDeterministicAndWellFormed(t *testing.T) {
	topo := testWorld(t).Topo
	m := traffic.Gravity(topo, 100, rand.New(rand.NewSource(5)))
	if len(m.Demands) != 100 {
		t.Fatalf("got %d demands, want 100", len(m.Demands))
	}
	sum := 0.0
	seen := map[[2]int]bool{}
	for _, d := range m.Demands {
		if d.Src == d.Dst {
			t.Errorf("self pair %d->%d", d.Src, d.Dst)
		}
		if d.Rate <= 0 {
			t.Errorf("pair %d->%d: non-positive rate %v", d.Src, d.Dst, d.Rate)
		}
		k := [2]int{int(d.Src), int(d.Dst)}
		if seen[k] {
			t.Errorf("duplicate pair %v", k)
		}
		seen[k] = true
		sum += d.Rate
	}
	if math.Abs(sum-m.Total) > 1e-9*m.Total {
		t.Errorf("Total %v != demand sum %v", m.Total, sum)
	}
	again := traffic.Gravity(topo, 100, rand.New(rand.NewSource(5)))
	if !reflect.DeepEqual(m, again) {
		t.Error("same (topology, seed, pairs) produced a different matrix")
	}
}

func TestCalibrationPutsCleanPeakAtTarget(t *testing.T) {
	w := testWorld(t)
	m := traffic.Gravity(w.Topo, 200, rand.New(rand.NewSource(5)))
	base := traffic.Baseline(w, m)
	cap := traffic.CalibrateCapacity(base, traffic.HeavyLoadTarget)
	u := traffic.Summarize(base, cap, nil, w.Topo.G)
	if math.Abs(u.Peak-traffic.HeavyLoadTarget) > 1e-9 {
		t.Errorf("calibrated clean peak %v, want %v", u.Peak, traffic.HeavyLoadTarget)
	}
	if u.P99 > u.Peak || u.P50 > u.P99 || u.Mean > u.Peak || u.P50 < 0 {
		t.Errorf("column order violated: %+v", u)
	}
}

// TestRunUnderConservation: replaying the matrix under failures with
// each registered phase-2 scheme conserves flow exactly — offered =
// delivered + dropped — and never offers traffic from a dead source.
func TestRunUnderConservation(t *testing.T) {
	w := testWorld(t)
	m := traffic.Gravity(w.Topo, 200, rand.New(rand.NewSource(5)))
	for _, name := range []string{scheme.NameRTR, scheme.NameSpread, scheme.NameFCP} {
		run := runnerFor(t, w, name)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 3; i++ {
			sc := failure.RandomScenario(w.Topo, rng)
			load, fl, err := traffic.RunUnder(w, sc, m, run)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fl.Offered-(fl.Delivered+fl.Dropped)) > 1e-9*math.Max(fl.Offered, 1) {
				t.Errorf("%s scenario %d: offered %v != delivered %v + dropped %v",
					name, i, fl.Offered, fl.Delivered, fl.Dropped)
			}
			offered := 0.0
			for _, d := range m.Demands {
				if !sc.NodeDown(d.Src) {
					offered += d.Rate
				}
			}
			if math.Abs(fl.Offered-offered) > 1e-9*math.Max(offered, 1) {
				t.Errorf("%s scenario %d: offered %v, want live-source total %v", name, i, fl.Offered, offered)
			}
			for id, l := range load {
				if l < 0 {
					t.Errorf("%s scenario %d: negative load %v on link %d", name, i, l, id)
				}
			}
		}
	}
}

// TestSpreadPeakVersusRTR compares post-recovery peak load between
// plain RTR and the load-spreading scheme across scenarios — the
// experiment the BENCH entries publish. The assertion is lenient
// (spreading can't do worse than RTR by more than the slack allows on
// aggregate peaks is not a theorem), so it only logs the measurement
// and requires both schemes to produce a valid aggregate.
func TestSpreadPeakVersusRTR(t *testing.T) {
	w := testWorld(t)
	m := traffic.Gravity(w.Topo, 400, rand.New(rand.NewSource(5)))
	base := traffic.Baseline(w, m)
	cap := traffic.CalibrateCapacity(base, traffic.HeavyLoadTarget)
	peaks := map[string]float64{}
	for _, name := range []string{scheme.NameRTR, scheme.NameSpread} {
		run := runnerFor(t, w, name)
		res := &traffic.Result{Topology: "AS1239", Scheme: name, Pairs: len(m.Demands), Capacity: cap,
			Pre: traffic.Summarize(base, cap, nil, w.Topo.G)}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 5; i++ {
			sc := failure.RandomScenario(w.Topo, rng)
			load, fl, err := traffic.RunUnder(w, sc, m, run)
			if err != nil {
				t.Fatal(err)
			}
			res.Merge(traffic.Summarize(load, cap, sc, w.Topo.G), fl)
		}
		if res.Post.Peak <= 0 {
			t.Fatalf("%s: no post-recovery load measured", name)
		}
		peaks[name] = res.Post.Peak
		t.Logf("%s: pre peak %.4f post peak %.4f (delivered %.1f%%)",
			name, res.Pre.Peak, res.Post.Peak, 100*res.Flows.Delivered/res.Flows.Offered)
	}
	t.Logf("peak ratio rtr-spread/rtr = %.4f", peaks[scheme.NameSpread]/peaks[scheme.NameRTR])
}
