package report

import (
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

func parse(t *testing.T, out string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, out)
	}
	return rows
}

func TestWriteCDF(t *testing.T) {
	var b strings.Builder
	c := stats.NewCDF([]float64{1, 1, 2})
	if err := WriteCDF(&b, "stretch", c); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, b.String())
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "stretch" || rows[0][1] != "cdf" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "1" || rows[1][1] != "0.6666666666666666" {
		t.Errorf("first point = %v", rows[1])
	}
	if rows[2][0] != "2" || rows[2][1] != "1" {
		t.Errorf("second point = %v", rows[2])
	}
}

func TestWriteCDFPair(t *testing.T) {
	var b strings.Builder
	a := stats.NewCDF([]float64{1})
	c := stats.NewCDF([]float64{2, 3})
	if err := WriteCDFPair(&b, "calcs", [2]string{"RTR", "FCP"}, [2]*stats.CDF{a, c}); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, b.String())
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][0] != "RTR" || rows[2][0] != "FCP" || rows[3][0] != "FCP" {
		t.Errorf("series column wrong: %v", rows)
	}
}

func TestWriteTimeSeries(t *testing.T) {
	var b strings.Builder
	pts := []sim.TimePoint{
		{T: 0, RTRBytes: 4, FCPBytes: 12},
		{T: 10 * time.Millisecond, RTRBytes: 8.5, FCPBytes: 13},
	}
	if err := WriteTimeSeries(&b, pts); err != nil {
		t.Fatal(err)
	}
	rows := parse(t, b.String())
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[2][0] != "10" || rows[2][1] != "8.5" {
		t.Errorf("second point = %v", rows[2])
	}
}

func TestWriteTable3(t *testing.T) {
	var b strings.Builder
	rows := []sim.Table3Row{{
		AS: "AS209", RTRRecovery: 95.4, FCPRecovery: 100, MRCRecovery: 45.3,
		RTROptimal: 95.4, FCPOptimal: 84.5, MRCOptimal: 38.9,
		RTRMaxStretch: 1, FCPMaxStretch: 4, MRCMaxStretch: 2,
		RTRMaxCalcs: 1, FCPMaxCalcs: 8,
	}}
	if err := WriteTable3(&b, rows); err != nil {
		t.Fatal(err)
	}
	got := parse(t, b.String())
	if len(got) != 2 || got[1][0] != "AS209" || got[1][11] != "8" {
		t.Errorf("table = %v", got)
	}
}

func TestWriteTable4(t *testing.T) {
	var b strings.Builder
	rows := []sim.Table4Row{{
		AS: "AS209", RTRAvgComp: 1, FCPAvgComp: 5.5, RTRMaxComp: 1, FCPMaxComp: 19,
		RTRAvgTrans: 1524.2, FCPAvgTrans: 9815.4, RTRMaxTrans: 7140, FCPMaxTrans: 41652,
	}}
	if err := WriteTable4(&b, rows); err != nil {
		t.Fatal(err)
	}
	got := parse(t, b.String())
	if len(got) != 2 || got[1][0] != "AS209" || got[1][8] != "41652" {
		t.Errorf("table = %v", got)
	}
}

func TestWriteFig11(t *testing.T) {
	var b strings.Builder
	series := map[string][]sim.Fig11Point{
		"AS209": {{Radius: 20, Percent: 15.4, Failed: 100}},
	}
	if err := WriteFig11(&b, series); err != nil {
		t.Fatal(err)
	}
	got := parse(t, b.String())
	if len(got) != 2 || got[1][0] != "AS209" || got[1][3] != "100" {
		t.Errorf("fig11 = %v", got)
	}
}
