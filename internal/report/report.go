// Package report renders experiment results as CSV files so the
// paper's figures can be re-plotted with any tool. Each writer emits a
// header row followed by data rows; all values are plain decimal.
package report

import (
	"encoding/csv"
	"io"
	"strconv"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// WriteCDF emits a CDF as (value, fraction) step points.
func WriteCDF(w io.Writer, valueName string, c *stats.CDF) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{valueName, "cdf"}); err != nil {
		return err
	}
	for _, p := range c.Points() {
		if err := cw.Write([]string{ftoa(p[0]), ftoa(p[1])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCDFPair emits two CDFs (typically RTR and FCP) side by side as
// long-format rows: series,value,cdf.
func WriteCDFPair(w io.Writer, valueName string, names [2]string, cdfs [2]*stats.CDF) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", valueName, "cdf"}); err != nil {
		return err
	}
	for i, c := range cdfs {
		for _, p := range c.Points() {
			if err := cw.Write([]string{names[i], ftoa(p[0]), ftoa(p[1])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimeSeries emits Fig. 10's time series as (ms, rtr, fcp) rows.
func WriteTimeSeries(w io.Writer, pts []sim.TimePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_ms", "rtr_bytes", "fcp_bytes"}); err != nil {
		return err
	}
	for _, p := range pts {
		row := []string{
			ftoa(float64(p.T) / float64(time.Millisecond)),
			ftoa(p.RTRBytes),
			ftoa(p.FCPBytes),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3 emits Table III rows.
func WriteTable3(w io.Writer, rows []sim.Table3Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"as",
		"rtr_recovery", "fcp_recovery", "mrc_recovery",
		"rtr_optimal", "fcp_optimal", "mrc_optimal",
		"rtr_max_stretch", "fcp_max_stretch", "mrc_max_stretch",
		"rtr_max_calcs", "fcp_max_calcs",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		row := []string{
			r.AS,
			ftoa(r.RTRRecovery), ftoa(r.FCPRecovery), ftoa(r.MRCRecovery),
			ftoa(r.RTROptimal), ftoa(r.FCPOptimal), ftoa(r.MRCOptimal),
			ftoa(r.RTRMaxStretch), ftoa(r.FCPMaxStretch), ftoa(r.MRCMaxStretch),
			strconv.Itoa(r.RTRMaxCalcs), strconv.Itoa(r.FCPMaxCalcs),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable4 emits Table IV rows.
func WriteTable4(w io.Writer, rows []sim.Table4Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"as",
		"rtr_avg_comp", "fcp_avg_comp", "rtr_max_comp", "fcp_max_comp",
		"rtr_avg_trans", "fcp_avg_trans", "rtr_max_trans", "fcp_max_trans",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		row := []string{
			r.AS,
			ftoa(r.RTRAvgComp), ftoa(r.FCPAvgComp), ftoa(r.RTRMaxComp), ftoa(r.FCPMaxComp),
			ftoa(r.RTRAvgTrans), ftoa(r.FCPAvgTrans), ftoa(r.RTRMaxTrans), ftoa(r.FCPMaxTrans),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig11 emits the radius sweep as long-format rows.
func WriteFig11(w io.Writer, series map[string][]sim.Fig11Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"as", "radius", "irrecoverable_pct", "failed_paths"}); err != nil {
		return err
	}
	for as, pts := range series {
		for _, p := range pts {
			row := []string{as, ftoa(p.Radius), ftoa(p.Percent), strconv.Itoa(p.Failed)}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteUtil emits the congestion experiment's utilization columns as
// long-format rows, one per (topology, scheme): the pre-failure
// calibrated column and the worst post-recovery column observed across
// scenarios, plus the flow-conservation totals.
func WriteUtil(w io.Writer, results []*traffic.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"as", "scheme", "pairs", "scenarios",
		"pre_peak", "pre_p99", "pre_p50", "pre_mean",
		"post_peak", "post_p99", "post_p50", "post_mean",
		"offered", "delivered", "dropped"}); err != nil {
		return err
	}
	for _, r := range results {
		row := []string{r.Topology, r.Scheme, strconv.Itoa(r.Pairs), strconv.Itoa(r.Scenarios),
			ftoa(r.Pre.Peak), ftoa(r.Pre.P99), ftoa(r.Pre.P50), ftoa(r.Pre.Mean),
			ftoa(r.Post.Peak), ftoa(r.Post.P99), ftoa(r.Post.P50), ftoa(r.Post.Mean),
			ftoa(r.Flows.Offered), ftoa(r.Flows.Delivered), ftoa(r.Flows.Dropped)}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
