package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// RecoveryPath before Collect is legal: the initiator then prunes only
// its own unreachable links (the degenerate "no phase 1" mode). On the
// fixture the naive view still misses e4-11 and e5-10, so the computed
// 5-hop path may or may not be usable depending on tie-breaking —
// either way the invariants hold: a failure-free path is optimal
// (Theorem 2) and a bad pick is caught during forwarding.
func TestRecoveryPathWithoutCollect(t *testing.T) {
	topo, _, _, sess, _ := paperWorld(t)
	rt, ok := sess.RecoveryPath(topology.PaperNode(17))
	if !ok {
		t.Fatal("local-only recovery must still find a candidate path")
	}
	if rt.Hops() != 5 {
		t.Fatalf("local-only path has %d hops, want 5", rt.Hops())
	}
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	fwd := sess.ForwardSourceRouted(rt)
	if fwd.Delivered {
		for _, l := range rt.Links {
			if sc.LinkDown(l) {
				t.Fatal("delivered across a failed link")
			}
		}
	} else if !sc.LinkDown(fwd.DropLink) {
		t.Errorf("dropped on live link %v", topo.G.Link(fwd.DropLink))
	}
	if sess.SPCalcs() != 1 {
		t.Errorf("SPCalcs = %d, want 1", sess.SPCalcs())
	}
}

// Collect after RecoveryPath invalidates the cached tree: subsequent
// paths use the collected information (and cost one more computation).
func TestCollectInvalidatesCachedTree(t *testing.T) {
	topo, _, _, sess, trigger := paperWorld(t)
	if _, ok := sess.RecoveryPath(topology.PaperNode(17)); !ok {
		t.Fatal("need the naive path first")
	}
	if _, err := sess.Collect(trigger); err != nil {
		t.Fatal(err)
	}
	rt, ok := sess.RecoveryPath(topology.PaperNode(17))
	if !ok {
		t.Fatal("post-collection recovery must succeed")
	}
	if rt.Hops() != 5 {
		t.Errorf("post-collection path has %d hops, want 5", rt.Hops())
	}
	if fwd := sess.ForwardSourceRouted(rt); !fwd.Delivered {
		t.Error("post-collection path must deliver")
	}
	if sess.SPCalcs() != 2 {
		t.Errorf("SPCalcs = %d, want 2 (naive + post-collection)", sess.SPCalcs())
	}
	_ = topo
}

// Every phase-2 header RTR builds survives its own wire codec, across
// random scenarios.
func TestSourceRouteHeadersAlwaysEncode(t *testing.T) {
	topo := topology.GenerateAS("AS209", 11)
	r := New(topo, nil)
	tables := routing.ComputeTables(topo)
	rng := rand.New(rand.NewSource(17))
	n := topo.G.NumNodes()
	checked := 0
	for checked < 100 {
		sc := failure.RandomScenario(topo, rng)
		lv := routing.NewLocalView(topo, sc)
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		outcome, initiator, _ := routing.TraceDefault(tables, lv, src, dst)
		if outcome != routing.DefaultBlocked {
			continue
		}
		sess, err := r.NewSession(lv, initiator)
		if err != nil {
			t.Fatal(err)
		}
		_, trigger, _ := tables.NextHop(initiator, dst)
		if _, err := sess.Collect(trigger); errors.Is(err, ErrNoLiveNeighbor) {
			continue
		} else if err != nil {
			t.Fatal(err)
		}
		rt, ok := sess.RecoveryPath(dst)
		if !ok {
			continue
		}
		checked++
		h := sess.SourceRouteHeader(rt)
		b, err := h.AppendBinary(nil)
		if err != nil {
			t.Fatalf("encode: %v (header %+v)", err, h)
		}
		back, used, err := routing.DecodeHeader(b)
		if err != nil || used != len(b) {
			t.Fatalf("decode: %v (%d of %d bytes)", err, used, len(b))
		}
		if len(back.SourceRoute) != len(rt.Nodes) || back.RecInit != initiator {
			t.Fatalf("header mangled: %+v", back)
		}
		// The collection header must round-trip too.
		ch := sess.Collected().Header
		cb, err := ch.AppendBinary(nil)
		if err != nil {
			t.Fatalf("collect header encode: %v", err)
		}
		if _, _, err := routing.DecodeHeader(cb); err != nil {
			t.Fatalf("collect header decode: %v", err)
		}
	}
}
