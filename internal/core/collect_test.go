package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// paperWorld builds the Fig. 6 fixture with its failure area and the
// v6 recovery session triggered by the failed default next hop toward
// v17 (link e6-11), exactly the paper's running example.
func paperWorld(t *testing.T) (*topology.Topology, *RTR, *routing.LocalView, *Session, graph.LinkID) {
	t.Helper()
	topo := topology.PaperExample()
	r := New(topo, nil)
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	lv := routing.NewLocalView(topo, sc)
	sess, err := r.NewSession(lv, topology.PaperNode(6))
	if err != nil {
		t.Fatal(err)
	}
	return topo, r, lv, sess, topology.PaperLink(topo, 6, 11)
}

// TestTableIWalk reproduces the paper's Table I verbatim: the walk
// v6 v5 v4 v9 v13 v14 v12 v11 v12 v8 v7 v6 and the per-hop contents of
// failed_link and cross_link.
func TestTableIWalk(t *testing.T) {
	topo, _, _, sess, trigger := paperWorld(t)
	res, err := sess.Collect(trigger)
	if err != nil {
		t.Fatal(err)
	}

	wantNodes := []int{6, 5, 4, 9, 13, 14, 12, 11, 12, 8, 7, 6}
	gotNodes := res.Walk.Nodes()
	if len(gotNodes) != len(wantNodes) {
		t.Fatalf("walk = %v (%d nodes), want v%v", gotNodes, len(gotNodes), wantNodes)
	}
	for i, k := range wantNodes {
		if gotNodes[i] != topology.PaperNode(k) {
			t.Fatalf("walk[%d] = v%d, want v%d (walk %v)", i, gotNodes[i]+1, k, gotNodes)
		}
	}
	if res.Walk.Hops() != 11 {
		t.Errorf("walk hops = %d, want 11 (Table I ends at hop 11)", res.Walk.Hops())
	}
	if res.FirstHop != topology.PaperNode(5) {
		t.Errorf("first hop = v%d, want v5", res.FirstHop+1)
	}

	// failed_link, in Table I's exact recording order.
	wantFailed := []graph.LinkID{
		topology.PaperLink(topo, 5, 10),
		topology.PaperLink(topo, 4, 11),
		topology.PaperLink(topo, 9, 10),
		topology.PaperLink(topo, 10, 14),
		topology.PaperLink(topo, 10, 11),
	}
	if len(res.Header.FailedLinks) != len(wantFailed) {
		t.Fatalf("failed_link = %v, want %v", res.Header.FailedLinks, wantFailed)
	}
	for i, id := range wantFailed {
		if res.Header.FailedLinks[i] != id {
			t.Errorf("failed_link[%d] = %v, want %v",
				i, topo.G.Link(res.Header.FailedLinks[i]), topo.G.Link(id))
		}
	}

	// cross_link: exactly {e6-11, e14-12}, in insertion order.
	wantCross := []graph.LinkID{
		topology.PaperLink(topo, 6, 11),
		topology.PaperLink(topo, 12, 14),
	}
	if len(res.Header.CrossLinks) != len(wantCross) {
		t.Fatalf("cross_link = %v, want %v", res.Header.CrossLinks, wantCross)
	}
	for i, id := range wantCross {
		if res.Header.CrossLinks[i] != id {
			t.Errorf("cross_link[%d] = %v, want %v",
				i, topo.G.Link(res.Header.CrossLinks[i]), topo.G.Link(id))
		}
	}

	// Per-hop header growth (Table I's rows, as recording bytes with
	// 16-bit link IDs): hop 0 carries 1 cross link; e14-12 joins at
	// hop 5; failed links arrive at hops 1, 2, 3, 5, 7.
	wantBytes := []int{2, 4, 6, 8, 8, 12, 12, 14, 14, 14, 14}
	for i, rec := range res.Walk.Records {
		if rec.HeaderBytes != wantBytes[i] {
			t.Errorf("hop %d header bytes = %d, want %d", i, rec.HeaderBytes, wantBytes[i])
		}
	}
}

func TestCollectDuration(t *testing.T) {
	_, _, _, sess, trigger := paperWorld(t)
	res, err := sess.Collect(trigger)
	if err != nil {
		t.Fatal(err)
	}
	// 11 hops x 1.8 ms.
	if got := time.Duration(res.Duration()); got != 11*routing.HopDelay {
		t.Errorf("first-phase duration = %v, want %v", got, 11*routing.HopDelay)
	}
}

func TestCollectIsCached(t *testing.T) {
	_, _, _, sess, trigger := paperWorld(t)
	a, err := sess.Collect(trigger)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Collect(trigger)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Collect must run once per session and cache its result")
	}
}

func TestCollectHeaderModeAndInit(t *testing.T) {
	_, _, _, sess, trigger := paperWorld(t)
	res, err := sess.Collect(trigger)
	if err != nil {
		t.Fatal(err)
	}
	if res.Header.Mode != routing.ModeCollect {
		t.Errorf("mode = %v, want collect", res.Header.Mode)
	}
	if res.Header.RecInit != topology.PaperNode(6) {
		t.Errorf("rec_init = %d, want v6", res.Header.RecInit)
	}
	if !res.Constrained {
		t.Error("normal collection must be constrained")
	}
}

// TestFig4UnconstrainedDisorder reproduces Fig. 4: without the
// constraints, the right-hand rule at v5 selects v12 (crossing e6-11),
// the walk short-circuits back to v6 and fails to enclose the failure
// area, missing most failed links.
func TestFig4UnconstrainedDisorder(t *testing.T) {
	topo, r, lv, _, trigger := paperWorld(t)
	res, err := r.CollectUnconstrained(lv, topology.PaperNode(6), trigger)
	if err != nil {
		t.Fatal(err)
	}
	nodes := res.Walk.Nodes()
	// The disordered walk: v6 v5 v12 v8 v7 v6.
	want := []int{6, 5, 12, 8, 7, 6}
	if len(nodes) != len(want) {
		t.Fatalf("unconstrained walk = %v, want v%v", nodes, want)
	}
	for i, k := range want {
		if nodes[i] != topology.PaperNode(k) {
			t.Fatalf("unconstrained walk[%d] = v%d, want v%d", i, nodes[i]+1, k)
		}
	}
	// It collects only e5-10 and misses the other four failures.
	if len(res.Header.FailedLinks) != 1 || res.Header.FailedLinks[0] != topology.PaperLink(topo, 5, 10) {
		t.Errorf("unconstrained failed_link = %v, want only e5-10", res.Header.FailedLinks)
	}
	if res.Constrained {
		t.Error("result must be flagged unconstrained")
	}
}

func TestCollectErrors(t *testing.T) {
	topo, r, lv, _, _ := paperWorld(t)

	// Session at a failed router.
	if _, err := r.NewSession(lv, topology.PaperNode(10)); !errors.Is(err, ErrInitiatorDown) {
		t.Errorf("session at v10: err = %v, want ErrInitiatorDown", err)
	}

	// Trigger whose far end is reachable.
	sess, err := r.NewSession(lv, topology.PaperNode(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Collect(topology.PaperLink(topo, 6, 5)); !errors.Is(err, ErrNotUnreachable) {
		t.Errorf("live trigger: err = %v, want ErrNotUnreachable", err)
	}

	// Trigger not incident to the initiator.
	if _, err := sess.Collect(topology.PaperLink(topo, 15, 17)); err == nil {
		t.Error("non-incident trigger must fail")
	}
}

func TestCollectNoLiveNeighbor(t *testing.T) {
	// An initiator whose every neighbor is unreachable cannot collect.
	topo := topology.PaperExample()
	r := New(topo, nil)
	m := graph.NewMask(topo.G)
	// Fail all of v7's links (e3-7, e6-7, e7-8).
	for _, h := range topo.G.Adj(topology.PaperNode(7)) {
		m.FailLink(h.Link)
	}
	lv := routing.NewLocalView(topo, m)
	sess, err := r.NewSession(lv, topology.PaperNode(7))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Collect(topology.PaperLink(topo, 6, 7))
	if !errors.Is(err, ErrNoLiveNeighbor) {
		t.Errorf("err = %v, want ErrNoLiveNeighbor", err)
	}
}

// TestCollectSingleLiveNeighborBounce: with exactly one live neighbor
// the walk bounces out and back and terminates immediately after.
func TestCollectSingleLiveNeighborBounce(t *testing.T) {
	topo := topology.PaperExample()
	r := New(topo, nil)
	m := graph.NewMask(topo.G)
	// v7 keeps only e7-8: fail e6-7 and e3-7.
	m.FailLink(topology.PaperLink(topo, 6, 7))
	m.FailLink(topology.PaperLink(topo, 3, 7))
	lv := routing.NewLocalView(topo, m)
	sess, err := r.NewSession(lv, topology.PaperNode(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Collect(topology.PaperLink(topo, 6, 7))
	if err != nil {
		t.Fatal(err)
	}
	nodes := res.Walk.Nodes()
	if nodes[0] != topology.PaperNode(7) || nodes[len(nodes)-1] != topology.PaperNode(7) {
		t.Errorf("walk must start and end at v7: %v", nodes)
	}
	if res.FirstHop != topology.PaperNode(8) {
		t.Errorf("first hop = v%d, want v8", res.FirstHop+1)
	}
}

// The collected failure set must always be a subset of the true failed
// links (E1 is a subset of E2) — the premise of Theorem 2.
func TestCollectedSubsetOfTruth(t *testing.T) {
	topo, _, _, sess, trigger := paperWorld(t)
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	res, err := sess.Collect(trigger)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Header.FailedLinks {
		if !sc.LinkDown(id) {
			t.Errorf("collected link %v is not actually failed", topo.G.Link(id))
		}
	}
}
