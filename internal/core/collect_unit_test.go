package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestCollectTriggerMismatch is the regression test for the cached-walk
// bug: a session that already collected must refuse a different
// trigger instead of silently handing back a walk that never happened.
func TestCollectTriggerMismatch(t *testing.T) {
	topo, _, _, sess, trigger := paperWorld(t)
	first, err := sess.Collect(trigger)
	if err != nil {
		t.Fatal(err)
	}
	same, err := sess.Collect(trigger)
	if err != nil || same != first {
		t.Fatalf("same trigger must return the cached walk: %p vs %p, err %v", same, first, err)
	}
	other := topology.PaperLink(topo, 6, 7)
	if other == trigger {
		t.Fatal("fixture links collapsed")
	}
	if _, err := sess.Collect(other); !errors.Is(err, ErrTriggerMismatch) {
		t.Fatalf("different trigger returned %v, want ErrTriggerMismatch", err)
	}
	// The rejection must not disturb the cached state.
	again, err := sess.Collect(trigger)
	if err != nil || again != first {
		t.Fatalf("cache disturbed after mismatch: %p vs %p, err %v", again, first, err)
	}
}

// TestReturnToInitiatorStopsAtLatestPass pins the truncation retrace on
// a walk that passed the initiator mid-way: the retrace must mirror
// only the records after the LATEST departure from the initiator, not
// rewind through the earlier out-and-back.
func TestReturnToInitiatorStopsAtLatestPass(t *testing.T) {
	topo := topology.PaperExample()
	r := New(topo, nil)
	ini := topology.PaperNode(6)
	a, b, c := topology.PaperNode(5), topology.PaperNode(7), topology.PaperNode(8)
	l1 := topology.PaperLink(topo, 6, 5)
	l2 := topology.PaperLink(topo, 6, 7)
	l3 := topology.PaperLink(topo, 7, 8)

	res := &CollectResult{}
	res.Header.RecInit = ini
	forward := []routing.HopRecord{
		{From: ini, To: a, Link: l1}, // early out...
		{From: a, To: ini, Link: l1}, // ...and back through home
		{From: ini, To: b, Link: l2}, // latest departure
		{From: b, To: c, Link: l3},
	}
	for _, rec := range forward {
		res.Walk.Append(rec)
		res.FieldSizes = append(res.FieldSizes, FieldSizes{})
	}

	r.returnToInitiator(res, c)
	if !res.Truncated {
		t.Fatal("returnToInitiator must mark the walk truncated")
	}
	want := append(forward,
		routing.HopRecord{From: c, To: b, Link: l3},
		routing.HopRecord{From: b, To: ini, Link: l2},
	)
	got := res.Walk.Records
	if len(got) != len(want) {
		t.Fatalf("retrace appended %d hops, want %d (must stop at the latest initiator pass): %v",
			len(got)-len(forward), len(want)-len(forward), got)
	}
	for i := range want {
		if g := got[i]; g.From != want[i].From || g.To != want[i].To || g.Link != want[i].Link {
			t.Errorf("record %d = %d-%d over %d, want %d-%d over %d",
				i, g.From, g.To, g.Link, want[i].From, want[i].To, want[i].Link)
		}
	}
	if len(res.FieldSizes) != len(got) {
		t.Errorf("FieldSizes has %d entries for %d hops", len(res.FieldSizes), len(got))
	}
}

// TestReturnToInitiatorAtHome: truncation while already at the
// initiator appends nothing but still marks the walk truncated.
func TestReturnToInitiatorAtHome(t *testing.T) {
	topo := topology.PaperExample()
	r := New(topo, nil)
	ini := topology.PaperNode(6)
	a := topology.PaperNode(5)
	l1 := topology.PaperLink(topo, 6, 5)

	res := &CollectResult{}
	res.Header.RecInit = ini
	res.Walk.Append(routing.HopRecord{From: ini, To: a, Link: l1})
	res.Walk.Append(routing.HopRecord{From: a, To: ini, Link: l1})
	res.FieldSizes = []FieldSizes{{}, {}}

	r.returnToInitiator(res, ini)
	if !res.Truncated {
		t.Fatal("must be marked truncated")
	}
	if res.Walk.Hops() != 2 {
		t.Fatalf("retrace from home appended hops: %v", res.Walk.Records)
	}
}

// TestWindingEnclosedThreshold pins the enclosure decision at the
// 1.5pi boundary and the accumulation/degeneracy behavior of add.
func TestWindingEnclosedThreshold(t *testing.T) {
	mk := func(sum float64) *winding {
		return &winding{probes: []geom.Point{{}}, sums: []float64{sum}}
	}
	cases := []struct {
		sum  float64
		want bool
	}{
		{0, false},
		{1.5*math.Pi - 1e-9, false}, // just under: not enclosed
		{1.5 * math.Pi, true},       // exactly at threshold: enclosed
		{2 * math.Pi, true},
		{-1.5 * math.Pi, true}, // clockwise winding counts too
		{-1.4 * math.Pi, false},
	}
	for _, c := range cases {
		if got := mk(c.sum).enclosed(); got != c.want {
			t.Errorf("enclosed(sum=%g) = %v, want %v", c.sum, got, c.want)
		}
	}

	// add accumulates the signed subtended angle: a quarter turn CCW
	// around the probe adds +pi/2.
	w := &winding{probes: []geom.Point{{X: 0, Y: 0}}, sums: []float64{0}}
	w.add(geom.Point{X: 1, Y: 0}, geom.Point{X: 0, Y: 1})
	if math.Abs(w.sums[0]-math.Pi/2) > 1e-12 {
		t.Errorf("quarter turn accumulated %g, want pi/2", w.sums[0])
	}
	// A hop touching the probe point contributes nothing (no panic, no NaN).
	w.add(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0})
	if math.Abs(w.sums[0]-math.Pi/2) > 1e-12 {
		t.Errorf("probe-touching hop changed the sum to %g", w.sums[0])
	}
	// Enclosure requires only ONE probe to be wound around.
	multi := &winding{probes: []geom.Point{{}, {}}, sums: []float64{0.1, 2 * math.Pi}}
	if !multi.enclosed() {
		t.Error("one wound probe must suffice")
	}
}

// TestPickFreshEscapeCounting pins the escape accounting: skipping i
// already-walked candidates before the first fresh one adds i escapes;
// a fully-walked candidate list returns the sweep's first choice with
// fresh=false and no escape charge.
func TestPickFreshEscapeCounting(t *testing.T) {
	hes := []graph.Halfedge{
		{Link: 1, Neighbor: 10},
		{Link: 2, Neighbor: 11},
		{Link: 3, Neighbor: 12},
	}
	seen := map[dirEdge]bool{
		{link: 1, to: 10}: true,
		{link: 2, to: 11}: true,
	}
	res := &CollectResult{}
	he, fresh := pickFresh(hes, seen, res)
	if !fresh || he.Link != 3 {
		t.Fatalf("pickFresh = (%+v, %v), want fresh link 3", he, fresh)
	}
	if res.Escapes != 2 {
		t.Fatalf("Escapes = %d, want 2 (skipped two walked candidates)", res.Escapes)
	}
	// First candidate fresh: no escapes added.
	res2 := &CollectResult{}
	he, fresh = pickFresh(hes, map[dirEdge]bool{}, res2)
	if !fresh || he.Link != 1 || res2.Escapes != 0 {
		t.Fatalf("unconstrained pick = (%+v, %v, escapes %d), want first candidate and 0", he, fresh, res2.Escapes)
	}
	// Everything walked: sweep's first choice, not fresh, no charge.
	seen[dirEdge{link: 3, to: 12}] = true
	he, fresh = pickFresh(hes, seen, res)
	if fresh || he.Link != 1 {
		t.Fatalf("exhausted pick = (%+v, %v), want stale first candidate", he, fresh)
	}
	if res.Escapes != 2 {
		t.Fatalf("exhausted pick charged escapes: %d", res.Escapes)
	}
}
