package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/routing"
	"repro/internal/topology"
)

// The full RTR pipeline on the paper's worked example (Figs. 1/2/6):
// the routing path v7 -> v6 -> v11 -> v15 -> v17 is cut, v6 collects
// the failure information and source-routes around it.
func Example() {
	topo := topology.PaperExample()
	tables := routing.ComputeTables(topo)
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	lv := routing.NewLocalView(topo, sc)

	src, dst := topology.PaperNode(7), topology.PaperNode(17)
	_, initiator, _ := routing.TraceDefault(tables, lv, src, dst)

	rtr := core.New(topo, nil)
	sess, _ := rtr.NewSession(lv, initiator)
	_, trigger, _ := tables.NextHop(initiator, dst)
	col, _ := sess.Collect(trigger)
	route, _ := sess.RecoveryPath(dst)
	fwd := sess.ForwardSourceRouted(route)

	fmt.Printf("initiator v%d walked %d hops and collected %d failed links\n",
		initiator+1, col.Walk.Hops(), len(col.Header.FailedLinks))
	fmt.Printf("recovery path has %d hops; delivered: %v; SP calculations: %d\n",
		route.Hops(), fwd.Delivered, sess.SPCalcs())
	// Output:
	// initiator v6 walked 11 hops and collected 5 failed links
	// recovery path has 5 hops; delivered: true; SP calculations: 1
}

// Collecting failure information once serves every destination the
// initiator must recover.
func ExampleSession_RecoveryPath() {
	topo := topology.PaperExample()
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	lv := routing.NewLocalView(topo, sc)

	rtr := core.New(topo, nil)
	sess, _ := rtr.NewSession(lv, topology.PaperNode(6))
	if _, err := sess.Collect(topology.PaperLink(topo, 6, 11)); err != nil {
		fmt.Println(err)
		return
	}
	for _, k := range []int{17, 15, 10} {
		if rt, ok := sess.RecoveryPath(topology.PaperNode(k)); ok {
			fmt.Printf("v%d reachable in %d hops\n", k, rt.Hops())
		} else {
			fmt.Printf("v%d unreachable: discard immediately\n", k)
		}
	}
	fmt.Printf("shortest-path calculations spent: %d\n", sess.SPCalcs())
	// Output:
	// v17 reachable in 5 hops
	// v15 reachable in 4 hops
	// v10 unreachable: discard immediately
	// shortest-path calculations spent: 1
}

// The initiator can localize the failure geometrically from what the
// walk collected.
func ExampleSession_EstimateArea() {
	topo := topology.PaperExample()
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	lv := routing.NewLocalView(topo, sc)

	rtr := core.New(topo, nil)
	sess, _ := rtr.NewSession(lv, topology.PaperNode(6))
	if _, err := sess.Collect(topology.PaperLink(topo, 6, 11)); err != nil {
		fmt.Println(err)
		return
	}
	est, ok := sess.EstimateArea()
	truth := topology.PaperFailureArea()
	fmt.Printf("estimated: %v, center error %.0f\n", ok, est.Center.Dist(truth.Center))
	// Output:
	// estimated: true, center error 39
}
