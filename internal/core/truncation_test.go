package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestTruncationRate measures how often the phase-1 walk ends via the
// truncation return (ran out of fresh directed edges away from home)
// rather than a clean enclosure-verified termination, and how often it
// escapes the paper's deterministic sweep. Both are expected under
// area failures (border areas can never be enclosed); the test
// documents the rates and guards against a regression where
// essentially every walk truncates.
func TestTruncationRate(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	total, truncated, escapes := 0, 0, 0
	for _, as := range []string{"AS1239", "AS209", "AS7018"} {
		topo := topology.GenerateAS(as, 11)
		r := New(topo, nil)
		tables := routing.ComputeTables(topo)
		n := topo.G.NumNodes()
		cases := 0
		for cases < 150 {
			sc := failure.RandomScenario(topo, rng)
			src := graph.NodeID(rng.Intn(n))
			dst := graph.NodeID(rng.Intn(n))
			if src == dst {
				continue
			}
			outcome, initiator, _ := routing.TraceDefault(tables, routing.NewLocalView(topo, sc), src, dst)
			if outcome != routing.DefaultBlocked {
				continue
			}
			cases++
			sess, err := r.NewSession(routing.NewLocalView(topo, sc), initiator)
			if err != nil {
				t.Fatal(err)
			}
			_, trigger, _ := tables.NextHop(initiator, dst)
			col, err := sess.Collect(trigger)
			if errors.Is(err, ErrNoLiveNeighbor) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			total++
			if col.Truncated {
				truncated++
			}
			escapes += col.Escapes
		}
	}
	t.Logf("phase-1 walks: %d total, %d truncated (%.1f%%), %d escapes",
		total, truncated, 100*float64(truncated)/float64(total), escapes)
	if truncated*5 > total*4 {
		t.Errorf("nearly every walk truncates (%d of %d): the constrained walk is broken", truncated, total)
	}
}
