package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/routing"
)

// DeliverResult describes an end-to-end delivery attempt that may
// chain several recovery sessions (Section III-E: multiple failure
// areas).
type DeliverResult struct {
	Delivered bool
	// Initiators lists every recovery initiator invoked, in order.
	Initiators []graph.NodeID
	// TotalHops counts every link traversal: default forwarding,
	// phase-1 walks, and source-routed segments.
	TotalHops int
	// SPCalcs is the total number of shortest-path calculations across
	// all sessions.
	SPCalcs int
	// Reason describes why delivery failed, empty on success.
	Reason string
}

// maxChainedRecoveries bounds how many distinct initiators a single
// packet may trigger; each new initiator strictly grows the carried
// failure set, so the bound is defensive, not semantic.
const maxChainedRecoveries = 16

// Deliver attempts to deliver a packet from src to dst under the local
// view, chaining RTR recoveries across multiple failure areas: the
// packet first follows the converged tables; each blocked node becomes
// a recovery initiator, collects its area's failures, and re-routes
// with all failures carried in the packet header so the next initiator
// can prune them too.
func (r *RTR) Deliver(tables *routing.Tables, lv *routing.LocalView, src, dst graph.NodeID) (DeliverResult, error) {
	var res DeliverResult
	if !lv.NodeAlive(src) {
		res.Reason = "source down"
		return res, nil
	}
	if !lv.NodeAlive(dst) {
		// The source cannot know this; the failure surfaces as an
		// unreachable destination during recovery below. We still
		// simulate the attempt to account the spent effort.
		_ = dst
	}

	// Stage 1: default forwarding until blocked.
	outcome, initiator, hops := routing.TraceDefault(tables, lv, src, dst)
	res.TotalHops += hops
	switch outcome {
	case routing.DefaultDelivered:
		res.Delivered = true
		return res, nil
	case routing.DefaultSourceDown:
		res.Reason = "source down"
		return res, nil
	case routing.DefaultNoRoute:
		res.Reason = "no converged route"
		return res, nil
	}

	// Stage 2+: chained recoveries.
	var carried []graph.LinkID // failed links accumulated in the header
	cur := initiator
	for n := 0; n < maxChainedRecoveries; n++ {
		res.Initiators = append(res.Initiators, cur)
		sess, err := r.NewSession(lv, cur)
		if err != nil {
			return res, err
		}
		sess.SeedFailedLinks(carried)

		// The trigger is this node's (failed) default next hop.
		_, trigger, ok := tables.NextHop(cur, dst)
		if !ok || !lv.NeighborUnreachable(cur, trigger) {
			// Blocked mid-source-route rather than on the default
			// path: pick any unreachable link as sweeping line.
			un := lv.UnreachableLinks(cur)
			if len(un) == 0 {
				return res, fmt.Errorf("core: node %d blocked with no unreachable neighbor", cur)
			}
			trigger = un[0]
		}
		col, err := sess.Collect(trigger)
		if err != nil {
			res.Reason = err.Error()
			return res, nil
		}
		res.TotalHops += col.Walk.Hops()

		rt, ok := sess.RecoveryPath(dst)
		res.SPCalcs += sess.SPCalcs()
		if !ok {
			res.Reason = "destination unreachable in pruned view"
			return res, nil
		}
		fwd := sess.ForwardSourceRouted(rt)
		res.TotalHops += fwd.Walk.Hops()
		if fwd.Delivered {
			res.Delivered = true
			return res, nil
		}

		// The source route hit another failure area: the dropping node
		// becomes the next initiator, carrying all failures known so
		// far (collected + seeded + the initiator's own).
		carried = append([]graph.LinkID(nil), col.Header.FailedLinks...)
		carried = append(carried, sess.seeded...)
		carried = append(carried, lv.UnreachableLinks(cur)...)
		cur = fwd.DropAt
	}
	res.Reason = "recovery chain limit exceeded"
	return res, nil
}
