package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

func TestPaperRecoveryPath(t *testing.T) {
	topo, _, _, sess, trigger := paperWorld(t)
	if _, err := sess.Collect(trigger); err != nil {
		t.Fatal(err)
	}
	rt, ok := sess.RecoveryPath(topology.PaperNode(17))
	if !ok {
		t.Fatal("v17 must be recoverable from v6")
	}
	// The post-failure shortest path v6 -> v17 has 5 hops (e.g.
	// v6 v5 v12 v16 v15 v17); all 3- and 4-hop routes use failed links.
	if rt.Hops() != 5 {
		t.Errorf("recovery path %v has %d hops, want 5", rt.Nodes, rt.Hops())
	}
	if rt.Nodes[0] != topology.PaperNode(6) || rt.Nodes[len(rt.Nodes)-1] != topology.PaperNode(17) {
		t.Errorf("route endpoints wrong: %v", rt.Nodes)
	}

	// Theorem 2 on this instance: the length equals the true
	// post-failure shortest path length.
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	truth := spt.Compute(topo.G, topology.PaperNode(6), sc)
	want, reachable := truth.CostTo(topology.PaperNode(17))
	if !reachable || rt.Cost != want {
		t.Errorf("route cost = %v, ground-truth optimum = %v", rt.Cost, want)
	}

	// And forwarding it under the real failure delivers.
	fwd := sess.ForwardSourceRouted(rt)
	if !fwd.Delivered {
		t.Errorf("source-routed packet dropped at v%d", fwd.DropAt+1)
	}
	if fwd.Walk.Hops() != rt.Hops() {
		t.Errorf("walk hops = %d, want %d", fwd.Walk.Hops(), rt.Hops())
	}
	// Phase-2 packets carry the whole source route: 2 bytes per node.
	wantBytes := 2 * len(rt.Nodes)
	for _, rec := range fwd.Walk.Records {
		if rec.HeaderBytes != wantBytes {
			t.Errorf("phase-2 header bytes = %d, want %d", rec.HeaderBytes, wantBytes)
		}
	}
}

func TestSPCalcsOncePerSession(t *testing.T) {
	_, _, _, sess, trigger := paperWorld(t)
	if _, err := sess.Collect(trigger); err != nil {
		t.Fatal(err)
	}
	if sess.SPCalcs() != 0 {
		t.Error("collection alone must not compute shortest paths")
	}
	// Many destinations, one calculation: the recomputed tree is shared.
	for _, dst := range []int{17, 15, 16, 18, 13, 1} {
		if _, ok := sess.RecoveryPath(topology.PaperNode(dst)); !ok {
			t.Errorf("v%d must be recoverable from v6", dst)
		}
	}
	if sess.SPCalcs() != 1 {
		t.Errorf("SPCalcs = %d, want 1 (cached across destinations)", sess.SPCalcs())
	}
}

func TestRecoveryPathUnreachableDestination(t *testing.T) {
	// v10 is inside the failure area: no recovery path must exist, and
	// RTR identifies that with its single SP calculation.
	_, _, _, sess, trigger := paperWorld(t)
	if _, err := sess.Collect(trigger); err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.RecoveryPath(topology.PaperNode(10)); ok {
		t.Error("v10 failed; it must be unrecoverable")
	}
	if sess.SPCalcs() != 1 {
		t.Errorf("SPCalcs = %d, want 1 even for irrecoverable destinations", sess.SPCalcs())
	}
}

func TestSourceRouteHeader(t *testing.T) {
	_, _, _, sess, trigger := paperWorld(t)
	if _, err := sess.Collect(trigger); err != nil {
		t.Fatal(err)
	}
	rt, ok := sess.RecoveryPath(topology.PaperNode(17))
	if !ok {
		t.Fatal("need a route")
	}
	h := sess.SourceRouteHeader(rt)
	if h.Mode != routing.ModeSource {
		t.Errorf("mode = %v, want source", h.Mode)
	}
	if h.RecInit != sess.Initiator() {
		t.Error("rec_init must be the initiator")
	}
	if len(h.SourceRoute) != len(rt.Nodes) || h.SourceIdx != 0 {
		t.Errorf("source route = %v idx %d", h.SourceRoute, h.SourceIdx)
	}
	// The header must survive its own wire codec.
	b, err := h.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, n, err := routing.DecodeHeader(b); err != nil || n != len(b) {
		t.Errorf("encode/decode failed: %v (%d of %d bytes)", err, n, len(b))
	}
}

// TestTheorem3SingleLinkFailures: under ANY single link failure, every
// failed routing path with a reachable destination is recovered with
// the exact shortest recovery path. Exhaustive over all links and all
// source/destination pairs of the fixture.
func TestTheorem3SingleLinkFailures(t *testing.T) {
	topo := topology.PaperExample()
	r := New(topo, nil)
	tables := routing.ComputeTables(topo)
	n := topo.G.NumNodes()

	for li := 0; li < topo.G.NumLinks(); li++ {
		linkID := graph.LinkID(li)
		sc := failure.SingleLink(topo, linkID)
		lv := routing.NewLocalView(topo, sc)
		truth := make([]*spt.Tree, n) // lazily computed ground-truth SPTs

		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				s, d := graph.NodeID(src), graph.NodeID(dst)
				outcome, initiator, _ := routing.TraceDefault(tables, lv, s, d)
				if outcome != routing.DefaultBlocked {
					continue // path unaffected by this failure
				}
				sess, err := r.NewSession(lv, initiator)
				if err != nil {
					t.Fatal(err)
				}
				_, trigger, _ := tables.NextHop(initiator, d)
				rt, fwd, ok, err := sess.Recover(trigger, d)
				if err != nil {
					t.Fatalf("link %v, %d->%d: %v", topo.G.Link(linkID), src, dst, err)
				}

				if truth[initiator] == nil {
					truth[initiator] = spt.Compute(topo.G, initiator, sc)
				}
				optCost, reachable := truth[initiator].CostTo(d)
				if !reachable {
					if ok {
						t.Fatalf("link %v: RTR claims recovery to unreachable v%d", topo.G.Link(linkID), dst+1)
					}
					continue
				}
				if !ok {
					t.Fatalf("link %v, initiator %d, dst %d: Theorem 3 violated — no recovery", topo.G.Link(linkID), initiator, dst)
				}
				if !fwd.Delivered {
					t.Fatalf("link %v: recovery path contains a failure under single link failure", topo.G.Link(linkID))
				}
				if rt.Cost != optCost {
					t.Fatalf("link %v, initiator %d, dst %d: cost %v, optimal %v", topo.G.Link(linkID), initiator, dst, rt.Cost, optCost)
				}
			}
		}
	}
}

// TestTheorem1And2Random: over many random area failures on generated
// ISP topologies — (1) phase 1 always terminates (no budget
// exhaustion), (2) collected failures are a subset of true failures,
// (3) whenever the source-routed packet is delivered, the path cost
// equals the true post-failure optimum.
func TestTheorem1And2Random(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	for _, as := range []string{"AS1239", "AS209", "AS3549"} {
		topo := topology.GenerateAS(as, 77)
		r := New(topo, nil)
		tables := routing.ComputeTables(topo)
		n := topo.G.NumNodes()

		cases := 0
		for cases < 60 {
			sc := failure.RandomScenario(topo, rng)
			if !sc.HasFailures() {
				continue
			}
			lv := routing.NewLocalView(topo, sc)
			src := graph.NodeID(rng.Intn(n))
			dst := graph.NodeID(rng.Intn(n))
			if src == dst {
				continue
			}
			outcome, initiator, _ := routing.TraceDefault(tables, lv, src, dst)
			if outcome != routing.DefaultBlocked {
				continue
			}
			cases++
			sess, err := r.NewSession(lv, initiator)
			if err != nil {
				t.Fatal(err)
			}
			_, trigger, _ := tables.NextHop(initiator, dst)
			col, err := sess.Collect(trigger)
			if errors.Is(err, ErrNoLiveNeighbor) {
				continue // fully cut-off initiator: nothing to recover
			}
			if err != nil {
				t.Fatalf("%s: collect: %v", as, err) // Theorem 1: must terminate
			}
			for _, id := range col.Header.FailedLinks {
				if !sc.LinkDown(id) {
					t.Fatalf("%s: collected live link %v", as, topo.G.Link(id))
				}
			}
			rt, ok := sess.RecoveryPath(dst)
			if !ok {
				continue
			}
			fwd := sess.ForwardSourceRouted(rt)
			if !fwd.Delivered {
				continue // phase 1 missed a failure; counted as unrecovered
			}
			truth := spt.Compute(topo.G, initiator, sc)
			opt, reachable := truth.CostTo(dst)
			if !reachable {
				t.Fatalf("%s: delivered to unreachable destination", as)
			}
			if rt.Cost != opt {
				t.Fatalf("%s: Theorem 2 violated: delivered cost %v, optimum %v", as, rt.Cost, opt)
			}
		}
	}
}

func TestSeedFailedLinksInfluencesPath(t *testing.T) {
	topo, _, _, sess, trigger := paperWorld(t)
	if _, err := sess.Collect(trigger); err != nil {
		t.Fatal(err)
	}
	base, ok := sess.RecoveryPath(topology.PaperNode(17))
	if !ok {
		t.Fatal("need baseline route")
	}
	// Seed every link of the baseline route as failed: the session
	// must recompute and avoid them all.
	sess.SeedFailedLinks(base.Links)
	rt, ok := sess.RecoveryPath(topology.PaperNode(17))
	if !ok {
		// Still fine if now unreachable, but with this fixture a
		// longer detour exists.
		t.Fatal("detour must exist in the fixture")
	}
	for _, l := range rt.Links {
		for _, s := range base.Links {
			if l == s {
				t.Errorf("seeded failed link %v reused", topo.G.Link(l))
			}
		}
	}
	if rt.Hops() <= base.Hops() {
		t.Errorf("detour (%d hops) must be longer than baseline (%d hops)", rt.Hops(), base.Hops())
	}
}

func TestDeliverPaperExample(t *testing.T) {
	topo, r, lv, _, _ := paperWorld(t)
	tables := routing.ComputeTables(topo)
	res, err := r.Deliver(tables, lv, topology.PaperNode(7), topology.PaperNode(17))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("delivery failed: %s", res.Reason)
	}
	if len(res.Initiators) != 1 || res.Initiators[0] != topology.PaperNode(6) {
		t.Errorf("initiators = %v, want [v6]", res.Initiators)
	}
	// 1 default hop + 11 walk hops + 5 recovery hops.
	if res.TotalHops != 17 {
		t.Errorf("total hops = %d, want 17", res.TotalHops)
	}
	if res.SPCalcs != 1 {
		t.Errorf("SP calcs = %d, want 1", res.SPCalcs)
	}
}

func TestDeliverUnaffectedPath(t *testing.T) {
	topo, r, lv, _, _ := paperWorld(t)
	tables := routing.ComputeTables(topo)
	res, err := r.Deliver(tables, lv, topology.PaperNode(1), topology.PaperNode(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || len(res.Initiators) != 0 || res.SPCalcs != 0 {
		t.Errorf("unaffected path must deliver without recovery: %+v", res)
	}
}

func TestDeliverToFailedDestination(t *testing.T) {
	topo, r, lv, _, _ := paperWorld(t)
	tables := routing.ComputeTables(topo)
	res, err := r.Deliver(tables, lv, topology.PaperNode(5), topology.PaperNode(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Error("delivery to a failed node must fail")
	}
	if res.Reason == "" {
		t.Error("failure must carry a reason")
	}
}

func TestDeliverFromFailedSource(t *testing.T) {
	topo, r, lv, _, _ := paperWorld(t)
	tables := routing.ComputeTables(topo)
	res, err := r.Deliver(tables, lv, topology.PaperNode(10), topology.PaperNode(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered || res.Reason != "source down" {
		t.Errorf("res = %+v, want source down", res)
	}
}

// TestDeliverMultiArea: two disjoint failure areas on a generated
// topology; whenever Deliver succeeds the destination must truly be
// reachable, and chained recoveries must report every initiator.
func TestDeliverMultiArea(t *testing.T) {
	topo := topology.GenerateAS("AS3320", 5)
	r := New(topo, nil)
	tables := routing.ComputeTables(topo)
	rng := rand.New(rand.NewSource(9))

	delivered, chained := 0, 0
	for i := 0; i < 150; i++ {
		a1 := failure.RandomArea(rng, 100, 250)
		a2 := failure.RandomArea(rng, 100, 250)
		sc := failure.NewScenario(topo, a1, a2)
		lv := routing.NewLocalView(topo, sc)
		src := graph.NodeID(rng.Intn(topo.G.NumNodes()))
		dst := graph.NodeID(rng.Intn(topo.G.NumNodes()))
		if src == dst || sc.NodeDown(src) {
			continue
		}
		res, err := r.Deliver(tables, lv, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered {
			delivered++
			if !topo.G.Connected(src, dst, sc) {
				t.Fatal("delivered across a true partition")
			}
			if len(res.Initiators) > 1 {
				chained++
			}
		}
	}
	if delivered == 0 {
		t.Error("some deliveries must succeed across 150 two-area trials")
	}
	t.Logf("multi-area: %d delivered, %d via chained recoveries", delivered, chained)
}
