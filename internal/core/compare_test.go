package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/fcp"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

// TestRTRvsFCPShape checks the paper's central comparative claim on
// shared test cases: RTR's optimal recovery rate exceeds FCP's, and
// RTR uses exactly one shortest-path calculation versus several for
// FCP.
func TestRTRvsFCPShape(t *testing.T) {
	for _, as := range []string{"AS209", "AS1239", "AS3549", "AS7018"} {
		topo := topology.GenerateAS(as, 11)
		r := New(topo, nil)
		f := fcp.New(topo)
		tables := routing.ComputeTables(topo)
		rng := rand.New(rand.NewSource(1))
		n := topo.G.NumNodes()
		cases, rtrOpt, fcpOpt, fcpCalcs := 0, 0, 0, 0
		for cases < 400 {
			sc := failure.RandomScenario(topo, rng)
			lv := routing.NewLocalView(topo, sc)
			src := graph.NodeID(rng.Intn(n))
			dst := graph.NodeID(rng.Intn(n))
			if src == dst {
				continue
			}
			outcome, initiator, _ := routing.TraceDefault(tables, lv, src, dst)
			if outcome != routing.DefaultBlocked || !topo.G.Connected(initiator, dst, sc) {
				continue
			}
			cases++
			truth := spt.Compute(topo.G, initiator, sc)
			opt, _ := truth.CostTo(dst)

			sess, _ := r.NewSession(lv, initiator)
			_, trigger, _ := tables.NextHop(initiator, dst)
			rt, fwd, ok, err := sess.Recover(trigger, dst)
			if err != nil && !errors.Is(err, ErrNoLiveNeighbor) {
				t.Fatal(err)
			}
			if err == nil && ok && fwd.Delivered && rt.Cost == opt {
				rtrOpt++
			}

			fres, err := f.Recover(lv, initiator, dst)
			if err != nil {
				t.Fatal(err)
			}
			fcpCalcs += fres.SPCalcs
			if fres.Delivered && float64(fres.Walk.Hops()) == opt {
				fcpOpt++
			}
		}
		t.Logf("%s: RTR optimal %.1f%% | FCP optimal %.1f%% | FCP avg SP calcs %.2f",
			as, 100*float64(rtrOpt)/float64(cases), 100*float64(fcpOpt)/float64(cases),
			float64(fcpCalcs)/float64(cases))
	}
}
