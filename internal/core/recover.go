package core

import (
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spt"
)

// Route is a source route computed by phase 2.
type Route struct {
	// Nodes is the node sequence, initiator first, destination last.
	Nodes []graph.NodeID
	// Links are the traversed links in travel order.
	Links []graph.LinkID
	// Cost is the path cost in the initiator's pruned view. By
	// Theorem 2 this equals the true post-failure shortest path cost
	// whenever the route is failure-free.
	Cost float64
}

// Hops returns the number of links on the route.
func (rt Route) Hops() int { return len(rt.Links) }

// prunedView builds the initiator's post-collection topology view:
// the pre-failure graph minus the collected failed links, minus the
// initiator's own links to unreachable neighbors, minus any failures
// seeded from the packet header. Only links are pruned — the initiator
// cannot tell failed nodes from failed links.
func (s *Session) prunedView() *graph.Mask {
	if s.pruned != nil {
		return s.pruned
	}
	m := graph.NewMask(s.r.topo.G)
	if s.collected != nil {
		for _, id := range s.collected.Header.FailedLinks {
			m.FailLink(id)
		}
	}
	for _, id := range s.lv.UnreachableLinks(s.initiator) {
		m.FailLink(id)
	}
	for _, id := range s.seeded {
		m.FailLink(id)
	}
	s.pruned = m
	return m
}

// recoveryTree returns the initiator's shortest path tree over the
// pruned view, computing it on first use via incremental
// recomputation from the cached pre-failure SPT (Narvaez-style, as the
// paper prescribes for phase 2). One tree serves every destination;
// this is the session's single shortest-path calculation.
func (s *Session) recoveryTree() *spt.Tree {
	if s.tree == nil {
		base := s.r.cleanTree(s.initiator)
		s.tree = spt.Recompute(s.r.topo.G, base, graph.Nothing, s.prunedView())
		s.spCalcs++
	}
	return s.tree
}

// Prepare finishes every lazily built piece of the session after
// collection: the pruned view, and — engine-dependent — the recovery
// tree (default engine) or the shortest-path-calculation charge (goal
// engines, which count their first query as the session's one
// calculation). After Prepare returns, RecoveryPathInto and
// ForwardSourceRouted perform no further session mutation, so a warmed
// session may serve any number of goroutines concurrently — the
// serving layer memoizes one prepared session per (failure entry,
// initiator, trigger) and shares it across queries. SPCalcs reports
// the same value as an unprepared session would after its first
// destination, so outcomes stay bit-identical.
func (s *Session) Prepare() {
	if s.r.phase2 != spt.EngineDijkstra {
		if s.spCalcs == 0 {
			s.spCalcs = 1
		}
		s.prunedView()
		return
	}
	s.recoveryTree()
}

// RecoveryPath returns the shortest recovery path from the initiator
// to dst in the initiator's pruned view. ok is false when dst is
// unreachable in that view — RTR then discards packets for dst
// immediately, the paper's early-discard behavior for irrecoverable
// destinations.
func (s *Session) RecoveryPath(dst graph.NodeID) (Route, bool) {
	var rt Route
	if !s.RecoveryPathInto(&rt, dst) {
		return Route{}, false
	}
	return rt, true
}

// RecoveryPathInto is RecoveryPath writing into rt, reusing its backing
// arrays: the batched runners extract one route per destination from
// the shared session without allocating per case. On false (dst
// unreachable in the pruned view) rt is reset to an empty route but
// keeps its capacity.
func (s *Session) RecoveryPathInto(rt *Route, dst graph.NodeID) bool {
	if s.r.phase2 != spt.EngineDijkstra {
		return s.recoveryPathGoal(rt, dst)
	}
	t := s.recoveryTree()
	nodes, ok := t.AppendPathNodes(rt.Nodes[:0], dst)
	rt.Nodes = nodes
	rt.Links = rt.Links[:0]
	rt.Cost = 0
	if !ok {
		return false
	}
	rt.Links, _ = t.AppendPathLinks(rt.Links, dst)
	rt.Cost, _ = t.CostTo(dst)
	return true
}

// recoveryPathGoal serves one destination with a goal-directed A*
// query over the pruned view instead of the session tree. The route is
// bit-identical to the tree extraction (spt.ComputeGoal reproduces the
// canonical forward-tree tie-break), so every downstream output —
// forwarding walks, costs, invariant checks — is engine-invariant.
//
// SPCalcs stays the paper's metric: the paper counts one shortest-path
// calculation per session ("the recovery initiator needs to calculate
// the shortest path only once"), and the goal engines do strictly less
// work than that one calculation, so the first query charges 1 and
// further queries charge nothing. Outputs therefore match the default
// engine exactly.
func (s *Session) recoveryPathGoal(rt *Route, dst graph.NodeID) bool {
	if s.spCalcs == 0 {
		s.spCalcs = 1
	}
	view := s.prunedView()
	ws := spt.GetWorkspace()
	defer ws.Release()
	res := spt.GoalResult{Nodes: rt.Nodes[:0], Links: rt.Links[:0]}
	ok := ws.ComputeGoal(&res, s.r.topo.G, s.initiator, dst, view, s.r.heur)
	rt.Nodes, rt.Links = res.Nodes, res.Links
	rt.Cost = 0
	if !ok {
		return false
	}
	rt.Cost = res.Cost
	return true
}

// avoidLinks is a Denied overlay removing only the listed links (the
// candidate-generation sets are a handful of links, so a linear scan
// beats a map).
type avoidLinks []graph.LinkID

func (avoidLinks) NodeDown(graph.NodeID) bool { return false }

func (a avoidLinks) LinkDown(id graph.LinkID) bool {
	for _, x := range a {
		if x == id {
			return true
		}
	}
	return false
}

// RecoveryPathAvoidingInto computes the shortest path to dst in the
// session's pruned view with the avoid links additionally removed,
// writing into rt like RecoveryPathInto. Congestion-aware schemes use
// it to generate alternative recovery candidates around the primary
// path. Each call is one full shortest-path computation over the
// overlaid view and is charged to SPCalcs accordingly — unlike a
// prepared session's RecoveryPathInto it mutates the session, so
// callers own the session exclusively (the usual Session contract).
func (s *Session) RecoveryPathAvoidingInto(rt *Route, dst graph.NodeID, avoid []graph.LinkID) bool {
	view := graph.Union{X: s.prunedView(), Y: avoidLinks(avoid)}
	ws := spt.GetWorkspace()
	defer ws.Release()
	t := ws.Compute(s.r.topo.G, s.initiator, view)
	s.spCalcs++
	rt.Nodes, _ = t.AppendPathNodes(rt.Nodes[:0], dst)
	rt.Links = rt.Links[:0]
	rt.Cost = 0
	if len(rt.Nodes) == 0 {
		return false
	}
	rt.Links, _ = t.AppendPathLinks(rt.Links, dst)
	rt.Cost, _ = t.CostTo(dst)
	return true
}

// SourceRouteHeader builds the phase-2 packet header carrying rt as a
// source route.
func (s *Session) SourceRouteHeader(rt Route) routing.Header {
	return routing.Header{
		Mode:        routing.ModeSource,
		RecInit:     s.initiator,
		SourceRoute: append([]graph.NodeID(nil), rt.Nodes...),
		SourceIdx:   0,
	}
}

// ForwardResult is the outcome of source-routing a packet along a
// recovery path under the real (ground-truth) failure.
type ForwardResult struct {
	Delivered bool
	// DropAt is the node that discarded the packet when its source
	// route's next link turned out to be failed (phase 1 missed it).
	// Only meaningful when !Delivered.
	DropAt graph.NodeID
	// DropLink is the failed link that stopped the packet.
	DropLink graph.LinkID
	// Walk is the packet trajectory, with per-hop header bytes (the
	// full source route stays in the header the whole way).
	Walk routing.Walk
}

// ForwardSourceRouted simulates phase-2 forwarding of a packet along
// rt. Each node checks only local reachability, exactly like a real
// router executing a source route: if the next hop is unreachable the
// packet is discarded (the paper: "the recovery path possibly contains
// a failure. In that case, RTR simply discards the packet").
func (s *Session) ForwardSourceRouted(rt Route) ForwardResult {
	var res ForwardResult
	// The ModeSource header records exactly the source route (16 bits
	// per entry); building the actual header here would allocate a copy
	// of rt.Nodes just to take its length.
	bytes := 2 * len(rt.Nodes)
	res.Walk.Reserve(len(rt.Links))
	for i := 0; i+1 < len(rt.Nodes); i++ {
		v, w := rt.Nodes[i], rt.Nodes[i+1]
		link := rt.Links[i]
		if s.lv.NeighborUnreachable(v, link) {
			res.DropAt = v
			res.DropLink = link
			return res
		}
		res.Walk.Append(routing.HopRecord{From: v, To: w, Link: link, HeaderBytes: bytes})
	}
	res.Delivered = true
	return res
}

// Recover is the end-to-end convenience: run phase 1 (once), compute
// the recovery path for dst, and simulate phase-2 forwarding. ok is
// false when the initiator's view has no path to dst (early discard).
func (s *Session) Recover(trigger graph.LinkID, dst graph.NodeID) (Route, ForwardResult, bool, error) {
	if _, err := s.Collect(trigger); err != nil {
		return Route{}, ForwardResult{}, false, err
	}
	rt, ok := s.RecoveryPath(dst)
	if !ok {
		return Route{}, ForwardResult{}, false, nil
	}
	return rt, s.ForwardSourceRouted(rt), true, nil
}
