package core

import (
	"repro/internal/geom"
	"repro/internal/graph"
)

// EstimateArea estimates the failure region from everything the
// session knows: the collected failed links plus the initiator's own
// unreachable links. Every known-failed link is cut by the failure
// area somewhere along its segment; the estimator samples each
// segment's midpoint and returns the smallest disk enclosing the
// samples (Welzl), in the spirit of the authors' companion work on
// localizing large-scale failures with probes [16].
//
// The estimate is diagnostic: RTR's recovery itself never prunes by
// geometry (doing so could remove live links and break the Theorem 2
// optimality guarantee). ok is false when the session knows no failed
// links yet.
func (s *Session) EstimateArea() (geom.Disk, bool) {
	known := make(map[graph.LinkID]bool)
	if s.collected != nil {
		for _, id := range s.collected.Header.FailedLinks {
			known[id] = true
		}
	}
	for _, id := range s.lv.UnreachableLinks(s.initiator) {
		known[id] = true
	}
	for _, id := range s.seeded {
		known[id] = true
	}
	if len(known) == 0 {
		return geom.Disk{}, false
	}
	pts := make([]geom.Point, 0, len(known))
	for id := range known {
		pts = append(pts, s.r.topo.LinkSegment(id).Midpoint())
	}
	return geom.SmallestEnclosingDisk(pts), true
}
