// Package core implements RTR — Reactive Two-phase Rerouting — the
// paper's primary contribution. RTR recovers failed intra-domain
// routing paths during IGP convergence:
//
//   - Phase 1 (collect.go) forwards a packet around the failure area
//     with a counterclockwise-sweep right-hand rule, constrained so
//     the walk works on general (non-planar) graphs, while routers
//     adjacent to the failure record their failed links in the packet
//     header.
//   - Phase 2 (recover.go) prunes the collected failures from the
//     initiator's view of the topology, incrementally recomputes the
//     shortest path tree, and source-routes packets along the new
//     shortest paths.
//
// The package never touches ground truth directly: all failure
// information flows through routing.LocalView (what a real router can
// observe) and the packet header (what the protocol carries).
package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

// RTR is a recovery engine bound to one topology. It holds everything
// the paper assumes every router already has: the pre-failure
// topology, the coordinates of all nodes (via the topology), the
// precomputed cross-link index, and the converged shortest path trees.
// An RTR value is safe for concurrent use.
type RTR struct {
	topo *topology.Topology
	ci   *topology.CrossIndex
	// paperTermination makes phase 1 terminate exactly as the paper
	// specifies (initiator re-selects the first hop), without the
	// enclosure verification; see WithPaperTermination.
	paperTermination bool
	// phase2 selects the route engine behind RecoveryPath; heur is the
	// admissible heuristic backing the goal-directed engines (nil for
	// the default full-tree engine). See WithPhase2.
	phase2 spt.Engine
	heur   spt.Heuristic

	// Lazily cached pre-failure forward SPT per node. Each entry is
	// guarded by its own sync.Once so concurrent sessions warm up
	// different roots in parallel — a single engine-wide mutex here
	// used to serialize every RunAll worker behind full Dijkstra runs.
	cleanOnce []sync.Once
	clean     []*spt.Tree
}

// Option configures an RTR engine.
type Option func(*RTR)

// WithPaperTermination disables the winding-angle enclosure check and
// terminates phase 1 exactly as the paper's Rule 3 states: the first
// time the initiator's sweep re-selects the first hop. Early-closing
// cycles then go undetected; the option exists for the ablation
// experiments that quantify what the verification buys.
func WithPaperTermination() Option {
	return func(r *RTR) { r.paperTermination = true }
}

// WithPhase2 selects the phase-2 route engine. The default
// (spt.EngineDijkstra) computes one incremental shortest path tree per
// session and serves every destination from it; the goal-directed
// engines (spt.EngineAStar, spt.EngineALT) answer each destination
// with an A* query over the pruned view that settles only a corridor
// of nodes around the shortest path. All engines produce bit-identical
// routes (spt.ComputeGoal's canonical-path guarantee); they trade
// where the work goes — per-session tree builds versus per-destination
// queries — which is what the single-pair latency benchmarks measure.
func WithPhase2(e spt.Engine) Option {
	return func(r *RTR) { r.phase2 = e }
}

// New creates an RTR engine for topo. The cross-link index may be
// shared with other consumers; if nil it is built here.
func New(topo *topology.Topology, ci *topology.CrossIndex, opts ...Option) *RTR {
	if ci == nil {
		ci = topology.BuildCrossIndex(topo)
	}
	r := &RTR{
		topo:      topo,
		ci:        ci,
		cleanOnce: make([]sync.Once, topo.G.NumNodes()),
		clean:     make([]*spt.Tree, topo.G.NumNodes()),
	}
	for _, o := range opts {
		o(r)
	}
	switch r.phase2 {
	case spt.EngineAStar:
		r.heur = spt.NewGeomHeuristic(topo.G, topo.Coords)
	case spt.EngineALT:
		// Landmark distance vectors reuse the engine's clean-tree
		// cache: the forward SPTs NewALT pulls are exactly the ones
		// phase 2 warm-starts from later.
		r.heur = spt.NewALT(topo.G, 0, r.cleanTree)
	}
	return r
}

// Phase2 returns the configured phase-2 route engine.
func (r *RTR) Phase2() spt.Engine { return r.phase2 }

// Heuristic returns the admissible heuristic backing the goal-directed
// engines, or nil for the default engine. It is shared read-only state
// (FCP and MRC reuse it when running under the same engine selector).
func (r *RTR) Heuristic() spt.Heuristic { return r.heur }

// Topology returns the engine's topology.
func (r *RTR) Topology() *topology.Topology { return r.topo }

// CrossIndex returns the engine's cross-link index.
func (r *RTR) CrossIndex() *topology.CrossIndex { return r.ci }

// cleanTree returns the cached pre-failure forward shortest path tree
// rooted at v — the SPT every link-state router maintains anyway, which
// phase 2's incremental recomputation starts from.
func (r *RTR) cleanTree(v graph.NodeID) *spt.Tree {
	r.cleanOnce[v].Do(func() {
		r.clean[v] = spt.Compute(r.topo.G, v, graph.Nothing)
	})
	return r.clean[v]
}

// CleanTree returns the cached pre-failure forward shortest path tree
// rooted at v. The tree is shared: callers must treat it as read-only.
// The experiment harness uses it to warm-start post-failure truth
// trees via the delete-only incremental recompute, sharing one cache
// with phase 2's recovery sessions.
func (r *RTR) CleanTree(v graph.NodeID) *spt.Tree { return r.cleanTree(v) }

// Errors returned by the recovery engine.
var (
	// ErrInitiatorDown is returned when a session is requested at a
	// failed router.
	ErrInitiatorDown = errors.New("core: recovery initiator is down")
	// ErrNoLiveNeighbor is returned when the initiator has no live
	// neighbor at all, so neither collection nor recovery is possible.
	ErrNoLiveNeighbor = errors.New("core: recovery initiator has no live neighbor")
	// ErrNotUnreachable is returned when the trigger link's far end is
	// in fact reachable — RTR is only invoked for failed next hops.
	ErrNotUnreachable = errors.New("core: trigger next hop is reachable")
	// ErrTriggerMismatch is returned when Collect is called with a
	// different trigger link than the session's first collection. The
	// cached walk is specific to the trigger (it seeds the sweep), so
	// silently returning it for another trigger would hand the caller a
	// walk that never happened; sessions are per-(initiator, trigger).
	ErrTriggerMismatch = errors.New("core: session already collected with a different trigger link")
)

// Session is one recovery initiator's RTR state for one failure event:
// the collected failure information and the recomputed shortest path
// tree, shared across all destinations the initiator must recover (the
// paper: "the first phase ... can benefit all destinations" and
// "caching the recovery paths, the recovery initiator needs to
// calculate the shortest path only once for each destination").
// A Session is single-owner state and is not safe for concurrent use;
// the RTR engine it comes from is.
type Session struct {
	r         *RTR
	lv        *routing.LocalView
	initiator graph.NodeID

	collected *CollectResult
	trigger   graph.LinkID   // the link Collect first ran with (valid iff collected != nil)
	seeded    []graph.LinkID // failures carried in by the packet (multi-area)

	pruned  *graph.Mask // initiator's view: collected + own + seeded failures
	tree    *spt.Tree   // forward SPT from initiator over the pruned view
	spCalcs int
}

// NewSession opens a recovery session at initiator under the local
// view lv.
func (r *RTR) NewSession(lv *routing.LocalView, initiator graph.NodeID) (*Session, error) {
	if !lv.NodeAlive(initiator) {
		return nil, fmt.Errorf("%w: node %d", ErrInitiatorDown, initiator)
	}
	return &Session{r: r, lv: lv, initiator: initiator}, nil
}

// Initiator returns the session's recovery initiator.
func (s *Session) Initiator() graph.NodeID { return s.initiator }

// SPCalcs returns the number of shortest-path calculations the session
// has performed — the paper's computational-overhead metric.
func (s *Session) SPCalcs() int { return s.spCalcs }

// Collected returns the phase-1 result, or nil before collection.
func (s *Session) Collected() *CollectResult { return s.collected }

// SeedFailedLinks injects failures already known from the packet
// header (the multi-area case of Section III-E: a packet that bypassed
// failure area F1 carries F1's failed links, and the next initiator
// removes them too). Must be called before RecoveryPath.
func (s *Session) SeedFailedLinks(ids []graph.LinkID) {
	s.seeded = append(s.seeded, ids...)
	s.pruned = nil // invalidate any previously built view
	s.tree = nil
}
