package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/routing"
)

// CollectResult is the outcome of RTR's first phase.
type CollectResult struct {
	// Header is the packet header after the walk: failed_link holds
	// the collected failures, cross_link the constraint entries.
	Header routing.Header
	// Walk is the hop-by-hop trajectory around the failure area.
	Walk routing.Walk
	// FirstHop is the neighbor the initiator first forwarded to.
	FirstHop graph.NodeID
	// Constrained records whether Constraints 1 and 2 were enforced
	// (they always are in normal operation; the unconstrained variant
	// exists to demonstrate the Fig. 4 forwarding disorder).
	Constrained bool
	// Enclosed reports whether the walk's winding angle confirms the
	// cycle actually wound around the failure (always true when it
	// did; false for failure areas on the network border, which cannot
	// be enclosed, and for walks that exhausted their exploration).
	Enclosed bool
	// Escapes counts the times the walk deviated from the paper's
	// deterministic sweep to avoid re-traversing a directed edge. The
	// paper's Theorem 1 argues permanent loops cannot occur, but its
	// proof only shows a return path exists — the deterministic rule
	// does not always follow it: a Constraint-2 insertion can exclude
	// the one link leading back to the initiator after the walk
	// already passed it (see DESIGN.md).
	Escapes int
	// Truncated reports that the walk ran out of fresh directed edges,
	// hop budget, or productivity away from home and retraced itself
	// back to the initiator, so the collected information still
	// arrives; the return at most doubles the walk.
	Truncated bool
	// FieldSizes[i] holds the number of failed_link and cross_link
	// entries carried on Walk.Records[i] — since both fields are
	// append-only, Header.FailedLinks[:Failed] and
	// Header.CrossLinks[:Cross] reproduce the exact per-hop contents
	// (Table I's rows).
	FieldSizes []FieldSizes
}

// FieldSizes is a per-hop snapshot of the header's list lengths.
type FieldSizes struct {
	Failed, Cross int
}

// Duration returns the first-phase duration under the paper's delay
// model (Fig. 7's metric).
func (c *CollectResult) Duration() int64 {
	return int64(c.Walk.Duration())
}

// Collect runs phase 1 from the session's initiator. trigger is the
// initiator's link toward the unreachable default next hop that
// invoked RTR (the sweeping line of the first-hop selection). The
// result is cached: repeated calls with the same trigger return the
// first walk, because the first phase "needs to run only once at a
// recovery initiator and can benefit all destinations". A different
// trigger is rejected with ErrTriggerMismatch — the cached walk is
// trigger-specific, and a session serves one (initiator, trigger) pair.
func (s *Session) Collect(trigger graph.LinkID) (*CollectResult, error) {
	if s.collected != nil {
		if trigger != s.trigger {
			return nil, fmt.Errorf("%w: collected with %v, asked for %v",
				ErrTriggerMismatch, s.r.topo.G.Link(s.trigger), s.r.topo.G.Link(trigger))
		}
		return s.collected, nil
	}
	res, err := s.r.collect(s.lv, s.initiator, trigger, true)
	if err != nil {
		return nil, err
	}
	s.collected = res
	s.trigger = trigger
	s.pruned = nil
	s.tree = nil
	return res, nil
}

// CollectUnconstrained runs the plain right-hand rule with Constraints
// 1 and 2 disabled. It exists to reproduce the paper's Fig. 4
// demonstration that the unconstrained rule fails to enclose the
// failure area on general graphs; it is never used for recovery.
func (r *RTR) CollectUnconstrained(lv *routing.LocalView, initiator graph.NodeID, trigger graph.LinkID) (*CollectResult, error) {
	return r.collect(lv, initiator, trigger, false)
}

// hopBudget bounds the phase-1 walk; exceeding it triggers the
// truncation return, standing in for a packet TTL. A cycle around the
// failure area visits at most every node once, with tree branches
// traversed twice (the paper's AS7018 observation), so twice the node
// count is a generous perimeter bound — anything beyond it is
// unproductive wandering that only inflates the first-phase duration.
func (r *RTR) hopBudget() int {
	return 2*r.topo.G.NumNodes() + 8
}

// dirEdge is a directed link traversal; the walk never repeats one
// (revisiting a directed edge with the deterministic rule proves a
// permanent cycle).
type dirEdge struct {
	link graph.LinkID
	to   graph.NodeID
}

// sweepCand is one admissible neighbor with its sweep-order keys.
type sweepCand struct {
	he    graph.Halfedge
	angle float64
	dist2 float64
}

// collectScratch holds the buffers one phase-1 walk reuses across hops:
// the candidate scoring and sweep-output slices of sweepCandidates and
// the walked directed-edge set. Pooling them makes the per-hop cost of
// a walk allocation-free (the sweep runs at every hop, so without this
// it dominates the simulator's allocation profile).
type collectScratch struct {
	cands []sweepCand
	out   []graph.Halfedge
	seen  map[dirEdge]bool
}

var collectScratchPool = sync.Pool{
	New: func() any { return &collectScratch{seen: make(map[dirEdge]bool, 64)} },
}

func getCollectScratch() *collectScratch {
	cs := collectScratchPool.Get().(*collectScratch)
	clear(cs.seen)
	return cs
}

// winding accumulates the signed angle the walk subtends at probe
// points placed on the initiator's failed links. A cycle that encloses
// the failure area winds ±2π around them; a cycle that closed early
// winds ~0. Conceptually this is one small fixed-size header field
// updated from purely local information at each hop (an RTR+ extension
// over the paper; see DESIGN.md).
type winding struct {
	probes []geom.Point
	sums   []float64
}

func (w *winding) add(a, b geom.Point) {
	for i, p := range w.probes {
		u := a.Sub(p)
		v := b.Sub(p)
		if u.Norm() < geom.Eps || v.Norm() < geom.Eps {
			continue // hop touches the probe; contributes nothing
		}
		w.sums[i] += math.Atan2(u.Cross(v), u.Dot(v))
	}
}

// enclosed reports whether the walk wound around any probe.
func (w *winding) enclosed() bool {
	for _, s := range w.sums {
		if math.Abs(s) >= 1.5*math.Pi {
			return true
		}
	}
	return false
}

func (r *RTR) collect(lv *routing.LocalView, initiator graph.NodeID, trigger graph.LinkID, constrained bool) (*CollectResult, error) {
	g := r.topo.G
	if !lv.NodeAlive(initiator) {
		return nil, fmt.Errorf("%w: node %d", ErrInitiatorDown, initiator)
	}
	if !g.Link(trigger).HasEndpoint(initiator) {
		return nil, fmt.Errorf("core: trigger link %v is not incident to initiator %d", g.Link(trigger), initiator)
	}
	if !lv.NeighborUnreachable(initiator, trigger) {
		return nil, fmt.Errorf("%w: link %v", ErrNotUnreachable, g.Link(trigger))
	}

	res := &CollectResult{Constrained: constrained}
	h := &res.Header
	h.Mode = routing.ModeCollect
	h.RecInit = initiator
	// Typical failure perimeters are tens of hops; one up-front
	// reservation replaces the doubling chain of per-hop appends.
	res.Walk.Reserve(32)
	res.FieldSizes = make([]FieldSizes, 0, 32)

	// Winding probes: one per unreachable link of the initiator, at
	// the link's midpoint. The failure area intersects each such link,
	// and Constraint 1 keeps the walk from crossing them, so the whole
	// segment — midpoint and the cut part alike — stays in a single
	// face of the walk polygon: winding around the midpoint equals
	// winding around the failure area itself.
	wind := &winding{}
	for _, id := range lv.UnreachableLinks(initiator) {
		wind.probes = append(wind.probes, r.topo.LinkSegment(id).Midpoint())
	}
	wind.sums = make([]float64, len(wind.probes))

	if constrained {
		// Constraint 1: the walk must not cross the links between the
		// initiator and its unreachable neighbors. The initiator seeds
		// cross_link with each such link that crosses anything.
		for _, id := range lv.UnreachableLinks(initiator) {
			if len(r.ci.Crossing(id)) > 0 {
				h.RecordCrossLink(id)
			}
		}
	}

	cs := getCollectScratch()
	defer collectScratchPool.Put(cs)
	seen := cs.seen
	forward := func(from graph.NodeID, he graph.Halfedge) {
		r.protect(h, he.Link, constrained)
		seen[dirEdge{he.Link, he.Neighbor}] = true
		wind.add(r.topo.Coord(from), r.topo.Coord(he.Neighbor))
		res.Walk.Append(routing.HopRecord{From: from, To: he.Neighbor, Link: he.Link, HeaderBytes: h.RecordingBytes()})
		res.FieldSizes = append(res.FieldSizes, FieldSizes{Failed: len(h.FailedLinks), Cross: len(h.CrossLinks)})
	}

	cands := r.sweepCandidates(cs, lv, initiator, trigger, h, constrained, false)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: node %d", ErrNoLiveNeighbor, initiator)
	}
	first := cands[0]
	res.FirstHop = first.Neighbor
	forward(initiator, first)

	budget := r.hopBudget()
	// Productivity cutoff: a walk that has recorded nothing new for a
	// full node-count's worth of hops is circling live regions, not
	// the failure perimeter; send it home instead of burning delay
	// (implementable as a hops-since-last-record counter in the
	// header).
	stale := g.NumNodes()
	lastProgress := 0
	lastSize := len(h.FailedLinks) + len(h.CrossLinks)
	cur := first.Neighbor
	in := first // halfedge we arrived over, viewed from the previous node

	for res.Walk.Hops() < budget {
		if size := len(h.FailedLinks) + len(h.CrossLinks); size > lastSize {
			lastSize = size
			lastProgress = res.Walk.Hops()
		}
		if res.Walk.Hops()-lastProgress > stale && cur != initiator {
			r.returnToInitiator(res, cur)
			res.Enclosed = wind.enclosed()
			return res, nil
		}
		if cur == initiator {
			// Rule 3: the initiator selects a next hop from the
			// incoming link; if the sweep selects the first hop again
			// the cycle is closed. The paper terminates there; the
			// enclosure-verified mode additionally requires the cycle
			// to have wound around the failure, otherwise it keeps
			// exploring (the early-closing cycle demonstrably missed
			// the area). Either way, running out of fresh directed
			// edges at home ends the phase.
			cands := r.sweepCandidates(cs, lv, cur, in.Link, h, constrained, true)
			if len(cands) == 0 {
				return nil, fmt.Errorf("core: initiator %d cannot select a continuation hop", initiator)
			}
			closed := cands[0].Neighbor == res.FirstHop
			if closed && (r.paperTermination || wind.enclosed()) {
				res.Enclosed = wind.enclosed()
				return res, nil
			}
			next, fresh := pickFresh(cands, seen, res)
			if !fresh {
				res.Enclosed = wind.enclosed()
				return res, nil // home, nothing new to explore
			}
			forward(cur, next)
			in = next
			cur = next.Neighbor
			continue
		}

		// Rule 2: record this node's failed links, except those whose
		// far end is the initiator (the initiator already knows them).
		recordUnreachable(lv, g, cur, h)

		cands := r.sweepCandidates(cs, lv, cur, in.Link, h, constrained, true)
		if len(cands) == 0 {
			// Cannot happen: the link we arrived over is always a
			// valid candidate (allowIncoming keeps it admissible).
			return nil, fmt.Errorf("core: node %d has no admissible next hop", cur)
		}
		next, fresh := pickFresh(cands, seen, res)
		if !fresh {
			// All candidates lead onto already-walked directed edges:
			// TTL stand-in, send the packet home.
			r.returnToInitiator(res, cur)
			res.Enclosed = wind.enclosed()
			return res, nil
		}
		forward(cur, next)
		in = next
		cur = next.Neighbor
	}

	// Hop budget exhausted (TTL expiry): send the packet home.
	r.returnToInitiator(res, cur)
	res.Enclosed = wind.enclosed()
	return res, nil
}

// recordUnreachable applies the paper's Rule 2 recording at node v. It
// scans the adjacency directly (same order as lv.UnreachableLinks)
// rather than materialising the link slice — this runs at every hop.
func recordUnreachable(lv *routing.LocalView, g *graph.Graph, v graph.NodeID, h *routing.Header) {
	for _, he := range g.Adj(v) {
		if !lv.NeighborUnreachable(v, he.Link) {
			continue
		}
		if he.Neighbor == h.RecInit {
			continue
		}
		h.RecordFailedLink(he.Link)
	}
}

// pickFresh returns the first candidate (in sweep order) whose
// directed edge has not been walked; fresh=false returns the sweep's
// first choice. Skipping candidates is counted as escapes.
func pickFresh(cands []graph.Halfedge, seen map[dirEdge]bool, res *CollectResult) (graph.Halfedge, bool) {
	for i, c := range cands {
		if !seen[dirEdge{c.Link, c.Neighbor}] {
			res.Escapes += i
			return c, true
		}
	}
	return cands[0], false
}

// protect applies the Constraint 2 insertion rule to the selected
// link: if some link crossing it is not yet excluded by cross_link,
// the selected link joins cross_link so the walk cannot cross itself
// here later.
func (r *RTR) protect(h *routing.Header, sel graph.LinkID, constrained bool) {
	if constrained && r.wouldProtect(h, sel) {
		h.RecordCrossLink(sel)
	}
}

func (r *RTR) wouldProtect(h *routing.Header, sel graph.LinkID) bool {
	for _, x := range r.ci.Crossing(sel) {
		if !r.ci.CrossesAny(x, h.CrossLinks) {
			return true
		}
	}
	return false
}

// sweepCandidates implements the right-hand rule of Section III-B/C:
// at node v, take link ref (the incoming link, or the link toward the
// unreachable default next hop for the initiator's first selection) as
// the sweeping line and rotate it counterclockwise; live neighbors
// whose links are not excluded by cross_link are returned in sweep
// order. The reference link itself sorts last (a full turn). Two
// admissibility amendments keep the walk able to finish (see
// DESIGN.md): the incoming link stays admissible even if excluded
// (allowIncoming — the walk can always backtrack), and live links
// incident to the recovery initiator are never excluded — they are
// where the walk must terminate, and every node can check incidence
// locally from rec_init in the header.
// The returned slice is backed by cs and valid until the next call.
func (r *RTR) sweepCandidates(cs *collectScratch, lv *routing.LocalView, v graph.NodeID, ref graph.LinkID, h *routing.Header, constrained, allowIncoming bool) []graph.Halfedge {
	g := r.topo.G
	refOther := g.Link(ref).Other(v)
	origin := r.topo.Coord(v)
	base := r.topo.Coord(refOther).Sub(origin)

	cands := cs.cands[:0]
	for _, he := range g.Adj(v) {
		if lv.NeighborUnreachable(v, he.Link) {
			continue
		}
		if constrained && r.ci.CrossesAny(he.Link, h.CrossLinks) {
			homeLink := g.Link(he.Link).HasEndpoint(h.RecInit)
			if !homeLink && !(allowIncoming && he.Link == ref) {
				continue
			}
		}
		pos := r.topo.Coord(he.Neighbor)
		cands = append(cands, sweepCand{he, geom.CCWAngle(base, pos.Sub(origin)), origin.Dist2(pos)})
	}
	// Same ordering as geom.SweepOrder: by CCW angle, collinear
	// candidates nearer-first. Candidate lists are node-degree-sized,
	// so insertion sort wins over sort.Slice and allocates nothing.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := &cands[j-1], &cands[j]
			if b.angle < a.angle || (b.angle == a.angle && b.dist2 < a.dist2) {
				cands[j-1], cands[j] = cands[j], cands[j-1]
			} else {
				break
			}
		}
	}
	cs.cands = cands
	out := cs.out[:0]
	for _, c := range cands {
		out = append(out, c.he)
	}
	cs.out = out
	return out
}

// returnToInitiator handles a truncated walk: the packet retraces the
// walk backwards to the recovery initiator. Every reversed link was
// just traversed, so the return is guaranteed to succeed; routers only
// need one soft-state entry (previous hop of the active collection
// packet, keyed by rec_init) — the same class of transient state as
// the paper's recovery-path caches. The return at most doubles the
// walk length, bounding the first-phase duration.
func (r *RTR) returnToInitiator(res *CollectResult, cur graph.NodeID) {
	res.Truncated = true
	h := &res.Header
	bytes := h.RecordingBytes()
	fs := FieldSizes{Failed: len(h.FailedLinks), Cross: len(h.CrossLinks)}
	if cur == h.RecInit {
		return
	}
	forward := res.Walk.Records
	for i := len(forward) - 1; i >= 0; i-- {
		rec := forward[i]
		res.Walk.Append(routing.HopRecord{From: rec.To, To: rec.From, Link: rec.Link, HeaderBytes: bytes})
		res.FieldSizes = append(res.FieldSizes, fs)
		if rec.From == h.RecInit {
			return
		}
	}
}
