package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestEstimateAreaPaperExample(t *testing.T) {
	_, _, _, sess, trigger := paperWorld(t)
	if _, err := sess.Collect(trigger); err != nil {
		t.Fatal(err)
	}
	est, ok := sess.EstimateArea()
	if !ok {
		t.Fatal("the session knows six failed links; estimation must succeed")
	}
	truth := topology.PaperFailureArea()
	// The estimate must land near the true area: center within one
	// true radius, size within a small factor.
	if est.Center.Dist(truth.Center) > truth.Radius {
		t.Errorf("estimated center %v too far from truth %v", est.Center, truth.Center)
	}
	if est.Radius > 3*truth.Radius {
		t.Errorf("estimated radius %.1f wildly exceeds truth %.1f", est.Radius, truth.Radius)
	}
	if est.Radius <= 0 {
		t.Error("six distinct cut links must give a positive-radius estimate")
	}
}

func TestEstimateAreaBeforeCollection(t *testing.T) {
	// Even before phase 1, the initiator knows its own unreachable
	// links and can produce a (coarse) estimate.
	_, _, _, sess, _ := paperWorld(t)
	est, ok := sess.EstimateArea()
	if !ok {
		t.Fatal("the initiator's own trigger link suffices for a degenerate estimate")
	}
	// Only one known link: the estimate collapses to its midpoint.
	if est.Radius != 0 {
		t.Errorf("single-link estimate must have zero radius, got %v", est.Radius)
	}
}

func TestEstimateAreaNoFailures(t *testing.T) {
	// A session at a node with no unreachable neighbors (possible only
	// by constructing it directly) has nothing to estimate.
	topo := topology.PaperExample()
	r := New(topo, nil)
	lv := routing.NewLocalView(topo, graph.Nothing)
	sess, err := r.NewSession(lv, topology.PaperNode(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sess.EstimateArea(); ok {
		t.Error("no known failures must yield ok=false")
	}
}

// TestEstimateAreaStatistical: over random scenarios, estimates whose
// sessions collected several links should usually land their center
// inside or near the true failure area.
func TestEstimateAreaStatistical(t *testing.T) {
	topo := topology.GenerateAS("AS209", 11)
	r := New(topo, nil)
	tables := routing.ComputeTables(topo)
	rng := rand.New(rand.NewSource(33))
	n := topo.G.NumNodes()

	total, near := 0, 0
	for total < 150 {
		area := failure.RandomArea(rng, failure.MinRadius, failure.MaxRadius)
		sc := failure.NewScenario(topo, area)
		lv := routing.NewLocalView(topo, sc)
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		outcome, initiator, _ := routing.TraceDefault(tables, lv, src, dst)
		if outcome != routing.DefaultBlocked {
			continue
		}
		sess, err := r.NewSession(lv, initiator)
		if err != nil {
			t.Fatal(err)
		}
		_, trigger, _ := tables.NextHop(initiator, dst)
		col, err := sess.Collect(trigger)
		if errors.Is(err, ErrNoLiveNeighbor) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(col.Header.FailedLinks) < 3 {
			continue // too little information for a meaningful estimate
		}
		est, ok := sess.EstimateArea()
		if !ok {
			t.Fatal("collected links must give an estimate")
		}
		total++
		if est.Center.Dist(area.Center) <= area.Radius+100 {
			near++
		}
	}
	frac := float64(near) / float64(total)
	t.Logf("estimates near the true area: %.0f%% (%d/%d)", 100*frac, near, total)
	if frac < 0.7 {
		t.Errorf("only %.0f%% of estimates near the truth; estimator is broken", 100*frac)
	}
}
