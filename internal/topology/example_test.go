package topology_test

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/topology"
)

// Synthesizing a Table II topology: node and link counts are exact,
// the graph is connected, and the embedding lives in the paper's
// 2000x2000 area.
func ExampleGenerate() {
	p, _ := topology.ParamsFor("AS1239")
	topo, err := topology.Generate(p, rand.New(rand.NewSource(1)))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d nodes, %d links, connected: %v\n",
		topo.Name, topo.G.NumNodes(), topo.G.NumLinks(), topo.G.ConnectedAll(graph.Nothing))
	// Output:
	// AS1239: 52 nodes, 84 links, connected: true
}

// The paper's Fig. 6 worked example ships as a fixture; the failure
// area cuts exactly the six links of the narrative.
func ExamplePaperExample() {
	topo := topology.PaperExample()
	area := topology.PaperFailureArea()
	cut := 0
	for i := 0; i < topo.G.NumLinks(); i++ {
		id := graph.LinkID(i)
		l := topo.G.Link(id)
		if area.IntersectsSegment(topo.LinkSegment(id)) ||
			area.Contains(topo.Coord(l.A)) || area.Contains(topo.Coord(l.B)) {
			cut++
		}
	}
	fmt.Printf("%d nodes, %d links, %d links cut by the failure area\n",
		topo.G.NumNodes(), topo.G.NumLinks(), cut)
	// Output:
	// 18 nodes, 30 links, 6 links cut by the failure area
}
