package topology

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

// encodeBinary is a test helper: WriteBinary into a fresh buffer.
func encodeBinary(t *testing.T, topo *Topology) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, topo, nil); err != nil {
		t.Fatalf("WriteBinary(%s): %v", topo.Name, err)
	}
	return buf.Bytes()
}

// sameTopology fails the test unless a and b are structurally
// identical: same name, coords, and link table bytes.
func sameTopology(t *testing.T, a, b *Topology) {
	t.Helper()
	if a.Name != b.Name {
		t.Fatalf("name %q != %q", a.Name, b.Name)
	}
	if len(a.Coords) != len(b.Coords) {
		t.Fatalf("%d coords != %d coords", len(a.Coords), len(b.Coords))
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatalf("coord %d: %v != %v", i, a.Coords[i], b.Coords[i])
		}
	}
	al, bl := a.G.Links(), b.G.Links()
	if len(al) != len(bl) {
		t.Fatalf("%d links != %d links", len(al), len(bl))
	}
	for i := range al {
		if al[i] != bl[i] {
			t.Fatalf("link %d: %+v != %+v", i, al[i], bl[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, topo := range []*Topology{
		PaperExample(),
		GenerateAS("AS1239", 7),
		{Name: "empty", G: graph.New(0)},
	} {
		enc := encodeBinary(t, topo)
		back, err := ReadBinary(bytes.NewReader(enc), nil)
		if err != nil {
			t.Fatalf("ReadBinary(%s): %v", topo.Name, err)
		}
		sameTopology(t, topo, back)
		// The binary codec must agree with the text codec (the
		// differential oracle) on the same world.
		var text strings.Builder
		if err := Write(&text, topo); err != nil {
			t.Fatalf("Write(%s): %v", topo.Name, err)
		}
		viaText, err := Read(strings.NewReader(text.String()))
		if err != nil {
			t.Fatalf("Read(%s): %v", topo.Name, err)
		}
		if topo.G.NumNodes() > 0 {
			sameTopology(t, viaText, back)
		}
	}
}

func TestBinaryAsymmetricCosts(t *testing.T) {
	g := graph.New(3)
	g.MustAddLink(0, 1)
	if _, err := g.AddLinkCost(1, 2, 2.5, 0.125); err != nil {
		t.Fatal(err)
	}
	topo := &Topology{Name: "costs", G: g, Coords: []geom.Point{{X: 1, Y: 2}, {X: 3.5, Y: 4}, {X: 5, Y: 6.25}}}
	back, err := ReadBinary(bytes.NewReader(encodeBinary(t, topo)), nil)
	if err != nil {
		t.Fatal(err)
	}
	sameTopology(t, topo, back)
}

func TestBinaryTruncation(t *testing.T) {
	enc := encodeBinary(t, GenerateAS("AS1239", 3))
	for n := 0; n < len(enc); n++ {
		if _, err := ReadBinary(bytes.NewReader(enc[:n]), nil); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(enc))
		}
	}
}

func TestBinaryCorruption(t *testing.T) {
	topo := GenerateAS("AS1239", 3)
	enc := encodeBinary(t, topo)
	rng := rand.New(rand.NewSource(11))
	flips := 0
	for trial := 0; trial < 2000; trial++ {
		i := rng.Intn(len(enc))
		bad := append([]byte(nil), enc...)
		bad[i] ^= 1 << rng.Intn(8)
		back, err := ReadBinary(bytes.NewReader(bad), nil)
		if err != nil {
			continue
		}
		// A flip the reader accepts anyway must decode to the exact
		// same topology (e.g. a NaN payload bit that the checksum
		// happens to collide on is essentially impossible; reaching
		// here at all indicates checksum coverage is broken).
		sameTopology(t, topo, back)
		flips++
	}
	if flips != 0 {
		t.Fatalf("%d corrupted encodings accepted", flips)
	}
}

func TestBinaryTrailingData(t *testing.T) {
	enc := encodeBinary(t, PaperExample())
	if _, err := ReadBinary(bytes.NewReader(append(enc, 0)), nil); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestBinaryProgress(t *testing.T) {
	topo := GenerateAS("AS7018", 7)
	var stages []string
	var lastDone int
	progress := func(stage string, done, total int) {
		if len(stages) == 0 || stages[len(stages)-1] != stage {
			stages = append(stages, stage)
			lastDone = 0
		}
		if done < lastDone || done > total {
			t.Fatalf("progress %s %d/%d after %d", stage, done, total, lastDone)
		}
		lastDone = done
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, topo, progress); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes()), progress); err != nil {
		t.Fatal(err)
	}
	want := []string{"nodes", "links", "nodes", "links"}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stages = %v, want %v", stages, want)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTSNAP1xxxx")), nil); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad magic accepted: %v", err)
	}
}
