package topology

import (
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/graph"
)

func sortLinkIDs(ids []graph.LinkID) { slices.Sort(ids) }

// segGrid indexes segments by the grid cells their bounding boxes
// cover, turning all-pairs crossing detection into per-cell candidate
// enumeration. Pairs whose cell ranges overlap in several cells are
// deduplicated geometrically: a pair is reported only from the
// top-left cell of the overlap of the two ranges, so no visited-set
// is needed and every pair is reported exactly once.
type segGrid struct {
	cells  [][]int32 // segment indices per cell
	rngs   []cellRange
	nx, ny int
}

// cellRange is the inclusive cell-coordinate span of one segment's
// bounding box.
type cellRange struct {
	x0, x1, y0, y1 int32
}

// segGridDim bounds the grid resolution; the cell count stays ~dim^2
// regardless of segment count, and resolution adapts to the bounding
// box of the data rather than assuming the paper's 2000x2000 area.
const segGridDim = 256

func newSegGrid(segs []geom.Segment) *segGrid {
	// Bounding box of all segments (degenerate boxes are fine).
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, s := range segs {
		minX = math.Min(minX, math.Min(s.A.X, s.B.X))
		maxX = math.Max(maxX, math.Max(s.A.X, s.B.X))
		minY = math.Min(minY, math.Min(s.A.Y, s.B.Y))
		maxY = math.Max(maxY, math.Max(s.A.Y, s.B.Y))
	}
	if len(segs) == 0 || minX > maxX {
		return &segGrid{nx: 1, ny: 1, cells: make([][]int32, 1), rngs: nil}
	}
	nx, ny := segGridDim, segGridDim
	// Fewer cells than segments buys nothing on tiny graphs.
	if len(segs) < segGridDim {
		nx, ny = 16, 16
	}
	w := maxX - minX
	h := maxY - minY
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	g := &segGrid{
		cells: make([][]int32, nx*ny),
		rngs:  make([]cellRange, len(segs)),
		nx:    nx, ny: ny,
	}
	cellX := func(x float64) int32 {
		c := int32((x - minX) / w * float64(nx))
		if c >= int32(nx) {
			c = int32(nx) - 1
		}
		return c
	}
	cellY := func(y float64) int32 {
		c := int32((y - minY) / h * float64(ny))
		if c >= int32(ny) {
			c = int32(ny) - 1
		}
		return c
	}
	for i, s := range segs {
		r := cellRange{
			x0: cellX(math.Min(s.A.X, s.B.X)),
			x1: cellX(math.Max(s.A.X, s.B.X)),
			y0: cellY(math.Min(s.A.Y, s.B.Y)),
			y1: cellY(math.Max(s.A.Y, s.B.Y)),
		}
		g.rngs[i] = r
		for cy := r.y0; cy <= r.y1; cy++ {
			for cx := r.x0; cx <= r.x1; cx++ {
				k := int(cy)*nx + int(cx)
				g.cells[k] = append(g.cells[k], int32(i))
			}
		}
	}
	return g
}

// forCandidatePairs calls report(i, j) with i < j exactly once for
// every segment pair whose cell ranges overlap. Crossing segments have
// overlapping bounding boxes, and overlapping boxes always share at
// least one cell, so every crossing pair is reported; pairs whose
// boxes merely share a coarse cell without touching are eliminated by
// the caller's exact segment test.
func (g *segGrid) forCandidatePairs(report func(i, j int)) {
	g.forCandidatePairsIn(0, len(g.cells), report)
}

// forCandidatePairsIn is forCandidatePairs restricted to cells
// [lo, hi) — the unit of parallel distribution. A pair is reported by
// whichever block owns its canonical cell, so blocks never overlap.
func (g *segGrid) forCandidatePairsIn(lo, hi int, report func(i, j int)) {
	for k := lo; k < hi; k++ {
		cell := g.cells[k]
		if len(cell) < 2 {
			continue
		}
		cx := int32(k % g.nx)
		cy := int32(k / g.nx)
		for ai := 0; ai < len(cell); ai++ {
			a := cell[ai]
			ra := g.rngs[a]
			for bi := ai + 1; bi < len(cell); bi++ {
				b := cell[bi]
				rb := g.rngs[b]
				// Top-left cell of the range overlap owns the pair.
				if max32(ra.x0, rb.x0) != cx || max32(ra.y0, rb.y0) != cy {
					continue
				}
				i, j := int(a), int(b)
				if i > j {
					i, j = j, i
				}
				report(i, j)
			}
		}
	}
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
