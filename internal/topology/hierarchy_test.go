package topology

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func tieredParams(nodes, links int) GenParams {
	return GenParams{Name: "synth", Nodes: nodes, Links: links, Tiers: true}
}

func TestTieredGenerate(t *testing.T) {
	p := tieredParams(2000, 5200)
	topo, err := Generate(p, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.G.NumNodes() != p.Nodes || topo.G.NumLinks() != p.Links {
		t.Fatalf("got %d nodes / %d links, want %d / %d",
			topo.G.NumNodes(), topo.G.NumLinks(), p.Nodes, p.Links)
	}
	if !topo.G.ConnectedAll(graph.Nothing) {
		t.Fatal("tiered topology must be connected")
	}
	// Core nodes carry the ring plus uplinks: every core node has
	// degree >= 2, and the core tier's mean degree must exceed the
	// access tier's (the hierarchy is real, not cosmetic).
	nCore, nAgg := tierSizes(p.Nodes)
	coreDeg, accessDeg := 0, 0
	for v := 0; v < nCore; v++ {
		d := topo.G.Degree(graph.NodeID(v))
		if d < 2 {
			t.Fatalf("core node %d has degree %d", v, d)
		}
		coreDeg += d
	}
	nAccess := p.Nodes - nCore - nAgg
	for v := nCore + nAgg; v < p.Nodes; v++ {
		accessDeg += topo.G.Degree(graph.NodeID(v))
	}
	if float64(coreDeg)/float64(nCore) <= float64(accessDeg)/float64(nAccess) {
		t.Fatalf("core mean degree %.1f not above access mean degree %.1f",
			float64(coreDeg)/float64(nCore), float64(accessDeg)/float64(nAccess))
	}
}

func TestTieredDeterminism(t *testing.T) {
	p := tieredParams(3000, 8000)
	var snaps [2][]byte
	for i := range snaps {
		topo, err := Generate(p, rand.New(rand.NewSource(17)))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, topo, nil); err != nil {
			t.Fatal(err)
		}
		snaps[i] = buf.Bytes()
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatal("same params + seed must give byte-identical snapshots")
	}
	other, err := Generate(p, rand.New(rand.NewSource(18)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, other, nil); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(snaps[0], buf.Bytes()) {
		t.Fatal("different seeds must give different topologies")
	}
}

func TestTieredErrors(t *testing.T) {
	if _, err := Generate(tieredParams(8, 20), rand.New(rand.NewSource(1))); err == nil {
		t.Error("too few nodes must fail")
	}
	if _, err := Generate(tieredParams(100, 50), rand.New(rand.NewSource(1))); err == nil {
		t.Error("links below node count must fail")
	}
	if _, err := Generate(tieredParams(20, 400), rand.New(rand.NewSource(1))); err == nil {
		t.Error("links beyond the simple-graph maximum must fail")
	}
}

func TestTieredLocality(t *testing.T) {
	// Tiered links must be overwhelmingly short: mean link length well
	// under a quarter of the area diagonal (the flat Waxman model's
	// bias is far weaker).
	topo, err := Generate(tieredParams(4000, 10000), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i < topo.G.NumLinks(); i++ {
		total += topo.LinkSegment(graph.LinkID(i)).Length()
	}
	mean := total / float64(topo.G.NumLinks())
	if mean > 700 {
		t.Fatalf("mean link length %.0f too long for a local hierarchy", mean)
	}
}
