package topology

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Hierarchical PoP generator (GenParams.Tiers). Real continent-scale
// ISPs are not flat Waxman graphs: a small long-haul core interconnects
// regional aggregation PoPs, each fanning out to access routers. This
// generator reproduces that shape with three tiers —
//
//	core:        max(4, n/200) nodes, spread over the whole area,
//	             connected in a ring plus dual-homed chords
//	aggregation: max(core, n/10) nodes, each placed near a core parent
//	             and uplinked to it (second uplink to the nearest other
//	             core while the link budget allows)
//	access:      the rest, each placed near an aggregation parent and
//	             uplinked to it
//
// and then fills the remaining link budget with geometrically local
// extra links sampled through a uniform grid (spatial hash), keeping
// every step near-linear: no O(n) weighted scans per attachment and no
// O(n^2) fallback, so 10^5-node synthesis takes seconds, not hours.
// Connectivity is guaranteed by construction (ring + uplink tree), the
// node and link counts are hit exactly, and the output is a pure
// function of (params, rng stream) like the flat generator.

// Tier boundaries for a tiered topology with n nodes: nodes
// [0,core) are core, [core,core+agg) aggregation, the rest access.
func tierSizes(n int) (core, agg int) {
	core = n / 200
	if core < 4 {
		core = 4
	}
	agg = n / 10
	if agg < core {
		agg = core
	}
	return core, agg
}

// minTieredNodes keeps every tier non-empty and the core ring
// meaningful.
const minTieredNodes = 16

func generateTiered(p GenParams, rng *rand.Rand) (*Topology, error) {
	n := p.Nodes
	if n < minTieredNodes {
		return nil, fmt.Errorf("topology %q: tiered mode needs at least %d nodes, got %d", p.Name, minTieredNodes, n)
	}
	if n > graph.MaxNodes {
		return nil, fmt.Errorf("topology %q: %w: %d nodes (capacity %d)", p.Name, graph.ErrTooManyNodes, n, graph.MaxNodes)
	}
	maxLinks := n * (n - 1) / 2
	if p.Links < n || p.Links > maxLinks {
		return nil, fmt.Errorf("topology %q: tiered mode: %d links out of range [%d, %d] for %d nodes",
			p.Name, p.Links, n, maxLinks, n)
	}
	w, h := p.Width, p.Height
	if w == 0 {
		w = Width
	}
	if h == 0 {
		h = Height
	}
	locality := p.Locality
	if locality <= 0 {
		locality = 0.10
	}
	diag := math.Hypot(w, h)
	// Cluster radii per tier: aggregation PoPs sit within rAgg of their
	// core parent, access routers within rAccess of their aggregation
	// parent. Scaled by the same locality knob as the flat model.
	rAgg := 0.6 * locality * diag
	rAccess := 0.2 * locality * diag

	nCore, nAgg := tierSizes(n)
	nAccess := n - nCore - nAgg

	coords := make([]geom.Point, n)
	clamp := func(pt geom.Point) geom.Point {
		return geom.Point{X: math.Min(math.Max(pt.X, 0), w), Y: math.Min(math.Max(pt.Y, 0), h)}
	}
	// offset returns a uniform point in the disk of radius r.
	offset := func(c geom.Point, r float64) geom.Point {
		ang := rng.Float64() * 2 * math.Pi
		d := r * math.Sqrt(rng.Float64())
		return clamp(geom.Point{X: c.X + d*math.Cos(ang), Y: c.Y + d*math.Sin(ang)})
	}

	for i := 0; i < nCore; i++ {
		coords[i] = geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	aggParent := make([]int, nAgg)
	for i := 0; i < nAgg; i++ {
		aggParent[i] = rng.Intn(nCore)
		coords[nCore+i] = offset(coords[aggParent[i]], rAgg)
	}
	accessParent := make([]int, nAccess)
	for i := 0; i < nAccess; i++ {
		accessParent[i] = rng.Intn(nAgg)
		coords[nCore+nAgg+i] = offset(coords[nCore+accessParent[i]], rAccess)
	}

	g, err := graph.WithNodes(n)
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", p.Name, err)
	}
	have := make(map[[2]graph.NodeID]bool, p.Links)
	addLink := func(a, b int) error {
		if _, err := g.AddLink(graph.NodeID(a), graph.NodeID(b)); err != nil {
			return fmt.Errorf("topology %q: %w", p.Name, err)
		}
		have[linkKey(graph.NodeID(a), graph.NodeID(b))] = true
		return nil
	}

	// Core ring: guarantees core connectivity.
	for i := 0; i < nCore; i++ {
		if err := addLink(i, (i+1)%nCore); err != nil {
			return nil, err
		}
	}
	// Primary uplinks: agg -> its core parent, access -> its agg
	// parent. Together with the ring this spans the whole graph.
	for i := 0; i < nAgg; i++ {
		if err := addLink(nCore+i, aggParent[i]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nAccess; i++ {
		if err := addLink(nCore+nAgg+i, nCore+accessParent[i]); err != nil {
			return nil, err
		}
	}

	// Dual-home aggregation PoPs: a second uplink to the geometrically
	// nearest core other than the parent, in ID order while the budget
	// lasts. nAgg x nCore distance scans stay cheap (n/10 x n/200).
	for i := 0; i < nAgg && g.NumLinks() < p.Links; i++ {
		at := coords[nCore+i]
		best, bestD := -1, math.Inf(1)
		for c := 0; c < nCore; c++ {
			if c == aggParent[i] {
				continue
			}
			if d := at.Dist2(coords[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if best < 0 || have[linkKey(graph.NodeID(nCore+i), graph.NodeID(best))] {
			continue
		}
		if err := addLink(nCore+i, best); err != nil {
			return nil, err
		}
	}

	// Remaining budget: geometrically local extra links sampled through
	// a spatial hash — pick a random node, then a random node from the
	// surrounding 3x3 cell neighborhood. Cells at half the access
	// radius keep extra links metro-local (within ~1.5 cluster radii),
	// which also keeps segment crossings — and with them cross-index
	// size and header cross_link traffic — near-linear in n.
	grid := newNodeGrid(coords, w, h, math.Max(rAccess/2, diag/1024))
	stall := 0
	const maxStall = 5000
	for g.NumLinks() < p.Links {
		a := rng.Intn(n)
		var b int
		if stall < maxStall/2 {
			b = grid.sampleNear(rng, coords[a], a)
		} else {
			// Local neighborhoods saturated; fall back to uniform
			// pairs so dense targets still terminate.
			b = rng.Intn(n)
		}
		if b < 0 || b == a || have[linkKey(graph.NodeID(a), graph.NodeID(b))] {
			stall++
			if stall > maxStall {
				return nil, fmt.Errorf("topology %q: graph saturated before reaching %d links", p.Name, p.Links)
			}
			continue
		}
		if err := addLink(a, b); err != nil {
			return nil, err
		}
		stall = 0
	}

	return &Topology{Name: p.Name, G: g, Coords: coords}, nil
}

// nodeGrid is a uniform spatial hash of node coordinates used to
// sample geometrically near nodes in O(1) per draw.
type nodeGrid struct {
	cells      [][]int32 // node IDs per cell, in ascending ID order
	nx, ny     int
	cellW      float64
	cellH      float64
	maxX, maxY float64
}

func newNodeGrid(coords []geom.Point, w, h, cell float64) *nodeGrid {
	nx := int(w/cell) + 1
	ny := int(h/cell) + 1
	g := &nodeGrid{
		cells: make([][]int32, nx*ny),
		nx:    nx, ny: ny,
		cellW: w / float64(nx), cellH: h / float64(ny),
		maxX: w, maxY: h,
	}
	for id, c := range coords {
		k := g.cellOf(c)
		g.cells[k] = append(g.cells[k], int32(id))
	}
	return g
}

func (g *nodeGrid) cellOf(p geom.Point) int {
	cx := int(p.X / g.cellW)
	cy := int(p.Y / g.cellH)
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// sampleNear returns a node drawn uniformly from the 3x3 cell
// neighborhood of p, or -1 if that neighborhood holds no node other
// than exclude. Cell visit order is fixed so the draw is a pure
// function of the rng stream.
func (g *nodeGrid) sampleNear(rng *rand.Rand, p geom.Point, exclude int) int {
	k := g.cellOf(p)
	cx, cy := k%g.nx, k/g.nx
	total := 0
	var neigh [9]int
	nn := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || x >= g.nx || y < 0 || y >= g.ny {
				continue
			}
			c := y*g.nx + x
			neigh[nn] = c
			nn++
			total += len(g.cells[c])
		}
	}
	if total == 0 {
		return -1
	}
	i := rng.Intn(total)
	for _, c := range neigh[:nn] {
		if i < len(g.cells[c]) {
			id := int(g.cells[c][i])
			if id == exclude {
				return -1
			}
			return id
		}
		i -= len(g.cells[c])
	}
	return -1
}
