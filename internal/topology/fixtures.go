package topology

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/graph"
)

// The paper's worked example: the 18-node general graph of Figs. 1, 2,
// 4 and 6, whose first-phase walk and header contents are tabulated in
// Table I. Node vK of the paper is NodeID K-1 here; PaperNode converts.
//
// The coordinates are not given in the paper; the embedding below is
// constructed so that every geometric relation the paper's narrative
// depends on holds:
//   - the failure area (PaperFailureArea) contains exactly v10 and
//     cuts exactly the links e6-11 and e4-11 in addition to v10's four
//     incident links;
//   - e5-12 crosses e6-11 (Constraint 1's trigger, Fig. 4);
//   - e11-15 and e11-16 cross e14-12 (the Fig. 6 exclusions);
//   - the counterclockwise sweep at every hop selects exactly the
//     next hop of Table I's walk
//     v6 v5 v4 v9 v13 v14 v12 v11 v12 v8 v7 v6.

// PaperNode returns the NodeID of the paper's node vK (1-based).
func PaperNode(k int) graph.NodeID {
	if k < 1 || k > 18 {
		panic(fmt.Sprintf("topology: paper node v%d out of range", k))
	}
	return graph.NodeID(k - 1)
}

// paperCoords[k-1] is the embedding of the paper's vK.
var paperCoords = []geom.Point{
	{X: 300, Y: 560}, // v1
	{X: 140, Y: 580}, // v2
	{X: 60, Y: 330},  // v3
	{X: 330, Y: 470}, // v4
	{X: 210, Y: 380}, // v5
	{X: 200, Y: 230}, // v6
	{X: 60, Y: 200},  // v7
	{X: 300, Y: 110}, // v8
	{X: 530, Y: 490}, // v9
	{X: 430, Y: 350}, // v10
	{X: 520, Y: 230}, // v11
	{X: 600, Y: 120}, // v12
	{X: 660, Y: 560}, // v13
	{X: 650, Y: 470}, // v14
	{X: 690, Y: 350}, // v15
	{X: 760, Y: 230}, // v16
	{X: 870, Y: 390}, // v17
	{X: 850, Y: 140}, // v18
}

// paperLinks lists the example's links as pairs of paper node numbers.
var paperLinks = [][2]int{
	{1, 2}, {1, 4}, {1, 13},
	{2, 5},
	{3, 5}, {3, 7},
	{4, 5}, {4, 9}, {4, 11},
	{5, 6}, {5, 10}, {5, 12},
	{6, 7}, {6, 11},
	{7, 8},
	{8, 12},
	{9, 10}, {9, 13},
	{10, 11}, {10, 14},
	{11, 12}, {11, 15}, {11, 16},
	{12, 14}, {12, 16},
	{13, 14},
	{15, 16}, {15, 17},
	{16, 18},
	{17, 18},
}

// PaperExample returns the Fig. 6 general graph with its embedding.
func PaperExample() *Topology {
	g := graph.New(len(paperCoords))
	for _, lk := range paperLinks {
		g.MustAddLink(PaperNode(lk[0]), PaperNode(lk[1]))
	}
	coords := make([]geom.Point, len(paperCoords))
	copy(coords, paperCoords)
	return &Topology{Name: "paper-fig6", G: g, Coords: coords}
}

// PaperLink returns the example's link between the paper's vA and vB.
// It panics if the link does not exist; the fixture is static.
func PaperLink(t *Topology, a, b int) graph.LinkID {
	id, ok := t.G.LinkBetween(PaperNode(a), PaperNode(b))
	if !ok {
		panic(fmt.Sprintf("topology: paper example has no link v%d-v%d", a, b))
	}
	return id
}

// PaperFailureArea is the failure disk of the worked example: it
// contains exactly v10 and additionally cuts e6-11 and e4-11.
func PaperFailureArea() geom.Disk {
	return geom.Disk{Center: geom.Point{X: 470, Y: 300}, Radius: 75}
}
