package topology

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/graph"
)

// GenParams parameterizes the ISP-like topology generator.
type GenParams struct {
	Name  string
	Nodes int
	Links int
	// PrefAttach biases new attachments toward high-degree nodes; 0
	// yields uniform random attachment, larger values yield stronger
	// hubs (and, in sparse graphs, more degree-1 tree branches).
	PrefAttach float64
	// Locality biases links toward geometrically near endpoints, as in
	// measured ISP maps (the Waxman model): attachment weight decays
	// as exp(-dist / (Locality * diagonal)). Zero defaults to 0.10;
	// negative disables the bias entirely (links ignore geometry).
	Locality float64
	// Width and Height of the embedding area; zero values default to
	// the paper's 2000x2000.
	Width, Height float64
	// Tiers switches to the hierarchical PoP generator (hierarchy.go):
	// a core / aggregation / access three-tier layout with geometric
	// locality per tier, built in near-linear time so city/continent
	// scale (10^5 nodes) synthesizes in seconds. The flat Waxman +
	// preferential-attachment model above stays the Table II generator;
	// PrefAttach is ignored in tiered mode.
	Tiers bool
}

// Rocketfuel substitute: the paper's Table II node and link counts for
// the eight Rocketfuel-derived ISP topologies. The generator below
// reproduces the counts exactly; the graph structure is synthesized
// (see DESIGN.md §4 for why this preserves the evaluation's behavior).
var tableII = []GenParams{
	{Name: "AS209", Nodes: 58, Links: 108, PrefAttach: 1.0},
	{Name: "AS701", Nodes: 83, Links: 219, PrefAttach: 1.0},
	{Name: "AS1239", Nodes: 52, Links: 84, PrefAttach: 1.2},
	{Name: "AS3320", Nodes: 70, Links: 355, PrefAttach: 0.8},
	{Name: "AS3549", Nodes: 61, Links: 486, PrefAttach: 0.5},
	{Name: "AS3561", Nodes: 92, Links: 329, PrefAttach: 0.8},
	{Name: "AS4323", Nodes: 51, Links: 161, PrefAttach: 1.0},
	// AS7018 is the sparse, tree-branch-rich topology the paper calls
	// out under Fig. 7; stronger preferential attachment concentrates
	// links on a few hubs and leaves many degree-1 branches.
	{Name: "AS7018", Nodes: 115, Links: 148, PrefAttach: 1.25},
}

// TableII returns the generator presets matching the paper's Table II.
func TableII() []GenParams {
	out := make([]GenParams, len(tableII))
	copy(out, tableII)
	return out
}

// ASNames returns the names of the eight Table II topologies in paper
// order.
func ASNames() []string {
	names := make([]string, len(tableII))
	for i, p := range tableII {
		names[i] = p.Name
	}
	return names
}

// ParamsFor returns the Table II preset with the given name.
func ParamsFor(name string) (GenParams, bool) {
	for _, p := range tableII {
		if p.Name == name {
			return p, true
		}
	}
	return GenParams{}, false
}

// GenerateAS synthesizes the named Table II topology with the given
// seed. It panics if the name is unknown; use ParamsFor + Generate for
// non-panicking construction.
func GenerateAS(name string, seed int64) *Topology {
	p, ok := ParamsFor(name)
	if !ok {
		panic(fmt.Sprintf("topology: unknown AS %q", name))
	}
	t, err := Generate(p, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	return t
}

// Generate synthesizes a connected ISP-like topology with exactly
// p.Nodes nodes and p.Links links. Nodes are placed uniformly at
// random in the simulation area (the paper's setup); links follow a
// Waxman-style model — attachment probability decays with distance —
// combined with preferential attachment, giving the geometric locality
// and heavy-tailed degree mix of measured ISP backbones. Locality is
// what makes the paper's premise meaningful: a geographic failure area
// destroys geographically close infrastructure.
func Generate(p GenParams, rng *rand.Rand) (*Topology, error) {
	if p.Tiers {
		return generateTiered(p, rng)
	}
	if p.Nodes < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", p.Nodes)
	}
	minLinks := p.Nodes - 1
	maxLinks := p.Nodes * (p.Nodes - 1) / 2
	if p.Links < minLinks || p.Links > maxLinks {
		return nil, fmt.Errorf("topology %q: %d links out of range [%d, %d] for %d nodes",
			p.Name, p.Links, minLinks, maxLinks, p.Nodes)
	}
	w, h := p.Width, p.Height
	if w == 0 {
		w = Width
	}
	if h == 0 {
		h = Height
	}
	locality := p.Locality
	if locality == 0 {
		locality = 0.10
	}
	scale := locality * math.Hypot(w, h)
	if locality < 0 {
		scale = math.Inf(1) // distance bias disabled
	}

	coords := make([]geom.Point, p.Nodes)
	for i := range coords {
		coords[i] = geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}

	g := graph.New(p.Nodes)
	deg := make([]float64, p.Nodes)
	// weight of attaching some new link endpoint to node u, given the
	// other endpoint sits at point from.
	attachWeight := func(u int, from geom.Point) float64 {
		wgt := degWeight(deg[u], p.PrefAttach)
		if !math.IsInf(scale, 1) {
			wgt *= math.Exp(-coords[u].Dist(from) / scale)
		}
		return wgt
	}

	// Spanning tree: each node (in random order) attaches to an
	// already-attached node sampled by degree and proximity.
	order := rng.Perm(p.Nodes)
	for i := 1; i < p.Nodes; i++ {
		v := order[i]
		u := order[pickWeighted(rng, order[:i], func(cand int) float64 {
			return attachWeight(cand, coords[v])
		})]
		if _, err := g.AddLink(graph.NodeID(u), graph.NodeID(v)); err != nil {
			return nil, err
		}
		deg[u]++
		deg[v]++
	}

	// Extra links: first endpoint by degree, second by degree and
	// proximity, no duplicates.
	have := make(map[[2]graph.NodeID]bool, p.Links)
	for _, l := range g.Links() {
		have[linkKey(l.A, l.B)] = true
	}
	all := make([]int, p.Nodes)
	for i := range all {
		all[i] = i
	}
	stall := 0
	for g.NumLinks() < p.Links {
		a := all[pickWeighted(rng, all, func(cand int) float64 {
			return degWeight(deg[cand], p.PrefAttach)
		})]
		b := all[pickWeighted(rng, all, func(cand int) float64 {
			if cand == a {
				return 0
			}
			return attachWeight(cand, coords[a])
		})]
		if a == b || have[linkKey(graph.NodeID(a), graph.NodeID(b))] {
			stall++
			if stall > 50*p.Links {
				// Dense targets (e.g. the AS3549 analogue at 486 links
				// on 61 nodes) can exhaust local candidates; fall back
				// to the nearest absent pair.
				var found bool
				a, b, found = nearestAbsentPair(coords, have)
				if !found {
					return nil, fmt.Errorf("topology %q: graph saturated before reaching %d links", p.Name, p.Links)
				}
			} else {
				continue
			}
		}
		if _, err := g.AddLink(graph.NodeID(a), graph.NodeID(b)); err != nil {
			return nil, err
		}
		have[linkKey(graph.NodeID(a), graph.NodeID(b))] = true
		deg[a]++
		deg[b]++
		stall = 0
	}

	return &Topology{Name: p.Name, G: g, Coords: coords}, nil
}

func linkKey(a, b graph.NodeID) [2]graph.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]graph.NodeID{a, b}
}

// pickWeighted returns an index into ids chosen with probability
// proportional to weight(ids[i]).
func pickWeighted(rng *rand.Rand, ids []int, weight func(int) float64) int {
	total := 0.0
	for _, id := range ids {
		total += weight(id)
	}
	if total <= 0 {
		return rng.Intn(len(ids))
	}
	x := rng.Float64() * total
	for i, id := range ids {
		x -= weight(id)
		if x <= 0 {
			return i
		}
	}
	return len(ids) - 1
}

func degWeight(d, alpha float64) float64 {
	w := d + 1
	switch alpha {
	case 0:
		return 1
	case 1:
		return w
	default:
		return math.Pow(w, alpha)
	}
}

// nearestAbsentPair returns the geometrically closest node pair with no
// link yet.
func nearestAbsentPair(coords []geom.Point, have map[[2]graph.NodeID]bool) (int, int, bool) {
	bestA, bestB := -1, -1
	bestD := math.Inf(1)
	for a := 0; a < len(coords); a++ {
		for b := a + 1; b < len(coords); b++ {
			if have[linkKey(graph.NodeID(a), graph.NodeID(b))] {
				continue
			}
			if d := coords[a].Dist2(coords[b]); d < bestD {
				bestA, bestB, bestD = a, b, d
			}
		}
	}
	return bestA, bestB, bestA >= 0
}
