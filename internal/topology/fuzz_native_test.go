package topology

import (
	"strings"
	"testing"
)

// FuzzRead is the native-fuzzing twin of TestReadRandomText: the
// topology parser must never panic on arbitrary text, and any
// topology it accepts must validate and survive a Write/Read round
// trip. Run with
//
//	go test -fuzz FuzzRead ./internal/topology
func FuzzRead(f *testing.F) {
	f.Add("")
	f.Add("topology t0\nnode 0 1 2\n")
	f.Add("link 0 1\n")
	var paper strings.Builder
	if err := Write(&paper, PaperExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(paper.String())
	f.Fuzz(func(t *testing.T, input string) {
		topo, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("accepted topology fails validation: %v\ninput:\n%s", err, input)
		}
		var out strings.Builder
		if err := Write(&out, topo); err != nil {
			t.Fatalf("accepted topology fails to serialize: %v", err)
		}
		back, err := Read(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("round trip of accepted topology fails: %v\n%s", err, out.String())
		}
		if back.G.NumNodes() != topo.G.NumNodes() || back.G.NumLinks() != topo.G.NumLinks() {
			t.Fatal("round trip changed the graph")
		}
	})
}
