package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead is the native-fuzzing twin of TestReadRandomText: the
// topology parser must never panic on arbitrary text, and any
// topology it accepts must validate and survive a Write/Read round
// trip. Run with
//
//	go test -fuzz FuzzRead ./internal/topology
func FuzzRead(f *testing.F) {
	f.Add("")
	f.Add("topology t0\nnode 0 1 2\n")
	f.Add("link 0 1\n")
	var paper strings.Builder
	if err := Write(&paper, PaperExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(paper.String())
	f.Fuzz(func(t *testing.T, input string) {
		topo, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("accepted topology fails validation: %v\ninput:\n%s", err, input)
		}
		var out strings.Builder
		if err := Write(&out, topo); err != nil {
			t.Fatalf("accepted topology fails to serialize: %v", err)
		}
		back, err := Read(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("round trip of accepted topology fails: %v\n%s", err, out.String())
		}
		if back.G.NumNodes() != topo.G.NumNodes() || back.G.NumLinks() != topo.G.NumLinks() {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzReadBinary drives the binary snapshot reader with arbitrary
// bytes: it must never panic or over-allocate, and any snapshot it
// accepts must validate and re-encode to the identical byte sequence
// (the format has exactly one encoding per world). Truncations and
// bit flips of valid snapshots are in the seed corpus; the trailing
// CRC must reject them. Run with
//
//	go test -fuzz FuzzReadBinary ./internal/topology
func FuzzReadBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RTRSNAP1"))
	var snap bytes.Buffer
	if err := WriteBinary(&snap, PaperExample(), nil); err != nil {
		f.Fatal(err)
	}
	valid := snap.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, input []byte) {
		topo, err := ReadBinary(bytes.NewReader(input), nil)
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("accepted snapshot fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, topo, nil); err != nil {
			t.Fatalf("accepted snapshot fails to re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), input) {
			t.Fatalf("re-encode differs from accepted input (%d vs %d bytes)", out.Len(), len(input))
		}
	})
}
