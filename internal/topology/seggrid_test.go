package topology

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

// naiveCrossIndex is the original exhaustive O(E^2) build, kept as the
// differential oracle for the grid-accelerated BuildCrossIndex.
func naiveCrossIndex(t *Topology) *CrossIndex {
	e := t.G.NumLinks()
	segs := make([]geom.Segment, e)
	for i := 0; i < e; i++ {
		segs[i] = t.LinkSegment(graph.LinkID(i))
	}
	ci := &CrossIndex{
		crossing: make([][]graph.LinkID, e),
		bits:     make([]uint64, (e*e+63)/64),
		n:        e,
	}
	for i := 0; i < e; i++ {
		for j := i + 1; j < e; j++ {
			if segs[i].Crosses(segs[j]) {
				ci.crossing[i] = append(ci.crossing[i], graph.LinkID(j))
				ci.crossing[j] = append(ci.crossing[j], graph.LinkID(i))
				ci.setBit(i, j)
				ci.setBit(j, i)
			}
		}
	}
	return ci
}

func sameCrossIndex(t *testing.T, want, got *CrossIndex) {
	t.Helper()
	if len(want.crossing) != len(got.crossing) {
		t.Fatalf("crossing table size %d != %d", len(got.crossing), len(want.crossing))
	}
	for i := range want.crossing {
		w, g := want.crossing[i], got.crossing[i]
		if len(w) != len(g) {
			t.Fatalf("link %d: %d crossings != %d", i, len(g), len(w))
		}
		for k := range w {
			if w[k] != g[k] {
				t.Fatalf("link %d: crossing[%d] = %d, want %d", i, k, g[k], w[k])
			}
		}
	}
}

// TestBuildCrossIndexMatchesNaive checks the grid-accelerated build
// against the exhaustive scan on every Table II topology and on a
// tiered synthesis, list for list in identical order, plus Cross()
// agreement on sampled pairs.
func TestBuildCrossIndexMatchesNaive(t *testing.T) {
	topos := []*Topology{PaperExample()}
	for _, name := range ASNames() {
		topos = append(topos, GenerateAS(name, 7))
	}
	tiered, err := Generate(GenParams{Name: "t2k", Nodes: 2000, Links: 5000, Tiers: true},
		rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, tiered)

	rng := rand.New(rand.NewSource(1))
	for _, topo := range topos {
		want := naiveCrossIndex(topo)
		got := BuildCrossIndex(topo)
		sameCrossIndex(t, want, got)
		e := topo.G.NumLinks()
		for trial := 0; trial < 2000; trial++ {
			a := graph.LinkID(rng.Intn(e))
			b := graph.LinkID(rng.Intn(e))
			if want.Cross(a, b) != got.Cross(a, b) {
				t.Fatalf("%s: Cross(%d,%d) = %v, want %v", topo.Name, a, b, got.Cross(a, b), want.Cross(a, b))
			}
		}
	}
}

// TestCrossIndexSparseFallback forces the list-backed Cross path (no
// bit matrix) and checks it against the matrix-backed answers.
func TestCrossIndexSparseFallback(t *testing.T) {
	topo := GenerateAS("AS3549", 7) // densest Table II map: 486 links
	dense := BuildCrossIndex(topo)
	if dense.bits == nil {
		t.Fatal("Table II build must carry the bit matrix")
	}
	sparse := &CrossIndex{crossing: dense.crossing, n: dense.n}
	e := topo.G.NumLinks()
	for a := 0; a < e; a++ {
		for _, b := range dense.crossing[a] {
			if !sparse.Cross(graph.LinkID(a), b) {
				t.Fatalf("sparse Cross(%d,%d) = false, want true", a, b)
			}
		}
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		a := graph.LinkID(rng.Intn(e))
		b := graph.LinkID(rng.Intn(e))
		if sparse.Cross(a, b) != dense.Cross(a, b) {
			t.Fatalf("sparse Cross(%d,%d) = %v, want %v", a, b, sparse.Cross(a, b), dense.Cross(a, b))
		}
	}
}
