package topology

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Binary world-snapshot format ("rtrsnap", version 1).
//
// The text codec (codec.go) stays the human-readable interchange format
// and differential oracle; this binary format exists for scale. A 100k
// node / 300k link world is ~8 MB here versus ~25 MB of text, and both
// directions stream: the writer emits length-prefixed sections through
// one bufio.Writer, the reader consumes them record by record through
// one bufio.Reader, building the graph incrementally. Neither side ever
// materializes the whole file (or any whole section) in memory.
//
// Layout, all integers big endian:
//
//	magic   "RTRSNAP1" (8 bytes)
//	section := tag u8, byteLen u32, payload[byteLen]
//	  tag 1 name:  the topology name (UTF-8)
//	  tag 2 nodes: count u32, then count x (x f64, y f64)
//	  tag 3 links: count u32, then count x
//	                 (a u32, b u32, flag u8 [, costAB f64, costBA f64])
//	               flag 0 = unit cost both ways, 1 = explicit costs
//	  tag 255 end: crc u32 — IEEE CRC-32 over every preceding section
//	               payload (not tags or lengths), in file order
//
// Sections appear exactly once, in tag order. The trailing checksum
// lets the reader reject bit corruption that still parses; truncation
// anywhere is detected by the length prefixes and the mandatory end
// section.

// snapMagic identifies a binary snapshot file.
const snapMagic = "RTRSNAP1"

// SnapMagic is the 8-byte prefix of every binary snapshot, exported so
// tools can sniff the format of an input file.
const SnapMagic = snapMagic

const (
	secName  = 1
	secNodes = 2
	secLinks = 3
	secEnd   = 255
)

// maxNameLen bounds the name section so a corrupt length prefix cannot
// drive a huge allocation.
const maxNameLen = 1 << 12

// ErrBadSnapshot is the base error for every malformed-snapshot
// condition the binary reader detects.
var ErrBadSnapshot = errors.New("topology: bad binary snapshot")

// Progress receives streaming-codec progress: the stage ("nodes" or
// "links"), records completed so far, and the stage total. It is called
// at stage boundaries and every progressStride records in between. A
// nil Progress is allowed everywhere one is accepted.
type Progress func(stage string, done, total int)

// progressStride is how many records pass between Progress callbacks.
const progressStride = 1 << 16

func (p Progress) report(stage string, done, total int) {
	if p != nil {
		p(stage, done, total)
	}
}

// crcWriter updates a running CRC with everything written through it.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

// WriteBinary serializes t in the binary snapshot format, streaming
// sections through a bufio.Writer without building the encoded file in
// memory. progress may be nil.
func WriteBinary(w io.Writer, t *Topology, progress Progress) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	var scratch [17]byte

	writeHeader := func(tag byte, byteLen int) error {
		// Section headers go straight to bw: they are not covered by
		// the checksum (only payloads are).
		scratch[0] = tag
		binary.BigEndian.PutUint32(scratch[1:5], uint32(byteLen))
		_, err := bw.Write(scratch[:5])
		return err
	}

	// name
	if len(t.Name) > maxNameLen {
		return fmt.Errorf("topology %q: name longer than %d bytes", t.Name, maxNameLen)
	}
	if err := writeHeader(secName, len(t.Name)); err != nil {
		return err
	}
	if _, err := io.WriteString(cw, t.Name); err != nil {
		return err
	}

	// nodes
	n := t.G.NumNodes()
	if err := writeHeader(secNodes, 4+16*n); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(scratch[:4], uint32(n))
	if _, err := cw.Write(scratch[:4]); err != nil {
		return err
	}
	progress.report("nodes", 0, n)
	for i, c := range t.Coords {
		binary.BigEndian.PutUint64(scratch[0:8], math.Float64bits(c.X))
		binary.BigEndian.PutUint64(scratch[8:16], math.Float64bits(c.Y))
		if _, err := cw.Write(scratch[:16]); err != nil {
			return err
		}
		if (i+1)%progressStride == 0 {
			progress.report("nodes", i+1, n)
		}
	}
	progress.report("nodes", n, n)

	// links: the payload length depends on how many links carry
	// explicit costs, so count those in a cheap pre-pass (the topology
	// is already in memory; this allocates nothing).
	e := t.G.NumLinks()
	costed := 0
	for i := 0; i < e; i++ {
		l := t.G.Link(graph.LinkID(i))
		if l.CostAB != 1 || l.CostBA != 1 {
			costed++
		}
	}
	if err := writeHeader(secLinks, 4+9*e+16*costed); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(scratch[:4], uint32(e))
	if _, err := cw.Write(scratch[:4]); err != nil {
		return err
	}
	progress.report("links", 0, e)
	for i := 0; i < e; i++ {
		l := t.G.Link(graph.LinkID(i))
		binary.BigEndian.PutUint32(scratch[0:4], uint32(l.A))
		binary.BigEndian.PutUint32(scratch[4:8], uint32(l.B))
		rec := scratch[:9]
		if l.CostAB == 1 && l.CostBA == 1 {
			scratch[8] = 0
		} else {
			scratch[8] = 1
			var costs [16]byte
			binary.BigEndian.PutUint64(costs[0:8], math.Float64bits(l.CostAB))
			binary.BigEndian.PutUint64(costs[8:16], math.Float64bits(l.CostBA))
			if _, err := cw.Write(rec); err != nil {
				return err
			}
			rec = costs[:]
		}
		if _, err := cw.Write(rec); err != nil {
			return err
		}
		if (i+1)%progressStride == 0 {
			progress.report("links", i+1, e)
		}
	}
	progress.report("links", e, e)

	// end
	if err := writeHeader(secEnd, 4); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(scratch[:4], cw.crc)
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// binReader wraps a bufio.Reader with CRC accounting and
// section-budget checks.
type binReader struct {
	r       *bufio.Reader
	crc     uint32
	remain  int // bytes left in the current section payload
	scratch [17]byte
}

// payload reads exactly n payload bytes into the scratch buffer,
// charging them against the current section budget and the CRC.
func (br *binReader) payload(n int) ([]byte, error) {
	if n > br.remain {
		return nil, fmt.Errorf("%w: record overruns section length", ErrBadSnapshot)
	}
	buf := br.scratch[:n]
	if _, err := io.ReadFull(br.r, buf); err != nil {
		return nil, fmt.Errorf("%w: truncated: %v", ErrBadSnapshot, err)
	}
	br.remain -= n
	br.crc = crc32.Update(br.crc, crc32.IEEETable, buf)
	return buf, nil
}

func (br *binReader) u8() (byte, error) {
	b, err := br.payload(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (br *binReader) u32() (uint32, error) {
	b, err := br.payload(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (br *binReader) f64() (float64, error) {
	b, err := br.payload(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

// section reads the next section header (outside any payload budget)
// and resets the payload budget to its length.
func (br *binReader) section(wantTag byte) error {
	if br.remain != 0 {
		return fmt.Errorf("%w: section has %d undeclared trailing bytes", ErrBadSnapshot, br.remain)
	}
	hdr := br.scratch[:5]
	if _, err := io.ReadFull(br.r, hdr); err != nil {
		return fmt.Errorf("%w: truncated section header: %v", ErrBadSnapshot, err)
	}
	if hdr[0] != wantTag {
		return fmt.Errorf("%w: section tag %d, want %d", ErrBadSnapshot, hdr[0], wantTag)
	}
	br.remain = int(binary.BigEndian.Uint32(hdr[1:5]))
	return nil
}

// ReadBinary parses a binary snapshot, building the topology
// incrementally from a bufio.Reader: no full-file (or full-section)
// intermediate buffer is ever allocated, so arbitrarily large
// snapshots load in O(result) memory. progress may be nil.
func ReadBinary(r io.Reader, progress Progress) (*Topology, error) {
	br := &binReader{r: bufio.NewReaderSize(r, 1<<16)}

	magic := br.scratch[:8]
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, fmt.Errorf("%w: truncated magic: %v", ErrBadSnapshot, err)
	}
	if string(magic) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic)
	}

	// name
	if err := br.section(secName); err != nil {
		return nil, err
	}
	if br.remain > maxNameLen {
		return nil, fmt.Errorf("%w: name length %d exceeds %d", ErrBadSnapshot, br.remain, maxNameLen)
	}
	nameBuf := make([]byte, br.remain)
	if _, err := io.ReadFull(br.r, nameBuf); err != nil {
		return nil, fmt.Errorf("%w: truncated name: %v", ErrBadSnapshot, err)
	}
	br.crc = crc32.Update(br.crc, crc32.IEEETable, nameBuf)
	br.remain = 0
	name := string(nameBuf)

	// nodes
	if err := br.section(secNodes); err != nil {
		return nil, err
	}
	nu, err := br.u32()
	if err != nil {
		return nil, err
	}
	n := int(nu)
	if br.remain != 16*n {
		return nil, fmt.Errorf("%w: nodes section length %d for %d nodes", ErrBadSnapshot, 4+br.remain, n)
	}
	if n > graph.MaxNodes {
		return nil, fmt.Errorf("topology %q: %w: %d nodes (capacity %d)", name, graph.ErrTooManyNodes, n, graph.MaxNodes)
	}
	// Grow coords by appending rather than allocating the claimed count
	// up front: a corrupt header claiming millions of nodes then costs
	// memory proportional to the bytes actually present, not to the
	// claim. The graph is constructed only after the payload streamed
	// in for the same reason.
	coords := make([]geom.Point, 0, min(n, progressStride))
	progress.report("nodes", 0, n)
	for i := 0; i < n; i++ {
		x, err := br.f64()
		if err != nil {
			return nil, err
		}
		y, err := br.f64()
		if err != nil {
			return nil, err
		}
		coords = append(coords, geom.Point{X: x, Y: y})
		if (i+1)%progressStride == 0 {
			progress.report("nodes", i+1, n)
		}
	}
	progress.report("nodes", n, n)
	g, err := graph.WithNodes(n)
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", name, err)
	}

	// links
	if err := br.section(secLinks); err != nil {
		return nil, err
	}
	eu, err := br.u32()
	if err != nil {
		return nil, err
	}
	e := int(eu)
	if e > graph.MaxLinks {
		return nil, fmt.Errorf("topology %q: %w: %d links (capacity %d)", name, graph.ErrTooManyLinks, e, graph.MaxLinks)
	}
	// Minimum record size is 9 bytes; a section too short for its count
	// is rejected before any link work happens.
	if br.remain < 9*e {
		return nil, fmt.Errorf("%w: links section length %d for %d links", ErrBadSnapshot, 4+br.remain, e)
	}
	progress.report("links", 0, e)
	for i := 0; i < e; i++ {
		rec, err := br.payload(9)
		if err != nil {
			return nil, err
		}
		a := binary.BigEndian.Uint32(rec[0:4])
		b := binary.BigEndian.Uint32(rec[4:8])
		flag := rec[8]
		costAB, costBA := 1.0, 1.0
		switch flag {
		case 0:
		case 1:
			if costAB, err = br.f64(); err != nil {
				return nil, err
			}
			if costBA, err = br.f64(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: link %d: bad cost flag %d", ErrBadSnapshot, i, flag)
		}
		if int64(a) >= int64(n) || int64(b) >= int64(n) {
			return nil, fmt.Errorf("topology %q: link %d: %w: (%d,%d) with %d nodes", name, i, graph.ErrNodeOutOfRange, a, b, n)
		}
		if _, err := g.AddLinkCost(graph.NodeID(a), graph.NodeID(b), costAB, costBA); err != nil {
			return nil, fmt.Errorf("topology %q: link %d: %w", name, i, err)
		}
		if (i+1)%progressStride == 0 {
			progress.report("links", i+1, e)
		}
	}
	progress.report("links", e, e)
	if br.remain != 0 {
		return nil, fmt.Errorf("%w: links section has %d trailing bytes", ErrBadSnapshot, br.remain)
	}

	// end + checksum
	sum := br.crc
	if err := br.section(secEnd); err != nil {
		return nil, err
	}
	if br.remain != 4 {
		return nil, fmt.Errorf("%w: end section length %d, want 4", ErrBadSnapshot, br.remain)
	}
	want, err := br.u32()
	if err != nil {
		return nil, err
	}
	if want != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrBadSnapshot, want, sum)
	}
	if _, err := br.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after end section", ErrBadSnapshot)
	}
	return &Topology{Name: name, G: g, Coords: coords}, nil
}
