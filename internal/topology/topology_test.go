package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

func TestGenerateTableIICounts(t *testing.T) {
	want := map[string][2]int{
		"AS209":  {58, 108},
		"AS701":  {83, 219},
		"AS1239": {52, 84},
		"AS3320": {70, 355},
		"AS3549": {61, 486},
		"AS3561": {92, 329},
		"AS4323": {51, 161},
		"AS7018": {115, 148},
	}
	for _, p := range TableII() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			topo, err := Generate(p, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			w := want[p.Name]
			if topo.G.NumNodes() != w[0] || topo.G.NumLinks() != w[1] {
				t.Errorf("%s: got %d nodes %d links, want %d/%d",
					p.Name, topo.G.NumNodes(), topo.G.NumLinks(), w[0], w[1])
			}
			if !topo.G.ConnectedAll(graph.Nothing) {
				t.Errorf("%s: generated topology is disconnected", p.Name)
			}
			if err := topo.Validate(); err != nil {
				t.Error(err)
			}
			for _, c := range topo.Coords {
				if c.X < 0 || c.X > Width || c.Y < 0 || c.Y > Height {
					t.Fatalf("%s: coordinate %v outside the %gx%g area", p.Name, c, Width, Height)
				}
			}
			// No duplicate links.
			seen := make(map[[2]graph.NodeID]bool)
			for _, l := range topo.G.Links() {
				k := linkKey(l.A, l.B)
				if seen[k] {
					t.Fatalf("%s: duplicate link %v", p.Name, l)
				}
				seen[k] = true
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ParamsFor("AS209")
	a, err := Generate(p, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumLinks() != b.G.NumLinks() {
		t.Fatal("same seed produced different link counts")
	}
	for i := 0; i < a.G.NumLinks(); i++ {
		la, lb := a.G.Link(graph.LinkID(i)), b.G.Link(graph.LinkID(i))
		if la.A != lb.A || la.B != lb.B {
			t.Fatalf("same seed produced different link %d: %v vs %v", i, la, lb)
		}
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatalf("same seed produced different coordinate %d", i)
		}
	}
	c, err := Generate(p, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.G.NumLinks() && same; i++ {
		la, lc := a.G.Link(graph.LinkID(i)), c.G.Link(graph.LinkID(i))
		same = la.A == lc.A && la.B == lc.B
	}
	if same {
		t.Error("different seeds produced identical link tables")
	}
}

func TestGenerateAS7018HasTreeBranches(t *testing.T) {
	// The paper singles out AS7018 for its many tree branches
	// (degree-1 nodes); the analogue must reproduce that shape.
	topo := GenerateAS("AS7018", 3)
	leaves := 0
	for v := 0; v < topo.G.NumNodes(); v++ {
		if topo.G.Degree(graph.NodeID(v)) == 1 {
			leaves++
		}
	}
	if leaves < topo.G.NumNodes()/5 {
		t.Errorf("AS7018 analogue has %d leaves out of %d nodes; want a tree-branch-rich graph", leaves, topo.G.NumNodes())
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(GenParams{Nodes: 1, Links: 0}, rng); err == nil {
		t.Error("want error for <2 nodes")
	}
	if _, err := Generate(GenParams{Nodes: 5, Links: 3}, rng); err == nil {
		t.Error("want error for too few links")
	}
	if _, err := Generate(GenParams{Nodes: 5, Links: 11}, rng); err == nil {
		t.Error("want error for too many links")
	}
	if _, err := Generate(GenParams{Nodes: 5, Links: 10}, rng); err != nil {
		t.Errorf("complete graph on 5 nodes must be generable: %v", err)
	}
}

func TestGenerateASUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GenerateAS with unknown name must panic")
		}
	}()
	GenerateAS("AS0", 1)
}

func TestParamsFor(t *testing.T) {
	if _, ok := ParamsFor("AS209"); !ok {
		t.Error("AS209 preset missing")
	}
	if _, ok := ParamsFor("ASnope"); ok {
		t.Error("unknown preset must report false")
	}
	if len(ASNames()) != 8 {
		t.Errorf("want 8 AS names, got %d", len(ASNames()))
	}
}

func TestCrossIndexSimple(t *testing.T) {
	// Two crossing links and one distant link.
	g := graph.New(6)
	x1 := g.MustAddLink(0, 1)
	x2 := g.MustAddLink(2, 3)
	far := g.MustAddLink(4, 5)
	topo := &Topology{
		Name: "x",
		G:    g,
		Coords: []geom.Point{
			{X: 0, Y: 0}, {X: 10, Y: 10}, // link 0-1 diagonal
			{X: 0, Y: 10}, {X: 10, Y: 0}, // link 2-3 anti-diagonal
			{X: 100, Y: 100}, {X: 110, Y: 100},
		},
	}
	ci := BuildCrossIndex(topo)
	if !ci.Cross(x1, x2) || !ci.Cross(x2, x1) {
		t.Error("crossing links must be symmetric in the index")
	}
	if ci.Cross(x1, far) || ci.Cross(x2, far) {
		t.Error("distant link must cross nothing")
	}
	if got := ci.Crossing(x1); len(got) != 1 || got[0] != x2 {
		t.Errorf("Crossing(x1) = %v", got)
	}
	if ci.NumCrossings() != 1 {
		t.Errorf("NumCrossings = %d, want 1", ci.NumCrossings())
	}
	if !ci.CrossesAny(x1, []graph.LinkID{far, x2}) {
		t.Error("CrossesAny must find x2")
	}
	if ci.CrossesAny(x1, []graph.LinkID{far}) {
		t.Error("CrossesAny must not invent crossings")
	}
	if ci.CrossesAny(x1, nil) {
		t.Error("CrossesAny with empty set must be false")
	}
}

func TestPaperExampleStructure(t *testing.T) {
	topo := PaperExample()
	if topo.G.NumNodes() != 18 {
		t.Fatalf("paper example has %d nodes, want 18", topo.G.NumNodes())
	}
	if topo.G.NumLinks() != 30 {
		t.Fatalf("paper example has %d links, want 30", topo.G.NumLinks())
	}
	if !topo.G.ConnectedAll(graph.Nothing) {
		t.Fatal("paper example must be connected before failures")
	}
	// The narrative's routing path v7 v6 v11 v15 v17 must exist.
	for _, pair := range [][2]int{{7, 6}, {6, 11}, {11, 15}, {15, 17}} {
		if !topo.G.HasLink(PaperNode(pair[0]), PaperNode(pair[1])) {
			t.Errorf("missing routing-path link v%d-v%d", pair[0], pair[1])
		}
	}
}

func TestPaperExampleFailureGeometry(t *testing.T) {
	topo := PaperExample()
	area := PaperFailureArea()

	// Exactly v10 is inside the failure area.
	for k := 1; k <= 18; k++ {
		inside := area.Contains(topo.Coord(PaperNode(k)))
		if k == 10 && !inside {
			t.Error("v10 must be inside the failure area")
		}
		if k != 10 && inside {
			t.Errorf("v%d must be outside the failure area", k)
		}
	}

	// Exactly these links fail: v10's four incident links plus the two
	// links that cross the area, e6-11 and e4-11.
	wantFailed := map[graph.LinkID]bool{
		PaperLink(topo, 5, 10):  true,
		PaperLink(topo, 9, 10):  true,
		PaperLink(topo, 10, 11): true,
		PaperLink(topo, 10, 14): true,
		PaperLink(topo, 6, 11):  true,
		PaperLink(topo, 4, 11):  true,
	}
	for i := 0; i < topo.G.NumLinks(); i++ {
		id := graph.LinkID(i)
		l := topo.G.Link(id)
		failed := area.IntersectsSegment(topo.LinkSegment(id)) ||
			area.Contains(topo.Coords[l.A]) || area.Contains(topo.Coords[l.B])
		if failed != wantFailed[id] {
			t.Errorf("link %v: failed=%v, want %v", l, failed, wantFailed[id])
		}
	}
}

func TestPaperExampleCrossings(t *testing.T) {
	topo := PaperExample()
	ci := BuildCrossIndex(topo)

	e611 := PaperLink(topo, 6, 11)
	e512 := PaperLink(topo, 5, 12)
	e1214 := PaperLink(topo, 12, 14)
	e1115 := PaperLink(topo, 11, 15)
	e1116 := PaperLink(topo, 11, 16)

	// Fig. 4 / Constraint 1: e5-12 crosses e6-11.
	if !ci.Cross(e512, e611) {
		t.Error("e5-12 must cross e6-11")
	}
	// Fig. 6: e11-15 and e11-16 cross e14-12.
	if !ci.Cross(e1115, e1214) {
		t.Error("e11-15 must cross e14-12")
	}
	if !ci.Cross(e1116, e1214) {
		t.Error("e11-16 must cross e14-12")
	}

	// Table I's cross_link never grows beyond {e6-11, e14-12}: none of
	// the links the walk traverses may be crossed by anything except
	// e14-12 (which gains its entry at hop 5).
	walkLinks := [][2]int{{6, 5}, {5, 4}, {4, 9}, {9, 13}, {13, 14}, {12, 11}, {12, 8}, {8, 7}, {7, 6}}
	for _, w := range walkLinks {
		id := PaperLink(topo, w[0], w[1])
		if got := ci.Crossing(id); len(got) != 0 {
			t.Errorf("walk link v%d-v%d must cross nothing, crosses %v", w[0], w[1], got)
		}
	}
	if got := ci.Crossing(e1214); len(got) != 2 {
		t.Errorf("e14-12 must be crossed by exactly e11-15 and e11-16, got %v", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	topo := PaperExample()
	var buf bytes.Buffer
	if err := Write(&buf, topo); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != topo.Name {
		t.Errorf("name = %q, want %q", back.Name, topo.Name)
	}
	if back.G.NumNodes() != topo.G.NumNodes() || back.G.NumLinks() != topo.G.NumLinks() {
		t.Fatal("round trip changed graph size")
	}
	for i := range topo.Coords {
		if !back.Coords[i].Eq(topo.Coords[i]) {
			t.Errorf("coordinate %d changed: %v -> %v", i, topo.Coords[i], back.Coords[i])
		}
	}
	for i := 0; i < topo.G.NumLinks(); i++ {
		a, b := topo.G.Link(graph.LinkID(i)), back.G.Link(graph.LinkID(i))
		if a.A != b.A || a.B != b.B || a.CostAB != b.CostAB || a.CostBA != b.CostBA {
			t.Errorf("link %d changed: %+v -> %+v", i, a, b)
		}
	}
}

func TestCodecRoundTripAsymmetricCosts(t *testing.T) {
	g := graph.New(2)
	if _, err := g.AddLinkCost(0, 1, 2.5, 7.25); err != nil {
		t.Fatal(err)
	}
	topo := &Topology{Name: "asym", G: g, Coords: []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}}
	var buf bytes.Buffer
	if err := Write(&buf, topo); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l := back.G.Link(0)
	if l.CostAB != 2.5 || l.CostBA != 7.25 {
		t.Errorf("asymmetric costs lost: %+v", l)
	}
}

func TestCodecComments(t *testing.T) {
	in := `# a comment
topology demo

node 0 0 0
node 1 10 0
# another comment
link 0 1
`
	topo, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Name != "demo" || topo.G.NumNodes() != 2 || topo.G.NumLinks() != 1 {
		t.Errorf("parsed %q with %d nodes %d links", topo.Name, topo.G.NumNodes(), topo.G.NumLinks())
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"missing header", "node 0 0 0\n"},
		{"bad directive", "topology t\nfrobnicate 1\n"},
		{"non-consecutive node", "topology t\nnode 1 0 0\n"},
		{"bad coordinate", "topology t\nnode 0 x 0\n"},
		{"short node", "topology t\nnode 0 0\n"},
		{"short link", "topology t\nnode 0 0 0\nnode 1 1 1\nlink 0\n"},
		{"undeclared endpoint", "topology t\nnode 0 0 0\nlink 0 5\n"},
		{"self loop", "topology t\nnode 0 0 0\nlink 0 0\n"},
		{"bad cost", "topology t\nnode 0 0 0\nnode 1 1 1\nlink 0 1 x 1\n"},
		{"bad endpoint text", "topology t\nnode 0 0 0\nlink a 0\n"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.in)); err == nil {
				t.Errorf("input %q must fail to parse", c.in)
			}
		})
	}
}

func TestLinkSegment(t *testing.T) {
	topo := PaperExample()
	id := PaperLink(topo, 6, 11)
	seg := topo.LinkSegment(id)
	want := geom.Segment{A: topo.Coord(PaperNode(6)), B: topo.Coord(PaperNode(11))}
	if !seg.A.Eq(want.A) || !seg.B.Eq(want.B) {
		t.Errorf("LinkSegment = %v, want %v", seg, want)
	}
}

func TestValidate(t *testing.T) {
	if err := (&Topology{Name: "bad"}).Validate(); err == nil {
		t.Error("nil graph must fail validation")
	}
	g := graph.New(2)
	topo := &Topology{Name: "bad2", G: g, Coords: []geom.Point{{}}}
	if err := topo.Validate(); err == nil {
		t.Error("coords/nodes mismatch must fail validation")
	}
}
