package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/graph"
)

// The text format is line oriented:
//
//	topology <name>
//	node <id> <x> <y>
//	link <a> <b> [costAB costBA]
//
// Nodes must be declared with consecutive IDs starting at 0 before any
// link that uses them. '#' starts a comment; blank lines are ignored.

// Write serializes t in the text format.
func Write(w io.Writer, t *Topology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "topology %s\n", t.Name)
	for i, c := range t.Coords {
		fmt.Fprintf(bw, "node %d %s %s\n", i,
			strconv.FormatFloat(c.X, 'g', -1, 64),
			strconv.FormatFloat(c.Y, 'g', -1, 64))
	}
	for _, l := range t.G.Links() {
		if l.CostAB == 1 && l.CostBA == 1 {
			fmt.Fprintf(bw, "link %d %d\n", l.A, l.B)
			continue
		}
		fmt.Fprintf(bw, "link %d %d %s %s\n", l.A, l.B,
			strconv.FormatFloat(l.CostAB, 'g', -1, 64),
			strconv.FormatFloat(l.CostBA, 'g', -1, 64))
	}
	return bw.Flush()
}

// Read parses a topology in the text format.
func Read(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	name := ""
	var coords []geom.Point
	type rawLink struct {
		a, b           int
		costAB, costBA float64
	}
	var links []rawLink

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "topology":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topology: line %d: want 'topology <name>'", lineNo)
			}
			name = fields[1]
		case "node":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology: line %d: want 'node <id> <x> <y>'", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != len(coords) {
				return nil, fmt.Errorf("topology: line %d: node IDs must be consecutive from 0, got %q", lineNo, fields[1])
			}
			x, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: bad x %q: %v", lineNo, fields[2], err)
			}
			y, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: bad y %q: %v", lineNo, fields[3], err)
			}
			coords = append(coords, geom.Point{X: x, Y: y})
		case "link":
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("topology: line %d: want 'link <a> <b> [costAB costBA]'", lineNo)
			}
			a, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: bad endpoint %q: %v", lineNo, fields[1], err)
			}
			b, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: bad endpoint %q: %v", lineNo, fields[2], err)
			}
			l := rawLink{a: a, b: b, costAB: 1, costBA: 1}
			if len(fields) == 5 {
				l.costAB, err = strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("topology: line %d: bad cost %q: %v", lineNo, fields[3], err)
				}
				l.costBA, err = strconv.ParseFloat(fields[4], 64)
				if err != nil {
					return nil, fmt.Errorf("topology: line %d: bad cost %q: %v", lineNo, fields[4], err)
				}
			}
			links = append(links, l)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: read: %w", err)
	}
	if name == "" {
		return nil, fmt.Errorf("topology: missing 'topology <name>' header")
	}

	g, err := graph.WithNodes(len(coords))
	if err != nil {
		return nil, fmt.Errorf("topology %q: %w", name, err)
	}
	for _, l := range links {
		if l.a < 0 || l.a >= len(coords) || l.b < 0 || l.b >= len(coords) {
			return nil, fmt.Errorf("topology %q: link %d-%d references undeclared node", name, l.a, l.b)
		}
		if _, err := g.AddLinkCost(graph.NodeID(l.a), graph.NodeID(l.b), l.costAB, l.costBA); err != nil {
			return nil, fmt.Errorf("topology %q: link %d-%d: %w", name, l.a, l.b, err)
		}
	}
	return &Topology{Name: name, G: g, Coords: coords}, nil
}
