package topology

import (
	"math/rand"
	"strings"
	"testing"
)

// TestReadRandomText hammers the topology parser with random line
// soup: it must never panic and must either reject the input or return
// a topology that validates and round-trips.
func TestReadRandomText(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	words := []string{
		"topology", "node", "link", "t0", "0", "1", "2", "-3", "1e9",
		"NaN", "x", "#", "", "link link", "9999999999",
	}
	for i := 0; i < 5000; i++ {
		var sb strings.Builder
		lines := rng.Intn(12)
		for l := 0; l < lines; l++ {
			fields := 1 + rng.Intn(5)
			for f := 0; f < fields; f++ {
				if f > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(words[rng.Intn(len(words))])
			}
			sb.WriteByte('\n')
		}
		topo, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			continue
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("accepted topology fails validation: %v\ninput:\n%s", err, sb.String())
		}
		var out strings.Builder
		if err := Write(&out, topo); err != nil {
			t.Fatalf("accepted topology fails to serialize: %v", err)
		}
		back, err := Read(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("round trip of accepted topology fails: %v\n%s", err, out.String())
		}
		if back.G.NumNodes() != topo.G.NumNodes() || back.G.NumLinks() != topo.G.NumLinks() {
			t.Fatal("round trip changed the graph")
		}
	}
}

// TestReadMutatedValid flips characters of a valid file: the parser
// must stay panic-free.
func TestReadMutatedValid(t *testing.T) {
	var base strings.Builder
	if err := Write(&base, PaperExample()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(82))
	src := base.String()
	for i := 0; i < 2000; i++ {
		b := []byte(src)
		for k := 0; k < 1+rng.Intn(4); k++ {
			b[rng.Intn(len(b))] = byte(32 + rng.Intn(95))
		}
		topo, err := Read(strings.NewReader(string(b)))
		if err != nil {
			continue
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("accepted mutated topology fails validation: %v", err)
		}
	}
}
