// Package topology provides embedded network topologies: a graph plus
// planar coordinates for every router, the precomputed cross-link
// index RTR's forwarding rule consults, an ISP-like topology generator
// matching the paper's Table II, the paper's worked-example fixture
// (Figs. 1/2/4/6, Table I), and a text codec.
//
// Following the paper's setup, coordinates are drawn uniformly at
// random from a 2000x2000 area and are independent of the graph
// structure; links are straight segments between router coordinates.
package topology

import (
	"fmt"
	"runtime"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/par"
)

// Width and Height of the simulation area used throughout the paper.
const (
	Width  = 2000.0
	Height = 2000.0
)

// Topology is a graph embedded in the plane.
type Topology struct {
	Name   string
	G      *graph.Graph
	Coords []geom.Point // indexed by graph.NodeID
}

// Validate checks the internal consistency of the topology.
func (t *Topology) Validate() error {
	if t.G == nil {
		return fmt.Errorf("topology %q: nil graph", t.Name)
	}
	if len(t.Coords) != t.G.NumNodes() {
		return fmt.Errorf("topology %q: %d coords for %d nodes", t.Name, len(t.Coords), t.G.NumNodes())
	}
	return nil
}

// Coord returns the coordinates of node v.
func (t *Topology) Coord(v graph.NodeID) geom.Point { return t.Coords[v] }

// LinkSegment returns the straight segment drawn by link id.
func (t *Topology) LinkSegment(id graph.LinkID) geom.Segment {
	l := t.G.Link(id)
	return geom.Segment{A: t.Coords[l.A], B: t.Coords[l.B]}
}

// CrossIndex is the precomputed "links across each link" table the
// paper's routers maintain: for every link, the set of links whose
// segments cross it (always in ascending link-ID order). It is
// symmetric by construction.
//
// For graphs up to bitMatrixMaxLinks links an E x E bit matrix backs
// O(1) Cross queries; past that the matrix would be gigabytes (E^2/8
// bytes), so Cross falls back to binary search over the sorted
// crossing lists — crossing sets are tiny relative to E, so the
// O(log k) probe stays cheap at scale.
type CrossIndex struct {
	crossing [][]graph.LinkID
	bits     []uint64 // flattened E x E bit matrix, nil when e > bitMatrixMaxLinks
	n        int
}

// bitMatrixMaxLinks bounds the dense Cross matrix at 32 MB
// (16384^2 bits). Every Table II topology is far below it.
const bitMatrixMaxLinks = 1 << 14

// BuildCrossIndex computes the cross-link table for t. Candidate pairs
// come from a uniform grid over the embedding area (segments indexed
// by the cells their bounding boxes cover), so the build does
// near-linear work on geometrically local graphs instead of testing
// all E^2 pairs; every candidate still goes through the exact segment
// test, so the result is identical to the exhaustive scan.
func BuildCrossIndex(t *Topology) *CrossIndex {
	e := t.G.NumLinks()
	segs := make([]geom.Segment, e)
	for i := 0; i < e; i++ {
		segs[i] = t.LinkSegment(graph.LinkID(i))
	}
	ci := &CrossIndex{
		crossing: make([][]graph.LinkID, e),
		n:        e,
	}
	if e <= bitMatrixMaxLinks {
		ci.bits = make([]uint64, (e*e+63)/64)
	}

	sg := newSegGrid(segs)
	// Candidate cells are independent, so the exact tests fan out over
	// cell blocks; each worker accumulates packed (i,j) pairs locally.
	blocks := runtime.GOMAXPROCS(0) * 8
	if blocks > len(sg.cells) {
		blocks = len(sg.cells)
	}
	found := make([][]uint64, blocks)
	par.For(blocks, 0, func(b int) {
		lo := len(sg.cells) * b / blocks
		hi := len(sg.cells) * (b + 1) / blocks
		var local []uint64
		sg.forCandidatePairsIn(lo, hi, func(i, j int) {
			if segs[i].Crosses(segs[j]) {
				local = append(local, uint64(i)<<32|uint64(j))
			}
		})
		found[b] = local
	})
	for _, local := range found {
		for _, p := range local {
			i, j := int(p>>32), int(p&0xFFFFFFFF)
			ci.crossing[i] = append(ci.crossing[i], graph.LinkID(j))
			ci.crossing[j] = append(ci.crossing[j], graph.LinkID(i))
			if ci.bits != nil {
				ci.setBit(i, j)
				ci.setBit(j, i)
			}
		}
	}
	// Candidate enumeration visits cells, not IDs, so restore the
	// ascending-ID order the exhaustive scan produced (which also
	// makes the result independent of worker scheduling).
	par.For(e, 0, func(i int) {
		sortLinkIDs(ci.crossing[i])
	})
	return ci
}

func (ci *CrossIndex) setBit(i, j int) {
	k := i*ci.n + j
	ci.bits[k/64] |= 1 << (k % 64)
}

// Cross reports whether links a and b cross each other.
func (ci *CrossIndex) Cross(a, b graph.LinkID) bool {
	if ci.bits != nil {
		k := int(a)*ci.n + int(b)
		return ci.bits[k/64]&(1<<(k%64)) != 0
	}
	list := ci.crossing[a]
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(list) && list[lo] == b
}

// Crossing returns the links that cross link a. The returned slice is
// shared and must not be modified.
func (ci *CrossIndex) Crossing(a graph.LinkID) []graph.LinkID {
	return ci.crossing[a]
}

// CrossesAny reports whether link a crosses any link in set, where set
// is a list of link IDs (as carried in a packet's cross_link field).
func (ci *CrossIndex) CrossesAny(a graph.LinkID, set []graph.LinkID) bool {
	for _, b := range set {
		if ci.Cross(a, b) {
			return true
		}
	}
	return false
}

// NumCrossings returns the total number of unordered crossing pairs.
func (ci *CrossIndex) NumCrossings() int {
	total := 0
	for _, c := range ci.crossing {
		total += len(c)
	}
	return total / 2
}
