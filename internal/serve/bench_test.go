package serve

import "testing"

// BenchmarkWarmQuery times steady-state warm-cache serving on the
// largest bundled topology: after a priming pass every query hits a
// cached converged state, so an op is protocol runs plus lookups.
func BenchmarkWarmQuery(b *testing.B) {
	e, err := New(Config{Topos: []string{"AS7018"}, Seed: testSeed, CacheEntries: 64})
	if err != nil {
		b.Fatal(err)
	}
	queries := mixQueries(e, "AS7018", 5, 3, SchemeAll)
	if len(queries) == 0 {
		b.Fatal("no queries")
	}
	for _, q := range queries { // prime
		if _, err := e.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoCacheQuery times the cache-disabled engine: every query
// rebuilds the post-failure converged state via the incremental
// recompute before the protocol runs.
func BenchmarkNoCacheQuery(b *testing.B) {
	benchUncached(b, Config{Topos: []string{"AS7018"}, Seed: testSeed})
}

// BenchmarkColdQuery times the cold-convergence-per-query baseline:
// cache disabled and full per-destination Dijkstra rebuilds — the
// cost a service pays when nothing (neither the LRU nor the
// incremental convergence layer) amortizes the failure instance.
func BenchmarkColdQuery(b *testing.B) {
	benchUncached(b, Config{Topos: []string{"AS7018"}, Seed: testSeed, ColdConvergence: true})
}

func benchUncached(b *testing.B, cfg Config) {
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	queries := mixQueries(e, "AS7018", 5, 3, SchemeAll)
	if len(queries) == 0 {
		b.Fatal("no queries")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}
