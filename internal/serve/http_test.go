package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"
)

// TestHTTPRoundTrip proves the HTTP layer is a faithful transport: a
// GET and a POST of the same query return JSON identical to the
// in-process Engine.Query answer, and /statsz reflects the traffic.
func TestHTTPRoundTrip(t *testing.T) {
	e := testEngine(t, "AS1239", 4)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	q := testCaseQuery(t, e, "AS1239")
	want, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// The direct query warmed the cache, so both transports see a hit
	// and compare cleanly against the direct answer with CacheHit set.
	want.CacheHit = true
	wantJSON := mustJSON(t, want)

	get := srv.URL + "/recover?" + url.Values{
		"topo":    {q.Topo},
		"failure": {q.Failure},
		"src":     {strconv.Itoa(q.Src)},
		"dst":     {strconv.Itoa(q.Dst)},
	}.Encode()
	for _, fetch := range []func() (*http.Response, error){
		func() (*http.Response, error) { return http.Get(get) },
		func() (*http.Response, error) {
			body, _ := json.Marshal(q)
			return http.Post(srv.URL+"/recover", "application/json", bytes.NewReader(body))
		},
	} {
		resp, err := fetch()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var got Response
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("bad response body %q: %v", body, err)
		}
		if gotJSON := mustJSON(t, &got); gotJSON != wantJSON {
			t.Errorf("transport answer differs from in-process answer:\n got  %s\n want %s", gotJSON, wantJSON)
		}
	}

	hres, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK || string(hbody) != "ok\n" {
		t.Errorf("/healthz: %d %q", hres.StatusCode, hbody)
	}

	sres, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(sres.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sres.Body.Close()
	if st.Queries != 3 || st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Errorf("/statsz after 1 direct + 2 HTTP queries: %+v", st)
	}
}

// TestHTTPBatch proves the POST batch dispatch: a body with a pairs
// array is answered as one BatchResponse identical to the in-process
// QueryBatch answer, and an empty-pairs batch is a 400.
func TestHTTPBatch(t *testing.T) {
	e := testEngine(t, "AS1239", 4)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	q := testCaseQuery(t, e, "AS1239")
	b := Batch{Topo: q.Topo, Failure: q.Failure, Pairs: []Pair{{Src: q.Src, Dst: q.Dst}, {Src: q.Dst, Dst: q.Src}}}
	want, err := e.QueryBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	// The direct batch warmed the cache; the transport replay is a hit.
	want.CacheHit = true
	for _, r := range want.Results {
		r.CacheHit = true
	}

	body, _ := json.Marshal(b)
	resp, err := http.Post(srv.URL+"/recover", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got BatchResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("bad batch body %q: %v", raw, err)
	}
	if gotJSON, wantJSON := mustJSON(t, &got), mustJSON(t, want); gotJSON != wantJSON {
		t.Errorf("transport batch differs from in-process batch:\n got  %s\n want %s", gotJSON, wantJSON)
	}

	empty, _ := json.Marshal(Batch{Topo: q.Topo, Failure: q.Failure, Pairs: []Pair{}})
	eres, err := http.Post(srv.URL+"/recover", "application/json", bytes.NewReader(empty))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, eres.Body)
	eres.Body.Close()
	// No pairs means the body is a plain single query — with src ==
	// dst == 0, a client error either way.
	if eres.StatusCode != http.StatusBadRequest {
		t.Errorf("empty-pairs POST: status %d, want 400", eres.StatusCode)
	}
}

// TestHTTPErrors pins the status-code contract: malformed requests
// are 400 with a JSON error, wrong methods 405.
func TestHTTPErrors(t *testing.T) {
	e := testEngine(t, "AS1239", 4)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		name, target string
		status       int
	}{
		{"bad src", "/recover?topo=AS1239&failure=none&src=three&dst=1", http.StatusBadRequest},
		{"unknown topo", "/recover?topo=AS9999&failure=none&src=0&dst=1", http.StatusBadRequest},
		{"bad failure", "/recover?topo=AS1239&failure=disk(&src=0&dst=1", http.StatusBadRequest},
	} {
		resp, err := http.Get(srv.URL + tc.target)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: non-JSON error body: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status || body["error"] == "" {
			t.Errorf("%s: status %d, body %v", tc.name, resp.StatusCode, body)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/recover", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d, want 405", resp.StatusCode)
	}

	// Oversized/garbage POST body is a 400, not a hang or a 500.
	pres, err := http.Post(srv.URL+"/recover", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, pres.Body)
	pres.Body.Close()
	if pres.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage POST: status %d, want 400", pres.StatusCode)
	}
}
