package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/failure"
	"repro/internal/sim"
	"repro/internal/spt"
)

// TestHammerBitIdentical is the concurrency proof for the serving
// layer (run under -race in CI): N goroutines fire the same query mix
// — every scheme, repeated instances, enough distinct instances to
// force LRU evictions mid-flight — against one shared engine, and
// every response must be byte-identical to the serial pass. It runs
// once per phase-2 route engine, so the goal-directed workspaces are
// hammered too.
func TestHammerBitIdentical(t *testing.T) {
	for _, p2 := range []spt.Engine{spt.EngineDijkstra, spt.EngineAStar, spt.EngineALT} {
		t.Run(p2.String(), func(t *testing.T) {
			e, err := New(Config{Topos: []string{"AS1239"}, Seed: testSeed, Phase2: p2, CacheEntries: 2})
			if err != nil {
				t.Fatal(err)
			}
			queries := hammerQueries(t, e, "AS1239")

			// Serial reference pass.
			want := make([]string, len(queries))
			for i, q := range queries {
				resp, err := e.Query(q)
				if err != nil {
					t.Fatalf("serial query %d: %v", i, err)
				}
				resp.CacheHit = false // hit/miss depends on interleaving, not the answer
				want[i] = mustJSON(t, resp)
			}

			const workers = 8
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					// Each worker walks the list at its own offset so
					// the same instant mixes schemes and instances.
					for i := range queries {
						j := (i + wk*3) % len(queries)
						resp, err := e.Query(queries[j])
						if err != nil {
							errs <- fmt.Errorf("worker %d query %d: %v", wk, j, err)
							return
						}
						resp.CacheHit = false
						if got := mustJSON(t, resp); got != want[j] {
							errs <- fmt.Errorf("worker %d query %d diverged:\n got  %s\n want %s", wk, j, got, want[j])
							return
						}
					}
				}(wk)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			st := e.Stats()
			if st.Evictions == 0 {
				t.Error("hammer never evicted; cache pressure too low to prove eviction safety")
			}
			if st.RunnerErrors > 0 {
				t.Errorf("%d runner errors under load", st.RunnerErrors)
			}
		})
	}
}

// hammerQueries builds a deterministic mix: cases from several
// distinct failure instances (more than the cache holds), each asked
// under every scheme.
func hammerQueries(t *testing.T, e *Engine, name string) []Query {
	t.Helper()
	var queries []Query
	for _, s := range []string{SchemeAll, SchemeRTR, SchemeFCP, SchemeMRC} {
		queries = append(queries, mixQueries(e, name, 5, 3, s)...)
	}
	if len(queries) < 4*3*3 {
		t.Fatalf("only %d queries in the hammer mix", len(queries))
	}
	return queries
}

// mixQueries enumerates up to pairs cases from each of `failures`
// distinct random failure instances on the engine's world.
func mixQueries(e *Engine, name string, failures, pairs int, scheme string) []Query {
	w := e.World(name)
	rng := rand.New(rand.NewSource(21))
	var queries []Query
	scenarios := 0
	for draws := 0; scenarios < failures && draws < sim.MaxCollectDraws; draws++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, irr := sim.CasesFromScenario(w, sc)
		cases := append(rec, irr...)
		if len(cases) == 0 {
			continue
		}
		if len(cases) > pairs {
			cases = cases[:pairs]
		}
		for _, c := range cases {
			queries = append(queries, Query{
				Topo: name, Failure: sc.Desc(),
				Src: int(c.Initiator), Dst: int(c.Dst), Scheme: scheme,
			})
		}
		scenarios++
	}
	return queries
}
