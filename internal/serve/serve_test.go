package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/sim"
	"repro/internal/spt"
	"repro/internal/topology"
)

const testSeed = 3

// simRecord computes the sim harness's own projection of one case:
// cold forward truth tree, the three exported runners, Outcome.Record.
// The differential tests compare daemon responses against this, byte
// for byte.
func simRecord(t *testing.T, w *sim.World, c *sim.Case) sim.CaseRecord {
	t.Helper()
	truth := spt.Compute(w.Topo.G, c.Initiator, c.Scenario)
	out := sim.Outcome{Case: c, Truth: truth}
	var err error
	if out.RTR, err = sim.RunRTR(w, c, truth); err != nil && out.Err == nil {
		out.Err = err
	}
	if out.FCP, err = sim.RunFCP(w, c, truth); err != nil && out.Err == nil {
		out.Err = err
	}
	if out.MRC, err = sim.RunMRC(w, c, truth); err != nil && out.Err == nil {
		out.Err = err
	}
	return out.Record()
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDifferentialAllTopologies proves the serving layer is a
// different execution shape, not a different answer: on every bundled
// topology, responses served through the warm-cache engine carry case
// records byte-identical to the sim harness's per-case outcomes.
func TestDifferentialAllTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world per bundled topology")
	}
	for _, name := range topology.ASNames() {
		t.Run(name, func(t *testing.T) {
			e, err := New(Config{Topos: []string{name}, Seed: testSeed, CacheEntries: 8, Check: true})
			if err != nil {
				t.Fatal(err)
			}
			// The grading reference is a separately built world (same
			// deterministic synthesis), so identical answers cannot come
			// from shared in-memory state.
			w, err := sim.NewWorld(name, testSeed)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			checked := 0
			for draws := 0; checked < 12 && draws < sim.MaxCollectDraws; draws++ {
				sc := failure.RandomScenario(w.Topo, rng)
				rec, irr := sim.CasesFromScenario(w, sc)
				for _, c := range append(rec, irr...) {
					if checked >= 12 {
						break
					}
					resp, err := e.Query(Query{
						Topo: name, Failure: c.Scenario.Desc(),
						Src: int(c.Initiator), Dst: int(c.Dst),
					})
					if err != nil {
						t.Fatalf("query (%d -> %d, %s): %v", c.Initiator, c.Dst, c.Scenario.Desc(), err)
					}
					if resp.Disposition != DispRecovery {
						t.Fatalf("enumerated case served as %q", resp.Disposition)
					}
					if resp.Recoverable != c.Recoverable {
						t.Fatalf("recoverable: served %v, sim %v", resp.Recoverable, c.Recoverable)
					}
					if resp.Failure != c.Scenario.Desc() {
						t.Fatalf("fingerprint %q != descriptor %q", resp.Failure, c.Scenario.Desc())
					}
					want := simRecord(t, w, c)
					if got, exp := mustJSON(t, resp.Case), mustJSON(t, &want); got != exp {
						t.Fatalf("case record differs:\n served %s\n sim    %s", got, exp)
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no cases checked")
			}
		})
	}
}

// TestSingleSchemeProjection pins the single-scheme contract: a
// scheme-restricted query runs only that protocol and fills only its
// sub-record, which equals the corresponding slice of the all-scheme
// answer.
func TestSingleSchemeProjection(t *testing.T) {
	e := testEngine(t, "AS1239", 4)
	q := testCaseQuery(t, e, "AS1239")
	all, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var zero sim.CaseRecord
	for _, scheme := range []string{SchemeRTR, SchemeFCP, SchemeMRC} {
		qq := q
		qq.Scheme = scheme
		resp, err := e.Query(qq)
		if err != nil {
			t.Fatal(err)
		}
		got, ref := *resp.Case, *all.Case
		if scheme != SchemeRTR {
			if mustJSON(t, got.RTR) != mustJSON(t, zero.RTR) {
				t.Errorf("%s query filled the RTR sub-record", scheme)
			}
			got.RTR, ref.RTR = zero.RTR, zero.RTR
		}
		if scheme != SchemeFCP {
			got.FCP, ref.FCP = zero.FCP, zero.FCP
		}
		if scheme != SchemeMRC {
			got.MRC, ref.MRC = zero.MRC, zero.MRC
		}
		if mustJSON(t, got) != mustJSON(t, ref) {
			t.Errorf("%s sub-record differs from the all-scheme answer:\n %s\n %s",
				scheme, mustJSON(t, got), mustJSON(t, ref))
		}
	}
}

// TestDefaultSchemeAndRegistryServing pins the -scheme plumbing: an
// unknown default never constructs an engine, a configured default
// answers queries that omit a scheme (through the generic registry
// record for non-builtin schemes), and an explicit query scheme always
// wins over the default.
func TestDefaultSchemeAndRegistryServing(t *testing.T) {
	if _, err := New(Config{Topos: []string{"AS1239"}, Seed: testSeed, DefaultScheme: "ospf"}); err == nil {
		t.Fatal("unknown default scheme must fail construction")
	}
	e, err := New(Config{Topos: []string{"AS1239"}, Seed: testSeed, CacheEntries: 4, DefaultScheme: "rtr-spread"})
	if err != nil {
		t.Fatal(err)
	}
	q := testCaseQuery(t, e, "AS1239")
	resp, err := e.Query(q) // no scheme → the default applies
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scheme != "rtr-spread" || resp.SchemeCase == nil || resp.Case != nil {
		t.Fatalf("defaulted query: scheme=%q schemeCase=%v case=%v", resp.Scheme, resp.SchemeCase, resp.Case)
	}
	explicit := q
	explicit.Scheme = "rtr-spread"
	eresp, err := e.Query(explicit)
	if err != nil {
		t.Fatal(err)
	}
	resp.CacheHit, eresp.CacheHit = false, false // first query warms the converged state
	if mustJSON(t, resp) != mustJSON(t, eresp) {
		t.Error("defaulted and explicit rtr-spread answers differ")
	}
	all := q
	all.Scheme = SchemeAll
	aresp, err := e.Query(all)
	if err != nil {
		t.Fatal(err)
	}
	if aresp.Scheme != SchemeAll || aresp.Case == nil || aresp.SchemeCase != nil {
		t.Errorf("explicit all did not override the default: scheme=%q", aresp.Scheme)
	}
}

// testEngine builds a single-topology engine once per (name, cache)
// pair within a test.
func testEngine(t *testing.T, name string, cacheEntries int) *Engine {
	t.Helper()
	e, err := New(Config{Topos: []string{name}, Seed: testSeed, CacheEntries: cacheEntries})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// testCaseQuery finds one recovery-disposition query on the engine's
// world deterministically.
func testCaseQuery(t *testing.T, e *Engine, name string) Query {
	t.Helper()
	w := e.World(name)
	rng := rand.New(rand.NewSource(5))
	for draws := 0; draws < sim.MaxCollectDraws; draws++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, _ := sim.CasesFromScenario(w, sc)
		if len(rec) == 0 {
			continue
		}
		c := rec[0]
		return Query{Topo: name, Failure: sc.Desc(), Src: int(c.Initiator), Dst: int(c.Dst)}
	}
	t.Fatal("no recoverable case found")
	return Query{}
}

// TestDispositionsAndErrors covers the non-recovery answers and the
// client-error contract.
func TestDispositionsAndErrors(t *testing.T) {
	e := testEngine(t, "AS1239", 4)
	w := e.World("AS1239")
	n := w.Topo.G.NumNodes()

	// A live pair with no failure in the way forwards normally.
	resp, err := e.Query(Query{Topo: "AS1239", Failure: "none", Src: 0, Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disposition != DispForwarded || resp.PathAffected {
		t.Errorf("no-failure query: got %q (affected %v), want forwarded/false", resp.Disposition, resp.PathAffected)
	}
	if resp.ConvergedHops == 0 {
		t.Error("forwarded response missing converged route extras")
	}

	// A failed initiator is a legitimate answer, not an error.
	rng := rand.New(rand.NewSource(9))
	for {
		sc := failure.RandomScenario(w.Topo, rng)
		down := sc.FailedNodes()
		if len(down) == 0 {
			continue
		}
		dst := 0
		if int(down[0]) == dst {
			dst = 1
		}
		resp, err := e.Query(Query{Topo: "AS1239", Failure: sc.Desc(), Src: int(down[0]), Dst: dst})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Disposition != DispInitiatorDown {
			t.Errorf("failed initiator: got %q, want %q", resp.Disposition, DispInitiatorDown)
		}
		break
	}

	// Client mistakes: all four rejection classes are ClientErrors.
	bad := []Query{
		{Topo: "AS9999", Failure: "none", Src: 0, Dst: 1},
		{Topo: "AS1239", Failure: "garbage(", Src: 0, Dst: 1},
		{Topo: "AS1239", Failure: "none", Src: 0, Dst: n},
		{Topo: "AS1239", Failure: "none", Src: 2, Dst: 2},
		{Topo: "AS1239", Failure: "none", Src: 0, Dst: 1, Scheme: "ospf"},
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("query %+v accepted", q)
		} else if _, ok := err.(*ClientError); !ok {
			t.Errorf("query %+v: error %v is not a ClientError", q, err)
		}
	}
	if st := e.Stats(); st.ClientErrors != int64(len(bad)) {
		t.Errorf("client errors: counted %d, want %d", st.ClientErrors, len(bad))
	}
}

// TestCacheKeyCanonicalization proves equivalent spellings of one
// instance share a cache entry: the second query is a hit even though
// its descriptor string differs.
func TestCacheKeyCanonicalization(t *testing.T) {
	e := testEngine(t, "AS1239", 4)
	q := testCaseQuery(t, e, "AS1239")
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	// Respell: the canonical fingerprint itself must round-trip to the
	// same key, and so must a whitespace-padded variant.
	for _, desc := range []string{first.Failure, " " + first.Failure} {
		resp, err := e.Query(Query{Topo: q.Topo, Failure: desc, Src: q.Src, Dst: q.Dst})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.CacheHit {
			t.Errorf("respelled descriptor %q missed the cache", desc)
		}
	}
	st := e.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Errorf("stats: %d misses / %d hits, want 1 / 2", st.CacheMisses, st.CacheHits)
	}
}

// TestBatchMatchesSingles proves the batch path is an amortization,
// not a different answer: each batch result is byte-identical to the
// corresponding single query (modulo the cache-hit flag), and the
// whole batch costs exactly one converged-state lookup.
func TestBatchMatchesSingles(t *testing.T) {
	eb := testEngine(t, "AS1239", 8)
	es := testEngine(t, "AS1239", 8)
	w := eb.World("AS1239")
	rng := rand.New(rand.NewSource(5))
	var b Batch
	for draws := 0; len(b.Pairs) == 0 && draws < sim.MaxCollectDraws; draws++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, irr := sim.CasesFromScenario(w, sc)
		cases := append(rec, irr...)
		if len(cases) < 3 {
			continue
		}
		if len(cases) > 6 {
			cases = cases[:6]
		}
		b = Batch{Topo: "AS1239", Failure: sc.Desc()}
		for _, c := range cases {
			b.Pairs = append(b.Pairs, Pair{Src: int(c.Initiator), Dst: int(c.Dst)})
		}
	}
	if len(b.Pairs) == 0 {
		t.Fatal("no scenario with enough cases")
	}

	resp, err := eb.QueryBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Error("first batch reported a warm lookup")
	}
	if len(resp.Results) != len(b.Pairs) {
		t.Fatalf("%d results for %d pairs", len(resp.Results), len(b.Pairs))
	}
	for i, p := range b.Pairs {
		single, err := es.Query(Query{Topo: b.Topo, Failure: b.Failure, Src: p.Src, Dst: p.Dst})
		if err != nil {
			t.Fatal(err)
		}
		got, want := *resp.Results[i], *single
		got.CacheHit, want.CacheHit = false, false
		if mustJSON(t, &got) != mustJSON(t, &want) {
			t.Errorf("pair %d differs:\n batch  %s\n single %s", i, mustJSON(t, &got), mustJSON(t, &want))
		}
	}

	// Accounting: k queries, 1 batch, 1 lookup (a miss); an identical
	// second batch is 1 more lookup (a hit) and comes back warm.
	st := eb.Stats()
	if st.Batches != 1 || st.Queries != int64(len(b.Pairs)) || st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Errorf("after one batch of %d pairs: %+v", len(b.Pairs), st)
	}
	again, err := eb.QueryBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("repeated batch missed the cache")
	}
	if st := eb.Stats(); st.Batches != 2 || st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Errorf("after the repeated batch: %+v", st)
	}
}

// TestBatchErrors covers the batch rejection classes; all are
// ClientErrors and a malformed batch is rejected whole.
func TestBatchErrors(t *testing.T) {
	e := testEngine(t, "AS1239", 4)
	n := e.World("AS1239").Topo.G.NumNodes()
	big := make([]Pair, MaxBatchPairs+1)
	for i := range big {
		big[i] = Pair{Src: 0, Dst: 1}
	}
	bad := []Batch{
		{Topo: "AS1239", Failure: "none"},
		{Topo: "AS1239", Failure: "none", Pairs: big},
		{Topo: "AS9999", Failure: "none", Pairs: []Pair{{Src: 0, Dst: 1}}},
		{Topo: "AS1239", Failure: "garbage(", Pairs: []Pair{{Src: 0, Dst: 1}}},
		{Topo: "AS1239", Failure: "none", Pairs: []Pair{{Src: 0, Dst: 1}, {Src: 0, Dst: n}}},
		{Topo: "AS1239", Failure: "none", Pairs: []Pair{{Src: 2, Dst: 2}}},
		{Topo: "AS1239", Failure: "none", Pairs: []Pair{{Src: 0, Dst: 1}}, Scheme: "ospf"},
	}
	for _, b := range bad {
		if _, err := e.QueryBatch(b); err == nil {
			t.Errorf("batch with %d pairs (%s/%s/%s) accepted", len(b.Pairs), b.Topo, b.Failure, b.Scheme)
		} else if _, ok := err.(*ClientError); !ok {
			t.Errorf("batch error %v is not a ClientError", err)
		}
	}
	if st := e.Stats(); st.ClientErrors != int64(len(bad)) {
		t.Errorf("client errors: counted %d, want %d", st.ClientErrors, len(bad))
	}
}

// TestScaleWorldServing pins the scale serving path: an injected
// pre-built scale-mode world (lazy tables, no MRC) is served under its
// map key without any Table II synthesis, the mrc scheme is a client
// error on it, and an all-scheme recovery answer marks the MRC
// sub-record skipped while RTR and FCP answer normally.
func TestScaleWorldServing(t *testing.T) {
	ws, err := sim.NewWorldFromConfig(topology.PaperExample(), sim.WorldConfig{
		Scale: true,
		Log:   func(string) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Worlds: map[string]*sim.World{"scale-demo": ws}, CacheEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Topologies(); len(got) != 1 || got[0] != "scale-demo" {
		t.Fatalf("served topologies %v, want [scale-demo]", got)
	}

	if _, err := e.Query(Query{Topo: "scale-demo", Failure: "none", Src: 0, Dst: 1, Scheme: SchemeMRC}); err == nil {
		t.Error("mrc scheme accepted on a world without MRC")
	} else if _, ok := err.(*ClientError); !ok {
		t.Errorf("mrc-unavailable error %v is not a ClientError", err)
	}

	rng := rand.New(rand.NewSource(7))
	served := 0
	for draws := 0; served == 0 && draws < sim.MaxCollectDraws; draws++ {
		sc := failure.RandomScenario(ws.Topo, rng)
		rec, _ := sim.CasesFromScenario(ws, sc)
		if len(rec) == 0 {
			continue
		}
		b := Batch{Topo: "scale-demo", Failure: sc.Desc()}
		for _, c := range rec {
			b.Pairs = append(b.Pairs, Pair{Src: int(c.Initiator), Dst: int(c.Dst)})
		}
		resp, err := e.QueryBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range resp.Results {
			if r.Disposition != DispRecovery || r.Case == nil {
				t.Fatalf("pair %d served as %q", i, r.Disposition)
			}
			if !r.Case.MRC.Skipped {
				t.Errorf("pair %d: MRC sub-record not marked skipped on a scale world", i)
			}
			// Recoverable cases still get RTR's Theorem 2 guarantee —
			// scale mode drops MRC, never the paper's protocol.
			if !r.Case.RTR.Recovered {
				t.Errorf("pair %d: RTR failed to recover a recoverable case", i)
			}
		}
		served = len(resp.Results)
	}
	if served == 0 {
		t.Fatal("no recovery case served on the scale world")
	}
}

// TestLRUEviction drives the engine past its capacity with distinct
// instances and checks eviction accounting and recency order.
func TestLRUEviction(t *testing.T) {
	e := testEngine(t, "AS1239", 2)
	mk := func(i int) Query {
		return Query{Topo: "AS1239", Failure: fmt.Sprintf("links(%d)", i), Src: 0, Dst: 1}
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Query(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.CacheMisses != 4 || st.Evictions != 2 || st.CacheEntries != 2 {
		t.Fatalf("after 4 distinct instances at cap 2: %+v", st)
	}
	// The two most recent instances are warm; the oldest is gone.
	if resp, _ := e.Query(mk(3)); resp == nil || !resp.CacheHit {
		t.Error("most recent instance was evicted")
	}
	if resp, _ := e.Query(mk(0)); resp == nil || resp.CacheHit {
		t.Error("evicted instance reported a cache hit")
	}
}

// TestCacheDisabled pins the cold-baseline mode: capacity 0 disables
// the cache entirely, so identical queries never hit.
func TestCacheDisabled(t *testing.T) {
	e := testEngine(t, "AS1239", 0)
	q := testCaseQuery(t, e, "AS1239")
	a, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.CacheHit || b.CacheHit {
		t.Error("disabled cache reported a hit")
	}
	if mustJSON(t, a.Case) != mustJSON(t, b.Case) {
		t.Error("cold rebuilds disagree with each other")
	}
	// The cold-convergence baseline mode changes the cost, never the
	// answer: full Dijkstra rebuilds serve bit-identical responses.
	cold, err := New(Config{Topos: []string{"AS1239"}, Seed: testSeed, ColdConvergence: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cold.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, c.Case) != mustJSON(t, a.Case) {
		t.Error("cold-convergence baseline answer differs from the incremental answer")
	}
	st := e.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 2 || st.CacheEntries != 0 {
		t.Errorf("disabled-cache stats: %+v", st)
	}
	if HitRate(Stats{}, st) != 0 {
		t.Error("hit rate nonzero with cache disabled")
	}
}
