package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the daemon's HTTP mux:
//
//	GET  /recover?topo=AS7018&failure=disk(1200,900,250)&src=3&dst=41[&scheme=rtr]
//	POST /recover        {"topo": ..., "failure": ..., "src": 3, "dst": 41}
//	POST /recover        {"topo": ..., "failure": ..., "pairs": [{"src":3,"dst":41}, ...]}
//	GET  /healthz        liveness (200 once worlds are loaded)
//	GET  /statsz         counter snapshot (cache hits/misses/evictions)
//
// Responses are JSON; client mistakes are 400 with {"error": ...},
// server-side failures (including invariant violations under -check)
// are 500.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/recover", e.handleRecover)
	mux.HandleFunc("/healthz", e.handleHealthz)
	mux.HandleFunc("/statsz", e.handleStatsz)
	return mux
}

func (e *Engine) handleRecover(w http.ResponseWriter, r *http.Request) {
	var q Query
	switch r.Method {
	case http.MethodGet:
		qs := r.URL.Query()
		q.Topo = qs.Get("topo")
		q.Failure = qs.Get("failure")
		q.Scheme = qs.Get("scheme")
		var err error
		if q.Src, err = strconv.Atoi(qs.Get("src")); err != nil {
			e.badRequest(w, "bad src "+strconv.Quote(qs.Get("src")))
			return
		}
		if q.Dst, err = strconv.Atoi(qs.Get("dst")); err != nil {
			e.badRequest(w, "bad dst "+strconv.Quote(qs.Get("dst")))
			return
		}
	case http.MethodPost:
		var body struct {
			Query
			Pairs []Pair `json:"pairs"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
			e.badRequest(w, "bad request body: "+err.Error())
			return
		}
		// A pairs array makes the request a batch: one failure
		// instance, one cache lookup, many (src, dst) answers.
		if len(body.Pairs) > 0 {
			resp, err := e.QueryBatch(Batch{
				Topo:    body.Topo,
				Failure: body.Failure,
				Scheme:  body.Scheme,
				Pairs:   body.Pairs,
			})
			writeResult(w, resp, err)
			return
		}
		q = body.Query
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET or POST"})
		return
	}
	resp, err := e.Query(q)
	writeResult(w, resp, err)
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (e *Engine) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, e.Stats())
}

// badRequest rejects a request that never became a well-formed Query
// (Engine.Query counts the ones that did).
func (e *Engine) badRequest(w http.ResponseWriter, msg string) {
	e.st.clientErrors.Add(1)
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": msg})
}

// writeResult writes a successful payload, a 400 for client mistakes,
// or a 500 for server-side failures.
func writeResult(w http.ResponseWriter, resp any, err error) {
	if err != nil {
		var ce *ClientError
		if errors.As(err, &ce) {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": ce.Error()})
		} else {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
