// Package serve is the warm-cache recovery serving layer: a
// concurrency-safe query engine over read-only per-topology worlds,
// answering single-pair recovery queries ("after failure F, how does
// src reach dst?") through the paper's protocols. The expensive piece
// of such a query is the post-failure converged state; the engine
// keeps a bounded LRU of it, keyed by the canonical failure-instance
// fingerprint, so a repeated failure costs one delete-only incremental
// recompute and every later query rides the warm entry. Responses are
// byte-identical to the sim harness's per-case outcomes — the serving
// layer is a different execution shape, never a different answer.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/invariant"
	schemes "repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/spt"
	"repro/internal/topology"
)

// Scheme names accepted in queries. Any other name is resolved
// against the recovery-scheme registry (internal/scheme), so every
// registered scheme — congestion-aware variants included — is
// servable without touching this package.
const (
	SchemeRTR = schemes.NameRTR
	SchemeFCP = schemes.NameFCP
	SchemeMRC = schemes.NameMRC
	// SchemeAll runs all three protocols on the case, sharing one
	// ground-truth tree, exactly like the sim harness's RunAll.
	SchemeAll = "all"
)

// Dispositions a query can resolve to. Only DispRecovery carries
// protocol results; the others are legitimate non-case answers, not
// errors.
const (
	// DispRecovery: src is live and its converged next hop toward dst
	// is unreachable — the paper's test-case condition. The response
	// carries the per-protocol outcome record.
	DispRecovery = "recovery"
	// DispForwarded: src's converged next hop is unaffected, so src
	// forwards normally and initiates no recovery (some downstream
	// router may; PathAffected says whether the converged path crosses
	// the failure at all).
	DispForwarded = "forwarded"
	// DispInitiatorDown: src itself is inside the failure.
	DispInitiatorDown = "initiator-down"
	// DispNoRoute: the pre-failure tables hold no src -> dst route.
	DispNoRoute = "no-route"
)

// Config configures an Engine.
type Config struct {
	// Topos are the Table II topology names to serve (all when empty).
	Topos []string
	// Seed is the synthesis seed shared by every topology.
	Seed int64
	// Phase2 selects the route engine the protocol engines are built
	// with (dijkstra, astar, alt — identical outputs).
	Phase2 spt.Engine
	// CacheEntries bounds the converged-state LRU, shared across
	// topologies; <= 0 disables caching entirely (every query rebuilds
	// converged state — the cold baseline).
	CacheEntries int
	// Check runs the invariant oracle on every recovery case served; a
	// violation fails the query with an internal error carrying the
	// repro string.
	Check bool
	// ColdConvergence selects the benchmark baseline mode: converged
	// state is rebuilt with a full per-destination Dijkstra instead of
	// the delete-only incremental recompute. Answers are identical;
	// combined with CacheEntries <= 0 this prices what serving a query
	// costs when every query pays cold convergence — the baseline the
	// warm-cache speedup is quoted against.
	ColdConvergence bool
	// Worlds, when non-empty, are served as-is under their map keys in
	// addition to (and instead of, when Topos is empty) the synthesized
	// Table II set. This is the scale path: load a binary snapshot,
	// build a scale-mode world once, and serve it — the engine never
	// synthesizes a 10^5-node topology itself.
	Worlds map[string]*sim.World
	// DefaultScheme answers queries that omit a scheme ("all" when
	// empty). Any registered scheme name or "all"; New fails fast on an
	// unknown name so a misconfigured daemon never starts.
	DefaultScheme string
}

// Engine answers recovery queries over a fixed set of worlds. Worlds
// and protocol engines are immutable after construction; per-request
// scratch comes from the spt workspace pool and per-case session
// state, so one Engine serves any number of goroutines.
type Engine struct {
	worlds    map[string]*sim.World
	names     []string
	cache     *lru
	check     bool
	cold      bool
	defScheme string
	st        stats
}

// New loads one world per requested topology (in parallel — world
// construction is the daemon's startup cost) and returns the engine.
func New(cfg Config) (*Engine, error) {
	names := cfg.Topos
	if len(names) == 0 && len(cfg.Worlds) == 0 {
		names = topology.ASNames()
	}
	e := &Engine{
		worlds:    make(map[string]*sim.World, len(names)+len(cfg.Worlds)),
		cache:     newLRU(cfg.CacheEntries),
		check:     cfg.Check,
		cold:      cfg.ColdConvergence,
		defScheme: cfg.DefaultScheme,
	}
	if e.defScheme != "" && e.defScheme != SchemeAll {
		if _, err := schemes.Get(e.defScheme); err != nil {
			return nil, err
		}
	}
	for name, w := range cfg.Worlds {
		e.worlds[name] = w
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	for _, name := range names {
		if _, ok := e.worlds[name]; ok {
			continue // an injected world takes precedence over synthesis
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			w, err := sim.NewWorldPhase2(name, cfg.Seed, cfg.Phase2)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			e.worlds[name] = w
		}(name)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	e.names = make([]string, 0, len(e.worlds))
	for name := range e.worlds {
		e.names = append(e.names, name)
	}
	sort.Strings(e.names)
	return e, nil
}

// Topologies returns the sorted topology names the engine serves.
func (e *Engine) Topologies() []string { return e.names }

// World returns the engine's world for a topology (nil when not
// served). Tests use it to grade responses against direct sim runs.
func (e *Engine) World(name string) *sim.World { return e.worlds[name] }

// Query is one recovery question.
type Query struct {
	// Topo names the topology; Failure is a failure-instance
	// descriptor in failure.ParseInstance's grammar (any equivalent
	// spelling of the same instance hits the same cache entry — the
	// key is the canonical round-trip fingerprint, not the input).
	Topo    string `json:"topo"`
	Failure string `json:"failure"`
	// Src and Dst are the pair, as node indices.
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Scheme is rtr, fcp, mrc, or all (the default when empty).
	Scheme string `json:"scheme,omitempty"`
}

// Response is the engine's answer.
type Response struct {
	Topo string `json:"topo"`
	// Failure is the canonical instance fingerprint, usable verbatim
	// as a future Query.Failure or a failure.ParseInstance input.
	Failure     string `json:"failure"`
	Src         int    `json:"src"`
	Dst         int    `json:"dst"`
	Scheme      string `json:"scheme"`
	Disposition string `json:"disposition"`
	// Recoverable is the ground-truth classification (recovery
	// disposition only).
	Recoverable bool `json:"recoverable,omitempty"`
	// CacheHit reports whether the converged state was already warm.
	CacheHit bool `json:"cache_hit,omitempty"`
	// PathAffected (forwarded disposition only) reports whether the
	// converged src -> dst path crosses the failure downstream — i.e.
	// some other router on the path is a recovery initiator for this
	// traffic even though src is not.
	PathAffected bool `json:"path_affected,omitempty"`
	// ConvergedCost and ConvergedHops describe the post-convergence
	// src -> dst route on the surviving topology (what the IGP will
	// use once it converges; absent when dst is down or unreachable).
	ConvergedCost float64 `json:"converged_cost,omitempty"`
	ConvergedHops int     `json:"converged_hops,omitempty"`
	// Case carries the per-protocol outcome record for recovery
	// dispositions, byte-identical to the sim harness's projection of
	// the same case. Single-scheme queries fill only their protocol's
	// sub-record.
	Case *sim.CaseRecord `json:"case,omitempty"`
	// SchemeCase carries a registered non-builtin scheme's outcome
	// (e.g. rtr-spread) for recovery dispositions; Case stays empty for
	// those queries.
	SchemeCase *SchemeRecord `json:"scheme_case,omitempty"`
}

// SchemeRecord is the generic projection a non-builtin registered
// scheme answers with.
type SchemeRecord struct {
	Delivered      bool    `json:"delivered"`
	Optimal        bool    `json:"optimal,omitempty"`
	Stretch        float64 `json:"stretch,omitempty"`
	SPCalcs        int     `json:"sp_calcs,omitempty"`
	NoLiveNeighbor bool    `json:"no_live_neighbor,omitempty"`
}

// ClientError marks a query the engine rejected as malformed (unknown
// topology, bad failure descriptor, out-of-range pair, bad scheme) —
// an HTTP 400, distinct from server-side failures.
type ClientError struct{ Msg string }

func (e *ClientError) Error() string { return e.Msg }

func badRequestf(format string, args ...any) error {
	return &ClientError{Msg: fmt.Sprintf(format, args...)}
}

// Query answers one recovery question. Safe for concurrent use.
func (e *Engine) Query(q Query) (*Response, error) {
	e.st.queries.Add(1)
	resp, err := e.query(q)
	if err != nil {
		var ce *ClientError
		if errors.As(err, &ce) {
			e.st.clientErrors.Add(1)
		}
		return nil, err
	}
	return resp, nil
}

func (e *Engine) query(q Query) (*Response, error) {
	w := e.worlds[q.Topo]
	if w == nil {
		return nil, badRequestf("unknown topology %q (serving %s)", q.Topo, strings.Join(e.names, ", "))
	}
	scheme, err := checkScheme(w, e.orDefault(q.Scheme))
	if err != nil {
		return nil, err
	}
	if err := checkPair(w, q.Topo, q.Src, q.Dst); err != nil {
		return nil, err
	}
	en, hit, err := e.lookupEntry(w, q.Topo, q.Failure)
	if err != nil {
		return nil, err
	}
	return e.answerPair(w, q.Topo, en, hit, scheme, q.Src, q.Dst)
}

// orDefault substitutes the engine's configured default scheme for an
// omitted one; an explicit query scheme always wins.
func (e *Engine) orDefault(scheme string) string {
	if scheme == "" {
		return e.defScheme
	}
	return scheme
}

// checkScheme validates and defaults a query's scheme against the
// world it will run on, resolving any non-"all" name through the
// scheme registry. Capability flags are honored here: a scheme whose
// Prepare rejects the world (mrc on a scale-mode world without an MRC
// engine) is a client error, not a server failure.
func checkScheme(w *sim.World, scheme string) (string, error) {
	if scheme == "" {
		scheme = SchemeAll
	}
	if scheme == SchemeAll {
		return scheme, nil
	}
	s, err := schemes.Get(scheme)
	if err != nil {
		return "", badRequestf("%v (or all)", err)
	}
	if err := s.Prepare(w); err != nil {
		return "", badRequestf("%v", err)
	}
	return scheme, nil
}

// builtinScheme reports a scheme the response answers through the
// typed sim.CaseRecord projection; every other registered scheme
// answers through the generic SchemeRecord.
func builtinScheme(scheme string) bool {
	switch scheme {
	case SchemeAll, SchemeRTR, SchemeFCP, SchemeMRC:
		return true
	}
	return false
}

func checkPair(w *sim.World, topo string, src, dst int) error {
	n := w.Topo.G.NumNodes()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return badRequestf("pair (%d, %d) out of range on %s (%d nodes)", src, dst, topo, n)
	}
	if src == dst {
		return badRequestf("source and destination are both %d", src)
	}
	return nil
}

// lookupEntry canonicalizes the failure descriptor, performs the one
// converged-state cache lookup, and warms the entry — the unit of work
// a batch amortizes over all its pairs. Every spelling of the same
// instance (reordered terms, trailing zeros) maps to one fingerprint
// and therefore one cache entry.
func (e *Engine) lookupEntry(w *sim.World, topoName, failureDesc string) (*entry, bool, error) {
	// Canonical-descriptor fast path: a client replaying a fingerprint
	// the engine handed back (Response.Failure) hits the cached entry
	// without re-parsing and re-composing the instance — at 10^5 nodes
	// that compose is the dominant per-query cost on a warm entry.
	if en, ok := e.cache.hit(topoName + "\x00" + failureDesc); ok {
		e.st.hits.Add(1)
		en.warm(w, e.cold)
		return en, true, nil
	}
	sc, err := failure.ParseInstance(w.Topo, failureDesc)
	if err != nil {
		return nil, false, &ClientError{Msg: err.Error()}
	}
	fp := sc.Desc()
	en, hit, evicted := e.cache.get(topoName+"\x00"+fp, func() *entry { return newEntry(topoName+"\x00"+fp, fp, sc) })
	if hit {
		e.st.hits.Add(1)
	} else {
		e.st.misses.Add(1)
	}
	if evicted > 0 {
		e.st.evictions.Add(int64(evicted))
	}
	en.warm(w, e.cold)
	return en, hit, nil
}

// answerPair answers one (src, dst) pair on a warmed entry. topoName
// is the serving name (the worlds map key, which an injected world may
// carry independently of its topology's own name).
func (e *Engine) answerPair(w *sim.World, topoName string, en *entry, hit bool, scheme string, qsrc, qdst int) (*Response, error) {
	resp := &Response{Topo: topoName, Failure: en.fp, Src: qsrc, Dst: qdst, Scheme: scheme, CacheHit: hit}
	src, dst := graph.NodeID(qsrc), graph.NodeID(qdst)
	if en.sc.NodeDown(src) {
		resp.Disposition = DispInitiatorDown
		return resp, nil
	}
	nh, link, ok := w.Tables.NextHop(src, dst)
	if !ok {
		resp.Disposition = DispNoRoute
		return resp, nil
	}
	fillConverged(resp, en, src, dst)
	if !en.lv.NeighborUnreachable(src, link) {
		resp.Disposition = DispForwarded
		if affected, err := w.Tables.PathFails(src, dst, en.sc); err == nil {
			resp.PathAffected = affected
		}
		return resp, nil
	}

	// A genuine recovery case: identical, field for field, to the one
	// sim.CasesFromScenario would enumerate for this triple.
	resp.Disposition = DispRecovery
	c := &sim.Case{
		Scenario:    en.sc,
		LV:          en.lv,
		Initiator:   src,
		Dst:         dst,
		NextHop:     nh,
		Trigger:     link,
		Recoverable: en.recoverable(src, dst),
	}
	resp.Recoverable = c.Recoverable

	truth := en.truthFor(w, src, e.cold)
	out := sim.Outcome{Case: c, Truth: truth}
	var err, firstErr error
	if scheme == SchemeAll || scheme == SchemeRTR {
		// RTR rides the entry's memoized session: one phase-1 walk and
		// one pruned-view shortest-path computation per (initiator,
		// trigger), shared across every query and batch member asking
		// about that pair of coordinates. The route buffer is per-call —
		// the prepared session itself is read-only.
		se := en.sessionFor(w, src, link)
		switch {
		case se.err != nil:
			firstErr = se.err
		case se.noLive:
			out.RTR = sim.RTRResult{NoLiveNeighbor: true}
		default:
			var rt core.Route
			out.RTR = sim.RunRTRSession(w, c, se.sess, se.col, &rt, truth)
		}
	}
	if scheme == SchemeAll || scheme == SchemeFCP {
		if out.FCP, err = sim.RunFCP(w, c, truth); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if scheme == SchemeAll || scheme == SchemeMRC {
		if out.MRC, err = sim.RunMRC(w, c, truth); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	var extra *SchemeRecord
	if !builtinScheme(scheme) {
		s, serr := schemes.Get(scheme)
		if serr != nil {
			return nil, serr // unreachable: checkScheme already resolved it
		}
		r, serr := s.Run(w, c, truth)
		if serr != nil && firstErr == nil {
			firstErr = serr
		} else if serr == nil {
			extra = &SchemeRecord{
				Delivered:      r.Delivered,
				Optimal:        r.Optimal,
				Stretch:        r.Stretch,
				SPCalcs:        r.SPCalcs,
				NoLiveNeighbor: r.NoLiveNeighbor,
			}
		}
	}
	out.Err = firstErr
	if firstErr != nil {
		e.st.runnerErrors.Add(1)
	} else if e.check {
		e.st.checked.Add(1)
		prof := invariant.Profile{SinglePerimeter: !en.multiCluster}
		if vs := invariant.New(w).WithProfile(prof).CheckCase(c); len(vs) > 0 {
			e.st.violations.Add(int64(len(vs)))
			return nil, fmt.Errorf("serve: %w", vs[0])
		}
	}
	if extra != nil {
		resp.SchemeCase = extra
		return resp, nil
	}
	rec := out.Record()
	resp.Case = &rec
	return resp, nil
}

// Pair is one (src, dst) member of a batch.
type Pair struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Batch asks many (src, dst) pairs against one failure descriptor on
// one topology. The whole batch costs a single converged-state cache
// lookup and at most one warm-up; per-pair work is only the tail
// (next-hop probe, protocol runs for genuine recovery cases).
type Batch struct {
	Topo    string `json:"topo"`
	Failure string `json:"failure"`
	Scheme  string `json:"scheme,omitempty"`
	Pairs   []Pair `json:"pairs"`
}

// MaxBatchPairs bounds one batch (a client wanting more splits it;
// each split still usually hits the warm entry).
const MaxBatchPairs = 4096

// BatchResponse is the engine's answer to a Batch: one Response per
// pair, in input order.
type BatchResponse struct {
	Topo    string `json:"topo"`
	Failure string `json:"failure"`
	Scheme  string `json:"scheme"`
	// CacheHit reports whether the batch's one converged-state lookup
	// was warm.
	CacheHit bool        `json:"cache_hit,omitempty"`
	Results  []*Response `json:"results"`
}

// QueryBatch answers a batch of pairs sharing one failure instance.
// Safe for concurrent use. Each pair counts as one query in the stats;
// the batch performs exactly one cache lookup.
func (e *Engine) QueryBatch(b Batch) (*BatchResponse, error) {
	e.st.batches.Add(1)
	e.st.queries.Add(int64(len(b.Pairs)))
	resp, err := e.queryBatch(b)
	if err != nil {
		var ce *ClientError
		if errors.As(err, &ce) {
			e.st.clientErrors.Add(1)
		}
		return nil, err
	}
	return resp, nil
}

func (e *Engine) queryBatch(b Batch) (*BatchResponse, error) {
	if len(b.Pairs) == 0 {
		return nil, badRequestf("batch carries no pairs")
	}
	if len(b.Pairs) > MaxBatchPairs {
		return nil, badRequestf("batch carries %d pairs (limit %d)", len(b.Pairs), MaxBatchPairs)
	}
	w := e.worlds[b.Topo]
	if w == nil {
		return nil, badRequestf("unknown topology %q (serving %s)", b.Topo, strings.Join(e.names, ", "))
	}
	scheme, err := checkScheme(w, e.orDefault(b.Scheme))
	if err != nil {
		return nil, err
	}
	// Validate every pair before any work: a malformed batch is
	// rejected whole rather than answered halfway.
	for _, p := range b.Pairs {
		if err := checkPair(w, b.Topo, p.Src, p.Dst); err != nil {
			return nil, err
		}
	}
	en, hit, err := e.lookupEntry(w, b.Topo, b.Failure)
	if err != nil {
		return nil, err
	}
	out := &BatchResponse{
		Topo:     b.Topo,
		Failure:  en.fp,
		Scheme:   scheme,
		CacheHit: hit,
		Results:  make([]*Response, 0, len(b.Pairs)),
	}
	for _, p := range b.Pairs {
		r, err := e.answerPair(w, b.Topo, en, hit, scheme, p.Src, p.Dst)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, r)
	}
	return out, nil
}

// fillConverged attaches the post-convergence route extras when the
// destination is live and reachable on the surviving topology.
func fillConverged(resp *Response, en *entry, src, dst graph.NodeID) {
	if en.sc.NodeDown(dst) {
		return
	}
	if cost, ok := en.post.Dist(src, dst); ok {
		resp.ConvergedCost = cost
		if h, ok := en.post.Hops(src, dst); ok {
			resp.ConvergedHops = h
		}
	}
}
