package serve

import "sync/atomic"

// stats is the engine's atomic counter block. Counters only ever
// increase; Snapshot reads them individually (no cross-counter
// atomicity is needed — consumers compute rates from deltas of two
// snapshots, which tolerates torn reads across counters).
type stats struct {
	queries      atomic.Int64
	batches      atomic.Int64
	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	clientErrors atomic.Int64
	runnerErrors atomic.Int64
	checked      atomic.Int64
	violations   atomic.Int64
}

// Stats is one observation of the engine's counters, served by
// /statsz. CacheHits + CacheMisses counts converged-state lookups
// (only queries that reach the cache: eligible topology, parseable
// failure instance); Evictions counts LRU entries dropped to capacity.
type Stats struct {
	// Queries counts every Query call, whatever its outcome. A batch
	// counts one query per pair.
	Queries int64 `json:"queries"`
	// Batches counts QueryBatch calls (each is one cache lookup for
	// all its pairs).
	Batches int64 `json:"batches,omitempty"`
	// CacheHits counts queries answered from a warm converged-state
	// entry (including queries that waited on another request's
	// in-flight warm-up rather than recomputing).
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts queries that had to warm a converged-state
	// entry via the incremental recompute path.
	CacheMisses int64 `json:"cache_misses"`
	// Evictions counts entries dropped from the LRU to stay within
	// capacity.
	Evictions int64 `json:"evictions"`
	// CacheEntries is the current number of cached converged states.
	CacheEntries int64 `json:"cache_entries"`
	// ClientErrors counts rejected queries (unknown topology, bad
	// failure descriptor, out-of-range pair, bad scheme).
	ClientErrors int64 `json:"client_errors"`
	// RunnerErrors counts protocol-runner errors carried inside
	// otherwise-successful responses (the per-case Err field).
	RunnerErrors int64 `json:"runner_errors"`
	// Checked and Violations count invariant-oracle runs and the
	// violations they found (always 0 unless the engine runs with
	// Check).
	Checked    int64 `json:"checked,omitempty"`
	Violations int64 `json:"violations,omitempty"`
}

// Stats returns the current counter snapshot.
func (e *Engine) Stats() Stats {
	return Stats{
		Queries:      e.st.queries.Load(),
		Batches:      e.st.batches.Load(),
		CacheHits:    e.st.hits.Load(),
		CacheMisses:  e.st.misses.Load(),
		Evictions:    e.st.evictions.Load(),
		CacheEntries: int64(e.cache.len()),
		ClientErrors: e.st.clientErrors.Load(),
		RunnerErrors: e.st.runnerErrors.Load(),
		Checked:      e.st.checked.Load(),
		Violations:   e.st.violations.Load(),
	}
}

// HitRate returns the warm-cache hit fraction of the lookups between
// two snapshots (0 when no lookups happened in the window).
func HitRate(before, after Stats) float64 {
	hits := after.CacheHits - before.CacheHits
	total := hits + after.CacheMisses - before.CacheMisses
	if total <= 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
