package serve

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestWarmRepeatQueryFast is the first-touch regression test for the
// serving path at scale: the first query against a failure pays entry
// warm-up, lazy-table materialization, phase-1 collection, and the
// pruned-view shortest-path computation; a repeat of the same query
// must ride the memoized entry *and* the memoized prepared session
// (plus the canonical-descriptor fast path that skips re-parsing the
// instance), making it orders of magnitude cheaper — and byte-identical
// apart from the cache-hit marker. Before the per-entry session
// memoization every repeat re-paid the session's shortest-path
// recompute and the descriptor parse (~12 ms/op at 3×10^4 nodes,
// ~0.6 s first-touch flavors at 10^5).
func TestWarmRepeatQueryFast(t *testing.T) {
	if testing.Short() {
		t.Skip("scale world build in -short mode")
	}
	topo, err := topology.Generate(
		topology.GenParams{Name: "big", Nodes: 20000, Links: 60000, Tiers: true},
		rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.NewWorldFromConfig(topo, sim.WorldConfig{Scale: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Worlds: map[string]*sim.World{"big": w}, CacheEntries: 4})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	var q Query
	for draws := 0; q.Failure == "" && draws < 50; draws++ {
		sc := failure.RandomScenario(topo, rng)
		rec, _ := sim.ScaleCasesFromScenario(w, sc, rng, 8)
		if len(rec) > 0 {
			c := rec[0]
			q = Query{Topo: "big", Failure: sc.Desc(), Scheme: SchemeRTR,
				Src: int(c.Initiator), Dst: int(c.Dst)}
		}
	}
	if q.Failure == "" {
		t.Fatal("no recovery case drawn")
	}

	start := time.Now()
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	firstTouch := time.Since(start)
	if first.Disposition != DispRecovery {
		t.Fatalf("disposition %q, want recovery", first.Disposition)
	}

	const reps = 50
	start = time.Now()
	var warm *Response
	for i := 0; i < reps; i++ {
		if warm, err = e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	warmOp := time.Since(start) / reps
	t.Logf("first touch %v, warm repeat %v/op", firstTouch, warmOp)

	// "Orders of magnitude": the warm repeat shares the entry, the
	// parsed instance, and the prepared session, so only the
	// per-destination tail remains. A 500× floor leaves wide scheduling
	// slack while still failing if any of the three memoizations
	// regresses to per-query cost.
	if warmOp > firstTouch/500 {
		t.Errorf("warm repeat %v/op, want < first touch %v / 500", warmOp, firstTouch)
	}
	if !warm.CacheHit {
		t.Error("repeat query missed the converged-state cache")
	}

	// Byte-identical answers: only the cache-hit marker may differ.
	first.CacheHit = false
	warm.CacheHit = false
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(warm)
	if string(a) != string(b) {
		t.Errorf("warm answer differs from first-touch answer:\n%s\n%s", a, b)
	}
}
