package serve

import (
	"container/list"
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/spt"
)

// entry is one cached post-failure converged state: everything about a
// failure instance that is independent of the queried pair. The
// expensive pieces are built exactly once under the entry's sync.Once
// — concurrent requests for the same instance wait for one warm-up
// instead of racing N incremental recomputes — and the entry is
// immutable afterwards, so requests still holding it after an LRU
// eviction keep working on valid state.
type entry struct {
	// key is the topology-qualified cache key; fp is the canonical
	// instance fingerprint (Scenario.Desc() of the ParseInstance round
	// trip) it embeds.
	key string
	fp  string
	sc  *failure.Scenario

	once sync.Once
	lv   *routing.LocalView
	// post is the converged routing state of the surviving topology,
	// warmed from the pre-failure tables by the delete-only incremental
	// recompute (bit-identical to a cold build; see routing.Recompute-
	// TablesUnder). It supplies the Recoverable classification —
	// reverse-tree reachability equals component membership on the
	// undirected surviving graph — and the converged cost/hops extras.
	post *routing.Tables
	// multiCluster records whether the failure mask splits into more
	// than one perimeter cluster, which selects the invariant profile
	// (the single-perimeter checks assume one connected region).
	multiCluster bool

	// truth holds the per-initiator forward ground-truth trees the
	// protocol runners grade against. Grading must NOT read costs from
	// post: a reverse tree can pick an equal-cost path whose float sum
	// differs in the last ulp from the forward tree's, and the serving
	// layer promises byte-identical outcomes to the sim harness — so it
	// warms each tree exactly the way sim does, from the initiator's
	// clean tree via the delete-only recompute.
	mu    sync.Mutex
	truth map[graph.NodeID]*truthEntry

	// sessions holds the prepared RTR sessions, one per (initiator,
	// trigger): phase-1 collection and the pruned-view shortest-path
	// work run once per key and every later query for the same pair of
	// coordinates — within a batch or across repeated queries — shares
	// the read-only result. Growth is bounded by the failure's
	// perimeter: only initiators adjacent to the failure ever open a
	// session, and triggers are their incident failed links.
	sessMu   sync.Mutex
	sessions map[sessKey]*sessEntry
}

type truthEntry struct {
	once sync.Once
	tree *spt.Tree
}

// sessKey coordinates one shared recovery session within an entry (the
// entry already pins the scenario and its LocalView).
type sessKey struct {
	init    graph.NodeID
	trigger graph.LinkID
}

// sessEntry is one memoized session with its collection outcome
// classified exactly like sim's batched runner: a session error, a
// fully cut-off initiator, or a prepared share-safe session.
type sessEntry struct {
	once   sync.Once
	sess   *core.Session
	col    *core.CollectResult
	noLive bool
	err    error
}

func newEntry(key, fp string, sc *failure.Scenario) *entry {
	return &entry{
		key: key, fp: fp, sc: sc,
		truth:    make(map[graph.NodeID]*truthEntry),
		sessions: make(map[sessKey]*sessEntry),
	}
}

// sessionFor returns the shared session for (initiator, trigger),
// opening, collecting, and preparing it on first use. After the
// sync.Once completes the session is read-only (core.Session.Prepare's
// contract), so any number of queries extract routes from it
// concurrently with their own route buffers. The classification
// mirrors sim.RunAllN's group head, keeping served outcomes
// byte-identical to the per-case runner.
func (en *entry) sessionFor(w *sim.World, init graph.NodeID, trigger graph.LinkID) *sessEntry {
	k := sessKey{init: init, trigger: trigger}
	en.sessMu.Lock()
	se := en.sessions[k]
	if se == nil {
		se = &sessEntry{}
		en.sessions[k] = se
	}
	en.sessMu.Unlock()
	se.once.Do(func() {
		sess, err := w.RTR.NewSession(en.lv, init)
		if err != nil {
			se.err = err
			return
		}
		col, err := sess.Collect(trigger)
		switch {
		case errors.Is(err, core.ErrNoLiveNeighbor):
			se.noLive = true
		case err != nil:
			se.err = err
		default:
			sess.Prepare()
			se.sess, se.col = sess, col
		}
	})
	return se
}

// warm builds the converged post-failure state on first use. cold
// selects the baseline mode: a full per-destination Dijkstra rebuild
// instead of the delete-only incremental recompute — identical output
// (the incremental update is bit-identical by construction), only the
// cost differs, which is exactly what the serving benchmark's
// cold-convergence-per-query baseline measures.
func (en *entry) warm(w *sim.World, cold bool) {
	en.once.Do(func() {
		en.lv = routing.NewLocalView(w.Topo, en.sc)
		if cold {
			en.post = routing.ComputeTablesUnder(w.Topo, en.sc)
		} else {
			en.post = routing.RecomputeTablesUnder(w.Topo, w.Tables, en.sc)
		}
		en.multiCluster = len(en.sc.Clusters()) > 1
	})
}

// truthFor returns the shared forward ground-truth tree rooted at the
// initiator, computing it on first use exactly as sim's truth cache
// does (cold mode pays the cold Dijkstra instead; same tree either
// way). Workers needing different initiators proceed in parallel;
// workers needing the same one wait for a single computation.
func (en *entry) truthFor(w *sim.World, init graph.NodeID, cold bool) *spt.Tree {
	en.mu.Lock()
	te := en.truth[init]
	if te == nil {
		te = &truthEntry{}
		en.truth[init] = te
	}
	en.mu.Unlock()
	te.once.Do(func() {
		if cold {
			te.tree = spt.Compute(w.Topo.G, init, en.sc)
		} else {
			te.tree = spt.Recompute(w.Topo.G, w.RTR.CleanTree(init), graph.Nothing, en.sc)
		}
	})
	return te.tree
}

// recoverable is the ground-truth classification of a pair under the
// entry's failure: destination live and in the initiator's component.
func (en *entry) recoverable(src, dst graph.NodeID) bool {
	if en.sc.NodeDown(dst) {
		return false
	}
	_, ok := en.post.Dist(src, dst)
	return ok
}

// lru is the bounded converged-state cache, shared across topologies
// (keys carry the topology name). Plain list+map+mutex: lookups touch
// only pointers; all heavy work happens outside the lock under the
// entries' own sync.Onces.
type lru struct {
	cap int
	mu  sync.Mutex
	ll  *list.List               // front = most recently used
	m   map[string]*list.Element // key -> element holding *entry
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the entry under key, inserting a fresh one built by mk
// on a miss, and reports whether it was already present plus how many
// entries the insertion evicted. With capacity <= 0 the cache is
// disabled: every call is a miss that builds throwaway state — the
// cold-convergence baseline the serving benchmark measures against.
func (c *lru) get(key string, mk func() *entry) (en *entry, hit bool, evicted int) {
	if c.cap <= 0 {
		return mk(), false, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry), true, 0
	}
	en = mk()
	c.m[key] = c.ll.PushFront(en)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, keyOf(back))
		evicted++
	}
	return en, false, evicted
}

// hit returns the entry already cached under key without inserting
// anything on a miss. This is the canonical-descriptor fast path: only
// canonical fingerprints are ever inserted as keys, so a hit proves
// the caller's descriptor is already canonical and the per-query
// parse/compose of the failure instance can be skipped entirely.
func (c *lru) hit(key string) (*entry, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry), true
	}
	return nil, false
}

// keyOf recovers the map key of an element about to be evicted. The
// key is the topology-qualified fingerprint; the entry stores only the
// fingerprint, so the element value carries the full key alongside.
func keyOf(el *list.Element) string { return el.Value.(*entry).key }

func (c *lru) len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
