// Package par provides the tiny work-distribution primitives the
// simulator's embarrassingly parallel loops share: per-destination
// routing table builds, MRC's per-configuration tree matrix, and the
// test-case runner all fan out over an index space with no
// cross-iteration dependencies.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), distributed over up to
// `workers` goroutines (GOMAXPROCS when workers <= 0). Iterations are
// claimed from a shared atomic counter, so uneven iteration costs
// balance automatically. For returns when all iterations are done.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
