// Package par provides the tiny work-distribution primitives the
// simulator's embarrassingly parallel loops share: per-destination
// routing table builds, MRC's per-configuration tree matrix, and the
// test-case runner all fan out over an index space with no
// cross-iteration dependencies.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), distributed over up to
// `workers` goroutines (GOMAXPROCS when workers <= 0). Iterations are
// claimed from a shared atomic counter, so uneven iteration costs
// balance automatically. For returns when all iterations are done.
func For(n, workers int, fn func(i int)) {
	ForContext(context.Background(), n, workers, fn)
}

// ForContext is For with cooperative cancellation: once ctx is done,
// workers stop claiming new iterations, but every iteration already
// claimed runs to completion — the graceful-drain semantics the sweep
// engine's SIGINT handling needs (a shard is either fully executed and
// checkpointed or not started; never half-done). Iterations are
// claimed in ascending order. ForContext returns the number of
// iterations that ran.
func ForContext(ctx context.Context, n, workers int, fn func(i int)) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return i
			}
			fn(i)
		}
		return n
	}
	var next, ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
				ran.Add(1)
			}
		}()
	}
	wg.Wait()
	return int(ran.Load())
}
