package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, runtime.GOMAXPROCS(0) + 2} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-3, 4, func(int) { called = true })
	if called {
		t.Error("fn must not be called for empty ranges")
	}
}
