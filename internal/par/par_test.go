package par

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, runtime.GOMAXPROCS(0) + 2} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-3, 4, func(int) { called = true })
	if called {
		t.Error("fn must not be called for empty ranges")
	}
}

func TestForContextCompletesWithoutCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 500
		hits := make([]atomic.Int32, n)
		ran := ForContext(context.Background(), n, workers, func(i int) { hits[i].Add(1) })
		if ran != n {
			t.Fatalf("workers=%d: ran = %d, want %d", workers, ran, n)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

// TestForContextCancelDrains cancels mid-run: no index may run twice,
// claimed iterations must finish (the reported count matches the
// number of fn completions), and the loop must stop early.
func TestForContextCancelDrains(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 10000
		ctx, cancel := context.WithCancel(context.Background())
		hits := make([]atomic.Int32, n)
		var completions atomic.Int64
		ran := ForContext(ctx, n, workers, func(i int) {
			hits[i].Add(1)
			if completions.Add(1) == 50 {
				cancel()
			}
		})
		cancel()
		if int64(ran) != completions.Load() {
			t.Fatalf("workers=%d: reported %d ran, counted %d completions", workers, ran, completions.Load())
		}
		if ran >= n {
			t.Fatalf("workers=%d: cancellation did not stop the loop (%d/%d ran)", workers, ran, n)
		}
		for i := range hits {
			if got := hits[i].Load(); got > 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

// TestForContextSerialCancelIsPrefix asserts the single-worker drain
// property the resume smoke test relies on: with one worker the
// completed set is exactly the prefix [0, ran).
func TestForContextSerialCancelIsPrefix(t *testing.T) {
	const n = 100
	ctx, cancel := context.WithCancel(context.Background())
	var seen []int
	ran := ForContext(ctx, n, 1, func(i int) {
		seen = append(seen, i)
		if i == 6 {
			cancel()
		}
	})
	if ran != 7 || len(seen) != 7 {
		t.Fatalf("ran = %d, seen = %v, want prefix of length 7", ran, seen)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("seen = %v, want ascending prefix", seen)
		}
	}
}
