package failure

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
)

func TestPaperScenario(t *testing.T) {
	topo := topology.PaperExample()
	s := NewScenario(topo, topology.PaperFailureArea())

	if got := s.FailedNodes(); len(got) != 1 || got[0] != topology.PaperNode(10) {
		t.Errorf("FailedNodes = %v, want [v10]", got)
	}
	wantLinks := map[graph.LinkID]bool{
		topology.PaperLink(topo, 5, 10):  true,
		topology.PaperLink(topo, 9, 10):  true,
		topology.PaperLink(topo, 10, 11): true,
		topology.PaperLink(topo, 10, 14): true,
		topology.PaperLink(topo, 6, 11):  true,
		topology.PaperLink(topo, 4, 11):  true,
	}
	got := s.FailedLinks()
	if len(got) != len(wantLinks) {
		t.Fatalf("FailedLinks = %v, want %d links", got, len(wantLinks))
	}
	for _, id := range got {
		if !wantLinks[id] {
			t.Errorf("unexpected failed link %v", topo.G.Link(id))
		}
	}
	if !s.HasFailures() {
		t.Error("scenario must report failures")
	}
	if s.NumFailedNodes() != 1 || s.NumFailedLinks() != 6 {
		t.Errorf("counts = (%d nodes, %d links), want (1, 6)", s.NumFailedNodes(), s.NumFailedLinks())
	}
	if s.String() == "" {
		t.Error("String must be non-empty")
	}
}

func TestUnreachableSemantics(t *testing.T) {
	topo := topology.PaperExample()
	s := NewScenario(topo, topology.PaperFailureArea())

	// v5's neighbor across e5-10 is unreachable because v10 failed.
	l510 := topo.G.Link(topology.PaperLink(topo, 5, 10))
	if !s.Unreachable(l510, topology.PaperNode(5)) {
		t.Error("v10 must be unreachable from v5")
	}
	// v6's neighbor across e6-11 is unreachable because the LINK
	// failed — v11 itself is alive; v6 cannot tell the difference.
	l611 := topo.G.Link(topology.PaperLink(topo, 6, 11))
	if !s.Unreachable(l611, topology.PaperNode(6)) {
		t.Error("v11 must be unreachable from v6 across the failed link")
	}
	if s.NodeDown(topology.PaperNode(11)) {
		t.Error("v11 itself must be alive")
	}
	// v6's neighbor across e6-5 is fine.
	l65 := topo.G.Link(topology.PaperLink(topo, 6, 5))
	if s.Unreachable(l65, topology.PaperNode(6)) {
		t.Error("v5 must be reachable from v6")
	}
}

func TestEmptyScenario(t *testing.T) {
	topo := topology.PaperExample()
	s := NewScenario(topo) // no areas
	if s.HasFailures() {
		t.Error("no areas implies no failures")
	}
	if len(s.Areas()) != 0 {
		t.Error("Areas must be empty")
	}
}

func TestFarAwayArea(t *testing.T) {
	topo := topology.PaperExample()
	s := NewScenario(topo, geom.Disk{Center: geom.Point{X: 1900, Y: 1900}, Radius: 50})
	if s.HasFailures() {
		t.Errorf("area away from all nodes/links must fail nothing, got %v", s)
	}
}

func TestMultiAreaUnion(t *testing.T) {
	topo := topology.PaperExample()
	a1 := topology.PaperFailureArea()
	// A second area around v18 (850, 140).
	a2 := geom.Disk{Center: geom.Point{X: 850, Y: 140}, Radius: 30}
	s := NewScenario(topo, a1, a2)
	if !s.NodeDown(topology.PaperNode(10)) || !s.NodeDown(topology.PaperNode(18)) {
		t.Error("both areas' nodes must fail")
	}
	if len(s.Areas()) != 2 {
		t.Error("scenario must record both areas")
	}
	// Links incident to v18 must fail too.
	if !s.LinkDown(topology.PaperLink(topo, 16, 18)) || !s.LinkDown(topology.PaperLink(topo, 17, 18)) {
		t.Error("links incident to the second area's node must fail")
	}
}

func TestSingleLink(t *testing.T) {
	topo := topology.PaperExample()
	id := topology.PaperLink(topo, 6, 11)
	s := SingleLink(topo, id)
	if !s.LinkDown(id) {
		t.Error("the designated link must be down")
	}
	if s.NumFailedNodes() != 0 {
		t.Error("single-link scenario must fail no node")
	}
	if s.NumFailedLinks() != 1 {
		t.Errorf("single-link scenario failed %d links", s.NumFailedLinks())
	}
}

func TestRandomAreaBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		d := RandomArea(rng, MinRadius, MaxRadius)
		if d.Radius < MinRadius || d.Radius > MaxRadius {
			t.Fatalf("radius %v out of [%v,%v]", d.Radius, MinRadius, MaxRadius)
		}
		if d.Center.X < 0 || d.Center.X > topology.Width || d.Center.Y < 0 || d.Center.Y > topology.Height {
			t.Fatalf("center %v outside area", d.Center)
		}
	}
}

// Property: ground-truth consistency. A node fails iff it is inside
// some area; a link fails iff an endpoint failed or its segment
// intersects some area; Unreachable is implied by either failure.
func TestScenarioConsistencyProperty(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 17)
	rng := rand.New(rand.NewSource(23))
	f := func() bool {
		n := 1 + rng.Intn(3)
		areas := make([]geom.Disk, n)
		for i := range areas {
			areas[i] = RandomArea(rng, 50, 400)
		}
		s := NewScenario(topo, areas...)
		for v := 0; v < topo.G.NumNodes(); v++ {
			inside := false
			for _, a := range areas {
				if a.Contains(topo.Coords[v]) {
					inside = true
					break
				}
			}
			if s.NodeDown(graph.NodeID(v)) != inside {
				return false
			}
		}
		for i := 0; i < topo.G.NumLinks(); i++ {
			id := graph.LinkID(i)
			l := topo.G.Link(id)
			want := s.NodeDown(l.A) || s.NodeDown(l.B)
			if !want {
				seg := topo.LinkSegment(id)
				for _, a := range areas {
					if a.IntersectsSegment(seg) {
						want = true
						break
					}
				}
			}
			if s.LinkDown(id) != want {
				return false
			}
			if s.LinkDown(id) {
				// A failed link makes its neighbor unreachable from
				// both live endpoints.
				if !s.Unreachable(l, l.A) || !s.Unreachable(l, l.B) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRandomScenarioSmoke(t *testing.T) {
	topo := topology.GenerateAS("AS209", 2)
	rng := rand.New(rand.NewSource(3))
	sawFailure := false
	for i := 0; i < 50; i++ {
		s := RandomScenario(topo, rng)
		if s.HasFailures() {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Error("50 random areas on a 58-node topology should hit something")
	}
}
