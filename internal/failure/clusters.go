package failure

import (
	"repro/internal/geom"
	"repro/internal/graph"
)

// Clusters partitions the scenario's failed links into connected
// failure clusters. Two failed links belong to the same cluster when
// they share an endpoint, when their segments cross, or when both are
// attached to the same connected component of (geometrically
// overlapping) failure areas. RTR's phase-1 perimeter walk assumes one
// cluster — a single connected failure region with a single outer
// perimeter; scenarios with more than one cluster are exactly the
// shapes where that assumption can break, and the invariant layer's
// perimeter classifier counts them.
//
// A scenario from a single disk or a single capsule always yields at
// most one cluster: each of its failed links either intersects the
// area or has an endpoint strictly inside it (which implies
// intersection), so every failed link attaches to the one area.
func (s *Scenario) Clusters() [][]graph.LinkID {
	down := s.mask.DownLinks()
	if len(down) == 0 {
		return nil
	}

	// Union-find over the failed links plus one virtual element per
	// failure area (areas first, links after).
	na := len(s.areas)
	uf := newUnionFind(na + len(down))

	// Merge geometrically overlapping areas into area components.
	for i := 0; i < na; i++ {
		for j := i + 1; j < na; j++ {
			if areasOverlap(s.areas[i], s.areas[j]) {
				uf.union(i, j)
			}
		}
	}

	segs := make([]geom.Segment, len(down))
	for li, id := range down {
		segs[li] = s.Topo.LinkSegment(id)
		// Attach each failed link to every area it touches (endpoint
		// inside or segment intersecting).
		l := s.Topo.G.Link(id)
		for ai, a := range s.areas {
			if a.IntersectsSegment(segs[li]) ||
				a.Contains(s.Topo.Coords[l.A]) || a.Contains(s.Topo.Coords[l.B]) {
				uf.union(ai, na+li)
			}
		}
	}

	// Link–link adjacency: shared endpoint or geometric crossing.
	for i, idA := range down {
		la := s.Topo.G.Link(idA)
		for j := i + 1; j < len(down); j++ {
			if uf.find(na+i) == uf.find(na+j) {
				continue
			}
			lb := s.Topo.G.Link(down[j])
			if la.A == lb.A || la.A == lb.B || la.B == lb.A || la.B == lb.B {
				uf.union(na+i, na+j)
				continue
			}
			if segs[i].Crosses(segs[j]) {
				uf.union(na+i, na+j)
			}
		}
	}

	groups := map[int][]graph.LinkID{}
	var roots []int
	for li, id := range down {
		r := uf.find(na + li)
		if _, seen := groups[r]; !seen {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], id)
	}
	out := make([][]graph.LinkID, 0, len(roots))
	for _, r := range roots { // first-seen order: ascending by lowest link ID
		out = append(out, groups[r])
	}
	return out
}

// areasOverlap reports whether two failure areas geometrically
// overlap (share interior points, up to the predicates' epsilon).
func areasOverlap(a, b Area) bool {
	switch x := a.(type) {
	case geom.Disk:
		switch y := b.(type) {
		case geom.Disk:
			return x.Center.Dist(y.Center) < x.Radius+y.Radius
		case geom.Capsule:
			return y.Seg.DistToPoint(x.Center) < x.Radius+y.Radius
		}
	case geom.Capsule:
		switch y := b.(type) {
		case geom.Disk:
			return x.Seg.DistToPoint(y.Center) < x.Radius+y.Radius
		case geom.Capsule:
			return x.Seg.DistToSegment(y.Seg) < x.Radius+y.Radius
		}
	}
	return false // unknown area kinds: conservatively separate
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
