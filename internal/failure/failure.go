// Package failure implements large-scale failure models: continuous
// failure areas placed in the plane (the paper's disks, plus capsule
// "conduit cut" strips), correlated link groups, and scheduled
// cascading/transient failures. Routers inside an area fail; links
// whose segments pass through an area fail even if both endpoints
// survive. A Scenario is the ground truth of a failure event — only
// the simulation harness may consult it; protocol code sees failures
// exclusively through per-node views (see package routing).
//
// Random scenarios are drawn through the pluggable Generator
// interface (see generator.go): ParseSpec turns a spec string such as
// "disk", "disks:k=3,disjoint", or "cut:w=200" into a model, and every
// registered model is property-tested against the invariant oracle.
package failure

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
)

// Default failure-radius bounds used by the paper's evaluation: the
// radius is drawn uniformly from [MinRadius, MaxRadius].
const (
	MinRadius = 100.0
	MaxRadius = 300.0
)

// Area is a continuous region of the plane that a failure scenario
// destroys: nodes inside it fail, links crossing it fail. geom.Disk
// (the paper's model) and geom.Capsule (line/conduit cuts) implement
// it.
type Area interface {
	Contains(geom.Point) bool
	IntersectsSegment(geom.Segment) bool
	String() string
}

var (
	_ Area = geom.Disk{}
	_ Area = geom.Capsule{}
)

// Scenario is the ground truth of a failure event on a topology.
// It implements graph.Denied.
type Scenario struct {
	Topo  *topology.Topology
	areas []Area
	mask  *graph.Mask
	// gen is the generator spec that produced the scenario ("" for
	// hand-built scenarios); it rides into invariant repro strings.
	gen string
	// steps is the optional failure schedule (cascading/transient
	// models): steps[i] is the ground truth after step i. Static
	// scenarios leave it nil.
	steps []*Scenario
}

var _ graph.DenseTabler = (*Scenario)(nil)

// NewScenario computes the ground truth for the given disk-shaped
// failure areas on topo: every node inside any area fails, and every
// link that has a failed endpoint or whose segment intersects any area
// fails. It is the paper's model; NewScenarioAreas accepts any Area
// mix.
func NewScenario(topo *topology.Topology, areas ...geom.Disk) *Scenario {
	as := make([]Area, len(areas))
	for i, a := range areas {
		as[i] = a
	}
	return compose(topo, as, nil)
}

// NewScenarioAreas computes the ground truth for arbitrary failure
// areas (disks, capsules, or any other Area implementation).
func NewScenarioAreas(topo *topology.Topology, areas ...Area) *Scenario {
	return compose(topo, append([]Area(nil), areas...), nil)
}

// NewLinkSet returns a scenario in which exactly the given links fail
// (no geometric area, no node failures) — the shape of correlated
// SRLG failures and single-link flaps.
func NewLinkSet(topo *topology.Topology, ids ...graph.LinkID) *Scenario {
	return compose(topo, nil, ids)
}

// compose builds the ground-truth mask: nodes inside any area fail;
// a link fails iff an endpoint failed, its segment intersects any
// area, or it is listed in extra.
func compose(topo *topology.Topology, areas []Area, extra []graph.LinkID) *Scenario {
	s := &Scenario{
		Topo:  topo,
		areas: areas,
		mask:  graph.NewMask(topo.G),
	}
	for v := 0; v < topo.G.NumNodes(); v++ {
		for _, a := range areas {
			if a.Contains(topo.Coords[v]) {
				s.mask.FailNode(graph.NodeID(v))
				break
			}
		}
	}
	for _, id := range extra {
		s.mask.FailLink(id)
	}
	for i := 0; i < topo.G.NumLinks(); i++ {
		id := graph.LinkID(i)
		l := topo.G.Link(id)
		if s.mask.NodeDown(l.A) || s.mask.NodeDown(l.B) {
			s.mask.FailLink(id)
			continue
		}
		seg := topo.LinkSegment(id)
		for _, a := range areas {
			if a.IntersectsSegment(seg) {
				s.mask.FailLink(id)
				break
			}
		}
	}
	return s
}

// NodeDown implements graph.Denied.
func (s *Scenario) NodeDown(v graph.NodeID) bool { return s.mask.NodeDown(v) }

// LinkDown implements graph.Denied.
func (s *Scenario) LinkDown(id graph.LinkID) bool { return s.mask.LinkDown(id) }

// DenseTables implements graph.DenseTabler by exposing the ground-truth
// mask's tables (shared, read-only for callers); the shortest-path
// engine uses them to skip per-edge interface dispatch when computing
// post-failure trees.
func (s *Scenario) DenseTables() (nodes, links []bool) { return s.mask.DenseTables() }

// Areas returns the disk-shaped failure areas (the paper's model).
// Scenarios built from other Area kinds expose them through Shapes.
func (s *Scenario) Areas() []geom.Disk {
	var out []geom.Disk
	for _, a := range s.areas {
		if d, ok := a.(geom.Disk); ok {
			out = append(out, d)
		}
	}
	return out
}

// Shapes returns every failure area of any kind.
func (s *Scenario) Shapes() []Area {
	return append([]Area(nil), s.areas...)
}

// GenSpec returns the generator spec string that produced the
// scenario, or "" for hand-built scenarios.
func (s *Scenario) GenSpec() string { return s.gen }

// Steps returns the number of steps in the scenario's failure
// schedule; static scenarios have exactly one step (themselves).
func (s *Scenario) Steps() int {
	if len(s.steps) == 0 {
		return 1
	}
	return len(s.steps)
}

// At returns the ground truth after schedule step i (clamped to the
// schedule bounds). A static scenario returns itself for every i.
// Cascading models produce monotone schedules (each step's failures
// contain the previous step's — the delete-only shape incremental
// recomputation requires); transient models repair, so later steps may
// shed failures and are only delete-only relative to the clean state.
func (s *Scenario) At(i int) *Scenario {
	if len(s.steps) == 0 {
		return s
	}
	if i < 0 {
		i = 0
	}
	if i >= len(s.steps) {
		i = len(s.steps) - 1
	}
	return s.steps[i]
}

// FailedNodes returns the failed nodes in ascending order.
func (s *Scenario) FailedNodes() []graph.NodeID { return s.mask.DownNodes() }

// FailedLinks returns the failed links in ascending order.
func (s *Scenario) FailedLinks() []graph.LinkID { return s.mask.DownLinks() }

// NumFailedNodes returns the number of failed nodes.
func (s *Scenario) NumFailedNodes() int { return len(s.mask.DownNodes()) }

// NumFailedLinks returns the number of failed links.
func (s *Scenario) NumFailedLinks() int { return len(s.mask.DownLinks()) }

// HasFailures reports whether anything failed at all.
func (s *Scenario) HasFailures() bool {
	return len(s.mask.DownLinks()) > 0 || len(s.mask.DownNodes()) > 0
}

// Unreachable reports whether, from endpoint v of link l, the neighbor
// across l is unreachable: the link itself failed or the neighbor
// failed. This is exactly what a live router can observe about l — it
// cannot tell the two cases apart.
func (s *Scenario) Unreachable(l graph.Link, v graph.NodeID) bool {
	return s.LinkDown(l.ID) || s.NodeDown(l.Other(v))
}

// String implements fmt.Stringer.
func (s *Scenario) String() string {
	extra := ""
	if n := s.Steps(); n > 1 {
		extra = fmt.Sprintf(", %d steps", n)
	}
	return fmt.Sprintf("scenario(%s: %d areas, %d nodes down, %d links down%s)",
		s.Topo.Name, len(s.areas), s.NumFailedNodes(), s.NumFailedLinks(), extra)
}

// SingleLink returns a scenario in which exactly the given link fails
// (no geometric area). It is used by the Theorem 3 experiments.
func SingleLink(topo *topology.Topology, id graph.LinkID) *Scenario {
	return NewLinkSet(topo, id)
}

// RandomArea draws a failure disk with center uniform in the
// simulation area and radius uniform in [minR, maxR], matching the
// paper's setup.
func RandomArea(rng *rand.Rand, minR, maxR float64) geom.Disk {
	return geom.Disk{
		Center: geom.Point{X: rng.Float64() * topology.Width, Y: rng.Float64() * topology.Height},
		Radius: minR + rng.Float64()*(maxR-minR),
	}
}

// RandomScenario draws one random failure area with the paper's
// default radius bounds and returns its scenario on topo. It is the
// default generator's model ("disk"): the two draw bit-identical
// scenarios from the same RNG stream.
func RandomScenario(topo *topology.Topology, rng *rand.Rand) *Scenario {
	return NewScenario(topo, RandomArea(rng, MinRadius, MaxRadius))
}

// Desc returns a parseable instance descriptor of the scenario's
// failure cause: the exact areas ("disk(x,y,r)", "cut(ax,ay,bx,by,r)")
// and/or explicitly failed links ("links(3,17)"), ';'-joined, or
// "none". ParseInstance rebuilds an identical scenario from it, which
// is what makes invariant repro strings actionable for every
// generator.
func (s *Scenario) Desc() string {
	var parts []string
	for _, a := range s.areas {
		switch v := a.(type) {
		case geom.Disk:
			parts = append(parts, fmt.Sprintf("disk(%g,%g,%g)", v.Center.X, v.Center.Y, v.Radius))
		case geom.Capsule:
			parts = append(parts, fmt.Sprintf("cut(%g,%g,%g,%g,%g)",
				v.Seg.A.X, v.Seg.A.Y, v.Seg.B.X, v.Seg.B.Y, v.Radius))
		default:
			parts = append(parts, v.String()) // non-standard area: best effort
		}
	}
	// Link-set scenarios (SRLG groups, single-link flaps) have no
	// areas; the failed links themselves are the instance.
	if len(s.areas) == 0 {
		if down := s.mask.DownLinks(); len(down) > 0 {
			ids := make([]string, 0, len(down))
			for _, id := range down {
				ids = append(ids, fmt.Sprintf("%d", id))
			}
			parts = append(parts, "links("+strings.Join(ids, ",")+")")
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ";")
}
