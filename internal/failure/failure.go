// Package failure implements the paper's large-scale failure model:
// one or more continuous failure areas (disks placed in the plane).
// Routers inside an area fail; links whose segments pass through an
// area fail even if both endpoints survive. A Scenario is the ground
// truth of a failure event — only the simulation harness may consult
// it; protocol code sees failures exclusively through per-node views
// (see package routing).
package failure

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
)

// Default failure-radius bounds used by the paper's evaluation: the
// radius is drawn uniformly from [MinRadius, MaxRadius].
const (
	MinRadius = 100.0
	MaxRadius = 300.0
)

// Scenario is the ground truth of a failure event on a topology.
// It implements graph.Denied.
type Scenario struct {
	Topo  *topology.Topology
	areas []geom.Disk
	mask  *graph.Mask
}

var _ graph.DenseTabler = (*Scenario)(nil)

// NewScenario computes the ground truth for the given failure areas on
// topo: every node inside any area fails, and every link that has a
// failed endpoint or whose segment intersects any area fails.
func NewScenario(topo *topology.Topology, areas ...geom.Disk) *Scenario {
	s := &Scenario{
		Topo:  topo,
		areas: append([]geom.Disk(nil), areas...),
		mask:  graph.NewMask(topo.G),
	}
	for v := 0; v < topo.G.NumNodes(); v++ {
		for _, a := range areas {
			if a.Contains(topo.Coords[v]) {
				s.mask.FailNode(graph.NodeID(v))
				break
			}
		}
	}
	for i := 0; i < topo.G.NumLinks(); i++ {
		id := graph.LinkID(i)
		l := topo.G.Link(id)
		if s.mask.NodeDown(l.A) || s.mask.NodeDown(l.B) {
			s.mask.FailLink(id)
			continue
		}
		seg := topo.LinkSegment(id)
		for _, a := range areas {
			if a.IntersectsSegment(seg) {
				s.mask.FailLink(id)
				break
			}
		}
	}
	return s
}

// NodeDown implements graph.Denied.
func (s *Scenario) NodeDown(v graph.NodeID) bool { return s.mask.NodeDown(v) }

// LinkDown implements graph.Denied.
func (s *Scenario) LinkDown(id graph.LinkID) bool { return s.mask.LinkDown(id) }

// DenseTables implements graph.DenseTabler by exposing the ground-truth
// mask's tables (shared, read-only for callers); the shortest-path
// engine uses them to skip per-edge interface dispatch when computing
// post-failure trees.
func (s *Scenario) DenseTables() (nodes, links []bool) { return s.mask.DenseTables() }

// Areas returns the failure areas.
func (s *Scenario) Areas() []geom.Disk {
	return append([]geom.Disk(nil), s.areas...)
}

// FailedNodes returns the failed nodes in ascending order.
func (s *Scenario) FailedNodes() []graph.NodeID { return s.mask.DownNodes() }

// FailedLinks returns the failed links in ascending order.
func (s *Scenario) FailedLinks() []graph.LinkID { return s.mask.DownLinks() }

// NumFailedNodes returns the number of failed nodes.
func (s *Scenario) NumFailedNodes() int { return len(s.mask.DownNodes()) }

// NumFailedLinks returns the number of failed links.
func (s *Scenario) NumFailedLinks() int { return len(s.mask.DownLinks()) }

// HasFailures reports whether anything failed at all.
func (s *Scenario) HasFailures() bool {
	return len(s.mask.DownLinks()) > 0 || len(s.mask.DownNodes()) > 0
}

// Unreachable reports whether, from endpoint v of link l, the neighbor
// across l is unreachable: the link itself failed or the neighbor
// failed. This is exactly what a live router can observe about l — it
// cannot tell the two cases apart.
func (s *Scenario) Unreachable(l graph.Link, v graph.NodeID) bool {
	return s.LinkDown(l.ID) || s.NodeDown(l.Other(v))
}

// String implements fmt.Stringer.
func (s *Scenario) String() string {
	return fmt.Sprintf("scenario(%s: %d areas, %d nodes down, %d links down)",
		s.Topo.Name, len(s.areas), s.NumFailedNodes(), s.NumFailedLinks())
}

// SingleLink returns a scenario in which exactly the given link fails
// (no geometric area). It is used by the Theorem 3 experiments.
func SingleLink(topo *topology.Topology, id graph.LinkID) *Scenario {
	s := &Scenario{Topo: topo, mask: graph.NewMask(topo.G)}
	s.mask.FailLink(id)
	return s
}

// RandomArea draws a failure disk with center uniform in the
// simulation area and radius uniform in [minR, maxR], matching the
// paper's setup.
func RandomArea(rng *rand.Rand, minR, maxR float64) geom.Disk {
	return geom.Disk{
		Center: geom.Point{X: rng.Float64() * topology.Width, Y: rng.Float64() * topology.Height},
		Radius: minR + rng.Float64()*(maxR-minR),
	}
}

// RandomScenario draws one random failure area with the paper's
// default radius bounds and returns its scenario on topo.
func RandomScenario(topo *topology.Topology, rng *rand.Rand) *Scenario {
	return NewScenario(topo, RandomArea(rng, MinRadius, MaxRadius))
}
