package failure

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/seed"
	"repro/internal/topology"
)

func testTopo(t testing.TB) *topology.Topology {
	t.Helper()
	return topology.GenerateAS("AS1239", seed.Derive(42, "topo", "AS1239"))
}

// TestParseSpecRoundTrip pins the canonical-name round trip: for every
// valid spec, ParseSpec(spec).Name() is canonical and parsing the
// canonical name yields an identical generator.
func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want string // canonical name ("" = same as spec)
	}{
		{"disk", ""},
		{"disk:rmin=50,rmax=80", ""},
		{"disk:rmax=300,rmin=100", "disk"}, // defaults collapse
		{"disks", ""},
		{"disks:k=3", ""},
		{"disks:k=2", "disks"},
		{"disks:k=4,disjoint", ""},
		{"disks:disjoint,k=4", "disks:k=4,disjoint"},
		{"disks:k=3,rmin=50,rmax=120", ""},
		{"cut", ""},
		{"cut:w=200", ""},
		{"cut:w=120", "cut"},
		{"cut:lmin=100,lmax=400", ""},
		{"srlg", ""},
		{"srlg:g=25", ""},
		{"srlg:n=2", ""},
		{"srlg:g=9,n=3", ""},
		{"cascade", ""},
		{"cascade:steps=5", ""},
		{"cascade:steps=3", "cascade"},
		{"cascade:steps=2,rmin=80,rmax=80", ""},
		{"transient", ""},
		{"transient:steps=2", ""},
		{"link", ""},
	}
	for _, c := range cases {
		g, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.spec, err)
			continue
		}
		want := c.want
		if want == "" {
			want = c.spec
		}
		if g.Name() != want {
			t.Errorf("ParseSpec(%q).Name() = %q, want %q", c.spec, g.Name(), want)
			continue
		}
		g2, err := ParseSpec(g.Name())
		if err != nil {
			t.Errorf("canonical name %q does not reparse: %v", g.Name(), err)
			continue
		}
		if !reflect.DeepEqual(g, g2) {
			t.Errorf("round trip of %q: %#v != %#v", c.spec, g, g2)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"frisbee",
		"disk:",
		"disk:rmin",          // flag where value required... rmin unused
		"disk:rmin=",         // no value
		"disk:=5",            // no key
		"disk:rmin=abc",      // not a number
		"disk:rmin=NaN",      // non-finite
		"disk:rmin=-5",       // negative
		"disk:rmin=0",        // zero radius
		"disk:rmin=200,rmax=100", // inverted bounds
		"disk:rmax=1e99",     // beyond the simulation area
		"disk:k=3",           // unknown key for kind
		"disk:rmin=5,rmin=6", // duplicate
		"disks:k=0",
		"disks:k=99",
		"disks:bogus",
		"cut:w=0",
		"cut:w=-3",
		"cut:lmin=900,lmax=100",
		"srlg:g=0",
		"srlg:n=0",
		"srlg:g=4,n=9", // more groups failing than exist
		"cascade:steps=0",
		"cascade:steps=70",
		"transient:steps=-1",
		"link:x=1",
		"disk:rmin=100,,rmax=200", // empty parameter
	}
	for _, spec := range bad {
		if g, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) = %v (%q), want error", spec, g, g.Name())
		}
	}
}

func TestParseSpecOrDefault(t *testing.T) {
	g, err := ParseSpecOrDefault("")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != DefaultSpec {
		t.Errorf("empty spec → %q, want %q", g.Name(), DefaultSpec)
	}
	if !reflect.DeepEqual(g, Default()) {
		t.Errorf("empty spec must yield Default()")
	}
}

// TestDiskGenBitIdentical pins the refactoring contract of the
// tentpole: the default generator consumes the RNG stream exactly as
// the legacy RandomScenario path did, producing identical masks.
func TestDiskGenBitIdentical(t *testing.T) {
	topo := testTopo(t)
	for trial := 0; trial < 50; trial++ {
		base := seed.Derive(7, "difftest", topo.Name)
		rngA := rand.New(rand.NewSource(base + int64(trial)))
		rngB := rand.New(rand.NewSource(base + int64(trial)))
		legacy := RandomScenario(topo, rngA)
		gen := Default().Generate(topo, rngB)
		if !sameMask(legacy, gen) {
			t.Fatalf("trial %d: masks differ:\nlegacy %v\ngen    %v", trial, legacy, gen)
		}
		if rngA.Int63() != rngB.Int63() {
			t.Fatalf("trial %d: RNG streams diverged — draw counts differ", trial)
		}
		da, db := legacy.Areas(), gen.Areas()
		if len(da) != 1 || len(db) != 1 || da[0] != db[0] {
			t.Fatalf("trial %d: areas differ: %v vs %v", trial, da, db)
		}
	}
}

func sameMask(a, b *Scenario) bool {
	return reflect.DeepEqual(a.FailedNodes(), b.FailedNodes()) &&
		reflect.DeepEqual(a.FailedLinks(), b.FailedLinks())
}

// TestGeneratorDeterminism: every registered generator is a pure
// function of (topology, RNG stream).
func TestGeneratorDeterminism(t *testing.T) {
	topo := testTopo(t)
	for _, g := range AllDefaults() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				s := seed.Derive(11, "det", g.Name()) + int64(trial)
				a := g.Generate(topo, rand.New(rand.NewSource(s)))
				b := g.Generate(topo, rand.New(rand.NewSource(s)))
				if !sameMask(a, b) {
					t.Fatalf("trial %d: non-deterministic: %v vs %v", trial, a, b)
				}
				if a.Steps() != b.Steps() {
					t.Fatalf("trial %d: schedule lengths differ", trial)
				}
				for i := 0; i < a.Steps(); i++ {
					if !sameMask(a.At(i), b.At(i)) {
						t.Fatalf("trial %d: step %d differs", trial, i)
					}
				}
				if a.GenSpec() != g.Name() {
					t.Fatalf("GenSpec = %q, want %q", a.GenSpec(), g.Name())
				}
			}
		})
	}
}

// TestGeneratorMaskAreaConsistency: for every generator, the scenario
// mask is exactly what its areas/link sets imply — nodes fail iff
// inside an area, links fail iff endpoint-down, area-intersecting, or
// explicitly listed.
func TestGeneratorMaskAreaConsistency(t *testing.T) {
	topo := testTopo(t)
	for _, g := range AllDefaults() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				rng := rand.New(rand.NewSource(seed.Derive(13, "cons", g.Name()) + int64(trial)))
				sc := g.Generate(topo, rng)
				for step := 0; step < sc.Steps(); step++ {
					checkMaskConsistent(t, sc.At(step))
				}
			}
		})
	}
}

func checkMaskConsistent(t *testing.T, s *Scenario) {
	t.Helper()
	topo := s.Topo
	areas := s.Shapes()
	inArea := func(v graph.NodeID) bool {
		for _, a := range areas {
			if a.Contains(topo.Coords[v]) {
				return true
			}
		}
		return false
	}
	for v := 0; v < topo.G.NumNodes(); v++ {
		id := graph.NodeID(v)
		if s.NodeDown(id) != inArea(id) {
			t.Fatalf("node %d: down=%v but inArea=%v", v, s.NodeDown(id), inArea(id))
		}
	}
	for i := 0; i < topo.G.NumLinks(); i++ {
		id := graph.LinkID(i)
		l := topo.G.Link(id)
		geometric := s.NodeDown(l.A) || s.NodeDown(l.B)
		if !geometric {
			seg := topo.LinkSegment(id)
			for _, a := range areas {
				if a.IntersectsSegment(seg) {
					geometric = true
					break
				}
			}
		}
		if geometric && !s.LinkDown(id) {
			t.Fatalf("link %v: geometry says down, mask says up", l)
		}
		if !geometric && s.LinkDown(id) && len(areas) > 0 && s.Steps() == 1 {
			// Area-driven static scenarios may not fail extra links.
			t.Fatalf("link %v: mask says down with no geometric cause", l)
		}
	}
}

// TestScheduleShapes pins the schedule semantics of the scheduled
// generators: cascades grow monotonically; transients grow, then
// repair oldest-first, ending all-up; link flaps are down-then-up.
func TestScheduleShapes(t *testing.T) {
	topo := testTopo(t)

	t.Run("cascade", func(t *testing.T) {
		g := CascadeGen{Steps: 4, Min: 100, Max: 300}
		for trial := 0; trial < 10; trial++ {
			rng := rand.New(rand.NewSource(seed.Derive(17, "cascade") + int64(trial)))
			sc := g.Generate(topo, rng)
			if sc.Steps() != 4 {
				t.Fatalf("Steps = %d, want 4", sc.Steps())
			}
			if !sameMask(sc, sc.At(3)) {
				t.Fatal("peak must equal the last step")
			}
			for i := 1; i < sc.Steps(); i++ {
				assertSuperset(t, sc.At(i), sc.At(i-1))
			}
			if len(sc.At(0).Shapes()) != 1 || len(sc.At(3).Shapes()) != 4 {
				t.Fatalf("area counts: %d then %d, want 1 then 4",
					len(sc.At(0).Shapes()), len(sc.At(3).Shapes()))
			}
		}
	})

	t.Run("transient", func(t *testing.T) {
		g := TransientGen{Steps: 3, Min: 100, Max: 300}
		for trial := 0; trial < 10; trial++ {
			rng := rand.New(rand.NewSource(seed.Derive(17, "transient") + int64(trial)))
			sc := g.Generate(topo, rng)
			if sc.Steps() != 6 {
				t.Fatalf("Steps = %d, want 6", sc.Steps())
			}
			if !sameMask(sc, sc.At(2)) {
				t.Fatal("peak must be the last growth step")
			}
			for i := 1; i < 3; i++ {
				assertSuperset(t, sc.At(i), sc.At(i-1))
			}
			if last := sc.At(5); last.HasFailures() {
				t.Fatalf("schedule must end all-up, got %v", last)
			}
		}
	})

	t.Run("link", func(t *testing.T) {
		g := LinkFlapGen{}
		rng := rand.New(rand.NewSource(seed.Derive(17, "link")))
		sc := g.Generate(topo, rng)
		if sc.Steps() != 2 {
			t.Fatalf("Steps = %d, want 2", sc.Steps())
		}
		if n := sc.NumFailedLinks(); n != 1 || sc.NumFailedNodes() != 0 {
			t.Fatalf("flap must fail exactly one link, got %v", sc)
		}
		if sc.At(1).HasFailures() {
			t.Fatal("flap must repair at step 1")
		}
	})

	t.Run("static-At", func(t *testing.T) {
		sc := Default().Generate(topo, rand.New(rand.NewSource(1)))
		if sc.Steps() != 1 || sc.At(0) != sc || sc.At(99) != sc || sc.At(-1) != sc {
			t.Fatal("static scenarios must be their own single clamped step")
		}
	})
}

// assertSuperset checks cur's failures contain prev's.
func assertSuperset(t *testing.T, cur, prev *Scenario) {
	t.Helper()
	for _, v := range prev.FailedNodes() {
		if !cur.NodeDown(v) {
			t.Fatalf("node %d repaired in a monotone schedule", v)
		}
	}
	for _, l := range prev.FailedLinks() {
		if !cur.LinkDown(l) {
			t.Fatalf("link %d repaired in a monotone schedule", l)
		}
	}
}

// TestMultiDiskDisjoint: with the disjoint flag, accepted disks are
// pairwise non-overlapping whenever the rejection loop can satisfy it
// (small radii on a large area virtually always can).
func TestMultiDiskDisjoint(t *testing.T) {
	topo := testTopo(t)
	g := MultiDiskGen{K: 3, Min: 50, Max: 100, Disjoint: true}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(seed.Derive(19, "disjoint") + int64(trial)))
		sc := g.Generate(topo, rng)
		disks := sc.Areas()
		if len(disks) != 3 {
			t.Fatalf("want 3 disks, got %d", len(disks))
		}
		for i := range disks {
			for j := i + 1; j < len(disks); j++ {
				if disks[i].Center.Dist(disks[j].Center) < disks[i].Radius+disks[j].Radius {
					t.Fatalf("trial %d: disks %d and %d overlap", trial, i, j)
				}
			}
		}
	}
}

// TestSRLGGroups pins the partition properties: every link is in
// exactly one group, groups are non-empty, and the grouping is a
// deterministic function of the topology.
func TestSRLGGroups(t *testing.T) {
	topo := testTopo(t)
	groups := SRLGGroups(topo, 16)
	seen := make(map[graph.LinkID]int)
	for gi, g := range groups {
		if len(g.Links) == 0 {
			t.Fatalf("group %q empty", g.Name)
		}
		if g.Name == "" {
			t.Fatal("group must be named")
		}
		for _, id := range g.Links {
			if prev, dup := seen[id]; dup {
				t.Fatalf("link %d in groups %d and %d", id, prev, gi)
			}
			seen[id] = gi
		}
	}
	if len(seen) != topo.G.NumLinks() {
		t.Fatalf("partition covers %d/%d links", len(seen), topo.G.NumLinks())
	}
	again := SRLGGroups(topo, 16)
	if !reflect.DeepEqual(groups, again) {
		t.Fatal("grouping must be deterministic")
	}
	if len(SRLGGroups(topo, 1)) != 1 {
		t.Fatal("target 1 must give a single group")
	}
}

// TestSRLGGenerate: scenarios fail whole groups and nothing else.
func TestSRLGGenerate(t *testing.T) {
	topo := testTopo(t)
	g := SRLGGen{Groups: 16, Fail: 2}
	groups := SRLGGroups(topo, 16)
	memberOf := make(map[graph.LinkID]int)
	for gi, grp := range groups {
		for _, id := range grp.Links {
			memberOf[id] = gi
		}
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(seed.Derive(23, "srlg") + int64(trial)))
		sc := g.Generate(topo, rng)
		if sc.NumFailedNodes() != 0 {
			t.Fatalf("SRLG failures are link-only, got %d nodes down", sc.NumFailedNodes())
		}
		hit := make(map[int]bool)
		for _, id := range sc.FailedLinks() {
			hit[memberOf[id]] = true
		}
		if len(hit) != 2 {
			t.Fatalf("trial %d: %d groups hit, want 2", trial, len(hit))
		}
		for gi := range hit { // whole-group property
			for _, id := range groups[gi].Links {
				if !sc.LinkDown(id) {
					t.Fatalf("trial %d: group %d partially failed", trial, gi)
				}
			}
		}
	}
}

// TestWithRadius pins the FixedRadius hook the Fig.-11 sweeps use.
func TestWithRadius(t *testing.T) {
	for _, g := range AllDefaults() {
		fr, ok := g.(FixedRadius)
		if !ok {
			continue // link/srlg have no radius knob
		}
		pinned := fr.WithRadius(150)
		topo := testTopo(t)
		rng := rand.New(rand.NewSource(seed.Derive(29, "radius", g.Name())))
		sc := pinned.Generate(topo, rng)
		for _, a := range sc.Shapes() {
			switch v := a.(type) {
			case interface{ RadiusOf() float64 }:
				_ = v
			}
		}
		for _, d := range sc.Areas() {
			if d.Radius != 150 {
				t.Errorf("%s: disk radius %g, want 150", g.Name(), d.Radius)
			}
		}
	}
	// Cut: radius pins the half-width.
	c := CutGen{Width: 120, MinLen: 500, MaxLen: 1500}.WithRadius(90).(CutGen)
	if c.Width != 180 {
		t.Errorf("cut WithRadius(90).Width = %g, want 180", c.Width)
	}
}

// TestMultiPerimeterFlags pins which models may produce disconnected
// failure perimeters (driving the invariant checking profile).
func TestMultiPerimeterFlags(t *testing.T) {
	want := map[string]bool{
		"disk": false, "disks": true, "cut": false, "srlg": true,
		"cascade": true, "transient": true, "link": false,
	}
	for _, g := range AllDefaults() {
		mp, ok := g.(MultiPerimeter)
		if !ok {
			t.Errorf("%s must implement MultiPerimeter", g.Name())
			continue
		}
		if mp.MultiPerimeter() != want[g.Name()] {
			t.Errorf("%s.MultiPerimeter() = %v, want %v", g.Name(), mp.MultiPerimeter(), want[g.Name()])
		}
	}
}

// TestClustersSingleArea: a single disk or capsule always yields at
// most one failure cluster — the shape RTR's perimeter walk assumes.
func TestClustersSingleArea(t *testing.T) {
	topo := testTopo(t)
	for _, g := range []Generator{Default(), CutGen{Width: 120, MinLen: 500, MaxLen: 1500}} {
		for trial := 0; trial < 40; trial++ {
			rng := rand.New(rand.NewSource(seed.Derive(31, "cluster", g.Name()) + int64(trial)))
			sc := g.Generate(topo, rng)
			if cs := sc.Clusters(); len(cs) > 1 {
				t.Fatalf("%s trial %d: %d clusters from a single area (%s)",
					g.Name(), trial, len(cs), sc.Desc())
			}
		}
	}
}

// TestClustersPartition: clusters partition the failed links, and
// widely separated disks land in different clusters.
func TestClustersPartition(t *testing.T) {
	topo := testTopo(t)
	for _, g := range AllDefaults() {
		for trial := 0; trial < 15; trial++ {
			rng := rand.New(rand.NewSource(seed.Derive(37, "part", g.Name()) + int64(trial)))
			sc := g.Generate(topo, rng)
			seen := make(map[graph.LinkID]bool)
			total := 0
			for _, c := range sc.Clusters() {
				if len(c) == 0 {
					t.Fatal("empty cluster")
				}
				for _, id := range c {
					if seen[id] {
						t.Fatalf("link %d in two clusters", id)
					}
					seen[id] = true
					if !sc.LinkDown(id) {
						t.Fatalf("cluster contains live link %d", id)
					}
				}
				total += len(c)
			}
			if total != sc.NumFailedLinks() {
				t.Fatalf("%s: clusters cover %d of %d failed links", g.Name(), total, sc.NumFailedLinks())
			}
		}
	}
}

// TestClustersSeparatedDisks: two far-apart disks that each fail links
// form two clusters (the overlap merge must not over-join).
func TestClustersSeparatedDisks(t *testing.T) {
	topo := testTopo(t)
	found := false
	for trial := 0; trial < 200 && !found; trial++ {
		rng := rand.New(rand.NewSource(seed.Derive(41, "sep") + int64(trial)))
		sc := MultiDiskGen{K: 2, Min: 80, Max: 120, Disjoint: true}.Generate(topo, rng)
		disks := sc.Areas()
		if len(disks) != 2 {
			continue
		}
		gap := disks[0].Center.Dist(disks[1].Center) - disks[0].Radius - disks[1].Radius
		if gap < 400 { // links could bridge nearby disks
			continue
		}
		// Both disks must actually hit links, and no failed link may
		// touch both neighborhoods for this witness to be conclusive.
		cs := sc.Clusters()
		if sc.NumFailedLinks() > 0 && len(cs) >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no disjoint-disk witness produced two clusters in 200 trials")
	}
}

// TestParseInstanceRoundTrip: Desc() of any generated scenario rebuilds
// an identical mask.
func TestParseInstanceRoundTrip(t *testing.T) {
	topo := testTopo(t)
	for _, g := range AllDefaults() {
		for trial := 0; trial < 10; trial++ {
			rng := rand.New(rand.NewSource(seed.Derive(43, "inst", g.Name()) + int64(trial)))
			sc := g.Generate(topo, rng)
			for step := 0; step < sc.Steps(); step++ {
				s := sc.At(step)
				re, err := ParseInstance(topo, s.Desc())
				if err != nil {
					t.Fatalf("%s: ParseInstance(%q): %v", g.Name(), s.Desc(), err)
				}
				if !sameMask(s, re) {
					t.Fatalf("%s: round trip of %q changed the mask", g.Name(), s.Desc())
				}
			}
		}
	}
	if _, err := ParseInstance(topo, "garbage(1"); err == nil {
		t.Fatal("malformed instance must not parse")
	}
	if _, err := ParseInstance(topo, "links(999999)"); err == nil {
		t.Fatal("out-of-range link ID must not parse")
	}
}

// TestDescShapes pins the descriptor grammar.
func TestDescShapes(t *testing.T) {
	topo := testTopo(t)
	if got := compose(topo, nil, nil).Desc(); got != "none" {
		t.Errorf("empty scenario Desc = %q, want none", got)
	}
	s := NewLinkSet(topo, 3, 17)
	if got := s.Desc(); got != "links(3,17)" {
		t.Errorf("link-set Desc = %q, want links(3,17)", got)
	}
	one := Default().Generate(topo, rand.New(rand.NewSource(5)))
	if !strings.HasPrefix(one.Desc(), "disk(") {
		t.Errorf("disk Desc = %q", one.Desc())
	}
	cut := CutGen{Width: 120, MinLen: 500, MaxLen: 1500}.Generate(topo, rand.New(rand.NewSource(5)))
	if !strings.HasPrefix(cut.Desc(), "cut(") {
		t.Errorf("cut Desc = %q", cut.Desc())
	}
}

// TestAllDefaultsMatchesKinds: the registry is complete and ordered.
func TestAllDefaultsMatchesKinds(t *testing.T) {
	gens := AllDefaults()
	kinds := Kinds()
	if len(gens) != len(kinds) {
		t.Fatalf("%d defaults for %d kinds", len(gens), len(kinds))
	}
	for i, g := range gens {
		if g.Name() != kinds[i] {
			t.Errorf("default %d: Name %q, want %q (defaults must be canonical bare kinds)",
				i, g.Name(), kinds[i])
		}
	}
}
