package failure

import (
	"strings"
	"testing"
)

// FuzzGeneratorSpec hammers the spec parser with arbitrary strings:
// it must never panic, and every accepted spec must round-trip — the
// generator's canonical Name() reparses to a generator with the same
// canonical name (the property checkpoint fingerprints rely on).
func FuzzGeneratorSpec(f *testing.F) {
	for _, k := range Kinds() {
		f.Add(k)
	}
	f.Add("disk:rmin=50,rmax=80")
	f.Add("disks:k=3,disjoint")
	f.Add("cut:w=200,lmin=100,lmax=400")
	f.Add("srlg:g=25,n=3")
	f.Add("cascade:steps=5,rmin=80,rmax=80")
	f.Add("transient:steps=2")
	f.Add("disk:rmin=1e99")
	f.Add("disk:rmin=NaN,rmax=Inf")
	f.Add("disks:k=-1")
	f.Add(":::===,,,")
	f.Fuzz(func(t *testing.T, spec string) {
		g, err := ParseSpec(spec)
		if err != nil {
			if g != nil {
				t.Fatalf("error with non-nil generator: %v", err)
			}
			return
		}
		name := g.Name()
		if name == "" {
			t.Fatalf("accepted spec %q has empty canonical name", spec)
		}
		if strings.ContainsAny(name, " \t\n") {
			t.Fatalf("canonical name %q contains whitespace", name)
		}
		g2, err := ParseSpec(name)
		if err != nil {
			t.Fatalf("canonical name %q of accepted spec %q does not reparse: %v", name, spec, err)
		}
		if g2.Name() != name {
			t.Fatalf("canonical name not a fixed point: %q -> %q", name, g2.Name())
		}
	})
}
