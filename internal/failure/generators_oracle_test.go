// Oracle property suite for the pluggable failure generators. It
// lives in package failure_test because it drives the invariant
// oracle, which (via sim) imports failure.
package failure_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/seed"
	"repro/internal/sim"
	"repro/internal/topology"
)

var (
	worldMu    sync.Mutex
	worldCache = map[string]*sim.World{}
)

func worldFor(t testing.TB, name string) *sim.World {
	worldMu.Lock()
	defer worldMu.Unlock()
	if w, ok := worldCache[name]; ok {
		return w
	}
	w, err := sim.NewWorld(name, 1)
	if err != nil {
		t.Fatalf("NewWorld(%s): %v", name, err)
	}
	worldCache[name] = w
	return w
}

// TestGenerators is the tentpole property suite: every registered
// generator × every bundled Table II topology × seeded RNG streams.
// For each (generator, topology) pair it checks
//
//   - determinism: the same stream reproduces the same schedule of
//     masks;
//   - mask/area consistency: failures are exactly what the scenario's
//     areas (or explicit link sets) imply;
//   - the full invariant oracle: every deduplicated case of every
//     scenario passes CheckCase under the generator's derived checking
//     profile (multi-perimeter models relax only rtr/collect-failed);
//   - perimeter accounting: disconnected-perimeter cases are
//     classified and counted, never silently dropped, and
//     single-region models never produce them.
func TestGenerators(t *testing.T) {
	scenarios := 4
	maxCases := 250
	names := topology.ASNames()
	if testing.Short() {
		scenarios, maxCases = 2, 80
		names = names[:2]
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := worldFor(t, name)
			for _, g := range failure.AllDefaults() {
				g := g
				t.Run(g.Name(), func(t *testing.T) {
					k := invariant.New(w).WithProfile(invariant.ProfileFor(g))
					var report invariant.PerimeterReport
					checked := 0
					for sIdx := 0; sIdx < scenarios && checked < maxCases; sIdx++ {
						base := seed.Derive(1, "genoracle", name, g.Name()) + int64(sIdx)

						// Determinism across the whole schedule.
						sc := g.Generate(w.Topo, rand.New(rand.NewSource(base)))
						again := g.Generate(w.Topo, rand.New(rand.NewSource(base)))
						if sc.Steps() != again.Steps() {
							t.Fatalf("scenario %d: schedule lengths differ", sIdx)
						}
						for i := 0; i < sc.Steps(); i++ {
							a, b := sc.At(i), again.At(i)
							if !equalIDs(a.FailedLinks(), b.FailedLinks()) ||
								!equalNodes(a.FailedNodes(), b.FailedNodes()) {
								t.Fatalf("scenario %d step %d: non-deterministic", sIdx, i)
							}
							assertConsistent(t, a)
						}

						// Full oracle sweep over the peak scenario's cases.
						rec, irr := sim.CasesFromScenario(w, sc)
						cases := append(rec, irr...)
						if len(cases) > maxCases-checked {
							cases = cases[:maxCases-checked]
						}
						checked += len(cases)
						for _, c := range cases {
							if vs := k.CheckCase(c); len(vs) > 0 {
								t.Fatalf("scenario %d: %v (first of %d violations)", sIdx, vs[0], len(vs))
							}
						}
						report.Add(k.ClassifyPerimeter(cases))
					}
					if k.Profile.SinglePerimeter && report.MultiCluster > 0 {
						t.Fatalf("single-perimeter model produced %d multi-cluster cases", report.MultiCluster)
					}
					if got := report.CollectFailed + report.NoLiveNeighbor + report.AllSeen + report.WalkMissed; got != report.MultiCluster {
						t.Fatalf("perimeter categories sum to %d, MultiCluster is %d (%s)", got, report.MultiCluster, report)
					}
					if report.MultiCluster > 0 {
						t.Logf("%s/%s: %s", name, g.Name(), report)
					}
				})
			}
		})
	}
}

// assertConsistent re-derives the mask from the scenario's shapes and
// link sets: nodes fail iff inside an area; links fail iff
// endpoint-down or area-intersecting, plus (for area-free scenarios)
// the explicit link set.
func assertConsistent(t *testing.T, s *failure.Scenario) {
	t.Helper()
	topo := s.Topo
	areas := s.Shapes()
	for v := 0; v < topo.G.NumNodes(); v++ {
		id := graph.NodeID(v)
		in := false
		for _, a := range areas {
			if a.Contains(topo.Coords[v]) {
				in = true
				break
			}
		}
		if s.NodeDown(id) != in {
			t.Fatalf("node %d: down=%v, areas imply %v", v, s.NodeDown(id), in)
		}
	}
	for i := 0; i < topo.G.NumLinks(); i++ {
		id := graph.LinkID(i)
		l := topo.G.Link(id)
		geometric := s.NodeDown(l.A) || s.NodeDown(l.B)
		if !geometric {
			seg := topo.LinkSegment(id)
			for _, a := range areas {
				if a.IntersectsSegment(seg) {
					geometric = true
					break
				}
			}
		}
		if geometric && !s.LinkDown(id) {
			t.Fatalf("link %v: geometry implies down, mask says up", l)
		}
		if s.LinkDown(id) && !geometric && len(areas) > 0 {
			t.Fatalf("link %v: mask down without geometric cause", l)
		}
	}
}

func equalIDs(a, b []graph.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalNodes(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
