package failure

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
)

// Generator is a pluggable failure model: it draws random failure
// scenarios on a topology. All randomness must come from the supplied
// rng, so a generator's output is a pure function of (topology, RNG
// stream) — the property the sweep engine's sharded checkpoints and
// the determinism tests depend on.
type Generator interface {
	// Name returns the canonical spec string of the generator;
	// ParseSpec(Name()) round-trips to an identical generator.
	Name() string
	// Generate draws one failure scenario.
	Generate(topo *topology.Topology, rng *rand.Rand) *Scenario
}

// FixedRadius is implemented by generators whose failure extent can be
// pinned to a single radius, the knob Fig.-11-style radius sweeps
// turn. WithRadius returns a copy of the generator with every random
// extent replaced by r (for cuts, r is the capsule half-width).
type FixedRadius interface {
	Generator
	WithRadius(r float64) Generator
}

// MultiPerimeter is implemented by every registered generator; it
// reports whether the model can produce disconnected failure
// perimeters (multiple failure clusters), the shape that breaks RTR's
// single-perimeter phase-1 walk assumption. The invariant oracle uses
// it to pick the checking profile.
type MultiPerimeter interface {
	MultiPerimeter() bool
}

// DefaultSpec is the paper's failure model: one disk, radius uniform
// in [MinRadius, MaxRadius].
const DefaultSpec = "disk"

// Default returns the paper's single-disk generator. Its Generate is
// bit-identical to RandomScenario on the same RNG stream.
func Default() Generator { return DiskGen{Min: MinRadius, Max: MaxRadius} }

// ---------------------------------------------------------------------
// disk — the paper's model: one disk, uniform center, uniform radius.

// DiskGen draws a single circular failure area.
type DiskGen struct {
	Min, Max float64 // radius bounds
}

// Name implements Generator.
func (g DiskGen) Name() string {
	return "disk" + radiusParams(g.Min, g.Max)
}

// Generate implements Generator. It consumes exactly the RNG draws of
// RandomScenario, in the same order, and produces the identical mask.
func (g DiskGen) Generate(topo *topology.Topology, rng *rand.Rand) *Scenario {
	s := NewScenario(topo, RandomArea(rng, g.Min, g.Max))
	s.gen = g.Name()
	return s
}

// WithRadius implements FixedRadius.
func (g DiskGen) WithRadius(r float64) Generator { return DiskGen{Min: r, Max: r} }

// MultiPerimeter implements MultiPerimeter: one disk is one perimeter.
func (DiskGen) MultiPerimeter() bool { return false }

// ---------------------------------------------------------------------
// disks — k simultaneous disks, optionally pairwise disjoint
// (Enhanced MRC's multiple-simultaneous-failures model).

// MultiDiskGen draws k disks, optionally rejecting overlaps.
type MultiDiskGen struct {
	K        int
	Min, Max float64
	// Disjoint redraws each disk (boundedly) until it overlaps none of
	// the previously accepted ones, modeling independent disasters.
	Disjoint bool
}

// Name implements Generator.
func (g MultiDiskGen) Name() string {
	n := "disks"
	if g.K != 2 {
		n += joinParam(n, "disks", fmt.Sprintf("k=%d", g.K))
	}
	n += radiusParamsAfter(n, "disks", g.Min, g.Max)
	if g.Disjoint {
		n += joinParam(n, "disks", "disjoint")
	}
	return n
}

// Generate implements Generator.
func (g MultiDiskGen) Generate(topo *topology.Topology, rng *rand.Rand) *Scenario {
	areas := make([]Area, 0, g.K)
	disks := make([]geom.Disk, 0, g.K)
	for i := 0; i < g.K; i++ {
		d := RandomArea(rng, g.Min, g.Max)
		if g.Disjoint {
			for tries := 0; tries < 64 && overlapsAnyDisk(d, disks); tries++ {
				d = RandomArea(rng, g.Min, g.Max)
			}
		}
		disks = append(disks, d)
		areas = append(areas, d)
	}
	s := compose(topo, areas, nil)
	s.gen = g.Name()
	return s
}

func overlapsAnyDisk(d geom.Disk, disks []geom.Disk) bool {
	for _, o := range disks {
		if d.Center.Dist(o.Center) < d.Radius+o.Radius {
			return true
		}
	}
	return false
}

// WithRadius implements FixedRadius.
func (g MultiDiskGen) WithRadius(r float64) Generator {
	return MultiDiskGen{K: g.K, Min: r, Max: r, Disjoint: g.Disjoint}
}

// MultiPerimeter implements MultiPerimeter.
func (g MultiDiskGen) MultiPerimeter() bool { return g.K > 1 }

// ---------------------------------------------------------------------
// cut — a line/conduit cut: a random strip (capsule) of given width
// failing every node and link it touches. Models trenching accidents,
// border strips, and EMP corridors.

// CutGen draws one capsule-shaped cut.
type CutGen struct {
	// Width is the full width of the strip (the capsule radius is
	// Width/2).
	Width float64
	// MinLen and MaxLen bound the cut length; the cut may extend past
	// the simulation area's edge (partial overlap is legitimate).
	MinLen, MaxLen float64
}

// Name implements Generator.
func (g CutGen) Name() string {
	n := "cut"
	if g.Width != 120 {
		n += joinParam(n, "cut", "w="+ftoa(g.Width))
	}
	if g.MinLen != 500 || g.MaxLen != 1500 {
		n += joinParam(n, "cut", "lmin="+ftoa(g.MinLen))
		n += joinParam(n, "cut", "lmax="+ftoa(g.MaxLen))
	}
	return n
}

// Generate implements Generator.
func (g CutGen) Generate(topo *topology.Topology, rng *rand.Rand) *Scenario {
	a := geom.Point{X: rng.Float64() * topology.Width, Y: rng.Float64() * topology.Height}
	theta := rng.Float64() * 2 * math.Pi
	length := g.MinLen + rng.Float64()*(g.MaxLen-g.MinLen)
	b := a.Add(geom.Point{X: math.Cos(theta) * length, Y: math.Sin(theta) * length})
	s := compose(topo, []Area{geom.Capsule{Seg: geom.Segment{A: a, B: b}, Radius: g.Width / 2}}, nil)
	s.gen = g.Name()
	return s
}

// WithRadius implements FixedRadius: the radius plays the capsule
// half-width, so a radius sweep widens the strip.
func (g CutGen) WithRadius(r float64) Generator {
	return CutGen{Width: 2 * r, MinLen: g.MinLen, MaxLen: g.MaxLen}
}

// MultiPerimeter implements MultiPerimeter: one capsule is one
// connected region.
func (CutGen) MultiPerimeter() bool { return false }

// ---------------------------------------------------------------------
// srlg — correlated shared-risk link groups: links are partitioned
// into geographically-close groups (grid cells over their midpoints),
// and a scenario fails every link of n sampled groups.

// SRLGGen fails whole shared-risk link groups.
type SRLGGen struct {
	// Groups is the partition-granularity target: links are bucketed
	// into a ceil(sqrt(Groups))² grid of cells by midpoint; the
	// non-empty cells are the named groups.
	Groups int
	// Fail is how many distinct groups fail per scenario.
	Fail int
}

// Name implements Generator.
func (g SRLGGen) Name() string {
	n := "srlg"
	if g.Groups != 16 {
		n += joinParam(n, "srlg", fmt.Sprintf("g=%d", g.Groups))
	}
	if g.Fail != 1 {
		n += joinParam(n, "srlg", fmt.Sprintf("n=%d", g.Fail))
	}
	return n
}

// Generate implements Generator.
func (g SRLGGen) Generate(topo *topology.Topology, rng *rand.Rand) *Scenario {
	groups := SRLGGroups(topo, g.Groups)
	var links []graph.LinkID
	if len(groups) > 0 {
		pick := g.Fail
		if pick > len(groups) {
			pick = len(groups)
		}
		for _, gi := range rng.Perm(len(groups))[:pick] {
			links = append(links, groups[gi].Links...)
		}
		sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	}
	s := compose(topo, nil, links)
	s.gen = g.Name()
	return s
}

// MultiPerimeter implements MultiPerimeter: a group's links share a
// grid cell but need not touch, and multiple groups may fail.
func (SRLGGen) MultiPerimeter() bool { return true }

// SRLGGroup is one named shared-risk group: the links whose midpoints
// fall into one grid cell.
type SRLGGroup struct {
	Name  string
	Links []graph.LinkID
}

// SRLGGroups partitions topo's links into geographically-close groups:
// a ceil(sqrt(target))² grid of equal cells over the simulation area,
// bucketing links by segment midpoint. The returned groups are the
// non-empty cells in row-major order — a deterministic pure function
// of the topology, so group identity is stable across runs.
func SRLGGroups(topo *topology.Topology, target int) []SRLGGroup {
	if target < 1 {
		target = 1
	}
	r := int(math.Ceil(math.Sqrt(float64(target))))
	cells := make([][]graph.LinkID, r*r)
	for i := 0; i < topo.G.NumLinks(); i++ {
		id := graph.LinkID(i)
		m := topo.LinkSegment(id).Midpoint()
		cx := int(m.X / (topology.Width / float64(r)))
		cy := int(m.Y / (topology.Height / float64(r)))
		if cx < 0 {
			cx = 0
		} else if cx >= r {
			cx = r - 1
		}
		if cy < 0 {
			cy = 0
		} else if cy >= r {
			cy = r - 1
		}
		cells[cy*r+cx] = append(cells[cy*r+cx], id)
	}
	var out []SRLGGroup
	for ci, links := range cells {
		if len(links) == 0 {
			continue
		}
		out = append(out, SRLGGroup{
			Name:  fmt.Sprintf("cell(%d,%d)", ci%r, ci/r),
			Links: links,
		})
	}
	return out
}

// ---------------------------------------------------------------------
// cascade — an ordered schedule of growing failures: disks strike one
// after another and nothing repairs, so every step's failure set
// contains the previous step's (the delete-only shape incremental
// recomputation chains across).

// CascadeGen draws a monotone failure schedule of Steps disks.
type CascadeGen struct {
	Steps    int
	Min, Max float64
}

// Name implements Generator.
func (g CascadeGen) Name() string {
	n := "cascade"
	if g.Steps != 3 {
		n += joinParam(n, "cascade", fmt.Sprintf("steps=%d", g.Steps))
	}
	n += radiusParamsAfter(n, "cascade", g.Min, g.Max)
	return n
}

// Generate implements Generator. The returned scenario is the peak
// (the union of all disks, == At(Steps-1)); At(i) exposes the
// intermediate steps.
func (g CascadeGen) Generate(topo *topology.Topology, rng *rand.Rand) *Scenario {
	disks := make([]geom.Disk, g.Steps)
	for i := range disks {
		disks[i] = RandomArea(rng, g.Min, g.Max)
	}
	steps := make([]*Scenario, g.Steps)
	for i := range steps {
		steps[i] = NewScenario(topo, disks[:i+1]...)
		steps[i].gen = g.Name()
	}
	peak := steps[g.Steps-1]
	peak.steps = steps
	return peak
}

// WithRadius implements FixedRadius.
func (g CascadeGen) WithRadius(r float64) Generator {
	return CascadeGen{Steps: g.Steps, Min: r, Max: r}
}

// MultiPerimeter implements MultiPerimeter: independent disks, so the
// peak union is usually disconnected.
func (g CascadeGen) MultiPerimeter() bool { return g.Steps > 1 }

// ---------------------------------------------------------------------
// transient — short-lived flaps with repair: disks strike one after
// another, then repair oldest-first until everything is back up (the
// recovery-schema line's transient-failure model). The schedule is NOT
// monotone past the peak — repair steps are only delete-only relative
// to the clean state.

// TransientGen draws a grow-then-repair failure schedule.
type TransientGen struct {
	Steps    int // disks striking (the schedule has 2*Steps entries)
	Min, Max float64
}

// Name implements Generator.
func (g TransientGen) Name() string {
	n := "transient"
	if g.Steps != 3 {
		n += joinParam(n, "transient", fmt.Sprintf("steps=%d", g.Steps))
	}
	n += radiusParamsAfter(n, "transient", g.Min, g.Max)
	return n
}

// Generate implements Generator. The returned scenario is the peak
// (== At(Steps-1)); the schedule grows for Steps entries and then
// repairs oldest-first for Steps more, ending all-up.
func (g TransientGen) Generate(topo *topology.Topology, rng *rand.Rand) *Scenario {
	disks := make([]geom.Disk, g.Steps)
	for i := range disks {
		disks[i] = RandomArea(rng, g.Min, g.Max)
	}
	steps := make([]*Scenario, 0, 2*g.Steps)
	for i := 0; i < g.Steps; i++ { // growth: disks[0..i]
		sc := NewScenario(topo, disks[:i+1]...)
		sc.gen = g.Name()
		steps = append(steps, sc)
	}
	for j := 1; j <= g.Steps; j++ { // repair: disks[j..], ending empty
		sc := NewScenario(topo, disks[j:]...)
		sc.gen = g.Name()
		steps = append(steps, sc)
	}
	peak := steps[g.Steps-1]
	peak.steps = steps
	return peak
}

// WithRadius implements FixedRadius.
func (g TransientGen) WithRadius(r float64) Generator {
	return TransientGen{Steps: g.Steps, Min: r, Max: r}
}

// MultiPerimeter implements MultiPerimeter.
func (g TransientGen) MultiPerimeter() bool { return g.Steps > 1 }

// ---------------------------------------------------------------------
// link — a single uniform random link flap with repair: the smallest
// transient failure (the OSPF emergency-path papers' model). Two-step
// schedule: down, then repaired.

// LinkFlapGen fails one uniformly random link.
type LinkFlapGen struct{}

// Name implements Generator.
func (LinkFlapGen) Name() string { return "link" }

// Generate implements Generator.
func (g LinkFlapGen) Generate(topo *topology.Topology, rng *rand.Rand) *Scenario {
	id := graph.LinkID(rng.Intn(topo.G.NumLinks()))
	down := NewLinkSet(topo, id)
	down.gen = g.Name()
	up := compose(topo, nil, nil)
	up.gen = g.Name()
	down.steps = []*Scenario{down, up}
	return down
}

// MultiPerimeter implements MultiPerimeter.
func (LinkFlapGen) MultiPerimeter() bool { return false }

// ---------------------------------------------------------------------
// Spec parsing.

// Kinds returns the registered generator kinds in registration order.
func Kinds() []string {
	return []string{"disk", "disks", "cut", "srlg", "cascade", "transient", "link"}
}

// AllDefaults returns one default-configured generator per registered
// kind, in Kinds order — the matrix the property tests sweep.
func AllDefaults() []Generator {
	out := make([]Generator, 0, len(Kinds()))
	for _, k := range Kinds() {
		g, err := ParseSpec(k)
		if err != nil {
			panic("failure: default spec " + k + " does not parse: " + err.Error())
		}
		out = append(out, g)
	}
	return out
}

// ParseSpecOrDefault parses a generator spec, mapping the empty string
// to the paper's default model.
func ParseSpecOrDefault(spec string) (Generator, error) {
	if spec == "" {
		return Default(), nil
	}
	return ParseSpec(spec)
}

// ParseSpec parses a generator spec string of the form
// "kind[:key=val,key=val,flag,...]":
//
//	disk[:rmin=R,rmax=R]            one disk (the paper's model)
//	disks[:k=N,rmin=R,rmax=R,disjoint]  k simultaneous disks
//	cut[:w=W,lmin=L,lmax=L]         one conduit cut of width W
//	srlg[:g=N,n=N]                  n correlated link groups out of ~g
//	cascade[:steps=N,rmin=R,rmax=R] monotone multi-disk schedule
//	transient[:steps=N,rmin=R,rmax=R] grow-then-repair schedule
//	link                            one random link flap
//
// Unknown kinds, unknown keys, malformed or out-of-range values are
// errors; ParseSpec never panics (fuzzed by FuzzGeneratorSpec).
func ParseSpec(spec string) (Generator, error) {
	kind, rest, hasParams := strings.Cut(spec, ":")
	p, err := parseParams(rest, hasParams)
	if err != nil {
		return nil, fmt.Errorf("failure: spec %q: %w", spec, err)
	}
	var g Generator
	switch kind {
	case "disk":
		d := DiskGen{Min: MinRadius, Max: MaxRadius}
		d.Min = p.float("rmin", d.Min)
		d.Max = p.float("rmax", d.Max)
		if err := radiusOK(d.Min, d.Max); err == nil {
			g = d
		} else {
			p.err = err
		}
	case "disks":
		d := MultiDiskGen{K: 2, Min: MinRadius, Max: MaxRadius}
		d.K = p.integer("k", d.K, 1, 16)
		d.Min = p.float("rmin", d.Min)
		d.Max = p.float("rmax", d.Max)
		d.Disjoint = p.flag("disjoint")
		if err := radiusOK(d.Min, d.Max); err == nil {
			g = d
		} else {
			p.err = err
		}
	case "cut":
		c := CutGen{Width: 120, MinLen: 500, MaxLen: 1500}
		c.Width = p.float("w", c.Width)
		c.MinLen = p.float("lmin", c.MinLen)
		c.MaxLen = p.float("lmax", c.MaxLen)
		switch {
		case !finitePositive(c.Width) || c.Width > 2*topology.Width:
			p.err = fmt.Errorf("width %g out of (0, %g]", c.Width, 2*topology.Width)
		case !finitePositive(c.MinLen) || !finitePositive(c.MaxLen) || c.MinLen > c.MaxLen || c.MaxLen > 4*topology.Width:
			p.err = fmt.Errorf("lengths [%g, %g] invalid", c.MinLen, c.MaxLen)
		default:
			g = c
		}
	case "srlg":
		s := SRLGGen{Groups: 16, Fail: 1}
		s.Groups = p.integer("g", s.Groups, 1, 1024)
		s.Fail = p.integer("n", s.Fail, 1, 1024)
		if s.Fail > s.Groups {
			p.err = fmt.Errorf("n=%d exceeds g=%d", s.Fail, s.Groups)
		} else {
			g = s
		}
	case "cascade":
		c := CascadeGen{Steps: 3, Min: MinRadius, Max: MaxRadius}
		c.Steps = p.integer("steps", c.Steps, 1, 16)
		c.Min = p.float("rmin", c.Min)
		c.Max = p.float("rmax", c.Max)
		if err := radiusOK(c.Min, c.Max); err == nil {
			g = c
		} else {
			p.err = err
		}
	case "transient":
		t := TransientGen{Steps: 3, Min: MinRadius, Max: MaxRadius}
		t.Steps = p.integer("steps", t.Steps, 1, 16)
		t.Min = p.float("rmin", t.Min)
		t.Max = p.float("rmax", t.Max)
		if err := radiusOK(t.Min, t.Max); err == nil {
			g = t
		} else {
			p.err = err
		}
	case "link":
		g = LinkFlapGen{}
	default:
		return nil, fmt.Errorf("failure: spec %q: unknown generator kind %q (known: %s)",
			spec, kind, strings.Join(Kinds(), ", "))
	}
	if p.err != nil {
		return nil, fmt.Errorf("failure: spec %q: %w", spec, p.err)
	}
	if extra := p.unused(); len(extra) > 0 {
		return nil, fmt.Errorf("failure: spec %q: unknown parameter(s) %s for %q",
			spec, strings.Join(extra, ", "), kind)
	}
	return g, nil
}

func radiusOK(min, max float64) error {
	if !finitePositive(min) || !finitePositive(max) || min > max || max > topology.Width {
		return fmt.Errorf("radius bounds [%g, %g] invalid (want 0 < rmin <= rmax <= %g)", min, max, topology.Width)
	}
	return nil
}

func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// params is the parsed key=value/flag list of a spec string. Getters
// record which keys were consumed so unknown keys fail the parse.
type params struct {
	kv    map[string]string
	flags map[string]bool
	order []string
	used  map[string]bool
	err   error
}

func parseParams(rest string, hasParams bool) (*params, error) {
	p := &params{kv: map[string]string{}, flags: map[string]bool{}, used: map[string]bool{}}
	if !hasParams {
		return p, nil
	}
	if rest == "" {
		return nil, fmt.Errorf("empty parameter list after ':'")
	}
	for _, part := range strings.Split(rest, ",") {
		if part == "" {
			return nil, fmt.Errorf("empty parameter")
		}
		k, v, isKV := strings.Cut(part, "=")
		if k == "" {
			return nil, fmt.Errorf("parameter %q has no key", part)
		}
		if _, dup := p.kv[k]; dup || p.flags[k] {
			return nil, fmt.Errorf("duplicate parameter %q", k)
		}
		if isKV {
			if v == "" {
				return nil, fmt.Errorf("parameter %q has no value", k)
			}
			p.kv[k] = v
		} else {
			p.flags[k] = true
		}
		p.order = append(p.order, k)
	}
	return p, nil
}

func (p *params) float(key string, def float64) float64 {
	v, ok := p.kv[key]
	if !ok {
		return def
	}
	p.used[key] = true
	f, err := strconv.ParseFloat(v, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("parameter %s=%q: not a number", key, v)
	}
	return f
}

func (p *params) integer(key string, def, min, max int) int {
	v, ok := p.kv[key]
	if !ok {
		return def
	}
	p.used[key] = true
	n, err := strconv.Atoi(v)
	if err != nil {
		if p.err == nil {
			p.err = fmt.Errorf("parameter %s=%q: not an integer", key, v)
		}
		return def
	}
	if n < min || n > max {
		if p.err == nil {
			p.err = fmt.Errorf("parameter %s=%d out of [%d, %d]", key, n, min, max)
		}
		return def
	}
	return n
}

func (p *params) flag(key string) bool {
	if p.flags[key] {
		p.used[key] = true
		return true
	}
	return false
}

func (p *params) unused() []string {
	var out []string
	for _, k := range p.order {
		if !p.used[k] {
			out = append(out, k)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Canonical-name helpers.

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// radiusParams renders ":rmin=..,rmax=.." when the bounds differ from
// the paper's defaults, "" otherwise.
func radiusParams(min, max float64) string {
	if min == MinRadius && max == MaxRadius {
		return ""
	}
	return ":rmin=" + ftoa(min) + ",rmax=" + ftoa(max)
}

// joinParam appends a parameter to a partially built name: ':' if the
// name is still the bare kind, ',' otherwise.
func joinParam(built, kind, param string) string {
	if built == kind {
		return ":" + param
	}
	return "," + param
}

// radiusParamsAfter is radiusParams aware of parameters already
// rendered into the name.
func radiusParamsAfter(built, kind string, min, max float64) string {
	if min == MinRadius && max == MaxRadius {
		return ""
	}
	return joinParam(built, kind, "rmin="+ftoa(min)) + ",rmax=" + ftoa(max)
}
