package failure

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
)

// ParseInstance rebuilds a concrete failure scenario from an instance
// descriptor as produced by Scenario.Desc(): ';'-joined terms of
//
//	disk(x,y,r)           one disk area
//	cut(ax,ay,bx,by,r)    one capsule area (spine endpoints, radius)
//	links(3,17,...)       explicitly failed links
//	none                  no failures
//
// The round trip ParseInstance(topo, s.Desc()) yields a scenario with
// an identical failure mask, which is what makes invariant repro
// strings actionable for every generator.
func ParseInstance(topo *topology.Topology, desc string) (*Scenario, error) {
	desc = strings.TrimSpace(desc)
	if desc == "" {
		return nil, fmt.Errorf("failure: empty instance descriptor")
	}
	if desc == "none" {
		return compose(topo, nil, nil), nil
	}
	var areas []Area
	var links []graph.LinkID
	for _, term := range strings.Split(desc, ";") {
		kind, args, err := splitTerm(term)
		if err != nil {
			return nil, err
		}
		switch kind {
		case "disk":
			v, err := floatArgs(term, args, 3)
			if err != nil {
				return nil, err
			}
			areas = append(areas, geom.Disk{Center: geom.Point{X: v[0], Y: v[1]}, Radius: v[2]})
		case "cut":
			v, err := floatArgs(term, args, 5)
			if err != nil {
				return nil, err
			}
			areas = append(areas, geom.Capsule{
				Seg:    geom.Segment{A: geom.Point{X: v[0], Y: v[1]}, B: geom.Point{X: v[2], Y: v[3]}},
				Radius: v[4],
			})
		case "links":
			for _, a := range args {
				n, err := strconv.Atoi(a)
				if err != nil || n < 0 || n >= topo.G.NumLinks() {
					return nil, fmt.Errorf("failure: instance term %q: bad link ID %q", term, a)
				}
				links = append(links, graph.LinkID(n))
			}
		default:
			return nil, fmt.Errorf("failure: instance term %q: unknown kind %q", term, kind)
		}
	}
	return compose(topo, areas, links), nil
}

func splitTerm(term string) (kind string, args []string, err error) {
	t := strings.TrimSpace(term)
	open := strings.IndexByte(t, '(')
	if open <= 0 || !strings.HasSuffix(t, ")") {
		return "", nil, fmt.Errorf("failure: malformed instance term %q", term)
	}
	inner := t[open+1 : len(t)-1]
	if inner == "" {
		return "", nil, fmt.Errorf("failure: instance term %q has no arguments", term)
	}
	return t[:open], strings.Split(inner, ","), nil
}

func floatArgs(term string, args []string, want int) ([]float64, error) {
	if len(args) != want {
		return nil, fmt.Errorf("failure: instance term %q: want %d arguments, got %d", term, want, len(args))
	}
	out := make([]float64, want)
	for i, a := range args {
		v, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
		if err != nil {
			return nil, fmt.Errorf("failure: instance term %q: bad number %q", term, a)
		}
		out[i] = v
	}
	return out, nil
}
