package fcp

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

func paperWorld(t *testing.T) (*topology.Topology, *FCP, *routing.LocalView) {
	t.Helper()
	topo := topology.PaperExample()
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	return topo, New(topo), routing.NewLocalView(topo, sc)
}

func TestRecoverPaperExample(t *testing.T) {
	topo, f, lv := paperWorld(t)
	res, err := f.Recover(lv, topology.PaperNode(6), topology.PaperNode(17))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("FCP must deliver v6 -> v17; dropped at v%d", res.DropAt+1)
	}
	if res.SPCalcs < 1 {
		t.Errorf("SPCalcs = %d, want >= 1", res.SPCalcs)
	}
	// The trajectory must end at the destination over live links only.
	nodes := res.Walk.Nodes()
	if nodes[0] != topology.PaperNode(6) || nodes[len(nodes)-1] != topology.PaperNode(17) {
		t.Errorf("trajectory endpoints wrong: %v", nodes)
	}
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	for _, rec := range res.Walk.Records {
		if sc.LinkDown(rec.Link) {
			t.Errorf("FCP traversed failed link %v", topo.G.Link(rec.Link))
		}
	}
}

func TestRecoverIrrecoverable(t *testing.T) {
	_, f, lv := paperWorld(t)
	// v10 is inside the failure area: FCP keeps trying, then drops.
	res, err := f.Recover(lv, topology.PaperNode(6), topology.PaperNode(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("cannot deliver to a failed node")
	}
	if res.SPCalcs < 1 {
		t.Errorf("SPCalcs = %d, want >= 1 (FCP computes before giving up)", res.SPCalcs)
	}
}

func TestRecoverInitiatorDown(t *testing.T) {
	_, f, lv := paperWorld(t)
	if _, err := f.Recover(lv, topology.PaperNode(10), topology.PaperNode(1)); err == nil {
		t.Error("recovery at a failed node must error")
	}
}

func TestFCPAlwaysDeliversWhenConnected(t *testing.T) {
	// FCP's defining property (Table III: recovery rate 100%): as long
	// as the destination is reachable, iterative failure-carrying
	// recomputation gets there.
	topo := topology.GenerateAS("AS1239", 7)
	f := New(topo)
	tables := routing.ComputeTables(topo)
	rng := rand.New(rand.NewSource(99))
	n := topo.G.NumNodes()
	tried := 0
	for tried < 200 {
		sc := failure.RandomScenario(topo, rng)
		lv := routing.NewLocalView(topo, sc)
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		outcome, initiator, _ := routing.TraceDefault(tables, lv, src, dst)
		if outcome != routing.DefaultBlocked {
			continue
		}
		tried++
		res, err := f.Recover(lv, initiator, dst)
		if err != nil {
			t.Fatal(err)
		}
		reachable := topo.G.Connected(initiator, dst, sc)
		if res.Delivered != reachable {
			t.Fatalf("delivered=%v but reachable=%v (initiator %d, dst %d)", res.Delivered, reachable, initiator, dst)
		}
		if res.Delivered {
			// Stretch >= 1: the trajectory cannot beat the true optimum.
			truth := spt.Compute(topo.G, initiator, sc)
			opt, _ := truth.CostTo(dst)
			if float64(res.Walk.Hops()) < opt {
				t.Fatalf("trajectory (%d hops) beats the optimum (%v)", res.Walk.Hops(), opt)
			}
		}
	}
}

// TestRecoverWarmMatchesCold is the warm-start differential contract:
// with a clean-tree provider installed every recomputation runs as a
// delete-only incremental update, and the full Result — trajectory,
// header, SPCalcs, drop point — must be bit-identical to the cold
// full-graph Dijkstra engine on the same cases.
func TestRecoverWarmMatchesCold(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 7)
	cold := New(topo)
	warm := New(topo)
	clean := map[graph.NodeID]*spt.Tree{}
	warm.UseCleanTrees(func(v graph.NodeID) *spt.Tree {
		tr := clean[v]
		if tr == nil {
			tr = spt.Compute(topo.G, v, graph.Nothing)
			clean[v] = tr
		}
		return tr
	})
	tables := routing.ComputeTables(topo)
	rng := rand.New(rand.NewSource(31))
	n := topo.G.NumNodes()
	tried := 0
	for tried < 200 {
		sc := failure.RandomScenario(topo, rng)
		lv := routing.NewLocalView(topo, sc)
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		outcome, initiator, _ := routing.TraceDefault(tables, lv, src, dst)
		if outcome != routing.DefaultBlocked {
			continue
		}
		tried++
		rc, err := cold.Recover(lv, initiator, dst)
		if err != nil {
			t.Fatal(err)
		}
		rw, err := warm.Recover(lv, initiator, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rc, rw) {
			t.Fatalf("warm result diverges from cold (initiator %d, dst %d):\n  cold: %+v\n  warm: %+v",
				initiator, dst, rc, rw)
		}
	}
}

func TestHeaderBytesGrow(t *testing.T) {
	// Header bytes on later hops reflect accumulated failures and the
	// current source route.
	_, f, lv := paperWorld(t)
	res, err := f.Recover(lv, topology.PaperNode(6), topology.PaperNode(17))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Walk.Records {
		if rec.HeaderBytes < 2*len(res.Header.FailedLinks[:1]) {
			t.Errorf("hop header bytes %d implausibly small", rec.HeaderBytes)
		}
	}
	if res.Header.RecordingBytes() == 0 {
		t.Error("final header must record something")
	}
}
