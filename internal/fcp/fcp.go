// Package fcp implements the Failure-Carrying Packets baseline
// (Lakshminarayanan et al., SIGCOMM 2007) in the source-routing
// version the paper compares against: packets carry the set of failed
// links discovered so far; whenever the packet meets a failure not yet
// recorded, the current router records it, recomputes a shortest path
// to the destination in the pre-failure topology minus all carried
// failures, and re-source-routes the packet. The packet is discarded
// only when the current router's pruned view has no path left.
package fcp

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

// FCP is the baseline engine bound to one topology. It is stateless
// apart from the immutable topology (and an optional clean-tree
// provider) and safe for concurrent use.
type FCP struct {
	topo *topology.Topology
	// clean optionally supplies the pre-failure forward SPT rooted at a
	// node. The carried failure set only grows, so every recomputation
	// is a delete-only update of that clean tree and can run as a
	// frontier-push spt.Recompute over the affected region instead of a
	// cold full-graph Dijkstra. Bit-identical either way (the
	// incremental engine's canonical tie-break guarantee).
	clean func(graph.NodeID) *spt.Tree
	// phase2 selects the per-iteration route engine; heur backs the
	// goal-directed engines. See UsePhase2.
	phase2 spt.Engine
	heur   spt.Heuristic
}

// New creates an FCP engine for topo.
func New(topo *topology.Topology) *FCP {
	return &FCP{topo: topo}
}

// UseCleanTrees installs a provider of pre-failure forward shortest
// path trees (the SPT every link-state router maintains anyway) that
// Recover warm-starts its per-iteration recomputations from. The
// provider must be safe for concurrent use and the returned trees are
// treated as read-only; World wires RTR's per-node sync.Once cache
// here so both protocols share one set of clean trees.
func (f *FCP) UseCleanTrees(clean func(graph.NodeID) *spt.Tree) { f.clean = clean }

// UsePhase2 selects the route engine for the per-hop recomputations:
// the default full-tree engine, or a goal-directed one that answers
// each (cur, dst) query with an A* search over the carried-failure
// view, settling only a corridor instead of the whole graph. heur is
// the admissible heuristic for the goal engines (typically shared with
// the RTR engine on the same world; nil degrades to plain Dijkstra
// with early exit). Routes are bit-identical across engines, so
// delivered walks, header evolution, and SPCalcs do not change.
func (f *FCP) UsePhase2(e spt.Engine, heur spt.Heuristic) {
	f.phase2 = e
	f.heur = heur
}

// Topology returns the engine's topology.
func (f *FCP) Topology() *topology.Topology { return f.topo }

// Result is the outcome of one FCP recovery attempt.
type Result struct {
	Delivered bool
	// Walk is the packet trajectory from the recovery initiator, with
	// per-hop header recording bytes (carried failed links plus the
	// current source route).
	Walk routing.Walk
	// SPCalcs is the number of shortest path calculations performed —
	// FCP recomputes at the initiator and at every newly met failure.
	SPCalcs int
	// Header is the final packet header (carried failures + last
	// source route).
	Header routing.Header
	// DropAt is the node that discarded the packet (only meaningful
	// when !Delivered): its pruned view had no path to the
	// destination.
	DropAt graph.NodeID
}

// maxRecomputes bounds the recovery loop defensively; each iteration
// records at least one new failed link, so the true bound is the
// number of failed links.
func (f *FCP) maxRecomputes() int { return f.topo.G.NumLinks() + 2 }

// recoverScratch pools the per-recovery working slices: path
// extraction buffers and the working header's failed-link and
// source-route backing. sealHeader clones the header fields into
// exact-size owned slices on every return path, so the scratch never
// escapes a Recover call.
type recoverScratch struct {
	nodes  []graph.NodeID
	links  []graph.LinkID
	failed []graph.LinkID
	route  []graph.NodeID
}

var scratchPool = sync.Pool{New: func() any { return new(recoverScratch) }}

// sealHeader replaces the header's pooled backing with owned
// exact-size copies (nil when empty, matching the semantics of the
// append-to-nil construction this replaces).
func sealHeader(h *routing.Header) {
	if len(h.FailedLinks) == 0 {
		h.FailedLinks = nil
	} else {
		h.FailedLinks = append(make([]graph.LinkID, 0, len(h.FailedLinks)), h.FailedLinks...)
	}
	if len(h.SourceRoute) == 0 {
		h.SourceRoute = nil
	} else {
		h.SourceRoute = append(make([]graph.NodeID, 0, len(h.SourceRoute)), h.SourceRoute...)
	}
}

// Recover attempts delivery from the recovery initiator to dst under
// the local view lv. The initiator already observes its own
// unreachable neighbors and records them in the header before the
// first computation (FCP packets carry failures the moment they are
// known).
func (f *FCP) Recover(lv *routing.LocalView, initiator, dst graph.NodeID) (Result, error) {
	var res Result
	if !lv.NodeAlive(initiator) {
		return res, fmt.Errorf("fcp: initiator %d is down", initiator)
	}
	g := f.topo.G
	res.Header.Mode = routing.ModeSource
	res.Header.RecInit = initiator

	cur := initiator
	// The pruned view only accumulates failures across iterations, so
	// one mask serves the whole recovery; likewise one pooled Dijkstra
	// workspace serves every recomputation (the tree is consumed before
	// the next iteration overwrites the scratch buffers).
	m := graph.NewMask(g)
	ws := spt.GetWorkspace()
	defer ws.Release()
	sc := scratchPool.Get().(*recoverScratch)
	defer scratchPool.Put(sc)
	res.Header.FailedLinks = sc.failed[:0]
	applied := 0 // prefix of Header.FailedLinks already failed into m
	for iter := 0; iter < f.maxRecomputes(); iter++ {
		// Record everything the current router can observe (adjacency
		// scan, same order as lv.UnreachableLinks, without the slice).
		for _, he := range g.Adj(cur) {
			if lv.NeighborUnreachable(cur, he.Link) {
				res.Header.RecordFailedLink(he.Link)
			}
		}
		sc.failed = res.Header.FailedLinks

		// Fail only the links recorded since the last iteration into
		// the pruned view — the carried set is append-only, so the mask
		// already holds the earlier prefix.
		for _, id := range res.Header.FailedLinks[applied:] {
			m.FailLink(id)
		}
		applied = len(res.Header.FailedLinks)

		// Compute a shortest path in the pruned view. Goal-directed
		// engines answer the (cur, dst) query directly; the full-tree
		// engine builds the tree (delete-only from the router's clean
		// tree when a provider is installed, cold otherwise) and
		// extracts. Either way it is one shortest-path calculation,
		// and the route is identical.
		var nodes []graph.NodeID
		var links []graph.LinkID
		var ok bool
		if f.phase2 != spt.EngineDijkstra {
			gr := spt.GoalResult{Nodes: sc.nodes[:0], Links: sc.links[:0]}
			ok = ws.ComputeGoal(&gr, g, cur, dst, m, f.heur)
			nodes, links = gr.Nodes, gr.Links
		} else {
			var tree *spt.Tree
			if f.clean != nil {
				tree = ws.Recompute(g, f.clean(cur), graph.Nothing, m)
			} else {
				tree = ws.Compute(g, cur, m)
			}
			nodes, ok = tree.AppendPathNodes(sc.nodes[:0], dst)
			if ok {
				links, _ = tree.AppendPathLinks(sc.links[:0], dst)
			}
		}
		res.SPCalcs++
		sc.nodes = nodes
		if !ok {
			res.DropAt = cur
			sealHeader(&res.Header)
			return res, nil
		}
		sc.links = links
		// The source route needs backing distinct from sc.nodes: on a
		// blocked hop the header keeps this iteration's route while the
		// next iteration's path extraction reuses sc.nodes.
		res.Header.SourceRoute = append(sc.route[:0], nodes...)
		sc.route = res.Header.SourceRoute
		res.Header.SourceIdx = 0
		bytes := res.Header.RecordingBytes()

		// Source-route until delivered or blocked.
		res.Walk.Reserve(len(links))
		blocked := false
		for i := 0; i+1 < len(nodes); i++ {
			if lv.NeighborUnreachable(nodes[i], links[i]) {
				cur = nodes[i]
				blocked = true
				break
			}
			res.Header.SourceIdx = i + 1
			res.Walk.Append(routing.HopRecord{From: nodes[i], To: nodes[i+1], Link: links[i], HeaderBytes: bytes})
		}
		if !blocked {
			res.Delivered = true
			sealHeader(&res.Header)
			return res, nil
		}
	}
	res.DropAt = cur
	sealHeader(&res.Header)
	return res, fmt.Errorf("fcp: recompute bound exceeded at node %d", cur)
}
