// Package fcp implements the Failure-Carrying Packets baseline
// (Lakshminarayanan et al., SIGCOMM 2007) in the source-routing
// version the paper compares against: packets carry the set of failed
// links discovered so far; whenever the packet meets a failure not yet
// recorded, the current router records it, recomputes a shortest path
// to the destination in the pre-failure topology minus all carried
// failures, and re-source-routes the packet. The packet is discarded
// only when the current router's pruned view has no path left.
package fcp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

// FCP is the baseline engine bound to one topology. It is stateless
// apart from the immutable topology and safe for concurrent use.
type FCP struct {
	topo *topology.Topology
}

// New creates an FCP engine for topo.
func New(topo *topology.Topology) *FCP {
	return &FCP{topo: topo}
}

// Topology returns the engine's topology.
func (f *FCP) Topology() *topology.Topology { return f.topo }

// Result is the outcome of one FCP recovery attempt.
type Result struct {
	Delivered bool
	// Walk is the packet trajectory from the recovery initiator, with
	// per-hop header recording bytes (carried failed links plus the
	// current source route).
	Walk routing.Walk
	// SPCalcs is the number of shortest path calculations performed —
	// FCP recomputes at the initiator and at every newly met failure.
	SPCalcs int
	// Header is the final packet header (carried failures + last
	// source route).
	Header routing.Header
	// DropAt is the node that discarded the packet (only meaningful
	// when !Delivered): its pruned view had no path to the
	// destination.
	DropAt graph.NodeID
}

// maxRecomputes bounds the recovery loop defensively; each iteration
// records at least one new failed link, so the true bound is the
// number of failed links.
func (f *FCP) maxRecomputes() int { return f.topo.G.NumLinks() + 2 }

// Recover attempts delivery from the recovery initiator to dst under
// the local view lv. The initiator already observes its own
// unreachable neighbors and records them in the header before the
// first computation (FCP packets carry failures the moment they are
// known).
func (f *FCP) Recover(lv *routing.LocalView, initiator, dst graph.NodeID) (Result, error) {
	var res Result
	if !lv.NodeAlive(initiator) {
		return res, fmt.Errorf("fcp: initiator %d is down", initiator)
	}
	g := f.topo.G
	res.Header.Mode = routing.ModeSource
	res.Header.RecInit = initiator

	cur := initiator
	// The pruned view only accumulates failures across iterations, so
	// one mask serves the whole recovery; likewise one pooled Dijkstra
	// workspace serves every recomputation (the tree is consumed before
	// the next iteration overwrites the scratch buffers).
	m := graph.NewMask(g)
	ws := spt.GetWorkspace()
	defer ws.Release()
	for iter := 0; iter < f.maxRecomputes(); iter++ {
		// Record everything the current router can observe (adjacency
		// scan, same order as lv.UnreachableLinks, without the slice).
		for _, he := range g.Adj(cur) {
			if lv.NeighborUnreachable(cur, he.Link) {
				res.Header.RecordFailedLink(he.Link)
			}
		}

		// Recompute a shortest path in the pruned view.
		for _, id := range res.Header.FailedLinks {
			m.FailLink(id)
		}
		tree := ws.Compute(g, cur, m)
		res.SPCalcs++
		nodes, ok := tree.PathNodes(dst)
		if !ok {
			res.DropAt = cur
			return res, nil
		}
		links, _ := tree.PathLinks(dst)
		res.Header.SourceRoute = append([]graph.NodeID(nil), nodes...)
		res.Header.SourceIdx = 0
		bytes := res.Header.RecordingBytes()

		// Source-route until delivered or blocked.
		blocked := false
		for i := 0; i+1 < len(nodes); i++ {
			if lv.NeighborUnreachable(nodes[i], links[i]) {
				cur = nodes[i]
				blocked = true
				break
			}
			res.Header.SourceIdx = i + 1
			res.Walk.Append(routing.HopRecord{From: nodes[i], To: nodes[i+1], Link: links[i], HeaderBytes: bytes})
		}
		if !blocked {
			res.Delivered = true
			return res, nil
		}
	}
	res.DropAt = cur
	return res, fmt.Errorf("fcp: recompute bound exceeded at node %d", cur)
}
