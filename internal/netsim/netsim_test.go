package netsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/igp"
	"repro/internal/routing"
	"repro/internal/topology"
)

// paperSim builds the worked-example world with one flow on the
// narrative path v7 -> v17.
func paperSim(t *testing.T, cfg Config) (*Sim, *topology.Topology) {
	t.Helper()
	topo := topology.PaperExample()
	rtr := core.New(topo, nil)
	tables := routing.ComputeTables(topo)
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	if len(cfg.Flows) == 0 {
		cfg.Flows = []Flow{{Src: topology.PaperNode(7), Dst: topology.PaperNode(17), Interval: 10 * time.Millisecond}}
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = time.Second
	}
	if cfg.Timers == (igp.Timers{}) {
		cfg.Timers = igp.TunedTimers()
	}
	return New(rtr, tables, sc, cfg), topo
}

func TestNoFailureAllDelivered(t *testing.T) {
	topo := topology.PaperExample()
	rtr := core.New(topo, nil)
	tables := routing.ComputeTables(topo)
	sc := failure.NewScenario(topo) // nothing fails
	cfg := Config{
		Flows:   []Flow{{Src: topology.PaperNode(7), Dst: topology.PaperNode(17), Interval: 50 * time.Millisecond}},
		Horizon: time.Second,
		Timers:  igp.TunedTimers(),
	}
	res := New(rtr, tables, sc, cfg).Run()
	if len(res.Fates) != 20 {
		t.Fatalf("sent %d packets, want 20", len(res.Fates))
	}
	if res.Delivered() != len(res.Fates) {
		t.Fatalf("delivered %d of %d without failures", res.Delivered(), len(res.Fates))
	}
	// All take the 4-hop converged path: delay exactly 4 x 1.8 ms.
	for _, f := range res.Fates {
		if f.Hops != 4 || f.DoneAt-f.SentAt != 4*routing.HopDelay {
			t.Fatalf("fate %+v, want 4 hops at 7.2 ms", f)
		}
		if f.Recovered {
			t.Fatal("no recovery should happen without failures")
		}
	}
}

func TestRecoveryTimeline(t *testing.T) {
	timers := igp.TunedTimers()
	sim, _ := paperSim(t, Config{Timers: timers})
	res := sim.Run()

	var preDetect, recovered, converged int
	for _, f := range res.Fates {
		// The packet reaches the initiator v6 after one hop (1.8 ms).
		blockedAt := f.SentAt + routing.HopDelay
		switch {
		case blockedAt < timers.Detection:
			// Dropped on the dead link before detection.
			if f.Delivered {
				t.Fatalf("packet sent at %v delivered before detection?", f.SentAt)
			}
			preDetect++
		case !f.Delivered:
			t.Fatalf("post-detection packet lost on the fixture: %+v", f)
		case f.Recovered:
			recovered++
			// 1 hop to v6 plus the 5-hop recovery path.
			if f.Hops != 6 {
				t.Fatalf("recovered packet hops = %d, want 6", f.Hops)
			}
		default:
			// Sent after the on-path routers converged: the fresh
			// tables route v7 -> v17 in 5 hops, no recovery involved.
			converged++
			if f.Hops != 5 {
				t.Fatalf("post-convergence packet hops = %d, want 5", f.Hops)
			}
		}
	}
	if preDetect == 0 {
		t.Error("some packets must die before detection")
	}
	if recovered == 0 {
		t.Error("packets between detection and convergence must be recovered by RTR")
	}
	if converged == 0 {
		t.Error("packets after convergence must use the fresh tables")
	}
}

func TestHeldPacketsDelayedNotDropped(t *testing.T) {
	// Packets arriving at the initiator during the collection walk are
	// delayed by the walk, not dropped (Section III-A).
	timers := igp.TunedTimers()
	sim, _ := paperSim(t, Config{Timers: timers})
	res := sim.Run()

	// The first post-detection packet triggers collection (11-hop walk,
	// 19.8 ms). A packet arriving at v6 during that window must be
	// delivered with extra delay.
	walk := 11 * routing.HopDelay
	foundHeld := false
	for _, f := range res.Fates {
		blockedAt := f.SentAt + routing.HopDelay
		if blockedAt < timers.Detection || !f.Delivered {
			continue
		}
		minDelay := 6 * routing.HopDelay // 1 hop to v6 + 5-hop recovery path
		delay := f.DoneAt - f.SentAt
		if delay > minDelay {
			foundHeld = true
			if delay > minDelay+walk+routing.HopDelay {
				t.Fatalf("held packet delayed %v, more than walk+path", delay)
			}
		}
	}
	if !foundHeld {
		t.Error("some packets must be held during the collection walk")
	}
}

func TestDisableRTRBaseline(t *testing.T) {
	timers := igp.TunedTimers()
	with, _ := paperSim(t, Config{Timers: timers})
	resWith := with.Run()
	without, _ := paperSim(t, Config{Timers: timers, DisableRTR: true})
	resWithout := without.Run()

	if resWith.Delivered() <= resWithout.Delivered() {
		t.Errorf("RTR must deliver more: %d vs %d", resWith.Delivered(), resWithout.Delivered())
	}
	// Without RTR, packets return only after the on-path routers
	// converge; with tuned timers inside a 1s horizon some late
	// packets make it via the post-convergence tables.
	lateWith, _ := resWith.DeliveredBetween(900*time.Millisecond, time.Second)
	lateWithout, _ := resWithout.DeliveredBetween(900*time.Millisecond, time.Second)
	if lateWithout == 0 {
		t.Error("post-convergence packets must be delivered even without RTR")
	}
	if lateWith < lateWithout {
		t.Error("RTR must not hurt post-convergence delivery")
	}
}

func TestDeliveredBetweenAndMeanDelay(t *testing.T) {
	sim, _ := paperSim(t, Config{Timers: igp.TunedTimers()})
	res := sim.Run()
	d, s := res.DeliveredBetween(0, time.Second)
	if s != len(res.Fates) {
		t.Errorf("window covers all packets: %d vs %d", s, len(res.Fates))
	}
	if d != res.Delivered() {
		t.Errorf("window delivery mismatch: %d vs %d", d, res.Delivered())
	}
	if md := res.MeanDelay(nil); md <= 0 {
		t.Errorf("mean delay = %v", md)
	}
	onlyRecovered := res.MeanDelay(func(f PacketFate) bool { return f.Recovered })
	if onlyRecovered < 6*routing.HopDelay {
		t.Errorf("recovered mean delay %v below the 6-hop floor", onlyRecovered)
	}
}

// TestAgreesWithAnalyticModel cross-checks the discrete-event
// simulator against the analytic availability model (sim.GoodputSeries
// logic): on random scenarios, the fraction of late-sent packets
// delivered with RTR must be at least the fraction without.
func TestAgreesWithAnalyticModel(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 7)
	rtr := core.New(topo, nil)
	tables := routing.ComputeTables(topo)
	rng := rand.New(rand.NewSource(3))
	timers := igp.TunedTimers()

	checked := 0
	for trial := 0; trial < 30 && checked < 5; trial++ {
		sc := failure.RandomScenario(topo, rng)
		if !sc.HasFailures() {
			continue
		}
		var flows []Flow
		n := topo.G.NumNodes()
		for i := 0; i < 6; i++ {
			src := graph.NodeID(rng.Intn(n))
			dst := graph.NodeID(rng.Intn(n))
			if src == dst || sc.NodeDown(src) {
				continue
			}
			flows = append(flows, Flow{Src: src, Dst: dst, Interval: 20 * time.Millisecond})
		}
		if len(flows) == 0 {
			continue
		}
		checked++
		cfg := Config{Flows: flows, Horizon: 800 * time.Millisecond, Timers: timers}
		withRTR := New(rtr, tables, sc, cfg).Run()
		cfg.DisableRTR = true
		without := New(rtr, tables, sc, cfg).Run()
		if withRTR.Delivered() < without.Delivered() {
			t.Fatalf("RTR delivered fewer packets (%d) than no recovery (%d)",
				withRTR.Delivered(), without.Delivered())
		}
		if len(withRTR.Fates) != len(without.Fates) {
			t.Fatal("runs must inject identical packet sets")
		}
	}
	if checked == 0 {
		t.Skip("no usable scenarios drawn")
	}
}

func TestBadFlowPanics(t *testing.T) {
	sim, _ := paperSim(t, Config{
		Flows:   []Flow{{Src: 0, Dst: 1, Interval: 0}},
		Horizon: time.Second,
		Timers:  igp.TunedTimers(),
	})
	defer func() {
		if recover() == nil {
			t.Error("zero interval must panic")
		}
	}()
	sim.Run()
}
