// Package netsim is a discrete-event packet-level simulator for the
// pre-convergence window: flows inject packets that are forwarded hop
// by hop (1.8 ms each) using whatever table each router currently has
// — stale before its IGP convergence time, fresh after — while RTR
// recovers blocked flows: the first blocked packet rides the
// collection walk, packets arriving during collection are held at the
// initiator (increased delay, no loss — Section III-A), and once the
// walk returns everything is source-routed over the recovery path.
//
// The packages above (sim, igp) model the same dynamics analytically;
// netsim derives them from individual packet events, and the test
// suite cross-checks the two.
package netsim

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/igp"
	"repro/internal/routing"
)

// Flow is a constant-rate packet source.
type Flow struct {
	Src, Dst graph.NodeID
	Interval time.Duration
}

// Config parameterizes one simulation run.
type Config struct {
	// Flows to inject from t=0.
	Flows []Flow
	// Horizon is the injection horizon; the run continues until all
	// in-flight packets resolve.
	Horizon time.Duration
	// Timers drive failure detection and per-router convergence.
	Timers igp.Timers
	// DisableRTR turns recovery off (packets on failed paths drop once
	// blocked), for the no-recovery baseline.
	DisableRTR bool
}

// PacketFate records one packet's outcome.
type PacketFate struct {
	Flow      int
	SentAt    time.Duration
	Delivered bool
	// DoneAt is the delivery or drop time.
	DoneAt time.Duration
	// Hops actually traversed.
	Hops int
	// Recovered marks delivery via an RTR recovery path.
	Recovered bool
}

// Result aggregates a run.
type Result struct {
	Fates []PacketFate
}

// Delivered returns the number of delivered packets.
func (r *Result) Delivered() int {
	n := 0
	for _, f := range r.Fates {
		if f.Delivered {
			n++
		}
	}
	return n
}

// DeliveredBetween counts packets SENT in [from, to) that were
// eventually delivered, and the total sent in that window.
func (r *Result) DeliveredBetween(from, to time.Duration) (delivered, sent int) {
	for _, f := range r.Fates {
		if f.SentAt < from || f.SentAt >= to {
			continue
		}
		sent++
		if f.Delivered {
			delivered++
		}
	}
	return delivered, sent
}

// MeanDelay returns the average end-to-end delay of delivered packets
// matching the filter (nil = all).
func (r *Result) MeanDelay(filter func(PacketFate) bool) time.Duration {
	var sum time.Duration
	n := 0
	for _, f := range r.Fates {
		if !f.Delivered {
			continue
		}
		if filter != nil && !filter(f) {
			continue
		}
		sum += f.DoneAt - f.SentAt
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq int // tie-breaker for determinism
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Sim is one simulation instance. Build with New, run with Run.
type Sim struct {
	rtr    *core.RTR
	tables *routing.Tables
	sc     *failure.Scenario
	lv     *routing.LocalView
	conv   *igp.Convergence
	cfg    Config

	// post-convergence tables (the true post-failure shortest paths).
	postTables *routing.Tables

	now time.Duration
	pq  eventQueue
	seq int

	// recovery state per initiator.
	sessions map[graph.NodeID]*recoveryState

	result Result
}

type recoveryState struct {
	sess *core.Session
	// doneAt is when the collection walk returns to the initiator.
	doneAt time.Duration
	// held packets waiting for the walk, by arrival.
	held []heldPacket
	// failed marks an initiator where collection was impossible.
	failed bool
}

type heldPacket struct {
	id  int
	dst graph.NodeID
}

// New builds a simulator for one failure scenario. The post-failure
// tables routers converge to are computed on the surviving topology.
func New(rtr *core.RTR, tables *routing.Tables, sc *failure.Scenario, cfg Config) *Sim {
	s := &Sim{
		rtr:      rtr,
		tables:   tables,
		sc:       sc,
		lv:       routing.NewLocalView(sc.Topo, sc),
		conv:     igp.Converge(sc, cfg.Timers),
		cfg:      cfg,
		sessions: make(map[graph.NodeID]*recoveryState),
	}
	s.postTables = postFailureTables(tables, sc)
	return s
}

// postFailureTables computes the converged tables of the surviving
// topology, incrementally from the pre-failure tables: failures are
// delete-only, so each destination's reverse tree only rebuilds the
// subtree hanging off the failure area instead of paying a cold
// Dijkstra (the result is bit-identical either way).
func postFailureTables(pre *routing.Tables, sc *failure.Scenario) *routing.Tables {
	return routing.RecomputeTablesUnder(sc.Topo, pre, sc)
}

func (s *Sim) schedule(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.pq, &event{at: at, seq: s.seq, fn: fn})
}

// Run injects all flows and processes events to completion.
func (s *Sim) Run() *Result {
	heap.Init(&s.pq)
	for fi, f := range s.cfg.Flows {
		fi, f := fi, f
		if f.Interval <= 0 {
			panic(fmt.Sprintf("netsim: flow %d has non-positive interval", fi))
		}
		for t := time.Duration(0); t < s.cfg.Horizon; t += f.Interval {
			t := t
			s.schedule(t, func() { s.inject(fi, f) })
		}
	}
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(*event)
		s.now = e.at
		e.fn()
	}
	return &s.result
}

// inject creates a packet and starts forwarding it at the source.
func (s *Sim) inject(flow int, f Flow) {
	id := len(s.result.Fates)
	s.result.Fates = append(s.result.Fates, PacketFate{Flow: flow, SentAt: s.now})
	if s.sc.NodeDown(f.Src) {
		s.drop(id)
		return
	}
	s.forwardDefault(id, f.Src, f.Dst)
}

func (s *Sim) fate(id int) *PacketFate { return &s.result.Fates[id] }

func (s *Sim) drop(id int) {
	f := s.fate(id)
	f.Delivered = false
	f.DoneAt = s.now
}

func (s *Sim) deliver(id int, recovered bool) {
	f := s.fate(id)
	f.Delivered = true
	f.Recovered = recovered
	f.DoneAt = s.now
}

// TTL bounds packet lifetime in hops, exactly like IP: during
// convergence, routers with inconsistent tables can form transient
// micro-loops, and the TTL is what kills the trapped packets.
const TTL = 255

// forwardDefault advances a packet one hop using the router's current
// table (stale until the router's convergence time).
func (s *Sim) forwardDefault(id int, at, dst graph.NodeID) {
	if at == dst {
		s.deliver(id, false)
		return
	}
	if s.fate(id).Hops >= TTL {
		s.drop(id) // micro-loop during convergence
		return
	}
	tables := s.tables
	if t := s.conv.RouterTime[at]; t > 0 && s.now >= t {
		tables = s.postTables
	}
	nh, link, ok := tables.NextHop(at, dst)
	if !ok {
		s.drop(id) // converged and still no route: unreachable
		return
	}
	if !s.lv.NeighborUnreachable(at, link) {
		s.fate(id).Hops++
		s.schedule(s.now+routing.HopDelay, func() { s.forwardDefault(id, nh, dst) })
		return
	}
	// Blocked. Before detection completes the router does not yet know
	// and the packet is lost on the dead link.
	if s.now < s.cfg.Timers.Detection {
		s.fate(id).Hops++
		s.drop(id)
		return
	}
	if s.cfg.DisableRTR {
		s.drop(id)
		return
	}
	s.recoverAt(id, at, dst, link)
}

// recoverAt hands a blocked packet to the RTR machinery at initiator v.
func (s *Sim) recoverAt(id int, v, dst graph.NodeID, trigger graph.LinkID) {
	st, ok := s.sessions[v]
	if !ok {
		st = &recoveryState{}
		s.sessions[v] = st
		sess, err := s.rtr.NewSession(s.lv, v)
		if err != nil {
			st.failed = true
		} else {
			st.sess = sess
			if col, err := sess.Collect(trigger); err != nil {
				st.failed = true
			} else {
				// The blocked packet rides the collection walk and is
				// back at v when it completes; later packets wait with
				// it (delayed, not dropped).
				st.doneAt = s.now + col.Walk.Duration()
				s.schedule(st.doneAt, func() { s.releaseHeld(v) })
			}
		}
	}
	if st.failed {
		s.drop(id)
		return
	}
	if s.now < st.doneAt {
		st.held = append(st.held, heldPacket{id: id, dst: dst})
		return
	}
	s.sourceRoute(id, st, dst)
}

// releaseHeld source-routes everything that waited for the walk.
func (s *Sim) releaseHeld(v graph.NodeID) {
	st := s.sessions[v]
	held := st.held
	st.held = nil
	for _, h := range held {
		s.sourceRoute(h.id, st, h.dst)
	}
}

// sourceRoute sends a packet over the initiator's recovery path for
// dst, hop by hop; a missed failure on the path drops it.
func (s *Sim) sourceRoute(id int, st *recoveryState, dst graph.NodeID) {
	rt, ok := st.sess.RecoveryPath(dst)
	if !ok {
		s.drop(id) // identified unreachable: early discard
		return
	}
	s.sourceHop(id, rt, 0)
}

func (s *Sim) sourceHop(id int, rt core.Route, i int) {
	if i >= len(rt.Links) {
		s.deliver(id, true)
		return
	}
	if s.lv.NeighborUnreachable(rt.Nodes[i], rt.Links[i]) {
		s.drop(id) // phase 1 missed this failure
		return
	}
	s.fate(id).Hops++
	s.schedule(s.now+routing.HopDelay, func() { s.sourceHop(id, rt, i+1) })
}
