package netsim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/igp"
	"repro/internal/sim"
	"repro/internal/spt"
)

// TestPhase2EnginesIdenticalFates checks that the phase-2 engine
// selector is invisible at the packet level: a discrete-event run over
// a world built with a goal-directed engine produces the identical
// per-packet fate list (delivery, hops, timestamps, recovery marks) as
// the default full-tree world. The engine threads through the
// *core.RTR handle netsim holds, so this exercises the whole stack.
func TestPhase2EnginesIdenticalFates(t *testing.T) {
	const as = "AS1239"
	var base *Result
	var baseEng spt.Engine
	for _, eng := range []spt.Engine{spt.EngineDijkstra, spt.EngineAStar, spt.EngineALT} {
		w, err := sim.NewWorldPhase2(as, 1, eng)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(21))
		sc := failure.RandomScenario(w.Topo, rng)
		for !sc.HasFailures() {
			sc = failure.RandomScenario(w.Topo, rng)
		}
		n := w.Topo.G.NumNodes()
		var flows []Flow
		for i := 0; i < 8; i++ {
			src := graph.NodeID(rng.Intn(n))
			dst := graph.NodeID(rng.Intn(n))
			if src == dst || sc.NodeDown(src) {
				continue
			}
			flows = append(flows, Flow{Src: src, Dst: dst, Interval: 25 * time.Millisecond})
		}
		if len(flows) == 0 {
			t.Fatal("no flows drawn")
		}
		cfg := Config{Flows: flows, Horizon: 600 * time.Millisecond, Timers: igp.TunedTimers()}
		res := New(w.RTR, w.Tables, sc, cfg).Run()
		if len(res.Fates) == 0 {
			t.Fatal("no packets sent")
		}
		if base == nil {
			base, baseEng = res, eng
			continue
		}
		if !reflect.DeepEqual(res.Fates, base.Fates) {
			t.Errorf("packet fates differ between %v and %v", baseEng, eng)
		}
	}
}
