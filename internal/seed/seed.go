// Package seed derives independent, reproducible RNG seeds from a
// single base seed and a path of string labels. It replaces the
// fragile seed+1/seed+2 offset convention: offsets collide as soon as
// two call sites pick the same increment, and they silently correlate
// streams when a caller passes bases one apart. Hashing the labels in
// gives every (experiment, topology, shard) its own stream no matter
// what base the user chose, and the derivation is stable across runs,
// platforms, and process boundaries — the property the sweep engine's
// checkpoint/resume protocol depends on.
package seed

import (
	"encoding/binary"
	"hash/fnv"
)

// Derive returns a deterministic seed for the RNG stream identified by
// the base seed plus the label path. The same (base, parts) always
// yields the same seed; any change to the base, a label, label order,
// or label count yields an unrelated one. Labels are length-prefixed
// before hashing, so ("ab", "c") and ("a", "bc") differ.
func Derive(base int64, parts ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	for _, p := range parts {
		binary.BigEndian.PutUint32(buf[:4], uint32(len(p)))
		h.Write(buf[:4])
		h.Write([]byte(p))
	}
	return int64(h.Sum64())
}
