package seed

import "testing"

// TestDeriveStable pins the derivation against golden values: the
// sweep checkpoint format stores shard keys, not seeds, so a changed
// hash would silently re-seed every shard on resume. Any edit to the
// hashing scheme must bump the sweep checkpoint version alongside
// these constants.
func TestDeriveStable(t *testing.T) {
	cases := []struct {
		base  int64
		parts []string
		want  int64
	}{
		{1, nil, -6284782960179005422},
		{1, []string{"cases", "AS209", "0"}, -7897039878816687917},
		{1, []string{"fig11", "AS7018", "120", "3"}, 7841703351606078421},
		{-42, []string{"loss"}, -6319594670248737767},
	}
	for _, c := range cases {
		if got := Derive(c.base, c.parts...); got != c.want {
			t.Errorf("Derive(%d, %q) = %d, want %d", c.base, c.parts, got, c.want)
		}
	}
}

func TestDeriveSensitivity(t *testing.T) {
	base := Derive(7, "a", "b")
	variants := []int64{
		Derive(8, "a", "b"),     // base changed
		Derive(7, "b", "a"),     // order changed
		Derive(7, "a", "b", ""), // extra empty label
		Derive(7, "ab"),         // joined labels
		Derive(7, "a"),          // dropped label
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base derivation", i)
		}
	}
}

// TestDeriveNoBoundaryAmbiguity checks the length-prefixing: moving a
// byte across a label boundary must change the result.
func TestDeriveNoBoundaryAmbiguity(t *testing.T) {
	if Derive(1, "ab", "c") == Derive(1, "a", "bc") {
		t.Error("label boundaries are ambiguous")
	}
}

func TestDeriveRepeatable(t *testing.T) {
	for i := 0; i < 100; i++ {
		if Derive(int64(i), "x") != Derive(int64(i), "x") {
			t.Fatal("Derive is not a pure function")
		}
	}
}
