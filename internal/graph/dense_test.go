package graph

import (
	"math/rand"
	"testing"
)

// funcDenied is an overlay with no dense tables of its own, forcing
// Compile down the per-element evaluation path.
type funcDenied struct {
	node func(NodeID) bool
	link func(LinkID) bool
}

func (d funcDenied) NodeDown(v NodeID) bool  { return d.node(v) }
func (d funcDenied) LinkDown(id LinkID) bool { return d.link(id) }

// randGraph returns a connected random graph on n nodes: a spanning
// path plus `extra` random chords.
func randGraph(rng *rand.Rand, n, extra int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddLink(NodeID(i), NodeID(i+1))
	}
	for i := 0; i < extra; i++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b || g.HasLink(a, b) {
			continue
		}
		g.MustAddLink(a, b)
	}
	return g
}

// assertViewMatches checks that the compiled view answers every
// NodeDown/LinkDown query exactly like its source overlay.
func assertViewMatches(t *testing.T, g *Graph, src Denied, view *DenseView) {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		if got, want := view.NodeDown(NodeID(v)), src.NodeDown(NodeID(v)); got != want {
			t.Fatalf("NodeDown(%d) = %v, source says %v", v, got, want)
		}
	}
	for id := 0; id < g.NumLinks(); id++ {
		if got, want := view.LinkDown(LinkID(id)), src.LinkDown(LinkID(id)); got != want {
			t.Fatalf("LinkDown(%d) = %v, source says %v", id, got, want)
		}
	}
}

func TestDenseViewMatchesSource(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randGraph(rng, 2+rng.Intn(40), rng.Intn(60))

		// A Mask source exercises the table-copy path.
		m := NewMask(g)
		for v := 0; v < g.NumNodes(); v++ {
			if rng.Intn(4) == 0 {
				m.FailNode(NodeID(v))
			}
		}
		for id := 0; id < g.NumLinks(); id++ {
			if rng.Intn(4) == 0 {
				m.FailLink(LinkID(id))
			}
		}
		assertViewMatches(t, g, m, CompileDense(g, m))

		// An opaque functional source exercises per-element evaluation.
		fd := funcDenied{
			node: func(v NodeID) bool { return int(v)%3 == trial%3 },
			link: func(id LinkID) bool { return int(id)%2 == trial%2 },
		}
		assertViewMatches(t, g, fd, CompileDense(g, fd))

		// A union of the two exercises the composite path.
		u := Union{X: m, Y: fd}
		assertViewMatches(t, g, u, CompileDense(g, u))

		// Nothing compiles to the all-up view.
		assertViewMatches(t, g, Nothing, CompileDense(g, Nothing))
	}
}

// TestDenseViewSnapshot verifies Compile takes a snapshot: later
// mutations of the source must not leak into the view.
func TestDenseViewSnapshot(t *testing.T) {
	g := line(4)
	m := NewMask(g)
	view := CompileDense(g, m)
	m.FailNode(1)
	m.FailLink(0)
	if view.NodeDown(1) || view.LinkDown(0) {
		t.Fatal("view must be a snapshot, not a live alias of the mask")
	}
}

// TestDenseViewReuse verifies a view can be recompiled across graphs of
// different sizes without stale state surviving.
func TestDenseViewReuse(t *testing.T) {
	big := line(10)
	m := NewMask(big)
	for v := 0; v < big.NumNodes(); v++ {
		m.FailNode(NodeID(v))
	}
	for id := 0; id < big.NumLinks(); id++ {
		m.FailLink(LinkID(id))
	}
	var view DenseView
	view.Compile(big, m)

	small := line(5)
	view.Compile(small, Nothing)
	assertViewMatches(t, small, Nothing, &view)

	view.Compile(big, m)
	assertViewMatches(t, big, m, &view)
}

func TestDenseTablesOf(t *testing.T) {
	g := line(6)

	nodes, links, ok := DenseTablesOf(Nothing)
	if !ok || nodes != nil || links != nil {
		t.Fatalf("DenseTablesOf(Nothing) = (%v, %v, %v), want (nil, nil, true)", nodes, links, ok)
	}

	m := NewMask(g)
	m.FailNode(2)
	nodes, links, ok = DenseTablesOf(m)
	if !ok {
		t.Fatal("a Mask must expose dense tables")
	}
	if len(nodes) != g.NumNodes() || len(links) != g.NumLinks() {
		t.Fatalf("table sizes (%d, %d), want (%d, %d)", len(nodes), len(links), g.NumNodes(), g.NumLinks())
	}
	if !nodes[2] {
		t.Fatal("mask tables must reflect FailNode(2)")
	}

	if _, _, ok := DenseTablesOf(funcDenied{
		node: func(NodeID) bool { return false },
		link: func(LinkID) bool { return false },
	}); ok {
		t.Fatal("an opaque Denied must not claim dense tables")
	}
}
