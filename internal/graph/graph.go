// Package graph implements the undirected network graph substrate used
// throughout the repository: routers are nodes, links are undirected
// edges with stable 32-bit identifiers and (possibly asymmetric)
// per-direction costs, as in the paper's network model.
//
// The graph is append-only: links are added during construction and
// never removed. Failures are expressed as overlays (see Denied and
// Mask) so that many failure scenarios can share one immutable graph.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// NodeID identifies a router. In-memory identifiers are 32 bits so
// that synthesized city/continent-scale topologies (10^5 nodes and
// beyond) are representable; the paper's 16-bit on-the-wire header
// encoding is enforced separately by the routing codec.
type NodeID uint32

// LinkID identifies an undirected link. Like NodeID it is 32 bits in
// memory; the packet header's 16-bit wire representation is a codec
// concern, not a graph limit.
type LinkID uint32

// MaxNodes is the maximum number of nodes a Graph can hold. Capped at
// MaxInt32 (not MaxUint32) so IDs always fit in the int32 parent /
// parent-link arrays used by the SPT layer, where -1 is a sentinel.
const MaxNodes = math.MaxInt32

// MaxLinks is the maximum number of links a Graph can hold; capped at
// MaxInt32 for the same sentinel reason as MaxNodes.
const MaxLinks = math.MaxInt32

// Link is an undirected link between routers A and B. CostAB is the
// cost of traversing the link from A to B and CostBA the reverse cost;
// the two may differ (asymmetric links).
type Link struct {
	ID     LinkID
	A, B   NodeID
	CostAB float64
	CostBA float64
}

// Other returns the endpoint of the link opposite to v.
// It panics if v is not an endpoint.
func (l Link) Other(v NodeID) NodeID {
	switch v {
	case l.A:
		return l.B
	case l.B:
		return l.A
	default:
		panic(fmt.Sprintf("graph: node %d is not an endpoint of link %d (%d-%d)", v, l.ID, l.A, l.B))
	}
}

// CostFrom returns the cost of traversing the link starting at
// endpoint v. It panics if v is not an endpoint.
func (l Link) CostFrom(v NodeID) float64 {
	switch v {
	case l.A:
		return l.CostAB
	case l.B:
		return l.CostBA
	default:
		panic(fmt.Sprintf("graph: node %d is not an endpoint of link %d (%d-%d)", v, l.ID, l.A, l.B))
	}
}

// HasEndpoint reports whether v is one of the link's endpoints.
func (l Link) HasEndpoint(v NodeID) bool { return l.A == v || l.B == v }

// String implements fmt.Stringer.
func (l Link) String() string {
	return fmt.Sprintf("e%d(%d-%d)", l.ID, l.A, l.B)
}

// Halfedge is a link viewed from one of its endpoints, as stored in
// adjacency lists: the neighbor it leads to and the cost in that
// direction.
type Halfedge struct {
	Link     LinkID
	Neighbor NodeID
	Cost     float64
}

// Graph is an immutable-after-construction undirected graph.
// The zero value is an empty graph with no nodes; use New.
type Graph struct {
	n     int
	links []Link
	adj   [][]Halfedge
}

// Errors returned by graph construction.
var (
	ErrNodeOutOfRange = errors.New("graph: node out of range")
	ErrSelfLoop       = errors.New("graph: self loops are not allowed")
	ErrTooManyNodes   = errors.New("graph: too many nodes")
	ErrTooManyLinks   = errors.New("graph: too many links")
	ErrBadCost        = errors.New("graph: link cost must be positive and finite")
)

// WithNodes returns an empty graph with n nodes and no links. Unlike
// New it reports capacity violations as errors rather than panicking,
// so callers constructing graphs from external input (codecs,
// generators) can propagate a descriptive failure.
func WithNodes(n int) (*Graph, error) {
	if n < 0 || n > MaxNodes {
		return nil, fmt.Errorf("%w: %d nodes (capacity %d)", ErrTooManyNodes, n, MaxNodes)
	}
	return &Graph{
		n:   n,
		adj: make([][]Halfedge, n),
	}, nil
}

// New returns an empty graph with n nodes and no links.
// It panics if n is negative or exceeds MaxNodes; use WithNodes to get
// an error instead.
func New(n int) *Graph {
	g, err := WithNodes(n)
	if err != nil {
		panic(err)
	}
	return g
}

// AddLink adds an undirected link between a and b with unit cost in
// both directions and returns its ID.
func (g *Graph) AddLink(a, b NodeID) (LinkID, error) {
	return g.AddLinkCost(a, b, 1, 1)
}

// AddLinkCost adds an undirected link between a and b with the given
// per-direction costs and returns its ID. Parallel links are allowed
// (the graph is a multigraph), self loops are not.
func (g *Graph) AddLinkCost(a, b NodeID, costAB, costBA float64) (LinkID, error) {
	if int(a) >= g.n || int(b) >= g.n {
		return 0, fmt.Errorf("%w: (%d,%d) with %d nodes", ErrNodeOutOfRange, a, b, g.n)
	}
	if a == b {
		return 0, fmt.Errorf("%w: node %d", ErrSelfLoop, a)
	}
	if !validCost(costAB) || !validCost(costBA) {
		return 0, fmt.Errorf("%w: (%g,%g)", ErrBadCost, costAB, costBA)
	}
	if len(g.links) >= MaxLinks {
		return 0, fmt.Errorf("%w: %d links (capacity %d, %d nodes)", ErrTooManyLinks, len(g.links), MaxLinks, g.n)
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, A: a, B: b, CostAB: costAB, CostBA: costBA})
	g.adj[a] = append(g.adj[a], Halfedge{Link: id, Neighbor: b, Cost: costAB})
	g.adj[b] = append(g.adj[b], Halfedge{Link: id, Neighbor: a, Cost: costBA})
	return id, nil
}

// MustAddLink is AddLink that panics on error; intended for fixtures
// and generators whose inputs are known valid.
func (g *Graph) MustAddLink(a, b NodeID) LinkID {
	id, err := g.AddLink(a, b)
	if err != nil {
		panic(err)
	}
	return id
}

func validCost(c float64) bool {
	return c > 0 && !math.IsInf(c, 0) && !math.IsNaN(c)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Link returns the link with the given ID.
// It panics if the ID is out of range.
func (g *Graph) Link(id LinkID) Link {
	return g.links[id]
}

// Links returns a copy of the link table.
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// Adj returns the adjacency list of v. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Adj(v NodeID) []Halfedge {
	return g.adj[v]
}

// Degree returns the number of incident links of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Neighbors returns the neighbors of v in adjacency order. Parallel
// links yield repeated neighbors.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.adj[v]))
	for _, h := range g.adj[v] {
		out = append(out, h.Neighbor)
	}
	return out
}

// LinkBetween returns the ID of a link between a and b, if any exists.
// With parallel links, the first added wins.
func (g *Graph) LinkBetween(a, b NodeID) (LinkID, bool) {
	if int(a) >= g.n {
		return 0, false
	}
	for _, h := range g.adj[a] {
		if h.Neighbor == b {
			return h.Link, true
		}
	}
	return 0, false
}

// HasLink reports whether a link between a and b exists.
func (g *Graph) HasLink(a, b NodeID) bool {
	_, ok := g.LinkBetween(a, b)
	return ok
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.links = make([]Link, len(g.links))
	copy(c.links, g.links)
	for v := range g.adj {
		c.adj[v] = make([]Halfedge, len(g.adj[v]))
		copy(c.adj[v], g.adj[v])
	}
	return c
}
