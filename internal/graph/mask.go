package graph

// Denied is a failure overlay: it reports which nodes and links are
// removed from the graph. Implementations include failure.Scenario
// (ground truth), routing views, and the per-initiator pruned views
// RTR builds in its second phase.
type Denied interface {
	NodeDown(NodeID) bool
	LinkDown(LinkID) bool
}

// Nothing is a Denied with no failures.
var Nothing Denied = nothing{}

type nothing struct{}

func (nothing) NodeDown(NodeID) bool { return false }
func (nothing) LinkDown(LinkID) bool { return false }

// Mask is a mutable Denied backed by boolean tables. The zero value is
// not usable; create one with NewMask.
type Mask struct {
	nodes []bool
	links []bool
}

var _ DenseTabler = (*Mask)(nil)

// NewMask returns an all-up Mask sized for g.
func NewMask(g *Graph) *Mask {
	return &Mask{
		nodes: make([]bool, g.NumNodes()),
		links: make([]bool, g.NumLinks()),
	}
}

// FailNode marks node v as failed.
func (m *Mask) FailNode(v NodeID) { m.nodes[v] = true }

// FailLink marks link id as failed.
func (m *Mask) FailLink(id LinkID) { m.links[id] = true }

// NodeDown implements Denied.
func (m *Mask) NodeDown(v NodeID) bool { return m.nodes[v] }

// LinkDown implements Denied.
func (m *Mask) LinkDown(id LinkID) bool { return m.links[id] }

// DenseTables implements DenseTabler: the mask's own tables, shared —
// callers must not mutate them and must not hold them across
// FailNode/FailLink calls.
func (m *Mask) DenseTables() (nodes, links []bool) { return m.nodes, m.links }

// DownNodes returns the failed nodes in ascending order.
func (m *Mask) DownNodes() []NodeID {
	var out []NodeID
	for v, down := range m.nodes {
		if down {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// DownLinks returns the failed links in ascending order.
func (m *Mask) DownLinks() []LinkID {
	var out []LinkID
	for id, down := range m.links {
		if down {
			out = append(out, LinkID(id))
		}
	}
	return out
}

// Clone returns a deep copy of the mask.
func (m *Mask) Clone() *Mask {
	c := &Mask{
		nodes: make([]bool, len(m.nodes)),
		links: make([]bool, len(m.links)),
	}
	copy(c.nodes, m.nodes)
	copy(c.links, m.links)
	return c
}

// Union is the Denied that removes everything removed by either of its
// operands. It is used to compose a base failure scenario with
// additionally learned failures.
type Union struct {
	X, Y Denied
}

var _ Denied = Union{}

// NodeDown implements Denied.
func (u Union) NodeDown(v NodeID) bool { return u.X.NodeDown(v) || u.Y.NodeDown(v) }

// LinkDown implements Denied.
func (u Union) LinkDown(id LinkID) bool { return u.X.LinkDown(id) || u.Y.LinkDown(id) }

// Usable reports whether the link l can be traversed under d: the link
// itself and both endpoints must be up.
func Usable(l Link, d Denied) bool {
	return !d.LinkDown(l.ID) && !d.NodeDown(l.A) && !d.NodeDown(l.B)
}
