package graph

// ArticulationPoints returns the cut vertices of the live subgraph
// under d: the live nodes whose removal would increase the number of
// connected components among the remaining live nodes. Implemented
// with Tarjan's low-link algorithm (iterative, so deep topologies
// cannot overflow the stack).
//
// MRC uses this to identify the nodes no backup configuration can
// isolate; their failure partitions the network and defeats every
// recovery scheme.
func (g *Graph) ArticulationPoints(d Denied) []NodeID {
	n := g.n
	disc := make([]int, n) // discovery index, 0 = unvisited
	low := make([]int, n)  // low-link value
	isArt := make([]bool, n)
	timer := 0

	type frame struct {
		v NodeID
		// parentLink is the tree edge into v (-1 for roots); comparing
		// links rather than nodes keeps parallel links correct: a
		// second link back to the parent is a genuine back edge.
		parentLink int32
		parent     int32 // parent node, -1 for roots
		childIdx   int   // next adjacency index to examine
		children   int   // tree children found so far (for the root rule)
	}

	for start := 0; start < n; start++ {
		root := NodeID(start)
		if disc[root] != 0 || d.NodeDown(root) {
			continue
		}
		timer++
		disc[root] = timer
		low[root] = timer
		stack := []frame{{v: root, parentLink: -1, parent: -1}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := g.adj[f.v]
			advanced := false
			for f.childIdx < len(adj) {
				he := adj[f.childIdx]
				f.childIdx++
				w := he.Neighbor
				if d.LinkDown(he.Link) || d.NodeDown(w) {
					continue
				}
				if disc[w] == 0 {
					// Tree edge: descend.
					f.children++
					timer++
					disc[w] = timer
					low[w] = timer
					stack = append(stack, frame{v: w, parentLink: int32(he.Link), parent: int32(f.v)})
					advanced = true
					break
				}
				if int32(he.Link) != f.parentLink && disc[w] < low[f.v] {
					low[f.v] = disc[w] // back edge (or parallel link to the parent)
				}
			}
			if advanced {
				continue
			}
			// f is finished; propagate its low-link to the parent.
			done := *f
			stack = stack[:len(stack)-1]
			if done.parent >= 0 {
				p := &stack[len(stack)-1]
				if low[done.v] < low[p.v] {
					low[p.v] = low[done.v]
				}
				if low[done.v] >= disc[p.v] && p.parent >= 0 {
					isArt[p.v] = true
				}
			} else if done.children >= 2 {
				isArt[done.v] = true // root with two or more tree children
			}
		}
	}

	var out []NodeID
	for v := 0; v < n; v++ {
		if isArt[v] {
			out = append(out, NodeID(v))
		}
	}
	return out
}
