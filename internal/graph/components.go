package graph

// Reachable returns the set of nodes reachable from src under the
// failure overlay d, as a boolean table indexed by NodeID. If src
// itself is down the result is all-false.
func (g *Graph) Reachable(src NodeID, d Denied) []bool {
	seen := make([]bool, g.n)
	if d.NodeDown(src) {
		return seen
	}
	stack := make([]NodeID, 0, g.n)
	stack = append(stack, src)
	seen[src] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[v] {
			if seen[h.Neighbor] || d.LinkDown(h.Link) || d.NodeDown(h.Neighbor) {
				continue
			}
			seen[h.Neighbor] = true
			stack = append(stack, h.Neighbor)
		}
	}
	return seen
}

// Connected reports whether t is reachable from s under d.
func (g *Graph) Connected(s, t NodeID, d Denied) bool {
	if d.NodeDown(s) || d.NodeDown(t) {
		return false
	}
	if s == t {
		return true
	}
	return g.Reachable(s, d)[t]
}

// ConnectedAll reports whether all live nodes form a single connected
// component under d. A graph whose live part is empty is connected.
func (g *Graph) ConnectedAll(d Denied) bool {
	var first NodeID
	found := false
	for v := 0; v < g.n; v++ {
		if !d.NodeDown(NodeID(v)) {
			first = NodeID(v)
			found = true
			break
		}
	}
	if !found {
		return true
	}
	seen := g.Reachable(first, d)
	for v := 0; v < g.n; v++ {
		if !d.NodeDown(NodeID(v)) && !seen[v] {
			return false
		}
	}
	return true
}

// Components returns the connected components of the live subgraph
// under d, each as an ascending list of node IDs. Failed nodes belong
// to no component.
func (g *Graph) Components(d Denied) [][]NodeID {
	var comps [][]NodeID
	assigned := make([]bool, g.n)
	for v := 0; v < g.n; v++ {
		id := NodeID(v)
		if assigned[v] || d.NodeDown(id) {
			continue
		}
		seen := g.Reachable(id, d)
		var comp []NodeID
		for u := 0; u < g.n; u++ {
			if seen[u] {
				assigned[u] = true
				comp = append(comp, NodeID(u))
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
