package graph

import (
	"errors"
	"strings"
	"testing"
)

// path5 builds the 5-node path 0-1-2-3-4.
func path5(t *testing.T) *Graph {
	t.Helper()
	g := New(5)
	for i := 0; i < 4; i++ {
		g.MustAddLink(NodeID(i), NodeID(i+1))
	}
	return g
}

func TestLinkString(t *testing.T) {
	g := path5(t)
	if got := g.Link(0).String(); got != "e0(0-1)" {
		t.Errorf("Link.String() = %q", got)
	}
}

func TestCostFromWrongEndpointPanics(t *testing.T) {
	g := path5(t)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CostFrom on a non-endpoint must panic")
		}
		if !strings.Contains(r.(string), "not an endpoint") {
			t.Errorf("panic message = %v", r)
		}
	}()
	g.Link(0).CostFrom(4)
}

func TestMustAddLinkPanicsOnSelfLoop(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddLink self loop must panic")
		}
	}()
	g.MustAddLink(0, 0)
}

func TestAddLinkCostRejectsBadCosts(t *testing.T) {
	g := New(3)
	for _, costs := range [][2]float64{{0, 1}, {1, -2}, {1, 0}} {
		if _, err := g.AddLinkCost(0, 1, costs[0], costs[1]); !errors.Is(err, ErrBadCost) {
			t.Errorf("AddLinkCost(%v) error = %v, want ErrBadCost", costs, err)
		}
	}
	if _, err := g.AddLinkCost(0, 7, 1, 1); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("out-of-range endpoint error = %v", err)
	}
}

func TestLinkBetweenMiss(t *testing.T) {
	g := path5(t)
	if _, ok := g.LinkBetween(0, 4); ok {
		t.Error("LinkBetween(0,4) must miss on a path graph")
	}
	if id, ok := g.LinkBetween(3, 2); !ok || g.Link(id).A != 2 || g.Link(id).B != 3 {
		t.Error("LinkBetween must find links regardless of argument order")
	}
}

func TestConnectedDegenerateCases(t *testing.T) {
	g := path5(t)
	if !g.Connected(2, 2, Nothing) {
		t.Error("a node is connected to itself")
	}
	m := NewMask(g)
	m.FailNode(2)
	if g.Connected(2, 2, m) {
		t.Error("a failed node is connected to nothing, itself included")
	}
	if g.Connected(0, 2, m) || g.Connected(2, 0, m) {
		t.Error("paths into a failed node must not exist")
	}
}

func TestConnectedAllEmptyLiveSet(t *testing.T) {
	g := path5(t)
	m := NewMask(g)
	for v := 0; v < 5; v++ {
		m.FailNode(NodeID(v))
	}
	if !g.ConnectedAll(m) {
		t.Error("a graph with no live nodes is vacuously connected")
	}
}

func TestComponentsExcludeFailedNodes(t *testing.T) {
	g := path5(t)
	m := NewMask(g)
	m.FailNode(2) // splits 0-1 from 3-4; node 2 in no component
	comps := g.Components(m)
	if len(comps) != 2 {
		t.Fatalf("components = %v, want 2", comps)
	}
	seen := map[NodeID]bool{}
	for _, c := range comps {
		for _, v := range c {
			if v == 2 {
				t.Error("failed node assigned to a component")
			}
			if seen[v] {
				t.Errorf("node %d in two components", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 4 {
		t.Errorf("live nodes covered = %d, want 4", len(seen))
	}
}

func TestComponentsAllDown(t *testing.T) {
	g := path5(t)
	m := NewMask(g)
	for v := 0; v < 5; v++ {
		m.FailNode(NodeID(v))
	}
	if comps := g.Components(m); len(comps) != 0 {
		t.Errorf("components of a dead graph = %v, want none", comps)
	}
}

func TestMaskCloneIsDeep(t *testing.T) {
	g := path5(t)
	m := NewMask(g)
	m.FailNode(1)
	m.FailLink(0)
	c := m.Clone()
	c.FailNode(3)
	c.FailLink(2)
	if m.NodeDown(3) || m.LinkDown(2) {
		t.Error("mutating the clone leaked into the original")
	}
	if !c.NodeDown(1) || !c.LinkDown(0) {
		t.Error("clone lost the original's failures")
	}
}

func TestUnionComposesWithNothing(t *testing.T) {
	g := path5(t)
	m := NewMask(g)
	m.FailLink(1)
	u := Union{X: Nothing, Y: m}
	if !u.LinkDown(1) || u.LinkDown(0) || u.NodeDown(0) {
		t.Error("Union{Nothing, mask} must behave exactly like the mask")
	}
}
