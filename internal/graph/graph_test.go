package graph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// line returns the path graph 0-1-2-...-(n-1).
func line(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddLink(NodeID(i), NodeID(i+1))
	}
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.NumNodes() != 5 {
		t.Errorf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumLinks() != 0 {
		t.Errorf("NumLinks = %d, want 0", g.NumLinks())
	}
	if g.Degree(3) != 0 {
		t.Error("fresh node must have degree 0")
	}
}

func TestNewPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) must panic")
		}
	}()
	New(-1)
}

func TestWithNodes(t *testing.T) {
	g, err := WithNodes(7)
	if err != nil {
		t.Fatalf("WithNodes(7): %v", err)
	}
	if g.NumNodes() != 7 {
		t.Errorf("NumNodes = %d, want 7", g.NumNodes())
	}
	if _, err := WithNodes(-1); !errors.Is(err, ErrTooManyNodes) {
		t.Errorf("WithNodes(-1) error = %v, want ErrTooManyNodes", err)
	}
	if _, err := WithNodes(MaxNodes + 1); !errors.Is(err, ErrTooManyNodes) {
		t.Errorf("WithNodes(MaxNodes+1) error = %v, want ErrTooManyNodes", err)
	}
	if _, err := WithNodes(MaxNodes + 1); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("capacity error must name the limit, got %v", err)
	}
}

func TestWideIDs(t *testing.T) {
	// IDs past the old 16-bit ceiling must round-trip through the
	// adjacency structures unchanged.
	const n = 70000
	g := New(n)
	id, err := g.AddLink(65535, 69999)
	if err != nil {
		t.Fatalf("AddLink wide: %v", err)
	}
	l := g.Link(id)
	if l.A != 65535 || l.B != 69999 {
		t.Errorf("wide link endpoints = (%d,%d)", l.A, l.B)
	}
	if got, ok := g.LinkBetween(69999, 65535); !ok || got != id {
		t.Errorf("LinkBetween wide = (%d,%v)", got, ok)
	}
}

func TestAddLink(t *testing.T) {
	g := New(3)
	id, err := g.AddLink(0, 1)
	if err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if id != 0 {
		t.Errorf("first link ID = %d, want 0", id)
	}
	l := g.Link(id)
	if l.A != 0 || l.B != 1 || l.CostAB != 1 || l.CostBA != 1 {
		t.Errorf("unexpected link %+v", l)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Error("degrees wrong after AddLink")
	}
	if !g.HasLink(0, 1) || !g.HasLink(1, 0) {
		t.Error("HasLink must be symmetric")
	}
	if g.HasLink(0, 2) {
		t.Error("HasLink must be false for absent link")
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := New(2)
	if _, err := g.AddLink(0, 5); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("out-of-range error = %v", err)
	}
	if _, err := g.AddLink(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self-loop error = %v", err)
	}
	if _, err := g.AddLinkCost(0, 1, 0, 1); !errors.Is(err, ErrBadCost) {
		t.Errorf("zero-cost error = %v", err)
	}
	if _, err := g.AddLinkCost(0, 1, 1, -3); !errors.Is(err, ErrBadCost) {
		t.Errorf("negative-cost error = %v", err)
	}
}

func TestAsymmetricCosts(t *testing.T) {
	g := New(2)
	id, err := g.AddLinkCost(0, 1, 2.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	l := g.Link(id)
	if l.CostFrom(0) != 2.5 {
		t.Errorf("CostFrom(A) = %v, want 2.5", l.CostFrom(0))
	}
	if l.CostFrom(1) != 7 {
		t.Errorf("CostFrom(B) = %v, want 7", l.CostFrom(1))
	}
	// Adjacency halfedges carry directional costs.
	if g.Adj(0)[0].Cost != 2.5 || g.Adj(1)[0].Cost != 7 {
		t.Error("halfedge costs must be directional")
	}
}

func TestLinkOther(t *testing.T) {
	l := Link{ID: 3, A: 4, B: 9}
	if l.Other(4) != 9 || l.Other(9) != 4 {
		t.Error("Other must return the opposite endpoint")
	}
	if !l.HasEndpoint(4) || !l.HasEndpoint(9) || l.HasEndpoint(5) {
		t.Error("HasEndpoint wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other must panic on non-endpoint")
		}
	}()
	l.Other(7)
}

func TestParallelLinks(t *testing.T) {
	g := New(2)
	a := g.MustAddLink(0, 1)
	b := g.MustAddLink(0, 1)
	if a == b {
		t.Error("parallel links must get distinct IDs")
	}
	if g.Degree(0) != 2 {
		t.Errorf("degree with parallel links = %d, want 2", g.Degree(0))
	}
	id, ok := g.LinkBetween(0, 1)
	if !ok || id != a {
		t.Errorf("LinkBetween = (%d,%v), want first link %d", id, ok, a)
	}
}

func TestNeighborsAndLinksCopy(t *testing.T) {
	g := line(4)
	nbr := g.Neighbors(1)
	if len(nbr) != 2 || nbr[0] != 0 || nbr[1] != 2 {
		t.Errorf("Neighbors(1) = %v", nbr)
	}
	ls := g.Links()
	ls[0].A = 99 // mutating the copy must not affect the graph
	if g.Link(0).A == 99 {
		t.Error("Links must return a copy")
	}
}

func TestClone(t *testing.T) {
	g := line(4)
	c := g.Clone()
	c.MustAddLink(0, 3)
	if g.NumLinks() == c.NumLinks() {
		t.Error("clone must be independent of the original")
	}
	if !c.HasLink(0, 3) || g.HasLink(0, 3) {
		t.Error("link added to clone leaked into original")
	}
}

func TestMask(t *testing.T) {
	g := line(4)
	m := NewMask(g)
	if m.NodeDown(0) || m.LinkDown(0) {
		t.Error("fresh mask must be all-up")
	}
	m.FailNode(2)
	m.FailLink(0)
	if !m.NodeDown(2) || !m.LinkDown(0) {
		t.Error("mask must record failures")
	}
	if got := m.DownNodes(); len(got) != 1 || got[0] != 2 {
		t.Errorf("DownNodes = %v", got)
	}
	if got := m.DownLinks(); len(got) != 1 || got[0] != 0 {
		t.Errorf("DownLinks = %v", got)
	}
	c := m.Clone()
	c.FailNode(3)
	if m.NodeDown(3) {
		t.Error("mask clone must be independent")
	}
}

func TestUnionAndUsable(t *testing.T) {
	g := line(3)
	m1 := NewMask(g)
	m2 := NewMask(g)
	m1.FailNode(0)
	m2.FailLink(1)
	u := Union{m1, m2}
	if !u.NodeDown(0) || !u.LinkDown(1) {
		t.Error("union must combine failures")
	}
	if u.NodeDown(1) || u.LinkDown(0) {
		t.Error("union must not invent failures")
	}
	if Usable(g.Link(0), u) {
		t.Error("link 0 has a failed endpoint, must be unusable")
	}
	if Usable(g.Link(1), u) {
		t.Error("link 1 is failed, must be unusable")
	}
	if !Usable(g.Link(1), Nothing) {
		t.Error("everything is usable under Nothing")
	}
}

func TestReachableAndConnected(t *testing.T) {
	g := line(5)
	if !g.Connected(0, 4, Nothing) {
		t.Error("path graph must be connected end to end")
	}
	m := NewMask(g)
	m.FailLink(2) // cut 2-3
	if g.Connected(0, 4, m) {
		t.Error("cut must disconnect 0 from 4")
	}
	if !g.Connected(0, 2, m) {
		t.Error("0 and 2 remain connected")
	}
	seen := g.Reachable(0, m)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("Reachable[%d] = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestConnectedFailedEndpoints(t *testing.T) {
	g := line(3)
	m := NewMask(g)
	m.FailNode(0)
	if g.Connected(0, 2, m) || g.Connected(2, 0, m) {
		t.Error("a failed endpoint is never connected")
	}
	if r := g.Reachable(0, m); r[0] || r[1] {
		t.Error("Reachable from a failed node must be empty")
	}
	if !g.Connected(1, 1, m) {
		t.Error("a live node is connected to itself")
	}
}

func TestComponents(t *testing.T) {
	g := line(6)
	m := NewMask(g)
	m.FailNode(2) // splits into {0,1} and {3,4,5}
	comps := g.Components(m)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if len(comps[0]) != 2 || comps[0][0] != 0 || comps[0][1] != 1 {
		t.Errorf("first component = %v", comps[0])
	}
	if len(comps[1]) != 3 || comps[1][0] != 3 {
		t.Errorf("second component = %v", comps[1])
	}
}

func TestConnectedAll(t *testing.T) {
	g := line(4)
	if !g.ConnectedAll(Nothing) {
		t.Error("path graph is connected")
	}
	m := NewMask(g)
	m.FailLink(1)
	if g.ConnectedAll(m) {
		t.Error("cut path graph is not connected")
	}
	// Failing one side entirely leaves a single live component.
	m.FailNode(0)
	m.FailNode(1)
	if !g.ConnectedAll(m) {
		t.Error("live subgraph {2,3} is connected")
	}
	// All nodes down: vacuously connected.
	m.FailNode(2)
	m.FailNode(3)
	if !g.ConnectedAll(m) {
		t.Error("empty live subgraph is vacuously connected")
	}
}

// Property: components partition the live nodes, and Connected agrees
// with component co-membership.
func TestComponentsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		n := 2 + rng.Intn(20)
		g := New(n)
		for i := 0; i < n*2; i++ {
			a := NodeID(rng.Intn(n))
			b := NodeID(rng.Intn(n))
			if a != b {
				g.MustAddLink(a, b)
			}
		}
		m := NewMask(g)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.2 {
				m.FailNode(NodeID(v))
			}
		}
		for l := 0; l < g.NumLinks(); l++ {
			if rng.Float64() < 0.2 {
				m.FailLink(LinkID(l))
			}
		}
		comps := g.Components(m)
		compOf := make(map[NodeID]int)
		for i, c := range comps {
			for _, v := range c {
				if _, dup := compOf[v]; dup {
					return false // node in two components
				}
				compOf[v] = i
			}
		}
		for v := 0; v < n; v++ {
			_, inComp := compOf[NodeID(v)]
			if inComp == m.NodeDown(NodeID(v)) {
				return false // live nodes iff in some component
			}
		}
		// Spot-check Connected against co-membership.
		for i := 0; i < 10; i++ {
			a := NodeID(rng.Intn(n))
			b := NodeID(rng.Intn(n))
			ca, oka := compOf[a]
			cb, okb := compOf[b]
			want := oka && okb && ca == cb
			if g.Connected(a, b, m) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}
