package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteArticulation finds cut vertices by definition: v is a cut
// vertex iff removing it increases the component count among the
// remaining live nodes (removing a node that was alone in its
// component decreases the count instead and is never a cut vertex).
func bruteArticulation(g *Graph, d Denied) map[NodeID]bool {
	baseline := len(g.Components(d))
	out := make(map[NodeID]bool)
	for v := 0; v < g.NumNodes(); v++ {
		id := NodeID(v)
		if d.NodeDown(id) {
			continue
		}
		m := NewMask(g)
		for u := 0; u < g.NumNodes(); u++ {
			if d.NodeDown(NodeID(u)) {
				m.FailNode(NodeID(u))
			}
		}
		for l := 0; l < g.NumLinks(); l++ {
			if d.LinkDown(LinkID(l)) {
				m.FailLink(LinkID(l))
			}
		}
		m.FailNode(id)
		if len(g.Components(m)) > baseline {
			out[id] = true
		}
	}
	return out
}

func TestArticulationLine(t *testing.T) {
	g := line(5) // 0-1-2-3-4: every interior node is a cut vertex
	got := g.ArticulationPoints(Nothing)
	want := []NodeID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("articulation points = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("articulation points = %v, want %v", got, want)
		}
	}
}

func TestArticulationCycle(t *testing.T) {
	g := New(4)
	g.MustAddLink(0, 1)
	g.MustAddLink(1, 2)
	g.MustAddLink(2, 3)
	g.MustAddLink(3, 0)
	if got := g.ArticulationPoints(Nothing); len(got) != 0 {
		t.Errorf("a cycle has no cut vertices, got %v", got)
	}
}

func TestArticulationBridgeBetweenCycles(t *testing.T) {
	// Two triangles joined by a bridge 2-3: nodes 2 and 3 are cut.
	g := New(6)
	g.MustAddLink(0, 1)
	g.MustAddLink(1, 2)
	g.MustAddLink(2, 0)
	g.MustAddLink(3, 4)
	g.MustAddLink(4, 5)
	g.MustAddLink(5, 3)
	g.MustAddLink(2, 3)
	got := g.ArticulationPoints(Nothing)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("articulation points = %v, want [2 3]", got)
	}
}

func TestArticulationParallelLinks(t *testing.T) {
	// 0=1-2: parallel links between 0 and 1 mean node 1 is still a cut
	// vertex (for node 2), but losing one parallel link never matters.
	g := New(3)
	g.MustAddLink(0, 1)
	g.MustAddLink(0, 1)
	g.MustAddLink(1, 2)
	got := g.ArticulationPoints(Nothing)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("articulation points = %v, want [1]", got)
	}
	// A triangle with a doubled edge has none.
	g2 := New(3)
	g2.MustAddLink(0, 1)
	g2.MustAddLink(0, 1)
	g2.MustAddLink(1, 2)
	g2.MustAddLink(2, 0)
	if got := g2.ArticulationPoints(Nothing); len(got) != 0 {
		t.Errorf("doubled triangle has no cut vertices, got %v", got)
	}
}

func TestArticulationUnderFailures(t *testing.T) {
	// A cycle with a failed link degenerates to a path: interior nodes
	// of the path become cut vertices.
	g := New(4)
	l01 := g.MustAddLink(0, 1)
	g.MustAddLink(1, 2)
	g.MustAddLink(2, 3)
	g.MustAddLink(3, 0)
	m := NewMask(g)
	m.FailLink(l01)
	got := g.ArticulationPoints(m)
	// Path 1-2-3-0: cut vertices 2 and 3.
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("articulation points = %v, want [2 3]", got)
	}
}

func TestArticulationMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	f := func() bool {
		n := 2 + rng.Intn(16)
		g := New(n)
		for i := 0; i < n+rng.Intn(2*n); i++ {
			a := NodeID(rng.Intn(n))
			b := NodeID(rng.Intn(n))
			if a != b {
				g.MustAddLink(a, b)
			}
		}
		m := NewMask(g)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.15 {
				m.FailNode(NodeID(v))
			}
		}
		for l := 0; l < g.NumLinks(); l++ {
			if rng.Float64() < 0.15 {
				m.FailLink(LinkID(l))
			}
		}
		want := bruteArticulation(g, m)
		got := g.ArticulationPoints(m)
		if len(got) != len(want) {
			return false
		}
		for _, v := range got {
			if !want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}
