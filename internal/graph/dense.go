package graph

// DenseTabler is a Denied whose failure state is available as flat
// boolean tables indexed by NodeID and LinkID. The shortest-path
// engine's inner relaxation loop consults the overlay twice per edge;
// a DenseTabler lets it replace those two interface calls with two
// slice loads. Mask, failure.Scenario, and compiled DenseViews all
// qualify; algorithmic overlays (unions, per-configuration views)
// are compiled into a DenseView instead.
type DenseTabler interface {
	Denied
	// DenseTables returns the overlay as (nodes, links) tables:
	// nodes[v] iff NodeDown(v), links[id] iff LinkDown(id). The slices
	// are the implementation's live state, shared with the caller for
	// the duration of one computation: callers must not mutate them or
	// retain them across mutations of the source.
	DenseTables() (nodes, links []bool)
}

// DenseView is a Denied compiled to flat tables: Compile evaluates an
// arbitrary overlay once per node and link (O(n+m) interface calls)
// so that every later membership query is a slice load. A zero
// DenseView is empty; reuse one across Compile calls to avoid
// reallocating the tables.
type DenseView struct {
	nodes []bool
	links []bool
}

var _ DenseTabler = (*DenseView)(nil)

// CompileDense returns a new DenseView holding src's failure state for
// g. The view is a snapshot: later mutations of src are not reflected.
func CompileDense(g *Graph, src Denied) *DenseView {
	d := &DenseView{}
	d.Compile(g, src)
	return d
}

// Compile fills the view from src, reusing the view's tables when they
// are large enough.
func (d *DenseView) Compile(g *Graph, src Denied) {
	n, m := g.NumNodes(), g.NumLinks()
	d.nodes = resizeBools(d.nodes, n)
	d.links = resizeBools(d.links, m)
	if nodes, links, ok := DenseTablesOf(src); ok {
		copy(d.nodes, nodes)
		copy(d.links, links)
		return
	}
	for v := 0; v < n; v++ {
		d.nodes[v] = src.NodeDown(NodeID(v))
	}
	for id := 0; id < m; id++ {
		d.links[id] = src.LinkDown(LinkID(id))
	}
}

// NodeDown implements Denied.
func (d *DenseView) NodeDown(v NodeID) bool { return d.nodes[v] }

// LinkDown implements Denied.
func (d *DenseView) LinkDown(id LinkID) bool { return d.links[id] }

// DenseTables implements DenseTabler.
func (d *DenseView) DenseTables() (nodes, links []bool) { return d.nodes, d.links }

// DenseTablesOf returns d's flat tables when d can expose them without
// compilation: d is a DenseTabler, or d is Nothing (reported as nil
// tables with ok true — all-up, callers substitute zeroed tables).
func DenseTablesOf(d Denied) (nodes, links []bool, ok bool) {
	if d == Nothing {
		return nil, nil, true
	}
	if dt, isDense := d.(DenseTabler); isDense {
		nodes, links = dt.DenseTables()
		return nodes, links, true
	}
	return nil, nil, false
}

// resizeBools returns s resized to n and cleared, reusing its storage
// when possible.
func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}
