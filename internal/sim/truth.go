package sim

import (
	"sync"
	"sync/atomic"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/spt"
)

// truthKey identifies one ground-truth post-failure shortest path
// tree: the failure scenario and the recovery initiator it is rooted
// at. Every destination of the same (scenario, initiator) pair shares
// one tree, and RTR, FCP, and MRC all grade against the same tree —
// previously each runner recomputed it, a 3x-redundant full Dijkstra
// per test case.
type truthKey struct {
	sc   *failure.Scenario
	root graph.NodeID
}

type truthEntry struct {
	once sync.Once
	tree *spt.Tree
}

// truthCache computes and shares ground-truth post-failure trees
// across the cases of one RunAll invocation. The map mutex is held
// only for entry lookup; the Dijkstra itself runs under the entry's
// sync.Once, so workers computing different roots proceed in parallel
// while workers needing the same root wait for exactly one
// computation.
//
// The cache is lazy end to end: newTruthCache allocates only the empty
// map, and tree() is invoked solely through the runners' truthSource
// closures — a workload where every case errors early (or nothing is
// delivered) builds zero trees. requests/builds count tree() calls and
// actual Dijkstra runs for the cache-hit regression tests.
type truthCache struct {
	w  *World
	mu sync.Mutex
	m  map[truthKey]*truthEntry

	requests atomic.Int64
	builds   atomic.Int64
}

func newTruthCache(w *World) *truthCache {
	return &truthCache{w: w, m: make(map[truthKey]*truthEntry)}
}

// tree returns the shared post-failure forward tree rooted at the
// case's initiator, computing it on first use.
func (tc *truthCache) tree(c *Case) *spt.Tree {
	tc.requests.Add(1)
	k := truthKey{sc: c.Scenario, root: c.Initiator}
	tc.mu.Lock()
	e := tc.m[k]
	if e == nil {
		e = &truthEntry{}
		tc.m[k] = e
	}
	tc.mu.Unlock()
	e.once.Do(func() {
		tc.builds.Add(1)
		// Warm start: the initiator's clean tree (cached by RTR — every
		// link-state router maintains it anyway) plus the delete-only
		// incremental update under the scenario. Bit-identical to a
		// cold spt.Compute under the scenario, but only the subtree
		// hanging off the failure area is rebuilt.
		e.tree = spt.Recompute(tc.w.Topo.G, tc.w.RTR.CleanTree(c.Initiator), graph.Nothing, c.Scenario)
	})
	return e.tree
}
