package sim

import (
	"time"

	"repro/internal/routing"
)

// CaseRecord is the serializable projection of one Outcome: every
// scalar the paper's tables and figures aggregate, and nothing tied to
// in-memory state (no topology pointers, no scenario handles). The
// sweep engine streams CaseRecords to its JSONL checkpoint and the
// Dataset aggregates read them back — fresh results and results loaded
// from a checkpoint flow through the identical representation, which
// is what makes interrupted-and-resumed runs bit-identical to
// uninterrupted ones.
type CaseRecord struct {
	// Recoverable is the case's ground-truth classification.
	Recoverable bool `json:"recoverable"`
	// Err carries a runner error ("" when none); errored cases are
	// excluded from every aggregate, exactly as Outcome.Err was.
	Err string    `json:"err,omitempty"`
	RTR RTRRecord `json:"rtr"`
	FCP FCPRecord `json:"fcp"`
	MRC MRCRecord `json:"mrc"`
}

// RTRRecord holds RTR's aggregable metrics for one case.
type RTRRecord struct {
	Recovered bool    `json:"recovered,omitempty"`
	Optimal   bool    `json:"optimal,omitempty"`
	Stretch   float64 `json:"stretch,omitempty"`
	SPCalcs   int     `json:"sp_calcs,omitempty"`
	// Phase1Bytes is the header's recording-byte count on each hop of
	// the phase-1 collection walk; its length is the walk's hop count,
	// from which the walk duration follows (1.8 ms/hop).
	Phase1Bytes           []int `json:"phase1_bytes,omitempty"`
	RouteBytes            int   `json:"route_bytes,omitempty"`
	IdentifiedUnreachable bool  `json:"identified_unreachable,omitempty"`
	WastedHops            int   `json:"wasted_hops,omitempty"`
	NoLiveNeighbor        bool  `json:"no_live_neighbor,omitempty"`
}

// Phase1Duration returns the collection walk's duration under the
// paper's per-hop delay model.
func (r *RTRRecord) Phase1Duration() time.Duration {
	return time.Duration(len(r.Phase1Bytes)) * routing.HopDelay
}

// FCPRecord holds FCP's aggregable metrics for one case.
type FCPRecord struct {
	Delivered  bool    `json:"delivered,omitempty"`
	Optimal    bool    `json:"optimal,omitempty"`
	Stretch    float64 `json:"stretch,omitempty"`
	SPCalcs    int     `json:"sp_calcs,omitempty"`
	WalkBytes  []int   `json:"walk_bytes,omitempty"`
	FinalBytes int     `json:"final_bytes,omitempty"`
	WastedHops int     `json:"wasted_hops,omitempty"`
}

// MRCRecord holds MRC's aggregable metrics for one case.
type MRCRecord struct {
	Delivered bool    `json:"delivered,omitempty"`
	Optimal   bool    `json:"optimal,omitempty"`
	Stretch   float64 `json:"stretch,omitempty"`
	// Skipped marks a case run on a scale-mode world without an MRC
	// engine; omitted entirely on full worlds, so existing checkpoints
	// keep their byte-exact records.
	Skipped bool `json:"skipped,omitempty"`
}

// Record projects the outcome onto its serializable form.
func (o *Outcome) Record() CaseRecord {
	rec := CaseRecord{
		RTR: RTRRecord{
			Recovered:             o.RTR.Recovered,
			Optimal:               o.RTR.Optimal,
			Stretch:               o.RTR.Stretch,
			SPCalcs:               o.RTR.SPCalcs,
			Phase1Bytes:           walkBytes(o.RTR.Phase1),
			RouteBytes:            o.RTR.RouteBytes,
			IdentifiedUnreachable: o.RTR.IdentifiedUnreachable,
			WastedHops:            o.RTR.WastedHops,
			NoLiveNeighbor:        o.RTR.NoLiveNeighbor,
		},
		FCP: FCPRecord{
			Delivered:  o.FCP.Delivered,
			Optimal:    o.FCP.Optimal,
			Stretch:    o.FCP.Stretch,
			SPCalcs:    o.FCP.SPCalcs,
			WalkBytes:  walkBytes(o.FCP.Walk),
			FinalBytes: o.FCP.FinalBytes,
			WastedHops: o.FCP.WastedHops,
		},
		MRC: MRCRecord{
			Delivered: o.MRC.Delivered,
			Optimal:   o.MRC.Optimal,
			Stretch:   o.MRC.Stretch,
			Skipped:   o.MRC.Skipped,
		},
	}
	if o.Case != nil {
		rec.Recoverable = o.Case.Recoverable
	}
	if o.Err != nil {
		rec.Err = o.Err.Error()
	}
	return rec
}

// Records projects a slice of outcomes, preserving order.
func Records(outs []Outcome) []CaseRecord {
	recs := make([]CaseRecord, len(outs))
	for i := range outs {
		recs[i] = outs[i].Record()
	}
	return recs
}

func walkBytes(w routing.Walk) []int {
	if len(w.Records) == 0 {
		return nil
	}
	out := make([]int, len(w.Records))
	for i, r := range w.Records {
		out[i] = r.HeaderBytes
	}
	return out
}

// RecordBytesAt is BytesAt over a recorded per-hop byte trace: the
// header bytes in flight at time t for a packet whose hop h carried
// perHop[h] recording bytes, settling at `steady` once the trajectory
// completes.
func RecordBytesAt(perHop []int, steady int, t time.Duration) int {
	if t < 0 {
		return 0
	}
	hop := int(t / routing.HopDelay)
	if hop < len(perHop) {
		return perHop[hop]
	}
	return steady
}
