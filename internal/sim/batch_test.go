package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topology"
)

// outcomesEqual compares two outcome slices the way the batching
// contract demands: identical protocol results, identical error text,
// and content-identical truth trees (the trees are shared pointers
// inside one run, so pointer equality across runs is not expected).
func outcomesEqual(t *testing.T, label string, want, got []Outcome) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length mismatch: %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		a, b := &want[i], &got[i]
		if a.Case != b.Case {
			t.Fatalf("%s: case %d: case pointer mismatch", label, i)
		}
		if !reflect.DeepEqual(a.RTR, b.RTR) {
			t.Fatalf("%s: case %d: RTR differs:\n  want %+v\n  got  %+v", label, i, a.RTR, b.RTR)
		}
		if !reflect.DeepEqual(a.FCP, b.FCP) {
			t.Fatalf("%s: case %d: FCP differs:\n  want %+v\n  got  %+v", label, i, a.FCP, b.FCP)
		}
		if !reflect.DeepEqual(a.MRC, b.MRC) {
			t.Fatalf("%s: case %d: MRC differs:\n  want %+v\n  got  %+v", label, i, a.MRC, b.MRC)
		}
		ae, be := "", ""
		if a.Err != nil {
			ae = a.Err.Error()
		}
		if b.Err != nil {
			be = b.Err.Error()
		}
		if ae != be {
			t.Fatalf("%s: case %d: error differs: %q vs %q", label, i, ae, be)
		}
		if (a.Truth == nil) != (b.Truth == nil) {
			t.Fatalf("%s: case %d: truth nil-ness differs: %v vs %v", label, i, a.Truth == nil, b.Truth == nil)
		}
		if a.Truth != nil && !reflect.DeepEqual(*a.Truth, *b.Truth) {
			t.Fatalf("%s: case %d: truth tree content differs", label, i)
		}
	}
}

// TestBatchedMatchesPerCase is the tentpole's differential contract:
// on every bundled topology, batched execution must produce an outcome
// slice identical to the per-case oracle for every worker count.
func TestBatchedMatchesPerCase(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, as := range topology.ASNames() {
		t.Run(as, func(t *testing.T) {
			t.Parallel()
			w, err := NewWorld(as, 3)
			if err != nil {
				t.Fatal(err)
			}
			rec, irr := CollectBoth(w, rand.New(rand.NewSource(17)), 40, 40)
			cases := append(rec, irr...)
			if len(cases) == 0 {
				t.Fatal("no cases drawn")
			}
			oracle := RunAllPerCase(w, cases, 1)
			for _, workers := range workerCounts {
				label := fmt.Sprintf("workers=%d", workers)
				outcomesEqual(t, label+"/batched", oracle, RunAllN(w, cases, workers))
				if workers != 1 {
					outcomesEqual(t, label+"/per-case", oracle, RunAllPerCase(w, cases, workers))
				}
			}
		})
	}
}

// erroringCases rewires valid cases so each one's trigger is a live
// link of its initiator: collection then fails deterministically with
// core.ErrNotUnreachable before any work is done.
func erroringCases(t *testing.T, w *World, cases []*Case) []*Case {
	t.Helper()
	var out []*Case
	for _, c := range cases {
		for _, he := range w.Topo.G.Adj(c.Initiator) {
			if !c.LV.NeighborUnreachable(c.Initiator, he.Link) {
				bad := *c
				bad.Trigger = he.Link
				bad.NextHop = he.Neighbor
				out = append(out, &bad)
				break
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("could not build erroring cases")
	}
	return out
}

// TestBatchedMatchesPerCaseOnErrors pins the error path: a group whose
// collection fails must yield the same per-case outcomes (error set,
// FCP/MRC skipped) as the oracle.
func TestBatchedMatchesPerCaseOnErrors(t *testing.T) {
	w, cases := collectTestCases(t)
	bad := erroringCases(t, w, cases[:40])
	mixed := append(append([]*Case(nil), bad...), cases[:40]...)
	oracle := RunAllPerCase(w, mixed, 1)
	for _, workers := range []int{1, 4} {
		outcomesEqual(t, fmt.Sprintf("workers=%d", workers), oracle, RunAllN(w, mixed, workers))
	}
	for i := range bad {
		if oracle[i].Err == nil {
			t.Fatalf("erroring case %d ran without error", i)
		}
	}
}

// TestTruthCacheCounts is the laziness regression test: the cache
// builds at most one tree per (scenario, initiator) pair that actually
// needed grading, never one per case, and a workload where every case
// errors early builds nothing at all.
func TestTruthCacheCounts(t *testing.T) {
	w, cases := collectTestCases(t)
	outs, tc := runAllN(w, cases, 4)

	distinct := map[truthKey]bool{}
	graded := 0
	for _, o := range outs {
		if o.Truth != nil {
			distinct[truthKey{sc: o.Case.Scenario, root: o.Case.Initiator}] = true
			graded++
		}
	}
	builds, requests := tc.builds.Load(), tc.requests.Load()
	if builds != int64(len(distinct)) {
		t.Errorf("builds = %d, want one per graded (scenario, initiator) pair = %d", builds, len(distinct))
	}
	if builds == 0 {
		t.Fatal("workload built no truth trees; test is vacuous")
	}
	if requests < builds {
		t.Errorf("requests = %d < builds = %d", requests, builds)
	}
	if graded < int(builds) {
		t.Errorf("graded outcomes %d < builds %d", graded, builds)
	}

	// Every case erroring early must leave the cache untouched.
	bad := erroringCases(t, w, cases[:30])
	badOuts, badTC := runAllN(w, bad, 4)
	for i, o := range badOuts {
		if o.Err == nil {
			t.Fatalf("case %d: expected an error", i)
		}
	}
	if b := badTC.builds.Load(); b != 0 {
		t.Errorf("erroring workload built %d truth trees, want 0", b)
	}
	if r := badTC.requests.Load(); r != 0 {
		t.Errorf("erroring workload requested %d truth trees, want 0", r)
	}
}

// TestGroupCases pins the grouping key and order: first-appearance
// group order, input order within groups, and one group per distinct
// (view, initiator, trigger).
func TestGroupCases(t *testing.T) {
	w, cases := collectTestCases(t)
	groups := groupCases(cases)
	seen := 0
	keys := map[groupKey]bool{}
	for gi, g := range groups {
		if keys[g.key] {
			t.Fatalf("group %d: duplicate key", gi)
		}
		keys[g.key] = true
		if len(g.cases) == 0 {
			t.Fatalf("group %d: empty", gi)
		}
		prev := -1
		for _, i := range g.cases {
			c := cases[i]
			if c.LV != g.key.lv || c.Initiator != g.key.initiator || c.Trigger != g.key.trigger {
				t.Fatalf("group %d: case %d does not match key", gi, i)
			}
			if i <= prev {
				t.Fatalf("group %d: member indices out of order", gi)
			}
			prev = i
			seen++
		}
	}
	if seen != len(cases) {
		t.Fatalf("groups cover %d cases, want %d", seen, len(cases))
	}
	if len(groups) >= len(cases) {
		t.Fatalf("no sharing: %d groups for %d cases (workload should have multi-destination groups)", len(groups), len(cases))
	}
	_ = w
}

// TestRecoveryPathIntoReusesBacking checks the buffer-reuse contract
// RunAllN's groups rely on: consecutive extractions into one Route
// reuse its arrays and still match the allocating path.
func TestRecoveryPathIntoReusesBacking(t *testing.T) {
	w, cases := collectTestCases(t)
	var c *Case
	for _, cand := range cases {
		if cand.Recoverable {
			c = cand
			break
		}
	}
	if c == nil {
		t.Fatal("no recoverable case")
	}
	sess, err := w.RTR.NewSession(c.LV, c.Initiator)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Collect(c.Trigger); err != nil {
		t.Fatal(err)
	}
	var rt core.Route
	n := w.Topo.G.NumNodes()
	for d := 0; d < n; d++ {
		dst := graph.NodeID(d)
		if dst == c.Initiator {
			continue
		}
		ok := sess.RecoveryPathInto(&rt, dst)
		want, wantOK := sess.RecoveryPath(dst)
		if ok != wantOK {
			t.Fatalf("dst %d: ok=%v, want %v", d, ok, wantOK)
		}
		if !ok {
			continue
		}
		if !reflect.DeepEqual(rt.Nodes, want.Nodes) || !reflect.DeepEqual(rt.Links, want.Links) || rt.Cost != want.Cost {
			t.Fatalf("dst %d: reused-buffer route differs from allocating route", d)
		}
	}
}
