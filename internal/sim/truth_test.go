package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/spt"
)

// collectTestCases draws a mixed workload from a few random scenarios.
func collectTestCases(t *testing.T) (*World, []*Case) {
	t.Helper()
	w, err := NewWorld("AS1239", 11)
	if err != nil {
		t.Fatal(err)
	}
	rec, irr := CollectBoth(w, rand.New(rand.NewSource(42)), 120, 120)
	return w, append(rec, irr...)
}

// TestTruthTreeMatchesFreshCompute is the cache half of the
// differential-test contract: whenever RunAll computed a truth tree it
// must be node-for-node identical (Dist, Parent, ParentLink) to a
// fresh uncached spt.Compute. Truth is lazy, so it may be nil — but
// only on cases where no protocol delivered anything, i.e. nothing
// needed grading.
func TestTruthTreeMatchesFreshCompute(t *testing.T) {
	w, cases := collectTestCases(t)
	outs := RunAll(w, cases)
	graded := 0
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("case %d: %v", i, o.Err)
		}
		if o.Truth == nil {
			if o.RTR.Recovered || o.FCP.Delivered || o.MRC.Delivered {
				t.Fatalf("case %d: Truth nil although a protocol delivered", i)
			}
			continue
		}
		graded++
		c := o.Case
		want := spt.Compute(w.Topo.G, c.Initiator, c.Scenario)
		if want.Root != o.Truth.Root || want.Kind != o.Truth.Kind {
			t.Fatalf("case %d: root/kind mismatch", i)
		}
		for v := range want.Dist {
			if want.Dist[v] != o.Truth.Dist[v] ||
				want.Parent[v] != o.Truth.Parent[v] ||
				want.ParentLink[v] != o.Truth.ParentLink[v] {
				t.Fatalf("case %d: cached truth tree diverges at node %d: (%v,%d,%d) vs (%v,%d,%d)",
					i, v, o.Truth.Dist[v], o.Truth.Parent[v], o.Truth.ParentLink[v],
					want.Dist[v], want.Parent[v], want.ParentLink[v])
			}
		}
	}
	if graded == 0 {
		t.Fatal("no case exercised the truth cache")
	}
}

// TestRunnersIdenticalWithAndWithoutSharedTruth checks that handing the
// runners a shared truth tree changes no metric: every RTR/FCP/MRC
// result must equal the nil-truth (compute-on-demand) path.
func TestRunnersIdenticalWithAndWithoutSharedTruth(t *testing.T) {
	w, cases := collectTestCases(t)
	outs := RunAll(w, cases)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("case %d: %v", i, o.Err)
		}
		c := o.Case
		rtr, err := RunRTR(w, c, nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		fcp, err := RunFCP(w, c, nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		mrc, err := RunMRC(w, c, nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(o.RTR, rtr) {
			t.Fatalf("case %d: RTR differs with shared truth:\n  shared: %+v\n  fresh:  %+v", i, o.RTR, rtr)
		}
		if !reflect.DeepEqual(o.FCP, fcp) {
			t.Fatalf("case %d: FCP differs with shared truth:\n  shared: %+v\n  fresh:  %+v", i, o.FCP, fcp)
		}
		if !reflect.DeepEqual(o.MRC, mrc) {
			t.Fatalf("case %d: MRC differs with shared truth:\n  shared: %+v\n  fresh:  %+v", i, o.MRC, mrc)
		}
	}
}

// TestRunAllNWorkerCountsAgree checks that the worker count is purely a
// throughput knob: serial and parallel runs produce identical outcomes.
func TestRunAllNWorkerCountsAgree(t *testing.T) {
	w, cases := collectTestCases(t)
	serial := RunAllN(w, cases, 1)
	parallel := RunAllN(w, cases, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].RTR, parallel[i].RTR) ||
			!reflect.DeepEqual(serial[i].FCP, parallel[i].FCP) ||
			!reflect.DeepEqual(serial[i].MRC, parallel[i].MRC) {
			t.Fatalf("case %d: serial and parallel outcomes differ", i)
		}
	}
}
