package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/spt"
)

// phase2Engines is every selectable phase-2 route engine.
var phase2Engines = []spt.Engine{spt.EngineDijkstra, spt.EngineAStar, spt.EngineALT}

// TestPhase2EnginesIdenticalOutcomes is the harness-level differential
// test: the same workload run through worlds built under every phase-2
// engine must produce bit-identical per-case outcomes for all three
// protocols — not just equal rates, but equal walks, headers sizes,
// stretches, and SPCalcs, case by case.
func TestPhase2EnginesIdenticalOutcomes(t *testing.T) {
	const as = "AS1239"
	type run struct {
		eng      spt.Engine
		outcomes []Outcome
	}
	var runs []run
	for _, eng := range phase2Engines {
		w, err := NewWorldPhase2(as, 1, eng)
		if err != nil {
			t.Fatal(err)
		}
		if w.Phase2 != eng {
			t.Fatalf("world Phase2 = %v, want %v", w.Phase2, eng)
		}
		// Same collection seed on the same topology: every world sees
		// the identical case sequence.
		rng := rand.New(rand.NewSource(7))
		rec, irr := CollectBoth(w, rng, 80, 40)
		cases := append(append([]*Case(nil), rec...), irr...)
		runs = append(runs, run{eng, RunAll(w, cases)})
	}
	base := runs[0]
	for _, r := range runs[1:] {
		if len(r.outcomes) != len(base.outcomes) {
			t.Fatalf("%v produced %d outcomes, %v produced %d",
				r.eng, len(r.outcomes), base.eng, len(base.outcomes))
		}
		for i, o := range r.outcomes {
			b := base.outcomes[i]
			if o.Err != nil || b.Err != nil {
				t.Fatalf("case %d: err %v (%v) vs %v (%v)", i, o.Err, r.eng, b.Err, base.eng)
			}
			if !reflect.DeepEqual(o.RTR, b.RTR) {
				t.Errorf("case %d: RTR outcome differs between %v and %v:\n%+v\nvs\n%+v",
					i, base.eng, r.eng, b.RTR, o.RTR)
			}
			if !reflect.DeepEqual(o.FCP, b.FCP) {
				t.Errorf("case %d: FCP outcome differs between %v and %v:\n%+v\nvs\n%+v",
					i, base.eng, r.eng, b.FCP, o.FCP)
			}
			if !reflect.DeepEqual(o.MRC, b.MRC) {
				t.Errorf("case %d: MRC outcome differs between %v and %v:\n%+v\nvs\n%+v",
					i, base.eng, r.eng, b.MRC, o.MRC)
			}
			if t.Failed() {
				t.Fatalf("stopping at first differing case %d", i)
			}
		}
	}
}

// TestPhase2SettledReduction pins the acceptance bar of the
// goal-directed engines: on AS7018 single-pair queries, ALT must settle
// at most half the nodes the full-tree engine settles (averaged over
// frozen pairs), and plain geometric A* must never settle more.
func TestPhase2SettledReduction(t *testing.T) {
	const as = "AS7018"
	worlds := map[spt.Engine]*World{}
	for _, eng := range phase2Engines {
		w, err := NewWorldPhase2(as, 1, eng)
		if err != nil {
			t.Fatal(err)
		}
		worlds[eng] = w
	}
	var dijTotal, astarTotal, altTotal int
	const pairs = 10
	for s := int64(0); s < pairs; s++ {
		settled := map[spt.Engine]int{}
		var frozen *SinglePair
		for _, eng := range phase2Engines {
			p, err := NewSinglePair(worlds[eng], 100+s)
			if err != nil {
				t.Fatal(err)
			}
			if frozen == nil {
				frozen = p
			} else if p.C.Initiator != frozen.C.Initiator || p.C.Dst != frozen.C.Dst {
				t.Fatalf("pair seed %d froze different cases across engines", s)
			}
			settled[eng] = p.SettledNodes()
		}
		if settled[spt.EngineAStar] > settled[spt.EngineDijkstra] {
			t.Errorf("pair %d: astar settled %d > dijkstra %d",
				s, settled[spt.EngineAStar], settled[spt.EngineDijkstra])
		}
		if settled[spt.EngineALT] > settled[spt.EngineDijkstra] {
			t.Errorf("pair %d: alt settled %d > dijkstra %d",
				s, settled[spt.EngineALT], settled[spt.EngineDijkstra])
		}
		dijTotal += settled[spt.EngineDijkstra]
		astarTotal += settled[spt.EngineAStar]
		altTotal += settled[spt.EngineALT]
	}
	t.Logf("%s mean settled over %d pairs: dijkstra %.1f, astar %.1f, alt %.1f",
		as, pairs, float64(dijTotal)/pairs, float64(astarTotal)/pairs, float64(altTotal)/pairs)
	if 2*altTotal > dijTotal {
		t.Errorf("ALT settled %d nodes total vs dijkstra %d — want >= 2x reduction", altTotal, dijTotal)
	}
}

// TestSinglePairAcrossEngines checks the frozen-pair harness itself:
// the case is recoverable, every protocol runs clean, and the per-op
// results are identical across engines (the property that makes the
// single-pair benchmark a fair comparison).
func TestSinglePairAcrossEngines(t *testing.T) {
	const as = "AS1239"
	type triple struct {
		rtr RTRResult
		fcp FCPResult
		mrc MRCResult
	}
	var base *triple
	for _, eng := range phase2Engines {
		w, err := NewWorldPhase2(as, 1, eng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSinglePair(w, 13)
		if err != nil {
			t.Fatal(err)
		}
		if !p.C.Recoverable {
			t.Fatalf("%v: frozen case not recoverable", eng)
		}
		var tr triple
		if tr.rtr, err = p.RTR(); err != nil {
			t.Fatalf("%v: RTR: %v", eng, err)
		}
		if tr.fcp, err = p.FCP(); err != nil {
			t.Fatalf("%v: FCP: %v", eng, err)
		}
		if tr.mrc, err = p.MRC(); err != nil {
			t.Fatalf("%v: MRC: %v", eng, err)
		}
		if !tr.rtr.Recovered {
			t.Errorf("%v: RTR did not recover the recoverable frozen case", eng)
		}
		if base == nil {
			base = &tr
			continue
		}
		if !reflect.DeepEqual(tr, *base) {
			t.Errorf("%v: single-pair results differ from %v:\n%+v\nvs\n%+v",
				eng, phase2Engines[0], *base, tr)
		}
	}
}
