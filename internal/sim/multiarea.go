package sim

import (
	"math/rand"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
)

// MultiAreaResult quantifies Section III-E: recovery across several
// simultaneous failure areas via chained RTR sessions that carry
// previously collected failures in the packet header.
type MultiAreaResult struct {
	AS string
	// Attempts is the number of end-to-end delivery attempts whose
	// converged path was blocked and whose destination is truly
	// reachable.
	Attempts int
	// Delivered is how many of them RTR delivered end to end.
	Delivered int
	// Chained is how many deliveries needed more than one recovery
	// initiator (hit a second area mid-route).
	Chained int
	// AvgSPCalcs is the mean shortest-path computations per attempt.
	AvgSPCalcs float64
}

// DeliveredPercent returns the delivery rate in percent.
func (r MultiAreaResult) DeliveredPercent() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return 100 * float64(r.Delivered) / float64(r.Attempts)
}

// MultiArea runs the two-area experiment: disjoint random failure
// disks, random source/destination pairs whose converged path is
// blocked and whose destination remains reachable, delivered with
// RTR.Deliver (which chains initiators as needed).
func MultiArea(w *World, seed int64, attempts int) MultiAreaResult {
	rng := rand.New(rand.NewSource(seed))
	res := MultiAreaResult{AS: w.Topo.Name}
	n := w.Topo.G.NumNodes()
	spSum := 0

	for res.Attempts < attempts {
		a1 := failure.RandomArea(rng, 100, 250)
		a2 := failure.RandomArea(rng, 100, 250)
		if a1.Center.Dist(a2.Center) < a1.Radius+a2.Radius+100 {
			continue // overlapping disasters collapse to the single-area case
		}
		sc := failure.NewScenario(w.Topo, a1, a2)
		lv := routing.NewLocalView(w.Topo, sc)
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		if src == dst || sc.NodeDown(src) || sc.NodeDown(dst) {
			continue
		}
		outcome, initiator, _ := routing.TraceDefault(w.Tables, lv, src, dst)
		if outcome != routing.DefaultBlocked || !w.Topo.G.Connected(initiator, dst, sc) {
			continue
		}
		dres, err := w.RTR.Deliver(w.Tables, lv, src, dst)
		if err != nil {
			continue // cut-off initiator or similar; not an attempt
		}
		res.Attempts++
		spSum += dres.SPCalcs
		if dres.Delivered {
			res.Delivered++
			if len(dres.Initiators) > 1 {
				res.Chained++
			}
		}
	}
	if res.Attempts > 0 {
		res.AvgSPCalcs = float64(spSum) / float64(res.Attempts)
	}
	return res
}
