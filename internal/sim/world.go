// Package sim is the experiment harness: it generates the paper's test
// cases (deduplicated recoverable and irrecoverable recovery
// instances), runs RTR, FCP and MRC on them with full metric
// accounting, and provides one runner per table and figure of the
// paper's evaluation (Tables II-IV, Figs. 7-13).
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fcp"
	"repro/internal/graph"
	"repro/internal/mrc"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

// World bundles every per-topology artifact the experiments share:
// the topology, its cross-link index, converged routing tables, and
// the three recovery engines. A World is immutable after construction
// and safe for concurrent use.
type World struct {
	Topo   *topology.Topology
	CI     *topology.CrossIndex
	Tables *routing.Tables
	RTR    *core.RTR
	FCP    *fcp.FCP
	// MRC is nil on scale-mode worlds (see NewWorldFromConfig): its
	// k*n backup-configuration precomputation is quadratic-plus and
	// infeasible past Rocketfuel sizes. Runners skip it via HasMRC.
	MRC *mrc.MRC
	// Phase2 is the route engine every recovery engine above was built
	// with. All engines produce identical outputs; they differ in the
	// shape of the work (precomputed trees vs per-query goal-directed
	// search), which is what the single-pair benchmarks compare.
	Phase2 spt.Engine
}

// HasMRC reports whether this world carries an MRC engine. Scale-mode
// worlds drop it; MRCResult.Skipped marks their outcomes.
func (w *World) HasMRC() bool { return w.MRC != nil }

// NewWorld synthesizes the named Table II topology with the given seed
// and builds all engines on it.
func NewWorld(asName string, seed int64, opts ...core.Option) (*World, error) {
	return NewWorldPhase2(asName, seed, spt.EngineDijkstra, opts...)
}

// NewWorldPhase2 is NewWorld with a phase-2 route engine selector.
func NewWorldPhase2(asName string, seed int64, e spt.Engine, opts ...core.Option) (*World, error) {
	p, ok := topology.ParamsFor(asName)
	if !ok {
		return nil, fmt.Errorf("sim: unknown topology %q", asName)
	}
	topo, err := topology.Generate(p, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return NewWorldFromPhase2(topo, e, opts...)
}

// NewWorldFrom builds a World for an existing topology.
func NewWorldFrom(topo *topology.Topology, opts ...core.Option) (*World, error) {
	return NewWorldFromPhase2(topo, spt.EngineDijkstra, opts...)
}

// NewWorldFromPhase2 builds a World for an existing topology under the
// given phase-2 engine. The converged routing tables are built first,
// then RTR: its clean-tree cache seeds the ALT landmark vectors (when
// that engine is selected) and FCP's incremental warm starts, and its
// heuristic is shared read-only with FCP and MRC so each world carries
// exactly one heuristic precomputation. Under the default engine MRC
// warm-starts its k*n configuration trees from the clean reverse
// tables; under a goal-directed engine that matrix is skipped entirely
// and MRC routes are answered on demand.
func NewWorldFromPhase2(topo *topology.Topology, e spt.Engine, opts ...core.Option) (*World, error) {
	return NewWorldFromConfig(topo, WorldConfig{Phase2: e, Opts: opts})
}

// ScaleWorldNodes is the node count at which NewWorldFromConfig
// switches to scale mode on its own: above it the eager table build
// (n reverse trees of n entries each) and MRC's backup-configuration
// matrix stop fitting in time and memory budgets.
const ScaleWorldNodes = 1 << 14

// WorldConfig selects how a World is constructed.
type WorldConfig struct {
	// Phase2 is the phase-2 route engine (EngineDijkstra when zero).
	Phase2 spt.Engine
	// Opts are extra RTR options (WithPhase2 is appended internally).
	Opts []core.Option
	// Scale forces the memory-bounded scale construction: lazy
	// converged tables (per-destination trees materialized on first
	// use) and no MRC engine. When false, scale mode still engages
	// automatically for graphs of at least ScaleWorldNodes nodes.
	Scale bool
	// Log, when non-nil, receives one line per scale-mode concession
	// (what was skipped or deferred, and why).
	Log func(msg string)
}

// NewWorldFromConfig builds a World for an existing topology under an
// explicit configuration. The full (non-scale) construction is
// identical to NewWorldFromPhase2's historical behavior; scale mode
// trades per-protocol completeness for feasibility at 10^5 nodes:
//
//   - converged tables are lazy — on a 10^5-node graph the eager table
//     is ~10^5 trees x 10^5 entries (tens of GB), while sweeps over
//     sampled destinations and serving workloads touch a few,
//   - MRC is dropped — its precomputation assigns every node to one of
//     k backup configurations with an O(n(n+m)) scan and then carries
//     k*n configuration trees, both hopeless at this size. RTR and FCP
//     (the paper's subjects) run in full.
//
// Every concession is reported through cfg.Log so a sweep's output
// states what was skipped rather than silently narrowing.
func NewWorldFromConfig(topo *topology.Topology, cfg WorldConfig) (*World, error) {
	e := cfg.Phase2
	scale := cfg.Scale || topo.G.NumNodes() >= ScaleWorldNodes
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			cfg.Log(fmt.Sprintf(format, args...))
		}
	}
	ci := topology.BuildCrossIndex(topo)
	var tables *routing.Tables
	if scale {
		logf("sim: %s (%d nodes): scale mode: converged tables are lazy (materialized per destination on first use)",
			topo.Name, topo.G.NumNodes())
		tables = routing.ComputeTablesLazy(topo, graph.Nothing)
	} else {
		tables = routing.ComputeTables(topo)
	}
	// Full-slice append: never scribble on a caller-owned opts backing.
	opts := cfg.Opts
	opts = append(opts[:len(opts):len(opts)], core.WithPhase2(e))
	r := core.New(topo, ci, opts...)
	var m *mrc.MRC
	if scale {
		logf("sim: %s (%d nodes): scale mode: MRC disabled (k*n backup-configuration precomputation infeasible at this size)",
			topo.Name, topo.G.NumNodes())
	} else {
		var err error
		m, err = mrc.NewWarmPhase2(topo, 0, tables, e, r.Heuristic())
		if err != nil {
			return nil, fmt.Errorf("sim: building MRC for %s: %w", topo.Name, err)
		}
	}
	f := fcp.New(topo)
	f.UseCleanTrees(r.CleanTree)
	f.UsePhase2(e, r.Heuristic())
	return &World{
		Topo:   topo,
		CI:     ci,
		Tables: tables,
		RTR:    r,
		FCP:    f,
		MRC:    m,
		Phase2: e,
	}, nil
}
