// Package sim is the experiment harness: it generates the paper's test
// cases (deduplicated recoverable and irrecoverable recovery
// instances), runs RTR, FCP and MRC on them with full metric
// accounting, and provides one runner per table and figure of the
// paper's evaluation (Tables II-IV, Figs. 7-13).
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fcp"
	"repro/internal/mrc"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

// World bundles every per-topology artifact the experiments share:
// the topology, its cross-link index, converged routing tables, and
// the three recovery engines. A World is immutable after construction
// and safe for concurrent use.
type World struct {
	Topo   *topology.Topology
	CI     *topology.CrossIndex
	Tables *routing.Tables
	RTR    *core.RTR
	FCP    *fcp.FCP
	MRC    *mrc.MRC
	// Phase2 is the route engine every recovery engine above was built
	// with. All engines produce identical outputs; they differ in the
	// shape of the work (precomputed trees vs per-query goal-directed
	// search), which is what the single-pair benchmarks compare.
	Phase2 spt.Engine
}

// NewWorld synthesizes the named Table II topology with the given seed
// and builds all engines on it.
func NewWorld(asName string, seed int64, opts ...core.Option) (*World, error) {
	return NewWorldPhase2(asName, seed, spt.EngineDijkstra, opts...)
}

// NewWorldPhase2 is NewWorld with a phase-2 route engine selector.
func NewWorldPhase2(asName string, seed int64, e spt.Engine, opts ...core.Option) (*World, error) {
	p, ok := topology.ParamsFor(asName)
	if !ok {
		return nil, fmt.Errorf("sim: unknown topology %q", asName)
	}
	topo, err := topology.Generate(p, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return NewWorldFromPhase2(topo, e, opts...)
}

// NewWorldFrom builds a World for an existing topology.
func NewWorldFrom(topo *topology.Topology, opts ...core.Option) (*World, error) {
	return NewWorldFromPhase2(topo, spt.EngineDijkstra, opts...)
}

// NewWorldFromPhase2 builds a World for an existing topology under the
// given phase-2 engine. The converged routing tables are built first,
// then RTR: its clean-tree cache seeds the ALT landmark vectors (when
// that engine is selected) and FCP's incremental warm starts, and its
// heuristic is shared read-only with FCP and MRC so each world carries
// exactly one heuristic precomputation. Under the default engine MRC
// warm-starts its k*n configuration trees from the clean reverse
// tables; under a goal-directed engine that matrix is skipped entirely
// and MRC routes are answered on demand.
func NewWorldFromPhase2(topo *topology.Topology, e spt.Engine, opts ...core.Option) (*World, error) {
	ci := topology.BuildCrossIndex(topo)
	tables := routing.ComputeTables(topo)
	// Full-slice append: never scribble on a caller-owned opts backing.
	opts = append(opts[:len(opts):len(opts)], core.WithPhase2(e))
	r := core.New(topo, ci, opts...)
	m, err := mrc.NewWarmPhase2(topo, 0, tables, e, r.Heuristic())
	if err != nil {
		return nil, fmt.Errorf("sim: building MRC for %s: %w", topo.Name, err)
	}
	f := fcp.New(topo)
	f.UseCleanTrees(r.CleanTree)
	f.UsePhase2(e, r.Heuristic())
	return &World{
		Topo:   topo,
		CI:     ci,
		Tables: tables,
		RTR:    r,
		FCP:    f,
		MRC:    m,
		Phase2: e,
	}, nil
}
