// Package sim is the experiment harness: it generates the paper's test
// cases (deduplicated recoverable and irrecoverable recovery
// instances), runs RTR, FCP and MRC on them with full metric
// accounting, and provides one runner per table and figure of the
// paper's evaluation (Tables II-IV, Figs. 7-13).
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fcp"
	"repro/internal/mrc"
	"repro/internal/routing"
	"repro/internal/topology"
)

// World bundles every per-topology artifact the experiments share:
// the topology, its cross-link index, converged routing tables, and
// the three recovery engines. A World is immutable after construction
// and safe for concurrent use.
type World struct {
	Topo   *topology.Topology
	CI     *topology.CrossIndex
	Tables *routing.Tables
	RTR    *core.RTR
	FCP    *fcp.FCP
	MRC    *mrc.MRC
}

// NewWorld synthesizes the named Table II topology with the given seed
// and builds all engines on it.
func NewWorld(asName string, seed int64, opts ...core.Option) (*World, error) {
	p, ok := topology.ParamsFor(asName)
	if !ok {
		return nil, fmt.Errorf("sim: unknown topology %q", asName)
	}
	topo, err := topology.Generate(p, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return NewWorldFrom(topo, opts...)
}

// NewWorldFrom builds a World for an existing topology. The converged
// routing tables are built first so MRC can warm-start its k*n
// configuration trees from the clean reverse trees instead of running
// a cold Dijkstra per (configuration, destination) pair. FCP shares
// RTR's per-node clean-tree cache, turning its per-iteration
// recomputations into delete-only incremental updates.
func NewWorldFrom(topo *topology.Topology, opts ...core.Option) (*World, error) {
	ci := topology.BuildCrossIndex(topo)
	tables := routing.ComputeTables(topo)
	m, err := mrc.NewWarm(topo, 0, tables)
	if err != nil {
		return nil, fmt.Errorf("sim: building MRC for %s: %w", topo.Name, err)
	}
	r := core.New(topo, ci, opts...)
	f := fcp.New(topo)
	f.UseCleanTrees(r.CleanTree)
	return &World{
		Topo:   topo,
		CI:     ci,
		Tables: tables,
		RTR:    r,
		FCP:    f,
		MRC:    m,
	}, nil
}
