package sim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/failure"
	"repro/internal/topology"
)

// caseKey projects a Case onto its identifying scalars (the pointers
// differ between enumerations of the same scenario).
type caseKey struct {
	Initiator, Dst, NextHop uint32
	Trigger                 uint32
	Recoverable             bool
}

func caseKeys(cs []*Case) []caseKey {
	out := make([]caseKey, len(cs))
	for i, c := range cs {
		out[i] = caseKey{uint32(c.Initiator), uint32(c.Dst), uint32(c.NextHop), uint32(c.Trigger), c.Recoverable}
	}
	return out
}

// TestScaleCasesMatchFull: with a full destination sample, the
// scale-mode enumerator (failure-adjacency initiators) must produce
// exactly the full n^2 enumeration, in the same order — the candidate
// set is exact, not a heuristic.
func TestScaleCasesMatchFull(t *testing.T) {
	w, err := NewWorld("AS1239", 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	g := failure.Default()
	for draw := 0; draw < 25; draw++ {
		sc := g.Generate(w.Topo, rng)
		wantRec, wantIrr := CasesFromScenario(w, sc)
		gotRec, gotIrr := ScaleCasesFromScenario(w, sc, rng, 0)
		if !reflect.DeepEqual(caseKeys(gotRec), caseKeys(wantRec)) {
			t.Fatalf("draw %d: scale recoverable cases differ from full enumeration", draw)
		}
		if !reflect.DeepEqual(caseKeys(gotIrr), caseKeys(wantIrr)) {
			t.Fatalf("draw %d: scale irrecoverable cases differ from full enumeration", draw)
		}
	}
}

// TestScaleCasesSampledSubset: a sampled enumeration is a subset of
// the full one and a pure function of the rng stream.
func TestScaleCasesSampledSubset(t *testing.T) {
	w, err := NewWorld("AS1239", 7)
	if err != nil {
		t.Fatal(err)
	}
	sc := failure.Default().Generate(w.Topo, rand.New(rand.NewSource(3)))
	fullRec, fullIrr := CasesFromScenario(w, sc)
	full := map[caseKey]bool{}
	for _, k := range caseKeys(append(append([]*Case(nil), fullRec...), fullIrr...)) {
		full[k] = true
	}

	rec1, irr1 := ScaleCasesFromScenario(w, sc, rand.New(rand.NewSource(5)), 10)
	rec2, irr2 := ScaleCasesFromScenario(w, sc, rand.New(rand.NewSource(5)), 10)
	if !reflect.DeepEqual(caseKeys(rec1), caseKeys(rec2)) || !reflect.DeepEqual(caseKeys(irr1), caseKeys(irr2)) {
		t.Fatal("sampled enumeration not deterministic for a fixed rng stream")
	}
	for _, k := range caseKeys(append(append([]*Case(nil), rec1...), irr1...)) {
		if !full[k] {
			t.Fatalf("sampled case %+v not present in full enumeration", k)
		}
	}
}

// TestScaleWorldConfig: a scale-mode world carries lazy tables and no
// MRC, reports both concessions through the log hook, and its RTR and
// FCP outcomes are identical to the full world's.
func TestScaleWorldConfig(t *testing.T) {
	topo := topology.PaperExample()
	var logs []string
	ws, err := NewWorldFromConfig(topo, WorldConfig{
		Scale: true,
		Log:   func(msg string) { logs = append(logs, msg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ws.Tables.Lazy() {
		t.Error("scale world must use lazy tables")
	}
	if ws.HasMRC() {
		t.Error("scale world must not carry an MRC engine")
	}
	joined := strings.Join(logs, "\n")
	if len(logs) != 2 || !strings.Contains(joined, "lazy") || !strings.Contains(joined, "MRC disabled") {
		t.Errorf("scale concessions not logged, got %q", logs)
	}

	wf, err := NewWorldFrom(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc := failure.NewScenario(wf.Topo, topology.PaperFailureArea())
	fullRec, fullIrr := CasesFromScenario(wf, sc)
	fullOut := RunAll(wf, append(append([]*Case(nil), fullRec...), fullIrr...))

	scRec, scIrr := CasesFromScenario(ws, sc)
	scaleOut := RunAll(ws, append(append([]*Case(nil), scRec...), scIrr...))

	if len(scaleOut) != len(fullOut) {
		t.Fatalf("scale world produced %d outcomes, full %d", len(scaleOut), len(fullOut))
	}
	for i := range scaleOut {
		so, fo := scaleOut[i].Record(), fullOut[i].Record()
		if !so.MRC.Skipped {
			t.Fatalf("case %d: MRC not marked skipped on scale world", i)
		}
		so.MRC = fo.MRC // the only permitted difference
		if !reflect.DeepEqual(so, fo) {
			t.Fatalf("case %d: RTR/FCP outcomes differ between scale and full world:\n scale %+v\n full  %+v", i, so, fo)
		}
	}
}
