package sim

import (
	"errors"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/routing"
	"repro/internal/spt"
)

// groupKey identifies one shared recovery session. Cases of one
// scenario share a single LocalView (CasesFromScenario builds exactly
// one), so the view pointer is scenario identity; combined with the
// initiator and the trigger link it pins down everything phase 1 and
// the pruned-view SPT depend on. All destinations under the same key
// therefore share one collection walk and one shortest-path
// calculation — the paper's central efficiency claim, which the
// simulator previously re-paid per case.
type groupKey struct {
	lv        *routing.LocalView
	initiator graph.NodeID
	trigger   graph.LinkID
}

// caseGroup lists one group's member indices into the RunAll case
// slice, in input order.
type caseGroup struct {
	key   groupKey
	cases []int
}

// groupCases partitions cases into (scenario, initiator, trigger)
// groups, preserving first-appearance order so a serial run visits
// groups deterministically.
func groupCases(cases []*Case) []caseGroup {
	idx := make(map[groupKey]int, len(cases))
	groups := make([]caseGroup, 0, len(cases))
	for i, c := range cases {
		k := groupKey{lv: c.LV, initiator: c.Initiator, trigger: c.Trigger}
		gi, ok := idx[k]
		if !ok {
			gi = len(groups)
			idx[k] = gi
			groups = append(groups, caseGroup{key: k})
		}
		groups[gi].cases = append(groups[gi].cases, i)
	}
	return groups
}

// RunAllN is RunAll with an explicit worker count (GOMAXPROCS when
// workers <= 0). Execution is batched: cases are grouped by
// (scenario, initiator, trigger), each group runs phase-1 collection
// and the single pruned-view SPT once on a shared core.Session, and
// the per-destination tail fans out inside the group. Parallelism is
// per group. The outcome slice is bit-identical to RunAllPerCase for
// any worker count — the differential tests assert it.
func RunAllN(w *World, cases []*Case, workers int) []Outcome {
	out, _ := runAllN(w, cases, workers)
	return out
}

// runAllN additionally returns the truth cache so tests can assert
// request/build counts.
func runAllN(w *World, cases []*Case, workers int) ([]Outcome, *truthCache) {
	out := make([]Outcome, len(cases))
	truths := newTruthCache(w)
	groups := groupCases(cases)
	par.For(len(groups), workers, func(gi int) {
		runGroup(w, truths, cases, groups[gi], out)
	})
	return out, truths
}

// runGroup executes one case group on a shared session. Collection
// and its error classification happen once; every member destination
// then reuses the session's cached collect result and recovery tree,
// keeping SPCalcs at the per-case value (the session computes its tree
// once and never re-counts it per destination). The route buffer and
// the lazily computed truth tree are also shared across the group.
func runGroup(w *World, truths *truthCache, cases []*Case, g caseGroup, out []Outcome) {
	sess, sessErr := w.RTR.NewSession(g.key.lv, g.key.initiator)
	var col *core.CollectResult
	noLive := false
	if sessErr == nil {
		var err error
		col, err = sess.Collect(g.key.trigger)
		switch {
		case errors.Is(err, core.ErrNoLiveNeighbor):
			noLive = true
		case err != nil:
			sessErr = err
		}
	}
	var rt core.Route
	for _, i := range g.cases {
		c := cases[i]
		o := Outcome{Case: c}
		var tt *spt.Tree
		truth := func() *spt.Tree {
			if tt == nil {
				tt = truths.tree(c)
			}
			return tt
		}
		var err error
		switch {
		case sessErr != nil:
			err = sessErr
		case noLive:
			o.RTR = RTRResult{NoLiveNeighbor: true}
		default:
			finishRTR(&o.RTR, w, c, sess, col, &rt, truth)
		}
		if err != nil {
			o.Err = err
		} else if o.FCP, err = runFCP(w, c, truth); err != nil {
			o.Err = err
		} else if o.MRC, err = runMRC(w, c, truth); err != nil {
			o.Err = err
		}
		o.Truth = tt
		out[i] = o
	}
}

// RunAllPerCase is the pre-batching runner, kept as the
// differential-test oracle: every case opens its own session, runs its
// own collection walk, and computes its own pruned-view SPT. Batched
// RunAllN must produce an outcome slice identical to this one for any
// worker count.
func RunAllPerCase(w *World, cases []*Case, workers int) []Outcome {
	out := make([]Outcome, len(cases))
	truths := newTruthCache(w)
	par.For(len(cases), workers, func(i int) {
		out[i] = runCase(w, truths, cases[i])
	})
	return out
}

// runCase executes all three protocols on one case with its own RTR
// session, sharing the lazily computed truth tree across the runners.
func runCase(w *World, truths *truthCache, c *Case) Outcome {
	o := Outcome{Case: c}
	var tt *spt.Tree
	truth := func() *spt.Tree {
		if tt == nil {
			tt = truths.tree(c)
		}
		return tt
	}
	var err error
	if o.RTR, err = runRTR(w, c, truth); err != nil {
		o.Err = err
	} else if o.FCP, err = runFCP(w, c, truth); err != nil {
		o.Err = err
	} else if o.MRC, err = runMRC(w, c, truth); err != nil {
		o.Err = err
	}
	o.Truth = tt
	return o
}
