package sim

import "testing"

func TestAblateTermination(t *testing.T) {
	res, err := AblateTermination("AS1239", 11, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifiedOptimal <= 0 || res.PaperOptimal <= 0 {
		t.Fatalf("degenerate rates: %+v", res)
	}
	// The verification exists to buy optimal-recovery points at the
	// price of longer walks.
	if res.VerifiedOptimal < res.PaperOptimal {
		t.Errorf("verified termination (%.1f%%) must not be worse than the paper rule (%.1f%%)",
			res.VerifiedOptimal, res.PaperOptimal)
	}
	if res.VerifiedP90Ms <= 0 || res.PaperP90Ms <= 0 {
		t.Errorf("durations missing: %+v", res)
	}
	t.Logf("verified %.1f%% @ p90 %.0f ms | paper rule %.1f%% @ p90 %.0f ms",
		res.VerifiedOptimal, res.VerifiedP90Ms, res.PaperOptimal, res.PaperP90Ms)
}

func TestAblateTerminationUnknownAS(t *testing.T) {
	if _, err := AblateTermination("ASnope", 1, 10); err == nil {
		t.Error("unknown topology must error")
	}
}

func TestAblateConstraints(t *testing.T) {
	// 600 cases: under the paper's termination rule the walk-length gap
	// is real but modest, and smaller workloads leave it inside the
	// noise of which equal-cost converged paths the case generator
	// happens to draw.
	res, err := AblateConstraints("AS1239", 11, 600)
	if err != nil {
		t.Fatal(err)
	}
	// With the exploration machinery (directed-edge freshness +
	// escapes), the constraints' measurable benefit is walk length:
	// the unconstrained walk wanders far longer for comparable
	// coverage, in both termination regimes. (The literal Fig. 4
	// short-circuit — unconstrained collecting almost nothing — is
	// reproduced on the paper's worked example by
	// core.TestFig4UnconstrainedDisorder.)
	for _, pair := range []struct {
		name     string
		con, unc ConstraintCell
	}{
		{"verified", res.VerifiedConstrained, res.VerifiedUnconstrained},
		{"paper", res.PaperConstrained, res.PaperUnconstrained},
	} {
		if pair.con.Coverage < 50 || pair.unc.Coverage < 50 {
			t.Errorf("%s termination: coverages implausibly low: %+v", pair.name, pair)
		}
		if pair.unc.AvgWalkHops <= pair.con.AvgWalkHops {
			t.Errorf("%s termination: unconstrained exploration should cost more hops: %+v", pair.name, pair)
		}
	}
	t.Logf("verified: con %.1f%%@%.1f hops, unc %.1f%%@%.1f hops | paper: con %.1f%%@%.1f, unc %.1f%%@%.1f",
		res.VerifiedConstrained.Coverage, res.VerifiedConstrained.AvgWalkHops,
		res.VerifiedUnconstrained.Coverage, res.VerifiedUnconstrained.AvgWalkHops,
		res.PaperConstrained.Coverage, res.PaperConstrained.AvgWalkHops,
		res.PaperUnconstrained.Coverage, res.PaperUnconstrained.AvgWalkHops)
}

func TestAblateMRCConfigs(t *testing.T) {
	pts, err := AblateMRCConfigs("AS1239", 11, 300, []int{3, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	for _, p := range pts {
		if p.Recovery <= 0 || p.Recovery >= 100 {
			t.Errorf("k=%d: recovery %.1f%% out of the plausible band", p.K, p.Recovery)
		}
	}
	t.Logf("MRC config sweep: %+v", pts)
}

func TestAblateWeightedCosts(t *testing.T) {
	res, err := AblateWeightedCosts("AS1239", 11, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 2 is cost-model independent: recovered implies optimal
	// under weighted asymmetric costs too.
	if res.Recovery != res.Optimal {
		t.Errorf("weighted costs: recovery %.2f%% != optimal %.2f%%", res.Recovery, res.Optimal)
	}
	if res.Recovery <= 0 {
		t.Error("no recoveries under weighted costs")
	}
	if res.FCPRecovery < 99.9 {
		t.Errorf("FCP must still always deliver: %.1f%%", res.FCPRecovery)
	}
	t.Logf("weighted costs: RTR %.1f%% (== optimal), FCP %.1f%%", res.Recovery, res.FCPRecovery)
}

func TestMultiArea(t *testing.T) {
	w, err := NewWorld("AS3320", 5)
	if err != nil {
		t.Fatal(err)
	}
	res := MultiArea(w, 9, 120)
	if res.Attempts != 120 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	if res.DeliveredPercent() < 60 {
		t.Errorf("two-area delivery = %.1f%%, implausibly low", res.DeliveredPercent())
	}
	if res.Delivered == 0 || res.AvgSPCalcs < 1 {
		t.Errorf("degenerate result: %+v", res)
	}
	t.Logf("two areas: delivered %.1f%%, %d chained, %.2f SP calcs/attempt",
		res.DeliveredPercent(), res.Chained, res.AvgSPCalcs)
}
