package sim

import (
	"math/rand"
	"time"

	"repro/internal/failure"
	"repro/internal/stats"
)

// Config sizes an experiment run. The paper's full workload is 10,000
// recoverable and 10,000 irrecoverable cases per topology; tests and
// benches use smaller counts.
type Config struct {
	Recoverable   int
	Irrecoverable int
	Seed          int64
}

// DefaultConfig is the paper-scale workload.
func DefaultConfig() Config {
	return Config{Recoverable: 10000, Irrecoverable: 10000, Seed: 1}
}

// Dataset is the shared raw material of Tables III/IV and Figs. 7-10,
// 12-13 for one topology: case records on recoverable and
// irrecoverable cases. Records — not live Outcomes — are the canonical
// representation, so a Dataset assembled from a sweep checkpoint
// aggregates identically to one built in memory.
type Dataset struct {
	World *World
	Rec   []CaseRecord
	Irr   []CaseRecord
}

// BuildDataset collects cases and runs all protocols in one
// monolithic pass. The sweep engine (internal/sweep) builds the same
// dataset from deterministic shards; this path remains for tests,
// benchmarks, and library callers that want a one-shot build.
func BuildDataset(w *World, cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rec, irr := CollectBoth(w, rng, cfg.Recoverable, cfg.Irrecoverable)
	return &Dataset{World: w, Rec: Records(RunAll(w, rec)), Irr: Records(RunAll(w, irr))}
}

// Fig7 returns the CDF of first-phase durations in milliseconds over
// all cases (the paper uses both recoverable and irrecoverable cases:
// "RTR has the same first phase in both").
func (d *Dataset) Fig7() *stats.CDF {
	var c stats.CDF
	for _, set := range [][]CaseRecord{d.Rec, d.Irr} {
		for i := range set {
			r := &set[i]
			if r.Err != "" || r.RTR.NoLiveNeighbor {
				continue
			}
			c.Add(float64(r.RTR.Phase1Duration()) / float64(time.Millisecond))
		}
	}
	return &c
}

// Table3Row is one topology's row of Table III.
type Table3Row struct {
	AS string
	// Recovery rates in percent.
	RTRRecovery, FCPRecovery, MRCRecovery float64
	// Optimal recovery rates in percent.
	RTROptimal, FCPOptimal, MRCOptimal float64
	// Maximum stretch among recovered cases.
	RTRMaxStretch, FCPMaxStretch, MRCMaxStretch float64
	// Maximum number of shortest path calculations (reactive schemes).
	RTRMaxCalcs, FCPMaxCalcs int
}

// Table3 aggregates the recoverable records into the paper's
// Table III row for this topology.
func (d *Dataset) Table3() Table3Row {
	row := Table3Row{AS: d.World.Topo.Name}
	var rtrRec, rtrOpt, fcpRec, fcpOpt, mrcRec, mrcOpt stats.Rate
	for i := range d.Rec {
		r := &d.Rec[i]
		if r.Err != "" {
			continue
		}
		rtrRec.Observe(r.RTR.Recovered)
		rtrOpt.Observe(r.RTR.Optimal)
		fcpRec.Observe(r.FCP.Delivered)
		fcpOpt.Observe(r.FCP.Optimal)
		// Scale-mode records skip MRC entirely; observing them would
		// report a fake 0% recovery rate.
		if !r.MRC.Skipped {
			mrcRec.Observe(r.MRC.Delivered)
			mrcOpt.Observe(r.MRC.Optimal)
		}
		if r.RTR.Recovered && r.RTR.Stretch > row.RTRMaxStretch {
			row.RTRMaxStretch = r.RTR.Stretch
		}
		if r.FCP.Delivered && r.FCP.Stretch > row.FCPMaxStretch {
			row.FCPMaxStretch = r.FCP.Stretch
		}
		if r.MRC.Delivered && r.MRC.Stretch > row.MRCMaxStretch {
			row.MRCMaxStretch = r.MRC.Stretch
		}
		if r.RTR.SPCalcs > row.RTRMaxCalcs {
			row.RTRMaxCalcs = r.RTR.SPCalcs
		}
		if r.FCP.SPCalcs > row.FCPMaxCalcs {
			row.FCPMaxCalcs = r.FCP.SPCalcs
		}
	}
	row.RTRRecovery = rtrRec.Percent()
	row.RTROptimal = rtrOpt.Percent()
	row.FCPRecovery = fcpRec.Percent()
	row.FCPOptimal = fcpOpt.Percent()
	row.MRCRecovery = mrcRec.Percent()
	row.MRCOptimal = mrcOpt.Percent()
	return row
}

// Fig8 returns the stretch CDFs of recovered cases for RTR and FCP.
func (d *Dataset) Fig8() (rtr, fcp *stats.CDF) {
	rtr, fcp = &stats.CDF{}, &stats.CDF{}
	for i := range d.Rec {
		r := &d.Rec[i]
		if r.Err != "" {
			continue
		}
		if r.RTR.Recovered {
			rtr.Add(r.RTR.Stretch)
		}
		if r.FCP.Delivered {
			fcp.Add(r.FCP.Stretch)
		}
	}
	return rtr, fcp
}

// Fig9 returns the CDFs of shortest-path calculation counts on
// recoverable cases for RTR and FCP.
func (d *Dataset) Fig9() (rtr, fcp *stats.CDF) {
	rtr, fcp = &stats.CDF{}, &stats.CDF{}
	for i := range d.Rec {
		r := &d.Rec[i]
		if r.Err != "" || r.RTR.NoLiveNeighbor {
			continue
		}
		rtr.Add(float64(r.RTR.SPCalcs))
		fcp.Add(float64(r.FCP.SPCalcs))
	}
	return rtr, fcp
}

// TimePoint is one sample of Fig. 10's average transmission overhead
// (header recording bytes) over time.
type TimePoint struct {
	T        time.Duration
	RTRBytes float64
	FCPBytes float64
}

// Fig10 samples the average per-packet header recording bytes over
// recoverable cases from t=0 to horizon in the given step (the paper
// shows the first second at millisecond resolution).
func (d *Dataset) Fig10(horizon, step time.Duration) []TimePoint {
	var out []TimePoint
	for t := time.Duration(0); t <= horizon; t += step {
		var rtrSum, fcpSum float64
		n := 0
		for i := range d.Rec {
			r := &d.Rec[i]
			if r.Err != "" || r.RTR.NoLiveNeighbor {
				continue
			}
			n++
			rtrSum += float64(RecordBytesAt(r.RTR.Phase1Bytes, r.RTR.RouteBytes, t))
			fcpSum += float64(RecordBytesAt(r.FCP.WalkBytes, r.FCP.FinalBytes, t))
		}
		if n == 0 {
			continue
		}
		out = append(out, TimePoint{T: t, RTRBytes: rtrSum / float64(n), FCPBytes: fcpSum / float64(n)})
	}
	return out
}

// Fig11Point is one radius sample of Fig. 11.
type Fig11Point struct {
	Radius float64
	// Percent of failed routing paths that are irrecoverable.
	Percent float64
	Failed  int
}

// Fig11 sweeps the failure radius (the paper: 20 to 300 in steps of
// 20, 1000 areas per radius) and reports the fraction of failed
// routing paths that are irrecoverable.
func Fig11(w *World, seed int64, radii []float64, areasPerRadius int) []Fig11Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fig11Point, 0, len(radii))
	for _, radius := range radii {
		failed, irr := 0, 0
		for i := 0; i < areasPerRadius; i++ {
			area := failure.RandomArea(rng, radius, radius)
			sc := failure.NewScenario(w.Topo, area)
			f, ir := CountFailedPaths(w, sc)
			failed += f
			irr += ir
		}
		out = append(out, NewFig11Point(radius, failed, irr))
	}
	return out
}

// NewFig11Point assembles one Fig. 11 sample from raw failed-path
// counts (the sweep engine merges per-shard counts through this).
func NewFig11Point(radius float64, failed, irrecoverable int) Fig11Point {
	p := Fig11Point{Radius: radius, Failed: failed}
	if failed > 0 {
		p.Percent = 100 * float64(irrecoverable) / float64(failed)
	}
	return p
}

// DefaultRadii is the paper's Fig. 11 sweep: 20 to 300 step 20.
func DefaultRadii() []float64 {
	var out []float64
	for r := 20.0; r <= 300; r += 20 {
		out = append(out, r)
	}
	return out
}

// Fig12 returns the CDFs of wasted computation (shortest path
// calculations) on irrecoverable cases.
func (d *Dataset) Fig12() (rtr, fcp *stats.CDF) {
	rtr, fcp = &stats.CDF{}, &stats.CDF{}
	for i := range d.Irr {
		r := &d.Irr[i]
		if r.Err != "" || r.RTR.NoLiveNeighbor {
			continue
		}
		rtr.Add(float64(r.RTR.SPCalcs))
		fcp.Add(float64(r.FCP.SPCalcs))
	}
	return rtr, fcp
}

// Fig13 returns the CDFs of wasted transmission (packet size times
// hops from the initiator to the discarding node) on irrecoverable
// cases.
func (d *Dataset) Fig13() (rtr, fcp *stats.CDF) {
	rtr, fcp = &stats.CDF{}, &stats.CDF{}
	for i := range d.Irr {
		r := &d.Irr[i]
		if r.Err != "" || r.RTR.NoLiveNeighbor {
			continue
		}
		rtr.Add(wastedTransmission(r.RTR.RouteBytes, r.RTR.WastedHops))
		fcp.Add(wastedTransmission(r.FCP.FinalBytes, r.FCP.WastedHops))
	}
	return rtr, fcp
}

// Table4Row is one topology's row of Table IV.
type Table4Row struct {
	AS                       string
	RTRAvgComp, FCPAvgComp   float64
	RTRMaxComp, FCPMaxComp   float64
	RTRAvgTrans, FCPAvgTrans float64
	RTRMaxTrans, FCPMaxTrans float64
}

// Table4 aggregates the irrecoverable records into the paper's
// Table IV row.
func (d *Dataset) Table4() Table4Row {
	rtrC, fcpC := d.Fig12()
	rtrT, fcpT := d.Fig13()
	row := Table4Row{AS: d.World.Topo.Name}
	if rtrC.N() > 0 {
		row.RTRAvgComp, row.RTRMaxComp = rtrC.Mean(), rtrC.Max()
		row.FCPAvgComp, row.FCPMaxComp = fcpC.Mean(), fcpC.Max()
		row.RTRAvgTrans, row.RTRMaxTrans = rtrT.Mean(), rtrT.Max()
		row.FCPAvgTrans, row.FCPMaxTrans = fcpT.Mean(), fcpT.Max()
	}
	return row
}
