package sim

import (
	"math/rand"
	"time"

	"repro/internal/failure"
	"repro/internal/stats"
)

// Config sizes an experiment run. The paper's full workload is 10,000
// recoverable and 10,000 irrecoverable cases per topology; tests and
// benches use smaller counts.
type Config struct {
	Recoverable   int
	Irrecoverable int
	Seed          int64
}

// DefaultConfig is the paper-scale workload.
func DefaultConfig() Config {
	return Config{Recoverable: 10000, Irrecoverable: 10000, Seed: 1}
}

// Dataset is the shared raw material of Tables III/IV and Figs. 7-10,
// 12-13 for one topology: outcomes on recoverable and irrecoverable
// cases.
type Dataset struct {
	World *World
	Rec   []Outcome
	Irr   []Outcome
}

// BuildDataset collects cases and runs all protocols.
func BuildDataset(w *World, cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rec, irr := CollectBoth(w, rng, cfg.Recoverable, cfg.Irrecoverable)
	return &Dataset{World: w, Rec: RunAll(w, rec), Irr: RunAll(w, irr)}
}

// Fig7 returns the CDF of first-phase durations in milliseconds over
// all cases (the paper uses both recoverable and irrecoverable cases:
// "RTR has the same first phase in both").
func (d *Dataset) Fig7() *stats.CDF {
	var c stats.CDF
	for _, set := range [][]Outcome{d.Rec, d.Irr} {
		for _, o := range set {
			if o.Err != nil || o.RTR.NoLiveNeighbor {
				continue
			}
			c.Add(float64(o.RTR.Phase1.Duration()) / float64(time.Millisecond))
		}
	}
	return &c
}

// Table3Row is one topology's row of Table III.
type Table3Row struct {
	AS string
	// Recovery rates in percent.
	RTRRecovery, FCPRecovery, MRCRecovery float64
	// Optimal recovery rates in percent.
	RTROptimal, FCPOptimal, MRCOptimal float64
	// Maximum stretch among recovered cases.
	RTRMaxStretch, FCPMaxStretch, MRCMaxStretch float64
	// Maximum number of shortest path calculations (reactive schemes).
	RTRMaxCalcs, FCPMaxCalcs int
}

// Table3 aggregates the recoverable outcomes into the paper's
// Table III row for this topology.
func (d *Dataset) Table3() Table3Row {
	row := Table3Row{AS: d.World.Topo.Name}
	var rtrRec, rtrOpt, fcpRec, fcpOpt, mrcRec, mrcOpt stats.Rate
	for _, o := range d.Rec {
		if o.Err != nil {
			continue
		}
		rtrRec.Observe(o.RTR.Recovered)
		rtrOpt.Observe(o.RTR.Optimal)
		fcpRec.Observe(o.FCP.Delivered)
		fcpOpt.Observe(o.FCP.Optimal)
		mrcRec.Observe(o.MRC.Delivered)
		mrcOpt.Observe(o.MRC.Optimal)
		if o.RTR.Recovered && o.RTR.Stretch > row.RTRMaxStretch {
			row.RTRMaxStretch = o.RTR.Stretch
		}
		if o.FCP.Delivered && o.FCP.Stretch > row.FCPMaxStretch {
			row.FCPMaxStretch = o.FCP.Stretch
		}
		if o.MRC.Delivered && o.MRC.Stretch > row.MRCMaxStretch {
			row.MRCMaxStretch = o.MRC.Stretch
		}
		if o.RTR.SPCalcs > row.RTRMaxCalcs {
			row.RTRMaxCalcs = o.RTR.SPCalcs
		}
		if o.FCP.SPCalcs > row.FCPMaxCalcs {
			row.FCPMaxCalcs = o.FCP.SPCalcs
		}
	}
	row.RTRRecovery = rtrRec.Percent()
	row.RTROptimal = rtrOpt.Percent()
	row.FCPRecovery = fcpRec.Percent()
	row.FCPOptimal = fcpOpt.Percent()
	row.MRCRecovery = mrcRec.Percent()
	row.MRCOptimal = mrcOpt.Percent()
	return row
}

// Fig8 returns the stretch CDFs of recovered cases for RTR and FCP.
func (d *Dataset) Fig8() (rtr, fcp *stats.CDF) {
	rtr, fcp = &stats.CDF{}, &stats.CDF{}
	for _, o := range d.Rec {
		if o.Err != nil {
			continue
		}
		if o.RTR.Recovered {
			rtr.Add(o.RTR.Stretch)
		}
		if o.FCP.Delivered {
			fcp.Add(o.FCP.Stretch)
		}
	}
	return rtr, fcp
}

// Fig9 returns the CDFs of shortest-path calculation counts on
// recoverable cases for RTR and FCP.
func (d *Dataset) Fig9() (rtr, fcp *stats.CDF) {
	rtr, fcp = &stats.CDF{}, &stats.CDF{}
	for _, o := range d.Rec {
		if o.Err != nil || o.RTR.NoLiveNeighbor {
			continue
		}
		rtr.Add(float64(o.RTR.SPCalcs))
		fcp.Add(float64(o.FCP.SPCalcs))
	}
	return rtr, fcp
}

// TimePoint is one sample of Fig. 10's average transmission overhead
// (header recording bytes) over time.
type TimePoint struct {
	T        time.Duration
	RTRBytes float64
	FCPBytes float64
}

// Fig10 samples the average per-packet header recording bytes over
// recoverable cases from t=0 to horizon in the given step (the paper
// shows the first second at millisecond resolution).
func (d *Dataset) Fig10(horizon, step time.Duration) []TimePoint {
	var out []TimePoint
	for t := time.Duration(0); t <= horizon; t += step {
		var rtrSum, fcpSum float64
		n := 0
		for _, o := range d.Rec {
			if o.Err != nil || o.RTR.NoLiveNeighbor {
				continue
			}
			n++
			rtrSum += float64(BytesAt(o.RTR.Phase1, o.RTR.RouteBytes, t))
			fcpSum += float64(BytesAt(o.FCP.Walk, o.FCP.FinalBytes, t))
		}
		if n == 0 {
			continue
		}
		out = append(out, TimePoint{T: t, RTRBytes: rtrSum / float64(n), FCPBytes: fcpSum / float64(n)})
	}
	return out
}

// Fig11Point is one radius sample of Fig. 11.
type Fig11Point struct {
	Radius float64
	// Percent of failed routing paths that are irrecoverable.
	Percent float64
	Failed  int
}

// Fig11 sweeps the failure radius (the paper: 20 to 300 in steps of
// 20, 1000 areas per radius) and reports the fraction of failed
// routing paths that are irrecoverable.
func Fig11(w *World, seed int64, radii []float64, areasPerRadius int) []Fig11Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fig11Point, 0, len(radii))
	for _, radius := range radii {
		failed, irr := 0, 0
		for i := 0; i < areasPerRadius; i++ {
			area := failure.RandomArea(rng, radius, radius)
			sc := failure.NewScenario(w.Topo, area)
			f, ir := CountFailedPaths(w, sc)
			failed += f
			irr += ir
		}
		p := Fig11Point{Radius: radius, Failed: failed}
		if failed > 0 {
			p.Percent = 100 * float64(irr) / float64(failed)
		}
		out = append(out, p)
	}
	return out
}

// DefaultRadii is the paper's Fig. 11 sweep: 20 to 300 step 20.
func DefaultRadii() []float64 {
	var out []float64
	for r := 20.0; r <= 300; r += 20 {
		out = append(out, r)
	}
	return out
}

// Fig12 returns the CDFs of wasted computation (shortest path
// calculations) on irrecoverable cases.
func (d *Dataset) Fig12() (rtr, fcp *stats.CDF) {
	rtr, fcp = &stats.CDF{}, &stats.CDF{}
	for _, o := range d.Irr {
		if o.Err != nil || o.RTR.NoLiveNeighbor {
			continue
		}
		rtr.Add(float64(o.RTR.SPCalcs))
		fcp.Add(float64(o.FCP.SPCalcs))
	}
	return rtr, fcp
}

// Fig13 returns the CDFs of wasted transmission (packet size times
// hops from the initiator to the discarding node) on irrecoverable
// cases.
func (d *Dataset) Fig13() (rtr, fcp *stats.CDF) {
	rtr, fcp = &stats.CDF{}, &stats.CDF{}
	for _, o := range d.Irr {
		if o.Err != nil || o.RTR.NoLiveNeighbor {
			continue
		}
		rtr.Add(wastedTransmission(o.RTR.RouteBytes, o.RTR.WastedHops))
		fcp.Add(wastedTransmission(o.FCP.FinalBytes, o.FCP.WastedHops))
	}
	return rtr, fcp
}

// Table4Row is one topology's row of Table IV.
type Table4Row struct {
	AS                       string
	RTRAvgComp, FCPAvgComp   float64
	RTRMaxComp, FCPMaxComp   float64
	RTRAvgTrans, FCPAvgTrans float64
	RTRMaxTrans, FCPMaxTrans float64
}

// Table4 aggregates the irrecoverable outcomes into the paper's
// Table IV row.
func (d *Dataset) Table4() Table4Row {
	rtrC, fcpC := d.Fig12()
	rtrT, fcpT := d.Fig13()
	row := Table4Row{AS: d.World.Topo.Name}
	if rtrC.N() > 0 {
		row.RTRAvgComp, row.RTRMaxComp = rtrC.Mean(), rtrC.Max()
		row.FCPAvgComp, row.FCPMaxComp = fcpC.Mean(), fcpC.Max()
		row.RTRAvgTrans, row.RTRMaxTrans = rtrT.Mean(), rtrT.Max()
		row.FCPAvgTrans, row.FCPMaxTrans = fcpT.Mean(), fcpT.Max()
	}
	return row
}
