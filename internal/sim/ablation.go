package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/mrc"
	seedpkg "repro/internal/seed"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ablationCaseRNG derives the workload RNG of an ablation run from its
// base seed. The derivation keeps the workload stream independent of
// the topology-synthesis stream (which consumes the base seed
// directly) without the old seed+1 offset, which collided with any
// caller that happened to pass adjacent base seeds.
func ablationCaseRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seedpkg.Derive(seed, "ablation-cases")))
}

// The ablation experiments quantify the design choices DESIGN.md calls
// out: the enclosure-verified termination versus the paper's literal
// rule, the two forwarding constraints versus the plain right-hand
// rule, MRC's configuration count, and hop-count versus weighted link
// costs.

// TerminationAblation compares phase-1 termination rules on identical
// workloads.
type TerminationAblation struct {
	AS string
	// Optimal recovery rates (percent).
	VerifiedOptimal, PaperOptimal float64
	// First-phase duration 90th percentiles (milliseconds).
	VerifiedP90Ms, PaperP90Ms float64
}

// AblateTermination builds two engines on the same topology — default
// (enclosure-verified) and WithPaperTermination — and runs the same
// recoverable workload through both.
func AblateTermination(asName string, seed int64, cases int) (TerminationAblation, error) {
	res := TerminationAblation{AS: asName}
	build := func(opts ...core.Option) (*World, []*Case, error) {
		p, ok := topology.ParamsFor(asName)
		if !ok {
			return nil, nil, fmt.Errorf("sim: unknown topology %q", asName)
		}
		topo, err := topology.Generate(p, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, nil, err
		}
		w, err := NewWorldFrom(topo, opts...)
		if err != nil {
			return nil, nil, err
		}
		return w, CollectCases(w, ablationCaseRNG(seed), cases, true), nil
	}
	measure := func(w *World, cs []*Case) (optPct, p90 float64) {
		outs := RunAll(w, cs)
		n, opt := 0, 0
		var durations []float64
		for _, o := range outs {
			if o.Err != nil || o.RTR.NoLiveNeighbor {
				continue
			}
			n++
			if o.RTR.Optimal {
				opt++
			}
			durations = append(durations, float64(o.RTR.Phase1.Duration())/float64(time.Millisecond))
		}
		if n == 0 {
			return 0, 0
		}
		c := stats.NewCDF(durations)
		return 100 * float64(opt) / float64(n), c.Quantile(0.9)
	}

	w, cs, err := build()
	if err != nil {
		return res, err
	}
	res.VerifiedOptimal, res.VerifiedP90Ms = measure(w, cs)

	wp, csp, err := build(core.WithPaperTermination())
	if err != nil {
		return res, err
	}
	res.PaperOptimal, res.PaperP90Ms = measure(wp, csp)
	return res, nil
}

// ConstraintCell is one cell of the 2x2 constraint/termination
// ablation: failure-collection coverage and walk length for one
// combination. Coverage is the fraction of observable failed links
// (failed links with a live endpoint in the initiator's component)
// that the walk collected, including the initiator's own.
type ConstraintCell struct {
	Coverage    float64 // percent
	AvgWalkHops float64
}

// ConstraintAblation crosses Constraints 1-2 (on/off) with the
// termination rule (enclosure-verified / paper). The paper's Fig. 4
// argument — constraints keep the walk from short-circuiting — shows
// up under the paper's termination; under the verified termination the
// walk keeps exploring either way and the unconstrained variant trades
// ~2x hops for comparable coverage.
type ConstraintAblation struct {
	AS                                   string
	VerifiedConstrained                  ConstraintCell
	VerifiedUnconstrained                ConstraintCell
	PaperConstrained, PaperUnconstrained ConstraintCell
}

// AblateConstraints measures the 2x2 of constraints x termination.
func AblateConstraints(asName string, seed int64, cases int) (ConstraintAblation, error) {
	res := ConstraintAblation{AS: asName}
	p, ok := topology.ParamsFor(asName)
	if !ok {
		return res, fmt.Errorf("sim: unknown topology %q", asName)
	}

	run := func(opts ...core.Option) (con, unc ConstraintCell, err error) {
		topo, err := topology.Generate(p, rand.New(rand.NewSource(seed)))
		if err != nil {
			return con, unc, err
		}
		w, err := NewWorldFrom(topo, opts...)
		if err != nil {
			return con, unc, err
		}
		cs := CollectCases(w, ablationCaseRNG(seed), cases, true)

		coverage := func(c *Case, collected []graph.LinkID) (have, want int) {
			known := make(map[graph.LinkID]bool, len(collected))
			for _, id := range collected {
				known[id] = true
			}
			for _, id := range c.LV.UnreachableLinks(c.Initiator) {
				known[id] = true
			}
			reach := w.Topo.G.Reachable(c.Initiator, c.Scenario)
			for _, id := range c.Scenario.FailedLinks() {
				l := w.Topo.G.Link(id)
				observable := (!c.Scenario.NodeDown(l.A) && reach[l.A]) ||
					(!c.Scenario.NodeDown(l.B) && reach[l.B])
				if !observable {
					continue
				}
				want++
				if known[id] {
					have++
				}
			}
			return have, want
		}

		var conHave, conWant, unHave, unWant, conHops, unHops, n int
		for _, c := range cs {
			sess, err := w.RTR.NewSession(c.LV, c.Initiator)
			if err != nil {
				continue
			}
			col, err := sess.Collect(c.Trigger)
			if err != nil {
				continue
			}
			uncol, err := w.RTR.CollectUnconstrained(c.LV, c.Initiator, c.Trigger)
			if err != nil {
				continue
			}
			n++
			h, want := coverage(c, col.Header.FailedLinks)
			conHave += h
			conWant += want
			h, want = coverage(c, uncol.Header.FailedLinks)
			unHave += h
			unWant += want
			conHops += col.Walk.Hops()
			unHops += uncol.Walk.Hops()
		}
		if conWant > 0 {
			con.Coverage = 100 * float64(conHave) / float64(conWant)
		}
		if unWant > 0 {
			unc.Coverage = 100 * float64(unHave) / float64(unWant)
		}
		if n > 0 {
			con.AvgWalkHops = float64(conHops) / float64(n)
			unc.AvgWalkHops = float64(unHops) / float64(n)
		}
		return con, unc, nil
	}

	var err error
	res.VerifiedConstrained, res.VerifiedUnconstrained, err = run()
	if err != nil {
		return res, err
	}
	res.PaperConstrained, res.PaperUnconstrained, err = run(core.WithPaperTermination())
	return res, err
}

// MRCConfigPoint is one point of the configuration-count sweep.
type MRCConfigPoint struct {
	K        int
	Recovery float64 // percent, recoverable cases
}

// AblateMRCConfigs sweeps MRC's configuration count on a fixed
// workload: more configurations isolate fewer elements each, changing
// how often a route survives an area failure.
func AblateMRCConfigs(asName string, seed int64, cases int, ks []int) ([]MRCConfigPoint, error) {
	w, err := NewWorld(asName, seed)
	if err != nil {
		return nil, err
	}
	cs := CollectCases(w, ablationCaseRNG(seed), cases, true)

	out := make([]MRCConfigPoint, 0, len(ks))
	for _, k := range ks {
		m, err := mrc.New(w.Topo, k)
		if err != nil {
			return nil, err
		}
		delivered, n := 0, 0
		for _, c := range cs {
			r, err := m.Recover(c.LV, c.Initiator, c.Dst, c.NextHop, c.Trigger)
			if err != nil {
				continue
			}
			n++
			if r.Delivered {
				delivered++
			}
		}
		p := MRCConfigPoint{K: m.Configs()}
		if n > 0 {
			p.Recovery = 100 * float64(delivered) / float64(n)
		}
		out = append(out, p)
	}
	return out, nil
}

// WeightedCostAblation checks that RTR's guarantees are cost-model
// independent: with random asymmetric link weights instead of hop
// count, recovered still implies optimal (Theorem 2 argues about path
// costs, not hops).
type WeightedCostAblation struct {
	AS                string
	Recovery, Optimal float64 // percent; must be equal
	FCPRecovery       float64
}

// AblateWeightedCosts rebuilds the topology with random per-direction
// link costs in [1, 10) and reruns the recoverable workload.
func AblateWeightedCosts(asName string, seed int64, cases int) (WeightedCostAblation, error) {
	res := WeightedCostAblation{AS: asName}
	p, ok := topology.ParamsFor(asName)
	if !ok {
		return res, fmt.Errorf("sim: unknown topology %q", asName)
	}
	rng := rand.New(rand.NewSource(seed))
	base, err := topology.Generate(p, rng)
	if err != nil {
		return res, err
	}
	weighted, err := reweight(base, rng)
	if err != nil {
		return res, err
	}
	w, err := NewWorldFrom(weighted)
	if err != nil {
		return res, err
	}
	cs := CollectCases(w, ablationCaseRNG(seed), cases, true)
	outs := RunAll(w, cs)
	var rec, opt, fcpRec, n int
	for _, o := range outs {
		if o.Err != nil {
			continue
		}
		n++
		if o.RTR.Recovered {
			rec++
		}
		if o.RTR.Optimal {
			opt++
		}
		if o.FCP.Delivered {
			fcpRec++
		}
	}
	if n > 0 {
		res.Recovery = 100 * float64(rec) / float64(n)
		res.Optimal = 100 * float64(opt) / float64(n)
		res.FCPRecovery = 100 * float64(fcpRec) / float64(n)
	}
	return res, nil
}

// reweight clones the topology with fresh random per-direction costs.
func reweight(t *topology.Topology, rng *rand.Rand) (*topology.Topology, error) {
	g := graph.New(t.G.NumNodes())
	for _, l := range t.G.Links() {
		costAB := 1 + rng.Float64()*9
		costBA := 1 + rng.Float64()*9
		if _, err := g.AddLinkCost(l.A, l.B, costAB, costBA); err != nil {
			return nil, err
		}
	}
	coords := append([]geom.Point(nil), t.Coords...)
	return &topology.Topology{Name: t.Name + "-weighted", G: g, Coords: coords}, nil
}
