package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spt"
)

// SinglePair freezes one recoverable test case on a world so that a
// benchmark (or a latency experiment) can time a single (initiator,
// destination) recovery per operation, per protocol. The frozen case
// depends only on the world's topology and the pair seed — never on
// the world's phase-2 engine — so worlds built under different engines
// freeze the identical case and their per-op timings compare identical
// work. The ground-truth post-failure tree is computed once here, so
// per-op grading never pays for a truth computation.
type SinglePair struct {
	W *World
	C *Case

	truth *spt.Tree
}

// NewSinglePair draws random failure areas from the pair seed until one
// yields a recoverable case and freezes that scenario's first case.
func NewSinglePair(w *World, seed int64) (*SinglePair, error) {
	rng := rand.New(rand.NewSource(seed))
	for draws := 0; draws < MaxCollectDraws; draws++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, _ := CasesFromScenario(w, sc)
		if len(rec) == 0 {
			continue
		}
		c := rec[0]
		return &SinglePair{
			W:     w,
			C:     c,
			truth: spt.Compute(w.Topo.G, c.Initiator, c.Scenario),
		}, nil
	}
	return nil, fmt.Errorf("sim: no recoverable case on %s after %d draws", w.Topo.Name, MaxCollectDraws)
}

// NewSinglePairFrom freezes an explicit (failure instance, initiator,
// destination) triple instead of drawing one at random, so a daemon
// differential test or a load generator can replay the exact query mix
// another process answers. The triple must form a genuine test case in
// the paper's sense: src is live and its converged next hop toward dst
// is unreachable under sc. The frozen Case is field-identical to the
// one CasesFromScenario would enumerate for the same triple (the
// reachability classification through the ground-truth tree equals
// component membership on the undirected surviving graph).
func NewSinglePairFrom(w *World, sc *failure.Scenario, src, dst graph.NodeID) (*SinglePair, error) {
	n := w.Topo.G.NumNodes()
	if int(src) < 0 || int(src) >= n || int(dst) < 0 || int(dst) >= n {
		return nil, fmt.Errorf("sim: pair (%d, %d) out of range on %s (%d nodes)", src, dst, w.Topo.Name, n)
	}
	if src == dst {
		return nil, fmt.Errorf("sim: source and destination are both %d", src)
	}
	if sc.NodeDown(src) {
		return nil, fmt.Errorf("sim: initiator %d is inside the failure", src)
	}
	nh, link, ok := w.Tables.NextHop(src, dst)
	if !ok {
		return nil, fmt.Errorf("sim: no converged route %d -> %d on %s", src, dst, w.Topo.Name)
	}
	lv := routing.NewLocalView(w.Topo, sc)
	if !lv.NeighborUnreachable(src, link) {
		return nil, fmt.Errorf("sim: converged next hop %d -> %d is unaffected; not a recovery case", src, nh)
	}
	truth := spt.Compute(w.Topo.G, src, sc)
	_, reachable := truth.CostTo(dst)
	c := &Case{
		Scenario:    sc,
		LV:          lv,
		Initiator:   src,
		Dst:         dst,
		NextHop:     nh,
		Trigger:     link,
		Recoverable: !sc.NodeDown(dst) && reachable,
	}
	return &SinglePair{W: w, C: c, truth: truth}, nil
}

// RTR runs one full RTR recovery of the frozen case: fresh session,
// collection walk, phase-2 route, forwarding, grading.
func (p *SinglePair) RTR() (RTRResult, error) { return RunRTR(p.W, p.C, p.truth) }

// FCP runs one full FCP recovery of the frozen case.
func (p *SinglePair) FCP() (FCPResult, error) { return RunFCP(p.W, p.C, p.truth) }

// MRC runs one full MRC recovery of the frozen case.
func (p *SinglePair) MRC() (MRCResult, error) { return RunMRC(p.W, p.C, p.truth) }

// SettledNodes reports how many nodes the world's phase-2 engine
// settles to answer the frozen case's (initiator, destination) route
// query over the failure scenario. The full-tree engine settles every
// reachable node; the goal-directed engines stop once the destination's
// label is exact, which is the work reduction the single-pair
// benchmarks exist to show.
func (p *SinglePair) SettledNodes() int {
	ws := spt.GetWorkspace()
	defer ws.Release()
	g := p.W.Topo.G
	if p.W.Phase2 == spt.EngineDijkstra {
		t := ws.Compute(g, p.C.Initiator, p.C.Scenario)
		settled := 0
		for _, d := range t.Dist {
			if !math.IsInf(d, 1) {
				settled++
			}
		}
		return settled
	}
	var res spt.GoalResult
	ws.ComputeGoal(&res, g, p.C.Initiator, p.C.Dst, p.C.Scenario, p.W.RTR.Heuristic())
	return res.Settled
}
