package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/failure"
	"repro/internal/spt"
)

// SinglePair freezes one recoverable test case on a world so that a
// benchmark (or a latency experiment) can time a single (initiator,
// destination) recovery per operation, per protocol. The frozen case
// depends only on the world's topology and the pair seed — never on
// the world's phase-2 engine — so worlds built under different engines
// freeze the identical case and their per-op timings compare identical
// work. The ground-truth post-failure tree is computed once here, so
// per-op grading never pays for a truth computation.
type SinglePair struct {
	W *World
	C *Case

	truth *spt.Tree
}

// NewSinglePair draws random failure areas from the pair seed until one
// yields a recoverable case and freezes that scenario's first case.
func NewSinglePair(w *World, seed int64) (*SinglePair, error) {
	rng := rand.New(rand.NewSource(seed))
	for draws := 0; draws < MaxCollectDraws; draws++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, _ := CasesFromScenario(w, sc)
		if len(rec) == 0 {
			continue
		}
		c := rec[0]
		return &SinglePair{
			W:     w,
			C:     c,
			truth: spt.Compute(w.Topo.G, c.Initiator, c.Scenario),
		}, nil
	}
	return nil, fmt.Errorf("sim: no recoverable case on %s after %d draws", w.Topo.Name, MaxCollectDraws)
}

// RTR runs one full RTR recovery of the frozen case: fresh session,
// collection walk, phase-2 route, forwarding, grading.
func (p *SinglePair) RTR() (RTRResult, error) { return RunRTR(p.W, p.C, p.truth) }

// FCP runs one full FCP recovery of the frozen case.
func (p *SinglePair) FCP() (FCPResult, error) { return RunFCP(p.W, p.C, p.truth) }

// MRC runs one full MRC recovery of the frozen case.
func (p *SinglePair) MRC() (MRCResult, error) { return RunMRC(p.W, p.C, p.truth) }

// SettledNodes reports how many nodes the world's phase-2 engine
// settles to answer the frozen case's (initiator, destination) route
// query over the failure scenario. The full-tree engine settles every
// reachable node; the goal-directed engines stop once the destination's
// label is exact, which is the work reduction the single-pair
// benchmarks exist to show.
func (p *SinglePair) SettledNodes() int {
	ws := spt.GetWorkspace()
	defer ws.Release()
	g := p.W.Topo.G
	if p.W.Phase2 == spt.EngineDijkstra {
		t := ws.Compute(g, p.C.Initiator, p.C.Scenario)
		settled := 0
		for _, d := range t.Dist {
			if !math.IsInf(d, 1) {
				settled++
			}
		}
		return settled
	}
	var res spt.GoalResult
	ws.ComputeGoal(&res, g, p.C.Initiator, p.C.Dst, p.C.Scenario, p.W.RTR.Heuristic())
	return res.Settled
}
