package sim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/topology"
)

// smallDataset builds a modest dataset once per test binary run.
func smallDataset(t *testing.T, as string) *Dataset {
	t.Helper()
	w, err := NewWorld(as, 11)
	if err != nil {
		t.Fatal(err)
	}
	return BuildDataset(w, Config{Recoverable: 500, Irrecoverable: 500, Seed: 42})
}

func TestNewWorldUnknown(t *testing.T) {
	if _, err := NewWorld("ASnope", 1); err == nil {
		t.Error("unknown topology must error")
	}
}

func TestCasesFromScenarioPaperExample(t *testing.T) {
	w, err := NewWorldFrom(topology.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	sc := failure.NewScenario(w.Topo, topology.PaperFailureArea())
	rec, irr := CasesFromScenario(w, sc)

	// The narrative case must be present: initiator v6, destination
	// v17, trigger e6-11, recoverable.
	found := false
	for _, c := range rec {
		if c.Initiator == topology.PaperNode(6) && c.Dst == topology.PaperNode(17) {
			found = true
			if c.Trigger != topology.PaperLink(w.Topo, 6, 11) {
				t.Errorf("trigger = %v, want e6-11", w.Topo.G.Link(c.Trigger))
			}
			if c.NextHop != topology.PaperNode(11) {
				t.Errorf("next hop = v%d, want v11", c.NextHop+1)
			}
		}
	}
	if !found {
		t.Error("narrative case (v6 -> v17) missing from recoverable set")
	}
	// All irrecoverable destinations here are v10 (the only dead or
	// partitioned node in this fixture).
	for _, c := range irr {
		if c.Dst != topology.PaperNode(10) {
			t.Errorf("unexpected irrecoverable destination v%d", c.Dst+1)
		}
	}
	// Dedup: no (initiator, dst) repeats.
	seen := map[[2]int]bool{}
	for _, c := range append(append([]*Case(nil), rec...), irr...) {
		k := [2]int{int(c.Initiator), int(c.Dst)}
		if seen[k] {
			t.Errorf("duplicate case (%d, %d)", c.Initiator, c.Dst)
		}
		seen[k] = true
	}
}

func TestCollectCasesCounts(t *testing.T) {
	w, err := NewWorld("AS1239", 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rec := CollectCases(w, rng, 120, true)
	if len(rec) != 120 {
		t.Errorf("got %d recoverable cases, want 120", len(rec))
	}
	for _, c := range rec {
		if !c.Recoverable {
			t.Fatal("recoverable set contains irrecoverable case")
		}
	}
	irr := CollectCases(w, rng, 80, false)
	if len(irr) != 80 {
		t.Errorf("got %d irrecoverable cases, want 80", len(irr))
	}
	for _, c := range irr {
		if c.Recoverable {
			t.Fatal("irrecoverable set contains recoverable case")
		}
	}
}

func TestTable3Shape(t *testing.T) {
	d := smallDataset(t, "AS1239")
	row := d.Table3()

	// The paper's comparative claims, asserted as shapes.
	if row.FCPRecovery < 99.9 {
		t.Errorf("FCP recovery = %.1f%%, want 100%%", row.FCPRecovery)
	}
	if row.RTRRecovery != row.RTROptimal {
		t.Errorf("RTR recovery (%.2f) must equal RTR optimal (%.2f) — Theorem 2", row.RTRRecovery, row.RTROptimal)
	}
	if row.RTROptimal <= row.FCPOptimal {
		t.Errorf("RTR optimal (%.1f%%) must beat FCP optimal (%.1f%%)", row.RTROptimal, row.FCPOptimal)
	}
	if row.MRCRecovery >= row.RTRRecovery {
		t.Errorf("MRC recovery (%.1f%%) must be far below RTR (%.1f%%)", row.MRCRecovery, row.RTRRecovery)
	}
	if row.RTRMaxStretch != 1 {
		t.Errorf("RTR max stretch = %v, want exactly 1", row.RTRMaxStretch)
	}
	if row.FCPMaxStretch < 1 {
		t.Errorf("FCP max stretch = %v, want >= 1", row.FCPMaxStretch)
	}
	if row.RTRMaxCalcs != 1 {
		t.Errorf("RTR max SP calcs = %d, want 1", row.RTRMaxCalcs)
	}
	if row.FCPMaxCalcs <= 1 {
		t.Errorf("FCP max SP calcs = %d, want > 1", row.FCPMaxCalcs)
	}
}

func TestFig7Shape(t *testing.T) {
	d := smallDataset(t, "AS1239")
	cdf := d.Fig7()
	if cdf.N() == 0 {
		t.Fatal("no duration samples")
	}
	if cdf.Min() < 1.8-1e-9 {
		t.Errorf("minimum duration %.1f ms below one hop", cdf.Min())
	}
	// Durations are multiples of 1.8 ms.
	if q := cdf.Quantile(0.5); q <= 0 {
		t.Errorf("median duration = %v", q)
	}
}

func TestFig8Shape(t *testing.T) {
	d := smallDataset(t, "AS1239")
	rtr, fcp := d.Fig8()
	if rtr.N() == 0 || fcp.N() == 0 {
		t.Fatal("empty stretch CDFs")
	}
	if rtr.Max() != 1 {
		t.Errorf("RTR stretch max = %v, want 1", rtr.Max())
	}
	if fcp.Max() <= 1 {
		t.Errorf("FCP stretch max = %v, want > 1", fcp.Max())
	}
	// FCP achieves stretch 1 in most but not all cases.
	if at1 := fcp.At(1); at1 >= 1 || at1 < 0.5 {
		t.Errorf("FCP fraction at stretch 1 = %v, want in [0.5, 1)", at1)
	}
}

func TestFig9Shape(t *testing.T) {
	d := smallDataset(t, "AS1239")
	rtr, fcp := d.Fig9()
	if rtr.Max() != 1 {
		t.Errorf("RTR SP calcs max = %v, want 1", rtr.Max())
	}
	if fcp.Max() <= 1 {
		t.Errorf("FCP SP calcs max = %v, want > 1", fcp.Max())
	}
	if fcp.Mean() <= rtr.Mean() {
		t.Errorf("FCP mean calcs (%v) must exceed RTR (%v)", fcp.Mean(), rtr.Mean())
	}
}

func TestFig10Shape(t *testing.T) {
	d := smallDataset(t, "AS1239")
	pts := d.Fig10(time.Second, 10*time.Millisecond)
	if len(pts) == 0 {
		t.Fatal("no time points")
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.T != 0 || last.T < 900*time.Millisecond {
		t.Errorf("time range wrong: %v .. %v", first.T, last.T)
	}
	// Paper shape: RTR's overhead peaks during phase 1 (within the
	// first ~150 ms), then decays to a steady state below FCP's.
	peak, peakT := 0.0, time.Duration(0)
	for _, p := range pts {
		if p.RTRBytes > peak {
			peak, peakT = p.RTRBytes, p.T
		}
	}
	if peakT > 150*time.Millisecond {
		t.Errorf("RTR peak at %v, want within phase 1 (~150 ms)", peakT)
	}
	if last.RTRBytes >= peak {
		t.Errorf("RTR bytes must decay from the phase-1 peak: peak %v, steady %v", peak, last.RTRBytes)
	}
	if last.RTRBytes >= last.FCPBytes {
		t.Errorf("steady-state RTR bytes (%v) must be below FCP (%v)", last.RTRBytes, last.FCPBytes)
	}
}

func TestFig11Shape(t *testing.T) {
	w, err := NewWorld("AS1239", 3)
	if err != nil {
		t.Fatal(err)
	}
	pts := Fig11(w, 7, []float64{20, 160, 300}, 60)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Even tiny areas strand >20%% of failed paths; big areas more
	// (the paper's Fig. 11 headline).
	if pts[0].Percent < 5 {
		t.Errorf("radius 20: %.1f%% irrecoverable, expected a substantial fraction", pts[0].Percent)
	}
	if pts[2].Percent <= pts[0].Percent {
		t.Errorf("irrecoverable %% must grow with radius: %v", pts)
	}
	if pts[2].Percent < 40 {
		t.Errorf("radius 300: %.1f%%, expected >= 40%%", pts[2].Percent)
	}
}

func TestFig12Table4Shape(t *testing.T) {
	d := smallDataset(t, "AS1239")
	rtr, fcp := d.Fig12()
	if rtr.Max() != 1 {
		t.Errorf("RTR wasted computation must be exactly 1, max = %v", rtr.Max())
	}
	if fcp.Mean() <= 1 {
		t.Errorf("FCP wasted computation mean = %v, want > 1", fcp.Mean())
	}
	row := d.Table4()
	if row.RTRAvgComp != 1 || row.RTRMaxComp != 1 {
		t.Errorf("Table IV RTR computation = %v/%v, want 1/1", row.RTRAvgComp, row.RTRMaxComp)
	}
	if row.FCPAvgComp <= row.RTRAvgComp {
		t.Errorf("FCP avg wasted computation (%v) must exceed RTR (%v)", row.FCPAvgComp, row.RTRAvgComp)
	}
	if row.FCPAvgTrans <= row.RTRAvgTrans {
		t.Errorf("FCP avg wasted transmission (%v) must exceed RTR (%v)", row.FCPAvgTrans, row.RTRAvgTrans)
	}
}

func TestFig13Shape(t *testing.T) {
	d := smallDataset(t, "AS1239")
	rtr, fcp := d.Fig13()
	if rtr.N() == 0 || fcp.N() == 0 {
		t.Fatal("empty wasted-transmission CDFs")
	}
	// RTR identifies many irrecoverable destinations immediately
	// (wasted transmission 0); FCP always wanders first.
	if rtr.At(0) <= fcp.At(0) {
		t.Errorf("RTR mass at zero (%v) must exceed FCP's (%v)", rtr.At(0), fcp.At(0))
	}
	if fcp.Mean() <= rtr.Mean() {
		t.Errorf("FCP mean wasted transmission (%v) must exceed RTR (%v)", fcp.Mean(), rtr.Mean())
	}
}

func TestCountFailedPathsConsistency(t *testing.T) {
	w, err := NewWorldFrom(topology.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	sc := failure.NewScenario(w.Topo, topology.PaperFailureArea())
	failed, irr := CountFailedPaths(w, sc)
	if failed == 0 {
		t.Fatal("the fixture failure breaks paths")
	}
	if irr > failed {
		t.Fatal("irrecoverable cannot exceed failed")
	}
	// Only v10 is dead and nothing is partitioned, so irrecoverable
	// paths are exactly the failed paths toward v10 from live sources:
	// 17 sources.
	if irr != 17 {
		t.Errorf("irrecoverable paths = %d, want 17 (all live sources toward v10)", irr)
	}
}

func TestBytesAt(t *testing.T) {
	d := smallDataset(t, "AS1239")
	for _, r := range d.Rec[:10] {
		if r.RTR.NoLiveNeighbor {
			continue
		}
		// At t=0 the packet is on its first phase-1 hop.
		if len(r.RTR.Phase1Bytes) > 0 {
			want := r.RTR.Phase1Bytes[0]
			if got := RecordBytesAt(r.RTR.Phase1Bytes, r.RTR.RouteBytes, 0); got != want {
				t.Errorf("RecordBytesAt(0) = %d, want %d", got, want)
			}
		}
		// Far beyond the walk: steady state.
		if got := RecordBytesAt(r.RTR.Phase1Bytes, r.RTR.RouteBytes, time.Hour); got != r.RTR.RouteBytes {
			t.Errorf("steady RecordBytesAt = %d, want %d", got, r.RTR.RouteBytes)
		}
	}
	if RecordBytesAt(d.Rec[0].RTR.Phase1Bytes, 5, -time.Second) != 0 {
		t.Error("negative time must be 0 bytes")
	}
}

// TestBytesAtAgreesWithRecordBytesAt pins the walk-based and
// record-based overhead samplers to each other on live outcomes.
func TestBytesAtAgreesWithRecordBytesAt(t *testing.T) {
	w, err := NewWorld("AS1239", 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	cases := CollectCases(w, rng, 40, true)
	outs := RunAll(w, cases)
	for i := range outs {
		o := &outs[i]
		rec := o.Record()
		for _, at := range []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond, time.Hour} {
			walkGot := BytesAt(o.RTR.Phase1, o.RTR.RouteBytes, at)
			recGot := RecordBytesAt(rec.RTR.Phase1Bytes, rec.RTR.RouteBytes, at)
			if walkGot != recGot {
				t.Fatalf("case %d at %v: BytesAt = %d, RecordBytesAt = %d", i, at, walkGot, recGot)
			}
		}
	}
}

func TestDefaultRadii(t *testing.T) {
	r := DefaultRadii()
	if len(r) != 15 || r[0] != 20 || r[len(r)-1] != 300 {
		t.Errorf("radii = %v", r)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Recoverable != 10000 || cfg.Irrecoverable != 10000 {
		t.Errorf("default config = %+v, want the paper's 10k/10k", cfg)
	}
}

func TestOutcomesHaveNoErrors(t *testing.T) {
	d := smallDataset(t, "AS1239")
	for _, set := range [][]CaseRecord{d.Rec, d.Irr} {
		for _, r := range set {
			if r.Err != "" {
				t.Fatalf("outcome error: %v", r.Err)
			}
		}
	}
}
