package sim

import (
	"math/rand"
	"time"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/igp"
	"repro/internal/spt"
)

// LossConfig parameterizes the convergence packet-loss experiment —
// the quantitative version of the paper's introduction ("disconnection
// of an OC-192 link for 10 seconds leads to about 12 million packets
// being dropped").
type LossConfig struct {
	// Scenarios is the number of random failure areas to average over.
	Scenarios int
	// PacketsPerSecond is the traffic rate of each routing path.
	// The paper's OC-192 example is 1.25M packets/s for 1000-byte
	// packets; per-path rates are much lower; the default 10,000 pkt/s
	// models an aggregate flow per source/destination pair.
	PacketsPerSecond float64
	Seed             int64
	Timers           igp.Timers
}

// DefaultLossConfig uses classic (slow) IGP timers.
func DefaultLossConfig() LossConfig {
	return LossConfig{
		Scenarios:        50,
		PacketsPerSecond: 10000,
		Seed:             1,
		Timers:           igp.ClassicTimers(),
	}
}

// LossResult aggregates convergence-window packet loss with and
// without RTR over the sampled failure scenarios.
type LossResult struct {
	AS        string
	Scenarios int
	// MeanConvergence is the average time until all reachable routers
	// converged.
	MeanConvergence time.Duration
	// FailedPaths counts failed routing paths with live sources
	// (recoverable + irrecoverable) across all scenarios.
	FailedPaths      int
	RecoverablePaths int
	// Offered is the total traffic offered on failed paths over their
	// convergence windows — the conserved quantity: in each column,
	// delivered + dropped must equal it exactly.
	Offered float64
	// DeliveredNoRecovery is the traffic delivered without recovery
	// (zero by construction: every failed path drops its whole window).
	DeliveredNoRecovery float64
	// DeliveredWithRTR is the traffic RTR delivers: recovered paths
	// deliver everything after the detection window.
	DeliveredWithRTR float64
	// DroppedNoRecovery is the packet loss without any recovery: every
	// failed path drops its traffic for the whole convergence window.
	DroppedNoRecovery float64
	// DroppedWithRTR keeps only the loss RTR cannot avoid:
	// irrecoverable paths (no scheme can deliver them), recoverable
	// paths whose recovery failed, and the brief detection window
	// before the initiator reacts.
	DroppedWithRTR float64
	// SavedPercent is the headline reduction.
	SavedPercent float64
}

// PacketLoss runs the convergence packet-loss experiment for one
// topology.
func PacketLoss(w *World, cfg LossConfig) LossResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := LossResult{AS: w.Topo.Name, Scenarios: cfg.Scenarios}
	var convSum time.Duration

	for s := 0; s < cfg.Scenarios; s++ {
		sc := failure.RandomScenario(w.Topo, rng)
		if !sc.HasFailures() {
			continue
		}
		conv := igp.Converge(sc, cfg.Timers)
		convSum += conv.Total
		window := conv.Total.Seconds()
		detect := cfg.Timers.Detection.Seconds()

		// Per-case RTR outcomes, shared by every failed path that
		// funnels into the same (initiator, destination).
		rec, irr := CasesFromScenario(w, sc)
		type key struct{ i, d graph.NodeID }
		outcome := make(map[key]Outcome, len(rec))
		for _, o := range RunAll(w, rec) {
			outcome[key{o.Case.Initiator, o.Case.Dst}] = o
		}

		count := func(cases []*Case, recoverable bool) {
			for _, c := range cases {
				// Weight each case by the number of failed paths that
				// use it: every live source whose converged path
				// toward c.Dst first blocks at c.Initiator. Counting
				// them exactly is the Fig. 11 enumeration; a uniform
				// weight of 1 per (initiator, destination) case keeps
				// this experiment cheap and unbiased across schemes.
				res.FailedPaths++
				res.Offered += cfg.PacketsPerSecond * window
				if !recoverable {
					// Nothing can deliver these packets; both columns
					// lose the full window.
					res.DroppedNoRecovery += cfg.PacketsPerSecond * window
					res.DroppedWithRTR += cfg.PacketsPerSecond * window
					continue
				}
				res.RecoverablePaths++
				res.DroppedNoRecovery += cfg.PacketsPerSecond * window
				o := outcome[key{c.Initiator, c.Dst}]
				if o.RTR.Recovered {
					// RTR holds packets during phase 1 (delayed, not
					// dropped); only the detection window is lost.
					res.DroppedWithRTR += cfg.PacketsPerSecond * detect
					res.DeliveredWithRTR += cfg.PacketsPerSecond * (window - detect)
				} else {
					res.DroppedWithRTR += cfg.PacketsPerSecond * window
				}
			}
		}
		count(rec, true)
		count(irr, false)
	}

	if cfg.Scenarios > 0 {
		res.MeanConvergence = convSum / time.Duration(cfg.Scenarios)
	}
	if res.DroppedNoRecovery > 0 {
		res.SavedPercent = 100 * (1 - res.DroppedWithRTR/res.DroppedNoRecovery)
	}
	return res
}

// GoodputPoint samples the fraction of failed-path flows delivered at
// time t after the failure, with and without RTR.
type GoodputPoint struct {
	T          time.Duration
	NoRecovery float64
	WithRTR    float64
}

// GoodputSeries computes flow availability over time, averaged over
// random failure scenarios. Without recovery, a flow returns when
// every router on its post-failure path has converged; with RTR,
// recovered flows return as soon as the initiator detects the failure
// and finishes the collection walk, while unrecovered flows wait for
// convergence like everyone else. Irrecoverable flows never return in
// either column.
func GoodputSeries(w *World, cfg LossConfig, step time.Duration) []GoodputPoint {
	rng := rand.New(rand.NewSource(cfg.Seed))

	type flow struct {
		noRecAt time.Duration // when IGP convergence restores the flow
		rtrAt   time.Duration // when RTR restores it (or noRecAt)
		never   bool          // irrecoverable
	}
	var flows []flow
	var horizon time.Duration

	for s := 0; s < cfg.Scenarios; s++ {
		sc := failure.RandomScenario(w.Topo, rng)
		if !sc.HasFailures() {
			continue
		}
		conv := igp.Converge(sc, cfg.Timers)
		if conv.Total > horizon {
			horizon = conv.Total
		}
		rec, irr := CasesFromScenario(w, sc)
		outs := RunAll(w, rec)
		for _, o := range outs {
			if o.Err != nil {
				continue
			}
			f := flow{noRecAt: pathConvergence(w, conv, o)}
			if o.RTR.Recovered {
				f.rtrAt = cfg.Timers.Detection + o.RTR.Phase1.Duration()
				if f.rtrAt > f.noRecAt {
					f.rtrAt = f.noRecAt // IGP got there first
				}
			} else {
				f.rtrAt = f.noRecAt
			}
			flows = append(flows, f)
		}
		for range irr {
			flows = append(flows, flow{never: true})
		}
	}
	if len(flows) == 0 {
		return nil
	}

	var out []GoodputPoint
	for t := time.Duration(0); t <= horizon+step; t += step {
		var noRec, rtr int
		for _, f := range flows {
			if f.never {
				continue
			}
			if t >= f.noRecAt {
				noRec++
			}
			if t >= f.rtrAt {
				rtr++
			}
		}
		out = append(out, GoodputPoint{
			T:          t,
			NoRecovery: float64(noRec) / float64(len(flows)),
			WithRTR:    float64(rtr) / float64(len(flows)),
		})
	}
	return out
}

// pathConvergence estimates when IGP convergence restores a flow: the
// latest convergence time among the routers on the post-failure
// shortest path from the initiator to the destination. The outcome's
// shared truth tree (computed once per scenario and initiator by
// RunAll) replaces what used to be a redundant full Dijkstra per flow.
func pathConvergence(w *World, conv *igp.Convergence, o Outcome) time.Duration {
	c := o.Case
	tree := o.Truth
	if tree == nil {
		tree = spt.Recompute(w.Topo.G, w.RTR.CleanTree(c.Initiator), graph.Nothing, c.Scenario)
	}
	nodes, ok := tree.PathNodes(c.Dst)
	if !ok {
		return conv.Total
	}
	var latest time.Duration
	for _, v := range nodes {
		if conv.RouterTime[v] > latest {
			latest = conv.RouterTime[v]
		}
	}
	if latest == 0 {
		latest = conv.Total
	}
	return latest
}
