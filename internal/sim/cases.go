package sim

import (
	"math/rand"
	"slices"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
)

// Case is one deduplicated test case, exactly as the paper defines it:
// "a test case is determined by three factors, i.e., the recovery
// initiator, the destination, and the failure area." Failed routing
// paths sharing the same initiator and destination under the same area
// collapse into one case.
type Case struct {
	Scenario *failure.Scenario
	LV       *routing.LocalView
	// Initiator is the live router whose default next hop toward Dst
	// is unreachable.
	Initiator graph.NodeID
	Dst       graph.NodeID
	// NextHop and Trigger are the initiator's (failed) default next
	// hop toward Dst and the link to it.
	NextHop graph.NodeID
	Trigger graph.LinkID
	// Recoverable reports whether Dst is live and reachable from the
	// initiator in the post-failure topology (ground truth; the
	// protocols never see it).
	Recoverable bool
}

// CasesFromScenario enumerates every deduplicated test case of one
// failure scenario: all (initiator, destination) pairs where the live
// initiator's converged next hop toward the destination is
// unreachable. Every such pair corresponds to at least one failed
// routing path with a live source (the initiator itself qualifies).
func CasesFromScenario(w *World, sc *failure.Scenario) (recoverable, irrecoverable []*Case) {
	lv := routing.NewLocalView(w.Topo, sc)
	n := w.Topo.G.NumNodes()
	// reach[dst] is computed lazily: ground truth reachability from
	// the initiator equals component membership, so compute per
	// initiator instead. Components give both directions at once.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for ci, c := range w.Topo.G.Components(sc) {
		for _, v := range c {
			comp[v] = ci
		}
	}

	for i := 0; i < n; i++ {
		initiator := graph.NodeID(i)
		if sc.NodeDown(initiator) {
			continue
		}
		for d := 0; d < n; d++ {
			dst := graph.NodeID(d)
			if dst == initiator {
				continue
			}
			nh, link, ok := w.Tables.NextHop(initiator, dst)
			if !ok || !lv.NeighborUnreachable(initiator, link) {
				continue
			}
			c := &Case{
				Scenario:  sc,
				LV:        lv,
				Initiator: initiator,
				Dst:       dst,
				NextHop:   nh,
				Trigger:   link,
				Recoverable: !sc.NodeDown(dst) &&
					comp[initiator] >= 0 && comp[initiator] == comp[dst],
			}
			if c.Recoverable {
				recoverable = append(recoverable, c)
			} else {
				irrecoverable = append(irrecoverable, c)
			}
		}
	}
	return recoverable, irrecoverable
}

// ScaleCasesFromScenario is the scale-mode case enumerator. The full
// enumerator scans all n^2 (initiator, destination) pairs — hopeless
// at 10^5 nodes, where it would also materialize every destination's
// reverse tree. This one exploits that a qualifying initiator is, by
// definition, adjacent to a failed element (its trigger link is failed
// or leads to a failed node), so candidate initiators come straight
// from the failure's adjacency — that set is exact, not a heuristic.
// Destinations are the sampled part: dstSample of them drawn uniformly
// from all nodes via rng (every node when dstSample <= 0 or >= n),
// which bounds both the pair scan and the number of reverse trees a
// lazy table world materializes.
//
// Initiators and sampled destinations are visited in ascending ID
// order, so with a full destination sample the output is identical to
// CasesFromScenario — the equivalence test asserts it.
func ScaleCasesFromScenario(w *World, sc *failure.Scenario, rng *rand.Rand, dstSample int) (recoverable, irrecoverable []*Case) {
	lv := routing.NewLocalView(w.Topo, sc)
	n := w.Topo.G.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for ci, c := range w.Topo.G.Components(sc) {
		for _, v := range c {
			comp[v] = ci
		}
	}
	initiators := candidateInitiators(w, sc)
	dsts := sampleDsts(n, dstSample, rng)
	for _, initiator := range initiators {
		for _, dst := range dsts {
			if dst == initiator {
				continue
			}
			nh, link, ok := w.Tables.NextHop(initiator, dst)
			if !ok || !lv.NeighborUnreachable(initiator, link) {
				continue
			}
			c := &Case{
				Scenario:  sc,
				LV:        lv,
				Initiator: initiator,
				Dst:       dst,
				NextHop:   nh,
				Trigger:   link,
				Recoverable: !sc.NodeDown(dst) &&
					comp[initiator] >= 0 && comp[initiator] == comp[dst],
			}
			if c.Recoverable {
				recoverable = append(recoverable, c)
			} else {
				irrecoverable = append(irrecoverable, c)
			}
		}
	}
	return recoverable, irrecoverable
}

// candidateInitiators returns, in ascending order, every live node
// adjacent to a failed element of sc — the exact set of nodes whose
// converged next hop toward some destination can be unreachable
// (NeighborUnreachable holds only for a failed incident link or a
// failed direct neighbor).
func candidateInitiators(w *World, sc *failure.Scenario) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	add := func(v graph.NodeID) {
		if !sc.NodeDown(v) {
			seen[v] = true
		}
	}
	for _, id := range sc.FailedLinks() {
		l := w.Topo.G.Link(id)
		add(l.A)
		add(l.B)
	}
	for _, v := range sc.FailedNodes() {
		for _, h := range w.Topo.G.Adj(v) {
			add(h.Neighbor)
		}
	}
	out := make([]graph.NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// sampleDsts draws `want` distinct destinations uniformly from [0, n)
// and returns them ascending; want <= 0 or >= n returns every node.
// The draw sequence is a pure function of the rng stream, so sampled
// sweeps stay deterministic per shard.
func sampleDsts(n, want int, rng *rand.Rand) []graph.NodeID {
	if want <= 0 || want >= n {
		all := make([]graph.NodeID, n)
		for i := range all {
			all[i] = graph.NodeID(i)
		}
		return all
	}
	seen := make(map[graph.NodeID]bool, want)
	out := make([]graph.NodeID, 0, want)
	for len(out) < want {
		v := graph.NodeID(rng.Intn(n))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

// CollectBothSampledG is CollectBothG through the scale-mode
// enumerator: candidate initiators from failure adjacency, dstSample
// sampled destinations per scenario.
func CollectBothSampledG(w *World, g failure.Generator, rng *rand.Rand, wantRec, wantIrr, dstSample int) (rec, irr []*Case) {
	for draws := 0; (len(rec) < wantRec || len(irr) < wantIrr) && draws < MaxCollectDraws; draws++ {
		sc := g.Generate(w.Topo, rng)
		r, i := ScaleCasesFromScenario(w, sc, rng, dstSample)
		if len(rec) < wantRec {
			rec = append(rec, r...)
		}
		if len(irr) < wantIrr {
			irr = append(irr, i...)
		}
	}
	if len(rec) > wantRec {
		rec = rec[:wantRec]
	}
	if len(irr) > wantIrr {
		irr = irr[:wantIrr]
	}
	return rec, irr
}

// MaxCollectDraws bounds how many random failure areas one collection
// call may draw. On every Table II topology a single scenario yields
// many cases, so legitimate workloads stay orders of magnitude below
// the cap; it exists so a workload that cannot be satisfied (e.g. a
// topology where no area ever produces an irrecoverable case) exhausts
// deterministically instead of spinning forever. An exhausted call
// returns the cases found so far, short of the target.
const MaxCollectDraws = 100000

// CollectCases draws random failure areas (radius uniform in the
// paper's [100, 300]) until `want` cases of the requested kind have
// accumulated, and returns exactly that many — or fewer, if
// MaxCollectDraws scenarios could not produce enough.
func CollectCases(w *World, rng *rand.Rand, want int, recoverable bool) []*Case {
	return CollectCasesG(w, failure.Default(), rng, want, recoverable)
}

// CollectCasesG is CollectCases under an arbitrary failure generator.
// For scheduled generators (cascades, transients) the cases are drawn
// from the peak scenario.
func CollectCasesG(w *World, g failure.Generator, rng *rand.Rand, want int, recoverable bool) []*Case {
	var out []*Case
	for draws := 0; len(out) < want && draws < MaxCollectDraws; draws++ {
		sc := g.Generate(w.Topo, rng)
		rec, irr := CasesFromScenario(w, sc)
		if recoverable {
			out = append(out, rec...)
		} else {
			out = append(out, irr...)
		}
	}
	if len(out) > want {
		out = out[:want]
	}
	return out
}

// CollectBoth draws random failure areas until both kinds have reached
// their targets; cases beyond a kind's target are discarded. Like
// CollectCases it gives up after MaxCollectDraws scenarios and returns
// whatever accumulated.
func CollectBoth(w *World, rng *rand.Rand, wantRec, wantIrr int) (rec, irr []*Case) {
	return CollectBothG(w, failure.Default(), rng, wantRec, wantIrr)
}

// CollectBothG is CollectBoth under an arbitrary failure generator.
func CollectBothG(w *World, g failure.Generator, rng *rand.Rand, wantRec, wantIrr int) (rec, irr []*Case) {
	for draws := 0; (len(rec) < wantRec || len(irr) < wantIrr) && draws < MaxCollectDraws; draws++ {
		sc := g.Generate(w.Topo, rng)
		r, i := CasesFromScenario(w, sc)
		if len(rec) < wantRec {
			rec = append(rec, r...)
		}
		if len(irr) < wantIrr {
			irr = append(irr, i...)
		}
	}
	if len(rec) > wantRec {
		rec = rec[:wantRec]
	}
	if len(irr) > wantIrr {
		irr = irr[:wantIrr]
	}
	return rec, irr
}

// CountFailedPaths counts, for one scenario, the failed routing paths
// with a live source (ordered source/destination pairs whose converged
// path contains a failure) and how many of them are irrecoverable
// (destination failed or in a different partition than the source).
// This is the paper's Fig. 11 metric, which counts paths rather than
// deduplicated cases.
func CountFailedPaths(w *World, sc *failure.Scenario) (failed, irrecoverable int) {
	n := w.Topo.G.NumNodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for ci, c := range w.Topo.G.Components(sc) {
		for _, v := range c {
			comp[v] = ci
		}
	}
	for s := 0; s < n; s++ {
		src := graph.NodeID(s)
		if sc.NodeDown(src) {
			continue
		}
		for d := 0; d < n; d++ {
			dst := graph.NodeID(d)
			if dst == src {
				continue
			}
			bad, err := w.Tables.PathFails(src, dst, sc)
			if err != nil || !bad {
				continue
			}
			failed++
			if sc.NodeDown(dst) || comp[src] != comp[dst] {
				irrecoverable++
			}
		}
	}
	return failed, irrecoverable
}
