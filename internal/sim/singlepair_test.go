package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
)

// TestNewSinglePairFromMatchesEnumeration proves the frozen-case
// constructor reproduces CasesFromScenario's classification exactly:
// for every enumerated case of a scenario, freezing its (instance,
// src, dst) triple yields a field-identical Case, and the per-protocol
// outcomes match the enumeration-built case's outcomes bit for bit.
func TestNewSinglePairFromMatchesEnumeration(t *testing.T) {
	w, err := NewWorld("AS1239", 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for draws := 0; checked < 40 && draws < MaxCollectDraws; draws++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, irr := CasesFromScenario(w, sc)
		for _, c := range append(rec, irr...) {
			if checked >= 40 {
				break
			}
			p, err := NewSinglePairFrom(w, c.Scenario, c.Initiator, c.Dst)
			if err != nil {
				t.Fatalf("freezing enumerated case (%d -> %d): %v", c.Initiator, c.Dst, err)
			}
			if p.C.Initiator != c.Initiator || p.C.Dst != c.Dst || p.C.NextHop != c.NextHop ||
				p.C.Trigger != c.Trigger || p.C.Recoverable != c.Recoverable || p.C.Scenario != c.Scenario {
				t.Fatalf("frozen case differs from enumerated case:\n got %+v\nwant %+v", p.C, c)
			}
			gotR, err1 := p.RTR()
			wantR, err2 := RunRTR(w, c, nil)
			if err1 != nil || err2 != nil {
				t.Fatalf("RTR errors: %v / %v", err1, err2)
			}
			if !reflect.DeepEqual(gotR, wantR) {
				t.Fatalf("RTR outcome differs:\n got %+v\nwant %+v", gotR, wantR)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no cases checked")
	}
}

// TestNewSinglePairFromRejects pins the constructor's fail-fast
// contract for triples that are not recovery cases.
func TestNewSinglePairFromRejects(t *testing.T) {
	w, err := NewWorld("AS1239", 3)
	if err != nil {
		t.Fatal(err)
	}
	n := w.Topo.G.NumNodes()
	empty, err := failure.ParseInstance(w.Topo, "none")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSinglePairFrom(w, empty, 0, graph.NodeID(n)); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := NewSinglePairFrom(w, empty, 3, 3); err == nil {
		t.Error("src == dst accepted")
	}
	// No failure at all: the next hop is reachable, so no case exists.
	if _, err := NewSinglePairFrom(w, empty, 0, 1); err == nil {
		t.Error("unaffected next hop accepted")
	}
	// A failed initiator must be rejected.
	rng := rand.New(rand.NewSource(9))
	for {
		sc := failure.RandomScenario(w.Topo, rng)
		down := sc.FailedNodes()
		if len(down) == 0 {
			continue
		}
		var alive graph.NodeID
		for v := 0; v < n; v++ {
			if !sc.NodeDown(graph.NodeID(v)) && graph.NodeID(v) != down[0] {
				alive = graph.NodeID(v)
				break
			}
		}
		if _, err := NewSinglePairFrom(w, sc, down[0], alive); err == nil {
			t.Error("failed initiator accepted")
		}
		break
	}
}
