package sim

import (
	"testing"
	"time"

	"repro/internal/igp"
)

func TestPacketLossShape(t *testing.T) {
	w, err := NewWorld("AS1239", 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LossConfig{
		Scenarios:        20,
		PacketsPerSecond: 10000,
		Seed:             7,
		Timers:           igp.ClassicTimers(),
	}
	res := PacketLoss(w, cfg)

	if res.FailedPaths == 0 || res.RecoverablePaths == 0 {
		t.Fatalf("no failed paths observed: %+v", res)
	}
	if res.MeanConvergence < 5*time.Second {
		t.Errorf("classic convergence %v implausibly fast", res.MeanConvergence)
	}
	if res.DroppedWithRTR >= res.DroppedNoRecovery {
		t.Errorf("RTR must reduce loss: %v vs %v", res.DroppedWithRTR, res.DroppedNoRecovery)
	}
	if res.SavedPercent <= 0 || res.SavedPercent >= 100 {
		t.Errorf("saved percent = %v, want in (0,100)", res.SavedPercent)
	}
	// On recoverable paths RTR loses only the detection window, so the
	// saving on those is (window-detect)/window, diluted by
	// irrecoverable paths. With classic timers (1 s detect, >6 s
	// window) the overall saving should be substantial.
	if res.SavedPercent < 20 {
		t.Errorf("saved percent = %.1f, expected a substantial reduction", res.SavedPercent)
	}
	t.Logf("convergence %v, failed paths %d (%d recoverable), saved %.1f%%",
		res.MeanConvergence, res.FailedPaths, res.RecoverablePaths, res.SavedPercent)
}

func TestPacketLossTunedSavesLess(t *testing.T) {
	// With sub-second convergence the window shrinks toward the
	// detection time, so RTR's relative saving drops — exactly the
	// paper's argument for why tuning alone is insufficient yet risky.
	w, err := NewWorld("AS1239", 11)
	if err != nil {
		t.Fatal(err)
	}
	classic := PacketLoss(w, LossConfig{Scenarios: 15, PacketsPerSecond: 1000, Seed: 7, Timers: igp.ClassicTimers()})
	tuned := PacketLoss(w, LossConfig{Scenarios: 15, PacketsPerSecond: 1000, Seed: 7, Timers: igp.TunedTimers()})
	if tuned.SavedPercent >= classic.SavedPercent {
		t.Errorf("tuned saving (%.1f%%) should be below classic (%.1f%%)",
			tuned.SavedPercent, classic.SavedPercent)
	}
	if tuned.MeanConvergence >= classic.MeanConvergence {
		t.Error("tuned timers must converge faster")
	}
}

func TestDefaultLossConfig(t *testing.T) {
	cfg := DefaultLossConfig()
	if cfg.Scenarios <= 0 || cfg.PacketsPerSecond <= 0 {
		t.Errorf("bad defaults: %+v", cfg)
	}
	if cfg.Timers.Detection == 0 {
		t.Error("default timers must be set")
	}
}

func TestGoodputSeriesShape(t *testing.T) {
	w, err := NewWorld("AS1239", 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LossConfig{Scenarios: 10, PacketsPerSecond: 1000, Seed: 7, Timers: igp.ClassicTimers()}
	pts := GoodputSeries(w, cfg, 200*time.Millisecond)
	if len(pts) < 5 {
		t.Fatalf("series too short: %d points", len(pts))
	}
	// Both series are monotone non-decreasing; RTR dominates
	// no-recovery at every instant; both end equal (IGP eventually
	// restores everything restorable).
	for i, p := range pts {
		if p.WithRTR < p.NoRecovery-1e-12 {
			t.Fatalf("t=%v: RTR goodput %.3f below no-recovery %.3f", p.T, p.WithRTR, p.NoRecovery)
		}
		if i > 0 {
			if p.WithRTR < pts[i-1].WithRTR || p.NoRecovery < pts[i-1].NoRecovery {
				t.Fatalf("goodput must be monotone: %+v -> %+v", pts[i-1], p)
			}
		}
	}
	last := pts[len(pts)-1]
	if last.WithRTR != last.NoRecovery {
		t.Errorf("series must converge: %.3f vs %.3f", last.WithRTR, last.NoRecovery)
	}
	if last.NoRecovery <= 0 || last.NoRecovery > 1 {
		t.Errorf("final availability %.3f out of range", last.NoRecovery)
	}
	// Early on, RTR must be strictly ahead (it restores flows right
	// after detection, long before classic convergence).
	early := pts[len(pts)/3]
	if early.WithRTR <= early.NoRecovery {
		t.Errorf("RTR should lead during convergence: t=%v rtr=%.3f norec=%.3f",
			early.T, early.WithRTR, early.NoRecovery)
	}
	t.Logf("at %v: no-recovery %.1f%%, with RTR %.1f%%; final %.1f%%",
		early.T, 100*early.NoRecovery, 100*early.WithRTR, 100*last.NoRecovery)
}

func TestGoodputSeriesEmptyWorldOK(t *testing.T) {
	w, err := NewWorld("AS1239", 11)
	if err != nil {
		t.Fatal(err)
	}
	pts := GoodputSeries(w, LossConfig{Scenarios: 0, Timers: igp.TunedTimers(), Seed: 1}, time.Second)
	if pts != nil {
		t.Errorf("no scenarios must yield nil series, got %d points", len(pts))
	}
}
