package sim

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/spt"
)

// RTRResult is RTR's metric record for one test case.
type RTRResult struct {
	// Recovered reports end-to-end delivery over the recovery path.
	Recovered bool
	// Optimal reports delivery over the exact post-failure shortest
	// path; by Theorem 2 it equals Recovered.
	Optimal bool
	// Stretch is recovery-path hops divided by the true post-failure
	// shortest hops (1 when recovered; 0 when not applicable).
	Stretch float64
	// SPCalcs is the number of shortest-path calculations (the paper's
	// computational-overhead metric; always 1 for RTR).
	SPCalcs int
	// Phase1 is the collection walk; Phase2 the source-routed packet
	// trajectory (empty when the destination was identified as
	// unreachable).
	Phase1, Phase2 routing.Walk
	// RouteBytes is the phase-2 source-route recording size.
	RouteBytes int
	// IdentifiedUnreachable reports that the initiator's pruned view
	// had no path to the destination, so packets were discarded
	// immediately (the paper's early-discard behavior).
	IdentifiedUnreachable bool
	// WastedHops counts the hops a phase-2 packet traveled before
	// being discarded (0 when delivered or identified unreachable).
	WastedHops int
	// NoLiveNeighbor marks a fully cut-off initiator: recovery is
	// impossible and nothing was spent.
	NoLiveNeighbor bool
}

// truthSource lazily supplies the ground-truth post-failure tree for
// one case. The runners only invoke it when a delivered packet needs
// grading, so cases that never deliver (or error out) never pay for a
// truth tree at all. A source may return nil; the grader then computes
// the needed cost on the spot into pooled scratch.
type truthSource func() *spt.Tree

// staticTruth adapts the exported runners' explicit tree parameter
// (possibly nil) to a truthSource.
func staticTruth(t *spt.Tree) truthSource { return func() *spt.Tree { return t } }

// RunRTR executes RTR on one case. truth is the shared ground-truth
// post-failure tree rooted at the case's initiator (nil to compute it
// on demand); RunAll computes it once per (scenario, initiator) pair
// and shares it across all three protocol runners.
func RunRTR(w *World, c *Case, truth *spt.Tree) (RTRResult, error) {
	return runRTR(w, c, staticTruth(truth))
}

// runRTR is the per-case RTR runner: it opens a fresh session and runs
// its own collection. Batched execution instead shares one session per
// (scenario, initiator, trigger) group and calls finishRTR directly.
func runRTR(w *World, c *Case, truth truthSource) (RTRResult, error) {
	var res RTRResult
	sess, err := w.RTR.NewSession(c.LV, c.Initiator)
	if err != nil {
		return res, err
	}
	col, err := sess.Collect(c.Trigger)
	if errors.Is(err, core.ErrNoLiveNeighbor) {
		res.NoLiveNeighbor = true
		return res, nil
	}
	if err != nil {
		return res, err
	}
	var rt core.Route
	finishRTR(&res, w, c, sess, col, &rt, truth)
	return res, nil
}

// finishRTR runs the per-destination tail of RTR — recovery path
// extraction from the session's single pruned-view SPT, phase-2
// source-routed forwarding, and grading — on an already-collected
// session. rt is a reusable route buffer: batched groups pass one
// Route across all their destinations.
func finishRTR(res *RTRResult, w *World, c *Case, sess *core.Session, col *core.CollectResult, rt *core.Route, truth truthSource) {
	res.Phase1 = col.Walk
	ok := sess.RecoveryPathInto(rt, c.Dst)
	res.SPCalcs = sess.SPCalcs()
	if !ok {
		res.IdentifiedUnreachable = true
		return
	}
	res.RouteBytes = 2 * len(rt.Nodes)
	fwd := sess.ForwardSourceRouted(*rt)
	res.Phase2 = fwd.Walk
	if !fwd.Delivered {
		res.WastedHops = fwd.Walk.Hops()
		return
	}
	res.Recovered = true
	opt, reachable := truthCost(w, c, truth)
	if reachable && costEqual(rt.Cost, opt) {
		res.Optimal = true
		res.Stretch = 1
	} else if reachable && opt > 0 {
		res.Stretch = rt.Cost / opt
	}
}

// RunRTRSession runs the per-destination tail of RTR — recovery path,
// phase-2 forwarding, grading — on a session whose collection already
// happened (col is its result). The serving layer memoizes one
// prepared session per (converged entry, initiator, trigger) and
// shares it across queries; rt is the caller's route buffer — one per
// query keeps a prepared session read-only and therefore share-safe.
// truth may be nil (cost computed into pooled scratch).
func RunRTRSession(w *World, c *Case, sess *core.Session, col *core.CollectResult, rt *core.Route, truth *spt.Tree) RTRResult {
	var res RTRResult
	finishRTR(&res, w, c, sess, col, rt, staticTruth(truth))
	return res
}

// costEqual compares path costs with a relative tolerance: two trees
// can pick different equal-cost shortest paths whose float sums differ
// only in summation order.
func costEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > scale {
		scale = b
	}
	return d <= 1e-9*(1+scale)
}

// FCPResult is FCP's metric record for one test case.
type FCPResult struct {
	Delivered bool
	Optimal   bool
	// Stretch is the delivered trajectory's hops divided by the true
	// post-failure shortest hops.
	Stretch float64
	SPCalcs int
	Walk    routing.Walk
	// FinalBytes is the recording size of the final header (carried
	// failures plus the last source route).
	FinalBytes int
	// WastedHops counts the hops traveled before the packet was
	// discarded (irrecoverable cases).
	WastedHops int
}

// RunFCP executes FCP on one case. See RunRTR for the truth parameter.
func RunFCP(w *World, c *Case, truth *spt.Tree) (FCPResult, error) {
	return runFCP(w, c, staticTruth(truth))
}

func runFCP(w *World, c *Case, truth truthSource) (FCPResult, error) {
	var res FCPResult
	r, err := w.FCP.Recover(c.LV, c.Initiator, c.Dst)
	if err != nil {
		return res, err
	}
	res.SPCalcs = r.SPCalcs
	res.Walk = r.Walk
	res.FinalBytes = r.Header.RecordingBytes()
	if !r.Delivered {
		res.WastedHops = r.Walk.Hops()
		return res, nil
	}
	res.Delivered = true
	opt, reachable := truthCost(w, c, truth)
	cost := walkCost(w, r.Walk)
	if reachable && opt > 0 {
		res.Stretch = cost / opt
		res.Optimal = costEqual(cost, opt)
		if res.Optimal {
			res.Stretch = 1
		}
	} else if reachable && opt == 0 {
		res.Stretch = 1
		res.Optimal = true
	}
	return res, nil
}

// MRCResult is MRC's metric record for one test case.
type MRCResult struct {
	Delivered bool
	Optimal   bool
	Stretch   float64
	// Walk is the packet trajectory under the backup configurations
	// (including dropped trajectories). Load accounting charges per-link
	// utilization from it; the serialized CaseRecord projection ignores
	// it.
	Walk routing.Walk
	// Skipped marks a case run on a world without an MRC engine
	// (scale mode); the other fields are then meaningless zeros.
	Skipped bool
}

// RunMRC executes MRC on one case. See RunRTR for the truth parameter.
func RunMRC(w *World, c *Case, truth *spt.Tree) (MRCResult, error) {
	return runMRC(w, c, staticTruth(truth))
}

func runMRC(w *World, c *Case, truth truthSource) (MRCResult, error) {
	var res MRCResult
	if w.MRC == nil {
		res.Skipped = true
		return res, nil
	}
	r, err := w.MRC.Recover(c.LV, c.Initiator, c.Dst, c.NextHop, c.Trigger)
	if err != nil {
		return res, err
	}
	res.Walk = r.Walk
	if !r.Delivered {
		return res, nil
	}
	res.Delivered = true
	opt, reachable := truthCost(w, c, truth)
	cost := walkCost(w, r.Walk)
	if reachable && opt > 0 {
		res.Stretch = cost / opt
		res.Optimal = costEqual(cost, opt)
		if res.Optimal {
			res.Stretch = 1
		}
	} else if reachable && opt == 0 {
		res.Stretch = 1
		res.Optimal = true
	}
	return res, nil
}

// walkCost sums the directional link costs along a packet trajectory
// (equals the hop count on hop-cost topologies).
func walkCost(w *World, walk routing.Walk) float64 {
	total := 0.0
	for _, rec := range walk.Records {
		total += w.Topo.G.Link(rec.Link).CostFrom(rec.From)
	}
	return total
}

// truthCost returns the ground-truth post-failure shortest path cost
// from the case's initiator to its destination, reading it from the
// source's shared truth tree when it supplies one. A nil tree makes
// the cost come from a computation into pooled workspace scratch.
func truthCost(w *World, c *Case, truth truthSource) (float64, bool) {
	if t := truth(); t != nil {
		return t.CostTo(c.Dst)
	}
	ws := spt.GetWorkspace()
	defer ws.Release()
	return ws.Compute(w.Topo.G, c.Initiator, c.Scenario).CostTo(c.Dst)
}

// Outcome bundles all three protocols' results on one case.
type Outcome struct {
	Case *Case
	RTR  RTRResult
	FCP  FCPResult
	MRC  MRCResult
	// Truth is the ground-truth post-failure shortest path tree rooted
	// at the case's initiator, shared by every case of the same
	// (scenario, initiator) pair and by all three protocol runners. It
	// is computed lazily: nil when no runner needed grading (nothing
	// was delivered, or the case errored). Consumers fall back to a
	// fresh incremental recompute from the initiator's clean tree.
	Truth *spt.Tree
	Err   error
}

// RunAll executes all protocols on every case, in parallel across
// CPUs, preserving case order in the result slice. Execution is
// batched by (scenario, initiator, trigger) group — see RunAllN.
func RunAll(w *World, cases []*Case) []Outcome {
	return RunAllN(w, cases, 0)
}

// BytesAt returns the header recording bytes in flight at time t for a
// packet whose trajectory is walk (1.8 ms per hop) and whose
// steady-state recording size after the trajectory completes is
// `steady` (the cached source route used by all subsequent packets).
func BytesAt(walk routing.Walk, steady int, t time.Duration) int {
	if t < 0 {
		return 0
	}
	hop := int(t / routing.HopDelay)
	if hop < len(walk.Records) {
		return walk.Records[hop].HeaderBytes
	}
	return steady
}

// wastedTransmission applies the paper's Section IV-D metric: the
// packet size s (1000 bytes plus the recovery header bytes) times the
// hops h from the recovery initiator to the node discarding the packet.
func wastedTransmission(headerBytes, hops int) float64 {
	return float64((routing.PacketBaseBytes + headerBytes) * hops)
}
