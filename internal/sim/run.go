package sim

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/routing"
	"repro/internal/spt"
)

// RTRResult is RTR's metric record for one test case.
type RTRResult struct {
	// Recovered reports end-to-end delivery over the recovery path.
	Recovered bool
	// Optimal reports delivery over the exact post-failure shortest
	// path; by Theorem 2 it equals Recovered.
	Optimal bool
	// Stretch is recovery-path hops divided by the true post-failure
	// shortest hops (1 when recovered; 0 when not applicable).
	Stretch float64
	// SPCalcs is the number of shortest-path calculations (the paper's
	// computational-overhead metric; always 1 for RTR).
	SPCalcs int
	// Phase1 is the collection walk; Phase2 the source-routed packet
	// trajectory (empty when the destination was identified as
	// unreachable).
	Phase1, Phase2 routing.Walk
	// RouteBytes is the phase-2 source-route recording size.
	RouteBytes int
	// IdentifiedUnreachable reports that the initiator's pruned view
	// had no path to the destination, so packets were discarded
	// immediately (the paper's early-discard behavior).
	IdentifiedUnreachable bool
	// WastedHops counts the hops a phase-2 packet traveled before
	// being discarded (0 when delivered or identified unreachable).
	WastedHops int
	// NoLiveNeighbor marks a fully cut-off initiator: recovery is
	// impossible and nothing was spent.
	NoLiveNeighbor bool
}

// RunRTR executes RTR on one case. truth is the shared ground-truth
// post-failure tree rooted at the case's initiator (nil to compute it
// on demand); RunAll computes it once per (scenario, initiator) pair
// and shares it across all three protocol runners.
func RunRTR(w *World, c *Case, truth *spt.Tree) (RTRResult, error) {
	var res RTRResult
	sess, err := w.RTR.NewSession(c.LV, c.Initiator)
	if err != nil {
		return res, err
	}
	col, err := sess.Collect(c.Trigger)
	if errors.Is(err, core.ErrNoLiveNeighbor) {
		res.NoLiveNeighbor = true
		return res, nil
	}
	if err != nil {
		return res, err
	}
	res.Phase1 = col.Walk

	rt, ok := sess.RecoveryPath(c.Dst)
	res.SPCalcs = sess.SPCalcs()
	if !ok {
		res.IdentifiedUnreachable = true
		return res, nil
	}
	res.RouteBytes = 2 * len(rt.Nodes)
	fwd := sess.ForwardSourceRouted(rt)
	res.Phase2 = fwd.Walk
	if !fwd.Delivered {
		res.WastedHops = fwd.Walk.Hops()
		return res, nil
	}
	res.Recovered = true
	opt, reachable := truthCost(w, c, truth)
	if reachable && costEqual(rt.Cost, opt) {
		res.Optimal = true
		res.Stretch = 1
	} else if reachable && opt > 0 {
		res.Stretch = rt.Cost / opt
	}
	return res, nil
}

// costEqual compares path costs with a relative tolerance: two trees
// can pick different equal-cost shortest paths whose float sums differ
// only in summation order.
func costEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > scale {
		scale = b
	}
	return d <= 1e-9*(1+scale)
}

// FCPResult is FCP's metric record for one test case.
type FCPResult struct {
	Delivered bool
	Optimal   bool
	// Stretch is the delivered trajectory's hops divided by the true
	// post-failure shortest hops.
	Stretch float64
	SPCalcs int
	Walk    routing.Walk
	// FinalBytes is the recording size of the final header (carried
	// failures plus the last source route).
	FinalBytes int
	// WastedHops counts the hops traveled before the packet was
	// discarded (irrecoverable cases).
	WastedHops int
}

// RunFCP executes FCP on one case. See RunRTR for the truth parameter.
func RunFCP(w *World, c *Case, truth *spt.Tree) (FCPResult, error) {
	var res FCPResult
	r, err := w.FCP.Recover(c.LV, c.Initiator, c.Dst)
	if err != nil {
		return res, err
	}
	res.SPCalcs = r.SPCalcs
	res.Walk = r.Walk
	res.FinalBytes = r.Header.RecordingBytes()
	if !r.Delivered {
		res.WastedHops = r.Walk.Hops()
		return res, nil
	}
	res.Delivered = true
	opt, reachable := truthCost(w, c, truth)
	cost := walkCost(w, r.Walk)
	if reachable && opt > 0 {
		res.Stretch = cost / opt
		res.Optimal = costEqual(cost, opt)
		if res.Optimal {
			res.Stretch = 1
		}
	} else if reachable && opt == 0 {
		res.Stretch = 1
		res.Optimal = true
	}
	return res, nil
}

// MRCResult is MRC's metric record for one test case.
type MRCResult struct {
	Delivered bool
	Optimal   bool
	Stretch   float64
}

// RunMRC executes MRC on one case. See RunRTR for the truth parameter.
func RunMRC(w *World, c *Case, truth *spt.Tree) (MRCResult, error) {
	var res MRCResult
	r, err := w.MRC.Recover(c.LV, c.Initiator, c.Dst, c.NextHop, c.Trigger)
	if err != nil {
		return res, err
	}
	if !r.Delivered {
		return res, nil
	}
	res.Delivered = true
	opt, reachable := truthCost(w, c, truth)
	cost := walkCost(w, r.Walk)
	if reachable && opt > 0 {
		res.Stretch = cost / opt
		res.Optimal = costEqual(cost, opt)
		if res.Optimal {
			res.Stretch = 1
		}
	} else if reachable && opt == 0 {
		res.Stretch = 1
		res.Optimal = true
	}
	return res, nil
}

// walkCost sums the directional link costs along a packet trajectory
// (equals the hop count on hop-cost topologies).
func walkCost(w *World, walk routing.Walk) float64 {
	total := 0.0
	for _, rec := range walk.Records {
		total += w.Topo.G.Link(rec.Link).CostFrom(rec.From)
	}
	return total
}

// truthCost returns the ground-truth post-failure shortest path cost
// from the case's initiator to its destination, reading it from the
// shared truth tree when one is supplied. With truth == nil the tree
// is computed on the spot into pooled workspace scratch.
func truthCost(w *World, c *Case, truth *spt.Tree) (float64, bool) {
	if truth != nil {
		return truth.CostTo(c.Dst)
	}
	ws := spt.GetWorkspace()
	defer ws.Release()
	return ws.Compute(w.Topo.G, c.Initiator, c.Scenario).CostTo(c.Dst)
}

// Outcome bundles all three protocols' results on one case.
type Outcome struct {
	Case *Case
	RTR  RTRResult
	FCP  FCPResult
	MRC  MRCResult
	// Truth is the ground-truth post-failure shortest path tree rooted
	// at the case's initiator, shared by every case of the same
	// (scenario, initiator) pair and by all three protocol runners.
	Truth *spt.Tree
	Err   error
}

// RunAll executes all protocols on every case, in parallel across
// CPUs, preserving case order in the result slice.
func RunAll(w *World, cases []*Case) []Outcome {
	return RunAllN(w, cases, 0)
}

// RunAllN is RunAll with an explicit worker count (GOMAXPROCS when
// workers <= 0); benchmarks use it to measure parallel scaling.
func RunAllN(w *World, cases []*Case, workers int) []Outcome {
	out := make([]Outcome, len(cases))
	truths := newTruthCache(w)
	par.For(len(cases), workers, func(i int) {
		c := cases[i]
		o := Outcome{Case: c, Truth: truths.tree(c)}
		var err error
		if o.RTR, err = RunRTR(w, c, o.Truth); err != nil {
			o.Err = err
		} else if o.FCP, err = RunFCP(w, c, o.Truth); err != nil {
			o.Err = err
		} else if o.MRC, err = RunMRC(w, c, o.Truth); err != nil {
			o.Err = err
		}
		out[i] = o
	})
	return out
}

// BytesAt returns the header recording bytes in flight at time t for a
// packet whose trajectory is walk (1.8 ms per hop) and whose
// steady-state recording size after the trajectory completes is
// `steady` (the cached source route used by all subsequent packets).
func BytesAt(walk routing.Walk, steady int, t time.Duration) int {
	if t < 0 {
		return 0
	}
	hop := int(t / routing.HopDelay)
	if hop < len(walk.Records) {
		return walk.Records[hop].HeaderBytes
	}
	return steady
}

// wastedTransmission applies the paper's Section IV-D metric: the
// packet size s (1000 bytes plus the recovery header bytes) times the
// hops h from the recovery initiator to the node discarding the packet.
func wastedTransmission(headerBytes, hops int) float64 {
	return float64((routing.PacketBaseBytes + headerBytes) * hops)
}
