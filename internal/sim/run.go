package sim

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/spt"
)

// RTRResult is RTR's metric record for one test case.
type RTRResult struct {
	// Recovered reports end-to-end delivery over the recovery path.
	Recovered bool
	// Optimal reports delivery over the exact post-failure shortest
	// path; by Theorem 2 it equals Recovered.
	Optimal bool
	// Stretch is recovery-path hops divided by the true post-failure
	// shortest hops (1 when recovered; 0 when not applicable).
	Stretch float64
	// SPCalcs is the number of shortest-path calculations (the paper's
	// computational-overhead metric; always 1 for RTR).
	SPCalcs int
	// Phase1 is the collection walk; Phase2 the source-routed packet
	// trajectory (empty when the destination was identified as
	// unreachable).
	Phase1, Phase2 routing.Walk
	// RouteBytes is the phase-2 source-route recording size.
	RouteBytes int
	// IdentifiedUnreachable reports that the initiator's pruned view
	// had no path to the destination, so packets were discarded
	// immediately (the paper's early-discard behavior).
	IdentifiedUnreachable bool
	// WastedHops counts the hops a phase-2 packet traveled before
	// being discarded (0 when delivered or identified unreachable).
	WastedHops int
	// NoLiveNeighbor marks a fully cut-off initiator: recovery is
	// impossible and nothing was spent.
	NoLiveNeighbor bool
}

// RunRTR executes RTR on one case.
func RunRTR(w *World, c *Case) (RTRResult, error) {
	var res RTRResult
	sess, err := w.RTR.NewSession(c.LV, c.Initiator)
	if err != nil {
		return res, err
	}
	col, err := sess.Collect(c.Trigger)
	if errors.Is(err, core.ErrNoLiveNeighbor) {
		res.NoLiveNeighbor = true
		return res, nil
	}
	if err != nil {
		return res, err
	}
	res.Phase1 = col.Walk

	rt, ok := sess.RecoveryPath(c.Dst)
	res.SPCalcs = sess.SPCalcs()
	if !ok {
		res.IdentifiedUnreachable = true
		return res, nil
	}
	res.RouteBytes = 2 * len(rt.Nodes)
	fwd := sess.ForwardSourceRouted(rt)
	res.Phase2 = fwd.Walk
	if !fwd.Delivered {
		res.WastedHops = fwd.Walk.Hops()
		return res, nil
	}
	res.Recovered = true
	opt, reachable := truthCost(w, c)
	if reachable && costEqual(rt.Cost, opt) {
		res.Optimal = true
		res.Stretch = 1
	} else if reachable && opt > 0 {
		res.Stretch = rt.Cost / opt
	}
	return res, nil
}

// costEqual compares path costs with a relative tolerance: two trees
// can pick different equal-cost shortest paths whose float sums differ
// only in summation order.
func costEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > scale {
		scale = b
	}
	return d <= 1e-9*(1+scale)
}

// FCPResult is FCP's metric record for one test case.
type FCPResult struct {
	Delivered bool
	Optimal   bool
	// Stretch is the delivered trajectory's hops divided by the true
	// post-failure shortest hops.
	Stretch float64
	SPCalcs int
	Walk    routing.Walk
	// FinalBytes is the recording size of the final header (carried
	// failures plus the last source route).
	FinalBytes int
	// WastedHops counts the hops traveled before the packet was
	// discarded (irrecoverable cases).
	WastedHops int
}

// RunFCP executes FCP on one case.
func RunFCP(w *World, c *Case) (FCPResult, error) {
	var res FCPResult
	r, err := w.FCP.Recover(c.LV, c.Initiator, c.Dst)
	if err != nil {
		return res, err
	}
	res.SPCalcs = r.SPCalcs
	res.Walk = r.Walk
	res.FinalBytes = r.Header.RecordingBytes()
	if !r.Delivered {
		res.WastedHops = r.Walk.Hops()
		return res, nil
	}
	res.Delivered = true
	opt, reachable := truthCost(w, c)
	cost := walkCost(w, r.Walk)
	if reachable && opt > 0 {
		res.Stretch = cost / opt
		res.Optimal = costEqual(cost, opt)
		if res.Optimal {
			res.Stretch = 1
		}
	} else if reachable && opt == 0 {
		res.Stretch = 1
		res.Optimal = true
	}
	return res, nil
}

// MRCResult is MRC's metric record for one test case.
type MRCResult struct {
	Delivered bool
	Optimal   bool
	Stretch   float64
}

// RunMRC executes MRC on one case.
func RunMRC(w *World, c *Case) (MRCResult, error) {
	var res MRCResult
	r, err := w.MRC.Recover(c.LV, c.Initiator, c.Dst, c.NextHop, c.Trigger)
	if err != nil {
		return res, err
	}
	if !r.Delivered {
		return res, nil
	}
	res.Delivered = true
	opt, reachable := truthCost(w, c)
	cost := walkCost(w, r.Walk)
	if reachable && opt > 0 {
		res.Stretch = cost / opt
		res.Optimal = costEqual(cost, opt)
		if res.Optimal {
			res.Stretch = 1
		}
	} else if reachable && opt == 0 {
		res.Stretch = 1
		res.Optimal = true
	}
	return res, nil
}

// walkCost sums the directional link costs along a packet trajectory
// (equals the hop count on hop-cost topologies).
func walkCost(w *World, walk routing.Walk) float64 {
	total := 0.0
	for _, rec := range walk.Records {
		total += w.Topo.G.Link(rec.Link).CostFrom(rec.From)
	}
	return total
}

// truthCost returns the ground-truth post-failure shortest path cost
// from the case's initiator to its destination.
func truthCost(w *World, c *Case) (float64, bool) {
	t := spt.Compute(w.Topo.G, c.Initiator, c.Scenario)
	return t.CostTo(c.Dst)
}

// Outcome bundles all three protocols' results on one case.
type Outcome struct {
	Case *Case
	RTR  RTRResult
	FCP  FCPResult
	MRC  MRCResult
	Err  error
}

// RunAll executes all protocols on every case, in parallel across
// CPUs, preserving case order in the result slice.
func RunAll(w *World, cases []*Case) []Outcome {
	out := make([]Outcome, len(cases))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cases) {
		workers = len(cases)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	go func() {
		for i := range cases {
			next <- i
		}
		close(next)
	}()
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for i := range next {
				c := cases[i]
				o := Outcome{Case: c}
				var err error
				if o.RTR, err = RunRTR(w, c); err != nil {
					o.Err = err
				} else if o.FCP, err = RunFCP(w, c); err != nil {
					o.Err = err
				} else if o.MRC, err = RunMRC(w, c); err != nil {
					o.Err = err
				}
				out[i] = o
			}
		}()
	}
	wg.Wait()
	return out
}

// BytesAt returns the header recording bytes in flight at time t for a
// packet whose trajectory is walk (1.8 ms per hop) and whose
// steady-state recording size after the trajectory completes is
// `steady` (the cached source route used by all subsequent packets).
func BytesAt(walk routing.Walk, steady int, t time.Duration) int {
	if t < 0 {
		return 0
	}
	hop := int(t / routing.HopDelay)
	if hop < len(walk.Records) {
		return walk.Records[hop].HeaderBytes
	}
	return steady
}

// wastedTransmission applies the paper's Section IV-D metric: the
// packet size s (1000 bytes plus the recovery header bytes) times the
// hops h from the recovery initiator to the node discarding the packet.
func wastedTransmission(headerBytes, hops int) float64 {
	return float64((routing.PacketBaseBytes + headerBytes) * hops)
}
