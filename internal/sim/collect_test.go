package sim

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/topology"
)

// degenerateWorld builds a complete 4-node topology whose nodes all
// sit at the origin: any failure area either misses every node (no
// failed paths) or covers all of them (no live initiators), so no
// test case of either kind can ever be produced. This is the
// exhaustion fixture for the collection cap.
func degenerateWorld(t *testing.T) *World {
	t.Helper()
	g := graph.New(4)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.MustAddLink(graph.NodeID(a), graph.NodeID(b))
		}
	}
	coords := make([]geom.Point, 4)
	w, err := NewWorldFrom(&topology.Topology{Name: "k4-origin", G: g, Coords: coords})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestCollectCasesExhaustion: on a workload that can never be
// satisfied, collection must terminate after MaxCollectDraws and
// return short instead of spinning forever.
func TestCollectCasesExhaustion(t *testing.T) {
	w := degenerateWorld(t)
	rng := rand.New(rand.NewSource(5))
	if got := CollectCases(w, rng, 3, true); len(got) != 0 {
		t.Errorf("impossible recoverable workload returned %d cases", len(got))
	}
	if got := CollectCases(w, rng, 3, false); len(got) != 0 {
		t.Errorf("impossible irrecoverable workload returned %d cases", len(got))
	}
}

func TestCollectBothExhaustion(t *testing.T) {
	w := degenerateWorld(t)
	rng := rand.New(rand.NewSource(6))
	rec, irr := CollectBoth(w, rng, 2, 2)
	if len(rec) != 0 || len(irr) != 0 {
		t.Errorf("impossible workload returned %d+%d cases", len(rec), len(irr))
	}
}

// TestCollectBothCountsAndClassification: exact target counts, correct
// recoverable/irrecoverable classification on every returned case, and
// truncation of the overshoot (one scenario yields many cases at
// once).
func TestCollectBothCountsAndClassification(t *testing.T) {
	w, err := NewWorld("AS1239", 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	rec, irr := CollectBoth(w, rng, 37, 23)
	if len(rec) != 37 || len(irr) != 23 {
		t.Fatalf("got %d+%d cases, want 37+23", len(rec), len(irr))
	}
	for _, c := range rec {
		if !c.Recoverable {
			t.Fatal("recoverable set contains an irrecoverable case")
		}
	}
	for _, c := range irr {
		if c.Recoverable {
			t.Fatal("irrecoverable set contains a recoverable case")
		}
	}
	// Classification must agree with ground truth recomputed from the
	// scenario: destination live and in the initiator's component.
	for _, c := range append(append([]*Case(nil), rec...), irr...) {
		truth := !c.Scenario.NodeDown(c.Dst) && w.Topo.G.Connected(c.Initiator, c.Dst, c.Scenario)
		if c.Recoverable != truth {
			t.Fatalf("case (%d->%d): Recoverable=%v, ground truth %v", c.Initiator, c.Dst, c.Recoverable, truth)
		}
	}
}

// TestCollectBothZeroTargets must return immediately with nothing.
func TestCollectBothZeroTargets(t *testing.T) {
	w := degenerateWorld(t)
	rng := rand.New(rand.NewSource(7))
	rec, irr := CollectBoth(w, rng, 0, 0)
	if len(rec) != 0 || len(irr) != 0 {
		t.Errorf("zero targets returned %d+%d cases", len(rec), len(irr))
	}
}

// TestCollectCasesDeterministic: the same seed draws the same cases —
// the property shard execution is built on.
func TestCollectCasesDeterministic(t *testing.T) {
	w, err := NewWorld("AS1239", 3)
	if err != nil {
		t.Fatal(err)
	}
	a := CollectCases(w, rand.New(rand.NewSource(9)), 25, true)
	b := CollectCases(w, rand.New(rand.NewSource(9)), 25, true)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Initiator != b[i].Initiator || a[i].Dst != b[i].Dst || a[i].Trigger != b[i].Trigger {
			t.Fatalf("case %d differs between identical-seed draws", i)
		}
	}
}
