package scheme

import (
	"errors"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/spt"
)

// SpreadConfig tunes the congestion-aware scheme.
type SpreadConfig struct {
	// K caps the candidate recovery paths per destination: the primary
	// (RTR's optimal path in the pruned view) plus up to K-1
	// alternatives that each avoid one primary link. 4 when zero.
	K int
	// Slack is the admissible cost inflation for an alternative:
	// candidates costing more than Slack times the primary are
	// discarded. 1.5 when zero.
	Slack float64
}

func (c SpreadConfig) k() int {
	if c.K > 0 {
		return c.K
	}
	return 4
}

func (c SpreadConfig) slack() float64 {
	if c.Slack > 0 {
		return c.Slack
	}
	return 1.5
}

// Spread is the congestion-aware recovery scheme: RTR's session
// machinery (same phase-1 collection, same pruned view) generates a
// small set of near-shortest recovery candidates — the primary path
// plus alternatives that each detour around one primary link — and the
// initiator picks one by hashing the flow identity, in the spirit of
// the randomized low-congestion next-hop selection of arXiv:2009.01497.
// Different destinations behind the same failure thus fan out across
// distinct candidates instead of all funneling onto the single
// shortest path, trading bounded stretch (the Slack factor) for a
// lower post-recovery peak link load. The hash makes the choice a pure
// function of (initiator, destination, trigger), so sweeps and the
// serving layer stay deterministic.
type Spread struct {
	cfg SpreadConfig
}

// NewSpread returns the scheme with zero-valued config fields
// defaulted.
func NewSpread(cfg SpreadConfig) *Spread { return &Spread{cfg: cfg} }

func (s *Spread) Name() string             { return NameSpread }
func (s *Spread) Caps() Caps               { return Caps{Phase2: true, SpreadsLoad: true} }
func (s *Spread) Prepare(*sim.World) error { return nil }

func (s *Spread) Run(w *sim.World, c *sim.Case, truth *spt.Tree) (Result, error) {
	var res Result
	sess, err := w.RTR.NewSession(c.LV, c.Initiator)
	if err != nil {
		return res, err
	}
	_, err = sess.Collect(c.Trigger)
	if errors.Is(err, core.ErrNoLiveNeighbor) {
		res.NoLiveNeighbor = true
		return res, nil
	}
	if err != nil {
		return res, err
	}

	var primary core.Route
	if !sess.RecoveryPathInto(&primary, c.Dst) {
		// Early discard: the pruned view has no path, so only the
		// collection walk touched the wire.
		res.SPCalcs = sess.SPCalcs()
		return res, nil
	}

	candidates := []core.Route{primary}
	budget := s.cfg.slack() * primary.Cost
	for _, avoid := range spreadAvoidLinks(primary.Links, s.cfg.k()-1) {
		var alt core.Route
		if !sess.RecoveryPathAvoidingInto(&alt, c.Dst, []graph.LinkID{avoid}) {
			continue
		}
		if alt.Cost > budget || sameLinks(alt.Links, primary.Links) ||
			duplicateRoute(candidates[1:], alt.Links) {
			continue
		}
		candidates = append(candidates, alt)
	}
	chosen := candidates[flowHash(c.Initiator, c.Dst, c.Trigger)%uint64(len(candidates))]
	res.SPCalcs = sess.SPCalcs()

	fwd := sess.ForwardSourceRouted(chosen)
	res.Walks = walks(fwd.Walk)
	if !fwd.Delivered {
		return res, nil
	}
	res.Delivered = true
	opt, reachable := spreadTruthCost(w, c, truth)
	if reachable && spreadCostEqual(chosen.Cost, opt) {
		res.Optimal = true
		res.Stretch = 1
	} else if reachable && opt > 0 {
		res.Stretch = chosen.Cost / opt
	}
	return res, nil
}

// spreadAvoidLinks picks up to n links evenly spaced along the primary
// path. Early links sit in the initiator's funnel — where every
// recovery path behind one failure concentrates — so the spacing
// always includes the first hop and then samples the rest.
func spreadAvoidLinks(links []graph.LinkID, n int) []graph.LinkID {
	if n <= 0 || len(links) == 0 {
		return nil
	}
	if len(links) <= n {
		return links
	}
	out := make([]graph.LinkID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, links[i*len(links)/n])
	}
	return out
}

func sameLinks(a, b []graph.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func duplicateRoute(prev []core.Route, links []graph.LinkID) bool {
	for _, p := range prev {
		if sameLinks(p.Links, links) {
			return true
		}
	}
	return false
}

// flowHash is FNV-1a over the flow identity — deterministic, spread
// uniformly enough that destinations behind one failure fan out across
// the candidate set.
func flowHash(init, dst graph.NodeID, trigger graph.LinkID) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range [3]uint32{uint32(init), uint32(dst), uint32(trigger)} {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(v>>s) & 0xff
			h *= prime
		}
	}
	return h
}

// spreadTruthCost mirrors the sim runners' grading source: the shared
// truth tree when supplied, a pooled computation otherwise.
func spreadTruthCost(w *sim.World, c *sim.Case, truth *spt.Tree) (float64, bool) {
	if truth != nil {
		return truth.CostTo(c.Dst)
	}
	ws := spt.GetWorkspace()
	defer ws.Release()
	return ws.Compute(w.Topo.G, c.Initiator, c.Scenario).CostTo(c.Dst)
}

// spreadCostEqual matches the harness's grading tolerance.
func spreadCostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > scale {
		scale = b
	}
	return d <= 1e-9*(1+scale)
}
