// Package scheme is the pluggable recovery-scheme registry: every
// recovery protocol the harness can grade — the paper's RTR, the FCP
// and MRC baselines, and congestion-aware variants — registers here
// under a stable name with its capability flags and per-case runner.
// The sim, sweep, serve, and CLI layers dispatch by name instead of
// hard-coding protocol triples, so adding a baseline is one Register
// call plus a runner; nothing downstream changes.
//
// The builtin schemes are thin projections over the sim runners and
// stay bit-identical to them — the differential tests in this package
// assert it on every bundled topology.
package scheme

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/spt"
)

// Caps are a scheme's capability flags. Dispatch layers honor them
// instead of hard-coding per-name knowledge: serve rejects a
// NeedsMRC scheme on a scale-mode world, the sweep engine skips
// incompatible (world, scheme) pairs, and so on.
type Caps struct {
	// NeedsMRC: the scheme requires the world to carry an MRC engine
	// (absent on scale-mode worlds).
	NeedsMRC bool
	// Phase2: the scheme honors the world's phase-2 route-engine
	// selection (dijkstra/astar/alt) with engine-invariant outputs.
	Phase2 bool
	// SpreadsLoad: the scheme trades path optimality for lower
	// post-recovery link load (congestion-aware recovery). Utilization
	// sweeps surface these schemes alongside the paper's baselines.
	SpreadsLoad bool
}

// Result is the scheme-independent projection of one case outcome:
// what every registered scheme can report about a recovery attempt,
// regardless of its internal mechanics. Load accounting charges the
// Walks; reports read the grading fields.
type Result struct {
	// Delivered reports end-to-end delivery under the ground-truth
	// failure.
	Delivered bool
	// Optimal reports the delivered path matched the true post-failure
	// shortest path cost; Stretch is the delivered cost over that
	// optimum (1 when optimal, 0 when not delivered or ungraded).
	Optimal bool
	Stretch float64
	// SPCalcs counts shortest-path calculations (the paper's
	// computational-overhead metric).
	SPCalcs int
	// NoLiveNeighbor marks a fully cut-off initiator; Skipped marks a
	// scheme that cannot run on this world (e.g. MRC in scale mode).
	NoLiveNeighbor bool
	Skipped        bool
	// Walks are the data-plane packet trajectories for this case, in
	// travel order — the hops the flow's traffic actually rides during
	// recovery. Control-plane packets (RTR's phase-1 collection walk)
	// are a single small packet, not flow-rate traffic, and are
	// excluded; per-link load accounting charges the demand's rate to
	// every hop listed here.
	Walks []routing.Walk
}

// Scheme is one registered recovery scheme.
type Scheme interface {
	// Name is the registry key (also the CLI/API spelling).
	Name() string
	// Caps are the scheme's capability flags.
	Caps() Caps
	// Prepare is the world-build hook: called before the scheme's
	// first Run on a world, it validates requirements (capability
	// flags against what the world carries) and may build per-world
	// state. It must be cheap and idempotent — dispatch layers call it
	// per (scheme, world) without coordination.
	Prepare(w *sim.World) error
	// Run executes the scheme on one case. truth is the shared
	// ground-truth post-failure tree rooted at the case's initiator
	// (nil to compute on demand, exactly like the sim runners).
	Run(w *sim.World, c *sim.Case, truth *spt.Tree) (Result, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Scheme)
)

// Register adds a scheme under its name. It panics on an empty name or
// a duplicate registration — both are programmer errors at init time,
// not runtime conditions.
func Register(s Scheme) {
	name := s.Name()
	if name == "" {
		panic("scheme: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scheme: duplicate registration of %q", name))
	}
	registry[name] = s
}

// Get returns the scheme registered under name. The error lists the
// known names so flag-parse failures are self-explanatory.
func Get(name string) (Scheme, error) {
	regMu.RLock()
	s := registry[name]
	regMu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("unknown scheme %q (registered: %s)", name, namesString())
	}
	return s, nil
}

// Names returns every registered scheme name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func namesString() string {
	names := Names()
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
