package scheme

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/failure"
	"repro/internal/sim"
	"repro/internal/spt"
	"repro/internal/topology"
)

const testSeed = 3

// TestRegistryRoundTrip pins the registration contract: every builtin
// is registered, lookups return the scheme under its own name, unknown
// names fail with a self-explanatory error, and duplicate or anonymous
// registrations panic at init time.
func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	for _, want := range []string{NameRTR, NameFCP, NameMRC, NameSpread} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin %q not registered (have %v)", want, names)
		}
	}
	for _, n := range names {
		s, err := Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if s.Name() != n {
			t.Errorf("Get(%q).Name() = %q", n, s.Name())
		}
	}
	if _, err := Get("ospf"); err == nil {
		t.Error("unknown scheme resolved")
	} else if !strings.Contains(err.Error(), NameRTR) {
		t.Errorf("unknown-scheme error %q does not list registered names", err)
	}
	mustPanic(t, "duplicate", func() { Register(rtrScheme{}) })
	mustPanic(t, "empty name", func() { Register(anonScheme{}) })
}

type anonScheme struct{ rtrScheme }

func (anonScheme) Name() string { return "" }

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("Register with %s did not panic", what)
		}
	}()
	fn()
}

// testCases draws up to n recovery cases on the world.
func testCases(t *testing.T, w *sim.World, n int) []*sim.Case {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var out []*sim.Case
	for draws := 0; len(out) < n && draws < sim.MaxCollectDraws; draws++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, irr := sim.CasesFromScenario(w, sc)
		out = append(out, rec...)
		out = append(out, irr...)
	}
	if len(out) == 0 {
		t.Fatal("no cases drawn")
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// TestConformance is the suite every registered scheme must pass:
// capability flags consistent with Prepare's verdict on full and
// scale-mode worlds, and Run producing internally consistent results
// on real cases.
func TestConformance(t *testing.T) {
	w, err := sim.NewWorldFrom(topology.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := sim.NewWorldFromConfig(topology.PaperExample(), sim.WorldConfig{Scale: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := testCases(t, w, 16)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			caps := s.Caps()
			if err := s.Prepare(w); err != nil {
				t.Fatalf("Prepare on a full world: %v", err)
			}
			// The capability flag and the hook must agree: a NeedsMRC
			// scheme rejects a scale-mode world, everything else serves it.
			if err := s.Prepare(ws); (err != nil) != caps.NeedsMRC {
				t.Fatalf("Prepare on scale world: err=%v, NeedsMRC=%v", err, caps.NeedsMRC)
			}
			for _, c := range cases {
				r, err := s.Run(w, c, nil)
				if err != nil {
					t.Fatalf("Run(%d->%d): %v", c.Initiator, c.Dst, err)
				}
				if r.Delivered && len(r.Walks) == 0 {
					t.Errorf("case %d->%d: delivered with no data walk", c.Initiator, c.Dst)
				}
				if r.Delivered && r.Stretch != 0 && r.Stretch < 1-1e-9 {
					t.Errorf("case %d->%d: stretch %v < 1", c.Initiator, c.Dst, r.Stretch)
				}
				if !r.Delivered && (r.Optimal || r.Stretch != 0) {
					t.Errorf("case %d->%d: undelivered but graded (%+v)", c.Initiator, c.Dst, r)
				}
				// Determinism: a rerun is identical (schemes may not carry
				// hidden per-run state).
				again, err := s.Run(w, c, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(r, again) {
					t.Errorf("case %d->%d: rerun differs:\n%+v\n%+v", c.Initiator, c.Dst, r, again)
				}
			}
		})
	}
}

// TestBuiltinDifferentialAllTopologies proves the registry is a
// different dispatch shape, not a different answer: on every bundled
// topology, the builtin schemes' Run output is exactly the projection
// of the direct sim runners on the same cases.
func TestBuiltinDifferentialAllTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world per bundled topology")
	}
	for _, name := range topology.ASNames() {
		t.Run(name, func(t *testing.T) {
			w, err := sim.NewWorld(name, testSeed)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range testCases(t, w, 12) {
				truth := spt.Compute(w.Topo.G, c.Initiator, c.Scenario)
				check := func(scheme string, got Result, want Result, err error) {
					t.Helper()
					if err != nil {
						t.Fatalf("%s on %d->%d: %v", scheme, c.Initiator, c.Dst, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s on %d->%d differs:\nregistry %+v\nsim      %+v",
							scheme, c.Initiator, c.Dst, got, want)
					}
				}

				s, _ := Get(NameRTR)
				got, err := s.Run(w, c, truth)
				rr, rerr := sim.RunRTR(w, c, truth)
				if rerr != nil {
					t.Fatal(rerr)
				}
				check(NameRTR, got, Result{
					Delivered: rr.Recovered, Optimal: rr.Optimal, Stretch: rr.Stretch,
					SPCalcs: rr.SPCalcs, NoLiveNeighbor: rr.NoLiveNeighbor,
					Walks: walks(rr.Phase2),
				}, err)

				s, _ = Get(NameFCP)
				got, err = s.Run(w, c, truth)
				fr, ferr := sim.RunFCP(w, c, truth)
				if ferr != nil {
					t.Fatal(ferr)
				}
				check(NameFCP, got, Result{
					Delivered: fr.Delivered, Optimal: fr.Optimal, Stretch: fr.Stretch,
					SPCalcs: fr.SPCalcs, Walks: walks(fr.Walk),
				}, err)

				s, _ = Get(NameMRC)
				got, err = s.Run(w, c, truth)
				mr, merr := sim.RunMRC(w, c, truth)
				if merr != nil {
					t.Fatal(merr)
				}
				check(NameMRC, got, Result{
					Delivered: mr.Delivered, Optimal: mr.Optimal, Stretch: mr.Stretch,
					Skipped: mr.Skipped, Walks: walks(mr.Walk),
				}, err)
			}
		})
	}
}

// TestSpreadBoundedStretch pins the congestion scheme's contract: the
// chosen candidate never exceeds the slack budget relative to the
// optimal recovery path, and delivery matches RTR on recoverable
// cases (candidates live in the same pruned view, so a deliverable
// primary implies the detours were computed under identical failure
// knowledge — but forwarding may still hit an uncollected failure,
// exactly like RTR).
func TestSpreadBoundedStretch(t *testing.T) {
	w, err := sim.NewWorld("AS1239", testSeed)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSpread(SpreadConfig{})
	slack := s.cfg.slack()
	for _, c := range testCases(t, w, 24) {
		r, err := s.Run(w, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := sim.RunRTR(w, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.NoLiveNeighbor != rr.NoLiveNeighbor {
			t.Errorf("case %d->%d: NoLiveNeighbor %v vs RTR %v", c.Initiator, c.Dst, r.NoLiveNeighbor, rr.NoLiveNeighbor)
		}
		if r.Delivered && rr.Optimal && r.Stretch > slack*rr.Stretch+1e-9 {
			t.Errorf("case %d->%d: stretch %v exceeds slack %v over RTR's %v",
				c.Initiator, c.Dst, r.Stretch, slack, rr.Stretch)
		}
	}
}
