package scheme

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/spt"
)

// Builtin scheme names (also their CLI/API spellings).
const (
	NameRTR    = "rtr"
	NameFCP    = "fcp"
	NameMRC    = "mrc"
	NameSpread = "rtr-spread"
)

func init() {
	Register(rtrScheme{})
	Register(fcpScheme{})
	Register(mrcScheme{})
	Register(NewSpread(SpreadConfig{}))
}

// walks wraps the non-empty trajectories (a zero-hop walk carries no
// load and no information).
func walks(ws ...routing.Walk) []routing.Walk {
	out := make([]routing.Walk, 0, len(ws))
	for _, w := range ws {
		if len(w.Records) > 0 {
			out = append(out, w)
		}
	}
	return out
}

// rtrScheme is the paper's two-phase recovery, projected from
// sim.RunRTR verbatim.
type rtrScheme struct{}

func (rtrScheme) Name() string             { return NameRTR }
func (rtrScheme) Caps() Caps               { return Caps{Phase2: true} }
func (rtrScheme) Prepare(*sim.World) error { return nil }

func (rtrScheme) Run(w *sim.World, c *sim.Case, truth *spt.Tree) (Result, error) {
	r, err := sim.RunRTR(w, c, truth)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Delivered:      r.Recovered,
		Optimal:        r.Optimal,
		Stretch:        r.Stretch,
		SPCalcs:        r.SPCalcs,
		NoLiveNeighbor: r.NoLiveNeighbor,
		Walks:          walks(r.Phase2),
	}, nil
}

// fcpScheme is the failure-carrying-packets baseline.
type fcpScheme struct{}

func (fcpScheme) Name() string             { return NameFCP }
func (fcpScheme) Caps() Caps               { return Caps{Phase2: true} }
func (fcpScheme) Prepare(*sim.World) error { return nil }

func (fcpScheme) Run(w *sim.World, c *sim.Case, truth *spt.Tree) (Result, error) {
	r, err := sim.RunFCP(w, c, truth)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Delivered: r.Delivered,
		Optimal:   r.Optimal,
		Stretch:   r.Stretch,
		SPCalcs:   r.SPCalcs,
		Walks:     walks(r.Walk),
	}, nil
}

// mrcScheme is the multiple-routing-configurations baseline. Its
// NeedsMRC capability is what scale-mode dispatch honors: Prepare
// fails on a world without the engine instead of silently skipping.
type mrcScheme struct{}

func (mrcScheme) Name() string { return NameMRC }
func (mrcScheme) Caps() Caps   { return Caps{NeedsMRC: true, Phase2: true} }

func (mrcScheme) Prepare(w *sim.World) error {
	if !w.HasMRC() {
		return fmt.Errorf("scheme mrc unavailable on %s: scale-mode world carries no MRC engine", w.Topo.Name)
	}
	return nil
}

func (mrcScheme) Run(w *sim.World, c *sim.Case, truth *spt.Tree) (Result, error) {
	r, err := sim.RunMRC(w, c, truth)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Delivered: r.Delivered,
		Optimal:   r.Optimal,
		Stretch:   r.Stretch,
		Skipped:   r.Skipped,
		Walks:     walks(r.Walk),
	}, nil
}
