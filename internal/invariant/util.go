package invariant

import (
	"fmt"

	"repro/internal/traffic"
)

// CheckUtil extends the loss-conservation oracle to the traffic
// workload's load columns: offered flow must be conserved (delivered
// plus dropped), every utilization column must be internally ordered
// (peak >= p99 >= p50 >= 0, mean <= peak), and the pre-failure column
// must sit at the calibrated heavy-load operating point — calibration
// puts the clean peak exactly at the target, so a drifted value means
// the baseline and the capacity disagree about the same matrix.
func CheckUtil(res traffic.Result, target float64) []Violation {
	var vs []Violation
	bad := func(check, format string, args ...any) {
		vs = append(vs, Violation{
			Check: check,
			Repro: fmt.Sprintf("topo=%s scheme=%s pairs=%d scenarios=%d",
				res.Topology, res.Scheme, res.Pairs, res.Scenarios),
			Detail: fmt.Sprintf(format, args...),
		})
	}
	if !conserves(res.Flows.Offered, res.Flows.Delivered, res.Flows.Dropped) {
		bad("util/conservation", "offered %.6f != delivered %.6f + dropped %.6f",
			res.Flows.Offered, res.Flows.Delivered, res.Flows.Dropped)
	}
	for _, col := range []struct {
		name string
		u    traffic.Util
	}{{"pre", res.Pre}, {"post", res.Post}} {
		u := col.u
		if u.P50 < 0 || u.Peak < u.P99-1e-12 || u.P99 < u.P50-1e-12 || u.Mean > u.Peak+1e-12 {
			bad("util/column-order", "%s column out of order: peak=%.6f p99=%.6f p50=%.6f mean=%.6f",
				col.name, u.Peak, u.P99, u.P50, u.Mean)
		}
	}
	if target > 0 && !costEqual(res.Pre.Peak, target) {
		bad("util/calibration", "pre-failure peak %.9f, calibrated target %.9f", res.Pre.Peak, target)
	}
	return vs
}
