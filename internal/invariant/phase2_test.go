package invariant

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/sim"
	"repro/internal/spt"
)

// TestCheckCaseGoalEngines runs the full invariant oracle over worlds
// built with the goal-directed phase-2 engines: every paper-level
// guarantee (Theorem 2 optimality, stretch-1, SPCalcs accounting, walk
// well-formedness) must hold for A* and ALT outputs exactly as it does
// for the default full-tree engine — the oracle runs unchanged.
func TestCheckCaseGoalEngines(t *testing.T) {
	scenarios := 4
	maxCases := 250
	if testing.Short() {
		scenarios, maxCases = 2, 80
	}
	names := []string{"AS1239", "AS7018"}
	for _, eng := range []spt.Engine{spt.EngineAStar, spt.EngineALT} {
		for _, name := range names {
			t.Run(name+"/"+eng.String(), func(t *testing.T) {
				t.Parallel()
				w, err := sim.NewWorldPhase2(name, 1, eng)
				if err != nil {
					t.Fatal(err)
				}
				k := New(w)
				rng := rand.New(rand.NewSource(7))
				checked := 0
				for s := 0; s < scenarios && checked < maxCases; s++ {
					sc := failure.RandomScenario(w.Topo, rng)
					rec, irr := sim.CasesFromScenario(w, sc)
					for _, c := range append(rec, irr...) {
						if checked >= maxCases {
							break
						}
						checked++
						if vs := k.CheckCase(c); len(vs) > 0 {
							t.Fatalf("%v (first of %d violations)", vs[0], len(vs))
						}
					}
				}
				if checked == 0 {
					t.Fatal("no cases generated")
				}
				t.Logf("%d cases clean under %s", checked, eng)
			})
		}
	}
}
