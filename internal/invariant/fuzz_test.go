package invariant

import (
	"math"
	"testing"

	"repro/internal/failure"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/topology"
)

// FuzzCheckCase drives the whole invariant suite from fuzzed failure
// geometry: any disk (or pair of disks) placed anywhere on the plane
// must yield cases on which all three protocols satisfy every
// invariant. The corpus seeds cover the paper's radius range, border
// areas (which cannot be enclosed and exercise walk truncation), and
// degenerate dots.
func FuzzCheckCase(f *testing.F) {
	f.Add(400.0, 400.0, 200.0, 1500.0, 1500.0, 0.0)
	f.Add(0.0, 0.0, 300.0, 0.0, 0.0, 0.0)              // border corner
	f.Add(1000.0, 1000.0, 300.0, 400.0, 1600.0, 250.0) // two areas
	f.Add(1999.0, 37.0, 100.0, 0.0, 0.0, 0.0)
	f.Add(700.0, 1200.0, 1.0, 0.0, 0.0, 0.0) // near-degenerate dot

	w, err := sim.NewWorld("AS1239", 1)
	if err != nil {
		f.Fatal(err)
	}
	k := New(w)

	clamp := func(v, lo, hi float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return lo
		}
		v = math.Mod(math.Abs(v), hi-lo)
		return lo + v
	}
	f.Fuzz(func(t *testing.T, x1, y1, r1, x2, y2, r2 float64) {
		areas := []geom.Disk{{
			Center: geom.Point{X: clamp(x1, 0, topology.Width), Y: clamp(y1, 0, topology.Height)},
			Radius: clamp(r1, 1, 2*failure.MaxRadius),
		}}
		if r2 > 0 {
			areas = append(areas, geom.Disk{
				Center: geom.Point{X: clamp(x2, 0, topology.Width), Y: clamp(y2, 0, topology.Height)},
				Radius: clamp(r2, 1, 2*failure.MaxRadius),
			})
		}
		sc := failure.NewScenario(w.Topo, areas...)
		rec, irr := sim.CasesFromScenario(w, sc)
		const cap = 40 // bound per-input work; the fuzzer varies the geometry
		for i, c := range append(rec, irr...) {
			if i >= cap {
				break
			}
			if vs := k.CheckCase(c); len(vs) > 0 {
				t.Fatalf("%v", vs[0])
			}
		}
	})
}
