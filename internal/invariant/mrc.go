package invariant

import (
	"repro/internal/graph"
	"repro/internal/mrc"
	"repro/internal/sim"
)

// checkMRCCase runs the MRC baseline on the case and checks
// configuration validity: the packet switched to the configuration the
// scheme prescribes for the suspected element, the route is valid in
// that configuration (no isolated-node transit, no isolated link —
// both endpoints isolated — anywhere, restricted links only at the
// very ends), honors the exclude contract (never leaves over the
// trigger link), and stays loop-free and truth-consistent.
func (k *Checker) checkMRCCase(c *sim.Case) []Violation {
	res, err := k.W.MRC.Recover(c.LV, c.Initiator, c.Dst, c.NextHop, c.Trigger)
	if err != nil {
		return []Violation{k.violation(c, "mrc/recover-failed", "%v", err)}
	}
	return k.CheckMRC(c, res)
}

// CheckMRC checks one MRC recovery result against the case. Exported
// so the mutation tests can tamper with a genuine result and prove
// each check fires.
func (k *Checker) CheckMRC(c *sim.Case, res mrc.Result) []Violation {
	var vs []Violation
	g := k.W.Topo.G

	// Standard MRC configuration selection: isolate the suspected
	// element — the next-hop node, or the initiator itself when the
	// failed link is the last hop.
	want := k.W.MRC.ConfigOf(c.NextHop)
	if c.NextHop == c.Dst {
		want = k.W.MRC.ConfigOf(c.Initiator)
	}
	if res.Config != want {
		vs = append(vs, k.violation(c, "mrc/config-selection",
			"recovered in configuration %d, the suspected element is isolated in %d", res.Config, want))
	}
	if want == mrc.Unisolated {
		if res.Delivered || res.Walk.Hops() > 0 {
			vs = append(vs, k.violation(c, "mrc/unprotected-forwarded",
				"suspected element is unprotected (articulation point), yet the packet was forwarded"))
		}
		return vs
	}

	recs := res.Walk.Records
	cfg := res.Config
	seen := make(map[graph.NodeID]bool, len(recs)+1)
	seen[c.Initiator] = true
	for i, rec := range recs {
		if g.Link(rec.Link).Other(rec.From) != rec.To {
			vs = append(vs, k.violation(c, "mrc/walk-contiguous",
				"hop %d: link %d does not join %d-%d", i, rec.Link, rec.From, rec.To))
		}
		from := c.Initiator
		if i > 0 {
			from = recs[i-1].To
		}
		if rec.From != from {
			vs = append(vs, k.violation(c, "mrc/walk-contiguous",
				"hop %d starts at %d, want %d", i, rec.From, from))
		}
		if c.LV.NeighborUnreachable(rec.From, rec.Link) {
			vs = append(vs, k.violation(c, "mrc/walk-dead-link",
				"hop %d traverses unreachable link %d from %d", i, rec.Link, rec.From))
		}
		if i == 0 && rec.Link == c.Trigger {
			vs = append(vs, k.violation(c, "mrc/exclude-violated",
				"first hop reuses the trigger link %d the initiator just saw fail", rec.Link))
		}
		if seen[rec.To] {
			vs = append(vs, k.violation(c, "mrc/walk-loop", "route revisits node %d", rec.To))
		}
		seen[rec.To] = true

		// Configuration validity per link: a link with both endpoints
		// isolated in cfg is an isolated link and carries no traffic in
		// cfg, destination or not; a link with one isolated endpoint is
		// restricted — usable only to reach that endpoint as the packet's
		// destination, or to leave it when it is the isolated initiator
		// on the very first hop.
		l := g.Link(rec.Link)
		aIso := k.W.MRC.ConfigOf(l.A) == cfg
		bIso := k.W.MRC.ConfigOf(l.B) == cfg
		switch {
		case aIso && bIso:
			vs = append(vs, k.violation(c, "mrc/isolated-link",
				"hop %d traverses link %d between two nodes isolated in configuration %d", i, rec.Link, cfg))
		case aIso || bIso:
			iso := l.A
			if bIso {
				iso = l.B
			}
			if !(iso == c.Dst || (i == 0 && iso == c.Initiator)) {
				vs = append(vs, k.violation(c, "mrc/restricted-misuse",
					"hop %d uses restricted link %d of node %d, which is neither the destination nor the isolated initiator leaving home",
					i, rec.Link, iso))
			}
		}
		// No isolated-node transit: interior nodes must be backbone
		// nodes of cfg.
		if rec.To != c.Dst && k.W.MRC.ConfigOf(rec.To) == cfg {
			vs = append(vs, k.violation(c, "mrc/isolated-transit",
				"hop %d transits node %d, isolated in configuration %d", i, rec.To, cfg))
		}
	}

	if res.Delivered {
		if len(recs) == 0 || recs[len(recs)-1].To != c.Dst {
			vs = append(vs, k.violation(c, "mrc/delivery-wrong-dst",
				"delivered, but the trajectory does not end at destination %d", c.Dst))
			return vs
		}
		truth, oracle := k.oracle(c.Initiator, c.Scenario)
		if !oracle {
			return vs
		}
		if truth[c.Dst] == inf {
			vs = append(vs, k.violation(c, "truth/delivered-irrecoverable",
				"delivered, but ground truth has no post-failure path"))
			return vs
		}
		cost := 0.0
		for _, rec := range recs {
			cost += g.Link(rec.Link).CostFrom(rec.From)
		}
		if cost < truth[c.Dst] && !costEqual(cost, truth[c.Dst]) {
			vs = append(vs, k.violation(c, "truth/delivery-beats-shortest",
				"delivered over cost %g, below the true post-failure shortest %g", cost, truth[c.Dst]))
		}
		return vs
	}
	wantDrop := c.Initiator
	if len(recs) > 0 {
		wantDrop = recs[len(recs)-1].To
	}
	if res.DropAt != wantDrop {
		vs = append(vs, k.violation(c, "mrc/drop-site",
			"drop reported at %d, trajectory stops at %d", res.DropAt, wantDrop))
	}
	return vs
}
