// Package invariant is a pluggable oracle layer that checks
// paper-level invariants on live simulator outputs: the guarantees the
// paper states (Theorem 1 walk termination, Theorem 2 recovery-path
// optimality, Constraints 1/2 non-crossing) and the ones the baselines
// lean on (FCP and MRC loop-freeness and configuration validity),
// plus packet-accounting conservation in the loss model.
//
// The existing differential tests only compare our fast paths against
// our slow paths; this package compares both against independent
// oracles — most checks re-derive the expected answer with a
// deliberately separate O(n²) Dijkstra (no code shared with
// internal/spt) and with direct replays of the paper's admissibility
// rules. It is wired in at three layers: package/property tests (every
// bundled topology × random failure circles, plus fuzzing), the
// opt-in `-check` flag of cmd/rtrsim and sweep.Spec.Check (fail fast
// with a minimized repro string), and the CI checked-sweep smoke.
// DESIGN.md §9 maps every check to its paper anchor and documents the
// amendments under which it is intentionally relaxed.
package invariant

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Violation is one observed breach of a paper-level invariant.
type Violation struct {
	// Check is the stable identifier of the violated invariant,
	// e.g. "rtr/route-suboptimal" (see DESIGN.md §9 for the list).
	Check string
	// Repro is a minimized reproduction string: topology, failure
	// areas, and the case triple, enough to rebuild and rerun the
	// exact case that failed.
	Repro string
	// Detail explains the breach with the offending values.
	Detail string
}

// Error implements error, so a Violation can fail a sweep fast.
func (v Violation) Error() string {
	return fmt.Sprintf("invariant %s: %s [%s]", v.Check, v.Detail, v.Repro)
}

// Repro builds the minimized reproduction string for one case: the
// topology name (synthesis is seed-deterministic), the failure
// instance in failure.ParseInstance's grammar (any area kind or link
// set, not just disks), the generator spec when the scenario came from
// one, and the paper's case triple (initiator, destination, failure
// area) plus the trigger link.
func Repro(topoName string, c *sim.Case) string {
	var b strings.Builder
	fmt.Fprintf(&b, "topo=%s init=%d dst=%d nh=%d trigger=%d failure=%s",
		topoName, c.Initiator, c.Dst, c.NextHop, c.Trigger, c.Scenario.Desc())
	if spec := c.Scenario.GenSpec(); spec != "" {
		fmt.Fprintf(&b, " gen=%s", spec)
	}
	return b.String()
}

// Checker checks simulator outputs for one world. It is stateless
// beyond the world reference, profile and size gate, and safe for
// concurrent use.
type Checker struct {
	W *sim.World
	// Profile selects which model-dependent invariants apply; New
	// defaults to the paper's single-disk profile.
	Profile Profile
	// MaxOracleNodes gates the independent O(n²) Dijkstra oracle: on
	// graphs with more nodes, every check that needs a full oracle
	// distance vector is skipped (with a one-time logged reason)
	// instead of burning hours per case at 10^5 nodes. All structural
	// checks — walk contiguity, header discipline, Constraint 1/2
	// replay, route/configuration validity — still run; only the
	// optimality and reachability cross-checks against oracleDists are
	// dropped. Zero means DefaultMaxOracleNodes; negative disables the
	// gate (the oracle always runs).
	MaxOracleNodes int
	// Log receives the one-time oracle-skip notice; nil logs to
	// standard error (a silent narrowing of a checked sweep would
	// masquerade as full coverage).
	Log func(msg string)

	oracleNote sync.Once
}

// DefaultMaxOracleNodes is the default oracle gate. Every Table II
// topology is two orders of magnitude below it; the quadratic oracle
// on 8192 nodes is ~10^8 scan steps per distance vector — seconds,
// the acceptable ceiling for opt-in checking.
const DefaultMaxOracleNodes = 8192

// New returns a Checker for w with the default (single-perimeter)
// profile.
func New(w *sim.World) *Checker { return &Checker{W: w, Profile: DefaultProfile()} }

// WithProfile sets the checking profile and returns the checker.
func (k *Checker) WithProfile(p Profile) *Checker {
	k.Profile = p
	return k
}

// OracleEnabled reports whether the O(n²) oracle checks run on this
// checker's world.
func (k *Checker) OracleEnabled() bool {
	limit := k.MaxOracleNodes
	if limit == 0 {
		limit = DefaultMaxOracleNodes
	}
	return limit < 0 || k.W.Topo.G.NumNodes() <= limit
}

// oracle returns oracleDists(root, down) when the graph is within the
// oracle gate, or (nil, false) — logging the skip reason exactly once
// per checker — when it is not.
func (k *Checker) oracle(root graph.NodeID, down graph.Denied) ([]float64, bool) {
	if !k.OracleEnabled() {
		k.oracleNote.Do(func() {
			limit := k.MaxOracleNodes
			if limit == 0 {
				limit = DefaultMaxOracleNodes
			}
			msg := fmt.Sprintf("invariant: %s (%d nodes): O(n²) oracle checks skipped (gate %d nodes): "+
				"rtr/early-discard-wrong, rtr/route-unreachable, rtr/route-suboptimal, rtr/theorem2, "+
				"fcp/drop-premature, truth/delivered-irrecoverable, truth/delivery-beats-shortest; "+
				"structural checks still run",
				k.W.Topo.Name, k.W.Topo.G.NumNodes(), limit)
			if k.Log != nil {
				k.Log(msg)
			} else {
				fmt.Fprintln(os.Stderr, msg)
			}
		})
		return nil, false
	}
	return oracleDists(k.W.Topo.G, root, down), true
}

func (k *Checker) violation(c *sim.Case, check, format string, args ...any) Violation {
	return Violation{
		Check:  check,
		Repro:  Repro(k.W.Topo.Name, c),
		Detail: fmt.Sprintf(format, args...),
	}
}

// CheckCase re-runs all three protocols on one case deterministically
// (fresh RTR session, fresh FCP and MRC recoveries — all protocol code
// is deterministic given the case) and checks every applicable
// invariant. It returns all violations found, nil when clean.
func (k *Checker) CheckCase(c *sim.Case) []Violation {
	var vs []Violation
	vs = append(vs, k.checkRTRCase(c)...)
	vs = append(vs, k.checkFCPCase(c)...)
	if k.W.HasMRC() {
		vs = append(vs, k.checkMRCCase(c)...)
	}
	return vs
}

// CheckCases runs CheckCase over every case and returns the first
// violation as an error — the fail-fast form the sweep engine and the
// -check flag use. Nil when every case is clean.
func (k *Checker) CheckCases(cases []*sim.Case) error {
	for _, c := range cases {
		if vs := k.CheckCase(c); len(vs) > 0 {
			return vs[0]
		}
	}
	return nil
}

// CheckLoss verifies the loss model's packet-accounting conservation:
// in both columns (no recovery, with RTR), offered packets must equal
// delivered plus dropped, and the saved percentage must follow from
// the two drop totals.
func CheckLoss(res sim.LossResult) []Violation {
	var vs []Violation
	bad := func(check, format string, args ...any) {
		vs = append(vs, Violation{
			Check:  check,
			Repro:  fmt.Sprintf("topo=%s scenarios=%d", res.AS, res.Scenarios),
			Detail: fmt.Sprintf(format, args...),
		})
	}
	if !conserves(res.Offered, res.DeliveredNoRecovery, res.DroppedNoRecovery) {
		bad("loss/conservation-norec", "offered %.3f != delivered %.3f + dropped %.3f",
			res.Offered, res.DeliveredNoRecovery, res.DroppedNoRecovery)
	}
	if !conserves(res.Offered, res.DeliveredWithRTR, res.DroppedWithRTR) {
		bad("loss/conservation-rtr", "offered %.3f != delivered %.3f + dropped %.3f",
			res.Offered, res.DeliveredWithRTR, res.DroppedWithRTR)
	}
	if res.DroppedNoRecovery > 0 {
		want := 100 * (1 - res.DroppedWithRTR/res.DroppedNoRecovery)
		if !costEqual(res.SavedPercent, want) {
			bad("loss/saved-percent", "saved %.6f%%, drop totals imply %.6f%%", res.SavedPercent, want)
		}
	}
	return vs
}

func conserves(offered, delivered, dropped float64) bool {
	return costEqual(offered, delivered+dropped)
}

// costEqual compares accumulated float totals with a relative
// tolerance (mirrors the harness's grading tolerance: equal-cost sums
// can differ in summation order).
func costEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if b > scale {
		scale = b
	}
	if scale < 0 {
		scale = -scale
	}
	return d <= 1e-9*(1+scale)
}
