package invariant

import (
	"errors"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/sim"
)

// checkRTRCase runs RTR on the case and checks phase 1 (the collection
// walk), phase 2 (the recovery route and its forwarding), and the
// Theorem 2 grading against the ground-truth oracle.
func (k *Checker) checkRTRCase(c *sim.Case) []Violation {
	sess, err := k.W.RTR.NewSession(c.LV, c.Initiator)
	if err != nil {
		return nil // harness bug territory, surfaced as case Err elsewhere
	}
	col, err := sess.Collect(c.Trigger)
	if err != nil {
		// ErrNoLiveNeighbor is a legitimate outcome (fully cut-off
		// initiator); other collect errors surface as the case's Err in
		// the harness and are not invariant breaches per se. A collect
		// failure on a recoverable case is a breach only under
		// single-perimeter models: the phase-1 walk assumes one
		// connected failure region, and multi-perimeter generators
		// legitimately produce scenarios outside that assumption (the
		// perimeter classifier counts them instead of hiding them).
		if !errors.Is(err, core.ErrNoLiveNeighbor) && c.Recoverable && k.Profile.SinglePerimeter {
			return []Violation{k.violation(c, "rtr/collect-failed",
				"collection failed on a recoverable case: %v", err)}
		}
		return nil
	}
	vs := k.CheckCollect(c, col)
	rt, ok := sess.RecoveryPath(c.Dst)
	vs = append(vs, k.CheckRecoveryPath(c, col, rt, ok)...)
	if ok {
		vs = append(vs, k.CheckRTRForward(c, rt, sess.ForwardSourceRouted(rt))...)
	}
	return vs
}

// CheckCollect verifies the phase-1 walk against the paper's rules:
// edge-contiguity over live links starting and ending at the
// initiator, per-hop header snapshots consistent with the append-only
// fields, Rule 2 recording only real observed failures, the
// Constraint 1/2 cross_link exclusion honored at traversal time
// (modulo the documented allowIncoming and home-link amendments), and
// an exact backward retrace on truncation.
func (k *Checker) CheckCollect(c *sim.Case, col *core.CollectResult) []Violation {
	var vs []Violation
	g := k.W.Topo.G
	h := &col.Header
	recs := col.Walk.Records

	if h.Mode != routing.ModeCollect || h.RecInit != c.Initiator {
		vs = append(vs, k.violation(c, "rtr/walk-header",
			"header mode=%v rec_init=%d, want collect/%d", h.Mode, h.RecInit, c.Initiator))
	}
	if len(recs) == 0 {
		vs = append(vs, k.violation(c, "rtr/walk-empty", "collection produced no hops"))
		return vs
	}

	// Edge contiguity over live links, anchored at the initiator on
	// both ends (Theorem 1: the walk is a closed cycle at the
	// initiator; truncated walks retrace home).
	if recs[0].From != c.Initiator {
		vs = append(vs, k.violation(c, "rtr/walk-contiguous",
			"walk starts at %d, not the initiator %d", recs[0].From, c.Initiator))
	}
	if col.FirstHop != recs[0].To {
		vs = append(vs, k.violation(c, "rtr/walk-firsthop",
			"FirstHop=%d but first record goes to %d", col.FirstHop, recs[0].To))
	}
	for i, rec := range recs {
		if g.Link(rec.Link).Other(rec.From) != rec.To {
			vs = append(vs, k.violation(c, "rtr/walk-contiguous",
				"hop %d: link %d does not join %d-%d", i, rec.Link, rec.From, rec.To))
		}
		if i > 0 && recs[i-1].To != rec.From {
			vs = append(vs, k.violation(c, "rtr/walk-contiguous",
				"hop %d starts at %d, previous ended at %d", i, rec.From, recs[i-1].To))
		}
		if c.LV.NeighborUnreachable(rec.From, rec.Link) {
			vs = append(vs, k.violation(c, "rtr/walk-dead-link",
				"hop %d traverses unreachable link %d from %d", i, rec.Link, rec.From))
		}
	}
	if last := recs[len(recs)-1].To; last != c.Initiator {
		vs = append(vs, k.violation(c, "rtr/walk-open",
			"walk ends at %d, not the initiator %d", last, c.Initiator))
	}

	// Per-hop header snapshots: one per hop, consistent with the
	// append-only failed_link/cross_link fields.
	if len(col.FieldSizes) != len(recs) {
		vs = append(vs, k.violation(c, "rtr/fieldsizes",
			"%d field snapshots for %d hops", len(col.FieldSizes), len(recs)))
		return vs // downstream replay needs aligned snapshots
	}
	for i, fs := range col.FieldSizes {
		if fs.Failed > len(h.FailedLinks) || fs.Cross > len(h.CrossLinks) {
			vs = append(vs, k.violation(c, "rtr/fieldsizes",
				"hop %d snapshot (%d,%d) exceeds final (%d,%d)",
				i, fs.Failed, fs.Cross, len(h.FailedLinks), len(h.CrossLinks)))
		}
		if i > 0 && (fs.Failed < col.FieldSizes[i-1].Failed || fs.Cross < col.FieldSizes[i-1].Cross) {
			vs = append(vs, k.violation(c, "rtr/fieldsizes",
				"hop %d snapshot shrank: fields are append-only", i))
		}
	}
	if fs := col.FieldSizes[len(recs)-1]; fs.Failed != len(h.FailedLinks) || fs.Cross != len(h.CrossLinks) {
		vs = append(vs, k.violation(c, "rtr/fieldsizes",
			"final snapshot (%d,%d) != header (%d,%d)",
			fs.Failed, fs.Cross, len(h.FailedLinks), len(h.CrossLinks)))
	}

	// Rule 2: every collected failed link is a real failure observed by
	// a node the walk visited (initiators record nothing themselves;
	// their own unreachable links join the pruned view directly).
	visited := make(map[graph.NodeID]bool, len(recs)+1)
	visited[c.Initiator] = true
	for _, rec := range recs {
		visited[rec.To] = true
	}
	for _, id := range h.FailedLinks {
		l := g.Link(id)
		ok := (visited[l.A] && c.LV.NeighborUnreachable(l.A, id)) ||
			(visited[l.B] && c.LV.NeighborUnreachable(l.B, id))
		if !ok {
			vs = append(vs, k.violation(c, "rtr/failed-not-observed",
				"failed_link %d (%v) was never observed unreachable by a visited node", id, l))
		}
	}

	// cross_link entries are either Constraint 1 seeds (unreachable
	// initiator links that cross something) or Constraint 2 insertions
	// (links the walk traversed).
	traversed := make(map[graph.LinkID]bool, len(recs))
	for _, rec := range recs {
		traversed[rec.Link] = true
	}
	seed := k.crossSeedCount(c)
	for i, id := range h.CrossLinks {
		if i < seed {
			if !c.LV.NeighborUnreachable(c.Initiator, id) || len(k.W.CI.Crossing(id)) == 0 {
				vs = append(vs, k.violation(c, "rtr/cross-seed",
					"cross_link seed entry %d (link %d) is not an unreachable crossing link of the initiator", i, id))
			}
		} else if !traversed[id] {
			vs = append(vs, k.violation(c, "rtr/cross-untraversed",
				"cross_link entry %d (link %d) was neither seeded nor traversed", i, id))
		}
	}

	// Truncation retrace: the walk must retrace exactly backwards to
	// the initiator, stopping at the latest mid-walk initiator pass.
	forwardHops := len(recs)
	if col.Truncated {
		f := retraceSplit(recs, c.Initiator)
		if f < 0 {
			vs = append(vs, k.violation(c, "rtr/retrace-invalid",
				"truncated walk is not an exact backward retrace to the initiator"))
		} else {
			forwardHops = f
		}
	}

	// Constraint 1/2 replay: at each forward hop, the selected link
	// must not cross any link in cross_link as of selection time —
	// unless it is incident to the initiator (home-link amendment) or
	// is the incoming link (allowIncoming amendment). Retrace hops are
	// exempt: they replay just-traversed links without a sweep.
	for i := 0; i < forwardHops; i++ {
		crossN := seed
		if i > 0 {
			crossN = col.FieldSizes[i-1].Cross
		}
		if crossN > len(h.CrossLinks) {
			continue // already reported by the snapshot checks
		}
		l := recs[i].Link
		if !k.W.CI.CrossesAny(l, h.CrossLinks[:crossN]) {
			continue
		}
		homeLink := g.Link(l).HasEndpoint(c.Initiator)
		incoming := i > 0 && l == recs[i-1].Link
		if !homeLink && !incoming {
			vs = append(vs, k.violation(c, "rtr/cross-violation",
				"hop %d traverses link %d excluded by cross_link[:%d] (not home-link, not incoming)",
				i, l, crossN))
		}
	}
	return vs
}

// crossSeedCount recomputes the initiator's Constraint 1 seed: the
// number of its unreachable links that cross at least one other link.
func (k *Checker) crossSeedCount(c *sim.Case) int {
	n := 0
	for _, id := range c.LV.UnreachableLinks(c.Initiator) {
		if len(k.W.CI.Crossing(id)) > 0 {
			n++
		}
	}
	return n
}

// retraceSplit finds the forward/retrace split f of a truncated walk:
// recs[f:] must be exactly the reversal of recs[f-m:f] (m = len-f),
// ending with the reversal of the latest forward record leaving the
// initiator — mirroring the return construction hop for hop. Returns
// -1 when no split satisfies that.
func retraceSplit(recs []routing.HopRecord, initiator graph.NodeID) int {
	n := len(recs)
	for f := (n + 1) / 2; f <= n; f++ {
		m := n - f
		if m == 0 {
			// Truncated exactly at home: nothing was appended.
			if recs[n-1].To == initiator {
				return f
			}
			continue
		}
		ok := true
		for t := 0; t < m; t++ {
			fwd, back := recs[f-1-t], recs[f+t]
			if back.From != fwd.To || back.To != fwd.From || back.Link != fwd.Link {
				ok = false
				break
			}
		}
		if !ok || recs[f-m].From != initiator {
			continue
		}
		// The retrace stops at the first reversed record leaving the
		// initiator; an earlier stop inside the retrace would mean the
		// mirrored prefix contains another initiator departure.
		stopsEarly := false
		for t := 0; t < m-1; t++ {
			if recs[f-1-t].From == initiator {
				stopsEarly = true
				break
			}
		}
		if !stopsEarly {
			return f
		}
	}
	return -1
}

// CheckRecoveryPath verifies phase 2 against a fresh Dijkstra oracle
// over the initiator's pruned view (collected failed links plus the
// initiator's own unreachable links — links only, the initiator cannot
// tell failed nodes from failed links): the route is edge-contiguous
// from initiator to destination, loop-free, avoids every pruned link,
// carries a cost equal to its link costs, and is cost-optimal in that
// view; an early discard (!ok) must mean the pruned view really has no
// path.
func (k *Checker) CheckRecoveryPath(c *sim.Case, col *core.CollectResult, rt core.Route, ok bool) []Violation {
	var vs []Violation
	g := k.W.Topo.G
	pruned := newLinkSet(col.Header.FailedLinks, c.LV.UnreachableLinks(c.Initiator))
	dist, oracle := k.oracle(c.Initiator, pruned)

	if !ok {
		if oracle && dist[c.Dst] < inf {
			vs = append(vs, k.violation(c, "rtr/early-discard-wrong",
				"destination discarded as unreachable, but the pruned view has a path of cost %g", dist[c.Dst]))
		}
		return vs
	}
	if len(rt.Nodes) == 0 || rt.Nodes[0] != c.Initiator || rt.Nodes[len(rt.Nodes)-1] != c.Dst {
		vs = append(vs, k.violation(c, "rtr/route-endpoints",
			"route %v does not run initiator %d -> destination %d", rt.Nodes, c.Initiator, c.Dst))
		return vs
	}
	if len(rt.Links) != len(rt.Nodes)-1 {
		vs = append(vs, k.violation(c, "rtr/route-contiguous",
			"route has %d nodes but %d links", len(rt.Nodes), len(rt.Links)))
		return vs
	}
	seen := make(map[graph.NodeID]bool, len(rt.Nodes))
	cost := 0.0
	for i, l := range rt.Links {
		u, w := rt.Nodes[i], rt.Nodes[i+1]
		if g.Link(l).Other(u) != w {
			vs = append(vs, k.violation(c, "rtr/route-contiguous",
				"route link %d does not join %d-%d", l, u, w))
		}
		if pruned[l] {
			vs = append(vs, k.violation(c, "rtr/route-uses-collected",
				"route traverses link %d, which is in the collected failure set", l))
		}
		if seen[u] {
			vs = append(vs, k.violation(c, "rtr/route-loop", "route revisits node %d", u))
		}
		seen[u] = true
		cost += g.Link(l).CostFrom(u)
	}
	if !costEqual(cost, rt.Cost) {
		vs = append(vs, k.violation(c, "rtr/route-cost",
			"route cost %g but links sum to %g", rt.Cost, cost))
	}
	if !oracle {
		return vs
	}
	if dist[c.Dst] == inf {
		vs = append(vs, k.violation(c, "rtr/route-unreachable",
			"route returned but the pruned view has no path (oracle)"))
	} else if !costEqual(rt.Cost, dist[c.Dst]) {
		vs = append(vs, k.violation(c, "rtr/route-suboptimal",
			"route cost %g, pruned-view shortest is %g", rt.Cost, dist[c.Dst]))
	}
	return vs
}

// CheckRTRForward verifies phase-2 forwarding and the Theorem 2
// grading: the packet trajectory is a prefix of the route; a delivery
// is a real post-failure path (every link usable under ground truth)
// whose cost equals the true post-failure shortest path cost (Theorem
// 2: a failure-free recovery path is optimal); a drop names a link
// that really is unreachable at the dropping node.
func (k *Checker) CheckRTRForward(c *sim.Case, rt core.Route, fwd core.ForwardResult) []Violation {
	var vs []Violation
	g := k.W.Topo.G
	for i, rec := range fwd.Walk.Records {
		if i >= len(rt.Links) || rt.Links[i] != rec.Link || rt.Nodes[i] != rec.From {
			vs = append(vs, k.violation(c, "rtr/forward-prefix",
				"phase-2 hop %d (%d-%d over %d) is not the route's hop", i, rec.From, rec.To, rec.Link))
			return vs
		}
	}
	if !fwd.Delivered {
		if hops := fwd.Walk.Hops(); hops < len(rt.Links) {
			if fwd.DropAt != rt.Nodes[hops] || fwd.DropLink != rt.Links[hops] {
				vs = append(vs, k.violation(c, "rtr/drop-site",
					"drop reported at %d/link %d, trajectory stops at %d/link %d",
					fwd.DropAt, fwd.DropLink, rt.Nodes[hops], rt.Links[hops]))
			} else if !c.LV.NeighborUnreachable(fwd.DropAt, fwd.DropLink) {
				vs = append(vs, k.violation(c, "rtr/drop-live-link",
					"packet dropped at %d on link %d, which is reachable", fwd.DropAt, fwd.DropLink))
			}
		}
		return vs
	}
	if fwd.Walk.Hops() != len(rt.Links) {
		vs = append(vs, k.violation(c, "rtr/forward-prefix",
			"delivered with %d hops on a %d-link route", fwd.Walk.Hops(), len(rt.Links)))
		return vs
	}
	for _, l := range rt.Links {
		if !graph.Usable(g.Link(l), c.Scenario) {
			vs = append(vs, k.violation(c, "truth/delivery-dead-link",
				"delivered trajectory traverses link %d, failed in ground truth", l))
		}
	}
	truth, oracle := k.oracle(c.Initiator, c.Scenario)
	if !oracle {
		return vs
	}
	if truth[c.Dst] == inf {
		vs = append(vs, k.violation(c, "truth/delivered-irrecoverable",
			"delivered, but ground truth has no post-failure path"))
	} else if !costEqual(rt.Cost, truth[c.Dst]) {
		vs = append(vs, k.violation(c, "rtr/theorem2",
			"failure-free recovery path costs %g, true post-failure shortest is %g", rt.Cost, truth[c.Dst]))
	}
	return vs
}
