package invariant

import (
	"repro/internal/fcp"
	"repro/internal/graph"
	"repro/internal/sim"
)

// checkFCPCase runs the FCP baseline on the case and checks its
// carried-failure contract: the trajectory is contiguous over live
// links, never traverses a link it (eventually) carries as failed,
// every carried failure was really observed by a visited router, the
// final source route is loop-free, a delivery cannot beat the true
// post-failure shortest path, and a drop happens only when the
// dropping router's pruned view genuinely has no path left.
func (k *Checker) checkFCPCase(c *sim.Case) []Violation {
	res, err := k.W.FCP.Recover(c.LV, c.Initiator, c.Dst)
	if err != nil {
		// The only runtime error is the defensive recompute bound —
		// exceeding it means an iteration recorded no new failure, which
		// the carried-failure invariant forbids.
		return []Violation{k.violation(c, "fcp/recompute-bound", "%v", err)}
	}
	return k.CheckFCP(c, res)
}

// CheckFCP checks one FCP recovery result against the case. Exported
// so the mutation tests can tamper with a genuine result and prove
// each check fires.
func (k *Checker) CheckFCP(c *sim.Case, res fcp.Result) []Violation {
	var vs []Violation
	g := k.W.Topo.G
	recs := res.Walk.Records

	visited := make(map[graph.NodeID]bool, len(recs)+1)
	visited[c.Initiator] = true
	if !res.Delivered {
		visited[res.DropAt] = true // the dropping router records too
	}
	for i, rec := range recs {
		if g.Link(rec.Link).Other(rec.From) != rec.To {
			vs = append(vs, k.violation(c, "fcp/walk-contiguous",
				"hop %d: link %d does not join %d-%d", i, rec.Link, rec.From, rec.To))
		}
		from := c.Initiator
		if i > 0 {
			from = recs[i-1].To
		}
		if rec.From != from {
			vs = append(vs, k.violation(c, "fcp/walk-contiguous",
				"hop %d starts at %d, want %d", i, rec.From, from))
		}
		if c.LV.NeighborUnreachable(rec.From, rec.Link) {
			vs = append(vs, k.violation(c, "fcp/walk-dead-link",
				"hop %d traverses unreachable link %d from %d", i, rec.Link, rec.From))
		}
		visited[rec.To] = true
	}

	carried := newLinkSet(res.Header.FailedLinks)
	for _, rec := range recs {
		if carried[rec.Link] {
			vs = append(vs, k.violation(c, "fcp/walk-failed-link",
				"trajectory traverses link %d, which the packet carries as failed", rec.Link))
		}
	}
	for _, id := range res.Header.FailedLinks {
		l := g.Link(id)
		ok := (visited[l.A] && c.LV.NeighborUnreachable(l.A, id)) ||
			(visited[l.B] && c.LV.NeighborUnreachable(l.B, id))
		if !ok {
			vs = append(vs, k.violation(c, "fcp/failed-not-observed",
				"carried failed link %d (%v) was never observed unreachable by a visited router", id, l))
		}
	}

	// The final source route must be loop-free (each recomputation is a
	// shortest path; the overall trajectory may legitimately revisit
	// nodes across recomputations, the route within one must not).
	seen := make(map[graph.NodeID]bool, len(res.Header.SourceRoute))
	for _, v := range res.Header.SourceRoute {
		if seen[v] {
			vs = append(vs, k.violation(c, "fcp/route-loop",
				"final source route revisits node %d", v))
			break
		}
		seen[v] = true
	}

	if res.Delivered {
		if len(recs) == 0 || recs[len(recs)-1].To != c.Dst {
			vs = append(vs, k.violation(c, "fcp/delivery-wrong-dst",
				"delivered, but the trajectory does not end at destination %d", c.Dst))
			return vs
		}
		truth, oracle := k.oracle(c.Initiator, c.Scenario)
		if !oracle {
			return vs
		}
		if truth[c.Dst] == inf {
			vs = append(vs, k.violation(c, "truth/delivered-irrecoverable",
				"delivered, but ground truth has no post-failure path"))
			return vs
		}
		cost := 0.0
		for _, rec := range recs {
			cost += g.Link(rec.Link).CostFrom(rec.From)
		}
		if cost < truth[c.Dst] && !costEqual(cost, truth[c.Dst]) {
			vs = append(vs, k.violation(c, "truth/delivery-beats-shortest",
				"delivered over cost %g, below the true post-failure shortest %g", cost, truth[c.Dst]))
		}
		return vs
	}

	// Drop completeness: FCP drops only when the dropping router's
	// pruned view (pre-failure graph minus every carried failure) has no
	// path. Carried failures are all real, so this also proves the
	// destination is truly unreachable from the dropping router.
	if dist, oracle := k.oracle(res.DropAt, carried); oracle && dist[c.Dst] < inf {
		vs = append(vs, k.violation(c, "fcp/drop-premature",
			"dropped at %d, but its pruned view still has a path of cost %g", res.DropAt, dist[c.Dst]))
	}
	return vs
}
