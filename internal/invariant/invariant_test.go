package invariant

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/failure"
	"repro/internal/sim"
	"repro/internal/topology"
)

// worldCache shares one World per topology across the whole test
// binary — world construction (MRC's k*n trees in particular) is the
// expensive part, the checks themselves are cheap.
var (
	worldMu    sync.Mutex
	worldCache = map[string]*sim.World{}
)

func worldFor(t testing.TB, name string) *sim.World {
	worldMu.Lock()
	defer worldMu.Unlock()
	if w, ok := worldCache[name]; ok {
		return w
	}
	w, err := sim.NewWorld(name, 1)
	if err != nil {
		t.Fatalf("NewWorld(%s): %v", name, err)
	}
	worldCache[name] = w
	return w
}

// TestCheckCaseAllTopologies is the property harness: every bundled
// Table II topology, random failure circles, every deduplicated case —
// recoverable and irrecoverable — must pass every invariant.
func TestCheckCaseAllTopologies(t *testing.T) {
	scenarios := 6
	maxCases := 400
	if testing.Short() {
		scenarios, maxCases = 2, 100
	}
	for _, name := range topology.ASNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := worldFor(t, name)
			k := New(w)
			rng := rand.New(rand.NewSource(7))
			checked := 0
			for s := 0; s < scenarios && checked < maxCases; s++ {
				sc := failure.RandomScenario(w.Topo, rng)
				rec, irr := sim.CasesFromScenario(w, sc)
				for _, c := range append(rec, irr...) {
					if checked >= maxCases {
						break
					}
					checked++
					if vs := k.CheckCase(c); len(vs) > 0 {
						t.Fatalf("%v (first of %d violations)", vs[0], len(vs))
					}
				}
			}
			if checked == 0 {
				t.Fatal("no cases generated")
			}
			t.Logf("%d cases clean", checked)
		})
	}
}

// TestCheckLossConservation runs the real loss experiment and checks
// packet accounting conserves, then proves each loss check fires on a
// perturbed result.
func TestCheckLossConservation(t *testing.T) {
	w := worldFor(t, "AS1239")
	cfg := sim.DefaultLossConfig()
	cfg.Scenarios = 5
	res := sim.PacketLoss(w, cfg)
	if res.Offered <= 0 {
		t.Fatalf("loss experiment offered no traffic: %+v", res)
	}
	if vs := CheckLoss(res); len(vs) > 0 {
		t.Fatalf("real loss result violates conservation: %v", vs[0])
	}

	perturb := []struct {
		check  string
		mutate func(r *sim.LossResult)
	}{
		{"loss/conservation-norec", func(r *sim.LossResult) { r.DroppedNoRecovery += 123 }},
		{"loss/conservation-rtr", func(r *sim.LossResult) { r.DeliveredWithRTR += 123 }},
		{"loss/saved-percent", func(r *sim.LossResult) { r.SavedPercent += 1 }},
	}
	for _, p := range perturb {
		mut := res
		p.mutate(&mut)
		if !hasCheck(CheckLoss(mut), p.check) {
			t.Errorf("perturbation did not fire %s: got %v", p.check, CheckLoss(mut))
		}
	}
}

func hasCheck(vs []Violation, id string) bool {
	for _, v := range vs {
		if v.Check == id {
			return true
		}
	}
	return false
}

// TestViolationError pins the repro string format the sweep surfaces on
// failure: it must name the topology, the case triple, and the failure
// instance in failure.ParseInstance's grammar, so any generator's
// scenarios minimize to an actionable repro.
func TestViolationError(t *testing.T) {
	w := worldFor(t, "AS1239")
	k := New(w)
	rng := rand.New(rand.NewSource(3))
	sc := failure.Default().Generate(w.Topo, rng)
	rec, irr := sim.CasesFromScenario(w, sc)
	cases := append(rec, irr...)
	if len(cases) == 0 {
		t.Skip("scenario produced no cases")
	}
	v := k.violation(cases[0], "test/check", "detail %d", 42)
	got := v.Error()
	for _, want := range []string{"invariant test/check", "detail 42", "topo=AS1239", "init=", "failure=disk(", "gen=disk"} {
		if !contains(got, want) {
			t.Errorf("violation error %q missing %q", got, want)
		}
	}
	// The failure= clause must round-trip through ParseInstance.
	desc := cases[0].Scenario.Desc()
	re, err := failure.ParseInstance(w.Topo, desc)
	if err != nil {
		t.Fatalf("repro descriptor %q does not parse: %v", desc, err)
	}
	if re.NumFailedLinks() != cases[0].Scenario.NumFailedLinks() ||
		re.NumFailedNodes() != cases[0].Scenario.NumFailedNodes() {
		t.Fatalf("repro descriptor %q rebuilt a different mask", desc)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestOracleGate: past MaxOracleNodes the quadratic oracle checks are
// skipped (with exactly one logged notice), the structural checks
// still run clean, and a negative gate forces the oracle back on.
func TestOracleGate(t *testing.T) {
	w := worldFor(t, "AS1239")
	rng := rand.New(rand.NewSource(11))
	sc := failure.Default().Generate(w.Topo, rng)
	rec, irr := sim.CasesFromScenario(w, sc)
	cases := append(rec, irr...)
	if len(cases) == 0 {
		t.Skip("scenario produced no cases")
	}

	var logs []string
	k := New(w)
	k.MaxOracleNodes = 1 // well below AS1239's 52 nodes
	k.Log = func(msg string) { logs = append(logs, msg) }
	if k.OracleEnabled() {
		t.Fatal("oracle must be gated off below the node count")
	}
	if err := k.CheckCases(cases); err != nil {
		t.Fatalf("structural checks failed with oracle gated: %v", err)
	}
	if len(logs) != 1 {
		t.Fatalf("oracle skip logged %d times, want exactly once: %v", len(logs), logs)
	}
	for _, want := range []string{"AS1239", "rtr/theorem2", "skipped"} {
		if !contains(logs[0], want) {
			t.Errorf("skip notice %q missing %q", logs[0], want)
		}
	}

	forced := New(w)
	forced.MaxOracleNodes = -1
	if !forced.OracleEnabled() {
		t.Fatal("negative gate must force the oracle on")
	}
	if err := forced.CheckCases(cases); err != nil {
		t.Fatalf("forced-oracle checks failed: %v", err)
	}
}
