package invariant

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fcp"
	"repro/internal/graph"
	"repro/internal/mrc"
	"repro/internal/routing"
	"repro/internal/sim"
)

// The mutation tests prove every invariant check actually fires:
// each takes a genuine, clean protocol artifact, applies one targeted
// corruption, and asserts the specific check catches it. A check no
// mutation can trip is a check that verifies nothing.

// rtrArtifacts is one clean RTR run the mutations start from.
type rtrArtifacts struct {
	c   *sim.Case
	col *core.CollectResult
	rt  core.Route
	fwd core.ForwardResult
}

// gatherRTR scans random scenarios for clean RTR artifacts with the
// structural properties the mutations need: a delivered multi-link
// route, a truncated walk with a retrace of at least two hops, and a
// cross-seeded header.
func gatherRTR(t *testing.T, w *sim.World) (delivered, truncated, seeded rtrArtifacts) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	var haveDel, haveTrunc, haveSeed bool
	k := New(w)
	for s := 0; s < 400 && !(haveDel && haveTrunc && haveSeed); s++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, _ := sim.CasesFromScenario(w, sc)
		for _, c := range rec {
			sess, err := w.RTR.NewSession(c.LV, c.Initiator)
			if err != nil {
				continue
			}
			col, err := sess.Collect(c.Trigger)
			if err != nil {
				continue
			}
			rt, ok := sess.RecoveryPath(c.Dst)
			if !ok {
				continue
			}
			fwd := sess.ForwardSourceRouted(rt)
			a := rtrArtifacts{c: c, col: col, rt: rt, fwd: fwd}
			if !haveDel && fwd.Delivered && len(rt.Links) >= 2 && len(col.Walk.Records) >= 3 {
				delivered, haveDel = a, true
			}
			if !haveTrunc && col.Truncated {
				if f := retraceSplit(col.Walk.Records, c.Initiator); f >= 0 && len(col.Walk.Records)-f >= 2 {
					truncated, haveTrunc = a, true
				}
			}
			if !haveSeed && k.crossSeedCount(c) > 0 && len(col.Header.CrossLinks) > 0 && len(col.Walk.Records) >= 1 {
				seeded, haveSeed = a, true
			}
		}
	}
	if !haveDel || !haveTrunc || !haveSeed {
		t.Fatalf("could not gather RTR artifacts: delivered=%v truncated=%v seeded=%v", haveDel, haveTrunc, haveSeed)
	}
	return delivered, truncated, seeded
}

func cloneCollect(col *core.CollectResult) *core.CollectResult {
	cp := *col
	cp.Header.FailedLinks = append([]graph.LinkID(nil), col.Header.FailedLinks...)
	cp.Header.CrossLinks = append([]graph.LinkID(nil), col.Header.CrossLinks...)
	cp.Walk.Records = append([]routing.HopRecord(nil), col.Walk.Records...)
	cp.FieldSizes = append([]core.FieldSizes(nil), col.FieldSizes...)
	return &cp
}

func cloneRoute(rt core.Route) core.Route {
	rt.Nodes = append([]graph.NodeID(nil), rt.Nodes...)
	rt.Links = append([]graph.LinkID(nil), rt.Links...)
	return rt
}

func requireCheck(t *testing.T, vs []Violation, id string) {
	t.Helper()
	if !hasCheck(vs, id) {
		t.Errorf("mutation did not fire %s; got %d violations: %v", id, len(vs), vs)
	}
}

func TestMutationsCollect(t *testing.T) {
	w := worldFor(t, "AS1239")
	k := New(w)
	del, trunc, seeded := gatherRTR(t, w)
	g := w.Topo.G

	t.Run("clean-passes", func(t *testing.T) {
		for _, a := range []rtrArtifacts{del, trunc, seeded} {
			if vs := k.CheckCollect(a.c, a.col); len(vs) > 0 {
				t.Fatalf("clean artifact flagged: %v", vs[0])
			}
		}
	})
	t.Run("rtr/walk-header", func(t *testing.T) {
		cp := cloneCollect(del.col)
		cp.Header.RecInit = del.c.Dst
		requireCheck(t, k.CheckCollect(del.c, cp), "rtr/walk-header")
	})
	t.Run("rtr/walk-empty", func(t *testing.T) {
		cp := cloneCollect(del.col)
		cp.Walk.Records, cp.FieldSizes = nil, nil
		requireCheck(t, k.CheckCollect(del.c, cp), "rtr/walk-empty")
	})
	t.Run("rtr/walk-contiguous", func(t *testing.T) {
		cp := cloneCollect(del.col)
		cp.Walk.Records[0], cp.Walk.Records[1] = cp.Walk.Records[1], cp.Walk.Records[0]
		requireCheck(t, k.CheckCollect(del.c, cp), "rtr/walk-contiguous")
	})
	t.Run("rtr/walk-firsthop", func(t *testing.T) {
		cp := cloneCollect(del.col)
		cp.FirstHop = del.c.Initiator // first hop is a neighbor, never the initiator
		requireCheck(t, k.CheckCollect(del.c, cp), "rtr/walk-firsthop")
	})
	t.Run("rtr/walk-dead-link", func(t *testing.T) {
		cp := cloneCollect(del.col)
		cp.Walk.Records[0] = routing.HopRecord{
			From: del.c.Initiator,
			To:   g.Link(del.c.Trigger).Other(del.c.Initiator),
			Link: del.c.Trigger, // the trigger link is unreachable by construction
		}
		requireCheck(t, k.CheckCollect(del.c, cp), "rtr/walk-dead-link")
	})
	t.Run("rtr/walk-open", func(t *testing.T) {
		cp := cloneCollect(del.col)
		cp.Walk.Records = cp.Walk.Records[:len(cp.Walk.Records)-1]
		cp.FieldSizes = cp.FieldSizes[:len(cp.FieldSizes)-1]
		requireCheck(t, k.CheckCollect(del.c, cp), "rtr/walk-open")
	})
	t.Run("rtr/fieldsizes", func(t *testing.T) {
		cp := cloneCollect(del.col)
		cp.FieldSizes[len(cp.FieldSizes)-1].Failed++
		requireCheck(t, k.CheckCollect(del.c, cp), "rtr/fieldsizes")
	})
	t.Run("rtr/failed-not-observed", func(t *testing.T) {
		cp := cloneCollect(del.col)
		// The first walked link is live — recording it as failed is a lie.
		cp.Header.FailedLinks = append(cp.Header.FailedLinks, cp.Walk.Records[0].Link)
		cp.FieldSizes[len(cp.FieldSizes)-1].Failed = len(cp.Header.FailedLinks)
		requireCheck(t, k.CheckCollect(del.c, cp), "rtr/failed-not-observed")
	})
	t.Run("rtr/cross-seed", func(t *testing.T) {
		cp := cloneCollect(seeded.col)
		// Seed slots must hold unreachable crossing links of the
		// initiator; the first walked link is live.
		cp.Header.CrossLinks[0] = cp.Walk.Records[0].Link
		requireCheck(t, k.CheckCollect(seeded.c, cp), "rtr/cross-seed")
	})
	t.Run("rtr/cross-untraversed", func(t *testing.T) {
		cp := cloneCollect(del.col)
		traversed := map[graph.LinkID]bool{}
		for _, rec := range cp.Walk.Records {
			traversed[rec.Link] = true
		}
		var alien graph.LinkID
		found := false
		for i := 0; i < g.NumLinks(); i++ {
			if !traversed[graph.LinkID(i)] {
				alien, found = graph.LinkID(i), true
				break
			}
		}
		if !found {
			t.Skip("walk traversed every link")
		}
		cp.Header.CrossLinks = append(cp.Header.CrossLinks, alien)
		cp.FieldSizes[len(cp.FieldSizes)-1].Cross = len(cp.Header.CrossLinks)
		requireCheck(t, k.CheckCollect(del.c, cp), "rtr/cross-untraversed")
	})
	t.Run("rtr/retrace-invalid", func(t *testing.T) {
		cp := cloneCollect(trunc.col)
		n := len(cp.Walk.Records)
		cp.Walk.Records[n-1], cp.Walk.Records[n-2] = cp.Walk.Records[n-2], cp.Walk.Records[n-1]
		requireCheck(t, k.CheckCollect(trunc.c, cp), "rtr/retrace-invalid")
	})
	t.Run("rtr/cross-violation", func(t *testing.T) {
		// Pretend a link crossing hop i's selected link was already in
		// cross_link from the start: the replay must reject the hop.
		for _, a := range []rtrArtifacts{del, seeded} {
			recs := a.col.Walk.Records
			n := len(recs)
			if a.col.Truncated {
				n = retraceSplit(recs, a.c.Initiator)
			}
			for i := 1; i < n; i++ {
				l := recs[i].Link
				if g.Link(l).HasEndpoint(a.c.Initiator) || l == recs[i-1].Link {
					continue
				}
				xs := w.CI.Crossing(l)
				if len(xs) == 0 {
					continue
				}
				cp := cloneCollect(a.col)
				cp.Header.CrossLinks = append(cp.Header.CrossLinks, xs[0])
				for j := range cp.FieldSizes {
					cp.FieldSizes[j].Cross = len(cp.Header.CrossLinks)
				}
				requireCheck(t, k.CheckCollect(a.c, cp), "rtr/cross-violation")
				return
			}
		}
		t.Skip("no forward hop with a crossing link found")
	})
}

func TestMutationsRecoveryPath(t *testing.T) {
	w := worldFor(t, "AS1239")
	k := New(w)
	del, _, _ := gatherRTR(t, w)

	t.Run("clean-passes", func(t *testing.T) {
		if vs := k.CheckRecoveryPath(del.c, del.col, del.rt, true); len(vs) > 0 {
			t.Fatalf("clean route flagged: %v", vs[0])
		}
	})
	t.Run("rtr/early-discard-wrong", func(t *testing.T) {
		// The destination is provably reachable (the clean run routed to
		// it); claiming early discard must be caught.
		requireCheck(t, k.CheckRecoveryPath(del.c, del.col, core.Route{}, false), "rtr/early-discard-wrong")
	})
	t.Run("rtr/route-endpoints", func(t *testing.T) {
		rt := cloneRoute(del.rt)
		rt.Nodes[0] = del.c.Dst
		requireCheck(t, k.CheckRecoveryPath(del.c, del.col, rt, true), "rtr/route-endpoints")
	})
	t.Run("rtr/route-contiguous", func(t *testing.T) {
		rt := cloneRoute(del.rt)
		rt.Links = rt.Links[:len(rt.Links)-1]
		requireCheck(t, k.CheckRecoveryPath(del.c, del.col, rt, true), "rtr/route-contiguous")
	})
	t.Run("rtr/route-uses-collected", func(t *testing.T) {
		// Falsely collect the route's own first link: the route now
		// traverses a link its own header says is down.
		cp := cloneCollect(del.col)
		cp.Header.FailedLinks = append(cp.Header.FailedLinks, del.rt.Links[0])
		requireCheck(t, k.CheckRecoveryPath(del.c, cp, del.rt, true), "rtr/route-uses-collected")
	})
	t.Run("rtr/route-loop", func(t *testing.T) {
		rt := cloneRoute(del.rt)
		// Splice in an immediate back-and-forth over the first link:
		// contiguity holds, but node 0 repeats.
		n0, n1, l0 := rt.Nodes[0], rt.Nodes[1], rt.Links[0]
		rt.Nodes = append([]graph.NodeID{n0, n1, n0}, rt.Nodes[1:]...)
		rt.Links = append([]graph.LinkID{l0, l0}, rt.Links...)
		requireCheck(t, k.CheckRecoveryPath(del.c, del.col, rt, true), "rtr/route-loop")
	})
	t.Run("rtr/route-cost-and-suboptimal", func(t *testing.T) {
		rt := cloneRoute(del.rt)
		rt.Cost++
		vs := k.CheckRecoveryPath(del.c, del.col, rt, true)
		requireCheck(t, vs, "rtr/route-cost")
		requireCheck(t, vs, "rtr/route-suboptimal")
	})
	t.Run("rtr/route-unreachable", func(t *testing.T) {
		// Falsely collect every live link of the destination: the pruned
		// view then has no path, yet a route is still returned.
		cp := cloneCollect(del.col)
		for _, he := range w.Topo.G.Adj(del.c.Dst) {
			cp.Header.FailedLinks = append(cp.Header.FailedLinks, he.Link)
		}
		requireCheck(t, k.CheckRecoveryPath(del.c, cp, del.rt, true), "rtr/route-unreachable")
	})
}

func TestMutationsRTRForward(t *testing.T) {
	w := worldFor(t, "AS1239")
	k := New(w)
	g := w.Topo.G
	del, _, _ := gatherRTR(t, w)

	cloneFwd := func(f core.ForwardResult) core.ForwardResult {
		f.Walk.Records = append([]routing.HopRecord(nil), f.Walk.Records...)
		return f
	}

	t.Run("clean-passes", func(t *testing.T) {
		if vs := k.CheckRTRForward(del.c, del.rt, del.fwd); len(vs) > 0 {
			t.Fatalf("clean forward flagged: %v", vs[0])
		}
	})
	t.Run("rtr/forward-prefix", func(t *testing.T) {
		fwd := cloneFwd(del.fwd)
		fwd.Walk.Records[0].From = del.c.Dst
		requireCheck(t, k.CheckRTRForward(del.c, del.rt, fwd), "rtr/forward-prefix")
	})
	t.Run("rtr/drop-site", func(t *testing.T) {
		fwd := cloneFwd(del.fwd)
		fwd.Walk.Records = fwd.Walk.Records[:len(fwd.Walk.Records)-1]
		fwd.Delivered = false
		fwd.DropAt = del.rt.Nodes[0] // trajectory actually stops later
		fwd.DropLink = del.rt.Links[0]
		requireCheck(t, k.CheckRTRForward(del.c, del.rt, fwd), "rtr/drop-site")
	})
	t.Run("rtr/drop-live-link", func(t *testing.T) {
		fwd := cloneFwd(del.fwd)
		hops := len(fwd.Walk.Records) - 1
		fwd.Walk.Records = fwd.Walk.Records[:hops]
		fwd.Delivered = false
		fwd.DropAt = del.rt.Nodes[hops] // consistent drop site...
		fwd.DropLink = del.rt.Links[hops]
		requireCheck(t, k.CheckRTRForward(del.c, del.rt, fwd), "rtr/drop-live-link") // ...but the link is live
	})
	t.Run("rtr/theorem2", func(t *testing.T) {
		rt := cloneRoute(del.rt)
		rt.Cost++
		requireCheck(t, k.CheckRTRForward(del.c, rt, del.fwd), "rtr/theorem2")
	})
	t.Run("truth/delivery-dead-link", func(t *testing.T) {
		// Fabricate a "delivery" straight over the failed trigger link.
		c := del.c
		nh := g.Link(c.Trigger).Other(c.Initiator)
		rt := core.Route{
			Nodes: []graph.NodeID{c.Initiator, nh},
			Links: []graph.LinkID{c.Trigger},
			Cost:  g.Link(c.Trigger).CostFrom(c.Initiator),
		}
		fwd := core.ForwardResult{Delivered: true}
		fwd.Walk.Append(routing.HopRecord{From: c.Initiator, To: nh, Link: c.Trigger})
		requireCheck(t, k.CheckRTRForward(c, rt, fwd), "truth/delivery-dead-link")
	})
	t.Run("truth/delivered-irrecoverable", func(t *testing.T) {
		// Find an irrecoverable case and fabricate a delivery claim.
		rng := rand.New(rand.NewSource(33))
		for s := 0; s < 200; s++ {
			sc := failure.RandomScenario(w.Topo, rng)
			_, irr := sim.CasesFromScenario(w, sc)
			for _, c := range irr {
				nh := g.Link(c.Trigger).Other(c.Initiator)
				rt := core.Route{
					Nodes: []graph.NodeID{c.Initiator, nh},
					Links: []graph.LinkID{c.Trigger},
					Cost:  g.Link(c.Trigger).CostFrom(c.Initiator),
				}
				fwd := core.ForwardResult{Delivered: true}
				fwd.Walk.Append(routing.HopRecord{From: c.Initiator, To: nh, Link: c.Trigger})
				requireCheck(t, k.CheckRTRForward(c, rt, fwd), "truth/delivered-irrecoverable")
				return
			}
		}
		t.Skip("no irrecoverable case found")
	})
}

func TestMutationsFCP(t *testing.T) {
	w := worldFor(t, "AS1239")
	k := New(w)
	g := w.Topo.G

	// Gather one delivered (>= 3 hops) and one dropped clean FCP result.
	var delC, dropC *sim.Case
	var delR, dropR fcp.Result
	rng := rand.New(rand.NewSource(5))
	for s := 0; s < 400 && (delC == nil || dropC == nil); s++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, irr := sim.CasesFromScenario(w, sc)
		for _, c := range append(rec, irr...) {
			res, err := w.FCP.Recover(c.LV, c.Initiator, c.Dst)
			if err != nil {
				continue
			}
			if res.Delivered && res.Walk.Hops() >= 3 && delC == nil {
				delC, delR = c, res
			}
			if !res.Delivered && dropC == nil {
				dropC, dropR = c, res
			}
		}
	}
	if delC == nil || dropC == nil {
		t.Fatalf("could not gather FCP artifacts: delivered=%v dropped=%v", delC != nil, dropC != nil)
	}
	clone := func(r fcp.Result) fcp.Result {
		r.Walk.Records = append([]routing.HopRecord(nil), r.Walk.Records...)
		r.Header.FailedLinks = append([]graph.LinkID(nil), r.Header.FailedLinks...)
		r.Header.SourceRoute = append([]graph.NodeID(nil), r.Header.SourceRoute...)
		return r
	}

	t.Run("clean-passes", func(t *testing.T) {
		if vs := k.CheckFCP(delC, delR); len(vs) > 0 {
			t.Fatalf("clean delivered result flagged: %v", vs[0])
		}
		if vs := k.CheckFCP(dropC, dropR); len(vs) > 0 {
			t.Fatalf("clean dropped result flagged: %v", vs[0])
		}
	})
	t.Run("fcp/walk-contiguous", func(t *testing.T) {
		r := clone(delR)
		r.Walk.Records[0], r.Walk.Records[1] = r.Walk.Records[1], r.Walk.Records[0]
		requireCheck(t, k.CheckFCP(delC, r), "fcp/walk-contiguous")
	})
	t.Run("fcp/walk-dead-link", func(t *testing.T) {
		r := clone(delR)
		r.Walk.Records[0] = routing.HopRecord{
			From: delC.Initiator,
			To:   g.Link(delC.Trigger).Other(delC.Initiator),
			Link: delC.Trigger,
		}
		requireCheck(t, k.CheckFCP(delC, r), "fcp/walk-dead-link")
	})
	t.Run("fcp/walk-failed-link", func(t *testing.T) {
		r := clone(delR)
		r.Header.FailedLinks = append(r.Header.FailedLinks, r.Walk.Records[0].Link)
		requireCheck(t, k.CheckFCP(delC, r), "fcp/walk-failed-link")
	})
	t.Run("fcp/failed-not-observed", func(t *testing.T) {
		r := clone(delR)
		visited := map[graph.NodeID]bool{delC.Initiator: true}
		for _, rec := range r.Walk.Records {
			visited[rec.To] = true
		}
		for i := 0; i < g.NumLinks(); i++ {
			l := g.Link(graph.LinkID(i))
			if !visited[l.A] && !visited[l.B] {
				r.Header.FailedLinks = append(r.Header.FailedLinks, l.ID)
				requireCheck(t, k.CheckFCP(delC, r), "fcp/failed-not-observed")
				return
			}
		}
		t.Skip("walk visited an endpoint of every link")
	})
	t.Run("fcp/route-loop", func(t *testing.T) {
		r := clone(delR)
		if len(r.Header.SourceRoute) == 0 {
			t.Fatal("delivered result carries no source route")
		}
		r.Header.SourceRoute = append(r.Header.SourceRoute, r.Header.SourceRoute[0])
		requireCheck(t, k.CheckFCP(delC, r), "fcp/route-loop")
	})
	t.Run("fcp/delivery-wrong-dst", func(t *testing.T) {
		r := clone(delR)
		r.Walk.Records = r.Walk.Records[:len(r.Walk.Records)-1]
		requireCheck(t, k.CheckFCP(delC, r), "fcp/delivery-wrong-dst")
	})
	t.Run("truth/delivery-beats-shortest", func(t *testing.T) {
		r := clone(delR)
		// Excising a middle hop shortens the claimed delivery below the
		// true shortest path (all link costs are positive).
		recs := r.Walk.Records
		r.Walk.Records = append(recs[:1], recs[2:]...)
		requireCheck(t, k.CheckFCP(delC, r), "truth/delivery-beats-shortest")
	})
	t.Run("fcp/drop-premature", func(t *testing.T) {
		r := clone(dropR)
		// Forget every carried failure: the pruned view is the clean
		// (connected) graph, which certainly has a path — the drop claim
		// no longer holds up.
		r.Header.FailedLinks = nil
		requireCheck(t, k.CheckFCP(dropC, r), "fcp/drop-premature")
	})
}

func TestMutationsMRC(t *testing.T) {
	w := worldFor(t, "AS1239")
	k := New(w)
	g := w.Topo.G

	var delC, dropC, unprotC *sim.Case
	var delR, dropR mrc.Result
	rng := rand.New(rand.NewSource(9))
	for s := 0; s < 400 && (delC == nil || dropC == nil || unprotC == nil); s++ {
		sc := failure.RandomScenario(w.Topo, rng)
		rec, irr := sim.CasesFromScenario(w, sc)
		for _, c := range append(rec, irr...) {
			res, err := w.MRC.Recover(c.LV, c.Initiator, c.Dst, c.NextHop, c.Trigger)
			if err != nil {
				continue
			}
			if res.Delivered && res.Walk.Hops() >= 3 && delC == nil {
				delC, delR = c, res
			}
			if !res.Delivered && res.Walk.Hops() >= 1 && dropC == nil {
				dropC, dropR = c, res
			}
			want := w.MRC.ConfigOf(c.NextHop)
			if c.NextHop == c.Dst {
				want = w.MRC.ConfigOf(c.Initiator)
			}
			if want == mrc.Unisolated && unprotC == nil {
				unprotC = c
			}
		}
	}
	if delC == nil || dropC == nil {
		t.Fatalf("could not gather MRC artifacts: delivered=%v dropped=%v", delC != nil, dropC != nil)
	}
	clone := func(r mrc.Result) mrc.Result {
		r.Walk.Records = append([]routing.HopRecord(nil), r.Walk.Records...)
		return r
	}

	t.Run("clean-passes", func(t *testing.T) {
		if vs := k.CheckMRC(delC, delR); len(vs) > 0 {
			t.Fatalf("clean delivered result flagged: %v", vs[0])
		}
		if vs := k.CheckMRC(dropC, dropR); len(vs) > 0 {
			t.Fatalf("clean dropped result flagged: %v", vs[0])
		}
	})
	t.Run("mrc/config-selection", func(t *testing.T) {
		r := clone(delR)
		r.Config = (r.Config + 1) % w.MRC.Configs()
		requireCheck(t, k.CheckMRC(delC, r), "mrc/config-selection")
	})
	t.Run("mrc/unprotected-forwarded", func(t *testing.T) {
		if unprotC == nil {
			t.Skip("no case with an unprotected suspected element")
		}
		r := mrc.Result{Config: mrc.Unisolated, Delivered: true}
		requireCheck(t, k.CheckMRC(unprotC, r), "mrc/unprotected-forwarded")
	})
	t.Run("mrc/walk-contiguous", func(t *testing.T) {
		r := clone(delR)
		r.Walk.Records[0], r.Walk.Records[1] = r.Walk.Records[1], r.Walk.Records[0]
		requireCheck(t, k.CheckMRC(delC, r), "mrc/walk-contiguous")
	})
	t.Run("mrc/walk-dead-link-and-exclude", func(t *testing.T) {
		r := clone(delR)
		r.Walk.Records[0] = routing.HopRecord{
			From: delC.Initiator,
			To:   g.Link(delC.Trigger).Other(delC.Initiator),
			Link: delC.Trigger,
		}
		vs := k.CheckMRC(delC, r)
		requireCheck(t, vs, "mrc/walk-dead-link")
		requireCheck(t, vs, "mrc/exclude-violated")
	})
	t.Run("mrc/walk-loop", func(t *testing.T) {
		r := clone(delR)
		last := r.Walk.Records[len(r.Walk.Records)-1]
		r.Walk.Append(routing.HopRecord{From: last.To, To: last.From, Link: last.Link})
		requireCheck(t, k.CheckMRC(delC, r), "mrc/walk-loop")
	})
	t.Run("mrc/isolated-link", func(t *testing.T) {
		// The reverted Route bug in one mutation: forward over a link
		// both of whose endpoints are isolated in the chosen config.
		for i := 0; i < g.NumLinks(); i++ {
			l := g.Link(graph.LinkID(i))
			c0 := w.MRC.ConfigOf(l.A)
			if c0 == mrc.Unisolated || w.MRC.ConfigOf(l.B) != c0 {
				continue
			}
			r := mrc.Result{Config: c0, DropAt: l.B}
			r.Walk.Append(routing.HopRecord{From: l.A, To: l.B, Link: l.ID})
			requireCheck(t, k.CheckMRC(delC, r), "mrc/isolated-link")
			return
		}
		t.Skip("no link with both endpoints in one configuration")
	})
	t.Run("mrc/restricted-and-transit", func(t *testing.T) {
		// A restricted link used mid-route (hop > 0, isolated endpoint
		// is not the destination) violates both the restricted-use and
		// the no-isolated-transit rules.
		first := delR.Walk.Records[0]
		for i := 0; i < g.NumLinks(); i++ {
			l := g.Link(graph.LinkID(i))
			cfg := delR.Config
			aIso := w.MRC.ConfigOf(l.A) == cfg
			bIso := w.MRC.ConfigOf(l.B) == cfg
			if aIso == bIso {
				continue
			}
			from, iso := l.A, l.B
			if aIso {
				from, iso = l.B, l.A
			}
			if iso == delC.Dst {
				continue
			}
			r := mrc.Result{Config: cfg, DropAt: iso}
			r.Walk.Append(first)
			r.Walk.Append(routing.HopRecord{From: from, To: iso, Link: l.ID})
			vs := k.CheckMRC(delC, r)
			requireCheck(t, vs, "mrc/restricted-misuse")
			requireCheck(t, vs, "mrc/isolated-transit")
			return
		}
		t.Skip("no restricted link found for the delivered config")
	})
	t.Run("mrc/delivery-wrong-dst", func(t *testing.T) {
		r := clone(delR)
		r.Walk.Records = r.Walk.Records[:len(r.Walk.Records)-1]
		requireCheck(t, k.CheckMRC(delC, r), "mrc/delivery-wrong-dst")
	})
	t.Run("mrc/drop-site", func(t *testing.T) {
		r := clone(dropR)
		r.DropAt = dropC.Initiator // trajectory stopped elsewhere
		requireCheck(t, k.CheckMRC(dropC, r), "mrc/drop-site")
	})
}
