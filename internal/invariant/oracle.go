package invariant

import (
	"math"

	"repro/internal/graph"
)

// inf is the oracle's unreachable distance.
var inf = math.Inf(1)

// oracleDists computes forward shortest-path distances from root over
// g minus the denied elements. It is a deliberately independent
// oracle: a heapless O(n²) Dijkstra sharing no code with internal/spt
// (no workspace pooling, no canonical tie-break, no dense fast path),
// so agreement with the engine is evidence, not tautology. Edge
// relaxation pays the directional cost away from the settled node,
// matching forward-tree semantics.
func oracleDists(g *graph.Graph, root graph.NodeID, down graph.Denied) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = inf
	}
	if down.NodeDown(root) {
		return dist
	}
	dist[root] = 0
	done := make([]bool, n)
	for {
		u := -1
		best := inf
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				best, u = dist[v], v
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		if down.NodeDown(graph.NodeID(u)) {
			continue
		}
		for _, he := range g.Adj(graph.NodeID(u)) {
			if down.LinkDown(he.Link) || down.NodeDown(he.Neighbor) {
				continue
			}
			if d := dist[u] + he.Cost; d < dist[he.Neighbor] {
				dist[he.Neighbor] = d
			}
		}
	}
}

// linkSet is a Denied view failing exactly a set of links — the shape
// of RTR's pruned view (the initiator cannot tell failed nodes from
// failed links, so phase 2 prunes links only) and of FCP's carried
// failure set.
type linkSet map[graph.LinkID]bool

func (s linkSet) NodeDown(graph.NodeID) bool    { return false }
func (s linkSet) LinkDown(id graph.LinkID) bool { return s[id] }

func newLinkSet(lists ...[]graph.LinkID) linkSet {
	s := make(linkSet)
	for _, l := range lists {
		for _, id := range l {
			s[id] = true
		}
	}
	return s
}
