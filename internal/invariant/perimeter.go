package invariant

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Profile selects which model-dependent invariants a Checker enforces.
// The oracle checks (route optimality, walk well-formedness, Theorem 2
// grading, packet conservation) hold for every failure model and are
// always on; the profile only gates checks that encode an assumption a
// particular generator may violate.
type Profile struct {
	// SinglePerimeter asserts the failure model produces one connected
	// failure region, the shape RTR's phase-1 perimeter walk was
	// designed for (the paper's single disk). When set, a collection
	// failure on a recoverable case is an invariant breach
	// (rtr/collect-failed); when unset — multi-disk, SRLG, cascade
	// models — such failures are legitimate model-induced outcomes and
	// are counted by ClassifyPerimeter instead.
	SinglePerimeter bool
}

// DefaultProfile is the paper's model: one disk, one perimeter.
func DefaultProfile() Profile { return Profile{SinglePerimeter: true} }

// ProfileFor derives the checking profile for a failure generator from
// its MultiPerimeter declaration; generators that do not declare are
// checked under the strict single-perimeter profile.
func ProfileFor(g failure.Generator) Profile {
	if mp, ok := g.(failure.MultiPerimeter); ok && mp.MultiPerimeter() {
		return Profile{SinglePerimeter: false}
	}
	return DefaultProfile()
}

// PerimeterReport counts, per classified case, how RTR's
// single-perimeter assumption interacts with a failure scenario's
// actual cluster structure. It quantifies — rather than hides — where
// the phase-1 walk breaks down on disconnected failure regions.
type PerimeterReport struct {
	// Cases is the number of cases classified.
	Cases int
	// MultiCluster counts cases whose ground-truth failure splits into
	// more than one failure cluster (see failure.Scenario.Clusters).
	MultiCluster int
	// MaxClusters is the largest cluster count seen in any case.
	MaxClusters int
	// CollectFailed counts multi-cluster cases where phase-1
	// collection failed outright (excluding the legitimate
	// no-live-neighbor outcome).
	CollectFailed int
	// NoLiveNeighbor counts multi-cluster cases where the initiator
	// had no live neighbor at all (fully cut off — legitimate under
	// any model). MultiCluster = CollectFailed + NoLiveNeighbor +
	// AllSeen + WalkMissed.
	NoLiveNeighbor int
	// AllSeen counts multi-cluster cases where the walk plus the
	// initiator's own observations still covered every cluster (at
	// least one pruned link per cluster) — RTR had complete
	// cluster-level information despite the disconnection.
	AllSeen int
	// WalkMissed counts multi-cluster cases where at least one cluster
	// contributed nothing to the pruned view. It splits exactly into
	// MissBenign + DropUnseen + DropSeen.
	WalkMissed int
	// ClustersMissed is the total number of unseen clusters across all
	// WalkMissed cases.
	ClustersMissed int
	// MissBenign counts WalkMissed cases whose outcome was unaffected:
	// the packet was delivered anyway, or the destination was
	// discarded (a discard is always truth-correct — the pruned view
	// has a superset of the true post-failure edges).
	MissBenign int
	// DropUnseen counts WalkMissed cases where the recovery packet was
	// dropped on a link belonging to a cluster the walk never saw —
	// the concrete failure mode of the single-perimeter assumption.
	DropUnseen int
	// DropSeen counts WalkMissed cases dropped on a link of a cluster
	// the walk did partially see (incomplete collection within a seen
	// cluster, aggravated by the disconnection).
	DropSeen int
}

// Add accumulates o into r.
func (r *PerimeterReport) Add(o PerimeterReport) {
	r.Cases += o.Cases
	r.MultiCluster += o.MultiCluster
	if o.MaxClusters > r.MaxClusters {
		r.MaxClusters = o.MaxClusters
	}
	r.CollectFailed += o.CollectFailed
	r.NoLiveNeighbor += o.NoLiveNeighbor
	r.AllSeen += o.AllSeen
	r.WalkMissed += o.WalkMissed
	r.ClustersMissed += o.ClustersMissed
	r.MissBenign += o.MissBenign
	r.DropUnseen += o.DropUnseen
	r.DropSeen += o.DropSeen
}

// String implements fmt.Stringer with a one-line summary.
func (r PerimeterReport) String() string {
	return fmt.Sprintf(
		"perimeter: %d cases, %d multi-cluster (max %d clusters): %d collect-failed, %d cut-off, %d all-seen, %d missed (%d clusters unseen: %d benign, %d dropped-on-unseen, %d dropped-on-seen)",
		r.Cases, r.MultiCluster, r.MaxClusters, r.CollectFailed, r.NoLiveNeighbor, r.AllSeen,
		r.WalkMissed, r.ClustersMissed, r.MissBenign, r.DropUnseen, r.DropSeen)
}

// ClassifyPerimeter classifies every case's interaction with RTR's
// single-perimeter walk assumption. Cases whose scenario has at most
// one failure cluster satisfy the assumption and only count toward
// Cases; multi-cluster cases are re-run through RTR and classified by
// whether the walk covered every cluster and, if not, whether the miss
// changed the outcome.
func (k *Checker) ClassifyPerimeter(cases []*sim.Case) PerimeterReport {
	var r PerimeterReport
	for _, c := range cases {
		k.classifyPerimeterCase(c, &r)
	}
	return r
}

func (k *Checker) classifyPerimeterCase(c *sim.Case, r *PerimeterReport) {
	r.Cases++
	clusters := c.Scenario.Clusters()
	if len(clusters) > r.MaxClusters {
		r.MaxClusters = len(clusters)
	}
	if len(clusters) <= 1 {
		return // single perimeter: the walk's assumption holds
	}
	r.MultiCluster++

	sess, err := k.W.RTR.NewSession(c.LV, c.Initiator)
	if err != nil {
		r.CollectFailed++
		return
	}
	col, err := sess.Collect(c.Trigger)
	if err != nil {
		if errors.Is(err, core.ErrNoLiveNeighbor) {
			r.NoLiveNeighbor++
		} else {
			r.CollectFailed++
		}
		return
	}

	// A cluster is "seen" when at least one of its links made it into
	// the initiator's pruned view: collected by the walk (Rule 2) or
	// observed directly by the initiator.
	pruned := newLinkSet(col.Header.FailedLinks, c.LV.UnreachableLinks(c.Initiator))
	clusterOf := make(map[graph.LinkID]int)
	for ci, cl := range clusters {
		for _, id := range cl {
			clusterOf[id] = ci
		}
	}
	seen := make([]bool, len(clusters))
	for id := range pruned {
		if ci, ok := clusterOf[id]; ok {
			seen[ci] = true
		}
	}
	missed := 0
	for _, s := range seen {
		if !s {
			missed++
		}
	}
	if missed == 0 {
		r.AllSeen++
		return
	}
	r.WalkMissed++
	r.ClustersMissed += missed

	rt, ok := sess.RecoveryPath(c.Dst)
	if !ok {
		// Discarding is always truth-correct: the pruned view keeps a
		// superset of the true post-failure edges, so no pruned-view
		// path implies no true path.
		r.MissBenign++
		return
	}
	fwd := sess.ForwardSourceRouted(rt)
	if fwd.Delivered {
		r.MissBenign++ // Theorem 2: a delivered recovery path is optimal
		return
	}
	if ci, known := clusterOf[fwd.DropLink]; known && !seen[ci] {
		r.DropUnseen++
	} else {
		r.DropSeen++
	}
}
