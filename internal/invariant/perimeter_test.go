package invariant

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/seed"
	"repro/internal/sim"
)

// TestProfileFor pins the generator → checking-profile mapping: only
// single-region models keep the strict single-perimeter profile.
func TestProfileFor(t *testing.T) {
	wantSingle := map[string]bool{
		"disk": true, "cut": true, "link": true,
		"disks": false, "srlg": false, "cascade": false, "transient": false,
	}
	for _, g := range failure.AllDefaults() {
		p := ProfileFor(g)
		if p.SinglePerimeter != wantSingle[g.Name()] {
			t.Errorf("ProfileFor(%s).SinglePerimeter = %v, want %v",
				g.Name(), p.SinglePerimeter, wantSingle[g.Name()])
		}
	}
	if !DefaultProfile().SinglePerimeter {
		t.Error("the default profile must be the paper's single-perimeter model")
	}
}

// TestClassifyPerimeterSingleDisk: under the paper's model every case
// has at most one cluster, so the classifier reports nothing.
func TestClassifyPerimeterSingleDisk(t *testing.T) {
	w := worldFor(t, "AS1239")
	k := New(w)
	var total PerimeterReport
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(seed.Derive(51, "perim-single") + int64(trial)))
		sc := failure.Default().Generate(w.Topo, rng)
		rec, irr := sim.CasesFromScenario(w, sc)
		total.Add(k.ClassifyPerimeter(append(rec, irr...)))
	}
	if total.MultiCluster != 0 {
		t.Errorf("single-disk scenarios produced %d multi-cluster cases", total.MultiCluster)
	}
	if total.MaxClusters > 1 {
		t.Errorf("single-disk MaxClusters = %d", total.MaxClusters)
	}
}

// TestClassifyPerimeterMultiDisk: the classifier's categories
// partition the multi-cluster cases exactly, and disjoint multi-disk
// scenarios do produce multi-cluster cases to classify.
func TestClassifyPerimeterMultiDisk(t *testing.T) {
	w := worldFor(t, "AS1239")
	k := New(w).WithProfile(Profile{SinglePerimeter: false})
	g := failure.MultiDiskGen{K: 3, Min: 80, Max: 160, Disjoint: true}
	var total PerimeterReport
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(seed.Derive(53, "perim-multi") + int64(trial)))
		sc := g.Generate(w.Topo, rng)
		rec, irr := sim.CasesFromScenario(w, sc)
		r := k.ClassifyPerimeter(append(rec, irr...))
		if got := r.CollectFailed + r.NoLiveNeighbor + r.AllSeen + r.WalkMissed; got != r.MultiCluster {
			t.Fatalf("categories sum to %d, MultiCluster is %d (%s)", got, r.MultiCluster, r)
		}
		if got := r.MissBenign + r.DropUnseen + r.DropSeen; got != r.WalkMissed {
			t.Fatalf("miss outcomes sum to %d, WalkMissed is %d (%s)", got, r.WalkMissed, r)
		}
		if r.WalkMissed > 0 && r.ClustersMissed < r.WalkMissed {
			t.Fatalf("%d missed cases but only %d missed clusters", r.WalkMissed, r.ClustersMissed)
		}
		total.Add(r)
	}
	if total.MultiCluster == 0 {
		t.Fatal("disjoint three-disk scenarios never produced a multi-cluster case")
	}
	if total.String() == "" {
		t.Fatal("report must stringify")
	}
	t.Logf("AS1239 disks:k=3,disjoint: %s", total)
}

// TestMultiPerimeterProfileGatesCollectFailed: the oracle sweep over a
// multi-perimeter generator must be clean under its derived profile —
// collect failures on disconnected perimeters are classified, not
// reported as invariant breaches.
func TestMultiPerimeterProfileGatesCollectFailed(t *testing.T) {
	w := worldFor(t, "AS1239")
	g := failure.MultiDiskGen{K: 3, Min: 80, Max: 160, Disjoint: true}
	k := New(w).WithProfile(ProfileFor(g))
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(seed.Derive(59, "perim-gate") + int64(trial)))
		sc := g.Generate(w.Topo, rng)
		rec, irr := sim.CasesFromScenario(w, sc)
		for _, c := range append(rec, irr...) {
			for _, v := range k.CheckCase(c) {
				t.Fatalf("trial %d: %v", trial, v)
			}
		}
	}
}
