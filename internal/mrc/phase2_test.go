package mrc

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

// TestRouteGoalMatchesTrees is the contract test for MRC's goal-engine
// route path: a goal-directed MRC (no precomputed tree matrix, every
// Route answered on demand by a reverse A* over the configuration's
// isolation overlay) must reproduce the tree-backed Route verbatim —
// same nodes, same links, same ok — for every configuration, source,
// and destination, with and without an excluded first hop.
func TestRouteGoalMatchesTrees(t *testing.T) {
	for _, as := range []string{"AS1239", "AS3320"} {
		t.Run(as, func(t *testing.T) {
			t.Parallel()
			topo := topology.GenerateAS(as, 3)
			tables := routing.ComputeTables(topo)
			trees, err := NewWarm(topo, 0, tables)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []spt.Engine{spt.EngineAStar, spt.EngineALT} {
				var heur spt.Heuristic
				switch eng {
				case spt.EngineAStar:
					heur = spt.NewGeomHeuristic(topo.G, topo.Coords)
				case spt.EngineALT:
					heur = spt.NewALT(topo.G, 0, nil)
				}
				goal, err := NewWarmPhase2(topo, 0, tables, eng, heur)
				if err != nil {
					t.Fatal(err)
				}
				if goal.Phase2() != eng {
					t.Fatalf("Phase2() = %v, want %v", goal.Phase2(), eng)
				}
				if trees.Configs() != goal.Configs() {
					t.Fatalf("config counts differ: %d vs %d", trees.Configs(), goal.Configs())
				}
				n := topo.G.NumNodes()
				compared := 0
				for c := 0; c < trees.Configs(); c++ {
					for s := 0; s < n; s++ {
						src := graph.NodeID(s)
						// Stride destinations to keep the full sweep fast
						// while still hitting backbone and isolated sources
						// in every configuration.
						for d := s % 3; d < n; d += 3 {
							dst := graph.NodeID(d)
							wantN, wantL, wantOK := trees.Route(c, src, dst, 0, false)
							gotN, gotL, gotOK := goal.Route(c, src, dst, 0, false)
							if wantOK != gotOK || !equalNodes(wantN, gotN) || !equalLinks(wantL, gotL) {
								t.Fatalf("%s Route(c=%d, %d->%d) differs:\ntrees: %v %v %v\ngoal:  %v %v %v",
									eng, c, src, dst, wantN, wantL, wantOK, gotN, gotL, gotOK)
							}
							compared++
							if wantOK && len(wantL) > 0 {
								// Exclude the canonical first hop: both
								// implementations must agree on the outcome.
								ex := wantL[0]
								wantN, wantL, wantOK = trees.Route(c, src, dst, ex, true)
								gotN, gotL, gotOK = goal.Route(c, src, dst, ex, true)
								if wantOK != gotOK || !equalNodes(wantN, gotN) || !equalLinks(wantL, gotL) {
									t.Fatalf("%s Route(c=%d, %d->%d, exclude=%d) differs:\ntrees: %v %v %v\ngoal:  %v %v %v",
										eng, c, src, dst, ex, wantN, wantL, wantOK, gotN, gotL, gotOK)
								}
							}
						}
					}
				}
				if compared == 0 {
					t.Fatal("no routes compared")
				}
				t.Logf("%s: %d (config, src, dst) routes identical under %s", as, compared, eng)
			}
		})
	}
}

func equalNodes(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalLinks(a, b []graph.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
