package mrc

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

// TestRouteExcludeContract is the table-driven audit of Route's
// exclude/haveExclude contract, covering both the backbone-source and
// isolated-source branches — including the isolated-link rule this
// audit flushed out: a link between two nodes isolated in the same
// configuration carries no traffic in it, even as a first hop straight
// to the destination.
func TestRouteExcludeContract(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 3)
	m := build(t, topo)
	g := topo.G
	n := g.NumNodes()

	// Fixture search: a backbone source and an isolated source for some
	// configuration, with a destination far enough away to have a route.
	findBackbone := func() (c int, src, dst graph.NodeID, firstLink graph.LinkID) {
		for v := 0; v < n; v++ {
			src = graph.NodeID(v)
			for c = 0; c < m.Configs(); c++ {
				if m.ConfigOf(src) == c {
					continue
				}
				for d := 0; d < n; d++ {
					dst = graph.NodeID(d)
					if dst == src {
						continue
					}
					if _, links, ok := m.Route(c, src, dst, 0, false); ok && len(links) > 0 {
						return c, src, dst, links[0]
					}
				}
			}
		}
		t.Fatal("no backbone route found")
		return
	}
	findIsolated := func() (c int, src, dst graph.NodeID, firstLink graph.LinkID) {
		for v := 0; v < n; v++ {
			src = graph.NodeID(v)
			c = m.ConfigOf(src)
			if c == Unisolated {
				continue
			}
			for d := 0; d < n; d++ {
				dst = graph.NodeID(d)
				if dst == src {
					continue
				}
				if _, links, ok := m.Route(c, src, dst, 0, false); ok && len(links) > 0 {
					return c, src, dst, links[0]
				}
			}
		}
		t.Fatal("no isolated-source route found")
		return
	}

	t.Run("self-delivery-ignores-isolation", func(t *testing.T) {
		// src == dst short-circuits before any isolation logic — this is
		// why the old isolated-branch re-check of src == dst was dead.
		for v := 0; v < n; v++ {
			src := graph.NodeID(v)
			for c := 0; c < m.Configs(); c++ {
				nodes, links, ok := m.Route(c, src, src, 0, true)
				if !ok || len(nodes) != 1 || nodes[0] != src || len(links) != 0 {
					t.Fatalf("Route(c=%d, %d, %d) = (%v, %v, %v), want trivial self route",
						c, src, src, nodes, links, ok)
				}
			}
		}
	})

	t.Run("backbone-exclude-rejects-first-hop", func(t *testing.T) {
		c, src, dst, first := findBackbone()
		if _, _, ok := m.Route(c, src, dst, first, true); ok {
			// The contract is reject, not reroute: the caller (Recover)
			// treats a first hop over the observed failure as no route.
			nodes, links, _ := m.Route(c, src, dst, first, true)
			t.Fatalf("route %v (links %v) returned despite excluded first hop", nodes, links)
		}
	})

	t.Run("backbone-have-exclude-false-ignores-link", func(t *testing.T) {
		c, src, dst, first := findBackbone()
		nodes, links, ok := m.Route(c, src, dst, first, false)
		if !ok || links[0] != first {
			t.Fatalf("haveExclude=false must ignore exclude: got (%v, %v, %v)", nodes, links, ok)
		}
	})

	t.Run("isolated-source-leaves-over-restricted-link", func(t *testing.T) {
		c, src, dst, first := findIsolated()
		nodes, links, ok := m.Route(c, src, dst, 0, false)
		if !ok {
			t.Fatal("fixture route vanished")
		}
		if nodes[0] != src || links[0] != first {
			t.Fatalf("unexpected route head: %v / %v", nodes, links)
		}
		if far := g.Link(links[0]).Other(src); m.ConfigOf(far) == c && far != dst {
			t.Fatalf("restricted first hop lands on node %d, still isolated in %d", far, c)
		}
		// Interior nodes are backbone nodes.
		for _, v := range nodes[1 : len(nodes)-1] {
			if m.ConfigOf(v) == c {
				t.Fatalf("route %v transits node %d isolated in config %d", nodes, v, c)
			}
		}
	})

	t.Run("isolated-source-honors-exclude", func(t *testing.T) {
		c, src, dst, first := findIsolated()
		nodes, links, ok := m.Route(c, src, dst, first, true)
		if ok && links[0] == first {
			t.Fatalf("route %v leaves over the excluded link %d", nodes, first)
		}
	})

	t.Run("isolated-isolated-link-unusable-even-to-dst", func(t *testing.T) {
		// The audited branch: src and dst isolated in the same
		// configuration, directly adjacent. The connecting link is an
		// isolated link of that configuration, so the route must not use
		// it — not even as a single-hop delivery (the tree already
		// treats it as down; the restricted first-hop scan must too).
		found := false
		for i := 0; i < g.NumLinks() && !found; i++ {
			l := g.Link(graph.LinkID(i))
			c := m.ConfigOf(l.A)
			if c == Unisolated || m.ConfigOf(l.B) != c {
				continue
			}
			found = true
			for _, pair := range [][2]graph.NodeID{{l.A, l.B}, {l.B, l.A}} {
				src, dst := pair[0], pair[1]
				nodes, links, ok := m.Route(c, src, dst, 0, false)
				if !ok {
					continue // no alternative route: acceptable
				}
				for _, used := range links {
					if used == l.ID {
						t.Fatalf("route %v (src %d -> dst %d in config %d) uses the isolated link %v",
							nodes, src, dst, c, l)
					}
				}
				if far := g.Link(links[0]).Other(src); m.ConfigOf(far) == c && far != dst {
					t.Fatalf("first hop of %v lands on isolated node %d", nodes, far)
				}
			}
		}
		if !found {
			t.Skip("no link with both endpoints isolated in one configuration")
		}
	})
}
