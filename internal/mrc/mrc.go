// Package mrc implements the Multiple Routing Configurations baseline
// (Kvalbein et al., INFOCOM 2006): a proactive recovery scheme that
// precomputes a small set of backup configurations such that every
// node and every link is isolated in at least one of them while each
// configuration's backbone stays connected. On a failure, the detecting
// router switches the packet to the configuration isolating the failed
// element and forwards it there. MRC handles any single failure, but a
// path and its backup configurations can fail together under
// large-scale area failures — which is exactly what the paper's
// Table III quantifies.
package mrc

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

// DefaultConfigs is the number of backup configurations the
// constructor starts from; it grows automatically if the topology
// cannot isolate every node with that many.
const DefaultConfigs = 5

// MRC is the precomputed configuration set for one topology.
type MRC struct {
	topo *topology.Topology
	k    int
	// isolCfg[v] is the configuration in which node v is isolated.
	isolCfg []int
	// clean, when non-nil, holds the pre-failure routing tables of the
	// same topology; buildTrees warm-starts each configuration tree
	// from the matching clean reverse tree (see NewWarm).
	clean *routing.Tables
	// trees[c][d] is the reverse shortest path tree toward d in
	// configuration c's usable graph (backbone links plus d's own
	// restricted links). nil (never built) under a goal-directed
	// phase-2 engine: Route then answers each query on demand.
	trees [][]*spt.Tree
	// phase2 selects the route engine; heur backs the goal-directed
	// engines. See NewWarmPhase2.
	phase2 spt.Engine
	heur   spt.Heuristic
}

// Unisolated marks a node no configuration can isolate: an
// articulation point, whose removal would disconnect every backbone.
// MRC cannot protect against its failure — nor can any scheme, since
// its failure partitions the network.
const Unisolated = -1

// New builds MRC state for topo with k configurations (DefaultConfigs
// if k <= 0). Articulation points are left unisolated.
func New(topo *topology.Topology, k int) (*MRC, error) {
	if k <= 0 {
		k = DefaultConfigs
	}
	if k < 2 {
		return nil, errors.New("mrc: need at least 2 configurations")
	}
	m := &MRC{topo: topo, k: k, isolCfg: assign(topo.G, k)}
	m.buildTrees()
	return m, nil
}

// NewWarm is New with a warm start: tables must be the pre-failure
// routing tables of topo (computed under graph.Nothing). Each of the
// k*n configuration trees is then seeded from the matching clean
// reverse tree and updated with the delete-only incremental recompute
// — a configuration's isolation overlay only removes elements relative
// to the clean graph, so the result is bit-identical to the cold build
// while skipping the untouched backbone subtrees. If tables is nil,
// built for a different topology, or computed under failures, the
// constructor silently falls back to the cold build.
func NewWarm(topo *topology.Topology, k int, tables *routing.Tables) (*MRC, error) {
	return NewWarmPhase2(topo, k, tables, spt.EngineDijkstra, nil)
}

// NewWarmPhase2 is NewWarm with a phase-2 route engine selector. Under
// the default engine it is exactly NewWarm: the full k*n matrix of
// per-configuration reverse trees is precomputed (warm-started from
// tables when compatible). Under a goal-directed engine the matrix is
// never built — the dominant cost of MRC construction disappears — and
// Route answers each (config, src, dst) query with a reverse A* search
// over the configuration's isolation overlay, using heur as the
// admissible heuristic (clean-graph lower bounds stay valid because an
// isolation overlay only deletes elements). Routes are bit-identical
// to the precomputed-tree engine.
func NewWarmPhase2(topo *topology.Topology, k int, tables *routing.Tables, e spt.Engine, heur spt.Heuristic) (*MRC, error) {
	if k <= 0 {
		k = DefaultConfigs
	}
	if k < 2 {
		return nil, errors.New("mrc: need at least 2 configurations")
	}
	m := &MRC{topo: topo, k: k, isolCfg: assign(topo.G, k), phase2: e, heur: heur}
	if tables != nil && tables.Topology() == topo && tables.Under() == graph.Nothing {
		m.clean = tables
	}
	if e == spt.EngineDijkstra {
		m.buildTrees()
	}
	return m, nil
}

// Phase2 returns the configured phase-2 route engine.
func (m *MRC) Phase2() spt.Engine { return m.phase2 }

// Configs returns the number of configurations in use.
func (m *MRC) Configs() int { return m.k }

// ConfigOf returns the configuration in which v is isolated, or
// Unisolated for articulation points.
func (m *MRC) ConfigOf(v graph.NodeID) int { return m.isolCfg[v] }

// UnprotectedNodes returns the nodes MRC cannot protect: those no
// configuration isolates. They are (a subset of) the topology's
// articulation points — single points of failure that partition the
// network, against which no recovery scheme helps.
func (m *MRC) UnprotectedNodes() []graph.NodeID {
	var out []graph.NodeID
	for v, c := range m.isolCfg {
		if c == Unisolated {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// assign greedily picks an isolation configuration for every node such
// that each configuration's backbone stays connected and every
// isolated node keeps a restricted link into the backbone. Nodes that
// fit no configuration (articulation points) stay Unisolated.
func assign(g *graph.Graph, k int) []int {
	n := g.NumNodes()
	isol := make([]int, n)
	for i := range isol {
		isol[i] = Unisolated
	}
	for v := 0; v < n; v++ {
		for attempt := 0; attempt < k; attempt++ {
			c := (v + attempt) % k
			if canIsolate(g, isol, graph.NodeID(v), c) {
				isol[v] = c
				break
			}
		}
	}
	return isol
}

// canIsolate checks that assigning v to configuration c keeps c's
// backbone connected, leaves v a backbone neighbor, and does not strip
// any neighbor already isolated in c of its last restricted link.
func canIsolate(g *graph.Graph, isol []int, v graph.NodeID, c int) bool {
	// v needs at least one neighbor outside configuration c for its
	// restricted link.
	hasRestricted := false
	for _, h := range g.Adj(v) {
		if isol[h.Neighbor] != c && h.Neighbor != v {
			hasRestricted = true
			break
		}
	}
	if !hasRestricted {
		return false
	}
	// Neighbors of v isolated in c must keep a restricted link other
	// than the one to v.
	for _, h := range g.Adj(v) {
		w := h.Neighbor
		if isol[w] != c {
			continue
		}
		keeps := false
		for _, h2 := range g.Adj(w) {
			if h2.Neighbor != v && isol[h2.Neighbor] != c {
				keeps = true
				break
			}
		}
		if !keeps {
			return false
		}
	}
	// The backbone of c (nodes not isolated in c, links between them)
	// must remain connected after adding v to c.
	n := g.NumNodes()
	inBackbone := func(u graph.NodeID) bool {
		return u != v && isol[u] != c
	}
	var start graph.NodeID
	count := 0
	for u := 0; u < n; u++ {
		if inBackbone(graph.NodeID(u)) {
			if count == 0 {
				start = graph.NodeID(u)
			}
			count++
		}
	}
	if count == 0 {
		return false // isolating v would empty the backbone
	}
	seen := make([]bool, n)
	stack := []graph.NodeID{start}
	seen[start] = true
	visited := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.Adj(u) {
			w := h.Neighbor
			if seen[w] || !inBackbone(w) {
				continue
			}
			seen[w] = true
			visited++
			stack = append(stack, w)
		}
	}
	return visited == count
}

// cfgDenied is the graph.Denied view of one configuration for routing
// toward one destination: links with an isolated endpoint are unusable
// unless that endpoint is the destination itself (restricted last hop)
// or the link's isolated endpoint is the packet source handled in
// Route.
type cfgDenied struct {
	m   *MRC
	c   int
	dst graph.NodeID
}

var _ graph.Denied = cfgDenied{}

func (d cfgDenied) NodeDown(v graph.NodeID) bool {
	return d.m.isolCfg[v] == d.c && v != d.dst
}

func (d cfgDenied) LinkDown(id graph.LinkID) bool {
	l := d.m.topo.G.Link(id)
	if d.m.isolCfg[l.A] == d.c && l.A != d.dst {
		return true
	}
	return d.m.isolCfg[l.B] == d.c && l.B != d.dst
}

func (m *MRC) buildTrees() {
	n := m.topo.G.NumNodes()
	m.trees = make([][]*spt.Tree, m.k)
	for c := 0; c < m.k; c++ {
		m.trees[c] = make([]*spt.Tree, n)
	}
	// The k*n per-configuration trees are independent of one another
	// (isolCfg is read-only by now): build the whole matrix in parallel.
	// With clean tables available, each tree warm-starts from the
	// destination's clean reverse tree: the isolation overlay is
	// delete-only relative to the clean graph, so the incremental
	// recompute yields the bit-identical tree for a fraction of the work.
	par.For(m.k*n, 0, func(i int) {
		c, d := i/n, graph.NodeID(i%n)
		den := cfgDenied{m: m, c: c, dst: d}
		if m.clean != nil {
			m.trees[c][d] = spt.Recompute(m.topo.G, m.clean.DestTree(d), graph.Nothing, den)
		} else {
			m.trees[c][d] = spt.ComputeReverse(m.topo.G, d, den)
		}
	})
}

// Route returns the path from src to dst in configuration c. The
// exclude link — typically the failed link the caller just observed —
// is only consulted when haveExclude is true: a backbone route whose
// first hop uses it is rejected (ok=false), and an isolated source
// will not leave over it. When haveExclude is false, exclude is
// ignored entirely and any value may be passed. When src itself is
// isolated in c, the route leaves src over its best restricted link
// into the backbone first.
func (m *MRC) Route(c int, src, dst graph.NodeID, exclude graph.LinkID, haveExclude bool) ([]graph.NodeID, []graph.LinkID, bool) {
	if src == dst {
		return []graph.NodeID{src}, nil, true
	}
	if m.phase2 != spt.EngineDijkstra {
		return m.routeGoal(c, src, dst, exclude, haveExclude)
	}
	tree := m.trees[c][dst]
	if m.isolCfg[src] != c {
		nodes, ok := tree.PathNodes(src)
		if !ok {
			return nil, nil, false
		}
		links, _ := tree.PathLinks(src)
		if haveExclude && len(links) > 0 && links[0] == exclude {
			return nil, nil, false
		}
		return nodes, links, true
	}
	// Isolated source: leave over the best restricted link first.
	bestCost := spt.Inf
	var bestHe graph.Halfedge
	found := false
	for _, he := range m.topo.G.Adj(src) {
		if haveExclude && he.Link == exclude {
			continue
		}
		if m.isolCfg[he.Neighbor] == c {
			// Still isolated — even when the neighbor is dst itself: a
			// link between two nodes isolated in the same configuration
			// is an isolated link and carries no traffic in c (the tree
			// already treats it as down; the first hop must too).
			continue
		}
		c2, ok := tree.CostTo(he.Neighbor)
		if !ok {
			continue
		}
		if c2+he.Cost < bestCost {
			bestCost = c2 + he.Cost
			bestHe = he
			found = true
		}
	}
	if !found {
		return nil, nil, false
	}
	nodes, ok := tree.PathNodes(bestHe.Neighbor)
	if !ok {
		return nil, nil, false
	}
	links, _ := tree.PathLinks(bestHe.Neighbor)
	outNodes := append([]graph.NodeID{src}, nodes...)
	outLinks := append([]graph.LinkID{bestHe.Link}, links...)
	return outNodes, outLinks, true
}

// routeGoal is Route on the goal-directed engines: every path and cost
// the tree engine would read from trees[c][dst] is answered by a
// reverse A* query over the same configuration overlay.
// spt.ComputeGoalReverse reproduces the canonical reverse-tree
// tie-break, so paths, the exclude rejection, and the isolated-source
// selection (strict < over per-neighbor costs in adjacency order) all
// match the precomputed-tree engine bit for bit.
func (m *MRC) routeGoal(c int, src, dst graph.NodeID, exclude graph.LinkID, haveExclude bool) ([]graph.NodeID, []graph.LinkID, bool) {
	g := m.topo.G
	den := cfgDenied{m: m, c: c, dst: dst}
	ws := spt.GetWorkspace()
	defer ws.Release()
	var res spt.GoalResult
	if m.isolCfg[src] != c {
		if !ws.ComputeGoalReverse(&res, g, src, dst, den, m.heur) {
			return nil, nil, false
		}
		if haveExclude && len(res.Links) > 0 && res.Links[0] == exclude {
			return nil, nil, false
		}
		return res.Nodes, res.Links, true
	}
	// Isolated source: find the best restricted link into the backbone,
	// mirroring the tree engine's selection loop exactly.
	bestCost := spt.Inf
	var bestHe graph.Halfedge
	found := false
	for _, he := range g.Adj(src) {
		if haveExclude && he.Link == exclude {
			continue
		}
		if m.isolCfg[he.Neighbor] == c {
			// Isolated link (see Route): unusable even toward dst.
			continue
		}
		res.Nodes, res.Links = res.Nodes[:0], res.Links[:0]
		if !ws.ComputeGoalReverse(&res, g, he.Neighbor, dst, den, m.heur) {
			continue
		}
		if res.Cost+he.Cost < bestCost {
			bestCost = res.Cost + he.Cost
			bestHe = he
			found = true
		}
	}
	if !found {
		return nil, nil, false
	}
	res.Nodes, res.Links = res.Nodes[:0], res.Links[:0]
	if !ws.ComputeGoalReverse(&res, g, bestHe.Neighbor, dst, den, m.heur) {
		return nil, nil, false
	}
	outNodes := append([]graph.NodeID{src}, res.Nodes...)
	outLinks := append([]graph.LinkID{bestHe.Link}, res.Links...)
	return outNodes, outLinks, true
}

// Result is the outcome of one MRC recovery attempt.
type Result struct {
	Delivered bool
	// Config is the backup configuration the packet switched to.
	Config int
	// Walk is the packet trajectory from the recovery initiator.
	Walk routing.Walk
	// DropAt is where the packet died (only when !Delivered): either
	// no route existed in the chosen configuration, or the route met
	// another failure (MRC does not switch configurations twice).
	DropAt graph.NodeID
}

// Recover attempts MRC recovery at the initiator whose next hop nh
// (over link trigger) toward dst is unreachable: switch to the
// configuration isolating the suspected failed element and forward
// there. Under large-scale failures the configured route frequently
// contains further failures, in which case the packet is dropped.
func (m *MRC) Recover(lv *routing.LocalView, initiator, dst, nh graph.NodeID, trigger graph.LinkID) (Result, error) {
	var res Result
	if !lv.NodeAlive(initiator) {
		return res, fmt.Errorf("mrc: initiator %d is down", initiator)
	}
	// Standard MRC config selection: assume the next-hop node failed
	// unless it is the destination itself, in which case only the link
	// can be bypassed.
	if nh != dst {
		res.Config = m.isolCfg[nh]
	} else {
		res.Config = m.isolCfg[initiator]
	}
	if res.Config == Unisolated {
		// The suspected element is an articulation point (or the
		// initiator is, in the last-hop case): no configuration
		// isolates it, so MRC has no recovery route.
		res.DropAt = initiator
		return res, nil
	}
	nodes, links, ok := m.Route(res.Config, initiator, dst, trigger, true)
	if !ok {
		res.DropAt = initiator
		return res, nil
	}
	for i := 0; i+1 < len(nodes); i++ {
		if lv.NeighborUnreachable(nodes[i], links[i]) {
			res.DropAt = nodes[i]
			return res, nil
		}
		res.Walk.Append(routing.HopRecord{From: nodes[i], To: nodes[i+1], Link: links[i]})
	}
	res.Delivered = true
	return res, nil
}
