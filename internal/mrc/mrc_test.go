package mrc

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

func build(t *testing.T, topo *topology.Topology) *MRC {
	t.Helper()
	m, err := New(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConstructionInvariants(t *testing.T) {
	for _, as := range []string{"AS209", "AS1239", "AS7018"} {
		as := as
		t.Run(as, func(t *testing.T) {
			topo := topology.GenerateAS(as, 3)
			m := build(t, topo)
			g := topo.G
			n := g.NumNodes()

			// Every node is isolated in exactly one configuration,
			// except nodes whose isolation no configuration could
			// absorb — all of which must be articulation points.
			arts := map[graph.NodeID]bool{}
			for _, a := range g.ArticulationPoints(graph.Nothing) {
				arts[a] = true
			}
			for _, u := range m.UnprotectedNodes() {
				if !arts[u] {
					t.Errorf("node %d left unisolated but is not an articulation point", u)
				}
			}
			for v := 0; v < n; v++ {
				c := m.ConfigOf(graph.NodeID(v))
				if c == Unisolated {
					continue
				}
				if c < 0 || c >= m.Configs() {
					t.Fatalf("node %d has invalid config %d", v, c)
				}
			}
			// Every configuration's backbone is connected and non-empty,
			// and every isolated node has a restricted link.
			for c := 0; c < m.Configs(); c++ {
				mask := graph.NewMask(g)
				backbone := 0
				for v := 0; v < n; v++ {
					if m.ConfigOf(graph.NodeID(v)) == c {
						mask.FailNode(graph.NodeID(v))
					} else {
						backbone++
					}
				}
				if backbone == 0 {
					t.Fatalf("config %d has an empty backbone", c)
				}
				if !g.ConnectedAll(mask) {
					t.Fatalf("config %d backbone is disconnected", c)
				}
				for v := 0; v < n; v++ {
					if m.ConfigOf(graph.NodeID(v)) != c {
						continue
					}
					restricted := false
					for _, h := range g.Adj(graph.NodeID(v)) {
						if m.ConfigOf(h.Neighbor) != c {
							restricted = true
							break
						}
					}
					if !restricted {
						t.Fatalf("node %d isolated in config %d has no restricted link", v, c)
					}
				}
			}
		})
	}
}

func TestRouteAvoidsIsolatedElements(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 3)
	m := build(t, topo)
	g := topo.G
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		c := rng.Intn(m.Configs())
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		nodes, links, ok := m.Route(c, src, dst, 0, false)
		if !ok {
			t.Fatalf("config %d must route %d -> %d (no failures present)", c, src, dst)
		}
		if nodes[0] != src || nodes[len(nodes)-1] != dst {
			t.Fatalf("route endpoints wrong: %v", nodes)
		}
		if len(links) != len(nodes)-1 {
			t.Fatalf("links/nodes mismatch: %d vs %d", len(links), len(nodes))
		}
		// Interior nodes must not be isolated in c.
		for _, v := range nodes[1 : len(nodes)-1] {
			if m.ConfigOf(v) == c {
				t.Fatalf("route %v passes through node %d isolated in config %d", nodes, v, c)
			}
		}
	}
}

func TestRouteExcludesTriggerLink(t *testing.T) {
	topo := topology.PaperExample()
	m := build(t, topo)
	v6, v11 := topology.PaperNode(6), topology.PaperNode(11)
	l, _ := topo.G.LinkBetween(v6, v11)
	c := m.ConfigOf(v6)
	nodes, links, ok := m.Route(c, v6, v11, l, true)
	if ok && len(links) > 0 && links[0] == l {
		t.Errorf("route %v must not start with the excluded link", nodes)
	}
}

func TestRecoverSingleLinkFailure(t *testing.T) {
	// MRC's home turf: single link failures are always recoverable
	// when an alternate path exists.
	topo := topology.PaperExample()
	m := build(t, topo)
	tables := routing.ComputeTables(topo)
	recovered := 0
	total := 0
	for li := 0; li < topo.G.NumLinks(); li++ {
		id := graph.LinkID(li)
		sc := failure.SingleLink(topo, id)
		lv := routing.NewLocalView(topo, sc)
		l := topo.G.Link(id)
		// The endpoint A recovering a path through the link.
		for _, pair := range [][2]graph.NodeID{{l.A, l.B}, {l.B, l.A}} {
			initiator, nh := pair[0], pair[1]
			// Find any destination routed via this link.
			for d := 0; d < topo.G.NumNodes(); d++ {
				dst := graph.NodeID(d)
				gotNH, gotLink, ok := tables.NextHop(initiator, dst)
				if !ok || gotLink != id || gotNH != nh {
					continue
				}
				if !topo.G.Connected(initiator, dst, sc) {
					continue
				}
				total++
				res, err := m.Recover(lv, initiator, dst, nh, id)
				if err != nil {
					t.Fatal(err)
				}
				if res.Delivered {
					recovered++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no single-link test cases found")
	}
	rate := float64(recovered) / float64(total)
	if rate < 0.95 {
		t.Errorf("MRC single-link recovery rate = %.2f (%d/%d); should be near-perfect", rate, recovered, total)
	}
}

func TestRecoverAreaFailuresOftenFail(t *testing.T) {
	// The paper's point: under area failures MRC's recovery rate
	// collapses because routes and their backup configurations fail
	// together. Expect substantially imperfect recovery.
	topo := topology.GenerateAS("AS209", 3)
	m := build(t, topo)
	tables := routing.ComputeTables(topo)
	rng := rand.New(rand.NewSource(8))
	n := topo.G.NumNodes()
	recovered, total := 0, 0
	for total < 300 {
		sc := failure.RandomScenario(topo, rng)
		lv := routing.NewLocalView(topo, sc)
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		if src == dst {
			continue
		}
		outcome, initiator, _ := routing.TraceDefault(tables, lv, src, dst)
		if outcome != routing.DefaultBlocked || !topo.G.Connected(initiator, dst, sc) {
			continue
		}
		total++
		nh, trigger, _ := tables.NextHop(initiator, dst)
		res, err := m.Recover(lv, initiator, dst, nh, trigger)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered {
			recovered++
			// Delivered packets must have used live links only.
			for _, rec := range res.Walk.Records {
				if sc.LinkDown(rec.Link) {
					t.Fatal("MRC traversed a failed link")
				}
			}
		}
	}
	rate := float64(recovered) / float64(total)
	t.Logf("MRC area-failure recovery rate: %.1f%% (%d/%d)", 100*rate, recovered, total)
	if rate > 0.9 {
		t.Errorf("MRC recovery rate %.2f unexpectedly high under area failures", rate)
	}
	if rate == 0 {
		t.Error("MRC must recover at least some cases")
	}
}

func TestRecoverInitiatorDown(t *testing.T) {
	topo := topology.PaperExample()
	m := build(t, topo)
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	lv := routing.NewLocalView(topo, sc)
	_, err := m.Recover(lv, topology.PaperNode(10), topology.PaperNode(1), topology.PaperNode(5), 0)
	if err == nil {
		t.Error("recovery at a failed node must error")
	}
}

func TestRouteSelfDelivery(t *testing.T) {
	topo := topology.PaperExample()
	m := build(t, topo)
	nodes, links, ok := m.Route(0, 3, 3, 0, false)
	if !ok || len(nodes) != 1 || len(links) != 0 {
		t.Errorf("self route = %v/%v/%v", nodes, links, ok)
	}
}

// requireSameTrees asserts two MRC instances carry bit-identical
// configuration tree matrices.
func requireSameTrees(t *testing.T, as string, got, want *MRC) {
	t.Helper()
	if got.k != want.k {
		t.Fatalf("%s: config counts differ: %d vs %d", as, got.k, want.k)
	}
	n := want.topo.G.NumNodes()
	for c := 0; c < want.k; c++ {
		for d := 0; d < n; d++ {
			g, w := got.trees[c][d], want.trees[c][d]
			if g.Kind != w.Kind || g.Root != w.Root {
				t.Fatalf("%s: tree (%d, %d) identity mismatch", as, c, d)
			}
			for v := 0; v < n; v++ {
				if g.Dist[v] != w.Dist[v] || g.Parent[v] != w.Parent[v] || g.ParentLink[v] != w.ParentLink[v] {
					t.Fatalf("%s: config %d dst %d node %d: warm (dist %v, parent %d, link %d), cold (%v, %d, %d)",
						as, c, d, v,
						g.Dist[v], g.Parent[v], g.ParentLink[v],
						w.Dist[v], w.Parent[v], w.ParentLink[v])
				}
			}
		}
	}
}

// TestNewWarmMatchesCold verifies the warm-started tree matrix is
// bit-identical to the cold build on every bundled topology — the
// isolation overlay is delete-only relative to the clean graph, so the
// incremental recompute must reproduce the cold trees exactly.
func TestNewWarmMatchesCold(t *testing.T) {
	for _, as := range topology.ASNames() {
		as := as
		t.Run(as, func(t *testing.T) {
			t.Parallel()
			topo := topology.GenerateAS(as, 3)
			cold, err := New(topo, 0)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := NewWarm(topo, 0, routing.ComputeTables(topo))
			if err != nil {
				t.Fatal(err)
			}
			if warm.clean == nil {
				t.Fatal("NewWarm with matching clean tables must take the warm path")
			}
			requireSameTrees(t, as, warm, cold)
		})
	}
}

// TestNewWarmFallsBackCold covers the guard rails: nil tables, tables
// of a foreign topology, and tables computed under failures must all
// silently degrade to the cold build.
func TestNewWarmFallsBackCold(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 3)
	other := topology.GenerateAS("AS209", 3)
	cold := build(t, topo)

	rng := rand.New(rand.NewSource(9))
	sc := failure.RandomScenario(topo, rng)
	for !sc.HasFailures() {
		sc = failure.RandomScenario(topo, rng)
	}
	failedTables := routing.ComputeTablesUnder(topo, sc)

	for _, tc := range []struct {
		label  string
		tables *routing.Tables
	}{
		{"nil", nil},
		{"foreign", routing.ComputeTables(other)},
		{"under-failures", failedTables},
	} {
		m, err := NewWarm(topo, 0, tc.tables)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		if m.clean != nil {
			t.Fatalf("%s: warm path taken with unusable tables", tc.label)
		}
		requireSameTrees(t, "AS1239/"+tc.label, m, cold)
	}
}
