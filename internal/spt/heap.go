package spt

import "repro/internal/graph"

// minHeap is a binary min-heap of (node, dist) entries with lazy
// deletion: decrease-key is implemented by pushing a fresh entry and
// discarding stale pops in the Dijkstra loop.
//
// Entries are ordered by (dist, node): ties in distance break on the
// smaller node ID. Because link costs are strictly positive, every
// node's final entry is in the heap before the first entry at its
// distance pops, so the canonical order makes the whole pop sequence —
// and with it every equal-cost parent choice — a pure function of
// (graph, overlay, root), independent of insertion order. That is what
// lets incremental recomputation reproduce a cold build bit for bit.
type minHeap struct {
	nodes []graph.NodeID
	dists []float64
}

// reset empties the heap, growing its storage to capHint if needed, so
// one heap can serve many computations without reallocating.
func (h *minHeap) reset(capHint int) {
	if cap(h.nodes) < capHint {
		h.nodes = make([]graph.NodeID, 0, capHint)
		h.dists = make([]float64, 0, capHint)
		return
	}
	h.nodes = h.nodes[:0]
	h.dists = h.dists[:0]
}

func (h *minHeap) len() int { return len(h.nodes) }

func (h *minHeap) push(v graph.NodeID, d float64) {
	h.nodes = append(h.nodes, v)
	h.dists = append(h.dists, d)
	h.up(len(h.nodes) - 1)
}

// pop removes and returns the minimum entry; ok is false when empty.
func (h *minHeap) pop() (v graph.NodeID, d float64, ok bool) {
	if len(h.nodes) == 0 {
		return 0, 0, false
	}
	v, d = h.nodes[0], h.dists[0]
	last := len(h.nodes) - 1
	h.nodes[0], h.dists[0] = h.nodes[last], h.dists[last]
	h.nodes = h.nodes[:last]
	h.dists = h.dists[:last]
	if last > 0 {
		h.down(0)
	}
	return v, d, true
}

// less is the canonical (dist, node) order.
func (h *minHeap) less(i, j int) bool {
	if h.dists[i] != h.dists[j] {
		return h.dists[i] < h.dists[j]
	}
	return h.nodes[i] < h.nodes[j]
}

func (h *minHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h *minHeap) down(i int) {
	n := len(h.nodes)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h.swap(i, min)
		i = min
	}
}

func (h *minHeap) swap(i, j int) {
	h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i]
	h.dists[i], h.dists[j] = h.dists[j], h.dists[i]
}
