// Package spt implements the shortest-path engine: Dijkstra shortest
// path trees over the graph substrate, in both the forward direction
// (distances from a source) and the reverse direction (distances toward
// a destination, which is what link-state routing tables need), plus
// the incremental recomputation after link/node removals that RTR's
// second phase uses (in the spirit of Narvaez et al., "New dynamic
// algorithms for shortest path tree computation").
package spt

import (
	"math"

	"repro/internal/graph"
)

// Kind distinguishes the orientation of a Tree.
type Kind uint8

const (
	// Forward trees hold distances from Root to every node; the parent
	// chain of v walks back toward Root.
	Forward Kind = iota + 1
	// Reverse trees hold distances from every node to Root; the parent
	// of v is v's next hop toward Root. Reverse trees are routing
	// tables for the destination Root.
	Reverse
)

// None marks an absent parent or parent link in a Tree.
const None = -1

// Inf is the distance assigned to unreachable nodes.
var Inf = math.Inf(1)

// Tree is a shortest path tree rooted at Root.
type Tree struct {
	Kind Kind
	Root graph.NodeID
	// Dist[v] is the path cost between v and Root (orientation per
	// Kind); Inf when unreachable.
	Dist []float64
	// Parent[v] is the neighbor of v on the shortest path toward Root,
	// or None.
	Parent []int32
	// ParentLink[v] is the link connecting v to Parent[v], or None.
	ParentLink []int32
}

// Reachable reports whether v has a path to/from the root.
func (t *Tree) Reachable(v graph.NodeID) bool {
	return !math.IsInf(t.Dist[v], 1)
}

// CostTo returns the path cost between v and the root, and whether v is
// reachable.
func (t *Tree) CostTo(v graph.NodeID) (float64, bool) {
	d := t.Dist[v]
	return d, !math.IsInf(d, 1)
}

// NextHop returns v's next hop toward the root of a Reverse tree.
// It reports false when v is the root or unreachable.
func (t *Tree) NextHop(v graph.NodeID) (graph.NodeID, bool) {
	if t.Parent[v] == None {
		return 0, false
	}
	return graph.NodeID(t.Parent[v]), true
}

// PathNodes returns the node sequence of the shortest path between the
// root and v: root→v for Forward trees, v→root for Reverse trees.
// It reports false when v is unreachable.
func (t *Tree) PathNodes(v graph.NodeID) ([]graph.NodeID, bool) {
	return t.AppendPathNodes(nil, v)
}

// AppendPathNodes appends the node sequence of the shortest path
// between the root and v to buf (oriented like PathNodes) and returns
// the extended slice, letting callers reuse one backing array across
// extractions. It reports false, with buf unchanged, when v is
// unreachable.
func (t *Tree) AppendPathNodes(buf []graph.NodeID, v graph.NodeID) ([]graph.NodeID, bool) {
	if math.IsInf(t.Dist[v], 1) {
		return buf, false
	}
	start := len(buf)
	for u := v; ; {
		buf = append(buf, u)
		p := t.Parent[u]
		if p == None {
			break
		}
		u = graph.NodeID(p)
	}
	if t.Kind == Forward {
		reverse(buf[start:])
	}
	return buf, true
}

// PathLinks returns the link sequence of the shortest path between the
// root and v, oriented like PathNodes. It reports false when v is
// unreachable.
func (t *Tree) PathLinks(v graph.NodeID) ([]graph.LinkID, bool) {
	return t.AppendPathLinks(nil, v)
}

// AppendPathLinks appends the link sequence of the shortest path
// between the root and v to buf, oriented like PathNodes, and returns
// the extended slice. It reports false, with buf unchanged, when v is
// unreachable.
func (t *Tree) AppendPathLinks(buf []graph.LinkID, v graph.NodeID) ([]graph.LinkID, bool) {
	if math.IsInf(t.Dist[v], 1) {
		return buf, false
	}
	start := len(buf)
	for u := v; t.Parent[u] != None; u = graph.NodeID(t.Parent[u]) {
		buf = append(buf, graph.LinkID(t.ParentLink[u]))
	}
	if t.Kind == Forward {
		reverseLinks(buf[start:])
	}
	return buf, true
}

// Hops returns the number of links on the shortest path between the
// root and v, and whether v is reachable.
func (t *Tree) Hops(v graph.NodeID) (int, bool) {
	if math.IsInf(t.Dist[v], 1) {
		return 0, false
	}
	h := 0
	for u := v; t.Parent[u] != None; u = graph.NodeID(t.Parent[u]) {
		h++
	}
	return h, true
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		Kind:       t.Kind,
		Root:       t.Root,
		Dist:       make([]float64, len(t.Dist)),
		Parent:     make([]int32, len(t.Parent)),
		ParentLink: make([]int32, len(t.ParentLink)),
	}
	copy(c.Dist, t.Dist)
	copy(c.Parent, t.Parent)
	copy(c.ParentLink, t.ParentLink)
	return c
}

func reverse(s []graph.NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseLinks(s []graph.LinkID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// edgeCost returns the cost of using link l to extend a tree of the
// given kind from tree node u to frontier node w (the link's other
// endpoint): forward trees pay u→w, reverse trees pay w→u because the
// final path runs from w toward the root.
func edgeCost(l graph.Link, kind Kind, w graph.NodeID) float64 {
	if kind == Forward {
		return l.CostFrom(l.Other(w))
	}
	return l.CostFrom(w)
}

// Compute runs Dijkstra from root over the live subgraph under d and
// returns the Forward shortest path tree.
func Compute(g *graph.Graph, root graph.NodeID, d graph.Denied) *Tree {
	return run(g, root, d, Forward)
}

// ComputeReverse runs Dijkstra toward root (i.e. over reversed edge
// costs) and returns the Reverse tree: every node's distance and next
// hop toward root. This is the per-destination routing table.
func ComputeReverse(g *graph.Graph, root graph.NodeID, d graph.Denied) *Tree {
	return run(g, root, d, Reverse)
}

func run(g *graph.Graph, root graph.NodeID, d graph.Denied, kind Kind) *Tree {
	n := g.NumNodes()
	t := &Tree{
		Dist:       make([]float64, n),
		Parent:     make([]int32, n),
		ParentLink: make([]int32, n),
	}
	ws := GetWorkspace()
	defer ws.Release()
	ws.runInto(t, g, root, d, kind)
	return t
}

// settle runs the Dijkstra main loop, extending the tree from whatever
// is already in the heap. If scope is non-nil, only nodes with
// scope[v] == true may be relabeled (used by incremental recompute).
//
// This is the reference interface-dispatch loop; production paths go
// through settleDense, and the differential tests assert the two are
// bit-identical.
func settle(g *graph.Graph, t *Tree, d graph.Denied, h *minHeap, scope []bool) {
	for {
		v, dv, ok := h.pop()
		if !ok {
			return
		}
		if dv > t.Dist[v] {
			continue // stale entry
		}
		for _, he := range g.Adj(v) {
			w := he.Neighbor
			if scope != nil && !scope[w] {
				continue
			}
			if d.NodeDown(w) || d.LinkDown(he.Link) {
				continue
			}
			l := g.Link(he.Link)
			nd := dv + edgeCost(l, t.Kind, w)
			if nd < t.Dist[w] {
				t.Dist[w] = nd
				t.Parent[w] = int32(v)
				t.ParentLink[w] = int32(he.Link)
				h.push(w, nd)
			}
		}
	}
}

// settleDense is settle with the failure overlay compiled to flat
// tables: the per-edge overlay membership tests become two slice loads
// instead of two interface calls, which dominates the inner loop on
// dense topologies (~4m dynamic dispatches per tree otherwise).
func settleDense(g *graph.Graph, t *Tree, nodeDown, linkDown []bool, h *minHeap, scope []bool) {
	for {
		v, dv, ok := h.pop()
		if !ok {
			return
		}
		if dv > t.Dist[v] {
			continue // stale entry
		}
		for _, he := range g.Adj(v) {
			w := he.Neighbor
			if scope != nil && !scope[w] {
				continue
			}
			if nodeDown[w] || linkDown[he.Link] {
				continue
			}
			l := g.Link(he.Link)
			nd := dv + edgeCost(l, t.Kind, w)
			if nd < t.Dist[w] {
				t.Dist[w] = nd
				t.Parent[w] = int32(v)
				t.ParentLink[w] = int32(he.Link)
				h.push(w, nd)
			}
		}
	}
}

// Recompute returns the shortest path tree equal to
// Compute*/ComputeReverse(g, t.Root, graph.Union{base, extra}) but
// computed incrementally from t, which must have been computed under
// base by this engine. Only the subtree hanging off removed elements
// is rebuilt; the rest of the tree is reused. extra must only remove
// elements (this is the delete-only case RTR needs: the initiator
// learns of additional failures and prunes them). The result is
// bit-identical to the cold build — Dist, Parent, and ParentLink all
// match, including equal-cost tie breaks, thanks to the heap's
// canonical (dist, node) order.
func Recompute(g *graph.Graph, t *Tree, base, extra graph.Denied) *Tree {
	nt := t.Clone()
	ws := GetWorkspace()
	defer ws.Release()
	ws.recomputeInto(nt, g, base, extra)
	return nt
}
