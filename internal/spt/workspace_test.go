package spt

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randGraph builds a connected-ish random multigraph with random
// (possibly asymmetric) positive costs.
func randGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		u := graph.NodeID(rng.Intn(v))
		if _, err := g.AddLinkCost(u, graph.NodeID(v), 1+rng.Float64()*9, 1+rng.Float64()*9); err != nil {
			panic(err)
		}
	}
	for i := 0; i < extra; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		if _, err := g.AddLinkCost(a, b, 1+rng.Float64()*9, 1+rng.Float64()*9); err != nil {
			panic(err)
		}
	}
	return g
}

// randMask fails a few random nodes and links.
func randMask(rng *rand.Rand, g *graph.Graph, nodes, links int) *graph.Mask {
	m := graph.NewMask(g)
	for i := 0; i < nodes; i++ {
		m.FailNode(graph.NodeID(rng.Intn(g.NumNodes())))
	}
	for i := 0; i < links; i++ {
		m.FailLink(graph.LinkID(rng.Intn(g.NumLinks())))
	}
	return m
}

// requireIdentical asserts two trees are bit-for-bit identical in
// Dist/Parent/ParentLink (the differential-test contract: pooled
// buffers must never leak stale state into results).
func requireIdentical(t *testing.T, want, got *Tree, label string) {
	t.Helper()
	if want.Kind != got.Kind || want.Root != got.Root {
		t.Fatalf("%s: kind/root mismatch: (%v,%d) vs (%v,%d)", label, want.Kind, want.Root, got.Kind, got.Root)
	}
	if len(want.Dist) != len(got.Dist) {
		t.Fatalf("%s: size mismatch: %d vs %d", label, len(want.Dist), len(got.Dist))
	}
	for v := range want.Dist {
		if want.Dist[v] != got.Dist[v] && !(want.Dist[v] != want.Dist[v] && got.Dist[v] != got.Dist[v]) {
			t.Fatalf("%s: Dist[%d] = %v, want %v", label, v, got.Dist[v], want.Dist[v])
		}
		if want.Parent[v] != got.Parent[v] {
			t.Fatalf("%s: Parent[%d] = %d, want %d", label, v, got.Parent[v], want.Parent[v])
		}
		if want.ParentLink[v] != got.ParentLink[v] {
			t.Fatalf("%s: ParentLink[%d] = %d, want %d", label, v, got.ParentLink[v], want.ParentLink[v])
		}
	}
}

// freshCompute runs Dijkstra with no workspace reuse at all, as the
// independent oracle for the differential tests.
func freshCompute(g *graph.Graph, root graph.NodeID, d graph.Denied, kind Kind) *Tree {
	n := g.NumNodes()
	t := &Tree{
		Dist:       make([]float64, n),
		Parent:     make([]int32, n),
		ParentLink: make([]int32, n),
	}
	var ws Workspace
	ws.runInto(t, g, root, d, kind)
	return t
}

// TestWorkspaceDifferentialCompute checks that one workspace reused
// across many graphs of varying sizes, roots, kinds, and failure masks
// yields trees identical to fresh computations — the stale-buffer
// differential test.
func TestWorkspaceDifferentialCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := GetWorkspace()
	defer ws.Release()
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(80)
		g := randGraph(rng, n, rng.Intn(2*n))
		d := randMask(rng, g, rng.Intn(3), rng.Intn(5))
		root := graph.NodeID(rng.Intn(n))
		label := fmt.Sprintf("trial %d (n=%d root=%d)", trial, n, root)

		requireIdentical(t, Compute(g, root, d), ws.Compute(g, root, d), label+" forward")
		requireIdentical(t, ComputeReverse(g, root, d), ws.ComputeReverse(g, root, d), label+" reverse")
	}
}

// TestWorkspaceDifferentialRecompute checks the incremental update
// against a from-scratch computation under the combined failure set,
// through both the package-level and the workspace entry points.
func TestWorkspaceDifferentialRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := GetWorkspace()
	defer ws.Release()
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(80)
		g := randGraph(rng, n, rng.Intn(2*n))
		base := randMask(rng, g, 0, rng.Intn(3))
		extra := randMask(rng, g, rng.Intn(2), rng.Intn(6))
		root := graph.NodeID(rng.Intn(n))
		label := fmt.Sprintf("trial %d (n=%d root=%d)", trial, n, root)

		for _, kind := range []Kind{Forward, Reverse} {
			var t0 *Tree
			if kind == Forward {
				t0 = Compute(g, root, base)
			} else {
				t0 = ComputeReverse(g, root, base)
			}
			want := freshCompute(g, root, graph.Union{X: base, Y: extra}, kind)
			requireIdentical(t, want, Recompute(g, t0, base, extra), label+" owned recompute")
			requireIdentical(t, want, ws.Recompute(g, t0, base, extra), label+" scratch recompute")
		}
	}
}

// TestWorkspaceRecomputeFromOwnScratch covers the chained case: the
// tree passed to Workspace.Recompute is the workspace's own scratch
// tree from the preceding Compute.
func TestWorkspaceRecomputeFromOwnScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ws := GetWorkspace()
	defer ws.Release()
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(60)
		g := randGraph(rng, n, rng.Intn(n))
		extra := randMask(rng, g, rng.Intn(2), rng.Intn(5))
		root := graph.NodeID(rng.Intn(n))

		scratch := ws.Compute(g, root, graph.Nothing)
		got := ws.Recompute(g, scratch, graph.Nothing, extra)
		want := freshCompute(g, root, extra, Forward)
		requireIdentical(t, want, got, fmt.Sprintf("trial %d", trial))
	}
}

// TestComputeAllocFree verifies the headline property: a warmed-up
// workspace computes trees without allocating.
func TestComputeAllocFree(t *testing.T) {
	g := grid(12, 12)
	ws := GetWorkspace()
	defer ws.Release()
	ws.Compute(g, 0, graph.Nothing) // warm up buffers
	allocs := testing.AllocsPerRun(50, func() {
		ws.Compute(g, 5, graph.Nothing)
	})
	if allocs != 0 {
		t.Errorf("warmed-up Workspace.Compute allocates %.1f times per run, want 0", allocs)
	}

	base := ws.Compute(g, 0, graph.Nothing).Clone()
	m := graph.NewMask(g)
	m.FailLink(0)
	m.FailLink(7)
	ws.Recompute(g, base, graph.Nothing, m) // warm up recompute scratch
	allocs = testing.AllocsPerRun(50, func() {
		ws.Recompute(g, base, graph.Nothing, m)
	})
	if allocs != 0 {
		t.Errorf("warmed-up Workspace.Recompute allocates %.1f times per run, want 0", allocs)
	}
}
