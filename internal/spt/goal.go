package spt

import (
	"math"

	"repro/internal/graph"
)

// GoalResult is the output of a goal-directed single-pair query. The
// Nodes/Links slices are appended to in place, so callers can pass
// retained buffers (sliced to length zero) and run queries without
// steady-state allocations.
type GoalResult struct {
	// Nodes is the path src..dst inclusive; Links the corresponding
	// link sequence (len(Nodes)-1 entries).
	Nodes []graph.NodeID
	Links []graph.LinkID
	// Cost is the path cost, Inf when dst is unreachable.
	Cost float64
	// Settled counts the nodes the search settled — the work metric
	// goal direction exists to shrink (a full Dijkstra settles every
	// reachable node).
	Settled int
}

// ComputeGoal is the package-level convenience wrapper: it runs a
// goal-directed query with pooled scratch and returns an owned result.
// Hot paths should use Workspace.ComputeGoal with retained buffers.
func ComputeGoal(g *graph.Graph, src, dst graph.NodeID, d graph.Denied, heur Heuristic) (GoalResult, bool) {
	ws := GetWorkspace()
	defer ws.Release()
	var res GoalResult
	ok := ws.ComputeGoal(&res, g, src, dst, d, heur)
	return res, ok
}

// ComputeGoal computes the shortest src→dst path over the live
// subgraph under d using goal-directed A* search with the admissible
// heuristic heur (nil means the zero heuristic: plain Dijkstra with
// early exit). It settles only the nodes whose f = g + h bound does
// not exceed the path cost, instead of the whole graph.
//
// The result is bit-identical to extracting the path from
// Compute(g, src, d): same cost and, under the engine's canonical
// (dist, node) tie-break, the same node and link sequence. A* settle
// order differs from Dijkstra's, so the search keeps only distance
// labels and derives the path afterwards by walking canonical
// predecessors (see reconstructGoal); if that walk ever fails — only
// conceivable under adversarial floating-point costs — it falls back
// to a full canonical Dijkstra, so canonicality is unconditional.
//
// It reports false, with res.Nodes/res.Links truncated to their input
// lengths and res.Cost = Inf, when dst is unreachable from src.
func (ws *Workspace) ComputeGoal(res *GoalResult, g *graph.Graph, src, dst graph.NodeID, d graph.Denied, heur Heuristic) bool {
	return ws.computeGoal(res, g, src, dst, d, heur, Forward)
}

// ComputeGoalReverse is ComputeGoal run as a Reverse search rooted at
// dst with src as the search goal: the same src..dst path, but with
// equal-cost ties broken exactly as ComputeReverse(g, dst, d) breaks
// them. Use it to reproduce routes served from per-destination
// (reverse) tables; ComputeGoal reproduces routes served from
// per-source (forward) trees. The two canonical tie-breaks can pick
// different equal-cost paths, which is why both orientations exist.
func (ws *Workspace) ComputeGoalReverse(res *GoalResult, g *graph.Graph, src, dst graph.NodeID, d graph.Denied, heur Heuristic) bool {
	return ws.computeGoal(res, g, dst, src, d, heur, Reverse)
}

// computeGoal runs the search from root toward goal. For Forward,
// root = src and goal = dst; for Reverse, root = dst and goal = src
// (reverse Dijkstra grows from its root exactly like forward Dijkstra
// with flipped edge costs, so "goal" is always the node the search
// hunts for). The emitted path is src..dst for both kinds.
func (ws *Workspace) computeGoal(res *GoalResult, g *graph.Graph, root, goal graph.NodeID, d graph.Denied, heur Heuristic, kind Kind) bool {
	n := g.NumNodes()
	nodesBase, linksBase := len(res.Nodes), len(res.Links)
	res.Cost = Inf
	res.Settled = 0

	// Compile the overlay exactly like runInto does: borrow dense
	// tables when the overlay lends them, zero scratch for Nothing, and
	// otherwise stay on interface dispatch — a single-pair query must
	// not pay an O(n+m) overlay compilation (that would forfeit the
	// sublinear win; MRC's configuration overlays hit this arm).
	var dn, dl []bool
	dense := false
	if d == graph.Nothing {
		dn, dl = ws.ensureDense(n, g.NumLinks())
		dense = true
	} else if nodes, links, ok := graph.DenseTablesOf(d); ok {
		dn, dl = nodes, links
		dense = true
	}
	if dense {
		if dn[root] || dn[goal] {
			return false
		}
	} else if d.NodeDown(root) || d.NodeDown(goal) {
		return false
	}
	if root == goal {
		res.Nodes = append(res.Nodes, root)
		res.Cost = 0
		res.Settled = 1
		return true
	}

	ws.ensureScratch(n)
	t := &ws.scratch
	t.Kind, t.Root = kind, root
	for i := 0; i < n; i++ {
		t.Dist[i] = Inf
	}
	t.Dist[root] = 0
	settled := ws.ensureSettled(n)
	ws.h.reset(n)
	ws.h.push(root, 0)
	if dense {
		res.Settled = settleGoalDense(g, t, dn, dl, &ws.h, settled, goal, heur)
	} else {
		res.Settled = settleGoal(g, t, d, &ws.h, settled, goal, heur)
	}
	if !settled[goal] {
		return false
	}
	res.Cost = t.Dist[goal]

	if reconstructGoal(res, g, t, dn, dl, d, settled, root, goal) {
		if kind == Forward {
			reverse(res.Nodes[nodesBase:])
			reverseLinks(res.Links[linksBase:])
		}
		return true
	}

	// Defensive fallback: the canonical-predecessor walk found a node
	// with no exact-equality predecessor, which cannot happen when
	// distance sums are exact (all bundled topologies have unit costs).
	// Recompute the full canonical tree and extract — always correct.
	res.Nodes = res.Nodes[:nodesBase]
	res.Links = res.Links[:linksBase]
	ws.runInto(t, g, root, d, kind)
	res.Nodes, _ = t.AppendPathNodes(res.Nodes, goal)
	res.Links, _ = t.AppendPathLinks(res.Links, goal)
	res.Cost = t.Dist[goal]
	return true
}

// goalLower evaluates the heuristic for frontier node v against the
// fixed search goal, oriented by tree kind: a Forward search from src
// bounds the remaining v→dst cost, a Reverse search rooted at dst
// bounds the remaining src→v cost. Out-of-contract values (negative,
// NaN, +Inf) degrade to the always-admissible 0.
func goalLower(heur Heuristic, kind Kind, v, goal graph.NodeID) float64 {
	if heur == nil {
		return 0
	}
	var b float64
	if kind == Forward {
		b = heur.Lower(v, goal)
	} else {
		b = heur.Lower(goal, v)
	}
	if math.IsInf(b, 1) || !(b > 0) {
		return 0
	}
	return b
}

// settleGoalDense runs the A* main loop with the overlay as flat down
// tables, mirroring settleDense. The heap carries f = g + h
// priorities while t.Dist holds g; a node's newest (lowest-f) entry
// always pops first, so the settled table doubles as the stale-entry
// filter. The loop keeps settling past the goal until the heap's best
// f exceeds the goal's distance: with a consistent heuristic every
// node whose label the canonical reconstruction may consult has
// f <= dist(goal) and is therefore settled, with its exact label, by
// the time the loop exits. Returns the number of nodes settled.
func settleGoalDense(g *graph.Graph, t *Tree, nodeDown, linkDown []bool, pq *minHeap, settled []bool, goal graph.NodeID, heur Heuristic) int {
	count := 0
	goalF := Inf
	for pq.len() > 0 {
		if pq.dists[0] > goalF {
			break
		}
		v, _, _ := pq.pop()
		if settled[v] {
			continue // stale entry
		}
		settled[v] = true
		count++
		if v == goal {
			// Paths through the goal cost more than dist(goal), so
			// nodes reached via its edges can never be consulted by the
			// reconstruction: skip relaxing them.
			goalF = t.Dist[v]
			continue
		}
		dv := t.Dist[v]
		for _, he := range g.Adj(v) {
			w := he.Neighbor
			if settled[w] || nodeDown[w] || linkDown[he.Link] {
				continue
			}
			l := g.Link(he.Link)
			nd := dv + edgeCost(l, t.Kind, w)
			if nd < t.Dist[w] {
				t.Dist[w] = nd
				pq.push(w, nd+goalLower(heur, t.Kind, w, goal))
			}
		}
	}
	return count
}

// settleGoal is settleGoalDense on interface dispatch, for overlays
// that cannot lend dense tables (MRC's configuration views): a
// single-pair query touches far fewer edges than the O(n+m) overlay
// compilation the dense path would require.
func settleGoal(g *graph.Graph, t *Tree, d graph.Denied, pq *minHeap, settled []bool, goal graph.NodeID, heur Heuristic) int {
	count := 0
	goalF := Inf
	for pq.len() > 0 {
		if pq.dists[0] > goalF {
			break
		}
		v, _, _ := pq.pop()
		if settled[v] {
			continue // stale entry
		}
		settled[v] = true
		count++
		if v == goal {
			goalF = t.Dist[v]
			continue
		}
		dv := t.Dist[v]
		for _, he := range g.Adj(v) {
			w := he.Neighbor
			if settled[w] || d.NodeDown(w) || d.LinkDown(he.Link) {
				continue
			}
			l := g.Link(he.Link)
			nd := dv + edgeCost(l, t.Kind, w)
			if nd < t.Dist[w] {
				t.Dist[w] = nd
				pq.push(w, nd+goalLower(heur, t.Kind, w, goal))
			}
		}
	}
	return count
}

// reconstructGoal derives the canonical shortest path from the A*
// distance labels by walking backward from goal: at each node the
// canonical predecessor is the settled live neighbor u minimizing
// (Dist[u], u) among those with Dist[u] + edgeCost == Dist[cur]
// exactly, taking the first (lowest-ID) link on equal-cost parallel
// links. That reproduces Dijkstra's parent choice: Dijkstra's strict
// '<' relaxation fixes w's parent to the first predecessor reaching
// w's final label in the canonical (dist, node) pop order, which is
// exactly the minimum above; and adjacency lists hold halfedges in
// link-creation order, so the first matching halfedge is the one
// Dijkstra kept. Every consulted predecessor is settled with its
// exact label because its f bound cannot exceed dist(goal) (see
// settleGoalDense). Nodes are appended goal-first; the caller
// reverses for Forward searches. Returns false if some node has no
// exact-equality predecessor (float pathology; caller falls back).
func reconstructGoal(res *GoalResult, g *graph.Graph, t *Tree, dn, dl []bool, d graph.Denied, settled []bool, root, goal graph.NodeID) bool {
	res.Nodes = append(res.Nodes, goal)
	for cur := goal; cur != root; {
		dcur := t.Dist[cur]
		var bestU graph.NodeID
		var bestLink graph.LinkID
		found := false
		for _, he := range g.Adj(cur) {
			u := he.Neighbor
			// A settled node is necessarily alive, but the connecting
			// link can be down with both endpoints alive.
			if !settled[u] {
				continue
			}
			if dn != nil {
				if dl[he.Link] {
					continue
				}
			} else if d.LinkDown(he.Link) {
				continue
			}
			du := t.Dist[u]
			if du+edgeCost(g.Link(he.Link), t.Kind, cur) != dcur {
				continue
			}
			if !found || du < t.Dist[bestU] || (du == t.Dist[bestU] && u < bestU) {
				found = true
				bestU, bestLink = u, he.Link
			}
		}
		if !found {
			return false
		}
		res.Nodes = append(res.Nodes, bestU)
		res.Links = append(res.Links, bestLink)
		cur = bestU
	}
	return true
}
