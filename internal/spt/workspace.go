package spt

import (
	"sync"

	"repro/internal/graph"
)

// Workspace holds the reusable scratch state of the shortest-path
// engine: the Dijkstra priority queue, a scratch result tree, and the
// affected-region bookkeeping of incremental recomputation. Reusing a
// Workspace across calls makes repeat computations allocation-free.
//
// The scratch-returning methods (Compute, ComputeReverse, Recompute)
// return a Tree owned by the workspace: it is valid only until the
// workspace's next call or Release. Callers that retain trees must
// Clone them or use the package-level functions, which return owned
// trees while still sharing pooled scratch internally.
//
// A Workspace is single-owner state and not safe for concurrent use;
// use one per goroutine (GetWorkspace/Release round-trip through a
// sync.Pool).
type Workspace struct {
	h       minHeap
	scratch Tree
	// Incremental-recompute scratch: the affected region, the tree's
	// children lists flattened into intrusive linked lists
	// (childHead[p] is p's first child, childNext[c] the next
	// sibling), and the descendant traversal stack.
	affected  []bool
	childHead []int32
	childNext []int32
	queue     []graph.NodeID
	// Compiled overlay scratch: the current computation's failure
	// overlay as flat node/link down tables (see graph.DenseTabler),
	// filled only when the overlay cannot lend its own tables.
	denseNodes []bool
	denseLinks []bool
	// Goal-directed scratch: the settled table of the A* loop (the
	// heap carries f priorities, so staleness is tracked per node
	// rather than by distance comparison).
	settled []bool
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace returns a pooled Workspace.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// Release returns the workspace to the pool. Scratch trees obtained
// from it must not be used afterwards.
func (ws *Workspace) Release() { wsPool.Put(ws) }

// Compute is the scratch-tree equivalent of the package-level Compute:
// the returned tree is owned by the workspace and valid until its next
// call or Release.
func (ws *Workspace) Compute(g *graph.Graph, root graph.NodeID, d graph.Denied) *Tree {
	ws.ensureScratch(g.NumNodes())
	ws.runInto(&ws.scratch, g, root, d, Forward)
	return &ws.scratch
}

// ComputeReverse is the scratch-tree equivalent of the package-level
// ComputeReverse.
func (ws *Workspace) ComputeReverse(g *graph.Graph, root graph.NodeID, d graph.Denied) *Tree {
	ws.ensureScratch(g.NumNodes())
	ws.runInto(&ws.scratch, g, root, d, Reverse)
	return &ws.scratch
}

// Recompute is the scratch-tree equivalent of the package-level
// Recompute: t must have been computed under base, extra must only
// remove elements. Passing the workspace's own scratch tree as t is
// allowed (chained incremental updates).
func (ws *Workspace) Recompute(g *graph.Graph, t *Tree, base, extra graph.Denied) *Tree {
	n := g.NumNodes()
	ws.ensureScratch(n)
	s := &ws.scratch
	s.Kind, s.Root = t.Kind, t.Root
	copy(s.Dist, t.Dist)
	copy(s.Parent, t.Parent)
	copy(s.ParentLink, t.ParentLink)
	ws.recomputeInto(s, g, base, extra)
	return s
}

// ensureScratch sizes the workspace's scratch tree for n nodes.
func (ws *Workspace) ensureScratch(n int) {
	if cap(ws.scratch.Dist) < n {
		ws.scratch.Dist = make([]float64, n)
		ws.scratch.Parent = make([]int32, n)
		ws.scratch.ParentLink = make([]int32, n)
		return
	}
	ws.scratch.Dist = ws.scratch.Dist[:n]
	ws.scratch.Parent = ws.scratch.Parent[:n]
	ws.scratch.ParentLink = ws.scratch.ParentLink[:n]
}

// ensureAffected returns the affected-region table, sized for n nodes
// and cleared.
func (ws *Workspace) ensureAffected(n int) []bool {
	ws.affected = resizeCleared(ws.affected, n)
	return ws.affected
}

// ensureSettled returns the goal-search settled table, sized for n
// nodes and cleared. All bool scratch goes through resizeCleared so
// every engine sizes (and reuses) pool scratch identically — a
// workspace alternating between full-tree and goal-directed calls
// never resize-thrashes.
func (ws *Workspace) ensureSettled(n int) []bool {
	ws.settled = resizeCleared(ws.settled, n)
	return ws.settled
}

// ensureChildren returns the flattened children lists, sized for n
// nodes and reset to empty (None everywhere).
func (ws *Workspace) ensureChildren(n int) (head, next []int32) {
	if cap(ws.childHead) < n {
		ws.childHead = make([]int32, n)
		ws.childNext = make([]int32, n)
	} else {
		ws.childHead = ws.childHead[:n]
		ws.childNext = ws.childNext[:n]
	}
	for i := 0; i < n; i++ {
		ws.childHead[i] = None
		ws.childNext[i] = None
	}
	return ws.childHead, ws.childNext
}

// ensureDense returns the compiled-overlay scratch tables, sized for
// (n, m) and cleared.
func (ws *Workspace) ensureDense(n, m int) (nodes, links []bool) {
	ws.denseNodes = resizeCleared(ws.denseNodes, n)
	ws.denseLinks = resizeCleared(ws.denseLinks, m)
	return ws.denseNodes, ws.denseLinks
}

func resizeCleared(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// dense returns d as flat node/link down tables: borrowed from d when
// it is a graph.DenseTabler, zeroed scratch for graph.Nothing, and
// compiled into scratch otherwise (O(n+m) interface calls, amortized
// against the ~4m per-edge calls the settle loop would make).
func (ws *Workspace) dense(g *graph.Graph, d graph.Denied) (nodeDown, linkDown []bool) {
	if d == graph.Nothing {
		return ws.ensureDense(g.NumNodes(), g.NumLinks())
	}
	if nodes, links, ok := graph.DenseTablesOf(d); ok {
		return nodes, links
	}
	nd, ld := ws.ensureDense(g.NumNodes(), g.NumLinks())
	for v := range nd {
		nd[v] = d.NodeDown(graph.NodeID(v))
	}
	for l := range ld {
		ld[l] = d.LinkDown(graph.LinkID(l))
	}
	return nd, ld
}

// denseUnion returns the union of two overlays as flat tables,
// borrowing one side's tables outright when the other is Nothing.
func (ws *Workspace) denseUnion(g *graph.Graph, base, extra graph.Denied) (nodeDown, linkDown []bool) {
	if base == graph.Nothing {
		return ws.dense(g, extra)
	}
	if extra == graph.Nothing {
		return ws.dense(g, base)
	}
	nd, ld := ws.ensureDense(g.NumNodes(), g.NumLinks())
	orInto(nd, ld, base)
	orInto(nd, ld, extra)
	return nd, ld
}

// orInto merges d's failures into the (nd, ld) tables.
func orInto(nd, ld []bool, d graph.Denied) {
	if nodes, links, ok := graph.DenseTablesOf(d); ok {
		for i, down := range nodes {
			if down {
				nd[i] = true
			}
		}
		for i, down := range links {
			if down {
				ld[i] = true
			}
		}
		return
	}
	for v := range nd {
		if !nd[v] && d.NodeDown(graph.NodeID(v)) {
			nd[v] = true
		}
	}
	for l := range ld {
		if !ld[l] && d.LinkDown(graph.LinkID(l)) {
			ld[l] = true
		}
	}
}

// runInto resets t for (kind, root) and runs Dijkstra over the live
// subgraph under d, using the workspace's heap and the compiled dense
// view of d.
func (ws *Workspace) runInto(t *Tree, g *graph.Graph, root graph.NodeID, d graph.Denied, kind Kind) {
	n := g.NumNodes()
	t.Kind, t.Root = kind, root
	for i := 0; i < n; i++ {
		t.Dist[i] = Inf
		t.Parent[i] = None
		t.ParentLink[i] = None
	}
	dn, dl := ws.dense(g, d)
	if dn[root] {
		return
	}
	t.Dist[root] = 0
	ws.h.reset(n)
	ws.h.push(root, 0)
	settleDense(g, t, dn, dl, &ws.h, nil)
}

// recomputeInto performs the incremental update in place on nt, which
// must be a full copy of a tree computed under base; extra must only
// remove elements. See the package-level Recompute for the algorithm.
func (ws *Workspace) recomputeInto(nt *Tree, g *graph.Graph, base, extra graph.Denied) {
	n := g.NumNodes()

	if extra.NodeDown(nt.Root) {
		for i := 0; i < n; i++ {
			nt.Dist[i] = Inf
			nt.Parent[i] = None
			nt.ParentLink[i] = None
		}
		return
	}

	// 1. Find directly affected nodes: down themselves, or attached to
	// the tree through a newly removed link or parent.
	affected := ws.ensureAffected(n)
	queue := ws.queue[:0]
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if nt.Dist[v] == Inf {
			// Unreachable before; deletions cannot help, skip.
			continue
		}
		switch {
		case extra.NodeDown(id):
			affected[v] = true
			queue = append(queue, id)
		case nt.ParentLink[v] != None &&
			(extra.LinkDown(graph.LinkID(nt.ParentLink[v])) || extra.NodeDown(graph.NodeID(nt.Parent[v]))):
			affected[v] = true
			queue = append(queue, id)
		}
	}
	if len(queue) == 0 {
		ws.queue = queue
		return
	}

	// 2. Extend to all tree descendants of affected nodes.
	head, next := ws.ensureChildren(n)
	for v := 0; v < n; v++ {
		if p := nt.Parent[v]; p != None {
			next[v] = head[p]
			head[p] = int32(v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for c := head[v]; c != None; c = next[c] {
			if !affected[c] {
				affected[c] = true
				queue = append(queue, graph.NodeID(c))
			}
		}
	}
	ws.queue = queue

	// 3. Reset the affected region and seed the heap with the frontier:
	// every unaffected node with a live edge into the region, pushed
	// once at its (unchanged) distance. Settle then pops frontier and
	// region nodes interleaved in the canonical (dist, node) order a
	// cold build would use, so every equal-cost parent choice inside
	// the region matches the cold build bit for bit. (Relaxing frontier
	// edges here directly instead would fix region parents in node-scan
	// order and break that identity.)
	for v := 0; v < n; v++ {
		if affected[v] {
			nt.Dist[v] = Inf
			nt.Parent[v] = None
			nt.ParentLink[v] = None
		}
	}
	dn, dl := ws.denseUnion(g, base, extra)
	ws.h.reset(n)
	for v := 0; v < n; v++ {
		if affected[v] || nt.Dist[v] == Inf {
			continue
		}
		for _, he := range g.Adj(graph.NodeID(v)) {
			w := he.Neighbor
			if affected[w] && !dn[w] && !dl[he.Link] {
				ws.h.push(graph.NodeID(v), nt.Dist[v])
				break
			}
		}
	}

	// 4. Run Dijkstra restricted to the affected region: the scope
	// guard keeps frontier nodes' own labels fixed while their pops
	// relax edges into the region at the canonical moment.
	settleDense(g, nt, dn, dl, &ws.h, affected)
}
