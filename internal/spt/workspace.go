package spt

import (
	"sync"

	"repro/internal/graph"
)

// Workspace holds the reusable scratch state of the shortest-path
// engine: the Dijkstra priority queue, a scratch result tree, and the
// affected-region bookkeeping of incremental recomputation. Reusing a
// Workspace across calls makes repeat computations allocation-free.
//
// The scratch-returning methods (Compute, ComputeReverse, Recompute)
// return a Tree owned by the workspace: it is valid only until the
// workspace's next call or Release. Callers that retain trees must
// Clone them or use the package-level functions, which return owned
// trees while still sharing pooled scratch internally.
//
// A Workspace is single-owner state and not safe for concurrent use;
// use one per goroutine (GetWorkspace/Release round-trip through a
// sync.Pool).
type Workspace struct {
	h       minHeap
	scratch Tree
	// Incremental-recompute scratch: the affected region, the tree's
	// children lists flattened into intrusive linked lists
	// (childHead[p] is p's first child, childNext[c] the next
	// sibling), and the descendant traversal stack.
	affected  []bool
	childHead []int32
	childNext []int32
	queue     []graph.NodeID
	// union is the combined failure overlay of the current recompute,
	// stored here so boxing it into graph.Denied does not allocate.
	union graph.Union
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace returns a pooled Workspace.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// Release returns the workspace to the pool. Scratch trees obtained
// from it must not be used afterwards.
func (ws *Workspace) Release() { wsPool.Put(ws) }

// Compute is the scratch-tree equivalent of the package-level Compute:
// the returned tree is owned by the workspace and valid until its next
// call or Release.
func (ws *Workspace) Compute(g *graph.Graph, root graph.NodeID, d graph.Denied) *Tree {
	ws.ensureScratch(g.NumNodes())
	ws.runInto(&ws.scratch, g, root, d, Forward)
	return &ws.scratch
}

// ComputeReverse is the scratch-tree equivalent of the package-level
// ComputeReverse.
func (ws *Workspace) ComputeReverse(g *graph.Graph, root graph.NodeID, d graph.Denied) *Tree {
	ws.ensureScratch(g.NumNodes())
	ws.runInto(&ws.scratch, g, root, d, Reverse)
	return &ws.scratch
}

// Recompute is the scratch-tree equivalent of the package-level
// Recompute: t must have been computed under base, extra must only
// remove elements. Passing the workspace's own scratch tree as t is
// allowed (chained incremental updates).
func (ws *Workspace) Recompute(g *graph.Graph, t *Tree, base, extra graph.Denied) *Tree {
	n := g.NumNodes()
	ws.ensureScratch(n)
	s := &ws.scratch
	s.Kind, s.Root = t.Kind, t.Root
	copy(s.Dist, t.Dist)
	copy(s.Parent, t.Parent)
	copy(s.ParentLink, t.ParentLink)
	ws.recomputeInto(s, g, base, extra)
	return s
}

// ensureScratch sizes the workspace's scratch tree for n nodes.
func (ws *Workspace) ensureScratch(n int) {
	if cap(ws.scratch.Dist) < n {
		ws.scratch.Dist = make([]float64, n)
		ws.scratch.Parent = make([]int32, n)
		ws.scratch.ParentLink = make([]int32, n)
		return
	}
	ws.scratch.Dist = ws.scratch.Dist[:n]
	ws.scratch.Parent = ws.scratch.Parent[:n]
	ws.scratch.ParentLink = ws.scratch.ParentLink[:n]
}

// ensureAffected returns the affected-region table, sized for n nodes
// and cleared.
func (ws *Workspace) ensureAffected(n int) []bool {
	if cap(ws.affected) < n {
		ws.affected = make([]bool, n)
	} else {
		ws.affected = ws.affected[:n]
		for i := range ws.affected {
			ws.affected[i] = false
		}
	}
	return ws.affected
}

// ensureChildren returns the flattened children lists, sized for n
// nodes and reset to empty (None everywhere).
func (ws *Workspace) ensureChildren(n int) (head, next []int32) {
	if cap(ws.childHead) < n {
		ws.childHead = make([]int32, n)
		ws.childNext = make([]int32, n)
	} else {
		ws.childHead = ws.childHead[:n]
		ws.childNext = ws.childNext[:n]
	}
	for i := 0; i < n; i++ {
		ws.childHead[i] = None
		ws.childNext[i] = None
	}
	return ws.childHead, ws.childNext
}

// runInto resets t for (kind, root) and runs Dijkstra over the live
// subgraph under d, using the workspace's heap.
func (ws *Workspace) runInto(t *Tree, g *graph.Graph, root graph.NodeID, d graph.Denied, kind Kind) {
	n := g.NumNodes()
	t.Kind, t.Root = kind, root
	for i := 0; i < n; i++ {
		t.Dist[i] = Inf
		t.Parent[i] = None
		t.ParentLink[i] = None
	}
	if d.NodeDown(root) {
		return
	}
	t.Dist[root] = 0
	ws.h.reset(n)
	ws.h.push(root, 0)
	settle(g, t, d, &ws.h, nil)
}

// recomputeInto performs the incremental update in place on nt, which
// must be a full copy of a tree computed under base; extra must only
// remove elements. See the package-level Recompute for the algorithm.
func (ws *Workspace) recomputeInto(nt *Tree, g *graph.Graph, base, extra graph.Denied) {
	n := g.NumNodes()
	ws.union = graph.Union{X: base, Y: extra}
	combined := graph.Denied(&ws.union)

	if extra.NodeDown(nt.Root) {
		for i := 0; i < n; i++ {
			nt.Dist[i] = Inf
			nt.Parent[i] = None
			nt.ParentLink[i] = None
		}
		return
	}

	// 1. Find directly affected nodes: down themselves, or attached to
	// the tree through a newly removed link or parent.
	affected := ws.ensureAffected(n)
	queue := ws.queue[:0]
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if nt.Dist[v] == Inf {
			// Unreachable before; deletions cannot help, skip.
			continue
		}
		switch {
		case extra.NodeDown(id):
			affected[v] = true
			queue = append(queue, id)
		case nt.ParentLink[v] != None &&
			(extra.LinkDown(graph.LinkID(nt.ParentLink[v])) || extra.NodeDown(graph.NodeID(nt.Parent[v]))):
			affected[v] = true
			queue = append(queue, id)
		}
	}
	if len(queue) == 0 {
		ws.queue = queue
		return
	}

	// 2. Extend to all tree descendants of affected nodes.
	head, next := ws.ensureChildren(n)
	for v := 0; v < n; v++ {
		if p := nt.Parent[v]; p != None {
			next[v] = head[p]
			head[p] = int32(v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for c := head[v]; c != None; c = next[c] {
			if !affected[c] {
				affected[c] = true
				queue = append(queue, graph.NodeID(c))
			}
		}
	}
	ws.queue = queue

	// 3. Reset the affected region and seed the heap from the frontier:
	// live edges leading from unaffected nodes into the region.
	for v := 0; v < n; v++ {
		if affected[v] {
			nt.Dist[v] = Inf
			nt.Parent[v] = None
			nt.ParentLink[v] = None
		}
	}
	ws.h.reset(n)
	for v := 0; v < n; v++ {
		if affected[v] || nt.Dist[v] == Inf {
			continue
		}
		u := graph.NodeID(v)
		for _, he := range g.Adj(u) {
			w := he.Neighbor
			if !affected[w] || combined.NodeDown(w) || combined.LinkDown(he.Link) {
				continue
			}
			l := g.Link(he.Link)
			nd := nt.Dist[v] + edgeCost(l, nt.Kind, w)
			if nd < nt.Dist[w] {
				nt.Dist[w] = nd
				nt.Parent[w] = int32(u)
				nt.ParentLink[w] = int32(he.Link)
				ws.h.push(w, nd)
			}
		}
	}

	// 4. Run Dijkstra restricted to the affected region.
	settle(g, nt, combined, &ws.h, affected)
}
