package spt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// grid returns a w x h grid graph; node (x,y) has ID y*w+x.
func grid(w, h int) *graph.Graph {
	g := graph.New(w * h)
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.MustAddLink(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.MustAddLink(id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

func TestComputeLine(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 3; i++ {
		g.MustAddLink(graph.NodeID(i), graph.NodeID(i+1))
	}
	tr := Compute(g, 0, graph.Nothing)
	for v := 0; v < 4; v++ {
		if got := tr.Dist[v]; got != float64(v) {
			t.Errorf("Dist[%d] = %v, want %d", v, got, v)
		}
	}
	nodes, ok := tr.PathNodes(3)
	if !ok || len(nodes) != 4 || nodes[0] != 0 || nodes[3] != 3 {
		t.Errorf("PathNodes(3) = %v, %v", nodes, ok)
	}
	links, ok := tr.PathLinks(3)
	if !ok || len(links) != 3 || links[0] != 0 || links[2] != 2 {
		t.Errorf("PathLinks(3) = %v, %v", links, ok)
	}
	if h, ok := tr.Hops(3); !ok || h != 3 {
		t.Errorf("Hops(3) = %d, %v", h, ok)
	}
	if c, ok := tr.CostTo(2); !ok || c != 2 {
		t.Errorf("CostTo(2) = %v, %v", c, ok)
	}
}

func TestComputeUnreachable(t *testing.T) {
	g := graph.New(3)
	g.MustAddLink(0, 1)
	// node 2 is isolated
	tr := Compute(g, 0, graph.Nothing)
	if tr.Reachable(2) {
		t.Error("isolated node must be unreachable")
	}
	if _, ok := tr.PathNodes(2); ok {
		t.Error("PathNodes of unreachable node must report false")
	}
	if _, ok := tr.PathLinks(2); ok {
		t.Error("PathLinks of unreachable node must report false")
	}
	if _, ok := tr.Hops(2); ok {
		t.Error("Hops of unreachable node must report false")
	}
	if !tr.Reachable(0) {
		t.Error("root is reachable from itself")
	}
}

func TestComputeDownRoot(t *testing.T) {
	g := graph.New(2)
	g.MustAddLink(0, 1)
	m := graph.NewMask(g)
	m.FailNode(0)
	tr := Compute(g, 0, m)
	if tr.Reachable(0) || tr.Reachable(1) {
		t.Error("tree rooted at a failed node must be empty")
	}
}

func TestComputePicksShorterOfTwoRoutes(t *testing.T) {
	// 0-1-2 with costs 1+1, plus direct 0-2 with cost 5: go via 1.
	g := graph.New(3)
	g.MustAddLink(0, 1)
	g.MustAddLink(1, 2)
	direct, _ := g.AddLinkCost(0, 2, 5, 5)
	tr := Compute(g, 0, graph.Nothing)
	if tr.Dist[2] != 2 {
		t.Errorf("Dist[2] = %v, want 2", tr.Dist[2])
	}
	// Remove the middle link: now the direct link wins.
	m := graph.NewMask(g)
	m.FailLink(1)
	tr = Compute(g, 0, m)
	if tr.Dist[2] != 5 || graph.LinkID(tr.ParentLink[2]) != direct {
		t.Errorf("after cut: Dist[2]=%v parentLink=%d, want 5 via direct", tr.Dist[2], tr.ParentLink[2])
	}
}

func TestAsymmetricCostsForwardVsReverse(t *testing.T) {
	// 0 -> 1 costs 1, 1 -> 0 costs 10.
	g := graph.New(2)
	if _, err := g.AddLinkCost(0, 1, 1, 10); err != nil {
		t.Fatal(err)
	}
	fwd := Compute(g, 0, graph.Nothing)
	if fwd.Dist[1] != 1 {
		t.Errorf("forward Dist[1] = %v, want 1 (cost 0->1)", fwd.Dist[1])
	}
	rev := ComputeReverse(g, 0, graph.Nothing)
	if rev.Dist[1] != 10 {
		t.Errorf("reverse Dist[1] = %v, want 10 (cost 1->0)", rev.Dist[1])
	}
}

func TestReverseTreeNextHops(t *testing.T) {
	g := grid(3, 3) // destination: center node 4
	tr := ComputeReverse(g, 4, graph.Nothing)
	if _, ok := tr.NextHop(4); ok {
		t.Error("the root has no next hop")
	}
	nh, ok := tr.NextHop(0)
	if !ok || (nh != 1 && nh != 3) {
		t.Errorf("NextHop(0) = %v, %v; want a grid neighbor of 0 toward 4", nh, ok)
	}
	// Path from corner 0 to 4 must have 2 hops.
	nodes, ok := tr.PathNodes(0)
	if !ok || len(nodes) != 3 || nodes[0] != 0 || nodes[2] != 4 {
		t.Errorf("PathNodes(0) = %v", nodes)
	}
}

func TestReverseTreeIsRoutingTable(t *testing.T) {
	// Following NextHop from any node must reach the destination in
	// Dist hops (hop-count costs).
	g := grid(4, 4)
	dst := graph.NodeID(15)
	tr := ComputeReverse(g, dst, graph.Nothing)
	for v := 0; v < g.NumNodes(); v++ {
		cur := graph.NodeID(v)
		steps := 0
		for cur != dst {
			nh, ok := tr.NextHop(cur)
			if !ok {
				t.Fatalf("node %d has no next hop toward %d", cur, dst)
			}
			if !g.HasLink(cur, nh) {
				t.Fatalf("next hop %d is not adjacent to %d", nh, cur)
			}
			cur = nh
			steps++
			if steps > g.NumNodes() {
				t.Fatalf("routing loop starting at %d", v)
			}
		}
		if float64(steps) != tr.Dist[v] {
			t.Errorf("node %d: walked %d hops, Dist = %v", v, steps, tr.Dist[v])
		}
	}
}

func TestClone(t *testing.T) {
	g := grid(2, 2)
	tr := Compute(g, 0, graph.Nothing)
	c := tr.Clone()
	c.Dist[3] = 99
	c.Parent[3] = None
	if tr.Dist[3] == 99 || tr.Parent[3] == None {
		t.Error("Clone must be independent")
	}
}

func treesEqualDist(a, b *Tree) bool {
	if len(a.Dist) != len(b.Dist) {
		return false
	}
	for i := range a.Dist {
		ai, bi := a.Dist[i], b.Dist[i]
		if math.IsInf(ai, 1) != math.IsInf(bi, 1) {
			return false
		}
		if !math.IsInf(ai, 1) && math.Abs(ai-bi) > 1e-9 {
			return false
		}
	}
	return true
}

func TestRecomputeSimpleCut(t *testing.T) {
	g := grid(3, 3)
	base := graph.NewMask(g)
	tr := Compute(g, 0, base)
	extra := graph.NewMask(g)
	// Cut the link on 0's row.
	id, ok := g.LinkBetween(0, 1)
	if !ok {
		t.Fatal("missing grid link")
	}
	extra.FailLink(id)
	inc := Recompute(g, tr, base, extra)
	full := Compute(g, 0, graph.Union{X: base, Y: extra})
	if !treesEqualDist(inc, full) {
		t.Errorf("incremental dist table diverges from full recompute:\ninc=%v\nfull=%v", inc.Dist, full.Dist)
	}
}

func TestRecomputeRootDown(t *testing.T) {
	g := grid(2, 2)
	tr := Compute(g, 0, graph.Nothing)
	extra := graph.NewMask(g)
	extra.FailNode(0)
	inc := Recompute(g, tr, graph.Nothing, extra)
	for v := 0; v < g.NumNodes(); v++ {
		if inc.Reachable(graph.NodeID(v)) {
			t.Errorf("node %d reachable in tree with failed root", v)
		}
	}
}

func TestRecomputeNoChanges(t *testing.T) {
	g := grid(3, 3)
	tr := Compute(g, 4, graph.Nothing)
	inc := Recompute(g, tr, graph.Nothing, graph.NewMask(g))
	if !treesEqualDist(inc, tr) {
		t.Error("recompute with no extra failures must be a no-op")
	}
}

// randConnectedGraph builds a random connected graph with n nodes:
// a random spanning tree plus extra random links.
func randConnectedGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := graph.NodeID(perm[i])
		b := graph.NodeID(perm[rng.Intn(i)])
		cost := 1 + rng.Float64()*9
		if _, err := g.AddLinkCost(a, b, cost, 1+rng.Float64()*9); err != nil {
			panic(err)
		}
	}
	for i := 0; i < extra; i++ {
		a := graph.NodeID(rng.Intn(n))
		b := graph.NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		if _, err := g.AddLinkCost(a, b, 1+rng.Float64()*9, 1+rng.Float64()*9); err != nil {
			panic(err)
		}
	}
	return g
}

// Property: incremental recompute equals full recompute, for both tree
// kinds, under random delete sets.
func TestRecomputeMatchesFullProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	f := func() bool {
		n := 5 + rng.Intn(30)
		g := randConnectedGraph(rng, n, n)
		base := graph.NewMask(g)
		// A few pre-existing failures in the base scenario.
		for i := 0; i < n/5; i++ {
			base.FailLink(graph.LinkID(rng.Intn(g.NumLinks())))
		}
		root := graph.NodeID(rng.Intn(n))
		extra := graph.NewMask(g)
		for i := 0; i < 1+rng.Intn(5); i++ {
			extra.FailLink(graph.LinkID(rng.Intn(g.NumLinks())))
		}
		for i := 0; i < rng.Intn(3); i++ {
			v := graph.NodeID(rng.Intn(n))
			if v != root {
				extra.FailNode(v)
			}
		}
		for _, kind := range []Kind{Forward, Reverse} {
			var tr *Tree
			if kind == Forward {
				tr = Compute(g, root, base)
			} else {
				tr = ComputeReverse(g, root, base)
			}
			inc := Recompute(g, tr, base, extra)
			var full *Tree
			if kind == Forward {
				full = Compute(g, root, graph.Union{X: base, Y: extra})
			} else {
				full = ComputeReverse(g, root, graph.Union{X: base, Y: extra})
			}
			if !treesEqualDist(inc, full) {
				return false
			}
			// Parent chains in the incremental tree must reproduce the
			// claimed distances using live links only.
			combined := graph.Union{X: base, Y: extra}
			for v := 0; v < n; v++ {
				id := graph.NodeID(v)
				if !inc.Reachable(id) || id == root {
					continue
				}
				links, ok := inc.PathLinks(id)
				if !ok {
					return false
				}
				for _, lid := range links {
					if combined.LinkDown(lid) {
						return false
					}
					l := g.Link(lid)
					if combined.NodeDown(l.A) || combined.NodeDown(l.B) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: path cost claimed by the tree equals the sum of directional
// link costs along the extracted path.
func TestPathCostConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func() bool {
		n := 4 + rng.Intn(20)
		g := randConnectedGraph(rng, n, n/2)
		root := graph.NodeID(rng.Intn(n))
		for _, kind := range []Kind{Forward, Reverse} {
			var tr *Tree
			if kind == Forward {
				tr = Compute(g, root, graph.Nothing)
			} else {
				tr = ComputeReverse(g, root, graph.Nothing)
			}
			for v := 0; v < n; v++ {
				id := graph.NodeID(v)
				nodes, ok := tr.PathNodes(id)
				if !ok {
					continue
				}
				links, _ := tr.PathLinks(id)
				if len(links) != len(nodes)-1 {
					return false
				}
				sum := 0.0
				for i, lid := range links {
					l := g.Link(lid)
					from := nodes[i]
					if !l.HasEndpoint(from) || !l.HasEndpoint(nodes[i+1]) {
						return false
					}
					sum += l.CostFrom(from)
				}
				if math.Abs(sum-tr.Dist[v]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestHeapOrdering(t *testing.T) {
	h := new(minHeap)
	h.reset(0)
	vals := []float64{5, 3, 8, 1, 9, 2, 7}
	for i, d := range vals {
		h.push(graph.NodeID(i), d)
	}
	if h.len() != len(vals) {
		t.Fatalf("len = %d, want %d", h.len(), len(vals))
	}
	prev := math.Inf(-1)
	for {
		_, d, ok := h.pop()
		if !ok {
			break
		}
		if d < prev {
			t.Fatalf("heap popped out of order: %v after %v", d, prev)
		}
		prev = d
	}
	if _, _, ok := h.pop(); ok {
		t.Error("pop on empty heap must report false")
	}
}
