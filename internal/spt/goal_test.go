package spt

import (
	"math/rand"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/topology"
)

// opaque hides any overlay behind an interface with no dense tables,
// forcing goal queries onto the interface-dispatch settle loop.
type opaque struct{ d graph.Denied }

func (o opaque) NodeDown(v graph.NodeID) bool  { return o.d.NodeDown(v) }
func (o opaque) LinkDown(id graph.LinkID) bool { return o.d.LinkDown(id) }

// requireGoalMatchesTrees asserts that both goal orientations
// reproduce the full-tree engine bit for bit on (src, dst): same
// reachability verdict, same cost, same node sequence, same link
// sequence.
func requireGoalMatchesTrees(t *testing.T, label string, g *graph.Graph, d graph.Denied, heur Heuristic, src, dst graph.NodeID) {
	t.Helper()
	ws := GetWorkspace()
	defer ws.Release()
	var res GoalResult
	for _, kind := range []Kind{Forward, Reverse} {
		var tree *Tree
		var ok bool
		res.Nodes, res.Links = res.Nodes[:0], res.Links[:0]
		if kind == Forward {
			tree = Compute(g, src, d)
			ok = ws.ComputeGoal(&res, g, src, dst, d, heur)
		} else {
			tree = ComputeReverse(g, dst, d)
			ok = ws.ComputeGoalReverse(&res, g, src, dst, d, heur)
		}
		// Both orientations extract the same endpoint: dst in the
		// forward tree, src in the reverse tree.
		probe := dst
		if kind == Reverse {
			probe = src
		}
		wantNodes, wantOK := tree.PathNodes(probe)
		if ok != wantOK {
			t.Fatalf("%s/%v: goal ok=%v, tree ok=%v (src=%d dst=%d)", label, kind, ok, wantOK, src, dst)
		}
		if !ok {
			if len(res.Nodes) != 0 || len(res.Links) != 0 {
				t.Fatalf("%s/%v: unreachable result not truncated", label, kind)
			}
			continue
		}
		if res.Cost != tree.Dist[probe] {
			t.Fatalf("%s/%v: cost %v != tree %v (src=%d dst=%d)", label, kind, res.Cost, tree.Dist[probe], src, dst)
		}
		wantLinks, _ := tree.PathLinks(probe)
		if len(res.Nodes) != len(wantNodes) || len(res.Links) != len(wantLinks) {
			t.Fatalf("%s/%v: path shape %d/%d nodes, %d/%d links (src=%d dst=%d)",
				label, kind, len(res.Nodes), len(wantNodes), len(res.Links), len(wantLinks), src, dst)
		}
		for i := range wantNodes {
			if res.Nodes[i] != wantNodes[i] {
				t.Fatalf("%s/%v: nodes %v != %v (src=%d dst=%d)", label, kind, res.Nodes, wantNodes, src, dst)
			}
		}
		for i := range wantLinks {
			if res.Links[i] != wantLinks[i] {
				t.Fatalf("%s/%v: links %v != %v (src=%d dst=%d)", label, kind, res.Links, wantLinks, src, dst)
			}
		}
	}
}

// Differential property over the bundled topologies: on every Table II
// topology, under random failure circles, goal-directed search with
// every heuristic (and without one) is bit-identical to the full-tree
// engine — the tentpole's non-negotiable.
func TestComputeGoalMatchesTreeAllTopologies(t *testing.T) {
	for _, name := range topology.ASNames() {
		t.Run(name, func(t *testing.T) {
			topo := topology.GenerateAS(name, 1)
			g := topo.G
			heurs := []struct {
				label string
				h     Heuristic
			}{
				{"none", nil},
				{"geom", NewGeomHeuristic(g, topo.Coords)},
				{"alt", NewALT(g, 0, nil)},
			}
			rng := rand.New(rand.NewSource(7))
			n := g.NumNodes()
			trials := 12
			if testing.Short() {
				trials = 3
			}
			for trial := 0; trial < trials; trial++ {
				sc := failure.NewScenario(topo, failure.RandomArea(rng, failure.MinRadius, failure.MaxRadius))
				src := graph.NodeID(rng.Intn(n))
				dst := graph.NodeID(rng.Intn(n))
				for _, h := range heurs {
					requireGoalMatchesTrees(t, h.label+"/dense", g, sc, h.h, src, dst)
					requireGoalMatchesTrees(t, h.label+"/opaque", g, opaque{sc}, h.h, src, dst)
				}
			}
			// The clean graph too (zeroed-scratch dense arm).
			for _, h := range heurs {
				requireGoalMatchesTrees(t, h.label+"/clean", g, graph.Nothing, h.h, 0, graph.NodeID(n-1))
			}
		})
	}
}

// Differential property on random weighted graphs (parallel links,
// asymmetric costs, random node/link failures): the regime where
// equal-cost tie-breaks and exact-equality reconstruction have to
// reproduce Dijkstra's parent choices without unit-cost help.
func TestComputeGoalMatchesTreeRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 250
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(30)
		g := randConnectedGraph(rng, n, rng.Intn(40))
		m := graph.NewMask(g)
		for v := 0; v < n; v++ {
			if rng.Intn(6) == 0 {
				m.FailNode(graph.NodeID(v))
			}
		}
		for id := 0; id < g.NumLinks(); id++ {
			if rng.Intn(6) == 0 {
				m.FailLink(graph.LinkID(id))
			}
		}
		heurs := []struct {
			label string
			h     Heuristic
		}{
			{"none", nil},
			{"alt", NewALT(g, 4, nil)},
		}
		src := graph.NodeID(rng.Intn(n))
		dst := graph.NodeID(rng.Intn(n))
		for _, h := range heurs {
			requireGoalMatchesTrees(t, h.label+"/mask", g, m, h.h, src, dst)
			requireGoalMatchesTrees(t, h.label+"/opaque", g, opaque{m}, h.h, src, dst)
			requireGoalMatchesTrees(t, h.label+"/nothing", g, graph.Nothing, h.h, src, dst)
		}
	}
}

// Property pinned by the issue: h(v) <= true distance for both
// heuristics, on every bundled topology, under random denied overlays.
// The comparison is exact (no epsilon): that is precisely the contract
// the search relies on, and the heuristics' built-in slack is what
// absorbs float rounding.
func TestHeuristicAdmissibility(t *testing.T) {
	for _, name := range topology.ASNames() {
		t.Run(name, func(t *testing.T) {
			topo := topology.GenerateAS(name, 1)
			g := topo.G
			n := g.NumNodes()
			heurs := []struct {
				label string
				h     Heuristic
			}{
				{"geom", NewGeomHeuristic(g, topo.Coords)},
				{"alt", NewALT(g, 0, nil)},
			}
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 6; trial++ {
				m := graph.NewMask(g)
				if trial > 0 { // trial 0 checks the clean graph itself
					for v := 0; v < n; v++ {
						if rng.Intn(8) == 0 {
							m.FailNode(graph.NodeID(v))
						}
					}
					for id := 0; id < g.NumLinks(); id++ {
						if rng.Intn(8) == 0 {
							m.FailLink(graph.LinkID(id))
						}
					}
				}
				for probe := 0; probe < 4; probe++ {
					src := graph.NodeID(rng.Intn(n))
					fwd := Compute(g, src, m)
					rev := ComputeReverse(g, src, m)
					for _, h := range heurs {
						for v := 0; v < n; v++ {
							id := graph.NodeID(v)
							if fwd.Reachable(id) && h.h.Lower(src, id) > fwd.Dist[v] {
								t.Fatalf("%s: Lower(%d,%d)=%v > dist %v", h.label, src, id, h.h.Lower(src, id), fwd.Dist[v])
							}
							if rev.Reachable(id) && h.h.Lower(id, src) > rev.Dist[v] {
								t.Fatalf("%s: Lower(%d,%d)=%v > reverse dist %v", h.label, id, src, h.h.Lower(id, src), rev.Dist[v])
							}
						}
					}
				}
			}
		})
	}
}

// Landmark selection is a pure function of the graph: rebuilding the
// same world yields the same landmark set, and the clean-tree-cache
// provider changes nothing (it feeds the same distances).
func TestALTLandmarkDeterminism(t *testing.T) {
	for _, name := range topology.ASNames() {
		topo := topology.GenerateAS(name, 1)
		a := NewALT(topo.G, 0, nil)
		want := min(DefaultLandmarks, topo.G.NumNodes())
		if len(a.Landmarks()) != want {
			t.Fatalf("%s: %d landmarks, want %d", name, len(a.Landmarks()), want)
		}
		rebuilt := topology.GenerateAS(name, 1)
		b := NewALT(rebuilt.G, 0, nil)
		cache := map[graph.NodeID]*Tree{}
		c := NewALT(topo.G, 0, func(v graph.NodeID) *Tree {
			if tr, ok := cache[v]; ok {
				return tr
			}
			tr := Compute(topo.G, v, graph.Nothing)
			cache[v] = tr
			return tr
		})
		for i, l := range a.Landmarks() {
			if b.Landmarks()[i] != l || c.Landmarks()[i] != l {
				t.Fatalf("%s: landmark sets diverge: %v / %v / %v", name, a.Landmarks(), b.Landmarks(), c.Landmarks())
			}
		}
	}
}

// Regression for the shared-scratch fix: a warm workspace alternating
// between the full-tree and goal-directed engines must run with zero
// allocations — the engines share sizing helpers, so neither resizes
// the other's scratch away.
func TestGoalWorkspaceReuseNoAllocs(t *testing.T) {
	topo := topology.GenerateAS("AS1239", 1)
	g := topo.G
	n := g.NumNodes()
	heur := NewALT(g, 0, nil)
	m := graph.NewMask(g)
	m.FailLink(0)
	var od graph.Denied = opaque{m}

	ws := GetWorkspace()
	defer ws.Release()
	res := GoalResult{
		Nodes: make([]graph.NodeID, 0, n),
		Links: make([]graph.LinkID, 0, n),
	}
	rng := rand.New(rand.NewSource(5))
	pairs := make([][2]graph.NodeID, 32)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
	}
	i := 0
	round := func() {
		p := pairs[i%len(pairs)]
		i++
		res.Nodes, res.Links = res.Nodes[:0], res.Links[:0]
		ws.ComputeGoal(&res, g, p[0], p[1], m, heur)
		res.Nodes, res.Links = res.Nodes[:0], res.Links[:0]
		ws.ComputeGoalReverse(&res, g, p[0], p[1], od, heur)
		ws.Compute(g, p[0], m)
	}
	for j := 0; j < len(pairs); j++ { // size every scratch buffer
		round()
	}
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("warm workspace allocated %.1f per round, want 0", allocs)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
