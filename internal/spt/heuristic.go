package spt

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Engine selects the phase-2 route engine: the full-tree Dijkstra
// path (the default) or a goal-directed single-destination A* search
// with one of the pluggable admissible heuristics. All engines produce
// bit-identical routes and costs (see ComputeGoal); they differ only
// in how much of the graph a single-pair query has to settle.
type Engine uint8

const (
	// EngineDijkstra is the full shortest-path-tree engine: one
	// (incremental) Dijkstra serves every destination.
	EngineDijkstra Engine = iota
	// EngineAStar is goal-directed A* with the Euclidean distance
	// heuristic (NewGeomHeuristic).
	EngineAStar
	// EngineALT is goal-directed A* with landmark triangle-inequality
	// bounds (NewALT), per Goldberg-Harrelson.
	EngineALT
)

// String returns the engine's flag spelling.
func (e Engine) String() string {
	switch e {
	case EngineDijkstra:
		return "dijkstra"
	case EngineAStar:
		return "astar"
	case EngineALT:
		return "alt"
	}
	return fmt.Sprintf("Engine(%d)", uint8(e))
}

// ParseEngine parses a -phase2 flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "dijkstra", "":
		return EngineDijkstra, nil
	case "astar":
		return EngineAStar, nil
	case "alt":
		return EngineALT, nil
	}
	return EngineDijkstra, fmt.Errorf("unknown -phase2 engine %q (want dijkstra, astar, or alt)", s)
}

// Heuristic supplies admissible, consistent lower bounds on
// shortest-path costs in the clean graph. Because the recovery engines
// only ever *delete* elements from the clean graph (pruned views,
// carried failure sets, configuration isolation overlays), a clean
// lower bound remains a lower bound under every overlay they present,
// so one heuristic serves all of them.
type Heuristic interface {
	// Lower returns a lower bound on the cost of the cheapest a→b path
	// in the clean graph. It must be consistent: for every link (u, w)
	// with cost c, Lower(u, b) <= c + Lower(w, b) and
	// Lower(a, u) + c >= Lower(a, w) - both follow from the triangle
	// inequality for the two constructions in this package.
	Lower(a, b graph.NodeID) float64
}

// heuristicSlack scales every heuristic strictly below its real-valued
// bound. The admissibility and consistency arguments hold in exact
// arithmetic; the slack absorbs the ulp-level rounding of the float
// evaluation so that no bound ever exceeds a true distance by a
// rounding error. Scaling a consistent heuristic by a constant in
// (0, 1] keeps it consistent.
const heuristicSlack = 1 - 1e-9

// GeomHeuristic is the Euclidean-distance heuristic: every router
// knows the static coordinates of all nodes (the paper's own
// assumption, which phase 1's geometric forwarding already relies on),
// so dist(a,b) * min over links of cost/length is a free lower bound
// on any a→b path cost - each link's cost is at least ratio times its
// drawn length, and the drawn lengths of a path dominate the straight
// Euclidean distance.
type GeomHeuristic struct {
	coords []geom.Point
	ratio  float64
}

// NewGeomHeuristic computes the graph's minimum cost-per-unit-distance
// ratio once. Links shorter than geom.Eps impose no constraint (any
// ratio satisfies cost >= ratio*0); a graph with no constraining link
// degenerates to the zero heuristic.
func NewGeomHeuristic(g *graph.Graph, coords []geom.Point) *GeomHeuristic {
	ratio := math.Inf(1)
	for _, l := range g.Links() {
		length := coords[l.A].Dist(coords[l.B])
		if length <= geom.Eps {
			continue
		}
		for _, cost := range [2]float64{l.CostFrom(l.A), l.CostFrom(l.B)} {
			if r := cost / length; r < ratio {
				ratio = r
			}
		}
	}
	if math.IsInf(ratio, 1) {
		ratio = 0
	}
	return &GeomHeuristic{coords: coords, ratio: ratio * heuristicSlack}
}

// Lower implements Heuristic.
func (h *GeomHeuristic) Lower(a, b graph.NodeID) float64 {
	return h.coords[a].Dist(h.coords[b]) * h.ratio
}

// DefaultLandmarks is the landmark count NewALT uses when k <= 0,
// inside the ~8-16 range where ALT bounds saturate on Table II-sized
// topologies.
const DefaultLandmarks = 12

// ALT is the landmark heuristic of Goldberg-Harrelson: for a landmark
// L, the triangle inequality gives d(a,b) >= d(a,L) - d(b,L) and
// d(a,b) >= d(L,b) - d(L,a); the heuristic is the max of those bounds
// over all landmarks, clamped at 0. The distance vectors are computed
// once on the clean graph; under the recovery engines' delete-only
// overlays true distances only grow, so the clean bounds stay
// admissible (and consistency over the surviving links is inherited
// from the clean graph).
type ALT struct {
	landmarks []graph.NodeID
	// to[i][v] is the clean cost v -> landmarks[i] (reverse SPT);
	// from[i][v] is the clean cost landmarks[i] -> v (forward SPT).
	to   [][]float64
	from [][]float64
}

// NewALT picks k landmarks (DefaultLandmarks when k <= 0, capped at
// the node count) by farthest-point sampling over clean graph
// distances and precomputes their forward and reverse distance
// vectors. The clean provider, when non-nil, supplies the cached
// pre-failure forward SPT rooted at a node (RTR's per-node clean-tree
// cache); the returned trees must outlive the ALT and are read only.
// Selection is deterministic: ties break on the smaller node ID, and
// unreachable nodes rank as farthest so disconnected components get a
// landmark first.
func NewALT(g *graph.Graph, k int, clean func(graph.NodeID) *Tree) *ALT {
	n := g.NumNodes()
	h := &ALT{}
	if n == 0 {
		return h
	}
	if k <= 0 {
		k = DefaultLandmarks
	}
	if k > n {
		k = n
	}
	forward := func(v graph.NodeID) []float64 {
		if clean != nil {
			return clean(v).Dist
		}
		return Compute(g, v, graph.Nothing).Dist
	}
	// farther ranks candidate distances for the sampling: unreachable
	// (+Inf) beats any finite distance, larger beats smaller.
	farther := func(a, b float64) bool {
		ai, bi := math.IsInf(a, 1), math.IsInf(b, 1)
		if ai != bi {
			return ai
		}
		return a > b
	}
	// Seed: the node farthest from node 0.
	d0 := forward(0)
	cur := graph.NodeID(0)
	for v := 1; v < n; v++ {
		if farther(d0[v], d0[cur]) {
			cur = graph.NodeID(v)
		}
	}
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = math.Inf(1)
	}
	chosen := make([]bool, n)
	for len(h.landmarks) < k {
		h.landmarks = append(h.landmarks, cur)
		chosen[cur] = true
		fd := forward(cur)
		h.from = append(h.from, fd)
		h.to = append(h.to, ComputeReverse(g, cur, graph.Nothing).Dist)
		for v, dv := range fd {
			if dv < minD[v] {
				minD[v] = dv
			}
		}
		minD[cur] = 0
		next := -1
		for v := 0; v < n; v++ {
			if chosen[v] {
				continue
			}
			if next < 0 || farther(minD[v], minD[next]) {
				next = v
			}
		}
		if next < 0 || minD[next] == 0 {
			break // every remaining node coincides with a landmark
		}
		cur = graph.NodeID(next)
	}
	return h
}

// Landmarks returns the selected landmark nodes in selection order.
// The returned slice is shared and must not be modified.
func (h *ALT) Landmarks() []graph.NodeID { return h.landmarks }

// Lower implements Heuristic. Landmark terms involving an unreachable
// (+Inf) distance are skipped: dropping a term only weakens the lower
// bound, and on undirected graphs reachability is a component
// property, so adjacent nodes always agree on which terms exist -
// which is what keeps the max consistent.
func (h *ALT) Lower(a, b graph.NodeID) float64 {
	best := 0.0
	for i := range h.landmarks {
		ta, tb := h.to[i][a], h.to[i][b]
		if !math.IsInf(ta, 1) && !math.IsInf(tb, 1) {
			if d := ta - tb; d > best {
				best = d
			}
		}
		fa, fb := h.from[i][a], h.from[i][b]
		if !math.IsInf(fa, 1) && !math.IsInf(fb, 1) {
			if d := fb - fa; d > best {
				best = d
			}
		}
	}
	return best * heuristicSlack
}
