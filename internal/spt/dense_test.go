package spt

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// opaqueDenied hides a mask behind an interface with no dense tables,
// forcing the workspace down the compile-into-scratch path.
type opaqueDenied struct{ m *graph.Mask }

func (d opaqueDenied) NodeDown(v graph.NodeID) bool  { return d.m.NodeDown(v) }
func (d opaqueDenied) LinkDown(id graph.LinkID) bool { return d.m.LinkDown(id) }

// computeGeneric is a cold Dijkstra through the reference settle loop —
// interface dispatch on every edge, no dense compilation. It is the
// oracle the devirtualized production path must match bit for bit.
func computeGeneric(g *graph.Graph, root graph.NodeID, d graph.Denied, kind Kind) *Tree {
	n := g.NumNodes()
	t := &Tree{
		Kind:       kind,
		Root:       root,
		Dist:       make([]float64, n),
		Parent:     make([]int32, n),
		ParentLink: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		t.Dist[i] = Inf
		t.Parent[i] = None
		t.ParentLink[i] = None
	}
	if d.NodeDown(root) {
		return t
	}
	t.Dist[root] = 0
	var h minHeap
	h.reset(n)
	h.push(root, 0)
	settle(g, t, d, &h, nil)
	return t
}

func requireTreesIdentical(t *testing.T, label string, got, want *Tree) {
	t.Helper()
	if got.Kind != want.Kind || got.Root != want.Root {
		t.Fatalf("%s: tree identity mismatch", label)
	}
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] || got.Parent[v] != want.Parent[v] || got.ParentLink[v] != want.ParentLink[v] {
			t.Fatalf("%s: node %d: got (dist %v, parent %d, link %d), want (%v, %d, %d)",
				label, v,
				got.Dist[v], got.Parent[v], got.ParentLink[v],
				want.Dist[v], want.Parent[v], want.ParentLink[v])
		}
	}
}

// Property: the dense fast path (production Compute/ComputeReverse)
// produces trees bit-identical to the reference interface-dispatch
// settle loop, for borrowed tables (Mask), compiled opaque overlays,
// and the all-up overlay, on random weighted graphs.
func TestDenseSettleMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(30)
		g := randConnectedGraph(rng, n, rng.Intn(40))
		m := graph.NewMask(g)
		for v := 0; v < n; v++ {
			if rng.Intn(5) == 0 {
				m.FailNode(graph.NodeID(v))
			}
		}
		for id := 0; id < g.NumLinks(); id++ {
			if rng.Intn(5) == 0 {
				m.FailLink(graph.LinkID(id))
			}
		}
		overlays := []struct {
			label string
			d     graph.Denied
		}{
			{"mask", m},                 // borrowed tables
			{"opaque", opaqueDenied{m}}, // compiled into scratch
			{"nothing", graph.Nothing},  // zeroed scratch
		}
		root := graph.NodeID(rng.Intn(n))
		for _, o := range overlays {
			want := computeGeneric(g, root, o.d, Forward)
			requireTreesIdentical(t, o.label+"/forward", Compute(g, root, o.d), want)
			want = computeGeneric(g, root, o.d, Reverse)
			requireTreesIdentical(t, o.label+"/reverse", ComputeReverse(g, root, o.d), want)
		}
	}
}
