package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestDistToSegment(t *testing.T) {
	cases := []struct {
		name string
		s, u Segment
		want float64
	}{
		{"proper crossing", Segment{Point{0, 0}, Point{10, 10}}, Segment{Point{0, 10}, Point{10, 0}}, 0},
		{"shared endpoint", Segment{Point{0, 0}, Point{10, 0}}, Segment{Point{10, 0}, Point{10, 10}}, 0},
		{"endpoint on interior", Segment{Point{0, 0}, Point{10, 0}}, Segment{Point{5, 0}, Point{5, 10}}, 0},
		{"collinear overlap", Segment{Point{0, 0}, Point{10, 0}}, Segment{Point{5, 0}, Point{15, 0}}, 0},
		{"collinear gap", Segment{Point{0, 0}, Point{4, 0}}, Segment{Point{7, 0}, Point{10, 0}}, 3},
		{"parallel", Segment{Point{0, 0}, Point{10, 0}}, Segment{Point{0, 4}, Point{10, 4}}, 4},
		{"skew, endpoint nearest", Segment{Point{0, 0}, Point{10, 0}}, Segment{Point{3, 5}, Point{4, 9}}, 5},
		{"degenerate both", Segment{Point{1, 1}, Point{1, 1}}, Segment{Point{4, 5}, Point{4, 5}}, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.s.DistToSegment(c.u)
			if math.Abs(got-c.want) > 1e-9 {
				t.Errorf("DistToSegment(%v, %v) = %v, want %v", c.s, c.u, got, c.want)
			}
			if sym := c.u.DistToSegment(c.s); math.Abs(sym-got) > 1e-9 {
				t.Errorf("asymmetric: %v vs %v", got, sym)
			}
		})
	}
}

func TestCapsuleContains(t *testing.T) {
	c := Capsule{Seg: Segment{Point{100, 100}, Point{300, 100}}, Radius: 50}
	in := []Point{{100, 100}, {200, 130}, {320, 100}, {80, 90}}
	out := []Point{{200, 160}, {351, 100}, {49, 100}, {0, 0}}
	for _, p := range in {
		if !c.Contains(p) {
			t.Errorf("%v must contain %v", c, p)
		}
	}
	for _, p := range out {
		if c.Contains(p) {
			t.Errorf("%v must not contain %v", c, p)
		}
	}
}

func TestCapsuleIntersectsSegment(t *testing.T) {
	c := Capsule{Seg: Segment{Point{100, 100}, Point{300, 100}}, Radius: 50}
	hits := []Segment{
		{Point{200, 0}, Point{200, 300}},  // crosses the spine
		{Point{0, 130}, Point{400, 130}},  // parallel inside the band
		{Point{340, 100}, Point{500, 100}}, // enters the end cap
		{Point{150, 120}, Point{180, 140}}, // fully inside
	}
	misses := []Segment{
		{Point{0, 200}, Point{400, 200}},   // parallel above
		{Point{360, 100}, Point{500, 100}}, // beyond the end cap
		{Point{0, 0}, Point{40, 40}},       // far corner
	}
	for _, s := range hits {
		if !c.IntersectsSegment(s) {
			t.Errorf("%v must intersect %v", c, s)
		}
	}
	for _, s := range misses {
		if c.IntersectsSegment(s) {
			t.Errorf("%v must not intersect %v", c, s)
		}
	}
}

// TestCapsuleDegenerateMatchesDisk pins the capsule/disk equivalence a
// zero-length spine promises: away from the boundary (where the two
// predicates' epsilon conventions differ), a dot capsule and a disk at
// the same center agree on containment and segment intersection.
func TestCapsuleDegenerateMatchesDisk(t *testing.T) {
	center := Point{500, 500}
	cap := Capsule{Seg: Segment{center, center}, Radius: 120}
	disk := Disk{Center: center, Radius: 120}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		p := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		if math.Abs(center.Dist(p)-120) < 1e-6 {
			continue // boundary: epsilon conventions differ
		}
		if cap.Contains(p) != disk.Contains(p) {
			t.Fatalf("containment disagrees at %v", p)
		}
		q := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		s := Segment{p, q}
		if math.Abs(s.DistToPoint(center)-120) < 1e-6 {
			continue
		}
		if cap.IntersectsSegment(s) != disk.IntersectsSegment(s) {
			t.Fatalf("intersection disagrees on %v", s)
		}
	}
}

// Property: DistToSegment is consistent with dense point sampling —
// the true minimum over sampled point pairs can only be larger (the
// sampling is coarse) but never smaller than the closed-form answer.
func TestDistToSegmentSamplingLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		s := Segment{randPt(rng), randPt(rng)}
		u := Segment{randPt(rng), randPt(rng)}
		d := s.DistToSegment(u)
		if d < 0 {
			t.Fatalf("negative distance %v", d)
		}
		const steps = 24
		sampled := math.Inf(1)
		for i := 0; i <= steps; i++ {
			p := lerp(s.A, s.B, float64(i)/steps)
			if v := u.DistToPoint(p); v < sampled {
				sampled = v
			}
		}
		if d > sampled+1e-9 {
			t.Fatalf("DistToSegment(%v,%v)=%v exceeds sampled min %v", s, u, d, sampled)
		}
	}
}

func randPt(rng *rand.Rand) Point {
	return Point{rng.Float64() * 2000, rng.Float64() * 2000}
}

func lerp(a, b Point, t float64) Point {
	return Point{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}
