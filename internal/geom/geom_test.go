package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, -2}

	if got := p.Add(q); got != (Point{4, 2}) {
		t.Errorf("Add = %v, want (4,2)", got)
	}
	if got := p.Sub(q); got != (Point{2, 6}) {
		t.Errorf("Sub = %v, want (2,6)", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v, want -5", got)
	}
	if got := p.Cross(q); got != -6-4 {
		t.Errorf("Cross = %v, want -10", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := p.Dist(Point{0, 0}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.Dist2(Point{0, 0}); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
}

func TestPointEq(t *testing.T) {
	p := Point{1, 1}
	if !p.Eq(Point{1 + Eps/2, 1 - Eps/2}) {
		t.Error("points within Eps should be equal")
	}
	if p.Eq(Point{1.1, 1}) {
		t.Error("distinct points should not be equal")
	}
}

func TestSegmentLengthMidpoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{6, 8}}
	if got := s.Length(); got != 10 {
		t.Errorf("Length = %v, want 10", got)
	}
	if got := s.Midpoint(); got != (Point{3, 4}) {
		t.Errorf("Midpoint = %v, want (3,4)", got)
	}
}

func TestCrossesProper(t *testing.T) {
	// Classic X crossing.
	s := Segment{Point{0, 0}, Point{10, 10}}
	u := Segment{Point{0, 10}, Point{10, 0}}
	if !s.Crosses(u) || !u.Crosses(s) {
		t.Error("X-shaped segments must cross (symmetrically)")
	}
}

func TestCrossesDisjoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{1, 1}}
	u := Segment{Point{5, 5}, Point{6, 6}}
	if s.Crosses(u) {
		t.Error("far-apart segments must not cross")
	}
	// Parallel, close but disjoint.
	v := Segment{Point{0, 1}, Point{1, 2}}
	if s.Crosses(v) {
		t.Error("parallel disjoint segments must not cross")
	}
}

func TestCrossesSharedEndpoint(t *testing.T) {
	// Two links meeting at a router never "cross".
	s := Segment{Point{0, 0}, Point{10, 0}}
	u := Segment{Point{0, 0}, Point{0, 10}}
	if s.Crosses(u) {
		t.Error("segments sharing an endpoint must not cross")
	}
	// Even collinear continuation at a shared endpoint.
	v := Segment{Point{10, 0}, Point{20, 0}}
	if s.Crosses(v) {
		t.Error("collinear continuation sharing an endpoint must not cross")
	}
}

func TestCrossesTContact(t *testing.T) {
	// Endpoint of one segment in the interior of the other: counts as a
	// crossing (the contact point is not a shared endpoint).
	s := Segment{Point{0, 0}, Point{10, 0}}
	u := Segment{Point{5, 0}, Point{5, 7}}
	if !s.Crosses(u) || !u.Crosses(s) {
		t.Error("T-contact must count as crossing")
	}
}

func TestCrossesCollinearOverlap(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	u := Segment{Point{5, 0}, Point{15, 0}}
	if !s.Crosses(u) {
		t.Error("collinear overlapping segments must cross")
	}
}

func TestCrossesSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		p := func() Point { return Point{rng.Float64() * 100, rng.Float64() * 100} }
		s := Segment{p(), p()}
		u := Segment{p(), p()}
		return s.Crosses(u) == u.Crosses(s)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDistToPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{5, 3}, 3},  // projects inside
		{Point{-4, 3}, 5}, // projects before A
		{Point{14, 3}, 5}, // projects after B
		{Point{7, 0}, 0},  // on the segment
		{Point{10, 0}, 0}, // at endpoint
		{Point{0, -2.5}, 2.5},
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDistToPointDegenerate(t *testing.T) {
	s := Segment{Point{2, 2}, Point{2, 2}}
	if got := s.DistToPoint(Point{5, 6}); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate DistToPoint = %v, want 5", got)
	}
}

func TestDiskContains(t *testing.T) {
	d := Disk{Point{0, 0}, 10}
	if !d.Contains(Point{3, 3}) {
		t.Error("interior point must be contained")
	}
	if d.Contains(Point{10, 0}) {
		t.Error("boundary point must not be contained (strict interior)")
	}
	if d.Contains(Point{11, 0}) {
		t.Error("exterior point must not be contained")
	}
}

func TestDiskIntersectsSegment(t *testing.T) {
	d := Disk{Point{0, 0}, 5}
	if !d.IntersectsSegment(Segment{Point{-10, 0}, Point{10, 0}}) {
		t.Error("chord through the center must intersect")
	}
	if !d.IntersectsSegment(Segment{Point{-10, 3}, Point{10, 3}}) {
		t.Error("chord through the interior must intersect")
	}
	if d.IntersectsSegment(Segment{Point{-10, 5}, Point{10, 5}}) {
		t.Error("tangent segment must not intersect (strict)")
	}
	if d.IntersectsSegment(Segment{Point{-10, 8}, Point{10, 8}}) {
		t.Error("distant segment must not intersect")
	}
	if !d.IntersectsSegment(Segment{Point{1, 1}, Point{2, 2}}) {
		t.Error("segment fully inside must intersect")
	}
}

func TestDiskArea(t *testing.T) {
	d := Disk{Point{0, 0}, 2}
	if got := d.Area(); math.Abs(got-4*math.Pi) > 1e-12 {
		t.Errorf("Area = %v, want 4π", got)
	}
}

func TestCCWAngleQuadrants(t *testing.T) {
	east := Point{1, 0}
	cases := []struct {
		to   Point
		want float64
	}{
		{Point{0, 1}, math.Pi / 2},      // north is a quarter turn CCW
		{Point{-1, 0}, math.Pi},         // west is a half turn
		{Point{0, -1}, 3 * math.Pi / 2}, // south is three quarters
		{Point{1, 0}, 2 * math.Pi},      // zero rotation reported as full turn
	}
	for _, c := range cases {
		if got := CCWAngle(east, c.to); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("CCWAngle(east, %v) = %v, want %v", c.to, got, c.want)
		}
	}
}

func TestCCWAngleRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		from := Point{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		to := Point{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		if from.Norm() < 1e-3 || to.Norm() < 1e-3 {
			return true // skip near-degenerate directions
		}
		a := CCWAngle(from, to)
		return a > 0 && a <= 2*math.Pi+Eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSweepOrder(t *testing.T) {
	o := Point{0, 0}
	ref := Point{1, 0} // sweeping line points east
	north := Point{0, 1}
	west := Point{-1, 0}
	south := Point{0, -1}

	if !SweepOrder(o, ref, north, west) {
		t.Error("north must come before west in CCW sweep from east")
	}
	if !SweepOrder(o, ref, west, south) {
		t.Error("west must come before south")
	}
	if SweepOrder(o, ref, south, north) {
		t.Error("south must not come before north")
	}
	// The reference direction itself is the last candidate (angle 2π).
	if SweepOrder(o, ref, ref, north) {
		t.Error("reference direction must sort last, not first")
	}
}

func TestSweepOrderTieBreakByDistance(t *testing.T) {
	o := Point{0, 0}
	ref := Point{1, 0}
	near := Point{0, 2}
	far := Point{0, 5} // same direction as near
	if !SweepOrder(o, ref, near, far) {
		t.Error("collinear candidates must order nearer-first")
	}
	if SweepOrder(o, ref, far, near) {
		t.Error("tie-break must be asymmetric")
	}
}

func TestStringers(t *testing.T) {
	if s := (Point{1, 2}).String(); s == "" {
		t.Error("Point.String must be non-empty")
	}
	if s := (Segment{Point{0, 0}, Point{1, 1}}).String(); s == "" {
		t.Error("Segment.String must be non-empty")
	}
	if s := (Disk{Point{0, 0}, 1}).String(); s == "" {
		t.Error("Disk.String must be non-empty")
	}
}
