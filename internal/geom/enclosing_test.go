package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSmallestEnclosingDiskTrivial(t *testing.T) {
	if d := SmallestEnclosingDisk(nil); d.Radius != 0 {
		t.Errorf("empty set: %v", d)
	}
	d := SmallestEnclosingDisk([]Point{{3, 4}})
	if d.Radius != 0 || !d.Center.Eq(Point{3, 4}) {
		t.Errorf("single point: %v", d)
	}
}

func TestSmallestEnclosingDiskTwoPoints(t *testing.T) {
	d := SmallestEnclosingDisk([]Point{{0, 0}, {10, 0}})
	if !d.Center.Eq(Point{5, 0}) || math.Abs(d.Radius-5) > 1e-9 {
		t.Errorf("two points: %v", d)
	}
}

func TestSmallestEnclosingDiskTriangle(t *testing.T) {
	// Equilateral-ish: circumcircle of a right triangle is the
	// hypotenuse midpoint.
	d := SmallestEnclosingDisk([]Point{{0, 0}, {8, 0}, {0, 6}})
	if !d.Center.Eq(Point{4, 3}) || math.Abs(d.Radius-5) > 1e-9 {
		t.Errorf("right triangle: %v", d)
	}
}

func TestSmallestEnclosingDiskObtuse(t *testing.T) {
	// For an obtuse triangle the two farthest points define the disk;
	// the third is strictly inside.
	d := SmallestEnclosingDisk([]Point{{0, 0}, {10, 0}, {5, 1}})
	if !d.Center.Eq(Point{5, 0}) || math.Abs(d.Radius-5) > 1e-9 {
		t.Errorf("obtuse triangle: %v", d)
	}
}

func TestSmallestEnclosingDiskCollinear(t *testing.T) {
	d := SmallestEnclosingDisk([]Point{{0, 0}, {4, 0}, {10, 0}, {7, 0}})
	if !d.Center.Eq(Point{5, 0}) || math.Abs(d.Radius-5) > 1e-9 {
		t.Errorf("collinear points: %v", d)
	}
}

func TestSmallestEnclosingDiskDuplicates(t *testing.T) {
	d := SmallestEnclosingDisk([]Point{{1, 1}, {1, 1}, {1, 1}})
	if d.Radius > 1e-9 || !d.Center.Eq(Point{1, 1}) {
		t.Errorf("duplicates: %v", d)
	}
}

// Properties: (1) every input point is inside the closed disk;
// (2) the disk is minimal — no disk through fewer support points is
// smaller, approximated by checking the radius does not exceed the
// brute-force best over all point pairs and triples.
func TestSmallestEnclosingDiskProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		n := 1 + rng.Intn(25)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		d := SmallestEnclosingDisk(pts)
		for _, p := range pts {
			if d.Center.Dist(p) > d.Radius+1e-6 {
				return false
			}
		}
		// Brute force: the optimum is determined by 2 or 3 points.
		best := math.Inf(1)
		contains := func(c Disk) bool {
			for _, p := range pts {
				if c.Center.Dist(p) > c.Radius+1e-6 {
					return false
				}
			}
			return true
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if c := diskFrom2(pts[i], pts[j]); contains(c) && c.Radius < best {
					best = c.Radius
				}
				for k := j + 1; k < n; k++ {
					c := circumdisk(pts[i], pts[j], pts[k])
					if c.Radius > 0 && contains(c) && c.Radius < best {
						best = c.Radius
					}
				}
			}
		}
		return d.Radius <= best+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCircumdisk(t *testing.T) {
	d := circumdisk(Point{0, 0}, Point{2, 0}, Point{1, 1})
	// Circumcenter of (0,0),(2,0),(1,1) is (1,0), radius 1.
	if !d.Center.Eq(Point{1, 0}) || math.Abs(d.Radius-1) > 1e-9 {
		t.Errorf("circumdisk: %v", d)
	}
	if d := circumdisk(Point{0, 0}, Point{1, 0}, Point{2, 0}); d.Radius != 0 {
		t.Errorf("collinear circumdisk must be zero: %v", d)
	}
}
