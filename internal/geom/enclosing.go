package geom

// SmallestEnclosingDisk returns the minimum-radius disk containing all
// the given points, using Welzl's randomized incremental algorithm in
// its deterministic (move-to-front) form. The empty set yields a zero
// disk; one point yields a zero-radius disk at that point.
//
// RTR's failure-area estimator uses this to turn collected failed
// links into a geometric estimate of the failure region.
func SmallestEnclosingDisk(points []Point) Disk {
	switch len(points) {
	case 0:
		return Disk{}
	case 1:
		return Disk{Center: points[0]}
	}
	pts := append([]Point(nil), points...)
	return welzl(pts, nil)
}

// welzl computes the minimum disk over pts with the boundary points in
// support (|support| <= 3).
func welzl(pts []Point, support []Point) Disk {
	if len(pts) == 0 || len(support) == 3 {
		return trivialDisk(support)
	}
	p := pts[len(pts)-1]
	d := welzl(pts[:len(pts)-1], support)
	if diskContainsClosed(d, p) {
		return d
	}
	return welzl(pts[:len(pts)-1], append(support, p))
}

// diskContainsClosed reports closed-disk membership with tolerance.
func diskContainsClosed(d Disk, p Point) bool {
	return d.Center.Dist(p) <= d.Radius+1e-7
}

// trivialDisk returns the smallest disk with the given 0..3 boundary
// points.
func trivialDisk(support []Point) Disk {
	switch len(support) {
	case 0:
		return Disk{}
	case 1:
		return Disk{Center: support[0]}
	case 2:
		return diskFrom2(support[0], support[1])
	default:
		// Degenerate (collinear or coincident) triples fall back to
		// the best two-point disk.
		d := circumdisk(support[0], support[1], support[2])
		if d.Radius > 0 {
			return d
		}
		best := diskFrom2(support[0], support[1])
		for _, cand := range []Disk{
			diskFrom2(support[0], support[2]),
			diskFrom2(support[1], support[2]),
		} {
			if cand.Radius > best.Radius {
				best = cand
			}
		}
		return best
	}
}

func diskFrom2(a, b Point) Disk {
	c := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2}
	return Disk{Center: c, Radius: c.Dist(a)}
}

// circumdisk returns the disk through three points, or a zero disk
// when they are (nearly) collinear.
func circumdisk(a, b, c Point) Disk {
	ab := b.Sub(a)
	ac := c.Sub(a)
	d := 2 * ab.Cross(ac)
	if d > -Eps && d < Eps {
		return Disk{}
	}
	abLen2 := ab.Dot(ab)
	acLen2 := ac.Dot(ac)
	ux := (ac.Y*abLen2 - ab.Y*acLen2) / d
	uy := (ab.X*acLen2 - ac.X*abLen2) / d
	center := Point{a.X + ux, a.Y + uy}
	return Disk{Center: center, Radius: center.Dist(a)}
}
