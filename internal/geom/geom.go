// Package geom provides the planar-geometry primitives that RTR's
// first phase depends on: points, segments, disks, proper segment
// crossing tests, segment–disk intersection, and the counterclockwise
// angular sweep used by the right-hand forwarding rule.
//
// All predicates use a small absolute epsilon so that randomly embedded
// topologies behave robustly; the simulator never places nodes closer
// than the epsilon scale to one another.
package geom

import (
	"fmt"
	"math"
)

// Eps is the absolute tolerance used by the geometric predicates.
// Coordinates in this repository live in a 2000x2000 area, so 1e-9 is
// far below any meaningful feature size.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y)
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k about the origin.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q viewed
// as vectors. It is positive when q lies counterclockwise of p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	d := p.Sub(q)
	return d.Dot(d)
}

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Segment is the closed straight segment between two points. Links in
// the simulated network are drawn as straight segments between router
// coordinates.
type Segment struct {
	A, B Point
}

// String implements fmt.Stringer.
func (s Segment) String() string {
	return fmt.Sprintf("[%v - %v]", s.A, s.B)
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// orientation classifies point r relative to the directed line a->b:
// +1 counterclockwise (left), -1 clockwise (right), 0 collinear.
func orientation(a, b, r Point) int {
	v := b.Sub(a).Cross(r.Sub(a))
	switch {
	case v > Eps:
		return 1
	case v < -Eps:
		return -1
	default:
		return 0
	}
}

// onSegment reports whether collinear point r lies on segment [a,b].
func onSegment(a, b, r Point) bool {
	return math.Min(a.X, b.X)-Eps <= r.X && r.X <= math.Max(a.X, b.X)+Eps &&
		math.Min(a.Y, b.Y)-Eps <= r.Y && r.Y <= math.Max(a.Y, b.Y)+Eps
}

// SharesEndpoint reports whether the two segments share an endpoint
// (within Eps). Links incident to a common router share an endpoint and
// are never considered to cross each other.
func (s Segment) SharesEndpoint(t Segment) bool {
	return s.A.Eq(t.A) || s.A.Eq(t.B) || s.B.Eq(t.A) || s.B.Eq(t.B)
}

// Crosses reports whether segments s and t cross, i.e. intersect at a
// point that is not a shared endpoint. This is the notion of "link A is
// across link B" used by RTR's cross_link constraint: two links that
// merely meet at a common router do not cross.
func (s Segment) Crosses(t Segment) bool {
	if s.SharesEndpoint(t) {
		return false
	}
	o1 := orientation(s.A, s.B, t.A)
	o2 := orientation(s.A, s.B, t.B)
	o3 := orientation(t.A, t.B, s.A)
	o4 := orientation(t.A, t.B, s.B)

	if o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 {
		return true // proper crossing
	}
	// Degenerate contacts: an endpoint of one segment lying in the
	// interior of the other, or collinear overlap. These still count as
	// crossings because the intersection point is not a shared endpoint.
	if o1 == 0 && onSegment(s.A, s.B, t.A) {
		return true
	}
	if o2 == 0 && onSegment(s.A, s.B, t.B) {
		return true
	}
	if o3 == 0 && onSegment(t.A, t.B, s.A) {
		return true
	}
	if o4 == 0 && onSegment(t.A, t.B, s.B) {
		return true
	}
	return false
}

// DistToSegment returns the minimum distance between the two closed
// segments: zero when they intersect (including shared endpoints and
// collinear overlap), otherwise the smallest of the four
// endpoint-to-segment distances — for non-intersecting segments the
// closest pair of points always involves at least one endpoint.
func (s Segment) DistToSegment(t Segment) float64 {
	o1 := orientation(s.A, s.B, t.A)
	o2 := orientation(s.A, s.B, t.B)
	o3 := orientation(t.A, t.B, s.A)
	o4 := orientation(t.A, t.B, s.B)
	if o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 {
		return 0 // proper interior crossing
	}
	// Degenerate contacts (endpoint on the other segment, collinear
	// overlap) reduce to an endpoint distance of zero below.
	d := s.DistToPoint(t.A)
	if v := s.DistToPoint(t.B); v < d {
		d = v
	}
	if v := t.DistToPoint(s.A); v < d {
		d = v
	}
	if v := t.DistToPoint(s.B); v < d {
		d = v
	}
	return d
}

// DistToPoint returns the minimum distance from point p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	ap := p.Sub(s.A)
	den := ab.Dot(ab)
	if den <= Eps {
		return p.Dist(s.A) // degenerate segment
	}
	t := ap.Dot(ab) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest := s.A.Add(ab.Scale(t))
	return p.Dist(closest)
}

// Disk is a closed disk: the failure areas in the paper's evaluation
// are disks with random center and radius.
type Disk struct {
	Center Point
	Radius float64
}

// String implements fmt.Stringer.
func (d Disk) String() string {
	return fmt.Sprintf("disk(center=%v, r=%.3f)", d.Center, d.Radius)
}

// Contains reports whether point p lies strictly inside the disk.
// Routers exactly on the boundary survive; this matches the paper's
// "nodes within the circle fail".
func (d Disk) Contains(p Point) bool {
	return d.Center.Dist2(p) < d.Radius*d.Radius-Eps
}

// IntersectsSegment reports whether the segment passes through the disk
// (its minimum distance to the center is below the radius). Links
// across the failure area fail even when both endpoints survive.
func (d Disk) IntersectsSegment(s Segment) bool {
	return s.DistToPoint(d.Center) < d.Radius-Eps
}

// Area returns the area of the disk.
func (d Disk) Area() float64 { return math.Pi * d.Radius * d.Radius }

// Capsule is the set of points within Radius of a spine segment — a
// stadium shape. It models line/conduit cuts: a trench, pipeline, or
// border strip of width 2*Radius failing everything it touches. The
// containment and intersection predicates mirror Disk's strict-inside
// convention (boundary points survive); a Capsule with a degenerate
// spine (Seg.A == Seg.B) behaves like a Disk away from the boundary.
type Capsule struct {
	Seg    Segment
	Radius float64
}

// String implements fmt.Stringer.
func (c Capsule) String() string {
	return fmt.Sprintf("capsule(%v, r=%.3f)", c.Seg, c.Radius)
}

// Contains reports whether point p lies strictly inside the capsule.
func (c Capsule) Contains(p Point) bool {
	return c.Seg.DistToPoint(p) < c.Radius-Eps
}

// IntersectsSegment reports whether the segment passes through the
// capsule's interior (its minimum distance to the spine is below the
// radius).
func (c Capsule) IntersectsSegment(s Segment) bool {
	return c.Seg.DistToSegment(s) < c.Radius-Eps
}

// Area returns the area of the capsule (rectangle plus two half
// disks).
func (c Capsule) Area() float64 {
	return 2*c.Radius*c.Seg.Length() + math.Pi*c.Radius*c.Radius
}

// CCWAngle returns the counterclockwise rotation, in radians in the
// half-open interval (0, 2π], needed to rotate the direction vector
// `from` onto the direction vector `to`, both anchored at the same
// origin. A rotation of exactly zero is reported as 2π: the right-hand
// rule must be able to come back to the incoming edge only after a full
// sweep, so the previous hop is the last candidate considered, never
// the first.
func CCWAngle(from, to Point) float64 {
	a := math.Atan2(from.Cross(to), from.Dot(to))
	if a <= Eps {
		a += 2 * math.Pi
	}
	return a
}

// SweepOrder reports whether, sweeping counterclockwise starting from
// the reference direction ref (anchored at origin o), the direction to
// point p is reached strictly before the direction to point q.
// Ties (collinear candidates) are broken by distance from o, nearer
// first, so the sweep order is total for distinct points.
func SweepOrder(o, ref, p, q Point) bool {
	base := ref.Sub(o)
	ap := CCWAngle(base, p.Sub(o))
	aq := CCWAngle(base, q.Sub(o))
	if math.Abs(ap-aq) > Eps {
		return ap < aq
	}
	return o.Dist2(p) < o.Dist2(q)
}
