package geom

import (
	"math"
	"testing"
)

// FuzzCapsuleIntersect cross-checks the capsule predicates on
// arbitrary geometry: IntersectsSegment must agree with the
// closed-form spine distance, containment of either segment endpoint
// must imply intersection, DistToSegment must be symmetric,
// non-negative, and never exceed any endpoint-to-segment distance.
func FuzzCapsuleIntersect(f *testing.F) {
	f.Add(100.0, 100.0, 300.0, 100.0, 50.0, 200.0, 0.0, 200.0, 300.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 120.0, 500.0, 500.0, 600.0, 600.0) // degenerate spine
	f.Add(10.0, 10.0, 10.0, 10.0, 1.0, 10.0, 10.0, 10.0, 10.0)   // everything coincident
	f.Add(0.0, 0.0, 2000.0, 2000.0, 300.0, 2000.0, 0.0, 0.0, 2000.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, r, px, py, qx, qy float64) {
		for _, v := range []float64{ax, ay, bx, by, r, px, py, qx, qy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e7 {
				t.Skip("out of the simulator's coordinate regime")
			}
		}
		if r < 0 {
			r = -r
		}
		c := Capsule{Seg: Segment{Point{ax, ay}, Point{bx, by}}, Radius: r}
		s := Segment{Point{px, py}, Point{qx, qy}}

		d := c.Seg.DistToSegment(s)
		if d < 0 {
			t.Fatalf("negative segment distance %v", d)
		}
		if sym := s.DistToSegment(c.Seg); math.Abs(sym-d) > 1e-6*(1+d) {
			t.Fatalf("asymmetric distance: %v vs %v", d, sym)
		}
		for _, p := range []Point{s.A, s.B} {
			if v := c.Seg.DistToPoint(p); v < d-1e-9 {
				t.Fatalf("endpoint distance %v below segment distance %v", v, d)
			}
		}
		if got, want := c.IntersectsSegment(s), d < r-Eps; got != want {
			t.Fatalf("IntersectsSegment=%v but spine distance %v vs radius %v", got, d, r)
		}
		if (c.Contains(s.A) || c.Contains(s.B)) && !c.IntersectsSegment(s) {
			t.Fatalf("capsule contains an endpoint of %v but reports no intersection", s)
		}
	})
}
