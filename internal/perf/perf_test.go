package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Observe("dataset-build", "AS1239", 2*time.Second, 800)
	r.Time("world-build", "AS209", 0, func() {})

	rec := r.Record()
	if len(rec.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(rec.Entries))
	}
	// Entries are sorted by (name, topology).
	if rec.Entries[0].Name != "dataset-build" || rec.Entries[1].Name != "world-build" {
		t.Fatalf("unexpected order: %+v", rec.Entries)
	}
	if got := rec.Entries[0].CasesPerSec; got != 400 {
		t.Errorf("CasesPerSec = %v, want 400", got)
	}

	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "BENCH_") || !strings.HasSuffix(base, ".json") {
		t.Errorf("file name %q, want BENCH_<date>.json", base)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Date != rec.Date || len(back.Entries) != 2 || back.MaxProcs != rec.MaxProcs {
		t.Errorf("round trip mismatch: %+v vs %+v", back, rec)
	}
}

func TestMeasureRecordsAllocs(t *testing.T) {
	r := NewRecorder()
	var sink [][]byte
	r.Measure("alloc-phase", "", 1, func() {
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 4096))
		}
	})
	_ = sink
	e := r.Record().Entries[0]
	if e.AllocsPerOp < 64 {
		t.Errorf("AllocsPerOp = %d, want >= 64", e.AllocsPerOp)
	}
	if e.BytesPerOp < 64*4096 {
		t.Errorf("BytesPerOp = %d, want >= %d", e.BytesPerOp, 64*4096)
	}
}

func TestWriteFileExplicitJSONPath(t *testing.T) {
	r := NewRecorder()
	r.Observe("x", "", time.Millisecond, 0)
	want := filepath.Join(t.TempDir(), "sub", "bench.json")
	got, err := r.WriteFile(want)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("path = %q, want %q", got, want)
	}
	if _, err := os.Stat(want); err != nil {
		t.Error(err)
	}
}
