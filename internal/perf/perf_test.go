package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Observe("dataset-build", "AS1239", 2*time.Second, 800)
	r.Time("world-build", "AS209", 0, func() {})

	rec := r.Record()
	if len(rec.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(rec.Entries))
	}
	// Entries are sorted by (name, topology).
	if rec.Entries[0].Name != "dataset-build" || rec.Entries[1].Name != "world-build" {
		t.Fatalf("unexpected order: %+v", rec.Entries)
	}
	if got := rec.Entries[0].CasesPerSec; got != 400 {
		t.Errorf("CasesPerSec = %v, want 400", got)
	}

	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "BENCH_") || !strings.HasSuffix(base, ".json") {
		t.Errorf("file name %q, want BENCH_<date>.json", base)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Date != rec.Date || len(back.Entries) != 2 || back.MaxProcs != rec.MaxProcs {
		t.Errorf("round trip mismatch: %+v vs %+v", back, rec)
	}
}

func TestMeasureRecordsAllocs(t *testing.T) {
	r := NewRecorder()
	var sink [][]byte
	r.Measure("alloc-phase", "", 1, func() {
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 4096))
		}
	})
	_ = sink
	e := r.Record().Entries[0]
	if e.AllocsPerOp < 64 {
		t.Errorf("AllocsPerOp = %d, want >= 64", e.AllocsPerOp)
	}
	if e.BytesPerOp < 64*4096 {
		t.Errorf("BytesPerOp = %d, want >= %d", e.BytesPerOp, 64*4096)
	}
}

// TestMergeFileDedupesIncomingBatch covers last-wins deduplication
// within one MergeFile call: a batch carrying the same (name,
// topology, procs) key several times must land as a single entry
// holding the last measurement, both against a fresh record and when
// folding into an existing file.
func TestMergeFileDedupesIncomingBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	batch := []Entry{
		{Name: "phase", Topology: "AS1239", Procs: 1, NsPerOp: 100},
		{Name: "other", Topology: "AS1239", Procs: 1, NsPerOp: 7},
		{Name: "phase", Topology: "AS1239", Procs: 1, NsPerOp: 200},
		{Name: "phase", Topology: "AS1239", Procs: 2, NsPerOp: 50}, // distinct procs: kept
		{Name: "phase", Topology: "AS1239", Procs: 1, NsPerOp: 300},
	}
	if _, err := MergeFile(path, batch); err != nil {
		t.Fatal(err)
	}
	read := func() Record {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	rec := read()
	if len(rec.Entries) != 3 {
		t.Fatalf("entries = %d, want 3 (deduped): %+v", len(rec.Entries), rec.Entries)
	}
	byKey := map[[2]string]Entry{}
	for _, e := range rec.Entries {
		if prev, dup := byKey[mergeKey(e)]; dup {
			t.Fatalf("duplicate key in merged record: %+v and %+v", prev, e)
		}
		byKey[mergeKey(e)] = e
	}
	if got := byKey[mergeKey(batch[0])].NsPerOp; got != 300 {
		t.Errorf("deduped ns/op = %d, want the last entry's 300", got)
	}

	// A second merge with an internally duplicated batch must replace in
	// place, still last-wins, still no duplicates.
	if _, err := MergeFile(path, []Entry{
		{Name: "phase", Topology: "AS1239", Procs: 1, NsPerOp: 400},
		{Name: "phase", Topology: "AS1239", Procs: 1, NsPerOp: 500},
	}); err != nil {
		t.Fatal(err)
	}
	rec = read()
	if len(rec.Entries) != 3 {
		t.Fatalf("entries after re-merge = %d, want 3: %+v", len(rec.Entries), rec.Entries)
	}
	for _, e := range rec.Entries {
		if e.Name == "phase" && e.Procs == 1 && e.NsPerOp != 500 {
			t.Errorf("re-merged ns/op = %d, want 500", e.NsPerOp)
		}
	}
}

func TestWriteFileExplicitJSONPath(t *testing.T) {
	r := NewRecorder()
	r.Observe("x", "", time.Millisecond, 0)
	want := filepath.Join(t.TempDir(), "sub", "bench.json")
	got, err := r.WriteFile(want)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("path = %q, want %q", got, want)
	}
	if _, err := os.Stat(want); err != nil {
		t.Error(err)
	}
}
