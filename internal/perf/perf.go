// Package perf records the simulator's performance trajectory:
// cmd/rtrsim instruments its expensive phases (world construction,
// dataset builds) and writes a BENCH_<date>.json snapshot so future
// changes can be checked for regressions against a committed record
// (ns/op, cases/sec, per topology).
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Entry is one timed phase of a run.
type Entry struct {
	// Name identifies the phase, e.g. "world-build" or "dataset-build".
	Name string `json:"name"`
	// Topology is the Table II topology the phase ran on ("" for
	// topology-independent phases).
	Topology string `json:"topology,omitempty"`
	// NsPerOp is the wall-clock duration of the phase in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// Cases is the number of test cases processed (0 when not a
	// case-driven phase).
	Cases int `json:"cases,omitempty"`
	// CasesPerSec is the throughput when Cases > 0.
	CasesPerSec float64 `json:"cases_per_sec,omitempty"`
	// AllocsPerOp is the number of heap allocations the phase made
	// (0 when not measured).
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	// BytesPerOp is the total heap bytes the phase allocated (the
	// TotalAlloc delta across it; 0 when not measured). At 10^5 nodes
	// the allocation volume, not the count, is what evicts the working
	// set — a phase can hold allocs/op flat while ballooning each one.
	BytesPerOp int64 `json:"bytes_per_op,omitempty"`
	// Procs is the GOMAXPROCS the phase ran under, when it differs from
	// the record-level setting (Measure emits serial and parallel
	// variants of the same phase side by side).
	Procs int `json:"procs,omitempty"`
	// P50Ns and P99Ns are optional per-operation latency percentiles
	// for serving-style entries, where NsPerOp alone (a mean) hides
	// tail behavior. Zero when the phase was not histogram-timed;
	// existing entries and goldens are unaffected (omitempty).
	P50Ns int64 `json:"p50_ns,omitempty"`
	P99Ns int64 `json:"p99_ns,omitempty"`
	// CacheHitRate is the warm-cache hit fraction in [0, 1] observed
	// during a serving entry (0 when not applicable or not measured).
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// PeakUtil is the post-recovery peak link utilization a
	// congestion-experiment entry measured (0 when not applicable).
	// Unlike the timing fields, lower is better only relative to other
	// schemes on the same topology under the same traffic matrix.
	PeakUtil float64 `json:"peak_util,omitempty"`
}

// Record is the JSON document a run emits.
type Record struct {
	// Date is the run date (YYYY-MM-DD).
	Date string `json:"date"`
	// GoVersion and MaxProcs pin the environment the numbers were
	// measured under.
	GoVersion string  `json:"go_version"`
	MaxProcs  int     `json:"gomaxprocs"`
	Entries   []Entry `json:"entries"`
}

// Recorder accumulates entries; safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	now     time.Time
	entries []Entry
}

// NewRecorder returns a Recorder stamped with the current time.
func NewRecorder() *Recorder {
	return &Recorder{now: time.Now()}
}

// Observe records one timed phase.
func (r *Recorder) Observe(name, topology string, d time.Duration, cases int) {
	e := Entry{Name: name, Topology: topology, NsPerOp: d.Nanoseconds(), Cases: cases}
	if cases > 0 && d > 0 {
		e.CasesPerSec = float64(cases) / d.Seconds()
	}
	r.mu.Lock()
	r.entries = append(r.entries, e)
	r.mu.Unlock()
}

// Add records a fully caller-built entry. Serving benchmarks use it to
// attach histogram percentiles and cache hit rates that Observe's
// duration-only signature cannot carry.
func (r *Recorder) Add(e Entry) {
	r.mu.Lock()
	r.entries = append(r.entries, e)
	r.mu.Unlock()
}

// Time runs fn and records its duration under (name, topology).
func (r *Recorder) Time(name, topology string, cases int, fn func()) {
	start := time.Now()
	fn()
	r.Observe(name, topology, time.Since(start), cases)
}

// Measure runs fn under the given GOMAXPROCS setting (unchanged when
// procs <= 0), recording wall time and heap allocations. Callers use
// it to emit serial (procs=1) and parallel (procs=NumCPU) variants of
// the same phase side by side, so speedups from parallel fan-out are
// visible in the trajectory. The allocation count and byte volume are
// the global mallocs/TotalAlloc deltas across fn — callers should keep
// the process otherwise quiet during measurement.
func (r *Recorder) Measure(name, topology string, procs int, fn func()) {
	prev := -1
	if procs > 0 {
		prev = runtime.GOMAXPROCS(procs)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	d := time.Since(start)
	runtime.ReadMemStats(&after)
	if prev > 0 {
		runtime.GOMAXPROCS(prev)
	}
	e := Entry{
		Name:        name,
		Topology:    topology,
		NsPerOp:     d.Nanoseconds(),
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
		Procs:       procs,
	}
	r.mu.Lock()
	r.entries = append(r.entries, e)
	r.mu.Unlock()
}

// Record returns the accumulated document.
func (r *Recorder) Record() Record {
	r.mu.Lock()
	entries := make([]Entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Name != entries[j].Name {
			return entries[i].Name < entries[j].Name
		}
		if entries[i].Topology != entries[j].Topology {
			return entries[i].Topology < entries[j].Topology
		}
		return entries[i].Procs < entries[j].Procs
	})
	return Record{
		Date:      r.now.Format("2006-01-02"),
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Entries:   entries,
	}
}

// MergeFile folds entries into an existing BENCH_<date> record (or
// starts a fresh one), replacing any previous entries with the same
// (name, topology, procs) so reruns update in place — a tool that
// contributes only its own entries never clobbers another tool's. All
// other entries are untouched and the record keeps the canonical sort
// order. Duplicates within the incoming batch itself are deduplicated
// last-wins (the later measurement of a re-timed phase supersedes the
// earlier one), so the merged record never carries two entries under
// one key regardless of how the caller accumulated them. Path rules
// match WriteFile (directory or "" names the file BENCH_<date>.json; a
// .json path is used verbatim). Returns the path written.
func MergeFile(path string, entries []Entry) (string, error) {
	entries = dedupeLastWins(entries)
	rec := Record{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	out := path
	if out == "" {
		out = "."
	}
	if !strings.HasSuffix(out, ".json") {
		out = filepath.Join(out, fmt.Sprintf("BENCH_%s.json", rec.Date))
	}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &rec); err != nil {
			return "", fmt.Errorf("existing %s: %w", out, err)
		}
		replaced := make(map[[2]string]bool, len(entries))
		for _, e := range entries {
			replaced[mergeKey(e)] = true
		}
		kept := rec.Entries[:0]
		for _, e := range rec.Entries {
			if replaced[mergeKey(e)] {
				continue
			}
			kept = append(kept, e)
		}
		rec.Entries = kept
	} else if !os.IsNotExist(err) {
		return "", err
	}
	rec.Entries = append(rec.Entries, entries...)
	sort.SliceStable(rec.Entries, func(i, j int) bool {
		if rec.Entries[i].Name != rec.Entries[j].Name {
			return rec.Entries[i].Name < rec.Entries[j].Name
		}
		if rec.Entries[i].Topology != rec.Entries[j].Topology {
			return rec.Entries[i].Topology < rec.Entries[j].Topology
		}
		return rec.Entries[i].Procs < rec.Entries[j].Procs
	})
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
	}
	return out, os.WriteFile(out, append(data, '\n'), 0o644)
}

// mergeKey is the entry identity MergeFile replaces on.
func mergeKey(e Entry) [2]string {
	return [2]string{e.Name, e.Topology + "\x00" + fmt.Sprint(e.Procs)}
}

// dedupeLastWins collapses repeated (name, topology, procs) keys in
// one batch, keeping each key's last entry at its first position so
// the pre-sort order stays deterministic.
func dedupeLastWins(entries []Entry) []Entry {
	seen := make(map[[2]string]int, len(entries))
	out := entries[:0:0]
	for _, e := range entries {
		k := mergeKey(e)
		if i, ok := seen[k]; ok {
			out[i] = e
			continue
		}
		seen[k] = len(out)
		out = append(out, e)
	}
	return out
}

// WriteFile writes the record as indented JSON. When path is a
// directory (or empty), the file is named BENCH_<date>.json inside it;
// a path ending in .json is used verbatim. It returns the path
// written.
func (r *Recorder) WriteFile(path string) (string, error) {
	rec := r.Record()
	out := path
	if out == "" {
		out = "."
	}
	if !strings.HasSuffix(out, ".json") {
		out = filepath.Join(out, fmt.Sprintf("BENCH_%s.json", rec.Date))
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
	}
	return out, os.WriteFile(out, append(data, '\n'), 0o644)
}
