package perf

import (
	"math"
	"math/bits"
)

// Histogram is an HDR-style latency histogram: values are bucketed
// into power-of-two ranges split into 64 linear subbuckets, so every
// recorded value lands in a bucket whose width is at most ~1.6% of the
// value. That bounds the quantile error the same way hdrhistogram's
// significant-figure setting does, without per-record allocation —
// Record is a couple of shifts and one counter increment, so the load
// generator can call it on every request without perturbing what it
// measures.
//
// The zero Histogram is ready to use. A Histogram is not safe for
// concurrent use; the intended pattern is one per worker goroutine,
// merged after the run.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// histSubBits fixes 2^6 = 64 linear subbuckets per power-of-two range.
const histSubBits = 6

// histBuckets covers every non-negative int64: values below 64 index
// exactly, and each further power of two contributes 64 subbuckets
// ((63-6)*64 + 128 < 4096).
const histBuckets = 4096

// histIndex maps a value to its bucket. Values below 2^histSubBits are
// exact; larger values keep their top histSubBits+1 bits.
func histIndex(v int64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	top := bits.Len64(uint64(v)) // 2^(top-1) <= v < 2^top, top >= 7
	return (top-7)*64 + int(v>>(top-7))
}

// histUpper returns the largest value mapping to bucket idx, the
// conservative (upper-bound) representative Quantile reports.
func histUpper(idx int) int64 {
	t := idx >> histSubBits
	if t == 0 {
		return int64(idx)
	}
	m := int64(idx - (t-1)*64)
	return (m+1)<<(t-1) - 1
}

// Record adds one observation (negative values count as zero).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Merge folds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.n }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean of the recorded values (exact, from
// the running sum rather than the buckets).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an upper bound on the q-quantile (q in [0, 1]): the
// upper edge of the bucket holding the ceil(q*n)-th smallest
// observation, clamped to the observed max. Quantile(0.5) is the
// median, Quantile(1) the maximum.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			u := histUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}
