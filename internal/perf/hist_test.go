package perf

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

func TestHistIndexRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose upper edge is >= the
	// value and within ~1.6% of it (bucket width 2^(top-7)).
	vals := []int64{0, 1, 63, 64, 65, 127, 128, 129, 1000, 4095, 4096,
		1 << 20, (1 << 20) + 12345, 1 << 40, 1<<62 - 1, 1 << 62}
	for _, v := range vals {
		idx := histIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, idx)
		}
		u := histUpper(idx)
		if u < v {
			t.Errorf("histUpper(histIndex(%d)) = %d < value", v, u)
		}
		if v >= 64 && float64(u-v) > 0.017*float64(v) {
			t.Errorf("bucket error for %d: upper %d (%.4f relative)", v, u, float64(u-v)/float64(v))
		}
	}
	// Monotone: larger values never map to smaller buckets.
	prev := -1
	for v := int64(0); v < 1<<16; v += 7 {
		idx := histIndex(v)
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	rng := rand.New(rand.NewSource(42))
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.ExpFloat64() * 50_000) // latency-shaped
		h.Record(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		exact := vals[min(n-1, int(q*float64(n)))]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%g) = %d below exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*1.03+64 {
			t.Errorf("Quantile(%g) = %d too far above exact %d", q, got, exact)
		}
	}
	if h.Max() != vals[n-1] || h.Min() != vals[0] {
		t.Errorf("min/max: got (%d, %d), want (%d, %d)", h.Min(), h.Max(), vals[0], vals[n-1])
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("Quantile(1) = %d, want max %d", h.Quantile(1), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	for i := int64(0); i < 1000; i++ {
		a.Record(i * 3)
		all.Record(i * 3)
	}
	for i := int64(0); i < 500; i++ {
		b.Record(i * 1000)
		all.Record(i * 1000)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Min() != all.Min() || a.Mean() != all.Mean() {
		t.Fatal("merge does not match direct accumulation")
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("Quantile(%g): merged %d != direct %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != all.Count() {
		t.Fatal("merging an empty histogram changed the count")
	}
}

// TestEntryPercentileFieldsOptional pins the satellite contract: the
// new percentile fields must not disturb entries that do not use them.
func TestEntryPercentileFieldsOptional(t *testing.T) {
	plain, err := json.Marshal(Entry{Name: "world-build", Topology: "AS1221", NsPerOp: 42})
	if err != nil {
		t.Fatal(err)
	}
	if s := string(plain); s != `{"name":"world-build","topology":"AS1221","ns_per_op":42}` {
		t.Fatalf("legacy entry JSON changed: %s", s)
	}
	full, err := json.Marshal(Entry{Name: "serve-closed-all", NsPerOp: 10, P50Ns: 7, P99Ns: 30, CacheHitRate: 0.96875})
	if err != nil {
		t.Fatal(err)
	}
	var back Entry
	if err := json.Unmarshal(full, &back); err != nil {
		t.Fatal(err)
	}
	if back.P50Ns != 7 || back.P99Ns != 30 || back.CacheHitRate != 0.96875 {
		t.Fatalf("percentile fields did not round-trip: %+v", back)
	}
}
