// Quickstart: recover one failed routing path with RTR on the paper's
// worked example (Figs. 1/2/6). The routing path v7 -> v6 -> v11 ->
// v15 -> v17 is cut by a failure area around v10; v6 becomes the
// recovery initiator, walks around the area to collect the failed
// links, and source-routes packets over the new shortest path.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	// 1. The network: a topology every router knows, plus converged
	// link-state routing tables.
	topo := topology.PaperExample()
	tables := routing.ComputeTables(topo)

	// 2. A large-scale failure: routers inside the area die, links
	// crossing it are cut. Routers only ever observe their own
	// unreachable neighbors (the LocalView).
	sc := failure.NewScenario(topo, topology.PaperFailureArea())
	lv := routing.NewLocalView(topo, sc)
	fmt.Println(sc)

	// 3. Forward a packet with the stale tables: it gets blocked at
	// the recovery initiator.
	src, dst := topology.PaperNode(7), topology.PaperNode(17)
	outcome, initiator, _ := routing.TraceDefault(tables, lv, src, dst)
	if outcome != routing.DefaultBlocked {
		log.Fatalf("expected a blocked path, got %v", outcome)
	}
	fmt.Printf("v%d detects its next hop toward v%d is unreachable and invokes RTR\n", initiator+1, dst+1)

	// 4. RTR phase 1: collect failure information around the area.
	rtr := core.New(topo, nil)
	sess, err := rtr.NewSession(lv, initiator)
	if err != nil {
		log.Fatal(err)
	}
	_, trigger, _ := tables.NextHop(initiator, dst)
	col, err := sess.Collect(trigger)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: %d hops (%.1f ms), collected %d failed links\n",
		col.Walk.Hops(), float64(col.Duration())/1e6, len(col.Header.FailedLinks))

	// 5. RTR phase 2: one shortest-path computation, then source
	// routing. The path is provably the true post-failure optimum.
	route, ok := sess.RecoveryPath(dst)
	if !ok {
		log.Fatalf("v%d is unreachable", dst+1)
	}
	fwd := sess.ForwardSourceRouted(route)
	path := ""
	for i, v := range route.Nodes {
		if i > 0 {
			path += " -> "
		}
		path += fmt.Sprintf("v%d", v+1)
	}
	fmt.Printf("phase 2: recovery path %s (%d hops), delivered=%v, SP calculations=%d\n",
		path, route.Hops(), fwd.Delivered, sess.SPCalcs())
}
