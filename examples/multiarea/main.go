// Multiarea: Section III-E's extension — a packet that bypasses one
// failure area can run into a second one; the recovery chains, with
// the packet carrying the first area's failed links so the next
// initiator prunes them too. The example places two disjoint disasters
// on a dense AS3320 analogue and delivers packets across both.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	topo := topology.GenerateAS("AS3320", 5)
	tables := routing.ComputeTables(topo)
	rtr := core.New(topo, nil)
	rng := rand.New(rand.NewSource(12))

	attempts, delivered, chained := 0, 0, 0
	var exampleShown bool
	for trial := 0; trial < 400; trial++ {
		a1 := failure.RandomArea(rng, 150, 250)
		a2 := failure.RandomArea(rng, 150, 250)
		if a1.Center.Dist(a2.Center) < a1.Radius+a2.Radius+100 {
			continue // keep the two disasters disjoint
		}
		sc := failure.NewScenario(topo, a1, a2)
		lv := routing.NewLocalView(topo, sc)
		src := graph.NodeID(rng.Intn(topo.G.NumNodes()))
		dst := graph.NodeID(rng.Intn(topo.G.NumNodes()))
		if src == dst || sc.NodeDown(src) || sc.NodeDown(dst) {
			continue
		}
		if out, _, _ := routing.TraceDefault(tables, lv, src, dst); out != routing.DefaultBlocked {
			continue // unaffected path, nothing to demonstrate
		}
		attempts++
		res, err := rtr.Deliver(tables, lv, src, dst)
		if err != nil {
			log.Fatal(err)
		}
		if res.Delivered {
			delivered++
			if len(res.Initiators) > 1 {
				chained++
				if !exampleShown {
					exampleShown = true
					fmt.Printf("example chained recovery: %d -> %d via initiators %v "+
						"(%d total hops, %d SP calculations)\n",
						src, dst, res.Initiators, res.TotalHops, res.SPCalcs)
				}
			}
		}
	}
	fmt.Printf("two-disaster trials with a blocked path: %d\n", attempts)
	fmt.Printf("delivered end to end: %d\n", delivered)
	fmt.Printf("needed chained recoveries (hit the second area mid-route): %d\n", chained)
}
