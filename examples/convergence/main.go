// Convergence: the paper's motivation, quantified. IGP convergence
// after a large-scale failure takes seconds (with conservative timers)
// and every failed routing path drops its traffic for the whole
// window; RTR reroutes recoverable paths as soon as the failure is
// detected. The example measures packet loss with and without RTR
// under both classic and tuned IGP timers.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/igp"
	"repro/internal/sim"
)

func main() {
	w, err := sim.NewWorld("AS209", 1)
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []struct {
		name   string
		timers igp.Timers
	}{
		{"classic IGP timers (hello-based detection, SPF hold)", igp.ClassicTimers()},
		{"tuned IGP timers (BFD, aggressive SPF — risks flapping)", igp.TunedTimers()},
	} {
		res := sim.PacketLoss(w, sim.LossConfig{
			Scenarios:        40,
			PacketsPerSecond: 10000,
			Seed:             7,
			Timers:           mode.timers,
		})
		fmt.Printf("%s\n", mode.name)
		fmt.Printf("  mean convergence window    %v\n", res.MeanConvergence.Round(1e6))
		fmt.Printf("  failed routing paths       %d (%d recoverable)\n", res.FailedPaths, res.RecoverablePaths)
		fmt.Printf("  packets dropped, no rec.   %.2fM\n", res.DroppedNoRecovery/1e6)
		fmt.Printf("  packets dropped, with RTR  %.2fM\n", res.DroppedWithRTR/1e6)
		fmt.Printf("  saved by RTR               %.1f%%\n\n", res.SavedPercent)
	}
	// Availability over time: the fraction of failed flows restored t
	// seconds after the failure.
	pts := sim.GoodputSeries(w, sim.LossConfig{
		Scenarios: 25, PacketsPerSecond: 10000, Seed: 7, Timers: igp.ClassicTimers(),
	}, 500*time.Millisecond)
	fmt.Println("flow availability after the failure (classic timers):")
	fmt.Printf("  %8s %12s %10s\n", "t", "no recovery", "with RTR")
	for _, p := range pts {
		if p.T > 8*time.Second || p.T%(2*time.Second) != 0 {
			continue
		}
		fmt.Printf("  %8v %11.1f%% %9.1f%%\n", p.T, 100*p.NoRecovery, 100*p.WithRTR)
	}

	fmt.Println()
	fmt.Println("RTR recovers most recoverable paths right after failure detection;")
	fmt.Println("the residual loss is dominated by destinations no scheme can reach.")
}
