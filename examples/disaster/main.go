// Disaster: a hurricane-sized failure area on an ISP backbone. One
// random disk (radius 300 — the paper's upper bound) lands on a
// synthesized AS209 analogue; every blocked router becomes a recovery
// initiator. The example compares RTR against FCP and MRC on every
// affected (initiator, destination) pair, printing the Table III
// metrics for this single event.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/failure"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	w, err := sim.NewWorld("AS209", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Aim the disaster at the network's center of mass so it actually
	// hits infrastructure.
	var cx, cy float64
	for _, c := range w.Topo.Coords {
		cx += c.X
		cy += c.Y
	}
	n := float64(len(w.Topo.Coords))
	area := geom.Disk{Center: geom.Point{X: cx / n, Y: cy / n}, Radius: 300}
	sc := failure.NewScenario(w.Topo, area)
	fmt.Printf("disaster on %s: %d routers destroyed, %d links cut\n",
		w.Topo.Name, sc.NumFailedNodes(), sc.NumFailedLinks())

	rec, irr := sim.CasesFromScenario(w, sc)
	fmt.Printf("failed routing state: %d recoverable cases, %d irrecoverable cases\n\n", len(rec), len(irr))
	_ = rand.Int // the scenario is deterministic; no randomness needed here

	outcomes := sim.RunAll(w, rec)
	var rtr, fcp, mrc stats.Rate
	var fcpCalcs int
	firstPhase := &stats.CDF{}
	for _, o := range outcomes {
		if o.Err != nil {
			log.Fatal(o.Err)
		}
		rtr.Observe(o.RTR.Optimal)
		fcp.Observe(o.FCP.Optimal)
		mrc.Observe(o.MRC.Delivered)
		fcpCalcs += o.FCP.SPCalcs
		firstPhase.Add(float64(o.RTR.Phase1.Duration()) / 1e6)
	}
	fmt.Println("recoverable cases (optimal recovery):")
	fmt.Printf("  RTR  %v   (1 SP calculation each, stretch always 1)\n", rtr)
	fmt.Printf("  FCP  %v   (%.1f SP calculations per case)\n", fcp, float64(fcpCalcs)/float64(len(outcomes)))
	fmt.Printf("  MRC  %v   (delivered at all; proactive configs died with the area)\n", mrc)
	if firstPhase.N() > 0 {
		fmt.Printf("RTR first phase: median %.1f ms, max %.1f ms\n\n", firstPhase.Quantile(0.5), firstPhase.Max())
	}

	// Irrecoverable destinations: RTR identifies them with one
	// computation; FCP searches exhaustively first.
	irrOut := sim.RunAll(w, irr)
	var rtrWaste, fcpWaste float64
	counted := 0
	for _, o := range irrOut {
		if o.Err != nil {
			log.Fatal(o.Err)
		}
		if o.RTR.NoLiveNeighbor {
			continue // fully cut-off initiator: no protocol even runs
		}
		counted++
		rtrWaste += float64(o.RTR.SPCalcs)
		fcpWaste += float64(o.FCP.SPCalcs)
	}
	if counted > 0 {
		fmt.Printf("irrecoverable cases: RTR wasted %.1f SP calcs/case, FCP wasted %.1f\n",
			rtrWaste/float64(counted), fcpWaste/float64(counted))
	}
}
