// Linkfailure: Theorem 3 in action. Under ANY single link failure,
// RTR recovers every failed routing path with the exact shortest
// recovery path. The example exhaustively fails each link of a
// synthesized AS1239 analogue, recovers every affected
// (initiator, destination) pair, and verifies optimality against
// ground truth.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/spt"
	"repro/internal/topology"
)

func main() {
	topo := topology.GenerateAS("AS1239", 1)
	tables := routing.ComputeTables(topo)
	rtr := core.New(topo, nil)
	fmt.Printf("exhaustive single-link-failure sweep on %s (%d links)\n",
		topo.Name, topo.G.NumLinks())

	cases, recovered, optimal, partitioned := 0, 0, 0, 0
	for li := 0; li < topo.G.NumLinks(); li++ {
		linkID := graph.LinkID(li)
		sc := failure.SingleLink(topo, linkID)
		lv := routing.NewLocalView(topo, sc)

		for i := 0; i < topo.G.NumNodes(); i++ {
			initiator := graph.NodeID(i)
			var sess *core.Session
			for d := 0; d < topo.G.NumNodes(); d++ {
				dst := graph.NodeID(d)
				if dst == initiator {
					continue
				}
				_, trigger, ok := tables.NextHop(initiator, dst)
				if !ok || !lv.NeighborUnreachable(initiator, trigger) {
					continue
				}
				cases++
				if sess == nil {
					var err error
					sess, err = rtr.NewSession(lv, initiator)
					if err != nil {
						log.Fatal(err)
					}
				}
				rt, fwd, ok, err := sess.Recover(trigger, dst)
				if errors.Is(err, core.ErrNoLiveNeighbor) {
					// A leaf initiator lost its only link: cut off
					// entirely, nothing any scheme could do.
					partitioned++
					continue
				}
				if err != nil {
					log.Fatal(err)
				}
				if !ok {
					// The link was a bridge: the destination now sits
					// in another partition. No scheme can recover.
					partitioned++
					continue
				}
				if !fwd.Delivered {
					log.Fatalf("Theorem 3 violated: drop under single failure of %v", topo.G.Link(linkID))
				}
				recovered++
				truth := spt.Compute(topo.G, initiator, sc)
				if opt, _ := truth.CostTo(dst); rt.Cost == opt {
					optimal++
				} else {
					log.Fatalf("Theorem 3 violated: non-optimal path under failure of %v", topo.G.Link(linkID))
				}
			}
		}
	}
	fmt.Printf("failed routing paths (deduplicated): %d\n", cases)
	fmt.Printf("partitioned (bridge links, unrecoverable by any scheme): %d\n", partitioned)
	fmt.Printf("recovered: %d — all with the exact shortest recovery path: %v\n",
		recovered, recovered == optimal)
}
