package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "rtrsimd-test-")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "rtrsimd")
		if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// TestUnknownSchemeExitsOne: an unknown -scheme must kill the daemon
// at flag parse with exit 1 and a registry-naming error — it must
// never get as far as binding a socket or building a world.
func TestUnknownSchemeExitsOne(t *testing.T) {
	cmd := exec.Command(binary(t), "-scheme", "ospf", "-as", "AS1239")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("err = %v, want exit 1", err)
	}
	if !strings.Contains(stderr.String(), "unknown scheme") {
		t.Errorf("stderr %q does not explain the unknown scheme", stderr.String())
	}
}
