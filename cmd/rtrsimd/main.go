// Command rtrsimd is the recovery-as-a-service daemon: it loads one
// immutable world per Table II topology at startup and answers
// single-pair recovery queries over HTTP, keeping a bounded LRU of
// post-failure converged state so repeated failure instances are
// served warm (one incremental recompute, then cache hits).
//
// Usage:
//
//	rtrsimd                                  # serve every topology on 127.0.0.1:8723
//	rtrsimd -as AS7018 -cache 128            # one topology, bigger cache
//	rtrsimd -phase2 alt -check               # goal-directed engine + invariant oracle
//
// Endpoints (see internal/serve):
//
//	GET  /recover?topo=AS7018&failure=disk(1200,900,250)&src=3&dst=41[&scheme=rtr]
//	POST /recover   {"topo":..., "failure":..., "src":3, "dst":41}
//	GET  /healthz   liveness
//	GET  /statsz    cache hit/miss/eviction counters
//
// Responses are byte-identical to the sim harness's per-case outcomes
// — the daemon is a serving shape over the same engines, never a
// different answer. On SIGINT/SIGTERM the daemon stops accepting new
// connections, drains in-flight requests (bounded by -drain), and
// exits 2, mirroring the sweep engine's interrupt discipline.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/scheme"
	"repro/internal/serve"
	"repro/internal/spt"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:8723", "listen address")
		asFlag = flag.String("as", "all", "comma-separated Table II topologies to serve, or 'all'")
		seed   = flag.Int64("seed", 1, "topology synthesis seed (clients must use the same seed to talk about the same graphs)")
		phase2 = flag.String("phase2", "dijkstra", "phase-2 route engine: dijkstra, astar, or alt (identical answers)")
		cache  = flag.Int("cache", 64, "converged-state LRU capacity across topologies; 0 disables caching (every query rebuilds converged state)")
		check  = flag.Bool("check", false, "run the invariant oracle on every recovery case served; violations answer 500 with a repro string")
		drain  = flag.Duration("drain", 10*time.Second, "maximum time to wait for in-flight requests on shutdown")
		schm   = flag.String("scheme", "", "default recovery scheme for queries that omit one: a registry name ("+strings.Join(scheme.Names(), ", ")+") or 'all' (the default); an explicit query scheme always wins")
	)
	flag.Parse()
	engine, err := spt.ParseEngine(*phase2)
	if err != nil {
		die(err)
	}
	// An unknown -scheme never starts the daemon: fail at flag parse,
	// not on the first query that trips over it.
	if *schm != "" && *schm != serve.SchemeAll {
		if _, err := scheme.Get(*schm); err != nil {
			die(err)
		}
	}
	var topos []string
	if *asFlag != "all" {
		for _, name := range strings.Split(*asFlag, ",") {
			topos = append(topos, strings.TrimSpace(name))
		}
	}
	start := time.Now()
	e, err := serve.New(serve.Config{
		Topos:         topos,
		Seed:          *seed,
		Phase2:        engine,
		CacheEntries:  *cache,
		Check:         *check,
		DefaultScheme: *schm,
	})
	if err != nil {
		die(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "rtrsimd: serving %s on http://%s (phase2 %s, cache %d, check %v, startup %v)\n",
		strings.Join(e.Topologies(), ","), ln.Addr(), engine, *cache, *check,
		time.Since(start).Round(time.Millisecond))

	srv := &http.Server{Handler: e.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		die(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "rtrsimd: drain: %v\n", err)
		}
		st := e.Stats()
		fmt.Fprintf(os.Stderr, "rtrsimd: interrupted; drained (%d queries: %d hits / %d misses, %d evictions, %d client errors)\n",
			st.Queries, st.CacheHits, st.CacheMisses, st.Evictions, st.ClientErrors)
		os.Exit(2)
	}
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "rtrsimd: %v\n", err)
	os.Exit(1)
}
