// Command topogen synthesizes and inspects the repository's ISP-like
// topologies (the paper's Table II analogues).
//
// Usage:
//
//	topogen -as AS209 -seed 1 -o as209.topo   # synthesize and save
//	topogen -as AS209 -stats                  # print structure stats
//	topogen -in as209.topo -stats             # inspect a saved file
//	topogen -list                             # list Table II presets
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/graph"
	"repro/internal/topology"
)

func main() {
	var (
		asName  = flag.String("as", "", "Table II topology to synthesize (e.g. AS209)")
		seed    = flag.Int64("seed", 1, "synthesis seed")
		out     = flag.String("o", "", "write the topology to this file ('-' for stdout)")
		in      = flag.String("in", "", "read a topology file instead of synthesizing")
		stat    = flag.Bool("stats", false, "print structural statistics")
		list    = flag.Bool("list", false, "list available presets")
		fixture = flag.Bool("paper-example", false, "use the paper's Fig. 6 worked-example fixture")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %8s %8s\n", "Name", "#Nodes", "#Links")
		for _, p := range topology.TableII() {
			fmt.Printf("%-10s %8d %8d\n", p.Name, p.Nodes, p.Links)
		}
		return
	}

	topo, err := load(*asName, *in, *seed, *fixture)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}

	if *stat {
		printStats(topo)
	}
	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := topology.Write(w, topo); err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
	}
	if !*stat && *out == "" {
		fmt.Fprintln(os.Stderr, "topogen: nothing to do (pass -stats and/or -o)")
		os.Exit(2)
	}
}

func load(asName, in string, seed int64, fixture bool) (*topology.Topology, error) {
	switch {
	case fixture:
		return topology.PaperExample(), nil
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topology.Read(f)
	case asName != "":
		p, ok := topology.ParamsFor(asName)
		if !ok {
			return nil, fmt.Errorf("unknown preset %q (try -list)", asName)
		}
		return topology.Generate(p, newRand(seed))
	default:
		return nil, fmt.Errorf("pass one of -as, -in, or -paper-example")
	}
}

func printStats(t *topology.Topology) {
	g := t.G
	n := g.NumNodes()
	degrees := make([]int, n)
	maxDeg, leaves := 0, 0
	for v := 0; v < n; v++ {
		d := g.Degree(graph.NodeID(v))
		degrees[v] = d
		if d > maxDeg {
			maxDeg = d
		}
		if d == 1 {
			leaves++
		}
	}
	sort.Ints(degrees)
	totalLen := 0.0
	for i := 0; i < g.NumLinks(); i++ {
		totalLen += t.LinkSegment(graph.LinkID(i)).Length()
	}
	ci := topology.BuildCrossIndex(t)

	fmt.Printf("topology     %s\n", t.Name)
	fmt.Printf("nodes        %d\n", n)
	fmt.Printf("links        %d\n", g.NumLinks())
	fmt.Printf("connected    %v\n", g.ConnectedAll(graph.Nothing))
	fmt.Printf("degree       min %d / median %d / max %d, %d leaves\n",
		degrees[0], degrees[n/2], maxDeg, leaves)
	fmt.Printf("avg link len %.1f\n", totalLen/float64(g.NumLinks()))
	fmt.Printf("crossings    %d\n", ci.NumCrossings())
	fmt.Printf("cut vertices %d\n", len(g.ArticulationPoints(graph.Nothing)))
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
