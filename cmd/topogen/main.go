// Command topogen synthesizes and inspects the repository's network
// topologies: the paper's Table II analogues and hierarchical PoP
// graphs up to city/continent scale.
//
// Usage:
//
//	topogen -as AS209 -seed 1 -o as209.topo       # Table II preset
//	topogen -nodes 100000 -links 300000 -tiers \
//	        -seed 1 -binary -o big.snap            # 100k-node synthesis
//	topogen -as AS209 -stats                       # print structure stats
//	topogen -in big.snap -stats                    # inspect a saved file
//	topogen -list                                  # list Table II presets
//
// Synthesis seeds go through internal/seed.Derive keyed by the
// topology name, so the same (name, seed) pair reproduces the same
// graph byte for byte regardless of which tool draws it.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"repro/internal/graph"
	"repro/internal/seed"
	"repro/internal/topology"
)

func main() {
	var (
		asName   = flag.String("as", "", "Table II topology to synthesize (e.g. AS209)")
		nodes    = flag.Int("nodes", 0, "synthesize a custom topology with this many nodes")
		links    = flag.Int("links", 0, "link count for -nodes (default 3x nodes)")
		tiers    = flag.Bool("tiers", false, "use the hierarchical core/aggregation/access generator")
		name     = flag.String("name", "", "name for a -nodes synthesis (default synth<nodes>)")
		seedFlag = flag.Int64("seed", 1, "synthesis seed")
		out      = flag.String("o", "", "write the topology to this file ('-' for stdout)")
		binOut   = flag.Bool("binary", false, "write the binary snapshot format instead of text")
		in       = flag.String("in", "", "read a topology file (text or binary, sniffed) instead of synthesizing")
		stat     = flag.Bool("stats", false, "print structural statistics")
		list     = flag.Bool("list", false, "list available presets")
		fixture  = flag.Bool("paper-example", false, "use the paper's Fig. 6 worked-example fixture")
		progress = flag.Bool("progress", false, "report codec progress on stderr")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %8s %8s\n", "Name", "#Nodes", "#Links")
		for _, p := range topology.TableII() {
			fmt.Printf("%-10s %8d %8d\n", p.Name, p.Nodes, p.Links)
		}
		return
	}

	var report topology.Progress
	if *progress {
		report = func(stage string, done, total int) {
			fmt.Fprintf(os.Stderr, "topogen: %s %d/%d\n", stage, done, total)
		}
	}

	topo, err := load(*asName, *in, *nodes, *links, *tiers, *name, *seedFlag, *fixture, report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}

	if *stat {
		printStats(topo)
	}
	if *out != "" {
		if err := save(*out, topo, *binOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
	}
	if !*stat && *out == "" {
		fmt.Fprintln(os.Stderr, "topogen: nothing to do (pass -stats and/or -o)")
		os.Exit(2)
	}
}

func load(asName, in string, nodes, links int, tiers bool, name string, seedBase int64, fixture bool, report topology.Progress) (*topology.Topology, error) {
	switch {
	case fixture:
		return topology.PaperExample(), nil
	case in != "":
		return readFile(in, report)
	case nodes > 0:
		if links == 0 {
			links = 3 * nodes
		}
		if name == "" {
			name = fmt.Sprintf("synth%d", nodes)
		}
		p := topology.GenParams{Name: name, Nodes: nodes, Links: links, Tiers: tiers}
		return topology.Generate(p, newRand(seedBase, name))
	case asName != "":
		p, ok := topology.ParamsFor(asName)
		if !ok {
			return nil, fmt.Errorf("unknown preset %q (try -list)", asName)
		}
		return topology.Generate(p, newRand(seedBase, asName))
	default:
		return nil, fmt.Errorf("pass one of -as, -nodes, -in, or -paper-example")
	}
}

// readFile loads a topology file in either codec, sniffing the binary
// magic so callers never have to say which format they saved.
func readFile(path string, report topology.Progress) (*topology.Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(len(topology.SnapMagic))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if bytes.Equal(head, []byte(topology.SnapMagic)) {
		return topology.ReadBinary(br, report)
	}
	return topology.Read(br)
}

func save(path string, topo *topology.Topology, binary bool, report topology.Progress) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if binary {
		return topology.WriteBinary(w, topo, report)
	}
	return topology.Write(w, topo)
}

// statCrossLimit keeps -stats responsive on huge graphs: the crossing
// census visits every crossing pair, which is worth waiting for on
// Table II maps but not on 3x10^5-link syntheses.
const statCrossLimit = 50000

func printStats(t *topology.Topology) {
	g := t.G
	n := g.NumNodes()
	degrees := make([]int, n)
	maxDeg, leaves := 0, 0
	for v := 0; v < n; v++ {
		d := g.Degree(graph.NodeID(v))
		degrees[v] = d
		if d > maxDeg {
			maxDeg = d
		}
		if d == 1 {
			leaves++
		}
	}
	sort.Ints(degrees)
	totalLen := 0.0
	for i := 0; i < g.NumLinks(); i++ {
		totalLen += t.LinkSegment(graph.LinkID(i)).Length()
	}

	fmt.Printf("topology     %s\n", t.Name)
	fmt.Printf("nodes        %d\n", n)
	fmt.Printf("links        %d\n", g.NumLinks())
	fmt.Printf("connected    %v\n", g.ConnectedAll(graph.Nothing))
	fmt.Printf("degree       min %d / median %d / max %d, %d leaves\n",
		degrees[0], degrees[n/2], maxDeg, leaves)
	fmt.Printf("avg link len %.1f\n", totalLen/float64(g.NumLinks()))
	if g.NumLinks() <= statCrossLimit {
		ci := topology.BuildCrossIndex(t)
		fmt.Printf("crossings    %d\n", ci.NumCrossings())
	} else {
		fmt.Printf("crossings    (skipped: %d links > %d)\n", g.NumLinks(), statCrossLimit)
	}
	fmt.Printf("cut vertices %d\n", len(g.ArticulationPoints(graph.Nothing)))
}

// newRand derives the generator stream from (base seed, topology name)
// so every tool that synthesizes the same named topology draws the
// same stream.
func newRand(base int64, name string) *rand.Rand {
	return rand.New(rand.NewSource(seed.Derive(base, "topogen", name)))
}
