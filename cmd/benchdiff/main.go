// Command benchdiff compares two BENCH_<date>.json performance
// records (see internal/perf) and prints per-entry deltas. By default
// it is informational: it exits 0 regardless of what it finds, so CI
// can run it on every build and surface regressions in the log
// without failing the gate. With -fail-over N (percent, > 0) it exits
// 1 when any entry's ns/op regressed by more than N percent, turning
// the same comparison into an opt-in gate.
//
// Usage:
//
//	benchdiff new.json            # old = latest checked-in BENCH_*.json
//	benchdiff -old a.json b.json  # explicit pair
//	benchdiff -fail-over 25 new.json  # exit 1 on any >25% ns/op regression
//
// When -old is not given, the previous record is the
// lexicographically last BENCH_*.json in the current directory whose
// path differs from the new record (date-stamped names sort
// chronologically).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/perf"
)

func main() {
	oldPath := flag.String("old", "", "previous record (default: latest checked-in BENCH_*.json)")
	failOver := flag.Float64("fail-over", 0, "exit 1 if any ns/op regression exceeds this percentage (0 = never fail)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-old prev.json] [-fail-over pct] new.json")
		return
	}
	newPath := flag.Arg(0)
	if *oldPath == "" {
		prev, err := latestRecord(".", newPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return
		}
		*oldPath = prev
	}
	oldRec, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return
	}
	newRec, err := load(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return
	}
	worst := diff(os.Stdout, *oldPath, oldRec, newPath, newRec)
	if *failOver > 0 && worst > *failOver {
		fmt.Fprintf(os.Stderr, "benchdiff: worst ns/op regression %+.1f%% exceeds -fail-over %.1f%%\n", worst, *failOver)
		os.Exit(1)
	}
}

// latestRecord returns the lexicographically last BENCH_*.json in dir
// that is not the new record itself.
func latestRecord(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	excl, _ := filepath.Abs(exclude)
	var candidates []string
	for _, m := range matches {
		if abs, _ := filepath.Abs(m); abs == excl {
			continue
		}
		candidates = append(candidates, m)
	}
	if len(candidates) == 0 {
		return "", fmt.Errorf("no previous BENCH_*.json found in %s", dir)
	}
	sort.Strings(candidates)
	return candidates[len(candidates)-1], nil
}

func load(path string) (*perf.Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec perf.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// entryKey identifies comparable entries across records.
type entryKey struct {
	name  string
	topo  string
	procs int
}

// fmtAllocs renders an allocs/op cell; records predating allocation
// tracking have zero, shown as "-" to avoid fake -100% deltas.
func fmtAllocs(n int64) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

// diff prints the per-entry comparison and returns the worst ns/op
// regression in percent (negative or zero when nothing got slower).
func diff(w *os.File, oldPath string, oldRec *perf.Record, newPath string, newRec *perf.Record) float64 {
	fmt.Fprintf(w, "benchdiff: %s (%s) -> %s (%s)\n", oldPath, oldRec.Date, newPath, newRec.Date)
	fmt.Fprintf(w, "%-22s %-8s %5s %14s %14s %9s %12s %12s\n",
		"entry", "topology", "procs", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	oldBy := map[entryKey]perf.Entry{}
	for _, e := range oldRec.Entries {
		oldBy[entryKey{e.Name, e.Topology, e.Procs}] = e
	}
	worst := 0.0
	seen := map[entryKey]bool{}
	for _, e := range newRec.Entries {
		k := entryKey{e.Name, e.Topology, e.Procs}
		seen[k] = true
		o, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(w, "%-22s %-8s %5d %14s %14d %9s %12s %12s\n",
				e.Name, e.Topology, e.Procs, "-", e.NsPerOp, "new", "-", fmtAllocs(e.AllocsPerOp))
			continue
		}
		delta := "n/a"
		if o.NsPerOp > 0 {
			pct := 100 * float64(e.NsPerOp-o.NsPerOp) / float64(o.NsPerOp)
			if pct > worst {
				worst = pct
			}
			delta = fmt.Sprintf("%+.1f%%", pct)
		}
		fmt.Fprintf(w, "%-22s %-8s %5d %14d %14d %9s %12s %12s\n",
			e.Name, e.Topology, e.Procs, o.NsPerOp, e.NsPerOp, delta, fmtAllocs(o.AllocsPerOp), fmtAllocs(e.AllocsPerOp))
	}
	for _, e := range oldRec.Entries {
		k := entryKey{e.Name, e.Topology, e.Procs}
		if !seen[k] {
			fmt.Fprintf(w, "%-22s %-8s %5d %14d %14s %9s %12s %12s\n",
				e.Name, e.Topology, e.Procs, e.NsPerOp, "-", "gone", fmtAllocs(e.AllocsPerOp), "-")
		}
	}
	return worst
}
