// Command benchdiff compares two BENCH_<date>.json performance
// records (see internal/perf) and prints per-entry deltas. By default
// it is informational: it exits 0 regardless of what it finds, so CI
// can run it on every build and surface regressions in the log
// without failing the gate. With -fail-over N (percent, > 0) it exits
// 1 when any entry's ns/op regressed by more than N percent, turning
// the same comparison into an opt-in gate. With -fail-allocs-over N it
// exits 1 when any single-pair-* or scale-* entry's allocs/op
// regressed by more than N percent: those entries run a fixed op count
// over pooled scratch (single-pair) or a fixed seeded pipeline
// (scale), so their allocation counts are deterministic and
// gate-worthy while the remaining entries' global-malloc deltas stay
// informational. Allocated byte volume (bytes_per_op) is printed
// alongside for every measured entry.
//
// For the single-pair-<proto>-<engine> entries the diff is followed by
// a speedup table: per (protocol, topology), the goal-directed engines'
// ns/op against the full-tree dijkstra baseline from the same record.
//
// Usage:
//
//	benchdiff new.json            # old = latest checked-in BENCH_*.json
//	benchdiff -old a.json b.json  # explicit pair
//	benchdiff -fail-over 25 new.json  # exit 1 on any >25% ns/op regression
//	benchdiff -fail-allocs-over 5 new.json  # gate single-pair allocs/op
//
// When -old is not given, the previous record is the
// lexicographically last BENCH_*.json in the current directory whose
// path differs from the new record (date-stamped names sort
// chronologically).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/perf"
)

func main() {
	oldPath := flag.String("old", "", "previous record (default: latest checked-in BENCH_*.json)")
	failOver := flag.Float64("fail-over", 0, "exit 1 if any ns/op regression exceeds this percentage (0 = never fail)")
	failAllocsOver := flag.Float64("fail-allocs-over", 0, "exit 1 if any single-pair-* or scale-* entry's allocs/op regression exceeds this percentage (0 = never fail)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-old prev.json] [-fail-over pct] [-fail-allocs-over pct] new.json")
		return
	}
	newPath := flag.Arg(0)
	if *oldPath == "" {
		prev, err := latestRecord(".", newPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			return
		}
		*oldPath = prev
	}
	oldRec, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return
	}
	newRec, err := load(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return
	}
	worst, worstAllocs := diff(os.Stdout, *oldPath, oldRec, newPath, newRec)
	singlePairSpeedups(os.Stdout, newRec)
	servingDeltas(os.Stdout, oldRec, newRec)
	congestionDeltas(os.Stdout, oldRec, newRec)
	if *failOver > 0 && worst > *failOver {
		fmt.Fprintf(os.Stderr, "benchdiff: worst ns/op regression %+.1f%% exceeds -fail-over %.1f%%\n", worst, *failOver)
		os.Exit(1)
	}
	if *failAllocsOver > 0 && worstAllocs > *failAllocsOver {
		fmt.Fprintf(os.Stderr, "benchdiff: worst gated allocs/op regression %+.1f%% exceeds -fail-allocs-over %.1f%%\n", worstAllocs, *failAllocsOver)
		os.Exit(1)
	}
}

// latestRecord returns the lexicographically last BENCH_*.json in dir
// that is not the new record itself.
func latestRecord(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	excl, _ := filepath.Abs(exclude)
	var candidates []string
	for _, m := range matches {
		if abs, _ := filepath.Abs(m); abs == excl {
			continue
		}
		candidates = append(candidates, m)
	}
	if len(candidates) == 0 {
		return "", fmt.Errorf("no previous BENCH_*.json found in %s", dir)
	}
	sort.Strings(candidates)
	return candidates[len(candidates)-1], nil
}

func load(path string) (*perf.Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec perf.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// entryKey identifies comparable entries across records.
type entryKey struct {
	name  string
	topo  string
	procs int
}

// fmtAllocs renders an allocs/op cell; records predating allocation
// tracking have zero, shown as "-" to avoid fake -100% deltas.
func fmtAllocs(n int64) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

// fmtBytes renders an allocated-volume cell in humanized units
// ("-" when the record predates byte tracking).
func fmtBytes(n int64) string {
	switch {
	case n == 0:
		return "-"
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// gatedAllocs reports whether an entry's allocation count is
// deterministic enough for the -fail-allocs-over gate: the pooled
// single-pair microbenchmarks and the seeded large-graph scale
// pipeline.
func gatedAllocs(name string) bool {
	return strings.HasPrefix(name, "single-pair-") || strings.HasPrefix(name, "scale-")
}

// diff prints the per-entry comparison and returns the worst ns/op
// regression in percent across all entries plus the worst allocs/op
// regression across the single-pair-* entries (each negative or zero
// when nothing got worse).
func diff(w *os.File, oldPath string, oldRec *perf.Record, newPath string, newRec *perf.Record) (worstNs, worstAllocs float64) {
	fmt.Fprintf(w, "benchdiff: %s (%s) -> %s (%s)\n", oldPath, oldRec.Date, newPath, newRec.Date)
	fmt.Fprintf(w, "%-22s %-8s %5s %14s %14s %9s %12s %12s %10s %10s\n",
		"entry", "topology", "procs", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "old B/op", "new B/op")
	oldBy := map[entryKey]perf.Entry{}
	for _, e := range oldRec.Entries {
		oldBy[entryKey{e.Name, e.Topology, e.Procs}] = e
	}
	seen := map[entryKey]bool{}
	for _, e := range newRec.Entries {
		k := entryKey{e.Name, e.Topology, e.Procs}
		seen[k] = true
		o, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(w, "%-22s %-8s %5d %14s %14d %9s %12s %12s %10s %10s\n",
				e.Name, e.Topology, e.Procs, "-", e.NsPerOp, "new", "-", fmtAllocs(e.AllocsPerOp), "-", fmtBytes(e.BytesPerOp))
			continue
		}
		delta := "n/a"
		if o.NsPerOp > 0 {
			pct := 100 * float64(e.NsPerOp-o.NsPerOp) / float64(o.NsPerOp)
			// Serving entries come from wall-clock load runs, not
			// steady-state benchmarks; their run-to-run noise stays out of
			// the -fail-over gate (they get their own table below).
			if pct > worstNs && !strings.HasPrefix(e.Name, "serve-") {
				worstNs = pct
			}
			delta = fmt.Sprintf("%+.1f%%", pct)
		}
		if gatedAllocs(e.Name) && o.AllocsPerOp > 0 {
			if pct := 100 * float64(e.AllocsPerOp-o.AllocsPerOp) / float64(o.AllocsPerOp); pct > worstAllocs {
				worstAllocs = pct
			}
		}
		fmt.Fprintf(w, "%-22s %-8s %5d %14d %14d %9s %12s %12s %10s %10s\n",
			e.Name, e.Topology, e.Procs, o.NsPerOp, e.NsPerOp, delta, fmtAllocs(o.AllocsPerOp), fmtAllocs(e.AllocsPerOp),
			fmtBytes(o.BytesPerOp), fmtBytes(e.BytesPerOp))
	}
	for _, e := range oldRec.Entries {
		k := entryKey{e.Name, e.Topology, e.Procs}
		if !seen[k] {
			fmt.Fprintf(w, "%-22s %-8s %5d %14d %14s %9s %12s %12s %10s %10s\n",
				e.Name, e.Topology, e.Procs, e.NsPerOp, "-", "gone", fmtAllocs(e.AllocsPerOp), "-", fmtBytes(e.BytesPerOp), "-")
		}
	}
	return worstNs, worstAllocs
}

// servingDeltas prints the serving-layer comparison for the serve-*
// entries written by rtrload: throughput and tail-latency deltas plus
// cache hit rate, informational only — load-run numbers are too noisy
// for the -fail-over gate (rtrload has its own -min-qps/-min-speedup
// gates measured within one run).
func servingDeltas(w *os.File, oldRec, newRec *perf.Record) {
	oldBy := map[entryKey]perf.Entry{}
	for _, e := range oldRec.Entries {
		oldBy[entryKey{e.Name, e.Topology, e.Procs}] = e
	}
	var rows []perf.Entry
	for _, e := range newRec.Entries {
		if strings.HasPrefix(e.Name, "serve-") {
			rows = append(rows, e)
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\nserving entries (informational; gated in-run by rtrload)\n")
	fmt.Fprintf(w, "%-22s %-8s %10s %8s %12s %8s %8s\n",
		"entry", "topology", "qps", "Δqps", "p99", "Δp99", "hit")
	pct := func(old, new float64) string {
		if old <= 0 {
			return "new"
		}
		return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
	}
	for _, e := range rows {
		o, ok := oldBy[entryKey{e.Name, e.Topology, e.Procs}]
		dq, dp := "new", "new"
		if ok {
			dq = pct(o.CasesPerSec, e.CasesPerSec)
			dp = pct(float64(o.P99Ns), float64(e.P99Ns))
		}
		hit := "-"
		if e.CacheHitRate > 0 {
			hit = fmt.Sprintf("%.1f%%", 100*e.CacheHitRate)
		}
		fmt.Fprintf(w, "%-22s %-8s %10.1f %8s %12s %8s %8s\n",
			e.Name, e.Topology, e.CasesPerSec, dq,
			time.Duration(e.P99Ns).Round(time.Microsecond).String(), dp, hit)
	}
}

// congestionDeltas prints the congestion-<scheme> comparison:
// post-recovery peak link utilization per (topology, scheme), with the
// delta against the previous record. Informational only — utilization
// is a quality metric, not a timing, and it moves with the traffic
// matrix and scenario draws, so it never joins the -fail-over gate;
// the rtrsim CLI test gates the scheme ordering (spread < rtr) in-run.
func congestionDeltas(w *os.File, oldRec, newRec *perf.Record) {
	oldBy := map[entryKey]perf.Entry{}
	for _, e := range oldRec.Entries {
		oldBy[entryKey{e.Name, e.Topology, e.Procs}] = e
	}
	var rows []perf.Entry
	for _, e := range newRec.Entries {
		if strings.HasPrefix(e.Name, "congestion-") {
			rows = append(rows, e)
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\ncongestion entries (informational; post-recovery peak link utilization)\n")
	fmt.Fprintf(w, "%-24s %-8s %10s %10s %8s\n", "entry", "topology", "old peak", "new peak", "delta")
	for _, e := range rows {
		o, ok := oldBy[entryKey{e.Name, e.Topology, e.Procs}]
		oldCell, delta := "-", "new"
		if ok && o.PeakUtil > 0 {
			oldCell = fmt.Sprintf("%.4f", o.PeakUtil)
			delta = fmt.Sprintf("%+.1f%%", 100*(e.PeakUtil-o.PeakUtil)/o.PeakUtil)
		}
		fmt.Fprintf(w, "%-24s %-8s %10s %10.4f %8s\n", e.Name, e.Topology, oldCell, e.PeakUtil, delta)
	}
}

// singlePairSpeedups prints, for every single-pair-<proto>-<engine>
// group of the new record, the goal-directed engines' speedup over the
// dijkstra baseline measured in the same record.
func singlePairSpeedups(w *os.File, rec *perf.Record) {
	type groupKey struct {
		proto string
		topo  string
		procs int
	}
	byGroup := map[groupKey]map[string]int64{}
	var order []groupKey
	for _, e := range rec.Entries {
		rest, ok := strings.CutPrefix(e.Name, "single-pair-")
		if !ok {
			continue
		}
		proto, engine, ok := strings.Cut(rest, "-")
		if !ok {
			continue
		}
		k := groupKey{proto, e.Topology, e.Procs}
		if byGroup[k] == nil {
			byGroup[k] = map[string]int64{}
			order = append(order, k)
		}
		byGroup[k][engine] = e.NsPerOp
	}
	if len(order) == 0 {
		return
	}
	fmt.Fprintf(w, "\nsingle-pair engine speedups (same record, vs dijkstra)\n")
	fmt.Fprintf(w, "%-6s %-8s %5s %14s %14s %8s %14s %8s\n",
		"proto", "topology", "procs", "dijkstra", "astar", "speedup", "alt", "speedup")
	speed := func(base, ns int64) string {
		if base <= 0 || ns <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", float64(base)/float64(ns))
	}
	cell := func(ns int64) string {
		if ns <= 0 {
			return "-"
		}
		return fmt.Sprintf("%d", ns)
	}
	for _, k := range order {
		g := byGroup[k]
		base := g["dijkstra"]
		fmt.Fprintf(w, "%-6s %-8s %5d %14s %14s %8s %14s %8s\n",
			k.proto, k.topo, k.procs, cell(base),
			cell(g["astar"]), speed(base, g["astar"]),
			cell(g["alt"]), speed(base, g["alt"]))
	}
}
