// Command rtrscale exercises the large-graph pipeline end to end and
// gates it with wall-clock and memory budgets: synthesize a
// hierarchical PoP topology (10^5 nodes by default), stream it through
// the binary snapshot codec — write then read, both chunked, never a
// full-file buffer — build a scale-mode world on the re-read copy
// (lazy converged tables, no MRC; every concession logged), run one
// invariant-checked sweep shard with destination sampling, time a
// converged-batch recompute, and serve warm single-pair recovery
// queries through the serving engine.
//
//	rtrscale -nodes 100000                          # full pipeline, report timings
//	rtrscale -nodes 100000 -budget 10m -max-rss-mb 6144   # CI smoke gate
//	rtrscale -nodes 100000 -bench-json .            # merge scale-* BENCH entries
//
// Exit status: 1 on any pipeline error or a blown budget. All
// randomness derives from -seed, so every run of the same flags
// reproduces the same graph, the same shard, and the same answers.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/perf"
	"repro/internal/routing"
	seedpkg "repro/internal/seed"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topology"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 100000, "node count for the hierarchical synthesis")
		links     = flag.Int("links", 0, "link count (default 3x nodes)")
		seed      = flag.Int64("seed", 1, "base seed for synthesis, shard RNGs, and sampling")
		dstSample = flag.Int("dst-sample", 8, "destinations sampled per failure scenario in the sweep shard")
		cases     = flag.Int("cases", 12, "recoverable-case target for the checked sweep shard")
		irr       = flag.Int("irr", 4, "irrecoverable-case target for the checked sweep shard")
		servePair = flag.Int("serve-pairs", 32, "warm single-pair serving queries to time (0 skips)")
		budget    = flag.Duration("budget", 0, "exit 1 when the whole pipeline exceeds this wall-clock budget (0 = no gate)")
		maxRSS    = flag.Int("max-rss-mb", 0, "exit 1 when peak RSS (VmHWM) exceeds this many MiB (0 = no gate)")
		benchOut  = flag.String("bench-json", "", "merge scale-* entries into BENCH_<date>.json in this directory (or the given .json path)")
		keepSnap  = flag.String("snap", "", "write the binary snapshot here instead of a temp file (kept after the run)")
	)
	flag.Parse()
	start := time.Now()
	rec := perf.NewRecorder()
	name := fmt.Sprintf("synth%d", *nodes)
	if *links == 0 {
		*links = 3 * *nodes
	}

	// 1. Hierarchical synthesis.
	var topo *topology.Topology
	rec.Measure("scale-topo-gen", name, 0, func() {
		var err error
		topo, err = topology.Generate(
			topology.GenParams{Name: name, Nodes: *nodes, Links: *links, Tiers: true},
			rand.New(rand.NewSource(seedpkg.Derive(*seed, "topogen", name))))
		if err != nil {
			die(err)
		}
	})
	report(rec, "scale-topo-gen", fmt.Sprintf("%d nodes, %d links", topo.G.NumNodes(), topo.G.NumLinks()))

	// 2. Binary snapshot: chunked write, then chunked read of the same
	// file. The world below is built on the re-read copy, so the whole
	// pipeline proves the snapshot is what gets served.
	snap := *keepSnap
	if snap == "" {
		dir, err := os.MkdirTemp("", "rtrscale")
		if err != nil {
			die(err)
		}
		defer os.RemoveAll(dir)
		snap = filepath.Join(dir, name+".snap")
	}
	rec.Measure("scale-snapshot-write", name, 0, func() {
		f, err := os.Create(snap)
		if err != nil {
			die(err)
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		if err := topology.WriteBinary(bw, topo, nil); err != nil {
			die(err)
		}
		if err := bw.Flush(); err != nil {
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
	})
	if st, err := os.Stat(snap); err == nil {
		report(rec, "scale-snapshot-write", fmt.Sprintf("%.1f MiB", float64(st.Size())/(1<<20)))
	}
	var snapTopo *topology.Topology
	rec.Measure("scale-snapshot-read", name, 0, func() {
		f, err := os.Open(snap)
		if err != nil {
			die(err)
		}
		defer f.Close()
		snapTopo, err = topology.ReadBinary(bufio.NewReaderSize(f, 1<<16), nil)
		if err != nil {
			die(err)
		}
	})
	if snapTopo.G.NumNodes() != topo.G.NumNodes() || snapTopo.G.NumLinks() != topo.G.NumLinks() {
		die(fmt.Errorf("snapshot round trip: %d/%d nodes, %d/%d links",
			snapTopo.G.NumNodes(), topo.G.NumNodes(), snapTopo.G.NumLinks(), topo.G.NumLinks()))
	}
	report(rec, "scale-snapshot-read", "round trip verified")

	// 3. Scale-mode world. Concessions (lazy tables, no MRC) print so a
	// budget run states what it skipped.
	var w *sim.World
	rec.Measure("scale-world-build", name, 0, func() {
		var err error
		w, err = sim.NewWorldFromConfig(snapTopo, sim.WorldConfig{
			Log: func(msg string) { fmt.Fprintln(os.Stderr, "rtrscale: "+msg) },
		})
		if err != nil {
			die(err)
		}
	})
	if !w.Tables.Lazy() || w.HasMRC() {
		die(fmt.Errorf("scale world did not engage scale mode at %d nodes", *nodes))
	}
	report(rec, "scale-world-build", "lazy tables, MRC disabled")

	// 4. One invariant-checked sweep shard with destination sampling.
	// The oracle gate skips the O(n^2) optimality cross-checks (logged
	// by the checker); every structural invariant still runs.
	spec := sweep.Spec{
		BaseSeed:      *seed,
		Topologies:    []string{name},
		Recoverable:   *cases,
		Irrecoverable: *irr,
		BlockCases:    *cases + *irr,
		DstSample:     *dstSample,
		Check:         true,
	}
	eng := &sweep.Engine{Spec: spec, Worlds: map[string]*sim.World{name: w}, Workers: 1}
	var run *sweep.RunResult
	rec.Measure("scale-sweep-shard", name, 0, func() {
		var err error
		run, err = eng.Run(context.Background())
		if err != nil {
			die(err)
		}
	})
	ran := 0
	for _, sr := range run.Results {
		ran += len(sr.Rec) + len(sr.Irr)
	}
	if ran == 0 {
		die(fmt.Errorf("checked sweep shard produced no cases"))
	}
	report(rec, "scale-sweep-shard", fmt.Sprintf("%d checked cases (dst sample %d)", ran, *dstSample))

	// 5. Converged-batch recompute: the delete-only incremental table
	// rebuild plus materialization of the sampled destination trees —
	// the serving layer's per-failure warm-up cost.
	scRng := rand.New(rand.NewSource(seedpkg.Derive(*seed, "rtrscale", "recompute")))
	sc := failure.RandomScenario(snapTopo, scRng)
	for !sc.HasFailures() {
		sc = failure.RandomScenario(snapTopo, scRng)
	}
	rec.Measure("scale-recompute", name, 0, func() {
		post := routing.RecomputeTablesUnder(snapTopo, w.Tables, sc)
		for i := 0; i < *dstSample; i++ {
			post.DestTree(graph.NodeID(scRng.Intn(*nodes)))
		}
	})
	report(rec, "scale-recompute", fmt.Sprintf("failure %s + %d dest trees", sc.Desc(), *dstSample))

	// 6. Warm single-pair serving latency through the injected world.
	if *servePair > 0 {
		srv, err := serve.New(serve.Config{Worlds: map[string]*sim.World{name: w}, CacheEntries: 4})
		if err != nil {
			die(err)
		}
		qRng := rand.New(rand.NewSource(seedpkg.Derive(*seed, "rtrscale", "serve")))
		var queries []serve.Query
		for draws := 0; len(queries) == 0 && draws < sim.MaxCollectDraws; draws++ {
			qsc := failure.RandomScenario(snapTopo, qRng)
			recCases, _ := sim.ScaleCasesFromScenario(w, qsc, qRng, *dstSample)
			for _, c := range recCases {
				queries = append(queries, serve.Query{
					Topo: name, Failure: qsc.Desc(), Scheme: serve.SchemeRTR,
					Src: int(c.Initiator), Dst: int(c.Dst),
				})
			}
		}
		if len(queries) == 0 {
			die(fmt.Errorf("no serving cases found"))
		}
		if _, err := srv.Query(queries[0]); err != nil { // warm the entry once
			die(err)
		}
		var h perf.Histogram
		t0 := time.Now()
		for i := 0; i < *servePair; i++ {
			q0 := time.Now()
			if _, err := srv.Query(queries[i%len(queries)]); err != nil {
				die(err)
			}
			h.Record(time.Since(q0).Nanoseconds())
		}
		elapsed := time.Since(t0)
		e := perf.Entry{
			Name:         "scale-serve-pair",
			Topology:     name,
			NsPerOp:      int64(h.Mean()),
			Cases:        *servePair,
			P50Ns:        h.Quantile(0.5),
			P99Ns:        h.Quantile(0.99),
			CacheHitRate: 1,
		}
		if elapsed > 0 {
			e.CasesPerSec = float64(*servePair) / elapsed.Seconds()
		}
		rec.Add(e)
		fmt.Printf("rtrscale: %-22s %12v  (p50 %v, p99 %v, warm cache)\n", "scale-serve-pair",
			time.Duration(e.NsPerOp).Round(time.Microsecond),
			time.Duration(e.P50Ns).Round(time.Microsecond),
			time.Duration(e.P99Ns).Round(time.Microsecond))
	}

	// Budgets and record.
	wall := time.Since(start)
	rss, rssErr := peakRSSMiB()
	if rssErr != nil {
		fmt.Fprintf(os.Stderr, "rtrscale: peak RSS unavailable: %v\n", rssErr)
	}
	fmt.Printf("rtrscale: pipeline complete in %v, peak RSS %d MiB\n", wall.Round(time.Millisecond), rss)
	if *benchOut != "" {
		path, err := perf.MergeFile(*benchOut, rec.Record().Entries)
		if err != nil {
			die(fmt.Errorf("bench-json: %v", err))
		}
		fmt.Fprintf(os.Stderr, "rtrscale: wrote %s\n", path)
	}
	if *budget > 0 && wall > *budget {
		fmt.Fprintf(os.Stderr, "rtrscale: wall clock %v exceeds -budget %v\n", wall.Round(time.Millisecond), *budget)
		os.Exit(1)
	}
	if *maxRSS > 0 && rssErr == nil && rss > *maxRSS {
		fmt.Fprintf(os.Stderr, "rtrscale: peak RSS %d MiB exceeds -max-rss-mb %d\n", rss, *maxRSS)
		os.Exit(1)
	}
}

// report prints the latest timing for one recorder entry with a
// human-readable note.
func report(r *perf.Recorder, entry, note string) {
	for _, e := range r.Record().Entries {
		if e.Name == entry {
			fmt.Printf("rtrscale: %-22s %12v  (%s)\n", entry,
				time.Duration(e.NsPerOp).Round(time.Millisecond), note)
			return
		}
	}
}

// peakRSSMiB reads the process's peak resident set (VmHWM) from
// /proc/self/status; it is the number the -max-rss-mb gate compares.
func peakRSSMiB() (int, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0, err
		}
		return kb / 1024, nil
	}
	return 0, fmt.Errorf("no VmHWM in /proc/self/status")
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "rtrscale: %v\n", err)
	os.Exit(1)
}
