package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "rtrtrace-test-")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "rtrtrace")
		if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (rerun with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (rerun with -update if intended)\ngot:\n%s", path, got)
	}
}

// TestGoldenPaperTableI pins the default run: the worked example of
// the paper's Fig. 6, whose phase-1 rows are exactly Table I.
func TestGoldenPaperTableI(t *testing.T) {
	cmd := exec.Command(binary(t))
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			t.Fatalf("exit %d\nstderr:\n%s", ee.ExitCode(), stderr.String())
		}
		t.Fatal(err)
	}
	checkGolden(t, "table1.golden", stdout.String())
}

// TestGoldenSynthesizedTrace pins a trace on a synthesized Table II
// topology with an explicit failure disk.
func TestGoldenSynthesizedTrace(t *testing.T) {
	cmd := exec.Command(binary(t), "-as", "AS1239", "-seed", "1",
		"-cx", "1000", "-cy", "1000", "-r", "250", "-src", "0", "-dst", "20")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			t.Fatalf("exit %d\nstderr:\n%s", ee.ExitCode(), stderr.String())
		}
		t.Fatal(err)
	}
	checkGolden(t, "trace_as1239.golden", stdout.String())
}
