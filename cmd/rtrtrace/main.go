// Command rtrtrace traces one RTR recovery hop by hop: the phase-1
// walk with the evolving failed_link / cross_link header fields
// (exactly the rows of the paper's Table I), followed by the phase-2
// recovery path. By default it replays the paper's worked example
// (Fig. 6 / Table I); any synthesized topology with a custom failure
// disk works too.
//
// Usage:
//
//	rtrtrace                                    # the paper's Table I
//	rtrtrace -as AS209 -seed 1 -cx 900 -cy 1100 -r 220 -src 3 -dst 40
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	var (
		asName = flag.String("as", "", "Table II topology (empty: the paper's Fig. 6 fixture)")
		seed   = flag.Int64("seed", 1, "synthesis seed")
		cx     = flag.Float64("cx", 0, "failure area center x")
		cy     = flag.Float64("cy", 0, "failure area center y")
		radius = flag.Float64("r", 0, "failure area radius")
		srcIn  = flag.Int("src", -1, "source node (fixture default: v7)")
		dstIn  = flag.Int("dst", -1, "destination node (fixture default: v17)")
	)
	flag.Parse()

	var (
		topo *topology.Topology
		area geom.Disk
		src  graph.NodeID
		dst  graph.NodeID
	)
	if *asName == "" {
		topo = topology.PaperExample()
		area = topology.PaperFailureArea()
		src, dst = topology.PaperNode(7), topology.PaperNode(17)
	} else {
		p, ok := topology.ParamsFor(*asName)
		if !ok {
			fatalf("unknown topology %q", *asName)
		}
		var err error
		topo, err = topology.Generate(p, newRand(*seed))
		if err != nil {
			fatalf("%v", err)
		}
		area = geom.Disk{Center: geom.Point{X: *cx, Y: *cy}, Radius: *radius}
	}
	if *srcIn >= 0 {
		src = graph.NodeID(*srcIn)
	}
	if *dstIn >= 0 {
		dst = graph.NodeID(*dstIn)
	}

	sc := failure.NewScenario(topo, area)
	lv := routing.NewLocalView(topo, sc)
	tables := routing.ComputeTables(topo)
	fmt.Printf("topology %s: %s\n", topo.Name, sc)

	outcome, initiator, hops := routing.TraceDefault(tables, lv, src, dst)
	switch outcome {
	case routing.DefaultDelivered:
		fmt.Printf("converged path %s -> %s is unaffected; nothing to recover\n", name(src), name(dst))
		return
	case routing.DefaultSourceDown:
		fatalf("source %s failed", name(src))
	case routing.DefaultNoRoute:
		fatalf("no converged route %s -> %s", name(src), name(dst))
	}
	nh, trigger, _ := tables.NextHop(initiator, dst)
	fmt.Printf("packet %s -> %s blocked after %d hop(s): recovery initiator %s, unreachable next hop %s over %s\n\n",
		name(src), name(dst), hops, name(initiator), name(nh), linkName(topo, trigger))

	r := core.New(topo, nil)
	sess, err := r.NewSession(lv, initiator)
	if err != nil {
		fatalf("%v", err)
	}
	col, err := sess.Collect(trigger)
	if err != nil {
		fatalf("collect: %v", err)
	}

	fmt.Println("Phase 1 — collecting failure information (Table I format)")
	fmt.Printf("%-5s %-8s %-42s %s\n", "hop", "at", "failed_link", "cross_link")
	// Row k shows the header after the node at hop k processed the
	// packet — i.e. the contents on the wire of hop k+1 (the final row
	// shows the finished header), matching the paper's Table I rows.
	fmt.Printf("%-5d %-8s %-42s %s\n", 0, name(initiator), "-", linkList(topo, col.Header.CrossLinks[:initialCross(col)]))
	for i, rec := range col.Walk.Records {
		fs := core.FieldSizes{Failed: len(col.Header.FailedLinks), Cross: len(col.Header.CrossLinks)}
		if i+1 < len(col.FieldSizes) {
			fs = col.FieldSizes[i+1]
		}
		fmt.Printf("%-5d %-8s %-42s %s\n", i+1, name(rec.To),
			linkList(topo, col.Header.FailedLinks[:fs.Failed]),
			linkList(topo, col.Header.CrossLinks[:fs.Cross]))
	}
	fmt.Printf("\nfirst phase: %d hops, %.1f ms, enclosed=%v truncated=%v escapes=%d\n\n",
		col.Walk.Hops(), float64(col.Duration())/1e6, col.Enclosed, col.Truncated, col.Escapes)

	if est, ok := sess.EstimateArea(); ok {
		fmt.Printf("estimated failure area: center %v radius %.1f (truth: %v)\n\n", est.Center, est.Radius, area)
	}

	rt, ok := sess.RecoveryPath(dst)
	if !ok {
		fmt.Printf("Phase 2 — destination %s is unreachable in the pruned view: packets discarded immediately (1 SP calculation spent)\n", name(dst))
		return
	}
	fmt.Printf("Phase 2 — shortest recovery path (%d hops, cost %.0f): %s\n",
		rt.Hops(), rt.Cost, pathString(rt.Nodes))
	fwd := sess.ForwardSourceRouted(rt)
	if fwd.Delivered {
		fmt.Println("source-routed packet delivered over the recovery path")
	} else {
		fmt.Printf("packet dropped at %s: link %s failed but was not collected\n",
			name(fwd.DropAt), linkName(topo, fwd.DropLink))
	}
}

// initialCross derives hop 0's cross_link length: entries present
// before the first forwarding are exactly those carried on hop 1.
func initialCross(col *core.CollectResult) int {
	if len(col.FieldSizes) == 0 {
		return 0
	}
	// Hop 1's snapshot may already include a Constraint-2 insertion
	// for the first link; the seed set is never smaller than 0 and the
	// difference is at most one entry, so report hop 1's count minus
	// any first-link protection. Keeping it simple: report the count
	// before any failed link was recorded, which is hop 1's count when
	// no failure was recorded yet.
	return col.FieldSizes[0].Cross
}

func name(v graph.NodeID) string {
	return fmt.Sprintf("v%d", int(v)+1)
}

func linkName(t *topology.Topology, id graph.LinkID) string {
	l := t.G.Link(id)
	return fmt.Sprintf("e%d,%d", int(l.A)+1, int(l.B)+1)
}

func linkList(t *topology.Topology, ids []graph.LinkID) string {
	if len(ids) == 0 {
		return "-"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = linkName(t, id)
	}
	return strings.Join(parts, " ")
}

func pathString(nodes []graph.NodeID) string {
	parts := make([]string, len(nodes))
	for i, v := range nodes {
		parts[i] = name(v)
	}
	return strings.Join(parts, " -> ")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rtrtrace: "+format+"\n", args...)
	os.Exit(1)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
